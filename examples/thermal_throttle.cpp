/**
 * @file
 * Operation above 85 degC (paper section 6.4): DRAM retention halves
 * to 32 ms, refresh runs twice as often, and the co-design's benefit
 * roughly doubles.
 *
 * This example emulates a thermal excursion: the same workload is
 * evaluated at 64 ms retention (cool) and 32 ms retention (hot), and
 * the output shows how each policy's headroom changes -- the
 * decision data for a system that switches scheduling policy with
 * temperature.
 *
 * Usage: thermal_throttle [workload]   (default WL-10)
 */

#include <iostream>
#include <string>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace refsched;

namespace
{

struct Point
{
    double allBank;
    double perBank;
    double coDesign;
    double noRefresh;
};

Point
measure(const std::string &workload, Tick tREFW)
{
    using core::Policy;
    auto run = [&](Policy p) {
        return core::runOnce(
                   core::makeConfig(workload, p,
                                    dram::DensityGb::d32, tREFW))
            .harmonicMeanIpc;
    };
    return Point{run(Policy::AllBank), run(Policy::PerBank),
                 run(Policy::CoDesign), run(Policy::NoRefresh)};
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "WL-10";

    std::cout << "Thermal study: " << workload
              << " at 64 ms (below 85C) vs 32 ms (above 85C) "
                 "retention, 32Gb\n\n";

    const auto cool = measure(workload, milliseconds(64.0));
    const auto hot = measure(workload, milliseconds(32.0));

    core::Table table({"policy", "IPC @64ms", "IPC @32ms",
                       "thermal penalty", "headroom to ideal @32ms"});
    auto row = [&](const char *name, double c, double h,
                   double ideal) {
        table.addRow({name, core::fmt(c), core::fmt(h),
                      core::pctImprovement(h / c),
                      core::pctImprovement(ideal / h)});
    };
    row("all-bank", cool.allBank, hot.allBank, hot.noRefresh);
    row("per-bank", cool.perBank, hot.perBank, hot.noRefresh);
    row("co-design", cool.coDesign, hot.coDesign, hot.noRefresh);
    row("no-refresh (ideal)", cool.noRefresh, hot.noRefresh,
        hot.noRefresh);
    table.print(std::cout);

    std::cout << "\nCo-design gain over all-bank: "
              << core::pctImprovement(cool.coDesign / cool.allBank)
              << " when cool, "
              << core::pctImprovement(hot.coDesign / hot.allBank)
              << " when hot.\nThe paper reports the 32 ms benefit "
                 "roughly doubling (16.2% -> 34.1% at 32Gb);\nthe "
                 "co-design also uses a 2 ms quantum at 32 ms so "
                 "quanta stay aligned with\nrefresh slots (footnote "
                 "12) -- this library derives that automatically.\n";
    return 0;
}
