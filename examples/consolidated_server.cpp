/**
 * @file
 * The paper's motivating scenario (section 1): a consolidated
 * (virtualization-style) server packing many tasks per core, where
 * DRAM refresh eats a growing slice of per-task bandwidth.
 *
 * This example sweeps the consolidation ratio on a quad-core machine
 * and shows how the co-design's advantage evolves, plus a per-task
 * breakdown for the most consolidated point -- the kind of analysis
 * a capacity planner would run before deploying the co-design.
 *
 * Usage: consolidated_server [workload]   (default WL-8)
 */

#include <iostream>
#include <string>

#include "core/experiment.hh"
#include "core/report.hh"
#include "core/system.hh"

using namespace refsched;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "WL-8";
    const auto density = dram::DensityGb::d32;

    std::cout << "Consolidated server study: " << workload
              << " on 4 cores, 32Gb DRAM\n\n";

    core::Table sweep({"consolidation", "tasks", "all-bank hmean IPC",
                       "co-design", "gain"});
    for (int tasksPerCore : {1, 2, 4}) {
        const auto ab = core::runOnce(core::makeConfig(
            workload, core::Policy::AllBank, density,
            milliseconds(64.0), 4, tasksPerCore));
        const auto cd = core::runOnce(core::makeConfig(
            workload, core::Policy::CoDesign, density,
            milliseconds(64.0), 4, tasksPerCore));
        sweep.addRow({"1:" + std::to_string(tasksPerCore),
                      std::to_string(4 * tasksPerCore),
                      core::fmt(ab.harmonicMeanIpc),
                      core::fmt(cd.harmonicMeanIpc),
                      core::pctImprovement(cd.speedupOver(ab))});
    }
    sweep.print(std::cout);

    // Per-task drill-down at 1:4.
    std::cout << "\nPer-task view at 1:4 under the co-design:\n\n";
    auto cfg = core::makeConfig(workload, core::Policy::CoDesign,
                                density, milliseconds(64.0), 4, 4);
    core::System sys(cfg);
    const auto m = sys.run(8, 16);

    core::Table tasks({"pid", "benchmark", "IPC", "MPKI", "quanta",
                       "resident pages", "fallback pages"});
    for (const auto &t : m.tasks) {
        tasks.addRow({std::to_string(t.pid), t.benchmark,
                      core::fmt(t.ipc, 2), core::fmt(t.mpki, 1),
                      std::to_string(t.quantaRun),
                      std::to_string(t.residentPages),
                      std::to_string(t.fallbackAllocs)});
    }
    tasks.print(std::cout);

    std::cout << "\nScheduler: " << m.cleanPicks
              << " clean picks / " << m.quantaScheduled
              << " quanta; blocked-read fraction "
              << core::fmt(m.blockedReadFraction * 100.0, 3)
              << "%; fairness spread "
              << core::fmt(m.vruntimeSpreadQuanta, 2) << " quanta\n";
    return 0;
}
