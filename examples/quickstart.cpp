/**
 * @file
 * Quickstart: simulate one Table 2 workload under the three headline
 * policies -- all-bank refresh (the DDRx baseline), LPDDR3 per-bank
 * refresh, and the paper's hardware-software co-design -- and print
 * the relative performance, exactly like one group of bars in
 * Fig. 10.
 *
 * Usage: quickstart [workload] [density]
 *   workload  WL-1 .. WL-10   (default WL-5)
 *   density   8|16|24|32      (default 32)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiment.hh"
#include "core/report.hh"

using namespace refsched;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "WL-5";
    const int densityGb = argc > 2 ? std::atoi(argv[2]) : 32;
    const auto density = static_cast<dram::DensityGb>(densityGb);

    std::cout << "refsched quickstart: workload " << workload << ", "
              << dram::toString(density) << " DRAM chips\n\n";

    // Run the same workload under each policy.  Everything is
    // deterministic: same seed, same synthetic traces.
    const core::RunOptions opts;

    const auto base = core::runOnce(
        core::makeConfig(workload, core::Policy::AllBank, density),
        opts);
    const auto perBank = core::runOnce(
        core::makeConfig(workload, core::Policy::PerBank, density),
        opts);
    const auto coDesign = core::runOnce(
        core::makeConfig(workload, core::Policy::CoDesign, density),
        opts);

    core::Table table({"policy", "hmean IPC", "vs all-bank",
                       "avg read latency (mem cycles)",
                       "reads blocked by refresh"});
    auto row = [&](const char *name, const core::Metrics &m) {
        table.addRow({name, core::fmt(m.harmonicMeanIpc),
                      core::pctImprovement(m.speedupOver(base)),
                      core::fmt(m.avgReadLatencyMemCycles, 1),
                      core::fmt(m.blockedReadFraction * 100.0, 2)
                          + "%"});
    };
    row("all-bank", base);
    row("per-bank", perBank);
    row("co-design", coDesign);
    table.print(std::cout);

    std::cout << "\nCo-design scheduler behaviour: "
              << coDesign.cleanPicks << " clean picks, "
              << coDesign.deferredPicks << " deferred, "
              << coDesign.bestEffortPicks << " best-effort, "
              << coDesign.fallbackPicks << " fallback; vruntime "
              << "spread " << core::fmt(coDesign.vruntimeSpreadQuanta, 2)
              << " quanta\n";
    return 0;
}
