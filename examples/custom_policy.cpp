/**
 * @file
 * Extending the library: a user-defined refresh scheduler plugged
 * into the memory controller through the public RefreshScheduler
 * interface.
 *
 * The toy policy below ("SkewedPerBank") is a per-bank scheduler
 * that refreshes even banks first and odd banks second within each
 * window -- a stand-in for whatever a researcher might want to try.
 * The example wires it into a MemoryController directly (the level
 * below core::System), drives open-loop traffic, and compares it
 * against the stock per-bank round-robin policy.
 */

#include <iostream>

#include "core/report.hh"
#include "dram/refresh_scheduler.hh"
#include "memctrl/memory_controller.hh"
#include "simcore/rng.hh"

using namespace refsched;

namespace
{

/** Per-bank refresh over even banks first, then odd banks. */
class SkewedPerBank final : public dram::RefreshScheduler
{
  public:
    explicit SkewedPerBank(const dram::DramDeviceConfig &cfg)
        : dram::RefreshScheduler(cfg),
          tREFIpb_(cfg.timings.tREFIpb(banksPerChannel_)),
          cmdIndex_(static_cast<std::size_t>(cfg.org.channels), 0)
    {
    }

    dram::RefreshPolicy
    policy() const override
    {
        // Custom policies piggyback on an existing tag for stats;
        // a production extension would add its own enumerator.
        return dram::RefreshPolicy::PerBankRoundRobin;
    }

    Tick
    nextDue(int channel) const override
    {
        return cmdIndex_[static_cast<std::size_t>(channel)] * tREFIpb_;
    }

    dram::RefreshCommand
    pop(int channel, const dram::McRefreshView &) override
    {
        auto &idx = cmdIndex_[static_cast<std::size_t>(channel)];
        const auto n =
            static_cast<std::uint64_t>(banksPerChannel_);
        const auto slot = idx % n;
        // Evens first (0,2,4,...), then odds (1,3,5,...).
        const auto bank = slot < n / 2 ? 2 * slot
                                       : 2 * (slot - n / 2) + 1;
        dram::RefreshCommand cmd;
        cmd.rank = static_cast<int>(bank) / banksPerRank_;
        cmd.bank = static_cast<int>(bank) % banksPerRank_;
        cmd.rows = cfg_.timings.rowsPerRefresh;
        cmd.tRFC = cfg_.timings.tRFCpb;
        ++idx;
        return cmd;
    }

  private:
    Tick tREFIpb_;
    std::vector<std::uint64_t> cmdIndex_;
};

/** Completion receiver: cookie0 carries the send tick. */
struct LatencyAccumulator : Callee
{
    double latSum = 0.0;
    std::uint64_t completed = 0;

    void
    fire(Tick now, std::uint64_t sent, std::uint64_t) override
    {
        latSum += static_cast<double>(now - static_cast<Tick>(sent));
        ++completed;
    }
};

/** Open-loop random read traffic; returns average latency in ns. */
double
drive(memctrl::MemoryController &mc, EventQueue &eq,
      const dram::DramDeviceConfig &dev)
{
    Rng rng(42);
    LatencyAccumulator acc;
    const Tick period = nanoseconds(25.0);

    std::function<void(Tick)> inject = [&](Tick t) {
        memctrl::Request r;
        r.paddr = rng.below(dev.org.totalBytes() / 64) * 64;
        r.type = memctrl::Request::Type::Read;
        r.completion = &acc;
        r.cookie0 = static_cast<std::uint64_t>(t);
        mc.enqueue(std::move(r));
        eq.schedule(t + period,
                    [&inject, t, period] { inject(t + period); });
    };
    eq.schedule(0, [&] { inject(0); });
    eq.runUntil(dev.timings.tREFW);

    return acc.completed
        ? acc.latSum / static_cast<double>(acc.completed) / 1000.0
        : 0.0;
}

} // namespace

int
main()
{
    std::cout << "Custom refresh policy demo: SkewedPerBank vs stock "
                 "per-bank round-robin\n\n";

    core::Table table({"policy", "avg read latency (ns)"});

    {
        const auto dev = dram::makeDdr3_1600(
            dram::DensityGb::d32, milliseconds(64.0), 64);
        EventQueue eq;
        memctrl::MemoryController mc(
            eq, dev,
            dram::makeRefreshScheduler(
                dram::RefreshPolicy::PerBankRoundRobin, dev));
        table.addRow({"per-bank round-robin",
                      core::fmt(drive(mc, eq, dev), 1)});
    }
    {
        const auto dev = dram::makeDdr3_1600(
            dram::DensityGb::d32, milliseconds(64.0), 64);
        EventQueue eq;
        memctrl::MemoryController mc(
            eq, dev, std::make_unique<SkewedPerBank>(dev));
        table.addRow(
            {"skewed per-bank", core::fmt(drive(mc, eq, dev), 1)});
    }

    table.print(std::cout);
    std::cout << "\nBoth schedules refresh every bank fully per "
                 "window; only the *order* differs,\nso latencies "
                 "should be close -- the point is how little code a "
                 "new policy needs.\n";
    return 0;
}
