/**
 * @file
 * Unit tests for the refresh-window monitor, driven with synthetic
 * refresh command streams against a deliberately tiny device
 * (8 rows per bank, 1 us retention window) so whole retention
 * windows fit in a few dozen events.
 *
 * The central case is SkippedRowGroupCaught: a schedule that silently
 * never refreshes one bank's upper row group must be reported with
 * the exact bank, the stale row range, and the tick the window
 * expired.
 */

#include <gtest/gtest.h>

#include <string>

#include "dram/refresh_scheduler.hh"
#include "dram/timings.hh"
#include "validate/refresh_window_monitor.hh"

namespace refsched::validate
{
namespace
{

/**
 * 1 channel x @p ranks x @p banks, 8 rows per bank, tREFW = 1 us,
 * tREFIab = 10 ns, tRFCab = 1 ns, tRFCpb = 0.4 ns.  With
 * maxPostponed = 0 and no pausing the monitor's slack is
 * 2 * tREFIab + 4 * tRFCab = 24'000 ps, so a window expires at
 * passAnchor + 1'024'000.
 */
dram::DramDeviceConfig
smallDevice(int ranks = 2, int banks = 2)
{
    dram::DramDeviceConfig dev;
    dev.org.channels = 1;
    dev.org.ranksPerChannel = ranks;
    dev.org.banksPerRank = banks;
    dev.org.rowsPerBank = 8;
    dev.timings.tREFW = 1'000'000;
    dev.timings.tREFIab = 10'000;
    dev.timings.tRFCab = 1'000;
    dev.timings.tRFCpb = 400;
    return dev;
}

constexpr Tick kExpiry = 1'024'000;  ///< tREFW + slack

DramCmdEvent
refPb(Tick tick, int rank, int bank, std::uint64_t rows)
{
    DramCmdEvent ev;
    ev.tick = tick;
    ev.op = DramOp::RefPerBank;
    ev.rank = rank;
    ev.bank = bank;
    ev.row = rows;
    ev.busyUntil = tick + 400;
    return ev;
}

DramCmdEvent
refAb(Tick tick, int rank, std::uint64_t rows)
{
    DramCmdEvent ev;
    ev.tick = tick;
    ev.op = DramOp::RefAllBank;
    ev.rank = rank;
    ev.bank = -1;
    ev.row = rows;
    ev.busyUntil = tick + 1'000;
    return ev;
}

DramCmdEvent
refPause(Tick tick, int rank, int bank, std::uint64_t rolledBack)
{
    DramCmdEvent ev;
    ev.tick = tick;
    ev.op = DramOp::RefPause;
    ev.rank = rank;
    ev.bank = bank;
    ev.row = rolledBack;
    ev.busyUntil = tick;
    return ev;
}

bool
contains(const std::string &hay, const std::string &needle)
{
    return hay.find(needle) != std::string::npos;
}

TEST(RefreshWindowMonitorTest, CleanSequentialScheduleHasFullCoverage)
{
    RefreshWindowMonitor mon(smallDevice(),
                             dram::RefreshPolicy::SequentialPerBank,
                             /*maxPostponed=*/0, /*pausing=*/false);
    // Three full rotations: banks in global order, two 4-row
    // commands per bank, one command per tREFI_pb slot (2.5 ns).
    Tick t = 0;
    for (int pass = 0; pass < 3; ++pass) {
        for (int gb = 0; gb < 4; ++gb) {
            for (int i = 0; i < 2; ++i) {
                mon.onDramCommand(refPb(t, gb / 2, gb % 2, 4));
                t += 2'500;
            }
        }
    }
    mon.finalize(t);
    EXPECT_EQ(mon.violationCount(), 0u)
        << (mon.violations().empty() ? ""
                                     : mon.violations()[0].message);
    for (int gb = 0; gb < 4; ++gb)
        EXPECT_EQ(mon.passes(gb), 3u) << "global bank " << gb;
}

TEST(RefreshWindowMonitorTest, SkippedRowGroupCaught)
{
    RefreshWindowMonitor mon(smallDevice(),
                             dram::RefreshPolicy::PerBankRoundRobin,
                             0, false);
    // Bank ch0/r1/b1 gets its lower row group (rows 0..3) exactly
    // once and its upper group never; every other bank is refreshed
    // on schedule past the end of the retention window.
    mon.onDramCommand(refPb(0, 1, 1, 4));
    Tick t = 2'500;
    while (t <= 1'030'000) {
        for (int gb = 0; gb < 3; ++gb) {
            for (int i = 0; i < 2; ++i) {
                mon.onDramCommand(refPb(t, gb / 2, gb % 2, 4));
                t += 2'500;
            }
        }
    }

    ASSERT_EQ(mon.violationCount(), 1u);
    const auto &v = mon.violations()[0];
    // The report names the bank, the coverage, the stale row range,
    // and fires only once the window (plus slack) has expired.
    EXPECT_TRUE(contains(v.message, "refresh window expired"))
        << v.message;
    EXPECT_TRUE(contains(v.message, "ch0/r1/b1")) << v.message;
    EXPECT_TRUE(contains(v.message, "covered only 4 of 8"))
        << v.message;
    EXPECT_TRUE(contains(v.message, "rows 4..7 are stale"))
        << v.message;
    EXPECT_GT(v.tick, kExpiry);

    // The healthy banks completed passes; the starved one did not.
    EXPECT_EQ(mon.passes(3), 0u);
    EXPECT_GT(mon.passes(0), 0u);
}

TEST(RefreshWindowMonitorTest, SequentialAdvanceTooEarlyFlagged)
{
    RefreshWindowMonitor mon(smallDevice(),
                             dram::RefreshPolicy::SequentialPerBank,
                             0, false);
    mon.onDramCommand(refPb(0, 0, 0, 4));
    mon.onDramCommand(refPb(2'500, 0, 0, 4));  // bank 0 complete
    mon.onDramCommand(refPb(5'000, 0, 1, 4));  // bank 1: 4 of 8 rows
    mon.onDramCommand(refPb(7'500, 1, 0, 4));  // advances early!
    ASSERT_EQ(mon.violationCount(), 1u);
    const auto &v = mon.violations()[0];
    EXPECT_TRUE(contains(v.message, "sequential refresh advanced"))
        << v.message;
    EXPECT_TRUE(contains(v.message, "only 4 of 8 rows into its slot"))
        << v.message;
    EXPECT_EQ(v.tick, 7'500u);
}

TEST(RefreshWindowMonitorTest, PauseAndResumeAccountedExactly)
{
    RefreshWindowMonitor mon(smallDevice(),
                             dram::RefreshPolicy::SequentialPerBank,
                             0, /*pausing=*/true);
    // Bank 0's first 4-row command is paused after 2 rows; the
    // resume owes those 2 rows before the engine may advance.
    mon.onDramCommand(refPb(0, 0, 0, 4));
    mon.onDramCommand(refPause(400, 0, 0, 2));
    mon.onDramCommand(refPb(2'500, 0, 0, 2));   // resume the tail
    mon.onDramCommand(refPb(5'000, 0, 0, 4));   // pass complete
    mon.onDramCommand(refPb(7'500, 0, 1, 4));
    mon.onDramCommand(refPb(10'000, 0, 1, 4));
    mon.finalize(12'500);
    EXPECT_EQ(mon.violationCount(), 0u)
        << (mon.violations().empty() ? ""
                                     : mon.violations()[0].message);
    EXPECT_EQ(mon.passes(0), 1u);
    EXPECT_EQ(mon.passes(1), 1u);
}

TEST(RefreshWindowMonitorTest, LateRefreshPassFlagged)
{
    RefreshWindowMonitor mon(smallDevice(/*ranks=*/1, /*banks=*/1),
                             dram::RefreshPolicy::PerBankRoundRobin,
                             0, false);
    mon.onDramCommand(refPb(0, 0, 0, 4));
    // The closing half of the pass arrives after the window expired.
    mon.onDramCommand(refPb(1'050'000, 0, 0, 4));
    ASSERT_EQ(mon.violationCount(), 1u);
    EXPECT_TRUE(
        contains(mon.violations()[0].message, "late refresh pass"))
        << mon.violations()[0].message;
    mon.finalize(1'050'000);
    EXPECT_EQ(mon.violationCount(), 1u);
}

TEST(RefreshWindowMonitorTest, AllBankScheduleCleanAndMissingRankCaught)
{
    {
        RefreshWindowMonitor mon(smallDevice(),
                                 dram::RefreshPolicy::AllBank, 0,
                                 false);
        for (Tick t = 0; t < 100'000; t += 10'000) {
            mon.onDramCommand(refAb(t, 0, 8));
            mon.onDramCommand(refAb(t + 1'000, 1, 8));
        }
        mon.finalize(100'000);
        EXPECT_EQ(mon.violationCount(), 0u);
        EXPECT_EQ(mon.passes(0), 10u);
        EXPECT_EQ(mon.passes(3), 10u);
    }
    {
        // Rank 1 never receives a refresh command: both of its banks
        // must be reported once the window expires.
        RefreshWindowMonitor mon(smallDevice(),
                                 dram::RefreshPolicy::AllBank, 0,
                                 false);
        for (Tick t = 0; t <= 1'030'000; t += 10'000)
            mon.onDramCommand(refAb(t, 0, 8));
        EXPECT_EQ(mon.violationCount(), 2u);
        for (const auto &v : mon.violations())
            EXPECT_TRUE(contains(v.message, "/r1/")) << v.message;
    }
}

TEST(RefreshWindowMonitorTest, NoRefreshPolicyIsInert)
{
    RefreshWindowMonitor mon(smallDevice(),
                             dram::RefreshPolicy::NoRefresh, 0,
                             false);
    mon.finalize(100 * kExpiry);
    EXPECT_EQ(mon.violationCount(), 0u);
}

} // namespace
} // namespace refsched::validate
