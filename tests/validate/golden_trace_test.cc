/**
 * @file
 * Unit tests for the golden-trace encoding: recorder -> decoder
 * round-trip (including the biased bank/pid fields and busy-until
 * deltas), file I/O with the magic/version/count header, and the
 * event-wise differ's first-divergence reporting.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "validate/golden_trace.hh"

namespace refsched::validate
{
namespace
{

DramCmdEvent
dram(Tick tick, DramOp op, int bank, std::uint64_t row,
     Tick busyUntil = 0)
{
    DramCmdEvent ev;
    ev.tick = tick;
    ev.op = op;
    ev.channel = 0;
    ev.rank = 1;
    ev.bank = bank;
    ev.row = row;
    ev.busyUntil = busyUntil;
    return ev;
}

/** A recorder fed one event of every kind, ticks ascending. */
TraceRecorder
sampleRecorder()
{
    TraceRecorder rec;
    rec.onDramCommand(dram(10, DramOp::Act, 3, 42));
    rec.onDramCommand(dram(20, DramOp::Read, 3, 42));
    rec.onDramCommand(dram(30, DramOp::Write, 3, 42));
    rec.onDramCommand(dram(40, DramOp::Pre, 3, 0));
    rec.onDramCommand(dram(50, DramOp::RefPerBank, 3, 64, 950));
    rec.onDramCommand(dram(60, DramOp::RefAllBank, -1, 512, 1060));
    rec.onDramCommand(dram(70, DramOp::RefPause, 3, 32, 170));

    SchedPickEvent pick;
    pick.tick = 80;
    pick.cpu = 1;
    pick.kind = PickKind::Clean;
    pick.chosen = 7;
    rec.onSchedPick(pick);

    SchedPickEvent idle;
    idle.tick = 90;
    idle.cpu = 0;
    idle.kind = PickKind::Idle;
    idle.chosen = -1;
    rec.onSchedPick(idle);

    PageAllocEvent alloc;
    alloc.tick = 100;
    alloc.pid = -1;
    alloc.pfn = 123456;
    alloc.fallback = true;
    rec.onPageAlloc(alloc);

    PageFreeEvent free;
    free.tick = 110;
    free.pfn = 123456;
    rec.onPageFree(free);
    return rec;
}

TEST(GoldenTraceTest, RoundTripPreservesEveryField)
{
    const TraceRecorder rec = sampleRecorder();
    EXPECT_EQ(rec.eventCount(), 11u);

    const auto events = decodeTrace(rec.data());
    ASSERT_EQ(events.size(), 11u);

    EXPECT_EQ(events[0].kind, TraceKind::DramAct);
    EXPECT_EQ(events[0].tick, 10u);
    EXPECT_EQ(events[0].f[0], 0u);   // channel
    EXPECT_EQ(events[0].f[1], 1u);   // rank
    EXPECT_EQ(events[0].f[2], 4u);   // bank 3, biased +1
    EXPECT_EQ(events[0].f[3], 42u);  // row

    EXPECT_EQ(events[4].kind, TraceKind::DramRefPb);
    EXPECT_EQ(events[4].f[3], 64u);   // rows
    EXPECT_EQ(events[4].f[4], 900u);  // busyUntil - tick

    EXPECT_EQ(events[5].kind, TraceKind::DramRefAb);
    EXPECT_EQ(events[5].f[2], 0u);  // bank -1, biased +1

    EXPECT_EQ(events[7].kind, TraceKind::SchedPick);
    EXPECT_EQ(events[7].f[0], 1u);  // cpu
    EXPECT_EQ(events[7].f[1],
              static_cast<std::uint64_t>(PickKind::Clean));
    EXPECT_EQ(events[7].f[2], 8u);  // pid 7, biased +1

    EXPECT_EQ(events[8].f[2], 0u);  // idle: pid -1, biased +1

    EXPECT_EQ(events[9].kind, TraceKind::PageAlloc);
    EXPECT_EQ(events[9].f[0], 0u);       // pid -1, biased +1
    EXPECT_EQ(events[9].f[1], 123456u);  // pfn
    EXPECT_EQ(events[9].f[2], 1u);       // fallback

    EXPECT_EQ(events[10].kind, TraceKind::PageFree);
    EXPECT_EQ(events[10].tick, 110u);
    EXPECT_EQ(events[10].f[0], 123456u);
}

TEST(GoldenTraceTest, FileRoundTripMatchesInMemoryDecode)
{
    const TraceRecorder rec = sampleRecorder();
    const std::string path =
        testing::TempDir() + "/golden_trace_test.trace";
    writeTraceFile(path, rec);

    const auto fromFile = readTraceFile(path);
    const auto inMemory = decodeTrace(rec.data());
    ASSERT_EQ(fromFile.size(), inMemory.size());
    for (std::size_t i = 0; i < fromFile.size(); ++i)
        EXPECT_EQ(fromFile[i], inMemory[i]) << "event " << i;
    std::remove(path.c_str());
}

TEST(GoldenTraceTest, IdenticalTracesDiffClean)
{
    const auto events = decodeTrace(sampleRecorder().data());
    const TraceDiff d = diffTraces(events, events);
    EXPECT_TRUE(d.identical);
    EXPECT_EQ(d.describe(), "traces identical");
}

TEST(GoldenTraceTest, FirstDivergenceIsPinpointed)
{
    const auto a = decodeTrace(sampleRecorder().data());
    auto b = a;
    b[2].f[3] = 43;  // WRITE to a different row
    b[6].tick += 5;  // a later difference must not mask the first

    const TraceDiff d = diffTraces(a, b);
    EXPECT_FALSE(d.identical);
    EXPECT_EQ(d.index, 2u);
    EXPECT_FALSE(d.lhsEnded);
    EXPECT_FALSE(d.rhsEnded);
    EXPECT_EQ(d.lhs, a[2]);
    EXPECT_EQ(d.rhs, b[2]);
    EXPECT_NE(d.describe().find("first divergence at event 2"),
              std::string::npos)
        << d.describe();
    EXPECT_NE(d.describe().find("WRITE"), std::string::npos)
        << d.describe();
}

TEST(GoldenTraceTest, PrefixTraceReportsWhichSideEnded)
{
    const auto a = decodeTrace(sampleRecorder().data());
    auto b = a;
    b.resize(4);

    const TraceDiff d = diffTraces(a, b);
    EXPECT_FALSE(d.identical);
    EXPECT_EQ(d.index, 4u);
    EXPECT_TRUE(d.rhsEnded);
    EXPECT_FALSE(d.lhsEnded);
    EXPECT_EQ(d.lhs, a[4]);
    EXPECT_NE(d.describe().find("trace B ends at event 4"),
              std::string::npos)
        << d.describe();

    const TraceDiff r = diffTraces(b, a);
    EXPECT_TRUE(r.lhsEnded);
    EXPECT_NE(r.describe().find("trace A ends at event 4"),
              std::string::npos)
        << r.describe();
}

TEST(GoldenTraceTest, DescribeNamesTheCommand)
{
    const auto events = decodeTrace(sampleRecorder().data());
    EXPECT_NE(describe(events[0]).find("ACT ch0/r1/b3 row 42"),
              std::string::npos)
        << describe(events[0]);
    EXPECT_NE(describe(events[5]).find("REFab ch0/r1/b-1"),
              std::string::npos)
        << describe(events[5]);
    EXPECT_NE(describe(events[9]).find("pid -1 pfn 123456"),
              std::string::npos)
        << describe(events[9]);
}

} // namespace
} // namespace refsched::validate
