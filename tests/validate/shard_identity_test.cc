/**
 * @file
 * Differential determinism proof for the sharded event kernel and
 * the core-cluster lanes stacked on it.
 *
 * Two timing modes exist by contract (SystemConfig::coreLanes):
 * coreLanes == 0 is the untouched legacy kernel; coreLanes >= 1 is
 * the lane-mode kernel, whose simulated timing (stats JSON) is
 * bit-identical for EVERY lane count x shard count x worker count
 * x jobs count (cluster assignment and worker scheduling are
 * partition invariants, enforced by the boundary merge keys).  The
 * two modes differ slightly from each other -- lane mode quantises
 * shared-L2 walks and DRAM hand-offs to window boundaries -- so
 * comparisons never cross them.  Golden traces additionally group
 * on shards == 0 vs shards >= 1 within each mode: channel sharding
 * moves controller events onto channel lanes, which permutes
 * same-tick record order without moving any event's tick.
 *
 * Compared artifacts: the full golden trace (every DRAM command,
 * scheduler pick, and page movement at its tick) and the stats-JSON
 * document minus the host-dependent self-profile line.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hh"
#include "core/parallel_runner.hh"
#include "core/system.hh"
#include "validate/golden_trace.hh"
#include "workload/scenario.hh"

namespace refsched::validate
{
namespace
{

core::SystemConfig
shardedConfig(int channels, int shards, int coreLanes = 0,
              int numCores = 2)
{
    core::SystemConfig cfg = core::makeConfig(
        "WL-1", core::Policy::CoDesign, dram::DensityGb::d32,
        milliseconds(64.0), numCores, /*tasksPerCore=*/4,
        /*timeScale=*/1024);
    cfg.channels = channels;
    cfg.shards = shards;
    cfg.coreLanes = coreLanes;
    return cfg;
}

/** writeStatsJson with the host-wall-clock self-profile removed. */
std::string
statsJsonStripped(core::System &sys, const core::Metrics &m)
{
    std::ostringstream os;
    sys.writeStatsJson(os, m);
    std::string text = os.str();
    const auto at = text.find("\"selfProfile\"");
    if (at != std::string::npos) {
        const auto end = text.find('\n', at);
        text.erase(at, end == std::string::npos ? text.size() - at
                                                : end - at);
    }
    return text;
}

struct ShardRun
{
    std::vector<std::uint8_t> trace;
    std::string statsJson;
    std::uint64_t traceEvents = 0;
};

ShardRun
runOne(const core::SystemConfig &cfg, bool withProbe)
{
    core::System sys(cfg);
    TraceRecorder rec;
    if (withProbe)
        sys.attachProbe(&rec);
    const auto m = sys.run(/*warmupQuanta=*/1, /*measureQuanta=*/2);

    ShardRun r;
    r.trace = rec.data();
    r.traceEvents = rec.eventCount();
    r.statsJson = statsJsonStripped(sys, m);
    return r;
}

ShardRun
runSharded(int channels, int shards, bool withProbe,
           int coreLanes = 0)
{
    return runOne(shardedConfig(channels, shards, coreLanes),
                  withProbe);
}

void
expectSameRun(const ShardRun &ref, const ShardRun &got,
              const std::string &what)
{
    if (ref.trace != got.trace) {
        const TraceDiff d = diffTraces(decodeTrace(ref.trace),
                                       decodeTrace(got.trace));
        ADD_FAILURE() << what << ": trace divergence: "
                      << d.describe();
    }
    EXPECT_EQ(ref.statsJson, got.statsJson) << what;
}

TEST(ShardIdentityTest, TraceIdenticalAcrossShardCounts)
{
    const ShardRun one = runSharded(2, /*shards=*/1, true);
    const ShardRun two = runSharded(2, /*shards=*/2, true);

    EXPECT_GT(one.traceEvents, 0u);
    expectSameRun(one, two, "shards=1 vs shards=2");
}

TEST(ShardIdentityTest, ThreadedStatsIdenticalToSequential)
{
    // No probe attached: shards=2 genuinely runs its channel lanes
    // on worker threads here, shards=1 runs them inline.
    const ShardRun seq = runSharded(2, /*shards=*/1, false);
    const ShardRun thr = runSharded(2, /*shards=*/2, false);
    EXPECT_FALSE(seq.statsJson.empty());
    EXPECT_EQ(seq.statsJson, thr.statsJson);
}

TEST(ShardIdentityTest, OversubscribedWorkersClampAndMatch)
{
    const ShardRun two = runSharded(2, /*shards=*/2, false);
    const ShardRun eight = runSharded(2, /*shards=*/8, false);
    EXPECT_EQ(two.statsJson, eight.statsJson);
}

TEST(ShardIdentityTest, SingleChannelShardedIsDeterministic)
{
    const ShardRun a = runSharded(1, /*shards=*/1, true);
    const ShardRun b = runSharded(1, /*shards=*/1, true);
    EXPECT_GT(a.traceEvents, 0u);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.statsJson, b.statsJson);
}

/**
 * Run one (shards, coreLanes) cell per grid entry under a
 * ParallelRunner worker pool, tracing each.
 */
std::vector<ShardRun>
runMatrix(const std::vector<std::pair<int, int>> &cells, int jobs)
{
    std::vector<ShardRun> runs(cells.size());
    std::vector<core::CellSpec> specs;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const core::SystemConfig cfg =
            shardedConfig(2, cells[i].first, cells[i].second);
        ShardRun *out = &runs[i];
        core::CellSpec spec;
        spec.custom = [cfg, out] {
            core::System sys(cfg);
            TraceRecorder rec;
            sys.attachProbe(&rec);
            const auto m =
                sys.run(/*warmupQuanta=*/1, /*measureQuanta=*/2);
            out->trace = rec.data();
            out->traceEvents = rec.eventCount();
            out->statsJson = statsJsonStripped(sys, m);
            return m;
        };
        specs.push_back(std::move(spec));
    }
    core::ParallelRunner(jobs).runCells(specs);
    return runs;
}

TEST(ShardIdentityTest, CoreLaneMatrixIdenticalAcrossShardsLanesJobs)
{
    // The full lane-mode identity matrix: {shards 0,1,2} x
    // {core-lanes 1,2,8} x {jobs 1,8}.  Lanes=8 on the 2-core
    // config also exercises the oversubscription clamp (effective
    // lanes = numCores = 2).
    //
    // Stats JSON is byte-identical across the ENTIRE matrix: in
    // lane mode the router stages per-core boxes and hands them to
    // the controller at window boundaries whether or not the
    // channels are additionally sharded, so simulated timing does
    // not depend on shards at all.  The golden trace splits into
    // two groups on shards==0 vs shards>=1 -- channel sharding
    // moves the controller's events onto channel lanes, which
    // reorders same-tick trace RECORDS (phase A vs phase B emission
    // order) without moving any event's tick.  The same record-
    // order split exists in the PR 6 seed for coreLanes == 0.
    std::vector<std::pair<int, int>> cells;
    for (int shards : {0, 1, 2})
        for (int lanes : {1, 2, 8})
            cells.emplace_back(shards, lanes);

    const std::vector<ShardRun> seq = runMatrix(cells, /*jobs=*/1);
    const std::vector<ShardRun> par = runMatrix(cells, /*jobs=*/8);

    const ShardRun &ref = seq[0];
    EXPECT_GT(ref.traceEvents, 0u);
    // Trace reference for the shards>=1 subgroup: the first cell
    // with shards == 1 (lanes=1, jobs=1).
    const ShardRun *shardedRef = nullptr;
    for (std::size_t i = 0; i < cells.size(); ++i)
        if (cells[i].first >= 1) {
            shardedRef = &seq[i];
            break;
        }
    ASSERT_NE(shardedRef, nullptr);

    for (std::size_t i = 0; i < cells.size(); ++i) {
        std::ostringstream what;
        what << "shards=" << cells[i].first
             << " lanes=" << cells[i].second;
        const ShardRun &traceRef =
            cells[i].first == 0 ? ref : *shardedRef;
        expectSameRun(traceRef, seq[i], what.str() + " jobs=1");
        expectSameRun(traceRef, par[i], what.str() + " jobs=8");
        // Stats cross the trace groups: identical matrix-wide.
        EXPECT_EQ(ref.statsJson, seq[i].statsJson) << what.str();
        EXPECT_EQ(ref.statsJson, par[i].statsJson) << what.str();
    }
}

TEST(ShardIdentityTest, LegacyLaneZeroIdenticalAcrossShardsAndJobs)
{
    // coreLanes == 0 keeps the PR 6 seed contract: shards >= 1 is
    // one identity group (any worker count, any jobs count), and
    // shards == 0 (no shard kernel at all) is its own deterministic
    // group.
    std::vector<std::pair<int, int>> cells = {
        {0, 0}, {1, 0}, {2, 0}};
    const std::vector<ShardRun> seq = runMatrix(cells, /*jobs=*/1);
    const std::vector<ShardRun> par = runMatrix(cells, /*jobs=*/8);
    EXPECT_GT(seq[0].traceEvents, 0u);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        std::ostringstream what;
        what << "legacy shards=" << cells[i].first;
        const ShardRun &ref = cells[i].first == 0 ? seq[0] : seq[1];
        expectSameRun(ref, seq[i], what.str() + " jobs=1");
        expectSameRun(ref, par[i], what.str() + " jobs=8");
    }
}

TEST(ShardIdentityTest, ThreadedCoreLanePoolMatchesSequential)
{
    // No probe: lanes and channel shards really run on worker
    // threads (workers = shards + effective lanes).  Stats must
    // match the minimal one-worker run.
    const ShardRun one =
        runSharded(2, /*shards=*/0, false, /*coreLanes=*/1);
    const ShardRun pool =
        runSharded(2, /*shards=*/2, false, /*coreLanes=*/2);
    EXPECT_FALSE(one.statsJson.empty());
    EXPECT_EQ(one.statsJson, pool.statsJson);
}

TEST(ShardIdentityTest, LaneIdentityHoldsOnEveryRefreshPolicy)
{
    // The async (boundary-ordered) L2 and fill delivery must stay a
    // partition invariant under every refresh scheduler, since each
    // policy shifts DRAM completion times differently.  Threaded
    // (no probe), lanes=1 vs lanes=2 per policy.
    for (core::Policy p :
         {core::Policy::NoRefresh, core::Policy::AllBank,
          core::Policy::PerBank, core::Policy::PerBankOoo,
          core::Policy::Adaptive, core::Policy::CoDesign}) {
        core::SystemConfig a = shardedConfig(2, 0, /*coreLanes=*/1);
        a.applyPolicy(p);
        core::SystemConfig b = shardedConfig(2, 0, /*coreLanes=*/2);
        b.applyPolicy(p);
        const ShardRun ra = runOne(a, false);
        const ShardRun rb = runOne(b, false);
        EXPECT_FALSE(ra.statsJson.empty());
        EXPECT_EQ(ra.statsJson, rb.statsJson)
            << "policy " << core::toString(p);
    }
}

TEST(ServingIdentityTest, OpenLoopInjectionIdenticalAcrossPartitionings)
{
    // Open-loop serving arrivals land on the main lane and their
    // line requests route to owning channel lanes; both sides must
    // stay partition invariants.  Lane-mode identity group:
    // {shards 1,2} x {core-lanes 1,2} x {jobs 1,8} byte-identical
    // stats (which include every serving.* histogram), plus the
    // legacy kernel (shards=0, lanes=0) deterministic on its own.
    auto servingCfg = [](int shards, int lanes) {
        core::SystemConfig cfg = shardedConfig(2, shards, lanes);
        cfg.serving = workload::ServingConfig::parse(
            "arrival=mmpp,load=0.3,pool=4,queue=16,lines=4");
        return cfg;
    };

    std::vector<std::pair<int, int>> cells = {
        {1, 1}, {2, 1}, {1, 2}, {2, 2}};
    std::vector<ShardRun> seq, par;
    for (int jobs : {1, 8}) {
        std::vector<ShardRun> runs(cells.size());
        std::vector<core::CellSpec> specs;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const core::SystemConfig cfg =
                servingCfg(cells[i].first, cells[i].second);
            ShardRun *out = &runs[i];
            core::CellSpec spec;
            spec.custom = [cfg, out] {
                core::System sys(cfg);
                const auto m = sys.run(/*warmupQuanta=*/1,
                                       /*measureQuanta=*/2);
                out->statsJson = statsJsonStripped(sys, m);
                return m;
            };
            specs.push_back(std::move(spec));
        }
        core::ParallelRunner(jobs).runCells(specs);
        (jobs == 1 ? seq : par) = std::move(runs);
    }

    ASSERT_FALSE(seq[0].statsJson.empty());
    // The stats must actually contain serving data, or this test
    // proves nothing.
    EXPECT_NE(seq[0].statsJson.find("serving.arrivals"),
              std::string::npos);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        std::ostringstream what;
        what << "serving shards=" << cells[i].first
             << " lanes=" << cells[i].second;
        EXPECT_EQ(seq[0].statsJson, seq[i].statsJson)
            << what.str() << " jobs=1";
        EXPECT_EQ(seq[0].statsJson, par[i].statsJson)
            << what.str() << " jobs=8";
    }

    // Legacy kernel with serving: deterministic run-to-run.
    const core::SystemConfig legacy = servingCfg(0, 0);
    const ShardRun a = runOne(legacy, false);
    const ShardRun b = runOne(legacy, false);
    EXPECT_EQ(a.statsJson, b.statsJson);
    EXPECT_NE(a.statsJson.find("serving.arrivals"),
              std::string::npos);
}

TEST(ShardIdentityTest, ScenarioChurnMigrationCrossesClusters)
{
    // Tenant churn + page migration on a 4-core system whose lane
    // clusters are {0,1} and {2,3} (lanes=2) or one core each
    // (lanes=4): spawns pinned to cores 0 and 3 land in different
    // clusters, the kill + re-binpack strands pages, and migration
    // traffic crosses cluster boundaries.  All lane counts must
    // produce the same golden trace.
    workload::ScenarioScript script;
    {
        workload::ScenarioEvent spawn;
        spawn.quantum = 1;
        spawn.kind = workload::ScenarioEventKind::Spawn;
        spawn.benchmark = "stream";
        spawn.cpu = 0;
        script.events.push_back(spawn);
        spawn.quantum = 2;
        spawn.benchmark = "mcf";
        spawn.cpu = 3;
        script.events.push_back(spawn);
        workload::ScenarioEvent kill;
        kill.quantum = 3;
        kill.kind = workload::ScenarioEventKind::Kill;
        kill.pid = 2;
        script.events.push_back(kill);
    }
    script.migrate = true;
    script.reassignOnChurn = true;

    std::vector<ShardRun> runs;
    for (int lanes : {1, 2, 4}) {
        core::SystemConfig cfg =
            shardedConfig(2, /*shards=*/2, lanes, /*numCores=*/4);
        cfg.scenario = script;
        core::System sys(cfg);
        TraceRecorder rec;
        sys.attachProbe(&rec);
        const auto m =
            sys.run(/*warmupQuanta=*/0, /*measureQuanta=*/6);
        ShardRun r;
        r.trace = rec.data();
        r.traceEvents = rec.eventCount();
        r.statsJson = statsJsonStripped(sys, m);
        runs.push_back(std::move(r));
    }
    EXPECT_GT(runs[0].traceEvents, 0u);
    expectSameRun(runs[0], runs[1], "scenario lanes=1 vs lanes=2");
    expectSameRun(runs[0], runs[2], "scenario lanes=1 vs lanes=4");
}

} // namespace
} // namespace refsched::validate
