/**
 * @file
 * Differential determinism proof for the sharded event kernel: a
 * run is bit-identical for every shard (worker) count.  shards=1
 * executes the channel lanes sequentially on the caller's thread;
 * shards=channels runs them on worker threads (or, with a probe
 * attached, sequentially again -- the kernel's phase order makes
 * the difference unobservable, which is exactly what is asserted
 * here).  Compared artifacts: the full golden trace (every DRAM
 * command, scheduler pick, and page movement at its tick) and the
 * stats-JSON document minus the host-dependent self-profile line.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/system.hh"
#include "validate/golden_trace.hh"

namespace refsched::validate
{
namespace
{

core::SystemConfig
shardedConfig(int channels, int shards)
{
    core::SystemConfig cfg = core::makeConfig(
        "WL-1", core::Policy::CoDesign, dram::DensityGb::d32,
        milliseconds(64.0), /*numCores=*/2, /*tasksPerCore=*/4,
        /*timeScale=*/1024);
    cfg.channels = channels;
    cfg.shards = shards;
    return cfg;
}

/** writeStatsJson with the host-wall-clock self-profile removed. */
std::string
statsJsonStripped(core::System &sys, const core::Metrics &m)
{
    std::ostringstream os;
    sys.writeStatsJson(os, m);
    std::string text = os.str();
    const auto at = text.find("\"selfProfile\"");
    if (at != std::string::npos) {
        const auto end = text.find('\n', at);
        text.erase(at, end == std::string::npos ? text.size() - at
                                                : end - at);
    }
    return text;
}

struct ShardRun
{
    std::vector<std::uint8_t> trace;
    std::string statsJson;
    std::uint64_t traceEvents = 0;
};

ShardRun
runSharded(int channels, int shards, bool withProbe)
{
    core::System sys(shardedConfig(channels, shards));
    TraceRecorder rec;
    if (withProbe)
        sys.attachProbe(&rec);
    const auto m = sys.run(/*warmupQuanta=*/1, /*measureQuanta=*/2);

    ShardRun r;
    r.trace = rec.data();
    r.traceEvents = rec.eventCount();
    r.statsJson = statsJsonStripped(sys, m);
    return r;
}

TEST(ShardIdentityTest, TraceIdenticalAcrossShardCounts)
{
    const ShardRun one = runSharded(2, /*shards=*/1, true);
    const ShardRun two = runSharded(2, /*shards=*/2, true);

    EXPECT_GT(one.traceEvents, 0u);
    if (one.trace != two.trace) {
        const TraceDiff d = diffTraces(decodeTrace(one.trace),
                                       decodeTrace(two.trace));
        ADD_FAILURE() << "shards=1 vs shards=2 trace divergence: "
                      << d.describe();
    }
    EXPECT_EQ(one.statsJson, two.statsJson);
}

TEST(ShardIdentityTest, ThreadedStatsIdenticalToSequential)
{
    // No probe attached: shards=2 genuinely runs its channel lanes
    // on worker threads here, shards=1 runs them inline.
    const ShardRun seq = runSharded(2, /*shards=*/1, false);
    const ShardRun thr = runSharded(2, /*shards=*/2, false);
    EXPECT_FALSE(seq.statsJson.empty());
    EXPECT_EQ(seq.statsJson, thr.statsJson);
}

TEST(ShardIdentityTest, OversubscribedWorkersClampAndMatch)
{
    const ShardRun two = runSharded(2, /*shards=*/2, false);
    const ShardRun eight = runSharded(2, /*shards=*/8, false);
    EXPECT_EQ(two.statsJson, eight.statsJson);
}

TEST(ShardIdentityTest, SingleChannelShardedIsDeterministic)
{
    const ShardRun a = runSharded(1, /*shards=*/1, true);
    const ShardRun b = runSharded(1, /*shards=*/1, true);
    EXPECT_GT(a.traceEvents, 0u);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.statsJson, b.statsJson);
}

} // namespace
} // namespace refsched::validate
