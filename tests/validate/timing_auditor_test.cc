/**
 * @file
 * Unit tests for the JEDEC timing auditor: a legal command stream
 * must pass silently, and every class of protocol breach (tRCD, tRP,
 * tRAS, tCCD, tFAW, commands colliding with refresh, state-machine
 * misuse) must be flagged with the offending tick.
 */

#include <gtest/gtest.h>

#include <string>

#include "dram/timings.hh"
#include "validate/timing_auditor.hh"

namespace refsched::validate
{
namespace
{

/** Default DDR3-2000-ish device (tRCD/tRP 13.75 ns, tRAS 35 ns,
 *  tCCD/tBURST 5 ns, tRRD 6 ns, tFAW 30 ns, tRC 48.75 ns). */
dram::DramDeviceConfig
device()
{
    return dram::DramDeviceConfig{};
}

DramCmdEvent
cmd(Tick tick, DramOp op, int bank, std::uint64_t row = 0,
    Tick busyUntil = 0)
{
    DramCmdEvent ev;
    ev.tick = tick;
    ev.op = op;
    ev.channel = 0;
    ev.rank = 0;
    ev.bank = bank;
    ev.row = row;
    ev.busyUntil = busyUntil;
    return ev;
}

/** True when some stored violation message contains @p needle. */
bool
hasViolation(const Checker &c, const std::string &needle)
{
    for (const auto &v : c.violations()) {
        if (v.message.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

TEST(TimingAuditorTest, LegalStreamIsClean)
{
    TimingAuditor aud(device());

    // Open, read twice at tCCD spacing, close at tRAS, reopen at
    // tRP, write, close honouring tWR, refresh, reopen after tRFC.
    aud.onDramCommand(cmd(0, DramOp::Act, 0, 7));
    aud.onDramCommand(cmd(13'750, DramOp::Read, 0, 7));
    aud.onDramCommand(cmd(18'750, DramOp::Read, 0, 7));
    aud.onDramCommand(cmd(35'000, DramOp::Pre, 0));
    aud.onDramCommand(cmd(48'750, DramOp::Act, 0, 9));
    aud.onDramCommand(cmd(62'500, DramOp::Write, 0, 9));
    // Write burst ends 62500 + tCWL + tBURST = 77500; PRE needs
    // +tWR = 92500 (tRAS is long past).
    aud.onDramCommand(cmd(92'500, DramOp::Pre, 0));
    aud.onDramCommand(
        cmd(106'250, DramOp::RefPerBank, 0, 64, 106'250 + 386'956));
    aud.onDramCommand(cmd(493'206, DramOp::Act, 0, 11));

    EXPECT_EQ(aud.violationCount(), 0u)
        << (aud.violations().empty() ? ""
                                     : aud.violations()[0].message);
}

TEST(TimingAuditorTest, CasBeforeTrcdFlagged)
{
    TimingAuditor aud(device());
    aud.onDramCommand(cmd(0, DramOp::Act, 0, 1));
    aud.onDramCommand(cmd(10'000, DramOp::Read, 0, 1));
    EXPECT_EQ(aud.violationCount(), 1u);
    EXPECT_TRUE(hasViolation(aud, "tRCD violation"));
    EXPECT_EQ(aud.violations()[0].tick, 10'000u);
}

TEST(TimingAuditorTest, ActBeforeTrpFlagged)
{
    TimingAuditor aud(device());
    aud.onDramCommand(cmd(0, DramOp::Act, 0, 1));
    aud.onDramCommand(cmd(40'000, DramOp::Pre, 0));
    // 50000 >= tRC (48750) so only the PRE->ACT gap (13.75 ns) is
    // violated: 50000 < 40000 + 13750.
    aud.onDramCommand(cmd(50'000, DramOp::Act, 0, 2));
    EXPECT_EQ(aud.violationCount(), 1u);
    EXPECT_TRUE(hasViolation(aud, "tRP violation"));
}

TEST(TimingAuditorTest, PreBeforeTrasFlagged)
{
    TimingAuditor aud(device());
    aud.onDramCommand(cmd(0, DramOp::Act, 0, 1));
    aud.onDramCommand(cmd(20'000, DramOp::Pre, 0));
    EXPECT_EQ(aud.violationCount(), 1u);
    EXPECT_TRUE(hasViolation(aud, "tRAS violation"));
}

TEST(TimingAuditorTest, BackToBackCasFlagged)
{
    TimingAuditor aud(device());
    aud.onDramCommand(cmd(0, DramOp::Act, 0, 1));
    aud.onDramCommand(cmd(13'750, DramOp::Read, 0, 1));
    // 15000 < 13750 + tCCD: breaks both the bank CAS-to-CAS gap and
    // the shared data bus (tBURST has the same length).
    aud.onDramCommand(cmd(15'000, DramOp::Read, 0, 1));
    EXPECT_TRUE(hasViolation(aud, "tCCD violation"));
    EXPECT_TRUE(hasViolation(aud, "data-bus violation"));
}

TEST(TimingAuditorTest, FifthActWithinTfawFlagged)
{
    TimingAuditor aud(device());
    // Five ACTs to distinct banks at exactly tRRD spacing: legal
    // pairwise, but the 5th lands 24 ns after the 1st, inside
    // tFAW = 30 ns.
    for (int i = 0; i < 5; ++i)
        aud.onDramCommand(
            cmd(static_cast<Tick>(i) * 6'000, DramOp::Act, i, 1));
    EXPECT_EQ(aud.violationCount(), 1u);
    EXPECT_TRUE(hasViolation(aud, "tFAW violation"));
    EXPECT_EQ(aud.violations()[0].tick, 24'000u);
}

TEST(TimingAuditorTest, RefreshToOpenBankFlagged)
{
    TimingAuditor aud(device());
    aud.onDramCommand(cmd(0, DramOp::Act, 0, 1));
    aud.onDramCommand(
        cmd(40'000, DramOp::RefPerBank, 0, 64, 40'000 + 386'956));
    EXPECT_EQ(aud.violationCount(), 1u);
    EXPECT_TRUE(hasViolation(aud, "while the bank is open"));
}

TEST(TimingAuditorTest, CommandsDuringRefreshFlagged)
{
    TimingAuditor aud(device());
    aud.onDramCommand(cmd(0, DramOp::RefPerBank, 0, 64, 500'000));
    aud.onDramCommand(cmd(100'000, DramOp::Act, 0, 1));
    aud.onDramCommand(cmd(113'750, DramOp::Read, 0, 1));
    EXPECT_EQ(aud.violationCount(), 2u);
    EXPECT_TRUE(hasViolation(aud, "during per-bank refresh"));
    EXPECT_TRUE(hasViolation(aud, "during refresh"));
}

TEST(TimingAuditorTest, DoubleActWithoutPreFlagged)
{
    TimingAuditor aud(device());
    aud.onDramCommand(cmd(0, DramOp::Act, 0, 1));
    aud.onDramCommand(cmd(48'750, DramOp::Act, 0, 2));
    EXPECT_EQ(aud.violationCount(), 1u);
    EXPECT_TRUE(hasViolation(aud, "already open"));
}

TEST(TimingAuditorTest, AllBankRefreshChecksEveryBank)
{
    TimingAuditor aud(device());
    aud.onDramCommand(cmd(0, DramOp::Act, 3, 1));
    DramCmdEvent ref = cmd(40'000, DramOp::RefAllBank, -1, 512,
                           40'000 + 890'000);
    aud.onDramCommand(ref);
    EXPECT_EQ(aud.violationCount(), 1u);
    EXPECT_TRUE(hasViolation(aud, "while bank 3 is open"));

    // A second REFab inside the first one's tRFC window.
    aud.onDramCommand(
        cmd(500'000, DramOp::RefAllBank, -1, 512, 500'000 + 890'000));
    EXPECT_TRUE(hasViolation(aud, "tRFC_ab violation"));
}

TEST(TimingAuditorTest, PauseWithoutRefreshInFlightFlagged)
{
    TimingAuditor aud(device());
    aud.onDramCommand(cmd(0, DramOp::RefPause, 0, 32, 0));
    EXPECT_EQ(aud.violationCount(), 1u);
    EXPECT_TRUE(hasViolation(aud, "no refresh is in flight"));

    // A legitimate pause shortens the busy window: no new violation.
    aud.onDramCommand(
        cmd(10'000, DramOp::RefPerBank, 0, 64, 10'000 + 386'956));
    aud.onDramCommand(cmd(50'000, DramOp::RefPause, 0, 32, 50'000));
    EXPECT_EQ(aud.violationCount(), 1u);
}

} // namespace
} // namespace refsched::validate
