/**
 * @file
 * End-to-end validation runs: every policy bundle the paper
 * evaluates, simulated with the full checker set attached
 * (cfg.validate), must complete with zero invariant violations, and
 * the checker plumbing (metrics fields, external probes sharing the
 * hub) must behave as documented.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/system.hh"
#include "validate/checker.hh"
#include "validate/golden_trace.hh"

namespace refsched::validate
{
namespace
{

constexpr core::Policy kPolicies[] = {
    core::Policy::AllBank,    core::Policy::PerBank,
    core::Policy::PerBankOoo, core::Policy::Ddr4x2,
    core::Policy::Ddr4x4,     core::Policy::Adaptive,
    core::Policy::CoDesign,   core::Policy::NoRefresh,
};

core::SystemConfig
smallConfig(core::Policy policy)
{
    core::SystemConfig cfg = core::makeConfig(
        "WL-8", policy, dram::DensityGb::d32, milliseconds(64.0),
        /*numCores=*/2, /*tasksPerCore=*/4, /*timeScale=*/1024);
    cfg.validate = true;
    return cfg;
}

TEST(ValidateIntegrationTest, HookLayerCompiledInForTests)
{
    // The test build must carry the hooks; the novalidate preset
    // exists precisely so the overhead claim is checked elsewhere.
    EXPECT_TRUE(kValidateCompiledIn);
}

TEST(ValidateIntegrationTest, AllPoliciesRunCleanUnderValidation)
{
    for (const auto policy : kPolicies) {
        SCOPED_TRACE(core::toString(policy));
        core::System sys(smallConfig(policy));
        ASSERT_NE(sys.checkers(), nullptr);
        EXPECT_EQ(sys.checkers()->checkers().size(), 4u);

        const core::Metrics m = sys.run(1, 2);
        EXPECT_EQ(m.validationViolations, 0u) << m.firstViolation;
        EXPECT_TRUE(m.firstViolation.empty()) << m.firstViolation;
        EXPECT_EQ(sys.checkers()->violationCount(), 0u);
        EXPECT_EQ(sys.checkers()->firstViolation(), nullptr);
    }
}

TEST(ValidateIntegrationTest, ExternalProbeSharesTheHubWithCheckers)
{
    core::SystemConfig cfg = smallConfig(core::Policy::CoDesign);
    TraceRecorder rec;
    core::System sys(cfg);
    sys.attachProbe(&rec);
    const core::Metrics m = sys.run(1, 2);
    EXPECT_EQ(m.validationViolations, 0u) << m.firstViolation;
    // The recorder saw the same event stream the checkers audited.
    EXPECT_GT(rec.eventCount(), 0u);
}

TEST(ValidateIntegrationTest, ValidationOffInstallsNoCheckers)
{
    core::SystemConfig cfg = smallConfig(core::Policy::AllBank);
    cfg.validate = false;
    core::System sys(cfg);
    EXPECT_EQ(sys.checkers(), nullptr);
    const core::Metrics m = sys.run(1, 2);
    EXPECT_EQ(m.validationViolations, 0u);
    EXPECT_TRUE(m.firstViolation.empty());
}

} // namespace
} // namespace refsched::validate
