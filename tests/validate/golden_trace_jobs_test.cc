/**
 * @file
 * Differential determinism proof for the parallel experiment runner:
 * the same figure-bench cells executed with jobs=1 and jobs=8 must
 * produce byte-identical golden traces (every DRAM command, pick
 * decision, and page movement at the same tick), for two different
 * figure workload/policy grids.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/parallel_runner.hh"
#include "core/system.hh"
#include "validate/golden_trace.hh"

namespace refsched::validate
{
namespace
{

struct JobsCell
{
    const char *workload;
    core::Policy policy;
};

/** Run @p cells under @p jobs workers, tracing each into recs[i]. */
std::vector<core::Metrics>
runGrid(const std::vector<JobsCell> &cells, int jobs,
        std::vector<TraceRecorder> &recs)
{
    recs.assign(cells.size(), TraceRecorder{});
    std::vector<core::CellSpec> specs;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        core::SystemConfig cfg = core::makeConfig(
            cells[i].workload, cells[i].policy, dram::DensityGb::d32,
            milliseconds(64.0), /*numCores=*/2, /*tasksPerCore=*/4,
            /*timeScale=*/1024);
        TraceRecorder *rec = &recs[i];
        core::CellSpec spec;
        spec.custom = [cfg, rec] {
            core::System sys(cfg);
            sys.attachProbe(rec);
            return sys.run(/*warmupQuanta=*/1, /*measureQuanta=*/2);
        };
        specs.push_back(std::move(spec));
    }
    return core::ParallelRunner(jobs).runCells(specs);
}

void
expectIdenticalTraces(const std::vector<JobsCell> &cells)
{
    std::vector<TraceRecorder> seq, par;
    runGrid(cells, /*jobs=*/1, seq);
    runGrid(cells, /*jobs=*/8, par);

    for (std::size_t i = 0; i < cells.size(); ++i) {
        SCOPED_TRACE(testing::Message()
                     << cells[i].workload << " / "
                     << core::toString(cells[i].policy));
        // A trivial trace would make the comparison vacuous.
        EXPECT_GT(seq[i].eventCount(), 0u);
        if (seq[i].data() == par[i].data())
            continue;
        const TraceDiff d = diffTraces(decodeTrace(seq[i].data()),
                                       decodeTrace(par[i].data()));
        ADD_FAILURE() << "jobs=1 vs jobs=8 trace divergence: "
                      << d.describe();
    }
}

TEST(GoldenTraceJobsTest, MemoryBoundGridIdenticalAcrossJobCounts)
{
    expectIdenticalTraces({{"WL-1", core::Policy::AllBank},
                           {"WL-1", core::Policy::CoDesign}});
}

TEST(GoldenTraceJobsTest, MixedGridIdenticalAcrossJobCounts)
{
    expectIdenticalTraces({{"WL-8", core::Policy::PerBank},
                           {"WL-8", core::Policy::CoDesign}});
}

} // namespace
} // namespace refsched::validate
