/**
 * @file
 * Unit tests for the OS auditor: buddy-allocator conservation and
 * bank-mask confinement, runqueue mirror bookkeeping, and the
 * re-derivation of Algorithm 3's pick contract from the recorded
 * candidate walks.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dram/address_mapping.hh"
#include "os/buddy_allocator.hh"
#include "validate/os_auditor.hh"

namespace refsched::validate
{
namespace
{

dram::DramOrganization
smallOrg()
{
    dram::DramOrganization org;
    org.channels = 1;
    org.ranksPerChannel = 2;
    org.banksPerRank = 4;
    org.rowsPerBank = 32;  // 8 banks x 32 frames = 256 frames
    return org;
}

/** All page frames that land in global bank @p bank. */
std::vector<std::uint64_t>
framesInBank(const dram::AddressMapping &m, int bank)
{
    std::vector<std::uint64_t> pfns;
    for (std::uint64_t pfn = 0; pfn < m.totalFrames(); ++pfn) {
        if (m.bankOfFrame(pfn) == bank)
            pfns.push_back(pfn);
    }
    return pfns;
}

PageAllocEvent
alloc(Tick tick, Pid pid, std::uint64_t pfn, bool fallback = false,
      const std::vector<bool> *allowed = nullptr)
{
    PageAllocEvent ev;
    ev.tick = tick;
    ev.pid = pid;
    ev.pfn = pfn;
    ev.fallback = fallback;
    ev.allowedBanks = allowed;
    return ev;
}

RqEvent
rq(Tick tick, int cpu, Pid pid, Tick vruntime)
{
    RqEvent ev;
    ev.tick = tick;
    ev.cpu = cpu;
    ev.pid = pid;
    ev.vruntime = vruntime;
    return ev;
}

bool
hasViolation(const Checker &c, const std::string &needle)
{
    for (const auto &v : c.violations()) {
        if (v.message.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

TEST(OsAuditorTest, RealAllocatorChurnIsClean)
{
    dram::AddressMapping mapping(smallOrg());
    os::BuddyAllocator buddy(mapping);
    OsAuditor aud(mapping, &buddy, false, 64, true);

    std::vector<std::uint64_t> pfns;
    for (int i = 0; i < 32; ++i) {
        const auto pfn = buddy.allocPageAnyBank(nullptr);
        ASSERT_TRUE(pfn.has_value());
        aud.onPageAlloc(alloc(static_cast<Tick>(i), -1, *pfn,
                              /*fallback=*/true));
        pfns.push_back(*pfn);
    }
    for (std::size_t i = 0; i < pfns.size(); ++i) {
        buddy.freePage(pfns[i]);
        PageFreeEvent ev;
        ev.tick = 100 + static_cast<Tick>(i);
        ev.pfn = pfns[i];
        aud.onPageFree(ev);
    }
    aud.finalize(1'000);
    EXPECT_EQ(aud.violationCount(), 0u)
        << (aud.violations().empty() ? ""
                                     : aud.violations()[0].message);
}

TEST(OsAuditorTest, DoubleAllocationFlagged)
{
    dram::AddressMapping mapping(smallOrg());
    OsAuditor aud(mapping, nullptr, false, 64, true);
    aud.onPageAlloc(alloc(1, 1, 5));
    aud.onPageAlloc(alloc(2, 2, 5));
    EXPECT_EQ(aud.violationCount(), 1u);
    EXPECT_TRUE(hasViolation(aud, "allocated twice"));
}

TEST(OsAuditorTest, UntrackedFreeFlagged)
{
    dram::AddressMapping mapping(smallOrg());
    OsAuditor aud(mapping, nullptr, false, 64, true);
    PageFreeEvent ev;
    ev.tick = 3;
    ev.pfn = 7;
    aud.onPageFree(ev);
    EXPECT_EQ(aud.violationCount(), 1u);
    EXPECT_TRUE(hasViolation(aud, "freed while not allocated"));
}

TEST(OsAuditorTest, OutOfRangeFrameFlagged)
{
    dram::AddressMapping mapping(smallOrg());
    OsAuditor aud(mapping, nullptr, false, 64, true);
    aud.onPageAlloc(alloc(1, 1, 1'000'000));
    EXPECT_EQ(aud.violationCount(), 1u);
    EXPECT_TRUE(hasViolation(aud, "out of range"));
}

TEST(OsAuditorTest, BankMaskConfinementFlagged)
{
    dram::AddressMapping mapping(smallOrg());
    // A mask that forbids every bank except bank 1, then an
    // allocation landing in bank 0.
    std::vector<bool> mask(
        static_cast<std::size_t>(mapping.totalBanks()), false);
    mask[1] = true;
    const auto pfn = framesInBank(mapping, 0).front();

    {
        OsAuditor aud(mapping, nullptr, false, 64, true);
        aud.onPageAlloc(alloc(1, 1, pfn, /*fallback=*/false, &mask));
        EXPECT_EQ(aud.violationCount(), 1u);
        EXPECT_TRUE(hasViolation(aud, "bank-mask confinement broken"));
    }
    {
        // The same allocation marked as an Algorithm 2 fallback is
        // legitimate -- but only once the permitted bank is full.
        OsAuditor aud(mapping, nullptr, false, 64, true);
        Tick t = 1;
        for (const auto full : framesInBank(mapping, 1))
            aud.onPageAlloc(alloc(t++, 1, full, /*fallback=*/false,
                                  &mask));
        aud.onPageAlloc(alloc(t, 1, pfn, /*fallback=*/true, &mask));
        EXPECT_EQ(aud.violationCount(), 0u)
            << aud.violations().front().message;
    }
}

TEST(OsAuditorTest, UnjustifiedSpillFlagged)
{
    dram::AddressMapping mapping(smallOrg());
    // Bank 1 is permitted and still has every frame free: a fallback
    // allocation spilling into bank 0 means Algorithm 2's rotation
    // skipped a bank with free pages -- the soft partition was
    // violated without need.
    std::vector<bool> mask(
        static_cast<std::size_t>(mapping.totalBanks()), false);
    mask[1] = true;
    const auto pfn = framesInBank(mapping, 0).front();

    OsAuditor aud(mapping, nullptr, false, 64, true);
    aud.onPageAlloc(alloc(1, 1, pfn, /*fallback=*/true, &mask));
    EXPECT_EQ(aud.violationCount(), 1u);
    EXPECT_TRUE(hasViolation(aud, "unjustified spill"));
}

TEST(OsAuditorTest, ConservationMismatchFlagged)
{
    dram::AddressMapping mapping(smallOrg());
    os::BuddyAllocator buddy(mapping);
    OsAuditor aud(mapping, &buddy, false, 64, true);
    // An alloc event the allocator never saw: allocated + free can
    // no longer equal the frame total.
    aud.onPageAlloc(alloc(1, 1, 3));
    EXPECT_EQ(aud.violationCount(), 1u);
    EXPECT_TRUE(hasViolation(aud, "frame conservation broken"));
}

TEST(OsAuditorTest, RunqueueMirrorCatchesDoubleEnqueueAndBogusDequeue)
{
    dram::AddressMapping mapping(smallOrg());
    OsAuditor aud(mapping, nullptr, false, 64, true);
    aud.onRqEnqueue(rq(1, 0, 1, 10));
    aud.onRqEnqueue(rq(2, 0, 1, 10));
    EXPECT_TRUE(hasViolation(aud, "enqueued twice"));
    aud.onRqDequeue(rq(3, 0, 9, 50));
    EXPECT_TRUE(hasViolation(aud, "but not enqueued there"));
    EXPECT_EQ(aud.violationCount(), 2u);
}

TEST(OsAuditorTest, BaselinePickAuditing)
{
    dram::AddressMapping mapping(smallOrg());
    OsAuditor aud(mapping, nullptr, false, 64, true);
    aud.onRqEnqueue(rq(1, 0, 1, 10));
    aud.onRqEnqueue(rq(1, 0, 2, 20));

    SchedPickEvent ok;
    ok.tick = 2;
    ok.kind = PickKind::Baseline;
    ok.chosen = 1;
    aud.onSchedPick(ok);
    EXPECT_EQ(aud.violationCount(), 0u);

    SchedPickEvent wrong = ok;
    wrong.tick = 3;
    wrong.chosen = 2;
    aud.onSchedPick(wrong);
    EXPECT_EQ(aud.violationCount(), 1u);
    EXPECT_TRUE(hasViolation(aud, "leftmost is 1"));

    SchedPickEvent idle;
    idle.tick = 4;
    idle.kind = PickKind::Idle;
    aud.onSchedPick(idle);
    EXPECT_TRUE(hasViolation(aud, "idled with 2 runnable"));
}

/** Shared fixture state for refresh-aware pick audits: pid 1 is
 *  resident in bank 0 (dirty when bank 0 refreshes), pid 2 in
 *  bank 1 (clean). */
struct PickSetup
{
    dram::AddressMapping mapping{smallOrg()};
    OsAuditor aud;
    std::vector<int> refreshBanks{0};
    std::vector<SchedCandidate> cands;

    explicit PickSetup(int eta, bool bestEffort)
        : aud(mapping, nullptr, /*refreshAware=*/true, eta, bestEffort)
    {
        aud.onPageAlloc(alloc(1, 1, framesInBank(mapping, 0)[0]));
        aud.onPageAlloc(alloc(2, 2, framesInBank(mapping, 1)[0]));
        aud.onRqEnqueue(rq(3, 0, 1, 10));
        aud.onRqEnqueue(rq(3, 0, 2, 20));
    }

    SchedPickEvent
    pick(PickKind kind, Pid chosen, int eta, bool bestEffort)
    {
        SchedPickEvent ev;
        ev.tick = 10;
        ev.kind = kind;
        ev.chosen = chosen;
        ev.etaThresh = eta;
        ev.bestEffort = bestEffort;
        ev.refreshBanks = &refreshBanks;
        ev.candidates = &cands;
        return ev;
    }
};

TEST(OsAuditorTest, CleanPickAcceptedAndWrongChoiceFlagged)
{
    {
        PickSetup s(2, false);
        s.cands = {{1, 10, false, 1.0}, {2, 20, true, 0.0}};
        s.aud.onSchedPick(s.pick(PickKind::Clean, 2, 2, false));
        EXPECT_EQ(s.aud.violationCount(), 0u)
            << s.aud.violations()[0].message;
    }
    {
        PickSetup s(2, false);
        s.cands = {{1, 10, false, 1.0}, {2, 20, true, 0.0}};
        s.aud.onSchedPick(s.pick(PickKind::Clean, 1, 2, false));
        EXPECT_EQ(s.aud.violationCount(), 1u);
        EXPECT_TRUE(
            hasViolation(s.aud, "should pick clean pid 2, picked 1"));
    }
}

TEST(OsAuditorTest, CleanBitCrossCheckedAgainstResidency)
{
    PickSetup s(2, false);
    // The walk claims pid 1 is clean, but pid 1 holds a page in the
    // refreshing bank 0.
    s.cands = {{1, 10, true, 0.0}};
    s.aud.onSchedPick(s.pick(PickKind::Clean, 1, 2, false));
    EXPECT_TRUE(hasViolation(s.aud, "clean bit mismatch for pid 1"));
}

TEST(OsAuditorTest, WalkContinuingPastCleanTaskFlagged)
{
    PickSetup s(2, false);
    // pid 2 (clean) examined first yet the walk went on: the emitter
    // is required to stop at the first clean candidate.
    s.aud.onRqDequeue(rq(4, 0, 1, 10));
    s.aud.onRqEnqueue(rq(4, 0, 1, 30));  // pid 2 now leftmost
    s.cands = {{2, 20, true, 0.0}, {1, 30, false, 1.0}};
    s.aud.onSchedPick(s.pick(PickKind::Clean, 2, 2, false));
    EXPECT_EQ(s.aud.violationCount(), 1u);
    EXPECT_TRUE(hasViolation(s.aud, "continued past clean pid 2"));
}

TEST(OsAuditorTest, PrematureWalkExhaustionFlagged)
{
    PickSetup s(2, false);
    // Both tasks are enqueued and eta is 2, but the walk gave up
    // after one dirty candidate.
    s.cands = {{1, 10, false, 1.0}};
    s.aud.onSchedPick(s.pick(PickKind::Fallback, 1, 2, false));
    EXPECT_EQ(s.aud.violationCount(), 1u);
    EXPECT_TRUE(hasViolation(s.aud, "gave up after 1 candidates"));
}

TEST(OsAuditorTest, WalkPrefixMismatchFlagged)
{
    PickSetup s(2, false);
    // The recorded walk disagrees with the mirrored runqueue order.
    s.cands = {{2, 20, false, 0.5}, {1, 10, false, 1.0}};
    s.aud.onSchedPick(s.pick(PickKind::Fallback, 1, 2, false));
    EXPECT_TRUE(hasViolation(s.aud, "pick walk on cpu 0 position 0"));
}

TEST(OsAuditorTest, BestEffortChoiceChecked)
{
    {
        // pid 2 dirty too (second page in bank 0), lower residency:
        // it is the correct best-effort pick.
        PickSetup s(2, true);
        s.aud.onPageAlloc(alloc(5, 2, framesInBank(s.mapping, 0)[1]));
        s.cands = {{1, 10, false, 1.0}, {2, 20, false, 0.3}};
        s.aud.onSchedPick(s.pick(PickKind::BestEffort, 2, 2, true));
        EXPECT_EQ(s.aud.violationCount(), 0u)
            << s.aud.violations()[0].message;
    }
    {
        PickSetup s(2, true);
        s.aud.onPageAlloc(alloc(5, 2, framesInBank(s.mapping, 0)[1]));
        s.cands = {{1, 10, false, 1.0}, {2, 20, false, 0.3}};
        s.aud.onSchedPick(s.pick(PickKind::BestEffort, 1, 2, true));
        EXPECT_EQ(s.aud.violationCount(), 1u);
        EXPECT_TRUE(
            hasViolation(s.aud, "should pick best-effort pid 2"));
    }
}

TEST(OsAuditorTest, RefreshAwarePickWithSchedulingOffFlagged)
{
    dram::AddressMapping mapping(smallOrg());
    OsAuditor aud(mapping, nullptr, /*refreshAware=*/false, 64, true);
    aud.onRqEnqueue(rq(1, 0, 1, 10));
    std::vector<SchedCandidate> cands = {{1, 10, false, 1.0}};
    std::vector<int> banks = {0};
    SchedPickEvent ev;
    ev.tick = 2;
    ev.kind = PickKind::Fallback;
    ev.chosen = 1;
    ev.etaThresh = 1;
    ev.refreshBanks = &banks;
    ev.candidates = &cands;
    aud.onSchedPick(ev);
    EXPECT_TRUE(hasViolation(
        aud, "refresh-aware scheduling is off"));
}

} // namespace
} // namespace refsched::validate
