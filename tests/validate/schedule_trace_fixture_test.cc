/**
 * @file
 * Schedule-invariance fixtures for the wake-precise controller.
 *
 * tests/validate/data/<policy>.trace were recorded via
 *
 *   golden_diff record --workload WL-8 --density 32 --scale 1024
 *                      --warmup 1 --measure 3 --policy <policy>
 *
 * one file per refresh policy.  The originals came from the
 * every-edge-polling controller (commit a545fe5, before wake-precise
 * scheduling) and proved the wake-precise rewrite was a pure
 * host-side optimization.  They were re-recorded once since, when
 * the open-page policy gained the idle-row auto-close timeout
 * (ControllerParams::openRowIdleTimeout, found by the differential
 * fuzzer's dominance oracle) -- an intended change to the simulated
 * machine, which moves PRE commands by design.  The current
 * controller must reproduce every fixture byte-for-byte: host-side
 * scheduling changes may not move, add, or drop a single DRAM
 * command, scheduler pick, or page movement.  Any intended change to
 * simulated behaviour must re-record the fixtures (and say so): a
 * diff here means the simulated machine changed, not just the
 * simulator's speed.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/experiment.hh"
#include "core/system.hh"
#include "validate/golden_trace.hh"

namespace refsched::validate
{
namespace
{

class ScheduleTraceFixtureTest
    : public ::testing::TestWithParam<core::Policy>
{
};

TEST_P(ScheduleTraceFixtureTest, MatchesPrePolledControllerTrace)
{
    const core::Policy policy = GetParam();
    const std::string fixture = std::string(REFSCHED_TEST_DATA_DIR)
        + "/" + core::toString(policy) + ".trace";
    const auto expected = readTraceFile(fixture);
    ASSERT_GT(expected.size(), 0u) << fixture;

    core::SystemConfig cfg = core::makeConfig(
        "WL-8", policy, dram::DensityGb::d32, milliseconds(64.0),
        /*numCores=*/2, /*tasksPerCore=*/4, /*timeScale=*/1024);
    TraceRecorder rec;
    core::System sys(cfg);
    sys.attachProbe(&rec);
    sys.run(/*warmupQuanta=*/1, /*measureQuanta=*/3);

    const auto actual = decodeTrace(rec.data());
    const TraceDiff d = diffTraces(expected, actual);
    EXPECT_TRUE(d.identical)
        << "trace diverged from " << fixture << ": " << d.describe();
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ScheduleTraceFixtureTest,
    ::testing::Values(core::Policy::AllBank, core::Policy::PerBank,
                      core::Policy::PerBankOoo, core::Policy::Ddr4x2,
                      core::Policy::Ddr4x4, core::Policy::Adaptive,
                      core::Policy::CoDesign, core::Policy::NoRefresh),
    [](const auto &info) {
        std::string name = core::toString(info.param);
        for (auto &ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

} // namespace
} // namespace refsched::validate
