/** @file Tests for the two-level cache hierarchy. */

#include "cache/cache_hierarchy.hh"

#include <gtest/gtest.h>

#include "simcore/logging.hh"

namespace refsched::cache
{
namespace
{

HierarchyParams
smallParams()
{
    HierarchyParams p;
    p.l1 = CacheParams{1 * kKiB, 2, 64, 2};   // 8 sets
    p.l2 = CacheParams{8 * kKiB, 4, 64, 20};  // 32 sets
    return p;
}

TEST(CacheHierarchyTest, L1HitLatency)
{
    CacheHierarchy h(1, smallParams());
    h.access(0, 1, 0x1000, false);  // install
    const auto res = h.access(0, 1, 0x1000, false);
    EXPECT_EQ(res.latency, 2u);
    EXPECT_FALSE(res.dramMiss);
    EXPECT_EQ(res.writebackCount, 0);
}

TEST(CacheHierarchyTest, ColdLoadMissesToDram)
{
    CacheHierarchy h(1, smallParams());
    const auto res = h.access(0, 1, 0x4000, false);
    EXPECT_TRUE(res.dramMiss);
    EXPECT_EQ(res.latency, 2u + 20u);
    EXPECT_EQ(h.l2MissesOf(1), 1u);
}

TEST(CacheHierarchyTest, StoresWriteValidateWithoutFetch)
{
    CacheHierarchy h(1, smallParams());
    const auto res = h.access(0, 1, 0x4000, true);
    EXPECT_FALSE(res.dramMiss);  // no fetch on store miss
    EXPECT_EQ(h.l2MissesOf(1), 1u);  // still an L2 miss statistically
    // The stored line is now cached.
    EXPECT_TRUE(h.access(0, 1, 0x4000, false).latency == 2u);
}

TEST(CacheHierarchyTest, L2HitAfterL1Eviction)
{
    CacheHierarchy h(1, smallParams());
    // Fill L1 set 0 (2 ways) plus one more to evict the first line.
    // L1 has 8 sets: same-set addresses differ by 8*64 = 512 bytes.
    h.access(0, 1, 0 * 512, false);
    h.access(0, 1, 1 * 512, false);
    h.access(0, 1, 2 * 512, false);  // evicts line 0 from L1
    const auto res = h.access(0, 1, 0 * 512, false);
    EXPECT_FALSE(res.dramMiss);      // still in L2
    EXPECT_EQ(res.latency, 22u);
}

TEST(CacheHierarchyTest, DirtyL1VictimLandsInL2)
{
    CacheHierarchy h(1, smallParams());
    h.access(0, 1, 0 * 512, true);   // dirty in L1
    h.access(0, 1, 1 * 512, false);
    h.access(0, 1, 2 * 512, false);  // evicts dirty line 0 into L2

    // Push the line out of L2 too: its L2 set now holds it dirty.
    // L2 has 32 sets, 4 ways: same-set step is 32*64 = 2 KiB.
    int wbTotal = 0;
    for (int i = 1; i <= 4; ++i) {
        const auto res =
            h.access(0, 1, static_cast<Addr>(i) * 2048, false);
        wbTotal += res.writebackCount;
    }
    EXPECT_GE(wbTotal, 1);  // the dirty victim reached DRAM
}

TEST(CacheHierarchyTest, SeparateL1PerCoreSharedL2)
{
    CacheHierarchy h(2, smallParams());
    h.access(0, 1, 0x2000, false);   // core 0 installs in L1(0) + L2
    const auto res = h.access(1, 2, 0x2000, false);
    EXPECT_FALSE(res.dramMiss);      // L2 is shared
    EXPECT_EQ(res.latency, 22u);     // but core 1's L1 missed
}

TEST(CacheHierarchyTest, PerPidMissAccounting)
{
    CacheHierarchy h(1, smallParams());
    h.access(0, 7, 0x10000, false);
    h.access(0, 7, 0x20000, false);
    h.access(0, 9, 0x30000, false);
    EXPECT_EQ(h.l2MissesOf(7), 2u);
    EXPECT_EQ(h.l2MissesOf(9), 1u);
    EXPECT_EQ(h.l2MissesOf(42), 0u);
}

TEST(CacheHierarchyTest, ResetStatsKeepsContents)
{
    CacheHierarchy h(1, smallParams());
    h.access(0, 1, 0x1000, false);
    h.resetStats();
    EXPECT_EQ(h.l2MissesOf(1), 0u);
    // Contents survive: this is a hit, not a DRAM miss.
    EXPECT_FALSE(h.access(0, 1, 0x1000, false).dramMiss);
}

TEST(CacheHierarchyTest, ResetClearsContents)
{
    CacheHierarchy h(1, smallParams());
    h.access(0, 1, 0x1000, false);
    h.reset();
    EXPECT_TRUE(h.access(0, 1, 0x1000, false).dramMiss);
}

TEST(CacheHierarchyTest, MismatchedLineSizesAreFatal)
{
    HierarchyParams p = smallParams();
    p.l1.lineBytes = 32;
    EXPECT_THROW(CacheHierarchy(1, p), FatalError);
    EXPECT_THROW(CacheHierarchy(0, smallParams()), FatalError);
}

} // namespace
} // namespace refsched::cache
