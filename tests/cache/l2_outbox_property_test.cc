/**
 * @file
 * Property test for the core-lane cache split: driving the
 * hierarchy through the asynchronous l1Access/applyL2 pair (the
 * lane path, with the shared-L2 half deferred to the window
 * boundary) must be observably identical to the legacy synchronous
 * access() walk -- same per-access results, same final tag state,
 * same statistics.  The cache has no notion of time, so identity
 * reduces to applying the same lookups in the same order; this test
 * pins that contract against random access streams, including the
 * victim-percolation corner (dirty L1 victim into L2, dirty L2
 * victim to DRAM).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cache/cache_hierarchy.hh"
#include "simcore/rng.hh"
#include "simcore/stats.hh"

namespace refsched::cache
{
namespace
{

/** Tiny caches so a short stream exercises misses and victims. */
HierarchyParams
smallParams()
{
    HierarchyParams p;
    p.l1 = CacheParams{1 * kKiB, 2, 64, 2};
    p.l2 = CacheParams{8 * kKiB, 4, 64, 20};
    return p;
}

std::string
statsOf(CacheHierarchy &h)
{
    StatRegistry reg;
    h.registerStats(reg, "cache");
    std::ostringstream os;
    reg.dump(os);
    return os.str();
}

void
expectSameResult(const HierarchyResult &a, const HierarchyResult &b,
                 int step)
{
    EXPECT_EQ(a.latency, b.latency) << "access " << step;
    EXPECT_EQ(a.dramMiss, b.dramMiss) << "access " << step;
    ASSERT_EQ(a.writebackCount, b.writebackCount) << "access " << step;
    for (int w = 0; w < a.writebackCount; ++w)
        EXPECT_EQ(a.writebacks[w], b.writebacks[w])
            << "access " << step << " writeback " << w;
}

TEST(L2OutboxPropertyTest, SplitWalkMatchesSynchronousWalk)
{
    constexpr int kCores = 4;
    constexpr int kSteps = 20000;

    CacheHierarchy sync(kCores, smallParams());
    CacheHierarchy split(kCores, smallParams());
    split.enableLaneMode();

    Rng rng(11);
    for (int i = 0; i < kSteps; ++i) {
        const int coreId = static_cast<int>(rng.below(kCores));
        const Pid pid = static_cast<Pid>(rng.below(3) + 1);
        // 64 KiB footprint over 8 KiB of L2: plenty of misses and
        // dirty victims, plus enough reuse for hits at both levels.
        const Addr paddr = rng.below(64 * kKiB) & ~Addr{63};
        const bool isWrite = rng.below(4) == 0;

        const HierarchyResult a =
            sync.access(coreId, pid, paddr, isWrite);

        const L1AccessResult l1 =
            split.l1Access(coreId, paddr, isWrite);
        if (l1.hit) {
            // access() reports an L1 hit as hit latency, no DRAM
            // miss, no writebacks.
            EXPECT_EQ(a.latency, l1.latency) << "access " << i;
            EXPECT_FALSE(a.dramMiss) << "access " << i;
            EXPECT_EQ(a.writebackCount, 0) << "access " << i;
            continue;
        }
        const HierarchyResult b = split.applyL2(
            L2Lookup{paddr, pid, isWrite, l1.victimValid,
                     l1.victimDirty, l1.victimAddr});
        expectSameResult(a, b, i);
    }

    // Same demand-miss accounting...
    for (Pid pid = 1; pid <= 3; ++pid)
        EXPECT_EQ(sync.l2MissesOf(pid), split.l2MissesOf(pid));

    // ...same registered statistics once the lane-local counters
    // are folded in (the ClusterFabric does this every boundary)...
    split.flushLaneStats();
    EXPECT_EQ(statsOf(sync), statsOf(split));

    // ...and byte-equal tag state: replaying a probe stream of pure
    // reads must hit/miss identically in both hierarchies.
    Rng probe(12);
    for (int i = 0; i < 2000; ++i) {
        const int coreId = static_cast<int>(probe.below(kCores));
        const Addr paddr = probe.below(64 * kKiB) & ~Addr{63};
        const HierarchyResult a = sync.access(coreId, 1, paddr, false);
        const L1AccessResult l1 = split.l1Access(coreId, paddr, false);
        if (l1.hit) {
            EXPECT_EQ(a.latency, l1.latency) << "probe " << i;
            continue;
        }
        const HierarchyResult b = split.applyL2(
            L2Lookup{paddr, 1, false, l1.victimValid, l1.victimDirty,
                     l1.victimAddr});
        expectSameResult(a, b, i);
    }
}

TEST(L2OutboxPropertyTest, WriteAllocateVictimsPercolate)
{
    // Deterministic conflict stream: repeatedly write lines mapping
    // to one L1 set so every access evicts a dirty victim into L2,
    // and eventually dirty L2 victims surface as DRAM writebacks.
    CacheHierarchy sync(1, smallParams());
    CacheHierarchy split(1, smallParams());
    split.enableLaneMode();

    int dramWritebacks = 0;
    for (int i = 0; i < 512; ++i) {
        // 1 KiB 2-way L1 has 8 sets; stride one L1-size apart so
        // all addresses collide in set 0.
        const Addr paddr = static_cast<Addr>(i % 64) * kKiB;
        const HierarchyResult a = sync.access(0, 1, paddr, true);

        const L1AccessResult l1 = split.l1Access(0, paddr, true);
        ASSERT_FALSE(l1.hit) << "access " << i;
        const HierarchyResult b = split.applyL2(
            L2Lookup{paddr, 1, true, l1.victimValid, l1.victimDirty,
                     l1.victimAddr});
        expectSameResult(a, b, i);
        dramWritebacks += a.writebackCount;
    }
    // The corner actually fired: dirty L2 victims reached DRAM.
    EXPECT_GT(dramWritebacks, 0);

    split.flushLaneStats();
    EXPECT_EQ(statsOf(sync), statsOf(split));
}

} // namespace
} // namespace refsched::cache
