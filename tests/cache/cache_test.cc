/** @file Tests for the set-associative cache tag store. */

#include "cache/cache.hh"

#include <gtest/gtest.h>

#include "simcore/logging.hh"

namespace refsched::cache
{
namespace
{

CacheParams
tiny()
{
    // 4 sets x 2 ways x 64 B lines = 512 B.
    CacheParams p;
    p.sizeBytes = 512;
    p.associativity = 2;
    p.lineBytes = 64;
    p.hitLatency = 2;
    return p;
}

/** Address for (set, tag) in the tiny cache. */
Addr
at(std::uint64_t set, std::uint64_t tag)
{
    return (tag * 4 + set) * 64;
}

TEST(CacheTest, MissThenHit)
{
    Cache c(tiny());
    EXPECT_FALSE(c.access(at(0, 1), false).hit);
    EXPECT_TRUE(c.access(at(0, 1), false).hit);
    EXPECT_EQ(c.accesses(), 2u);
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.5);
}

TEST(CacheTest, DifferentOffsetsSameLineHit)
{
    Cache c(tiny());
    c.access(at(0, 1), false);
    EXPECT_TRUE(c.access(at(0, 1) + 8, false).hit);
    EXPECT_TRUE(c.access(at(0, 1) + 63, true).hit);
}

TEST(CacheTest, LruEviction)
{
    Cache c(tiny());
    c.access(at(2, 1), false);
    c.access(at(2, 2), false);  // set 2 now full
    c.access(at(2, 1), false);  // touch tag 1: tag 2 becomes LRU
    const auto out = c.access(at(2, 3), false);
    EXPECT_FALSE(out.hit);
    EXPECT_TRUE(out.victimValid);
    EXPECT_EQ(out.victimAddr, at(2, 2));
    EXPECT_TRUE(c.contains(at(2, 1)));
    EXPECT_FALSE(c.contains(at(2, 2)));
    EXPECT_TRUE(c.contains(at(2, 3)));
}

TEST(CacheTest, DirtyVictimReported)
{
    Cache c(tiny());
    c.access(at(1, 1), true);   // dirty
    c.access(at(1, 2), false);  // clean
    const auto out = c.access(at(1, 3), false);  // evicts tag 1 (LRU)
    EXPECT_TRUE(out.victimValid);
    EXPECT_TRUE(out.victimDirty);
    EXPECT_EQ(out.victimAddr, at(1, 1));
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(CacheTest, CleanVictimNotDirty)
{
    Cache c(tiny());
    c.access(at(1, 1), false);
    c.access(at(1, 2), false);
    const auto out = c.access(at(1, 3), false);
    EXPECT_TRUE(out.victimValid);
    EXPECT_FALSE(out.victimDirty);
    EXPECT_EQ(c.writebacks(), 0u);
}

TEST(CacheTest, WriteMarksLineDirtyLater)
{
    Cache c(tiny());
    c.access(at(3, 1), false);  // allocate clean
    c.access(at(3, 1), true);   // dirty it on a hit
    c.access(at(3, 2), false);
    const auto out = c.access(at(3, 3), false);
    EXPECT_TRUE(out.victimDirty);
}

TEST(CacheTest, InsertWithoutDemandAccess)
{
    Cache c(tiny());
    c.insert(at(0, 5), true);
    EXPECT_TRUE(c.contains(at(0, 5)));
    // insert() is not a demand access.
    EXPECT_EQ(c.accesses(), 0u);
    EXPECT_EQ(c.misses(), 0u);
}

TEST(CacheTest, InsertOnPresentLineMergesDirty)
{
    Cache c(tiny());
    c.access(at(0, 5), false);
    c.insert(at(0, 5), true);
    c.access(at(0, 6), false);
    const auto out = c.access(at(0, 7), false);  // evicts tag 5
    EXPECT_TRUE(out.victimDirty);
}

TEST(CacheTest, InvalidateDropsLine)
{
    Cache c(tiny());
    c.access(at(0, 1), true);
    EXPECT_TRUE(c.invalidate(at(0, 1)));   // was dirty
    EXPECT_FALSE(c.contains(at(0, 1)));
    EXPECT_FALSE(c.invalidate(at(0, 1)));  // already gone
}

TEST(CacheTest, ResetClearsContents)
{
    Cache c(tiny());
    c.access(at(0, 1), false);
    c.reset();
    EXPECT_FALSE(c.contains(at(0, 1)));
}

TEST(CacheTest, ProbeDoesNotDisturbLru)
{
    Cache c(tiny());
    c.access(at(2, 1), false);
    c.access(at(2, 2), false);
    // Probing tag 1 must not make it MRU.
    EXPECT_TRUE(c.contains(at(2, 1)));
    const auto out = c.access(at(2, 3), false);
    EXPECT_EQ(out.victimAddr, at(2, 1));
}

TEST(CacheTest, FullCoverageOfAllSets)
{
    Cache c(tiny());
    for (std::uint64_t set = 0; set < 4; ++set) {
        for (std::uint64_t tag = 0; tag < 2; ++tag)
            EXPECT_FALSE(c.access(at(set, tag), false).hit);
    }
    for (std::uint64_t set = 0; set < 4; ++set) {
        for (std::uint64_t tag = 0; tag < 2; ++tag)
            EXPECT_TRUE(c.access(at(set, tag), false).hit);
    }
}

TEST(CacheTest, Table1Geometry)
{
    CacheParams l1{32 * kKiB, 4, 64, 2};
    EXPECT_EQ(l1.numSets(), 128u);
    CacheParams l2{2 * kMiB, 16, 64, 20};
    EXPECT_EQ(l2.numSets(), 2048u);
    Cache c1(l1), c2(l2);  // construct without error
}

TEST(CacheTest, BadParamsAreFatal)
{
    CacheParams p = tiny();
    p.lineBytes = 65;
    EXPECT_THROW(Cache{p}, FatalError);

    p = tiny();
    p.associativity = 0;
    EXPECT_THROW(Cache{p}, FatalError);

    p = tiny();
    p.sizeBytes = 384;  // 3 sets: not a power of two
    EXPECT_THROW(Cache{p}, FatalError);
}

} // namespace
} // namespace refsched::cache
