/** @file Unit tests for the discrete-event kernel. */

#include "simcore/event_queue.hh"

#include <gtest/gtest.h>

#include <vector>

#include "simcore/logging.hh"

namespace refsched
{
namespace
{

TEST(EventQueueTest, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_EQ(eq.nextEventTick(), kMaxTick);
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueueTest, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueueTest, SameTickFifoWithinPriority)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(42, [&order, i] { order.push_back(i); });
    eq.runUntil(42);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, PriorityOrdersSameTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(2); },
                EventPriority::Scheduler);
    eq.schedule(5, [&] { order.push_back(0); },
                EventPriority::ClockEdge);
    eq.schedule(5, [&] { order.push_back(3); },
                EventPriority::StatDump);
    eq.schedule(5, [&] { order.push_back(1); },
                EventPriority::Default);
    eq.runUntil(5);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueueTest, RunUntilIsInclusiveAndAdvancesTime)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(100, [&] { ++fired; });
    eq.schedule(101, [&] { ++fired; });
    EXPECT_EQ(eq.runUntil(100), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 100u);
    EXPECT_EQ(eq.runUntil(200), 1u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 200u);
}

TEST(EventQueueTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(50, [] {});
    eq.runUntil(60);
    EXPECT_THROW(eq.schedule(10, [] {}), PanicError);
}

TEST(EventQueueTest, CancelPreventsExecution)
{
    EventQueue eq;
    int fired = 0;
    auto handle = eq.schedule(10, [&] { ++fired; });
    EXPECT_TRUE(handle.pending());
    handle.cancel();
    EXPECT_FALSE(handle.pending());
    eq.runUntil(20);
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueTest, CancelIsIdempotentAndSafeAfterFire)
{
    EventQueue eq;
    auto handle = eq.schedule(10, [] {});
    eq.runUntil(10);
    EXPECT_FALSE(handle.pending());
    handle.cancel();  // no-op
    handle.cancel();
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents)
{
    EventQueue eq;
    std::vector<Tick> at;
    std::function<void()> chain = [&] {
        at.push_back(eq.now());
        if (at.size() < 4)
            eq.scheduleIn(10, chain);
    };
    eq.schedule(0, chain);
    eq.runUntil(1000);
    EXPECT_EQ(at, (std::vector<Tick>{0, 10, 20, 30}));
}

TEST(EventQueueTest, NextEventTickSkipsCancelled)
{
    EventQueue eq;
    auto h = eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    h.cancel();
    EXPECT_EQ(eq.nextEventTick(), 20u);
}

TEST(EventQueueTest, RunOneExecutesSingleEvent)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] { ++fired; });
    eq.schedule(6, [&] { ++fired; });
    EXPECT_TRUE(eq.runOne());
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 5u);
}

TEST(EventQueueTest, ExecutedCountAccumulates)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(static_cast<Tick>(i), [] {});
    eq.runUntil(100);
    EXPECT_EQ(eq.executedCount(), 7u);
}

TEST(EventQueueTest, ScheduleAtCurrentTickRuns)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.runUntil(10);
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.runUntil(10);
    EXPECT_EQ(fired, 1);
}

} // namespace
} // namespace refsched
