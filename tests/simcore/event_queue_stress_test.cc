/**
 * @file
 * Stress tests for the slab-recycled event kernel: random
 * schedule/cancel/reschedule interleavings are checked against a
 * simple reference model of the documented ordering semantics
 * (when, priority, FIFO within both), and slot recycling is
 * exercised hard enough that generation-counter bugs would surface
 * as misfires.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "simcore/event_queue.hh"
#include "simcore/rng.hh"

namespace refsched
{
namespace
{

/** One pending event in the reference model. */
struct ModelEvent
{
    Tick when;
    int prio;
    std::uint64_t seq;
    int id;
};

/** The documented firing order: (when, priority, schedule order). */
bool
firesBefore(const ModelEvent &a, const ModelEvent &b)
{
    if (a.when != b.when)
        return a.when < b.when;
    if (a.prio != b.prio)
        return a.prio < b.prio;
    return a.seq < b.seq;
}

/**
 * Drives an EventQueue and a reference model through the same random
 * operation stream, comparing the observed firing order window by
 * window.
 */
class StressDriver
{
  public:
    explicit StressDriver(std::uint64_t seed) : rng_(seed) {}

    void
    run(int windows, int opsPerWindow)
    {
        for (int w = 0; w < windows; ++w) {
            for (int op = 0; op < opsPerWindow; ++op)
                mutate();
            runWindow(eq_.now() + rng_.below(2000));
        }
        // Drain everything left.
        runWindow(eq_.now() + 1'000'000);
        EXPECT_TRUE(eq_.empty());
        EXPECT_TRUE(model_.empty());
    }

  private:
    void
    mutate()
    {
        const auto roll = rng_.below(100);
        if (roll < 50 || handles_.empty()) {
            scheduleOne();
        } else if (roll < 70) {
            cancelOne();
        } else if (roll < 80) {
            cancelStaleOne();
        } else {
            // Reschedule: cancel a random pending event and schedule
            // a replacement, which must reuse pool slots eventually.
            cancelOne();
            scheduleOne();
        }
    }

    void
    scheduleOne()
    {
        static constexpr EventPriority kPrios[] = {
            EventPriority::ClockEdge, EventPriority::Default,
            EventPriority::Scheduler, EventPriority::StatDump};
        const Tick when = eq_.now() + rng_.below(3000);
        const auto prio = kPrios[rng_.below(4)];
        const int id = nextId_++;
        auto handle =
            eq_.schedule(when, [this, id] { fired_.push_back(id); },
                         prio);
        model_.push_back(
            {when, static_cast<int>(prio), nextSeq_++, id});
        handles_.push_back(std::move(handle));
    }

    /**
     * Cancel a handle whose event already fired -- including handles
     * whose slot sits on the free list at the same generation epoch,
     * not yet reused.  Must be a no-op: not pending, and no live
     * event (the slot's current occupant included) disturbed.
     */
    void
    cancelStaleOne()
    {
        if (stale_.empty())
            return;
        const auto pick = rng_.below(stale_.size());
        EXPECT_FALSE(stale_[pick].pending());
        const auto liveBefore = eq_.liveCount();
        stale_[pick].cancel();
        stale_[pick].cancel();
        EXPECT_EQ(eq_.liveCount(), liveBefore);
    }

    void
    cancelOne()
    {
        if (handles_.empty())
            return;
        const auto pick = rng_.below(handles_.size());
        handles_[pick].cancel();
        EXPECT_FALSE(handles_[pick].pending());
        // Cancelling twice must stay a no-op.
        handles_[pick].cancel();
        model_.erase(model_.begin() + static_cast<long>(pick));
        handles_.erase(handles_.begin() + static_cast<long>(pick));
    }

    void
    runWindow(Tick until)
    {
        std::vector<ModelEvent> due, left;
        for (const auto &ev : model_)
            (ev.when <= until ? due : left).push_back(ev);
        std::sort(due.begin(), due.end(), firesBefore);

        fired_.clear();
        eq_.runUntil(until);

        ASSERT_EQ(fired_.size(), due.size());
        for (std::size_t i = 0; i < due.size(); ++i)
            ASSERT_EQ(fired_[i], due[i].id) << "position " << i;

        // Retain the handles of everything that fired so later
        // operations can cancel them while their slots recycle.
        std::vector<EventHandle> keep;
        for (std::size_t i = 0; i < model_.size(); ++i) {
            if (model_[i].when > until)
                keep.push_back(std::move(handles_[i]));
            else
                stale_.push_back(std::move(handles_[i]));
        }
        if (stale_.size() > 256)
            stale_.erase(stale_.begin(),
                         stale_.end() - 256);
        handles_ = std::move(keep);
        model_ = std::move(left);
        EXPECT_EQ(eq_.liveCount(), model_.size());
    }

    EventQueue eq_;
    Rng rng_;
    std::vector<ModelEvent> model_;
    std::vector<EventHandle> handles_;
    std::vector<EventHandle> stale_;  ///< handles of fired events
    std::vector<int> fired_;
    int nextId_ = 0;
    std::uint64_t nextSeq_ = 0;
};

TEST(EventQueueStressTest, RandomInterleavingMatchesReferenceModel)
{
    for (std::uint64_t seed : {1u, 42u, 0xdeadu}) {
        SCOPED_TRACE(seed);
        StressDriver driver(seed);
        driver.run(/*windows=*/40, /*opsPerWindow=*/50);
    }
}

TEST(EventQueueStressTest, SlotRecyclingSurvivesHeavyChurn)
{
    EventQueue eq;
    // Far more schedule/cancel cycles than live events: every cycle
    // must recycle slots (a leak would grow the pool unboundedly and
    // a stale-generation bug would fire a cancelled callback).
    int fired = 0;
    for (int round = 0; round < 10'000; ++round) {
        auto doomed = eq.schedule(eq.now() + 100, [] {
            FAIL() << "cancelled event fired";
        });
        eq.schedule(eq.now() + 1, [&] { ++fired; });
        doomed.cancel();
        eq.runUntil(eq.now() + 1);
    }
    EXPECT_EQ(fired, 10'000);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.liveCount(), 0u);
}

TEST(EventQueueStressTest, CancelOfFiredHandleBeforeSlotReuse)
{
    EventQueue eq;
    int fired = 0;
    auto h1 = eq.schedule(10, [&] { ++fired; });
    eq.runUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(h1.pending());

    // h1's slot now sits on the free list (same generation epoch as
    // when it was retired -- nothing has reused it yet).  Cancelling
    // must not corrupt the free list or the live count.
    h1.cancel();
    EXPECT_EQ(eq.liveCount(), 0u);

    // The next schedule reuses that very slot (LIFO free list).  The
    // stale handle must not be able to cancel the new occupant.
    int fired2 = 0;
    auto h2 = eq.schedule(20, [&] { ++fired2; });
    h1.cancel();
    EXPECT_TRUE(h2.pending());
    EXPECT_EQ(eq.liveCount(), 1u);
    eq.runUntil(20);
    EXPECT_EQ(fired2, 1);
    EXPECT_FALSE(h2.pending());
}

TEST(EventQueueStressTest, HandleOutlivesFiredSlotReuse)
{
    EventQueue eq;
    int fired = 0;
    auto old = eq.schedule(10, [&] { ++fired; });
    eq.runUntil(10);
    EXPECT_EQ(fired, 1);

    // The slot is recycled by later events; the stale handle must
    // neither report pending nor cancel its successor.
    int successors = 0;
    for (int i = 0; i < 64; ++i)
        eq.schedule(20, [&] { ++successors; });
    EXPECT_FALSE(old.pending());
    old.cancel();
    eq.runUntil(20);
    EXPECT_EQ(successors, 64);
}

TEST(EventQueueStressTest, SelfCancelDuringCallbackIsSafe)
{
    EventQueue eq;
    int fired = 0;
    EventHandle self;
    self = eq.schedule(10, [&] {
        ++fired;
        // Firing retires the slot before the callback runs, so a
        // handle to the event being executed is already stale.
        EXPECT_FALSE(self.pending());
        self.cancel();
    });
    eq.runUntil(10);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueStressTest, RescheduleFromCallbackKeepsOrdering)
{
    EventQueue eq;
    std::vector<int> order;
    EventHandle pending;
    // A callback cancels a sibling and schedules a replacement at
    // the same tick; the replacement runs after everything already
    // queued for that tick (fresh sequence number).
    eq.schedule(10, [&] {
        order.push_back(0);
        pending.cancel();
        eq.schedule(10, [&] { order.push_back(3); });
    });
    pending = eq.schedule(10, [&] { order.push_back(-1); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(10, [&] { order.push_back(2); });
    eq.runUntil(10);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

} // namespace
} // namespace refsched
