/** @file Unit tests for simcore/types.hh helpers. */

#include "simcore/types.hh"

#include <gtest/gtest.h>

namespace refsched
{
namespace
{

TEST(TypesTest, UnitConversions)
{
    EXPECT_EQ(nanoseconds(1.0), 1000u);
    EXPECT_EQ(microseconds(1.0), 1000u * 1000u);
    EXPECT_EQ(milliseconds(1.0), 1000u * 1000u * 1000u);
    EXPECT_EQ(milliseconds(64.0), 64u * kPsPerMs);
    EXPECT_EQ(nanoseconds(13.75), 13750u);
    EXPECT_EQ(microseconds(7.8125), 7812500u);
}

TEST(TypesTest, SizeHelpers)
{
    EXPECT_EQ(kKiB, 1024u);
    EXPECT_EQ(kMiB, 1024u * 1024u);
    EXPECT_EQ(kGiB, 1024u * 1024u * 1024u);
}

TEST(TypesTest, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ULL << 40));
    EXPECT_FALSE(isPowerOfTwo((1ULL << 40) + 1));
}

TEST(TypesTest, Log2Exact)
{
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(2), 1u);
    EXPECT_EQ(log2Exact(64), 6u);
    EXPECT_EQ(log2Exact(1ULL << 33), 33u);
}

TEST(TypesTest, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
}

TEST(ClockDomainTest, CycleTickConversion)
{
    ClockDomain ddr(1250);  // DDR3-1600 memory clock
    EXPECT_EQ(ddr.periodTicks(), 1250u);
    EXPECT_EQ(ddr.cyclesToTicks(4), 5000u);
    EXPECT_EQ(ddr.ticksToCycles(4999), 3u);
    EXPECT_EQ(ddr.ticksToCycles(5000), 4u);
    EXPECT_DOUBLE_EQ(ddr.frequencyGHz(), 0.8);
}

TEST(ClockDomainTest, NextEdge)
{
    ClockDomain clk(1000);
    EXPECT_EQ(clk.nextEdgeAtOrAfter(0), 0u);
    EXPECT_EQ(clk.nextEdgeAtOrAfter(1), 1000u);
    EXPECT_EQ(clk.nextEdgeAtOrAfter(999), 1000u);
    EXPECT_EQ(clk.nextEdgeAtOrAfter(1000), 1000u);
    EXPECT_EQ(clk.nextEdgeAtOrAfter(1001), 2000u);
}

} // namespace
} // namespace refsched
