/** @file Unit tests for the statistics framework. */

#include "simcore/stats.hh"

#include <gtest/gtest.h>

#include <sstream>

#include "simcore/logging.hh"

namespace refsched
{
namespace
{

TEST(ScalarTest, AccumulatesAndResets)
{
    Scalar s;
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    s += 2.5;
    ++s;
    s++;
    EXPECT_DOUBLE_EQ(s.value(), 4.5);
    s.set(10.0);
    EXPECT_DOUBLE_EQ(s.value(), 10.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(AverageTest, MeanAndCount)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(10.0);
    a.sample(20.0);
    a.sample(30.0);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_EQ(a.samples(), 3u);
    EXPECT_DOUBLE_EQ(a.total(), 60.0);
    a.reset();
    EXPECT_EQ(a.samples(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(DistributionTest, BucketsAndOutliers)
{
    Distribution d(0.0, 100.0, 10);
    d.sample(5.0);    // bucket 0
    d.sample(15.0);   // bucket 1
    d.sample(95.0);   // bucket 9
    d.sample(-1.0);   // underflow
    d.sample(100.0);  // overflow (hi is exclusive)
    d.sample(150.0);  // overflow

    EXPECT_EQ(d.samples(), 6u);
    EXPECT_EQ(d.bucketCounts()[0], 1u);
    EXPECT_EQ(d.bucketCounts()[1], 1u);
    EXPECT_EQ(d.bucketCounts()[9], 1u);
    EXPECT_EQ(d.underflowCount(), 1u);
    EXPECT_EQ(d.overflowCount(), 2u);
    EXPECT_DOUBLE_EQ(d.minValue(), -1.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 150.0);
}

TEST(DistributionTest, MeanTracksAllSamples)
{
    Distribution d(0.0, 10.0, 5);
    d.sample(2.0);
    d.sample(4.0);
    d.sample(100.0);  // overflow still counted in the mean
    EXPECT_DOUBLE_EQ(d.mean(), (2.0 + 4.0 + 100.0) / 3.0);
}

TEST(DistributionTest, QuantileApproximation)
{
    Distribution d(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        d.sample(static_cast<double>(i));
    EXPECT_NEAR(d.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(d.quantile(0.9), 90.0, 1.5);
    EXPECT_NEAR(d.quantile(0.99), 99.0, 1.5);
}

TEST(DistributionTest, ResetClearsEverything)
{
    Distribution d(0.0, 10.0, 2);
    d.sample(5.0);
    d.reset();
    EXPECT_EQ(d.samples(), 0u);
    EXPECT_EQ(d.bucketCounts()[1], 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
}

TEST(DistributionTest, BadBoundsPanic)
{
    EXPECT_THROW(Distribution(10.0, 10.0, 4), PanicError);
    EXPECT_THROW(Distribution(0.0, 10.0, 0), PanicError);
}

TEST(StatRegistryTest, AddFindAndDump)
{
    StatRegistry reg;
    Scalar a, b;
    a += 3;
    b += 7;
    reg.add("mc.reads", &a);
    reg.add("mc.writes", &b);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.find("mc.reads"), &a);
    EXPECT_EQ(reg.find("nope"), nullptr);

    std::ostringstream os;
    reg.dump(os);
    EXPECT_EQ(os.str(), "mc.reads 3\nmc.writes 7\n");
}

TEST(StatRegistryTest, DuplicateNameIsFatal)
{
    StatRegistry reg;
    Scalar a, b;
    reg.add("x", &a);
    EXPECT_THROW(reg.add("x", &b), FatalError);
}

TEST(StatRegistryTest, NullStatPanics)
{
    StatRegistry reg;
    EXPECT_THROW(reg.add("x", nullptr), PanicError);
}

TEST(StatRegistryTest, ResetAllResetsEveryStat)
{
    StatRegistry reg;
    Scalar s;
    Average a;
    s += 5;
    a.sample(1.0);
    reg.add("s", &s);
    reg.add("a", &a);
    reg.resetAll();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    EXPECT_EQ(a.samples(), 0u);
}

} // namespace
} // namespace refsched
