/** @file Unit tests for the statistics framework. */

#include "simcore/stats.hh"

#include <gtest/gtest.h>

#include <sstream>

#include "simcore/logging.hh"

namespace refsched
{
namespace
{

TEST(ScalarTest, AccumulatesAndResets)
{
    Scalar s;
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    s += 2.5;
    ++s;
    s++;
    EXPECT_DOUBLE_EQ(s.value(), 4.5);
    s.set(10.0);
    EXPECT_DOUBLE_EQ(s.value(), 10.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(AverageTest, MeanAndCount)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(10.0);
    a.sample(20.0);
    a.sample(30.0);
    EXPECT_DOUBLE_EQ(a.mean(), 20.0);
    EXPECT_EQ(a.samples(), 3u);
    EXPECT_DOUBLE_EQ(a.total(), 60.0);
    a.reset();
    EXPECT_EQ(a.samples(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(DistributionTest, BucketsAndOutliers)
{
    Distribution d(0.0, 100.0, 10);
    d.sample(5.0);    // bucket 0
    d.sample(15.0);   // bucket 1
    d.sample(95.0);   // bucket 9
    d.sample(-1.0);   // underflow
    d.sample(100.0);  // overflow (hi is exclusive)
    d.sample(150.0);  // overflow

    EXPECT_EQ(d.samples(), 6u);
    EXPECT_EQ(d.bucketCounts()[0], 1u);
    EXPECT_EQ(d.bucketCounts()[1], 1u);
    EXPECT_EQ(d.bucketCounts()[9], 1u);
    EXPECT_EQ(d.underflowCount(), 1u);
    EXPECT_EQ(d.overflowCount(), 2u);
    EXPECT_DOUBLE_EQ(d.minValue(), -1.0);
    EXPECT_DOUBLE_EQ(d.maxValue(), 150.0);
}

TEST(DistributionTest, MeanTracksAllSamples)
{
    Distribution d(0.0, 10.0, 5);
    d.sample(2.0);
    d.sample(4.0);
    d.sample(100.0);  // overflow still counted in the mean
    EXPECT_DOUBLE_EQ(d.mean(), (2.0 + 4.0 + 100.0) / 3.0);
}

TEST(DistributionTest, QuantileApproximation)
{
    Distribution d(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        d.sample(static_cast<double>(i));
    EXPECT_NEAR(d.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(d.quantile(0.9), 90.0, 1.5);
    EXPECT_NEAR(d.quantile(0.99), 99.0, 1.5);
}

TEST(DistributionTest, ResetClearsEverything)
{
    Distribution d(0.0, 10.0, 2);
    d.sample(5.0);
    d.reset();
    EXPECT_EQ(d.samples(), 0u);
    EXPECT_EQ(d.bucketCounts()[1], 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
}

TEST(DistributionTest, BadBoundsPanic)
{
    EXPECT_THROW(Distribution(10.0, 10.0, 4), PanicError);
    EXPECT_THROW(Distribution(0.0, 10.0, 0), PanicError);
}

TEST(HistogramTest, Log2Bucketing)
{
    Histogram h;
    h.sample(0.0);     // bucket 0 (v < 1)
    h.sample(0.9);     // bucket 0
    h.sample(1.0);     // bucket 1: [1, 2)
    h.sample(1.9);     // bucket 1
    h.sample(2.0);     // bucket 2: [2, 4)
    h.sample(3.0);     // bucket 2
    h.sample(4.0);     // bucket 3: [4, 8)
    h.sample(1024.0);  // bucket 11: [1024, 2048)

    EXPECT_EQ(h.samples(), 8u);
    EXPECT_EQ(h.bucketCounts()[0], 2u);
    EXPECT_EQ(h.bucketCounts()[1], 2u);
    EXPECT_EQ(h.bucketCounts()[2], 2u);
    EXPECT_EQ(h.bucketCounts()[3], 1u);
    EXPECT_EQ(h.bucketCounts()[11], 1u);
    EXPECT_DOUBLE_EQ(h.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 1024.0);
}

TEST(HistogramTest, BucketEdges)
{
    EXPECT_DOUBLE_EQ(Histogram::bucketLo(0), 0.0);
    EXPECT_DOUBLE_EQ(Histogram::bucketHi(0), 1.0);
    EXPECT_DOUBLE_EQ(Histogram::bucketLo(1), 1.0);
    EXPECT_DOUBLE_EQ(Histogram::bucketHi(1), 2.0);
    EXPECT_DOUBLE_EQ(Histogram::bucketLo(11), 1024.0);
    EXPECT_DOUBLE_EQ(Histogram::bucketHi(11), 2048.0);
}

TEST(HistogramTest, NegativeAndHugeSamplesAreNotLost)
{
    Histogram h;
    h.sample(-5.0);   // clamps into bucket 0
    h.sample(1e30);   // clamps into the top bucket
    EXPECT_EQ(h.samples(), 2u);
    EXPECT_EQ(h.bucketCounts()[0], 1u);
    EXPECT_EQ(h.bucketCounts()[Histogram::kNumBuckets - 1], 1u);
    EXPECT_DOUBLE_EQ(h.minValue(), -5.0);
}

TEST(HistogramTest, QuantileInterpolation)
{
    Histogram h;
    for (int i = 0; i < 1000; ++i)
        h.sample(static_cast<double>(i));
    // Log2 buckets are coarse; the quantile must land in the right
    // bucket (within a factor of two), not at an exact value.
    const double p50 = h.quantile(0.5);
    EXPECT_GE(p50, 256.0);
    EXPECT_LE(p50, 1024.0);
    EXPECT_LE(h.quantile(0.99), 1024.0);
    // q=1 covers the whole population: at least the true max, at
    // most the upper edge of the max's bucket.
    EXPECT_GE(h.quantile(1.0), h.maxValue());
    EXPECT_LE(h.quantile(1.0), 1024.0);
}

TEST(HistogramTest, QuantileClampsToObservedExtrema)
{
    // Regression: interpolation inside a log2 bucket used to ignore
    // the observed min/max.  A single sample of 1025 lands in bucket
    // 11 [1024, 2048); every quantile of that population is 1025,
    // but the old code reported the bucket's lower edge (1024, below
    // the minimum sample) for any q.
    Histogram one;
    one.sample(1025.0);
    for (const double q : {0.0, 0.5, 0.95, 0.99, 0.999, 1.0})
        EXPECT_DOUBLE_EQ(one.quantile(q), 1025.0) << "q=" << q;

    // Two samples in the same wide bucket: the old interpolation
    // reported p99 = 1536, above the maximum sample ever recorded.
    Histogram two;
    two.sample(1024.0);
    two.sample(1025.0);
    EXPECT_LE(two.quantile(0.99), two.maxValue());
    EXPECT_LE(two.quantile(0.999), two.maxValue());
    EXPECT_GE(two.quantile(0.0), two.minValue());
    EXPECT_GE(two.quantile(0.5), two.minValue());
}

TEST(HistogramTest, QuantileOverflowBucketStaysBounded)
{
    // The top bucket's upper edge is effectively unbounded (2^64);
    // quantiles falling there must clamp to the observed maximum
    // rather than interpolate toward the edge.
    Histogram h;
    h.sample(5.0);
    h.sample(1e30);  // overflow bucket
    EXPECT_LE(h.quantile(0.99), h.maxValue());
    EXPECT_LE(h.quantile(0.999), h.maxValue());
    EXPECT_DOUBLE_EQ(h.quantile(1.0), h.maxValue());
}

TEST(HistogramTest, JsonRendersTailQuantiles)
{
    Histogram h;
    h.sample(100.0);
    const std::string json = h.renderJson();
    EXPECT_NE(json.find("\"p95\": 100"), std::string::npos);
    EXPECT_NE(json.find("\"p999\": 100"), std::string::npos);
}

TEST(HistogramTest, ResetClearsEverything)
{
    Histogram h;
    h.sample(42.0);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.bucketCounts()[6], 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 0.0);
}

TEST(HistogramTest, JsonRenderingIsSparse)
{
    Histogram h;
    h.sample(3.0);
    h.sample(3.0);
    const std::string json = h.renderJson();
    EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
    EXPECT_NE(json.find("[2, 2]"), std::string::npos);
    // Only one occupied bucket pair in the sparse encoding.
    EXPECT_EQ(json.find("[0, "), std::string::npos);
}

TEST(StatRegistryTest, AddFindAndDump)
{
    StatRegistry reg;
    Scalar a, b;
    a += 3;
    b += 7;
    reg.add("mc.reads", &a);
    reg.add("mc.writes", &b);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(reg.find("mc.reads"), &a);
    EXPECT_EQ(reg.find("nope"), nullptr);

    std::ostringstream os;
    reg.dump(os);
    EXPECT_EQ(os.str(), "mc.reads 3\nmc.writes 7\n");
}

TEST(StatRegistryTest, DuplicateNameIsFatal)
{
    StatRegistry reg;
    Scalar a, b;
    reg.add("x", &a);
    EXPECT_THROW(reg.add("x", &b), FatalError);
}

TEST(StatRegistryTest, NullStatPanics)
{
    StatRegistry reg;
    EXPECT_THROW(reg.add("x", nullptr), PanicError);
}

TEST(StatRegistryTest, ResetAllResetsEveryStat)
{
    StatRegistry reg;
    Scalar s;
    Average a;
    s += 5;
    a.sample(1.0);
    reg.add("s", &s);
    reg.add("a", &a);
    reg.resetAll();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    EXPECT_EQ(a.samples(), 0u);
}

TEST(StatRegistryTest, DumpJsonRendersEveryStatType)
{
    StatRegistry reg;
    Scalar s;
    Average a;
    Distribution d(0.0, 10.0, 2);
    Histogram h;
    s += 3;
    a.sample(4.0);
    d.sample(5.0);
    h.sample(6.0);
    reg.add("scalar", &s);
    reg.add("avg", &a);
    reg.add("dist", &d);
    reg.add("hist", &h);

    std::ostringstream os;
    reg.dumpJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"scalar\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"avg\": {\"mean\": 4"), std::string::npos);
    EXPECT_NE(json.find("\"dist\": {\"mean\": 5"), std::string::npos);
    EXPECT_NE(json.find("\"hist\": {\"mean\": 6"), std::string::npos);
    // Keys are emitted sorted (std::map order).
    EXPECT_LT(json.find("\"avg\""), json.find("\"dist\""));
    EXPECT_LT(json.find("\"dist\""), json.find("\"hist\""));
    EXPECT_LT(json.find("\"hist\""), json.find("\"scalar\""));
}

TEST(StatRegistryTest, EmptyRegistryDumpsEmptyObject)
{
    StatRegistry reg;
    std::ostringstream os;
    reg.dumpJson(os);
    EXPECT_EQ(os.str(), "{}");
}

} // namespace
} // namespace refsched
