/** @file Tests for the logging/error-reporting facility. */

#include "simcore/logging.hh"

#include <gtest/gtest.h>

namespace refsched
{
namespace
{

class LoggingTest : public ::testing::Test
{
  protected:
    void SetUp() override { saved_ = logLevel(); }
    void TearDown() override { setLogLevel(saved_); }
    LogLevel saved_ = LogLevel::Warn;
};

TEST_F(LoggingTest, LevelIsSettable)
{
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
}

TEST_F(LoggingTest, FatalThrowsFatalError)
{
    try {
        fatal("bad value: ", 42, " in ", "config");
        FAIL() << "fatal() must not return";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "bad value: 42 in config");
    }
}

TEST_F(LoggingTest, PanicThrowsPanicError)
{
    try {
        panic("broken invariant ", 7);
        FAIL() << "panic() must not return";
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "broken invariant 7");
    }
}

TEST_F(LoggingTest, ErrorsHaveDistinctBases)
{
    // fatal = user error (runtime_error); panic = bug (logic_error):
    // callers can catch them separately.
    EXPECT_THROW(fatal("x"), std::runtime_error);
    EXPECT_THROW(panic("x"), std::logic_error);
    bool fatalIsLogic = true;
    try {
        fatal("x");
    } catch (const std::logic_error &) {
    } catch (...) {
        fatalIsLogic = false;
    }
    EXPECT_FALSE(fatalIsLogic);
}

TEST_F(LoggingTest, AssertMacroPanicsWithContext)
{
    if (!kAssertsCompiledIn)
        GTEST_SKIP() << "REFSCHED_ASSERT compiled out in this build";
    const int x = 3;
    try {
        REFSCHED_ASSERT(x == 4, "x was ", x);
        FAIL();
    } catch (const PanicError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("x == 4"), std::string::npos);
        EXPECT_NE(msg.find("x was 3"), std::string::npos);
    }
    REFSCHED_ASSERT(x == 3, "must not throw");
}

TEST_F(LoggingTest, AssertElisionMatchesBuildConfiguration)
{
    // With REFSCHED_ASSERTS=OFF (the release-bench preset) the macro
    // must compile to nothing: no throw AND no evaluation of the
    // condition.  With asserts on, the condition is evaluated exactly
    // once and a false result panics.
    int evaluations = 0;
    auto failing = [&evaluations] {
        ++evaluations;
        return false;
    };
    if (kAssertsCompiledIn) {
        EXPECT_THROW(REFSCHED_ASSERT(failing(), "must fire"),
                     PanicError);
        EXPECT_EQ(evaluations, 1);
    } else {
        EXPECT_NO_THROW(REFSCHED_ASSERT(failing(), "must be elided"));
        EXPECT_EQ(evaluations, 0);
    }
}

TEST_F(LoggingTest, FormatConcatenatesMixedTypes)
{
    EXPECT_EQ(detail::format("a", 1, 'b', 2.5), "a1b2.5");
    EXPECT_EQ(detail::format(), "");
}

TEST_F(LoggingTest, WarnAndInformRespectLevels)
{
    // These must not throw at any level; output goes to stderr.
    setLogLevel(LogLevel::Quiet);
    warn("suppressed");
    inform("suppressed");
    setLogLevel(LogLevel::Debug);
    warn("emitted");
    inform("emitted");
}

} // namespace
} // namespace refsched
