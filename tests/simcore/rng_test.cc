/** @file Unit tests for the deterministic RNG. */

#include "simcore/rng.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <iterator>
#include <set>
#include <vector>

namespace refsched
{
namespace
{

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedRestartsSequence)
{
    Rng a(77);
    const auto first = a.next();
    a.next();
    a.reseed(77);
    EXPECT_EQ(a.next(), first);
}

TEST(RngTest, BelowStaysInBounds)
{
    Rng r(9);
    for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            ASSERT_LT(r.below(bound), bound);
    }
}

TEST(RngTest, BelowCoversSmallRange)
{
    Rng r(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, InRangeInclusive)
{
    Rng r(4);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 200; ++i) {
        const auto v = r.inRange(10, 12);
        ASSERT_GE(v, 10u);
        ASSERT_LE(v, 12u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, RealInUnitInterval)
{
    Rng r(5);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = r.real();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

class RngBernoulliTest : public ::testing::TestWithParam<double>
{
};

TEST_P(RngBernoulliTest, MatchesProbability)
{
    const double p = GetParam();
    Rng r(42);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(p);
    EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, RngBernoulliTest,
                         ::testing::Values(0.0, 0.1, 0.35, 0.5, 0.9,
                                           1.0));

class RngGeometricTest : public ::testing::TestWithParam<double>
{
};

TEST_P(RngGeometricTest, MeanMatchesTheory)
{
    const double p = GetParam();
    Rng r(7);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(p));
    const double expected = (1.0 - p) / p;
    EXPECT_NEAR(sum / n, expected, expected * 0.1 + 0.05);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, RngGeometricTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.9));

TEST(RngTest, GeometricEdgeCases)
{
    Rng r(8);
    EXPECT_EQ(r.geometric(1.0), 0u);
    EXPECT_EQ(r.geometric(0.0, 500), 500u);
    for (int i = 0; i < 100; ++i)
        ASSERT_LE(r.geometric(0.001, 50), 50u);
}

TEST(CounterRngTest, PureFunctionOfSeedStreamCounter)
{
    CounterRng a(42, rngstream::kArrival);
    CounterRng b(42, rngstream::kArrival);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
    // mix() is the whole generator: replaying the counter reproduces
    // the sequence with no hidden state.
    for (std::uint64_t i = 0; i < 1000; ++i)
        ASSERT_EQ(CounterRng::mix(42, rngstream::kArrival, i),
                  CounterRng(42, rngstream::kArrival).mix(
                      42, rngstream::kArrival, i));
}

TEST(CounterRngTest, StreamsAreIndependent)
{
    // Same seed, different stream keys: the sequences must be
    // unrelated.  A shared underlying stream (the aliasing bug this
    // guards against) would show up as equal prefixes.
    const std::uint64_t keys[] = {
        rngstream::kArrival, rngstream::kArrivalPhase,
        rngstream::kServingTask, rngstream::kServingAddr};
    for (std::size_t i = 0; i < std::size(keys); ++i) {
        for (std::size_t j = i + 1; j < std::size(keys); ++j) {
            CounterRng a(7, keys[i]), b(7, keys[j]);
            int same = 0;
            for (int k = 0; k < 1000; ++k)
                same += (a.next() == b.next());
            EXPECT_LT(same, 2) << "streams " << i << " and " << j;
        }
    }
}

TEST(CounterRngTest, InterleavingCannotEntangleStreams)
{
    // The property the open-loop injector depends on: draws from one
    // stream never perturb another, no matter the interleaving.
    CounterRng arrivals(5, rngstream::kArrival);
    CounterRng addrs(5, rngstream::kServingAddr);
    std::vector<std::uint64_t> interleaved;
    for (int i = 0; i < 100; ++i) {
        interleaved.push_back(arrivals.next());
        addrs.next();
        addrs.next();
    }
    CounterRng alone(5, rngstream::kArrival);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(interleaved[static_cast<std::size_t>(i)],
                  alone.next());
}

TEST(CounterRngTest, RealInUnitIntervalAndUniform)
{
    CounterRng r(11, rngstream::kServingAddr);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = r.real();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(CounterRngTest, BelowStaysInBoundsAndCovers)
{
    CounterRng r(13, rngstream::kServingTask);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 300; ++i) {
        const auto v = r.below(8);
        ASSERT_LT(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 8u);
}

} // namespace
} // namespace refsched
