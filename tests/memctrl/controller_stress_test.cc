/** @file
 * Randomized stress properties of the memory controller: under
 * arbitrary mixed traffic and any refresh policy, every accepted
 * read completes exactly once, latencies are physically sane, and
 * the protocol assertions in the bank state machines never fire.
 */

#include <gtest/gtest.h>

#include <map>

#include "memctrl/memory_controller.hh"
#include "simcore/rng.hh"

namespace refsched::memctrl
{
namespace
{

using dram::RefreshPolicy;

/** Callee test double: cookies carry (read id, send tick); fire()
 *  tallies completions and the latency envelope. */
struct LatencyRecorder : Callee
{
    std::uint64_t completions = 0;
    std::map<std::uint64_t, int> completionsPerRead;
    Tick minLatency = kMaxTick;
    Tick maxLatency = 0;

    void
    fire(Tick now, std::uint64_t id, std::uint64_t sent) override
    {
        ++completions;
        ++completionsPerRead[id];
        const Tick lat = now - static_cast<Tick>(sent);
        minLatency = std::min(minLatency, lat);
        maxLatency = std::max(maxLatency, lat);
    }
};

class ControllerStressTest
    : public ::testing::TestWithParam<RefreshPolicy>
{
};

TEST_P(ControllerStressTest, RandomTrafficInvariants)
{
    const auto dev = dram::makeDdr3_1600(
        dram::DensityGb::d32, milliseconds(64.0), 128);
    EventQueue eq;
    MemoryController mc(eq, dev,
                        dram::makeRefreshScheduler(GetParam(), dev));
    Rng rng(2024);

    std::uint64_t acceptedReads = 0;
    std::uint64_t rejectedReads = 0;
    std::uint64_t acceptedWrites = 0;
    LatencyRecorder rec;

    // Bursty injector: alternates hot phases (every ~6 ns) and idle
    // gaps, mixing reads and writes over random and repeated rows.
    std::uint64_t readId = 0;
    std::function<void(Tick)> inject = [&](Tick t) {
        const bool isWrite = rng.bernoulli(0.3);
        Addr addr;
        if (rng.bernoulli(0.4)) {
            // Row-hit-friendly: a small set of hot rows.
            addr = (rng.below(32) * dev.org.rowBytes)
                + rng.below(64) * 64;
        } else {
            addr = rng.below(dev.org.totalBytes() / 64) * 64;
        }

        Request r;
        r.paddr = addr;
        if (isWrite) {
            r.type = Request::Type::Write;
            acceptedWrites += mc.enqueue(std::move(r)) ? 1 : 0;
        } else {
            r.type = Request::Type::Read;
            r.completion = &rec;
            r.cookie0 = readId++;
            r.cookie1 = static_cast<std::uint64_t>(t);
            if (mc.enqueue(std::move(r)))
                ++acceptedReads;
            else
                ++rejectedReads;
        }

        const Tick gap = rng.bernoulli(0.02)
            ? nanoseconds(400.0)         // idle period
            : nanoseconds(4.0) + rng.below(nanoseconds(6.0));
        const Tick cutoff = dev.timings.tREFW / 4;
        if (t + gap < cutoff) {
            eq.schedule(t + gap,
                        [&inject, t, gap] { inject(t + gap); });
        }
    };
    eq.schedule(0, [&] { inject(0); });

    eq.runUntil(dev.timings.tREFW / 4);
    // Injection has stopped; drain everything still queued.
    eq.runUntil(eq.now() + microseconds(50.0));

    EXPECT_GT(acceptedReads, 1000u);
    EXPECT_EQ(rec.completions, acceptedReads);
    for (const auto &[id, count] : rec.completionsPerRead)
        ASSERT_EQ(count, 1) << "read " << id;

    // Physical floor: a forwarded read takes one clock; anything
    // else at least a CAS+burst.
    EXPECT_GE(rec.minLatency, dev.timings.tCK);
    // Sanity ceiling: queue depth * worst-case row cycle plus a few
    // refreshes; generous but finite.
    EXPECT_LT(rec.maxLatency, microseconds(20.0));

    EXPECT_EQ(mc.readQueueSize(0), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ControllerStressTest,
    ::testing::Values(RefreshPolicy::NoRefresh, RefreshPolicy::AllBank,
                      RefreshPolicy::PerBankRoundRobin,
                      RefreshPolicy::SequentialPerBank,
                      RefreshPolicy::OooPerBank,
                      RefreshPolicy::Adaptive));

TEST(ControllerStressTest, BackToBackRowHitsSaturateBus)
{
    // 64 row hits to one open row: the data bus becomes the
    // bottleneck, so completions are tBURST apart.
    const auto dev = dram::makeDdr3_1600(
        dram::DensityGb::d32, milliseconds(64.0), 128);
    EventQueue eq;
    MemoryController mc(
        eq, dev,
        dram::makeRefreshScheduler(RefreshPolicy::NoRefresh, dev));

    struct DoneAtRecorder : Callee
    {
        std::vector<Tick> doneAt;
        void
        fire(Tick now, std::uint64_t, std::uint64_t) override
        {
            doneAt.push_back(now);
        }
    } rec;
    auto &doneAt = rec.doneAt;
    for (std::uint64_t i = 0; i < 64; ++i) {
        Request r;
        r.paddr = i * 64;  // same row, consecutive columns
        r.type = Request::Type::Read;
        r.completion = &rec;
        ASSERT_TRUE(mc.enqueue(std::move(r)));
    }
    eq.runUntil(microseconds(2.0));
    ASSERT_EQ(doneAt.size(), 64u);
    for (std::size_t i = 1; i < doneAt.size(); ++i) {
        EXPECT_GE(doneAt[i] - doneAt[i - 1], dev.timings.tBURST)
            << "completion " << i;
    }
    // Full pipeline: total time ~ tRCD + tCL + 64 bursts, far below
    // 64 serial accesses.
    EXPECT_LT(doneAt.back(),
              dev.timings.tRCD + dev.timings.tCL
                  + 66 * dev.timings.tBURST);
}

} // namespace
} // namespace refsched::memctrl
