/**
 * @file
 * Property test for the controller's incrementally-maintained
 * scheduling bitmaps.  The FR-FCFS fast path and the Algorithm 3
 * pick both trust per-channel bitmaps (open-bank mask, row-hit
 * words, refresh-frozen mask) that are updated in place on every
 * enqueue, dequeue, activate, precharge and refresh transition.
 * This test drives randomized traffic through every refresh policy
 * and re-derives the bitmaps from raw queue + bank state after each
 * step via MemoryController::checkHitBitmapInvariant, failing with
 * the controller's own divergence description if the incremental
 * view ever drifts from the naive recompute.
 */

#include "memctrl/memory_controller.hh"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "simcore/logging.hh"
#include "simcore/rng.hh"

namespace refsched::memctrl
{
namespace
{

using dram::DensityGb;
using dram::RefreshPolicy;

/** Callee double: stamps an optional<Tick> slot on completion. */
struct CompletionSink : Callee
{
    void
    fire(Tick now, std::uint64_t slotAddr, std::uint64_t) override
    {
        *reinterpret_cast<std::optional<Tick> *>(slotAddr) = now;
    }
};

struct Harness
{
    explicit Harness(RefreshPolicy policy, int channels,
                     const ControllerParams &params = {})
        : dev(makeDevice(channels)),
          mc(eq, dev, dram::makeRefreshScheduler(policy, dev), params)
    {
    }

    static dram::DramDeviceConfig
    makeDevice(int channels)
    {
        // Aggressive timeScale keeps refresh cadence dense enough
        // that random traffic collides with REF windows constantly.
        auto d = dram::makeDdr3_1600(DensityGb::d32,
                                     milliseconds(64.0), 64);
        d.org.channels = channels;
        return d;
    }

    bool
    read(Addr addr)
    {
        auto done = std::make_shared<std::optional<Tick>>();
        doneSlots.push_back(done);
        Request r;
        r.paddr = addr;
        r.type = Request::Type::Read;
        r.completion = &sink;
        r.cookie0 = reinterpret_cast<std::uint64_t>(done.get());
        return mc.enqueue(std::move(r));
    }

    bool
    write(Addr addr)
    {
        Request r;
        r.paddr = addr;
        r.type = Request::Type::Write;
        return mc.enqueue(std::move(r));
    }

    /** A random legal physical address, biased toward row reuse so
     *  both the hit and the miss bitmap paths are exercised. */
    Addr
    randomAddr(Rng &rng)
    {
        dram::DramCoord c;
        c.channel = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(dev.org.channels)));
        c.rank = static_cast<int>(rng.below(
            static_cast<std::uint64_t>(dev.org.ranksPerChannel)));
        c.bank = static_cast<int>(rng.below(
            static_cast<std::uint64_t>(dev.org.banksPerRank)));
        // Few distinct rows: adjacent requests frequently share a
        // row (hits) or conflict on one (misses).
        c.row = rng.below(4);
        c.column = rng.below(8);
        return mc.mapping().compose(c);
    }

    void
    checkAllChannels(const char *when)
    {
        for (int ch = 0; ch < dev.org.channels; ++ch) {
            std::string why;
            ASSERT_TRUE(mc.checkHitBitmapInvariant(ch, &why))
                << when << " @ tick " << eq.now() << " channel "
                << ch << ": " << why;
        }
    }

    EventQueue eq;
    dram::DramDeviceConfig dev;
    MemoryController mc;
    CompletionSink sink;
    std::vector<std::shared_ptr<std::optional<Tick>>> doneSlots;
};

/**
 * The property: after any prefix of a randomized enqueue / service /
 * refresh interleaving, the incremental bitmaps equal the naive
 * recompute.  Service windows are random-length runUntil steps, so
 * the check lands mid-burst, mid-refresh, during write drains, and
 * on idle queues alike.
 */
void
runRandomizedTraffic(RefreshPolicy policy, int channels,
                     std::uint64_t seed, int steps)
{
    ControllerParams params;
    // Small queues so capacity bounces (enqueue refusals) occur and
    // the bitmaps see rejected requests too.
    params.readQueueCapacity = 16;
    params.writeQueueCapacity = 16;
    params.writeLowWatermark = 4;
    params.writeHighWatermark = 12;

    Harness h(policy, channels, params);
    Rng rng(seed);
    h.checkAllChannels("initial");

    for (int i = 0; i < steps; ++i) {
        // A burst of 0..7 enqueues, mixed read/write.
        const int burst = static_cast<int>(rng.below(8));
        for (int j = 0; j < burst; ++j) {
            const Addr a = h.randomAddr(rng);
            if (rng.below(4) == 0)
                h.write(a);
            else
                h.read(a);
        }
        h.checkAllChannels("after enqueue burst");

        // Advance a random window: sometimes sub-command-length,
        // sometimes spanning whole refresh intervals.
        const Tick step = rng.below(3) == 0
            ? nanoseconds(static_cast<double>(1 + rng.below(40)))
            : microseconds(static_cast<double>(1 + rng.below(4)));
        h.eq.runUntil(h.eq.now() + step);
        h.checkAllChannels("after service window");
        if (::testing::Test::HasFatalFailure())
            return;
    }

    // Drain: everything queued eventually completes with the
    // bitmaps still consistent at the end.
    h.eq.runUntil(h.eq.now() + milliseconds(1.0));
    h.checkAllChannels("after drain");
}

class HitBitmapPropertyTest
    : public ::testing::TestWithParam<RefreshPolicy>
{
};

TEST_P(HitBitmapPropertyTest, IncrementalMatchesNaiveSingleChannel)
{
    runRandomizedTraffic(GetParam(), /*channels=*/1, /*seed=*/0xA11,
                         /*steps=*/120);
}

TEST_P(HitBitmapPropertyTest, IncrementalMatchesNaiveMultiChannel)
{
    runRandomizedTraffic(GetParam(), /*channels=*/2, /*seed=*/0xB22,
                         /*steps=*/80);
}

TEST_P(HitBitmapPropertyTest, ManySeedsShortRuns)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        runRandomizedTraffic(GetParam(), /*channels=*/1, seed,
                             /*steps=*/25);
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, HitBitmapPropertyTest,
    ::testing::Values(RefreshPolicy::NoRefresh,
                      RefreshPolicy::AllBank,
                      RefreshPolicy::PerBankRoundRobin,
                      RefreshPolicy::SequentialPerBank,
                      RefreshPolicy::OooPerBank,
                      RefreshPolicy::Adaptive),
    [](const auto &info) {
        std::string name = dram::toString(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

} // namespace
} // namespace refsched::memctrl
