/** @file Tests for the FR-FCFS memory controller. */

#include "memctrl/memory_controller.hh"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "simcore/logging.hh"
#include "simcore/rng.hh"

namespace refsched::memctrl
{
namespace
{

using dram::DensityGb;
using dram::RefreshPolicy;

/**
 * Callee test double: cookie0 carries the address of an
 * std::optional<Tick> completion slot, which fire() stamps with the
 * data-ready tick.  The slot must outlive the scheduled completion
 * (tests hold them in shared_ptrs until after runUntil).
 */
struct CompletionSink : Callee
{
    void
    fire(Tick now, std::uint64_t slotAddr, std::uint64_t) override
    {
        *reinterpret_cast<std::optional<Tick> *>(slotAddr) = now;
    }
};

struct Harness
{
    explicit Harness(RefreshPolicy policy = RefreshPolicy::NoRefresh,
                     unsigned timeScale = 64,
                     const ControllerParams &params = {})
        : dev(dram::makeDdr3_1600(DensityGb::d32, milliseconds(64.0),
                                  timeScale)),
          mc(eq, dev, dram::makeRefreshScheduler(policy, dev), params)
    {
    }

    /** Enqueue a read; returns a slot that records completion. */
    std::shared_ptr<std::optional<Tick>>
    read(Addr addr)
    {
        auto done = std::make_shared<std::optional<Tick>>();
        doneSlots.push_back(done);  // keep alive past caller scope
        Request r;
        r.paddr = addr;
        r.type = Request::Type::Read;
        r.completion = &sink;
        r.cookie0 = reinterpret_cast<std::uint64_t>(done.get());
        EXPECT_TRUE(mc.enqueue(std::move(r)));
        return done;
    }

    bool
    write(Addr addr)
    {
        Request r;
        r.paddr = addr;
        r.type = Request::Type::Write;
        return mc.enqueue(std::move(r));
    }

    /** Compose an address for (rank, bank, row, column). */
    Addr
    addrOf(int rank, int bank, std::uint64_t row,
           std::uint64_t col = 0) const
    {
        dram::DramCoord c;
        c.rank = rank;
        c.bank = bank;
        c.row = row;
        c.column = col;
        return mc.mapping().compose(c);
    }

    EventQueue eq;
    dram::DramDeviceConfig dev;
    MemoryController mc;
    CompletionSink sink;
    std::vector<std::shared_ptr<std::optional<Tick>>> doneSlots;
};

TEST(MemoryControllerTest, UnloadedReadLatencyIsActPlusCasPlusBurst)
{
    Harness h;
    auto done = h.read(h.addrOf(0, 0, 10));
    h.eq.runUntil(microseconds(1));
    ASSERT_TRUE(done->has_value());
    const auto &t = h.dev.timings;
    EXPECT_EQ(done->value(), t.tRCD + t.tCL + t.tBURST);
    EXPECT_EQ(h.mc.channelStats(0).rowMisses.value(), 1.0);
}

TEST(MemoryControllerTest, RowHitSkipsActivation)
{
    Harness h;
    auto first = h.read(h.addrOf(0, 0, 10, 0));
    // Stay within the idle-row auto-close timeout so row 10 is
    // still latched when the second request arrives.
    h.eq.runUntil(nanoseconds(100));
    ASSERT_TRUE(first->has_value());

    const Tick start = h.eq.now();
    auto second = h.read(h.addrOf(0, 0, 10, 1));
    h.eq.runUntil(start + microseconds(1));
    ASSERT_TRUE(second->has_value());

    const auto &t = h.dev.timings;
    // The open-row policy kept row 10 latched: CAS-only latency,
    // rounded up to the next clock edge.
    const Tick expected =
        divCeil(0, 1) /* keep clang happy */ + t.tCL + t.tBURST;
    EXPECT_LE(second->value() - start, expected + t.tCK);
    EXPECT_EQ(h.mc.channelStats(0).rowHits.value(), 1.0);
}

TEST(MemoryControllerTest, RowConflictPrechargesAndReopens)
{
    Harness h;
    auto first = h.read(h.addrOf(0, 0, 10));
    // Within the idle-close timeout: row 10 is still open, so the
    // second request is a genuine conflict.
    h.eq.runUntil(nanoseconds(100));

    const Tick start = h.eq.now();
    auto second = h.read(h.addrOf(0, 0, 99));
    h.eq.runUntil(start + microseconds(1));
    ASSERT_TRUE(second->has_value());

    const auto &t = h.dev.timings;
    // PRE + ACT + CAS: at least tRP + tRCD + tCL + tBURST.
    EXPECT_GE(second->value() - start,
              t.tRP + t.tRCD + t.tCL + t.tBURST);
    EXPECT_EQ(h.mc.channelStats(0).rowMisses.value(), 2.0);
}

TEST(MemoryControllerTest, FrFcfsPrioritisesRowHitsOverOlderMisses)
{
    Harness h;
    // Open row 5 in bank 0 (and stay inside the idle-close timeout
    // so it is still open when the contenders arrive).
    auto warm = h.read(h.addrOf(0, 0, 5));
    h.eq.runUntil(nanoseconds(100));
    ASSERT_TRUE(warm->has_value());

    // Older conflicting request to bank 0 row 7, then a younger
    // row hit to row 5 in the same bank.
    const Tick start = h.eq.now();
    auto conflict = h.read(h.addrOf(0, 0, 7));
    auto hit = h.read(h.addrOf(0, 0, 5, 3));
    h.eq.runUntil(start + microseconds(2));
    ASSERT_TRUE(conflict->has_value());
    ASSERT_TRUE(hit->has_value());
    // First-ready wins: the row hit completes before the conflict.
    EXPECT_LT(hit->value(), conflict->value());
}

TEST(MemoryControllerTest, BanksServeInParallel)
{
    Harness h;
    const Tick start = 0;
    auto a = h.read(h.addrOf(0, 0, 1));
    auto b = h.read(h.addrOf(0, 1, 1));
    h.eq.runUntil(microseconds(1));
    ASSERT_TRUE(a->has_value() && b->has_value());
    const auto &t = h.dev.timings;
    // Second bank's ACT is only tRRD + command-slot behind; both
    // finish far sooner than serialised tRC would allow.
    EXPECT_LE(b->value() - start,
              t.tRRD + t.tRCD + t.tCL + 2 * t.tBURST + 2 * t.tCK);
}

TEST(MemoryControllerTest, ReadQueueFillsAndRejects)
{
    Harness h;
    // All to one bank+row-conflicting rows so nothing completes
    // until we run the queue.
    for (std::uint64_t i = 0; i < 64; ++i)
        h.read(h.addrOf(0, 0, i));
    Request extra;
    extra.paddr = h.addrOf(0, 0, 64);
    extra.type = Request::Type::Read;
    EXPECT_FALSE(h.mc.enqueue(std::move(extra)));
    EXPECT_EQ(h.mc.readQueueSize(0), 64u);
}

TEST(MemoryControllerTest, RetryNotificationFiresWhenSpaceFrees)
{
    Harness h;
    for (std::uint64_t i = 0; i < 64; ++i)
        h.read(h.addrOf(0, 0, i));
    bool retried = false;
    h.mc.requestRetryNotification([&] { retried = true; });
    h.eq.runUntil(microseconds(2));
    EXPECT_TRUE(retried);
}

TEST(MemoryControllerTest, WritesArePostedAndDrainAtHighWatermark)
{
    Harness h;
    // Stay below the high watermark: nothing drains (reads absent,
    // opportunistic threshold is low-watermark + 4).
    for (std::uint64_t i = 0; i < 20; ++i)
        EXPECT_TRUE(h.write(h.addrOf(0, static_cast<int>(i % 8), i)));
    h.eq.runUntil(microseconds(5));
    EXPECT_EQ(h.mc.writeQueueSize(0), 20u);
    EXPECT_EQ(h.mc.channelStats(0).writeDrainBatches.value(), 0.0);

    // Push past the high watermark: batch-drain down to the low one.
    for (std::uint64_t i = 20; i < 54; ++i)
        EXPECT_TRUE(h.write(h.addrOf(0, static_cast<int>(i % 8), i)));
    h.eq.runUntil(microseconds(50));
    EXPECT_EQ(h.mc.writeQueueSize(0), 32u);
    EXPECT_GE(h.mc.channelStats(0).writeDrainBatches.value(), 1.0);
    EXPECT_EQ(h.mc.channelStats(0).writes.value(), 54.0 - 32.0);
}

TEST(MemoryControllerTest, ReadForwardedFromWriteQueue)
{
    Harness h;
    const Addr a = h.addrOf(0, 3, 77);
    EXPECT_TRUE(h.write(a));
    auto done = h.read(a);
    h.eq.runUntil(microseconds(1));
    ASSERT_TRUE(done->has_value());
    EXPECT_EQ(done->value(), h.dev.timings.tCK);
    EXPECT_EQ(h.mc.channelStats(0).forwardedReads.value(), 1.0);
    // The forwarded read never entered the read queue.
    EXPECT_EQ(h.mc.channelStats(0).rowMisses.value(), 0.0);
}

TEST(MemoryControllerTest, QueuedToBankCountsDemandReads)
{
    Harness h;
    h.read(h.addrOf(0, 2, 1));
    h.read(h.addrOf(0, 2, 2));
    h.read(h.addrOf(1, 4, 1));
    h.write(h.addrOf(0, 2, 3));  // writes don't count
    EXPECT_EQ(h.mc.queuedToBank(0, 0, 2), 2);
    EXPECT_EQ(h.mc.queuedToBank(0, 1, 4), 1);
    EXPECT_EQ(h.mc.queuedToBank(0, 0, 5), 0);
    h.eq.runUntil(microseconds(2));
    EXPECT_EQ(h.mc.queuedToBank(0, 0, 2), 0);
}

TEST(MemoryControllerRefreshTest, AllBankRefreshBlocksWholeRank)
{
    Harness h(RefreshPolicy::AllBank);
    // Let the first refresh engage with an empty queue.
    h.eq.runUntil(nanoseconds(100));
    const Tick start = h.eq.now();
    auto blocked = h.read(h.addrOf(0, 0, 1));
    auto other = h.read(h.addrOf(1, 0, 1));
    h.eq.runUntil(start + microseconds(3));
    ASSERT_TRUE(blocked->has_value() && other->has_value());
    const auto &t = h.dev.timings;
    // Rank 0 was refreshing: the read waited out most of tRFC_ab.
    EXPECT_GT(blocked->value() - start, t.tRFCab / 2);
    // Rank 1 was free (staggered refresh).
    EXPECT_LT(other->value() - start, t.tRFCab / 2);
    EXPECT_GE(h.mc.channelStats(0).readsBlockedByRefresh.value(), 1.0);
}

TEST(MemoryControllerRefreshTest, WakePreciseSleepsThroughRefreshWindow)
{
    // A read that arrives while its rank is under all-bank refresh
    // cannot be served until tRFC expires -- a window spanning
    // hundreds of memory-clock edges.  The wake-precise controller
    // must sleep through it: the kernel executes O(state changes)
    // events (the enqueue wake-up, refresh-engine progress on the
    // other rank, harvests of newly due refreshes), not one event
    // per edge as the polling controller did.
    Harness h(RefreshPolicy::AllBank);
    h.eq.runUntil(nanoseconds(100));
    const auto &bank0 = h.mc.bank(0, 0, 0);
    ASSERT_TRUE(bank0.underRefresh(h.eq.now()));
    const Tick refEnd = bank0.refreshingUntil;
    const auto &t = h.dev.timings;
    const Tick edges = (refEnd - h.eq.now()) / t.tCK;
    ASSERT_GE(edges, 500) << "window too short to be meaningful";

    const std::uint64_t before = h.eq.executedCount();
    auto done = h.read(h.addrOf(0, 0, 1));
    h.eq.runUntil(refEnd);
    const std::uint64_t during = h.eq.executedCount() - before;
    EXPECT_LE(during, 64u)
        << "controller polled through a " << edges
        << "-edge refresh window";

    h.eq.runUntil(refEnd + microseconds(3));
    ASSERT_TRUE(done->has_value());
    EXPECT_GE(done->value(), refEnd);
}

TEST(MemoryControllerRefreshTest, PerBankRefreshLeavesOtherBanksFree)
{
    Harness h(RefreshPolicy::PerBankRoundRobin);
    h.eq.runUntil(nanoseconds(50));  // bank (0,0) refresh engages
    const Tick start = h.eq.now();
    auto blocked = h.read(h.addrOf(0, 0, 1));
    auto free1 = h.read(h.addrOf(0, 5, 1));
    h.eq.runUntil(start + microseconds(3));
    ASSERT_TRUE(blocked->has_value() && free1->has_value());
    const auto &t = h.dev.timings;
    EXPECT_GT(blocked->value() - start, t.tRFCpb / 2);
    EXPECT_LT(free1->value() - start, t.tRFCpb / 2);
}

TEST(MemoryControllerRefreshTest, DeferralLetsDemandGoFirst)
{
    Harness h(RefreshPolicy::AllBank);
    // Demand arrives before the refresh engages: elastic
    // postponement serves it at unloaded latency.
    auto done = h.read(h.addrOf(0, 0, 1));
    h.eq.runUntil(microseconds(2));
    ASSERT_TRUE(done->has_value());
    const auto &t = h.dev.timings;
    EXPECT_EQ(done->value(), t.tRCD + t.tCL + t.tBURST);
}

TEST(MemoryControllerRefreshTest, RefreshCatchesUpAfterDeferral)
{
    Harness h(RefreshPolicy::AllBank);
    auto done = h.read(h.addrOf(0, 0, 1));
    h.eq.runUntil(milliseconds(0.05));
    // Both ranks' deferred refreshes eventually issued.
    EXPECT_GE(h.mc.channelStats(0).refreshCommands.value(), 2.0);
}

TEST(MemoryControllerRefreshTest, FullWindowRefreshesAllRows)
{
    for (auto policy : {RefreshPolicy::AllBank,
                        RefreshPolicy::PerBankRoundRobin,
                        RefreshPolicy::SequentialPerBank}) {
        Harness h(policy, 256);
        h.eq.runUntil(h.dev.timings.tREFW + h.dev.timings.tRFCab);
        const double expected = static_cast<double>(
            h.dev.org.rowsPerBank
            * static_cast<std::uint64_t>(h.dev.org.banksTotal()));
        const auto got = h.mc.channelStats(0).rowsRefreshed.value();
        // Full coverage of window 1 is mandatory; the integer
        // rounding of tREFI can pull the first command or two of
        // window 2 inside the horizon, so allow one all-bank
        // command's worth of slack upward.
        EXPECT_GE(got, expected) << dram::toString(policy);
        EXPECT_LE(got,
                  expected
                      + static_cast<double>(
                          h.dev.timings.rowsPerRefresh
                          * static_cast<std::uint64_t>(
                              h.dev.org.banksPerRank)))
            << dram::toString(policy);
    }
}

TEST(MemoryControllerRefreshTest, PausingShortensRefreshBlocking)
{
    // Same scenario twice: a read arrives mid-refresh.  With
    // Refresh Pausing it completes after at most a row boundary;
    // without, it waits out the whole tRFC_pb.
    Tick latency[2];
    double pauses[2];
    int idx = 0;
    for (const bool pausing : {false, true}) {
        EventQueue eq;
        auto dev = dram::makeDdr3_1600(DensityGb::d32,
                                       milliseconds(64.0), 64);
        ControllerParams params;
        params.refreshPausing = pausing;
        MemoryController mc(
            eq, dev,
            dram::makeRefreshScheduler(
                RefreshPolicy::PerBankRoundRobin, dev),
            params);

        // Let the first refresh (rank 0, bank 0) engage unopposed.
        eq.runUntil(nanoseconds(50.0));
        const Tick start = eq.now();
        CompletionSink sink;
        auto done = std::make_shared<std::optional<Tick>>();
        dram::DramCoord coord;
        coord.bank = 0;
        coord.row = 5;
        Request r;
        r.paddr = mc.mapping().compose(coord);
        r.type = Request::Type::Read;
        r.completion = &sink;
        r.cookie0 = reinterpret_cast<std::uint64_t>(done.get());
        ASSERT_TRUE(mc.enqueue(std::move(r)));
        eq.runUntil(start + microseconds(3.0));
        ASSERT_TRUE(done->has_value());
        latency[idx] = done->value() - start;
        pauses[idx] = mc.channelStats(0).refreshPauses.value();
        ++idx;
    }
    EXPECT_EQ(pauses[0], 0.0);
    EXPECT_GE(pauses[1], 1.0);
    EXPECT_LT(latency[1], latency[0] / 2);
}

TEST(MemoryControllerRefreshTest, PausedRowsAreEventuallyRefreshed)
{
    // Row-coverage conservation: pausing re-queues the remainder, so
    // a full window still refreshes every row.
    EventQueue eq;
    auto dev = dram::makeDdr3_1600(DensityGb::d32, milliseconds(64.0),
                                   256);
    ControllerParams params;
    params.refreshPausing = true;
    MemoryController mc(
        eq, dev,
        dram::makeRefreshScheduler(RefreshPolicy::PerBankRoundRobin,
                                   dev),
        params);
    Rng rng(5);

    // Sporadic random reads to provoke pauses throughout a window.
    std::function<void(Tick)> inject = [&](Tick t) {
        Request r;
        r.paddr = rng.below(dev.org.totalBytes() / 64) * 64;
        r.type = Request::Type::Read;
        // Fire-and-forget: a null completion is valid.
        mc.enqueue(std::move(r));
        const Tick gap = nanoseconds(150.0);
        if (t + gap < dev.timings.tREFW)
            eq.schedule(t + gap, [&inject, t, gap] {
                inject(t + gap);
            });
    };
    eq.schedule(0, [&] { inject(0); });

    eq.runUntil(dev.timings.tREFW + microseconds(5.0));
    const double expected = static_cast<double>(
        dev.org.rowsPerBank
        * static_cast<std::uint64_t>(dev.org.banksTotal()));
    const auto got = mc.channelStats(0).rowsRefreshed.value();
    // Conservation: nothing lost to pausing; the upper bound allows
    // the drain period to pull a few of window 2's commands in.
    EXPECT_GE(got, expected * 0.99);
    EXPECT_LE(got, expected * 1.05);
    EXPECT_GT(mc.channelStats(0).refreshPauses.value(), 0.0);
}

TEST(MemoryControllerTest, ClosedPagePolicyClosesIdleRows)
{
    EventQueue eq;
    auto dev = dram::makeDdr3_1600(DensityGb::d32, milliseconds(64.0),
                                   64);
    ControllerParams params;
    params.pagePolicy = PagePolicy::Closed;
    MemoryController mc(
        eq, dev,
        dram::makeRefreshScheduler(RefreshPolicy::NoRefresh, dev),
        params);

    CompletionSink sink;
    auto done = std::make_shared<std::optional<Tick>>();
    dram::DramCoord coord;
    coord.rank = 0;
    coord.bank = 3;
    coord.row = 9;
    Request r;
    r.paddr = mc.mapping().compose(coord);
    r.type = Request::Type::Read;
    r.completion = &sink;
    r.cookie0 = reinterpret_cast<std::uint64_t>(done.get());
    ASSERT_TRUE(mc.enqueue(std::move(r)));
    eq.runUntil(microseconds(1));
    ASSERT_TRUE(done->has_value());

    // The idle row was precharged once tRAS/tRTP allowed.
    EXPECT_FALSE(mc.bank(0, 0, 3).isOpen());

    // A second access to the SAME row pays a full ACT again: no row
    // hit is possible under the closed-page policy.
    const Tick start = eq.now();
    auto done2 = std::make_shared<std::optional<Tick>>();
    coord.column = 5;
    Request r2;
    r2.paddr = mc.mapping().compose(coord);
    r2.type = Request::Type::Read;
    r2.completion = &sink;
    r2.cookie0 = reinterpret_cast<std::uint64_t>(done2.get());
    ASSERT_TRUE(mc.enqueue(std::move(r2)));
    eq.runUntil(start + microseconds(1));
    ASSERT_TRUE(done2->has_value());
    const auto &t = dev.timings;
    EXPECT_GE(done2->value() - start, t.tRCD + t.tCL + t.tBURST);
    EXPECT_EQ(mc.channelStats(0).rowHits.value(), 0.0);
}

TEST(MemoryControllerTest, OpenPageKeepsRowForLaterHit)
{
    // Control experiment for the closed-page test above: inside the
    // idle-close timeout the open-page policy keeps the row latched.
    Harness h;  // open-page default
    auto done = h.read(h.addrOf(0, 3, 9, 0));
    h.eq.runUntil(nanoseconds(100));
    ASSERT_TRUE(done->has_value());
    EXPECT_TRUE(h.mc.bank(0, 0, 3).isOpen());
}

TEST(MemoryControllerTest, OpenPageIdleRowAutoCloses)
{
    // Regression for a differential-fuzzer find (corpus entry
    // tests/fuzz/corpus/dominance-stale-open-row-mcf.txt): a
    // strictly-open policy left stale rows latched forever, so
    // irregular streams paid PRE+ACT on the critical path at every
    // bank revisit -- and per-bank REF, which precharges its target
    // bank as a side effect, made every refreshing policy BEAT the
    // no-refresh ideal.  Rows idle past openRowIdleTimeout that no
    // queued request wants must be closed in idle command slots.
    Harness h;  // open-page default, timeout 250000 ps
    auto done = h.read(h.addrOf(0, 3, 9, 0));
    h.eq.runUntil(microseconds(1));
    ASSERT_TRUE(done->has_value());
    EXPECT_FALSE(h.mc.bank(0, 0, 3).isOpen());
    EXPECT_EQ(h.mc.channelStats(0).idleRowCloses.value(), 1.0);
}

TEST(MemoryControllerTest, IdleCloseDisabledKeepsRowOpenForever)
{
    ControllerParams params;
    params.openRowIdleTimeout = 0;
    Harness h(RefreshPolicy::NoRefresh, 64, params);
    auto done = h.read(h.addrOf(0, 3, 9, 0));
    h.eq.runUntil(microseconds(1));
    ASSERT_TRUE(done->has_value());
    EXPECT_TRUE(h.mc.bank(0, 0, 3).isOpen());
    EXPECT_EQ(h.mc.channelStats(0).idleRowCloses.value(), 0.0);
}

TEST(MemoryControllerTest, InvalidWatermarksAreFatal)
{
    EventQueue eq;
    auto dev = dram::makeDdr3_1600(DensityGb::d32, milliseconds(64.0), 64);
    ControllerParams params;
    params.writeLowWatermark = 54;
    params.writeHighWatermark = 32;
    EXPECT_THROW(
        MemoryController(
            eq, dev,
            dram::makeRefreshScheduler(RefreshPolicy::NoRefresh, dev),
            params),
        FatalError);
}

} // namespace
} // namespace refsched::memctrl
