/**
 * @file
 * End-to-end tests for the dynamic-workload scenario engine on the
 * checked-in adversarial-colocation fixture: churn mechanics and
 * accounting, the migration-recovers-stale-placement headline, and
 * bit-identical determinism across --jobs and --shards.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/parallel_runner.hh"
#include "core/system.hh"
#include "memctrl/memory_controller.hh"
#include "os/scenario_director.hh"
#include "validate/golden_trace.hh"
#include "workload/scenario.hh"

namespace refsched::core
{
namespace
{

std::string
fixturePath()
{
    return std::string(REFSCHED_TEST_DATA_DIR)
        + "/adversarial_colocation.scenario";
}

/** The run the fixture header documents: co-design, 1 core x 4
 *  tasks, d32, timeScale 1024. */
SystemConfig
fixtureConfig(bool migrate)
{
    SystemConfig cfg;
    cfg.numCores = 1;
    cfg.tasksPerCore = 4;
    cfg.timeScale = 1024;
    cfg.density = dram::DensityGb::d32;
    cfg.seed = 1;
    cfg.applyPolicy(Policy::CoDesign);
    cfg.benchmarks = {"GemsFDTD", "stream", "GemsFDTD", "npb_ua"};
    cfg.scenario = workload::ScenarioScript::parseFile(fixturePath());
    cfg.scenario.migrate = migrate;
    cfg.validate = true;
    return cfg;
}

TEST(ScenarioIntegrationTest, ChurnMechanicsAndAccounting)
{
    // warmup=0 so the churn quanta land inside the measured region
    // and the director's counters survive the stats reset.
    System sys(fixtureConfig(/*migrate=*/true));
    const Metrics m = sys.run(/*warmupQuanta=*/0,
                              /*measureQuanta=*/28);
    EXPECT_EQ(m.validationViolations, 0u) << m.firstViolation;

    const os::ScenarioDirector *dir = sys.scenarioDirector();
    ASSERT_NE(dir, nullptr);
    EXPECT_EQ(dir->spawns.value(), 1.0);
    EXPECT_EQ(dir->kills.value(), 1.0);
    // The re-binpack after the kill strands pages; all of them move,
    // each page as pageBytes/64 read+write line pairs.
    EXPECT_GT(dir->pagesMigrated.value(), 0.0);
    EXPECT_EQ(dir->migrationReads.value(),
              dir->migrationWrites.value());
    EXPECT_EQ(dir->migrationReads.value(),
              dir->pagesMigrated.value()
                  * static_cast<double>(
                      sys.controller().mapping().pageBytes() / 64));
    // 28 quanta are enough for the bandwidth-bound sweep to drain
    // completely (copying is real traffic, not a teleport).
    EXPECT_FALSE(dir->migrationsPending());

    // Survivors (pids 1, 3, 4) plus the adversarial arrival.
    const auto &live = dir->liveTasks();
    ASSERT_EQ(live.size(), 4u);
    EXPECT_EQ(live.back()->pid(), 5);
    EXPECT_EQ(live.back()->name(), "stream");
}

TEST(ScenarioIntegrationTest, MigrationRecoversAdversarialColocation)
{
    // The acceptance experiment: churn + consolidation in warm-up,
    // measure the post-churn steady state.  Stale placement makes
    // the co-design schedule "clean" tasks whose stranded pages sit
    // in refreshing banks; migration restores the guarantee.
    const auto runFixture = [](bool migrate) {
        System sys(fixtureConfig(migrate));
        const Metrics m = sys.run(/*warmupQuanta=*/24,
                                  /*measureQuanta=*/32);
        EXPECT_EQ(m.validationViolations, 0u) << m.firstViolation;
        const auto &ch = sys.controller().channelStats(0);
        return std::make_tuple(m, ch.readLatencyClean.samples(),
                               ch.readLatencyBlocked.samples(),
                               ch.readLatencyClean.mean(),
                               ch.readLatencyBlocked.mean());
    };

    const auto [stale, staleClean, staleBlocked, staleCleanMean,
                staleBlockedMean] = runFixture(false);
    const auto [moved, movedClean, movedBlocked, movedCleanMean,
                movedBlockedMean] = runFixture(true);

    // Without migration the stale placement leaks blocked reads and
    // forces Algorithm 3 into best-effort picks...
    EXPECT_GT(stale.blockedReadFraction, 0.0);
    EXPECT_GT(stale.bestEffortPicks, 0u);
    EXPECT_GT(staleBlocked, 0u);
    // ...and the clean/blocked latency split shows what each blocked
    // read costs: a refresh-blocked read waits at least twice the
    // mean clean latency.
    EXPECT_GT(staleBlockedMean, 2.0 * staleCleanMean);

    // Migration recovers the co-design's placement guarantee: every
    // pick is clean again and no measured read hits a refreshing
    // bank.
    EXPECT_EQ(moved.bestEffortPicks, 0u);
    EXPECT_EQ(movedBlocked, 0u);
    EXPECT_LT(moved.blockedReadFraction, stale.blockedReadFraction);
    EXPECT_GT(movedClean, 0u);
    (void)movedCleanMean;
    (void)movedBlockedMean;
    (void)staleClean;
}

/** Run the fixture config under @p jobs workers, tracing each cell. */
std::vector<Metrics>
runScenarioGrid(int jobs, std::vector<validate::TraceRecorder> &recs)
{
    const bool variants[] = {true, false};
    recs.assign(2, validate::TraceRecorder{});
    std::vector<CellSpec> specs;
    for (std::size_t i = 0; i < 2; ++i) {
        SystemConfig cfg = fixtureConfig(variants[i]);
        validate::TraceRecorder *rec = &recs[i];
        CellSpec spec;
        spec.custom = [cfg, rec] {
            System sys(cfg);
            sys.attachProbe(rec);
            return sys.run(/*warmupQuanta=*/1, /*measureQuanta=*/4);
        };
        specs.push_back(std::move(spec));
    }
    return ParallelRunner(jobs).runCells(specs);
}

TEST(ScenarioIntegrationTest, TraceIdenticalAcrossJobCounts)
{
    std::vector<validate::TraceRecorder> seq, par;
    runScenarioGrid(/*jobs=*/1, seq);
    runScenarioGrid(/*jobs=*/8, par);
    for (std::size_t i = 0; i < seq.size(); ++i) {
        SCOPED_TRACE(i == 0 ? "migrate=1" : "migrate=0");
        EXPECT_GT(seq[i].eventCount(), 0u);
        if (seq[i].data() == par[i].data())
            continue;
        const validate::TraceDiff d =
            validate::diffTraces(validate::decodeTrace(seq[i].data()),
                                 validate::decodeTrace(par[i].data()));
        ADD_FAILURE() << "jobs=1 vs jobs=8 trace divergence: "
                      << d.describe();
    }
}

/** writeStatsJson minus the host-wall-clock self-profile line. */
std::string
statsJsonStripped(System &sys, const Metrics &m)
{
    std::ostringstream os;
    sys.writeStatsJson(os, m);
    std::string text = os.str();
    const auto at = text.find("\"selfProfile\"");
    if (at != std::string::npos) {
        const auto end = text.find('\n', at);
        text.erase(at, end == std::string::npos ? text.size() - at
                                                : end - at);
    }
    return text;
}

TEST(ScenarioIntegrationTest, TraceAndStatsIdenticalAcrossShards)
{
    // The legacy (shards=0) and sharded kernels are different
    // machines by design; the determinism claim is within the
    // sharded kernel: every worker count produces the same bits.
    const auto runSharded = [](int shards, bool withProbe) {
        SystemConfig cfg = fixtureConfig(/*migrate=*/true);
        cfg.channels = 2;
        cfg.shards = shards;
        System sys(cfg);
        validate::TraceRecorder rec;
        if (withProbe)
            sys.attachProbe(&rec);
        const Metrics m = sys.run(/*warmupQuanta=*/1,
                                  /*measureQuanta=*/4);
        EXPECT_EQ(m.validationViolations, 0u) << m.firstViolation;
        return std::make_pair(rec.data(), statsJsonStripped(sys, m));
    };

    const auto [traceOne, statsOne] = runSharded(1, true);
    const auto [traceTwo, statsTwo] = runSharded(2, true);
    EXPECT_FALSE(traceOne.empty());
    if (traceOne != traceTwo) {
        const validate::TraceDiff d =
            validate::diffTraces(validate::decodeTrace(traceOne),
                                 validate::decodeTrace(traceTwo));
        ADD_FAILURE() << "shards=1 vs shards=2 trace divergence: "
                      << d.describe();
    }
    EXPECT_EQ(statsOne, statsTwo);

    // No probe: shards=2 genuinely runs its lanes on worker threads.
    const auto seq = runSharded(1, false);
    const auto thr = runSharded(2, false);
    EXPECT_FALSE(seq.second.empty());
    EXPECT_EQ(seq.second, thr.second);
}

} // namespace
} // namespace refsched::core
