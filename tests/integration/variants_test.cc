/** @file
 * Integration coverage of system variants: multiple channels, DDR4
 * FGR policies, XOR bank hashing, adaptive refresh, OOO per-bank and
 * replayed traces running end-to-end.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/system.hh"
#include "simcore/logging.hh"
#include "workload/trace_file.hh"
#include "workload/trace_generator.hh"

namespace refsched::core
{
namespace
{

SystemConfig
base(Policy policy)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.tasksPerCore = 2;
    cfg.timeScale = 512;
    cfg.applyPolicy(policy);
    cfg.benchmarks = {"GemsFDTD", "povray", "GemsFDTD", "povray"};
    return cfg;
}

TEST(VariantsTest, MultiChannelSystemRuns)
{
    auto cfg = base(Policy::CoDesign);
    cfg.channels = 2;
    System sys(cfg);
    const auto m = sys.run(4, 8);
    EXPECT_GT(m.harmonicMeanIpc, 0.0);
    // Both channels saw refresh commands.
    EXPECT_GT(sys.controller().channelStats(0).refreshCommands.value(),
              0.0);
    EXPECT_GT(sys.controller().channelStats(1).refreshCommands.value(),
              0.0);
    // Co-design still avoids refreshing banks on both channels.
    EXPECT_LT(m.blockedReadFraction, 0.01);
}

TEST(VariantsTest, MultiChannelBeatsOneChannelOnBandwidth)
{
    auto one = base(Policy::NoRefresh);
    auto two = base(Policy::NoRefresh);
    two.channels = 2;
    System s1(one), s2(two);
    const auto m1 = s1.run(4, 8);
    const auto m2 = s2.run(4, 8);
    // More channels can only help a memory-bound mix.
    EXPECT_GE(m2.harmonicMeanIpc, m1.harmonicMeanIpc * 0.98);
}

TEST(VariantsTest, Ddr4FgrModesRunAndRankCorrectly)
{
    const auto x1 = runOnce(base(Policy::AllBank), RunOptions{4, 8});
    const auto x2 = runOnce(base(Policy::Ddr4x2), RunOptions{4, 8});
    const auto x4 = runOnce(base(Policy::Ddr4x4), RunOptions{4, 8});
    // Section 6.3: finer FGR modes are worse at high density.
    EXPECT_GT(x1.harmonicMeanIpc, x2.harmonicMeanIpc);
    EXPECT_GT(x2.harmonicMeanIpc, x4.harmonicMeanIpc);
    // And they issue proportionally more refresh commands.
    EXPECT_GT(x2.refreshCommands, x1.refreshCommands * 3 / 2);
    EXPECT_GT(x4.refreshCommands, x2.refreshCommands * 3 / 2);
}

TEST(VariantsTest, AdaptiveRefreshRunsCloseToAllBank)
{
    const auto ab = runOnce(base(Policy::AllBank), RunOptions{4, 8});
    const auto ar = runOnce(base(Policy::Adaptive), RunOptions{4, 8});
    const double ratio = ar.harmonicMeanIpc / ab.harmonicMeanIpc;
    EXPECT_GT(ratio, 0.9);
    EXPECT_LT(ratio, 1.1);
}

TEST(VariantsTest, XorBankHashingRunsAndConfinesPartitions)
{
    auto cfg = base(Policy::CoDesign);
    cfg.xorBankHash = true;
    System sys(cfg);
    const auto m = sys.run(4, 8);
    EXPECT_GT(m.harmonicMeanIpc, 0.0);
    EXPECT_LT(m.blockedReadFraction, 0.01);
    // The allocator used the hashed mapping consistently: no pages
    // leaked into excluded banks (no fallbacks at this footprint).
    for (auto *task : sys.tasks()) {
        if (task->fallbackAllocs > 0)
            continue;
        for (std::size_t b = 0; b < task->possibleBanksVector.size();
             ++b) {
            if (!task->possibleBanksVector[b])
                ASSERT_EQ(task->residentPagesPerBank[b], 0u);
        }
    }
}

TEST(VariantsTest, ReplayedTraceDrivesATask)
{
    // Record a synthetic trace, then run a System whose task replays
    // it; determinism means two replays give identical results.
    const auto &prof = workload::profileByName("GemsFDTD");
    workload::SyntheticTraceGenerator gen(prof, 31,
                                          prof.footprintBytes / 512);
    auto entries = workload::recordTrace(gen, 20000);

    auto run = [&entries, &prof] {
        SystemConfig cfg;
        cfg.numCores = 1;
        cfg.tasksPerCore = 1;
        cfg.timeScale = 512;
        cfg.applyPolicy(Policy::PerBank);
        cfg.benchmarks = {"GemsFDTD"};  // placeholder source
        System sys(cfg);
        workload::ReplaySource replay(entries, prof.baseCpi);
        sys.tasks()[0]->source = &replay;
        return sys.run(4, 8);
    };
    const auto a = run();
    const auto b = run();
    EXPECT_GT(a.tasks[0].instructions, 0u);
    EXPECT_EQ(a.tasks[0].instructions, b.tasks[0].instructions);
    EXPECT_EQ(a.dramReads, b.dramReads);
}

TEST(VariantsTest, RigidRefreshStillCorrect)
{
    // maxPostponedRefreshes = 1 disables elastic deferral; the
    // system must still run and refresh everything (it just hurts).
    auto cfg = base(Policy::PerBank);
    cfg.mcParams.maxPostponedRefreshes = 1;
    const auto rigid = runOnce(cfg, RunOptions{4, 8});
    EXPECT_GT(rigid.harmonicMeanIpc, 0.0);
    EXPECT_GT(rigid.refreshCommands, 0u);
}

} // namespace
} // namespace refsched::core
