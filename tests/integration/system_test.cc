/** @file End-to-end System integration tests. */

#include "core/system.hh"

#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hh"
#include "simcore/logging.hh"

namespace refsched::core
{
namespace
{

SystemConfig
miniConfig(Policy policy = Policy::AllBank)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.tasksPerCore = 2;
    cfg.timeScale = 512;
    cfg.applyPolicy(policy);
    cfg.benchmarks = {"mcf", "povray", "GemsFDTD", "h264ref"};
    return cfg;
}

TEST(SystemTest, BuildsAndRunsProducingMetrics)
{
    System sys(miniConfig());
    const auto m = sys.run(4, 8);

    ASSERT_EQ(m.tasks.size(), 4u);
    EXPECT_GT(m.harmonicMeanIpc, 0.0);
    EXPECT_GT(m.avgReadLatencyMemCycles, 0.0);
    EXPECT_GT(m.dramReads, 0u);
    EXPECT_GT(m.refreshCommands, 0u);
    EXPECT_EQ(m.measuredTicks, 8 * sys.config().effectiveQuantum());
    for (const auto &t : m.tasks) {
        EXPECT_GT(t.instructions, 0u) << t.benchmark;
        EXPECT_GT(t.ipc, 0.0) << t.benchmark;
    }
}

TEST(SystemTest, DeterministicAcrossRuns)
{
    System a(miniConfig());
    System b(miniConfig());
    const auto ma = a.run(4, 8);
    const auto mb = b.run(4, 8);
    EXPECT_DOUBLE_EQ(ma.harmonicMeanIpc, mb.harmonicMeanIpc);
    EXPECT_EQ(ma.dramReads, mb.dramReads);
    EXPECT_EQ(ma.dramWrites, mb.dramWrites);
    for (std::size_t i = 0; i < ma.tasks.size(); ++i)
        EXPECT_EQ(ma.tasks[i].instructions, mb.tasks[i].instructions);
}

TEST(SystemTest, SeedChangesTraces)
{
    auto cfg = miniConfig();
    System a(cfg);
    cfg.seed = 999;
    System b(cfg);
    const auto ma = a.run(4, 8);
    const auto mb = b.run(4, 8);
    // Different seeds produce different instruction streams; the
    // per-task progress must differ somewhere.
    bool anyDiffer = false;
    for (std::size_t i = 0; i < ma.tasks.size(); ++i)
        anyDiffer |= ma.tasks[i].instructions != mb.tasks[i].instructions;
    EXPECT_TRUE(anyDiffer);
}

TEST(SystemTest, BaselineSchedulesTasksEqually)
{
    System sys(miniConfig());
    const auto m = sys.run(4, 8);
    for (const auto &t : m.tasks)
        EXPECT_EQ(t.quantaRun, 4u) << t.benchmark;
}

TEST(SystemTest, MeasuredMpkiMatchesClasses)
{
    System sys(miniConfig());
    const auto m = sys.run(4, 8);
    double mcf = 0, povray = 1e9;
    for (const auto &t : m.tasks) {
        if (t.benchmark == "mcf")
            mcf = t.mpki;
        if (t.benchmark == "povray")
            povray = t.mpki;
    }
    EXPECT_GT(mcf, 10.0);   // H class
    EXPECT_LT(povray, 1.5); // L class (some consolidation noise)
}

TEST(SystemTest, PartitioningConfinesResidentPages)
{
    System sys(miniConfig(Policy::CoDesign));
    sys.run(4, 8);
    for (auto *task : sys.tasks()) {
        ASSERT_GT(task->residentPages(), 0u);
        if (task->fallbackAllocs > 0)
            continue;  // section 5.4.1 spill is allowed
        for (std::size_t b = 0; b < task->possibleBanksVector.size();
             ++b) {
            if (!task->possibleBanksVector[b]) {
                EXPECT_EQ(task->residentPagesPerBank[b], 0u)
                    << task->name() << " bank " << b;
            }
        }
    }
}

TEST(SystemTest, SoftPartitionMaskShapes)
{
    auto cfg = miniConfig(Policy::CoDesign);
    System sys(cfg);
    // 1:2 consolidation: each task is allowed 4 banks per rank
    // (section 6.6), mirrored over 2 ranks = 8 global banks.
    for (auto *task : sys.tasks()) {
        EXPECT_EQ(task->allowedBankCount(), 4 * 2)
            << task->name();
    }
    // Every bank-id is excluded by some task on each core, so the
    // refresh-aware scheduler can always find a clean candidate.
    for (int core = 0; core < cfg.numCores; ++core) {
        for (int bankId = 0; bankId < cfg.banksPerRank; ++bankId) {
            bool someoneExcludes = false;
            for (int j = 0; j < cfg.tasksPerCore; ++j) {
                const auto *t =
                    sys.tasks()[static_cast<std::size_t>(
                        j * cfg.numCores + core)];
                if (!t->possibleBanksVector[static_cast<std::size_t>(
                        bankId)]) {
                    someoneExcludes = true;
                }
            }
            EXPECT_TRUE(someoneExcludes)
                << "core " << core << " bank-id " << bankId;
        }
    }
}

TEST(SystemTest, StatsDumpContainsComponentStats)
{
    System sys(miniConfig());
    sys.run(2, 4);
    std::ostringstream os;
    sys.dumpStats(os);
    const auto out = os.str();
    EXPECT_NE(out.find("mc.ch0.reads"), std::string::npos);
    EXPECT_NE(out.find("core0.instrsIssued"), std::string::npos);
    EXPECT_NE(out.find("sched.quantaScheduled"), std::string::npos);
    EXPECT_NE(out.find("caches.l2Misses"), std::string::npos);
}

TEST(SystemTest, RunTwiceIsAnError)
{
    System sys(miniConfig());
    sys.run(1, 2);
    EXPECT_THROW(sys.run(1, 2), PanicError);
}

TEST(SystemTest, RefreshRowCoverageOverMeasuredWindow)
{
    // One full refresh window of measurement: the controller must
    // have refreshed every row of every bank exactly once.
    auto cfg = miniConfig(Policy::PerBank);
    System sys(cfg);
    const auto m = sys.run(16, 16);  // warmup 1 window, measure 1
    const auto dev = cfg.deviceConfig();
    const auto expected = dev.timings.refreshCommandsPerWindow
        * static_cast<std::uint64_t>(dev.org.banksTotal());
    // Elastic postponement can shift a few commands across the
    // measurement boundary (JEDEC allows a backlog of 8).
    EXPECT_GE(m.refreshCommands, expected - 8);
    EXPECT_LE(m.refreshCommands, expected + 8);
}

TEST(SystemTest, MakeConfigBuildsTable2Workloads)
{
    const auto cfg = makeConfig("WL-6", Policy::CoDesign,
                                dram::DensityGb::d16);
    EXPECT_EQ(cfg.benchmarks.size(), 8u);
    EXPECT_EQ(cfg.density, dram::DensityGb::d16);
    EXPECT_EQ(cfg.policy, Policy::CoDesign);
    EXPECT_EQ(cfg.partitioning, Partitioning::Soft);
}

} // namespace
} // namespace refsched::core
