/** @file End-to-end properties of the co-design vs the baselines. */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/system.hh"
#include "simcore/logging.hh"

namespace refsched::core
{
namespace
{

SystemConfig
memIntensive(Policy policy, unsigned timeScale = 512)
{
    SystemConfig cfg;
    cfg.numCores = 2;
    cfg.tasksPerCore = 4;
    cfg.timeScale = timeScale;
    cfg.density = dram::DensityGb::d32;
    cfg.applyPolicy(policy);
    // A medium-intensity homogeneous mix (WL-5 style) where refresh
    // interference is clearly visible.
    cfg.benchmarks.assign(8, "GemsFDTD");
    return cfg;
}

Metrics
run(Policy policy, unsigned timeScale = 512)
{
    System sys(memIntensive(policy, timeScale));
    return sys.run(8, 16);
}

TEST(CoDesignTest, HeadlineOrderingHolds)
{
    // The paper's central result: co-design > per-bank > all-bank
    // on memory-intensive workloads (Fig. 10).
    const auto ab = run(Policy::AllBank);
    const auto pb = run(Policy::PerBank);
    const auto cd = run(Policy::CoDesign);
    const auto nr = run(Policy::NoRefresh);

    EXPECT_GT(pb.harmonicMeanIpc, ab.harmonicMeanIpc);
    EXPECT_GT(cd.harmonicMeanIpc, pb.harmonicMeanIpc);
    EXPECT_GT(nr.harmonicMeanIpc, ab.harmonicMeanIpc);

    // Memory latency improves in the same order (Fig. 11).
    EXPECT_LT(cd.avgReadLatencyMemCycles, ab.avgReadLatencyMemCycles);
}

TEST(CoDesignTest, RefreshBlockingEliminated)
{
    const auto pb = run(Policy::PerBank);
    const auto cd = run(Policy::CoDesign);
    // The whole point (section 5.3): no scheduled task's requests
    // hit the bank under refresh.
    EXPECT_LT(cd.blockedReadFraction, 0.002);
    EXPECT_GT(pb.blockedReadFraction, cd.blockedReadFraction);
}

TEST(CoDesignTest, SchedulerAlwaysFindsCleanTask)
{
    System sys(memIntensive(Policy::CoDesign));
    const auto m = sys.run(8, 16);
    EXPECT_GT(m.cleanPicks, 0u);
    EXPECT_EQ(m.fallbackPicks, 0u);
    EXPECT_EQ(m.bestEffortPicks, 0u);
}

TEST(CoDesignTest, FairnessPreserved)
{
    System sys(memIntensive(Policy::CoDesign));
    const auto m = sys.run(8, 16);
    // Over full rotations, the refresh-aware schedule remains as
    // fair as round-robin: every task ran the same quanta count.
    for (const auto &t : m.tasks)
        EXPECT_EQ(t.quantaRun, m.tasks.front().quantaRun);
    EXPECT_LE(m.vruntimeSpreadQuanta, 1.01);
}

TEST(CoDesignTest, EtaOneDegradesToBaselinePick)
{
    auto cfg = memIntensive(Policy::CoDesign);
    cfg.etaThresh = 1;
    cfg.bestEffort = false;
    System sys(cfg);
    const auto m = sys.run(8, 16);
    // With the fairness valve fully closed, refresh-awareness is
    // disabled and scheduled tasks do hit refreshing banks again.
    EXPECT_GT(m.blockedReadFraction, 0.0);
}

TEST(CoDesignTest, RankingStableAcrossTimeScales)
{
    // The ratio-preserving scaling argument, verified empirically:
    // the policy ranking must be identical at two different scales.
    for (unsigned scale : {256u, 512u}) {
        const auto ab = run(Policy::AllBank, scale);
        const auto pb = run(Policy::PerBank, scale);
        const auto cd = run(Policy::CoDesign, scale);
        EXPECT_GT(pb.harmonicMeanIpc, ab.harmonicMeanIpc)
            << "scale " << scale;
        EXPECT_GT(cd.harmonicMeanIpc, pb.harmonicMeanIpc)
            << "scale " << scale;
    }
}

TEST(CoDesignTest, LowRetentionAmplifiesBenefit)
{
    // Section 6.4: at 32 ms retention, refresh overheads double and
    // the co-design's relative win over all-bank grows.
    auto mk = [](Policy p, Tick tREFW) {
        auto cfg = memIntensive(p);
        cfg.tREFW = tREFW;
        System sys(cfg);
        return sys.run(8, 16);
    };
    const auto ab64 = mk(Policy::AllBank, milliseconds(64.0));
    const auto cd64 = mk(Policy::CoDesign, milliseconds(64.0));
    const auto ab32 = mk(Policy::AllBank, milliseconds(32.0));
    const auto cd32 = mk(Policy::CoDesign, milliseconds(32.0));

    const double gain64 = cd64.speedupOver(ab64);
    const double gain32 = cd32.speedupOver(ab32);
    EXPECT_GT(gain32, gain64);
}

TEST(CoDesignTest, HigherDensityAmplifiesRefreshCost)
{
    // Fig. 3's trend: all-bank degradation grows with density.
    auto mk = [](Policy p, dram::DensityGb d) {
        auto cfg = memIntensive(p);
        cfg.density = d;
        System sys(cfg);
        return sys.run(8, 16);
    };
    const double deg16 =
        mk(Policy::NoRefresh, dram::DensityGb::d16).harmonicMeanIpc
        / mk(Policy::AllBank, dram::DensityGb::d16).harmonicMeanIpc;
    const double deg32 =
        mk(Policy::NoRefresh, dram::DensityGb::d32).harmonicMeanIpc
        / mk(Policy::AllBank, dram::DensityGb::d32).harmonicMeanIpc;
    EXPECT_GT(deg32, deg16);
}

TEST(CoDesignTest, OooPerBankBeatsAllBank)
{
    const auto ab = run(Policy::AllBank);
    const auto ooo = run(Policy::PerBankOoo);
    EXPECT_GT(ooo.harmonicMeanIpc, ab.harmonicMeanIpc);
}

TEST(CoDesignTest, HardPartitioningRunsAndConfines)
{
    auto cfg = memIntensive(Policy::CoDesign);
    cfg.partitioning = Partitioning::Hard;
    System sys(cfg);
    const auto m = sys.run(8, 16);
    EXPECT_GT(m.harmonicMeanIpc, 0.0);
    // Hard partitions: 8 banks / 4 tasks = 2 bank-ids per task,
    // mirrored over 2 ranks.
    for (auto *t : sys.tasks())
        EXPECT_EQ(t->allowedBankCount(), 4);
}

} // namespace
} // namespace refsched::core
