/** @file Tests for the report/table rendering helpers. */

#include "core/report.hh"

#include <gtest/gtest.h>

#include <sstream>

#include "simcore/logging.hh"

namespace refsched::core
{
namespace
{

TEST(TableTest, AlignsColumns)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| name   | value |"), std::string::npos);
    EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
    EXPECT_NE(out.find("|--------|-------|"), std::string::npos);
}

TEST(TableTest, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, RowWidthMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), PanicError);
}

TEST(TableTest, RowCount)
{
    Table t({"x"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rows(), 2u);
}

TEST(ReportTest, PctImprovement)
{
    EXPECT_EQ(pctImprovement(1.162), "+16.2%");
    EXPECT_EQ(pctImprovement(1.0), "+0.0%");
    EXPECT_EQ(pctImprovement(0.95), "-5.0%");
}

TEST(ReportTest, FmtPrecision)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(3.14159), "3.142");
    EXPECT_EQ(fmt(2.0, 0), "2");
}

} // namespace
} // namespace refsched::core
