/**
 * @file
 * Determinism tests for the work-stealing experiment runner: the
 * same cell grid must yield bit-identical Metrics for any worker
 * count, in submission order.
 */

#include "core/parallel_runner.hh"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/experiment.hh"

namespace refsched::core
{
namespace
{

/** Every field of TaskMetrics, compared exactly. */
void
expectTaskMetricsEq(const TaskMetrics &a, const TaskMetrics &b)
{
    EXPECT_EQ(a.pid, b.pid);
    EXPECT_EQ(a.benchmark, b.benchmark);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.mpki, b.mpki);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.pageFaults, b.pageFaults);
    EXPECT_EQ(a.fallbackAllocs, b.fallbackAllocs);
    EXPECT_EQ(a.residentPages, b.residentPages);
    EXPECT_EQ(a.quantaRun, b.quantaRun);
}

/** Every field of Metrics, compared exactly (no tolerances). */
void
expectMetricsEq(const Metrics &a, const Metrics &b)
{
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    for (std::size_t t = 0; t < a.tasks.size(); ++t)
        expectTaskMetricsEq(a.tasks[t], b.tasks[t]);
    EXPECT_EQ(a.harmonicMeanIpc, b.harmonicMeanIpc);
    EXPECT_EQ(a.weightedIpcSum, b.weightedIpcSum);
    EXPECT_EQ(a.avgReadLatencyMemCycles, b.avgReadLatencyMemCycles);
    EXPECT_EQ(a.rowHitRate, b.rowHitRate);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
    EXPECT_EQ(a.refreshCommands, b.refreshCommands);
    EXPECT_EQ(a.readsBlockedByRefresh, b.readsBlockedByRefresh);
    EXPECT_EQ(a.blockedReadFraction, b.blockedReadFraction);
    EXPECT_EQ(a.quantaScheduled, b.quantaScheduled);
    EXPECT_EQ(a.cleanPicks, b.cleanPicks);
    EXPECT_EQ(a.deferredPicks, b.deferredPicks);
    EXPECT_EQ(a.fallbackPicks, b.fallbackPicks);
    EXPECT_EQ(a.bestEffortPicks, b.bestEffortPicks);
    EXPECT_EQ(a.vruntimeSpreadQuanta, b.vruntimeSpreadQuanta);
    EXPECT_EQ(a.energy.activatePj, b.energy.activatePj);
    EXPECT_EQ(a.energy.readWritePj, b.energy.readWritePj);
    EXPECT_EQ(a.energy.refreshPj, b.energy.refreshPj);
    EXPECT_EQ(a.energy.backgroundPj, b.energy.backgroundPj);
    EXPECT_EQ(a.energyPerInstructionPj, b.energyPerInstructionPj);
    EXPECT_EQ(a.measuredTicks, b.measuredTicks);
}

/** A small but non-trivial grid (mixed policies and workloads). */
std::vector<CellSpec>
testGrid()
{
    RunOptions run;
    run.warmupQuanta = 1;
    run.measureQuanta = 2;

    std::vector<CellSpec> cells;
    for (const auto *wl : {"WL-1", "WL-5"}) {
        for (auto policy :
             {Policy::AllBank, Policy::PerBank, Policy::CoDesign}) {
            CellSpec cell;
            cell.cfg = makeConfig(wl, policy, dram::DensityGb::d32,
                                  milliseconds(64.0), 2, 4, 2048);
            cell.opts = run;
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

TEST(ParallelRunnerTest, JobsDefaultsToAtLeastOne)
{
    EXPECT_GE(ParallelRunner().jobs(), 1);
    EXPECT_GE(ParallelRunner(0).jobs(), 1);
    EXPECT_GE(ParallelRunner(-3).jobs(), 1);
    EXPECT_EQ(ParallelRunner(7).jobs(), 7);
}

TEST(ParallelRunnerTest, ResultsIdenticalAcrossThreadCounts)
{
    const auto cells = testGrid();
    const auto seq = ParallelRunner(1).runCells(cells);
    const auto two = ParallelRunner(2).runCells(cells);
    const auto eight = ParallelRunner(8).runCells(cells);

    ASSERT_EQ(seq.size(), cells.size());
    ASSERT_EQ(two.size(), cells.size());
    ASSERT_EQ(eight.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        expectMetricsEq(seq[i], two[i]);
        expectMetricsEq(seq[i], eight[i]);
    }
}

TEST(ParallelRunnerTest, ResultsMatchDirectRunOnce)
{
    const auto cells = testGrid();
    const auto results = ParallelRunner(4).runCells(cells);
    // Spot-check submission-order mapping against direct runs.
    expectMetricsEq(results.front(),
                    runOnce(cells.front().cfg, cells.front().opts));
    expectMetricsEq(results.back(),
                    runOnce(cells.back().cfg, cells.back().opts));
}

TEST(ParallelRunnerTest, CustomThunkCellsRun)
{
    std::vector<CellSpec> cells(3);
    for (int i = 0; i < 3; ++i) {
        cells[static_cast<std::size_t>(i)].custom = [i] {
            Metrics m;
            m.harmonicMeanIpc = 1.0 + i;
            return m;
        };
    }
    const auto results = ParallelRunner(2).runCells(cells);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].harmonicMeanIpc, 1.0);
    EXPECT_EQ(results[1].harmonicMeanIpc, 2.0);
    EXPECT_EQ(results[2].harmonicMeanIpc, 3.0);
}

TEST(ParallelRunnerTest, RunIndexedCoversEveryIndexOnce)
{
    constexpr std::size_t kN = 97;
    std::vector<std::atomic<int>> hits(kN);
    ParallelRunner(4).runIndexed(
        kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelRunnerTest, RunIndexedHandlesEmptyRange)
{
    int calls = 0;
    ParallelRunner(4).runIndexed(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    EXPECT_TRUE(ParallelRunner(4).runCells({}).empty());
}

TEST(ParallelRunnerTest, WorkerExceptionPropagates)
{
    EXPECT_THROW(ParallelRunner(2).runIndexed(8,
                                              [](std::size_t i) {
                                                  if (i == 5) {
                                                      throw std::
                                                          runtime_error(
                                                              "boom");
                                                  }
                                              }),
                 std::runtime_error);
}

} // namespace
} // namespace refsched::core
