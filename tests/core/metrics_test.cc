/** @file Tests for the Metrics value type. */

#include "core/metrics.hh"

#include <gtest/gtest.h>

namespace refsched::core
{
namespace
{

TEST(MetricsTest, SpeedupOverBaseline)
{
    Metrics base, fast;
    base.harmonicMeanIpc = 0.5;
    fast.harmonicMeanIpc = 0.6;
    EXPECT_DOUBLE_EQ(fast.speedupOver(base), 1.2);
    EXPECT_DOUBLE_EQ(base.speedupOver(fast), 0.5 / 0.6);

    Metrics zero;
    EXPECT_DOUBLE_EQ(fast.speedupOver(zero), 0.0);
}

TEST(MetricsTest, AvgMpki)
{
    Metrics m;
    EXPECT_DOUBLE_EQ(m.avgMpki(), 0.0);
    TaskMetrics a, b;
    a.mpki = 10.0;
    b.mpki = 20.0;
    m.tasks = {a, b};
    EXPECT_DOUBLE_EQ(m.avgMpki(), 15.0);
}

TEST(MetricsTest, SummaryMentionsKeyNumbers)
{
    Metrics m;
    m.harmonicMeanIpc = 0.75;
    m.avgReadLatencyMemCycles = 42.0;
    m.refreshCommands = 128;
    const auto s = m.summary();
    EXPECT_NE(s.find("0.75"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("128"), std::string::npos);
}

TEST(MetricsTest, EnergyDefaultsToZero)
{
    Metrics m;
    EXPECT_DOUBLE_EQ(m.energy.totalPj(), 0.0);
    EXPECT_DOUBLE_EQ(m.energy.refreshShare(), 0.0);
    EXPECT_DOUBLE_EQ(m.energyPerInstructionPj, 0.0);
}

} // namespace
} // namespace refsched::core
