/** @file Tests for SystemConfig policy bundles and derived values. */

#include "core/system_config.hh"

#include <gtest/gtest.h>

#include "simcore/logging.hh"

namespace refsched::core
{
namespace
{

TEST(SystemConfigTest, PolicyBundles)
{
    SystemConfig cfg;

    cfg.applyPolicy(Policy::AllBank);
    EXPECT_EQ(cfg.refreshPolicy(), dram::RefreshPolicy::AllBank);
    EXPECT_EQ(cfg.fgrMode(), dram::FgrMode::x1);
    EXPECT_EQ(cfg.partitioning, Partitioning::None);
    EXPECT_FALSE(cfg.refreshAwareScheduling);

    cfg.applyPolicy(Policy::PerBank);
    EXPECT_EQ(cfg.refreshPolicy(),
              dram::RefreshPolicy::PerBankRoundRobin);

    cfg.applyPolicy(Policy::PerBankOoo);
    EXPECT_EQ(cfg.refreshPolicy(), dram::RefreshPolicy::OooPerBank);

    cfg.applyPolicy(Policy::Ddr4x2);
    EXPECT_EQ(cfg.refreshPolicy(), dram::RefreshPolicy::AllBank);
    EXPECT_EQ(cfg.fgrMode(), dram::FgrMode::x2);

    cfg.applyPolicy(Policy::Ddr4x4);
    EXPECT_EQ(cfg.fgrMode(), dram::FgrMode::x4);

    cfg.applyPolicy(Policy::Adaptive);
    EXPECT_EQ(cfg.refreshPolicy(), dram::RefreshPolicy::Adaptive);

    cfg.applyPolicy(Policy::NoRefresh);
    EXPECT_EQ(cfg.refreshPolicy(), dram::RefreshPolicy::NoRefresh);

    cfg.applyPolicy(Policy::CoDesign);
    EXPECT_EQ(cfg.refreshPolicy(),
              dram::RefreshPolicy::SequentialPerBank);
    EXPECT_EQ(cfg.partitioning, Partitioning::Soft);
    EXPECT_TRUE(cfg.refreshAwareScheduling);
}

TEST(SystemConfigTest, AutoQuantumMatchesRefreshSlot)
{
    SystemConfig cfg;
    cfg.timeScale = 1;
    cfg.tREFW = milliseconds(64.0);
    // 64 ms / 16 banks = 4 ms (section 5.1).
    EXPECT_EQ(cfg.effectiveQuantum(), milliseconds(4.0));

    cfg.tREFW = milliseconds(32.0);
    // 32 ms / 16 banks = 2 ms (section 6.4, footnote 12).
    EXPECT_EQ(cfg.effectiveQuantum(), milliseconds(2.0));

    cfg.quantum = milliseconds(1.0);
    EXPECT_EQ(cfg.effectiveQuantum(), milliseconds(1.0));
}

TEST(SystemConfigTest, AutoQuantumScalesWithTimeScale)
{
    SystemConfig cfg;
    cfg.tREFW = milliseconds(64.0);
    cfg.timeScale = 64;
    EXPECT_EQ(cfg.effectiveQuantum(), milliseconds(4.0) / 64);
}

TEST(SystemConfigTest, BanksPerTaskRule)
{
    SystemConfig cfg;
    cfg.tasksPerCore = 4;
    EXPECT_EQ(cfg.effectiveBanksPerTask(), 6);  // section 6.2
    cfg.tasksPerCore = 2;
    EXPECT_EQ(cfg.effectiveBanksPerTask(), 4);  // section 6.6
    cfg.banksPerTaskPerRank = 7;
    EXPECT_EQ(cfg.effectiveBanksPerTask(), 7);  // explicit override
}

TEST(SystemConfigTest, DeviceConfigPicksUpTopology)
{
    SystemConfig cfg;
    cfg.channels = 2;
    cfg.density = dram::DensityGb::d16;
    cfg.timeScale = 64;
    const auto dev = cfg.deviceConfig();
    EXPECT_EQ(dev.org.channels, 2);
    EXPECT_EQ(dev.org.rowsPerBank, 256u * 1024u / 64u);
    EXPECT_EQ(dev.timings.tRFCab, nanoseconds(530.0));
}

TEST(SystemConfigTest, CheckCatchesInconsistencies)
{
    SystemConfig cfg;
    cfg.benchmarks = {"mcf"};  // 1 != 8 tasks
    EXPECT_THROW(cfg.check(), FatalError);

    SystemConfig cfg2;
    cfg2.numCores = 0;
    EXPECT_THROW(cfg2.check(), FatalError);

    SystemConfig cfg3;
    cfg3.applyPolicy(Policy::PerBank);
    cfg3.refreshAwareScheduling = true;  // needs CoDesign schedule
    EXPECT_THROW(cfg3.check(), FatalError);

    SystemConfig cfg4;
    cfg4.applyPolicy(Policy::CoDesign);
    cfg4.etaThresh = 0;
    EXPECT_THROW(cfg4.check(), FatalError);
}

TEST(SystemConfigTest, PolicyNames)
{
    EXPECT_EQ(toString(Policy::AllBank), "all-bank");
    EXPECT_EQ(toString(Policy::CoDesign), "co-design");
    EXPECT_EQ(toString(Policy::Ddr4x4), "ddr4-4x");
}

} // namespace
} // namespace refsched::core
