/** @file Tests for the bank/rank timing state machines. */

#include "dram/bank.hh"

#include <gtest/gtest.h>

#include "simcore/logging.hh"

namespace refsched::dram
{
namespace
{

DramTimings
timings()
{
    return makeDdr3_1600(DensityGb::d32, milliseconds(64.0), 64).timings;
}

DramOrganization
org()
{
    return makeDdr3_1600(DensityGb::d32, milliseconds(64.0), 64).org;
}

TEST(BankTest, ActivateOpensRowAndSetsConstraints)
{
    Bank b;
    const auto t = timings();
    b.activate(1000, 42, t);
    EXPECT_TRUE(b.isOpen());
    EXPECT_EQ(b.openRow, 42);
    EXPECT_EQ(b.rdAllowedAt, 1000 + t.tRCD);
    EXPECT_EQ(b.wrAllowedAt, 1000 + t.tRCD);
    EXPECT_EQ(b.preAllowedAt, 1000 + t.tRAS);
    EXPECT_EQ(b.actAllowedAt, 1000 + t.tRC);
    EXPECT_EQ(b.activations, 1u);
}

TEST(BankTest, ReadReturnsDataTime)
{
    Bank b;
    const auto t = timings();
    b.activate(0, 7, t);
    const Tick cas = t.tRCD;
    EXPECT_EQ(b.read(cas, t), cas + t.tCL + t.tBURST);
    // Read-to-precharge pushed out by tRTP.
    EXPECT_GE(b.preAllowedAt, cas + t.tRTP);
}

TEST(BankTest, WriteSetsRecoveryConstraints)
{
    Bank b;
    const auto t = timings();
    b.activate(0, 7, t);
    const Tick cas = t.tRCD;
    const Tick done = b.write(cas, t);
    EXPECT_EQ(done, cas + t.tCWL + t.tBURST);
    EXPECT_GE(b.preAllowedAt, done + t.tWR);
    EXPECT_GE(b.rdAllowedAt, done + t.tWTR);
}

TEST(BankTest, PrechargeClosesRow)
{
    Bank b;
    const auto t = timings();
    b.activate(0, 7, t);
    b.precharge(t.tRAS, t);
    EXPECT_FALSE(b.isOpen());
    EXPECT_GE(b.actAllowedAt, t.tRAS + t.tRP);
}

TEST(BankTest, ProtocolViolationsPanic)
{
    const auto t = timings();
    {
        Bank b;
        b.activate(0, 1, t);
        EXPECT_THROW(b.activate(t.tRC, 2, t), PanicError);  // still open
    }
    {
        Bank b;
        EXPECT_THROW(b.precharge(0, t), PanicError);  // closed
    }
    {
        Bank b;
        EXPECT_THROW(b.read(0, t), PanicError);  // closed
    }
    {
        Bank b;
        b.activate(0, 1, t);
        EXPECT_THROW(b.read(1, t), PanicError);  // violates tRCD
    }
    {
        Bank b;
        b.activate(0, 1, t);
        EXPECT_THROW(b.precharge(1, t), PanicError);  // violates tRAS
    }
}

TEST(BankTest, RefreshBlocksBank)
{
    Bank b;
    const auto t = timings();
    b.startRefresh(100, t.tRFCpb);
    EXPECT_TRUE(b.underRefresh(100));
    EXPECT_TRUE(b.underRefresh(100 + t.tRFCpb - 1));
    EXPECT_FALSE(b.underRefresh(100 + t.tRFCpb));
    EXPECT_GE(b.actAllowedAt, 100 + t.tRFCpb);
    EXPECT_EQ(b.refreshes, 1u);
}

TEST(BankTest, RefreshRequiresClosedIdleBank)
{
    const auto t = timings();
    {
        Bank b;
        b.activate(0, 1, t);
        EXPECT_THROW(b.startRefresh(t.tRAS, t.tRFCpb), PanicError);
    }
    {
        Bank b;
        b.startRefresh(0, t.tRFCpb);
        EXPECT_THROW(b.startRefresh(1, t.tRFCpb), PanicError);
    }
}

TEST(RankTest, TrrdSpacesActivates)
{
    Rank r(org());
    const auto t = timings();
    r.noteActivate(1000, t);
    EXPECT_EQ(r.actAllowedAt, 1000 + t.tRRD);
}

TEST(RankTest, FawLimitsFourActivates)
{
    Rank r(org());
    const auto t = timings();
    // Four back-to-back ACTs separated by tRRD.
    Tick when = 0;
    for (int i = 0; i < 4; ++i) {
        EXPECT_FALSE(r.fawBlocked(when, t));
        r.noteActivate(when, t);
        when += t.tRRD;
    }
    // A fifth within tFAW of the first is blocked.
    EXPECT_TRUE(r.fawBlocked(when, t));
    EXPECT_FALSE(r.fawBlocked(t.tFAW, t));
}

TEST(RankTest, AllBanksIdleTracksOpenAndRefreshing)
{
    Rank r(org());
    const auto t = timings();
    EXPECT_TRUE(r.allBanksIdle(0));
    r.banks[3].activate(0, 5, t);
    EXPECT_FALSE(r.allBanksIdle(1));
    r.banks[3].precharge(t.tRAS, t);
    EXPECT_TRUE(r.allBanksIdle(t.tRAS));
    r.banks[2].startRefresh(t.tRAS, t.tRFCpb);
    EXPECT_FALSE(r.allBanksIdle(t.tRAS + 1));
}

TEST(RankTest, AllBankRefreshBlocksEveryBank)
{
    Rank r(org());
    const auto t = timings();
    r.startAllBankRefresh(500, t.tRFCab);
    EXPECT_TRUE(r.underRefresh(500 + t.tRFCab - 1));
    EXPECT_FALSE(r.underRefresh(500 + t.tRFCab));
    for (const auto &b : r.banks) {
        EXPECT_TRUE(b.underRefresh(500 + 1));
        EXPECT_GE(b.actAllowedAt, 500 + t.tRFCab);
    }
    EXPECT_EQ(r.allBankRefreshes, 1u);
}

TEST(RankTest, AllBankRefreshWithOpenBankPanics)
{
    Rank r(org());
    const auto t = timings();
    r.banks[0].activate(0, 1, t);
    EXPECT_THROW(r.startAllBankRefresh(10, t.tRFCab), PanicError);
}

} // namespace
} // namespace refsched::dram
