/** @file Tests for DRAM energy accounting. */

#include "dram/energy.hh"

#include <gtest/gtest.h>

#include "core/system.hh"

namespace refsched::dram
{
namespace
{

TEST(EnergyModelTest, EventAccumulation)
{
    EnergyParams p;
    p.actPrePj = 100.0;
    p.readPj = 10.0;
    p.writePj = 20.0;
    p.refreshRowPj = 1.0;
    EnergyModel m(p, 2);

    m.noteActivate();
    m.noteActivate();
    m.noteRead();
    m.noteWrite();
    m.noteRefresh(64);

    EXPECT_DOUBLE_EQ(m.activatePj(), 200.0);
    EXPECT_DOUBLE_EQ(m.readWritePj(), 30.0);
    EXPECT_DOUBLE_EQ(m.refreshPj(), 64.0);

    m.reset();
    EXPECT_DOUBLE_EQ(m.activatePj(), 0.0);
}

TEST(EnergyModelTest, BackgroundScalesWithTimeAndRanks)
{
    EnergyParams p;
    p.backgroundMwPerRank = 100.0;
    EnergyModel one(p, 1);
    EnergyModel two(p, 2);
    // 100 mW over 1 us = 100 nJ = 1e5 pJ.
    EXPECT_DOUBLE_EQ(one.backgroundPj(microseconds(1.0)), 1e5);
    EXPECT_DOUBLE_EQ(two.backgroundPj(microseconds(1.0)), 2e5);
    EXPECT_DOUBLE_EQ(one.backgroundPj(0), 0.0);
}

TEST(EnergyBreakdownTest, TotalsAndShares)
{
    EnergyBreakdown b;
    b.activatePj = 10.0;
    b.readWritePj = 20.0;
    b.refreshPj = 30.0;
    b.backgroundPj = 40.0;
    EXPECT_DOUBLE_EQ(b.totalPj(), 100.0);
    EXPECT_DOUBLE_EQ(b.refreshShare(), 0.3);
    EXPECT_FALSE(b.summary().empty());

    EnergyBreakdown empty;
    EXPECT_DOUBLE_EQ(empty.refreshShare(), 0.0);
}

core::Metrics
runPolicy(core::Policy policy)
{
    core::SystemConfig cfg;
    cfg.numCores = 2;
    cfg.tasksPerCore = 2;
    cfg.timeScale = 512;
    cfg.applyPolicy(policy);
    cfg.benchmarks = {"GemsFDTD", "GemsFDTD", "GemsFDTD", "GemsFDTD"};
    core::System sys(cfg);
    return sys.run(8, 16);
}

TEST(EnergyIntegrationTest, RefreshEnergyMatchesRowsRefreshed)
{
    // Refresh pJ must equal refreshRowPj * rows actually refreshed,
    // and be (near-)identical across refreshing policies.
    const auto ab = runPolicy(core::Policy::AllBank);
    const auto pb = runPolicy(core::Policy::PerBank);
    const auto nr = runPolicy(core::Policy::NoRefresh);

    EXPECT_GT(ab.energy.refreshPj, 0.0);
    EXPECT_DOUBLE_EQ(nr.energy.refreshPj, 0.0);
    // Same measured window, same row-coverage obligation: within a
    // couple of boundary commands of each other.
    EXPECT_NEAR(ab.energy.refreshPj, pb.energy.refreshPj,
                ab.energy.refreshPj * 0.05);
}

TEST(EnergyIntegrationTest, EnergyPerInstructionImprovesWithCoDesign)
{
    const auto ab = runPolicy(core::Policy::AllBank);
    const auto cd = runPolicy(core::Policy::CoDesign);
    EXPECT_GT(ab.energyPerInstructionPj, 0.0);
    // More instructions in the same window, nearly equal energy.
    EXPECT_LT(cd.energyPerInstructionPj, ab.energyPerInstructionPj);
}

TEST(EnergyIntegrationTest, BackgroundDominatesIdleSystems)
{
    core::SystemConfig cfg;
    cfg.numCores = 1;
    cfg.tasksPerCore = 1;
    cfg.timeScale = 512;
    cfg.applyPolicy(core::Policy::AllBank);
    cfg.benchmarks = {"povray"};  // nearly cache-resident
    core::System sys(cfg);
    const auto m = sys.run(4, 8);
    EXPECT_GT(m.energy.backgroundPj, m.energy.activatePj);
}

} // namespace
} // namespace refsched::dram
