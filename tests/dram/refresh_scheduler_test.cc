/** @file Tests for the refresh scheduling policies.
 *
 * The central invariant: every policy refreshes every row of every
 * bank exactly once per tREFW window, no matter what the controller
 * state looks like.
 */

#include "dram/refresh_scheduler.hh"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "simcore/logging.hh"
#include "simcore/rng.hh"

namespace refsched::dram
{
namespace
{

/** A controllable McRefreshView for driving the policies. */
class FakeView : public McRefreshView
{
  public:
    int
    queuedToBank(int channel, int rank, int bank) const override
    {
        (void)channel;
        auto it = queued.find({rank, bank});
        return it == queued.end() ? 0 : it->second;
    }

    double channelUtilization(int) const override { return util; }

    std::map<std::pair<int, int>, int> queued;
    double util = 0.0;
};

DramDeviceConfig
cfg(unsigned timeScale = 64)
{
    return makeDdr3_1600(DensityGb::d32, milliseconds(64.0), timeScale);
}

/**
 * Pop commands from @p sched, tallying refreshed rows per bank,
 * until every bank reached @p targetRows (cap guards runaways).
 */
std::vector<std::uint64_t>
popUntilCovered(RefreshScheduler &sched, const DramDeviceConfig &dev,
                const McRefreshView &view,
                std::vector<std::uint64_t> rows,
                std::uint64_t targetRows)
{
    const std::uint64_t cap = 64 * dev.timings.refreshCommandsPerWindow
        * static_cast<std::uint64_t>(dev.org.banksTotal());
    std::uint64_t pops = 0;
    auto allCovered = [&] {
        for (const auto r : rows)
            if (r < targetRows)
                return false;
        return true;
    };
    while (!allCovered() && pops++ < cap) {
        const auto cmd = sched.pop(0, view);
        if (cmd.isAllBank()) {
            for (int b = 0; b < dev.org.banksPerRank; ++b) {
                rows[static_cast<std::size_t>(
                    cmd.rank * dev.org.banksPerRank + b)] += cmd.rows;
            }
        } else {
            rows[static_cast<std::size_t>(
                cmd.rank * dev.org.banksPerRank + cmd.bank)] += cmd.rows;
        }
    }
    return rows;
}

/** Convenience wrapper: tally one window's worth of coverage. */
std::vector<std::uint64_t>
runOneWindow(RefreshScheduler &sched, const DramDeviceConfig &dev,
             const McRefreshView &view)
{
    std::vector<std::uint64_t> rows(
        static_cast<std::size_t>(dev.org.banksTotal()), 0);
    return popUntilCovered(sched, dev, view, std::move(rows),
                           dev.org.rowsPerBank);
}

class CoveragePolicyTest
    : public ::testing::TestWithParam<RefreshPolicy>
{
};

TEST_P(CoveragePolicyTest, EveryBankFullyRefreshedEachWindow)
{
    const auto dev = cfg();
    auto sched = makeRefreshScheduler(GetParam(), dev);
    FakeView view;

    // Three windows of coverage, tallied cumulatively: when the last
    // bank reaches w*rowsPerBank, every bank must sit at EXACTLY
    // w*rowsPerBank (no over- or under-refresh), and the schedule
    // must not have run past the window (plus one interval's slack).
    std::vector<std::uint64_t> rows(
        static_cast<std::size_t>(dev.org.banksTotal()), 0);
    for (std::uint64_t window = 1; window <= 3; ++window) {
        rows = popUntilCovered(*sched, dev, view, std::move(rows),
                               window * dev.org.rowsPerBank);
        for (std::size_t b = 0; b < rows.size(); ++b) {
            EXPECT_EQ(rows[b], window * dev.org.rowsPerBank)
                << toString(GetParam()) << " bank " << b << " window "
                << window;
        }
        EXPECT_LE(sched->nextDue(0),
                  window * dev.timings.tREFW + dev.timings.tREFIab)
            << toString(GetParam());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllRefreshingPolicies, CoveragePolicyTest,
    ::testing::Values(RefreshPolicy::AllBank,
                      RefreshPolicy::PerBankRoundRobin,
                      RefreshPolicy::SequentialPerBank,
                      RefreshPolicy::OooPerBank,
                      RefreshPolicy::Adaptive));

TEST(NoRefreshTest, NeverDue)
{
    const auto dev = cfg();
    auto sched = makeRefreshScheduler(RefreshPolicy::NoRefresh, dev);
    EXPECT_EQ(sched->nextDue(0), kMaxTick);
    FakeView view;
    EXPECT_THROW(sched->pop(0, view), PanicError);
}

TEST(AllBankTest, RanksStaggered)
{
    const auto dev = cfg();
    AllBankRefresh sched(dev);
    FakeView view;

    EXPECT_EQ(sched.nextDue(0), 0u);
    const auto first = sched.pop(0, view);
    EXPECT_TRUE(first.isAllBank());
    EXPECT_EQ(first.rank, 0);
    EXPECT_EQ(first.tRFC, dev.timings.tRFCab);

    EXPECT_EQ(sched.nextDue(0), dev.timings.tREFIab / 2);
    const auto second = sched.pop(0, view);
    EXPECT_EQ(second.rank, 1);

    // Each rank's own cadence is tREFI.
    EXPECT_EQ(sched.nextDue(0), dev.timings.tREFIab);
    EXPECT_EQ(sched.pop(0, view).rank, 0);
}

TEST(PerBankRoundRobinTest, RotatesOverAllBanks)
{
    const auto dev = cfg();
    PerBankRoundRobin sched(dev);
    FakeView view;
    const Tick tREFIpb =
        dev.timings.tREFIpb(dev.org.banksTotal());

    for (int i = 0; i < 2 * dev.org.banksTotal(); ++i) {
        // The cadence re-anchors at every tREFI_ab boundary so the
        // truncation of tREFI_ab / banksTotal cannot accumulate
        // across windows (the pre-fix `i * tREFIpb` drifted early).
        const int bpc = dev.org.banksTotal();
        const Tick due =
            static_cast<Tick>(i / bpc) * dev.timings.tREFIab
            + static_cast<Tick>(i % bpc) * tREFIpb;
        EXPECT_EQ(sched.nextDue(0), due);
        const auto cmd = sched.pop(0, view);
        EXPECT_FALSE(cmd.isAllBank());
        const int expected = i % dev.org.banksTotal();
        EXPECT_EQ(cmd.rank, expected / dev.org.banksPerRank);
        EXPECT_EQ(cmd.bank, expected % dev.org.banksPerRank);
        EXPECT_EQ(cmd.tRFC, dev.timings.tRFCpb);
    }
}

TEST(SequentialPerBankTest, RefreshesOneBankToCompletionFirst)
{
    const auto dev = cfg();
    SequentialPerBank sched(dev);
    FakeView view;

    const auto cmdsPerBank = dev.org.rowsPerBank
        / dev.timings.rowsPerRefresh;

    // Algorithm 1: the first cmdsPerBank commands all hit (rank 0,
    // bank 0); the next batch moves to bank 1.
    for (std::uint64_t i = 0; i < cmdsPerBank; ++i) {
        const auto cmd = sched.pop(0, view);
        ASSERT_EQ(cmd.rank, 0);
        ASSERT_EQ(cmd.bank, 0);
    }
    const auto next = sched.pop(0, view);
    EXPECT_EQ(next.rank, 0);
    EXPECT_EQ(next.bank, 1);
}

TEST(SequentialPerBankTest, RankAdvancesAfterLastBank)
{
    const auto dev = cfg();
    SequentialPerBank sched(dev);
    FakeView view;
    const auto cmdsPerBank =
        dev.org.rowsPerBank / dev.timings.rowsPerRefresh;

    // Skip through rank 0 entirely.
    for (std::uint64_t i = 0;
         i < cmdsPerBank * static_cast<std::uint64_t>(
                 dev.org.banksPerRank);
         ++i) {
        sched.pop(0, view);
    }
    const auto cmd = sched.pop(0, view);
    EXPECT_EQ(cmd.rank, 1);
    EXPECT_EQ(cmd.bank, 0);
}

TEST(SequentialPerBankTest, SlotLengthIsWindowOverBanks)
{
    const auto dev = cfg();
    SequentialPerBank sched(dev);
    EXPECT_EQ(sched.slotLength(),
              dev.timings.tREFW
                  / static_cast<Tick>(dev.org.banksTotal()));
}

TEST(SequentialPerBankTest, AnalyticSlotMatchesActualCommands)
{
    // The co-design contract: banksUnderRefreshAt(t) must contain
    // the bank the command stream actually refreshes at time t.
    const auto dev = cfg();
    SequentialPerBank sched(dev);
    EXPECT_FALSE(sched.rankParallel());
    FakeView view;

    for (int i = 0; i < 4096; ++i) {
        const Tick due = sched.nextDue(0);
        const auto predicted = sched.banksUnderRefreshAt(0, due);
        const auto cmd = sched.pop(0, view);
        ASSERT_EQ(predicted.size(), 1u);
        EXPECT_EQ(predicted[0],
                  cmd.rank * dev.org.banksPerRank + cmd.bank)
            << "command " << i << " due " << due;
    }
}

TEST(SequentialPerBankTest, SlotQueryCoversWholeWindow)
{
    const auto dev = cfg();
    SequentialPerBank sched(dev);
    const Tick slot = sched.slotLength();
    for (int s = 0; s < dev.org.banksTotal(); ++s) {
        EXPECT_EQ(sched.banksUnderRefreshAt(
                      0, static_cast<Tick>(s) * slot),
                  std::vector<int>{s});
        // Mid-slot queries agree.
        EXPECT_EQ(sched.banksUnderRefreshAt(
                      0, static_cast<Tick>(s) * slot + slot / 2),
                  std::vector<int>{s});
    }
    // Next window wraps around.
    EXPECT_EQ(sched.banksUnderRefreshAt(0, dev.timings.tREFW),
              std::vector<int>{0});
}

TEST(SequentialPerBankTest, RankParallelFallbackAt32ms32Gb)
{
    // 32 ms retention at 32 Gb: tREFI_pb (244 ns) < tRFC_pb
    // (387 ns), so the global schedule is infeasible and the
    // sequential scheduler runs one Algorithm 1 walk per rank.
    const auto dev = makeDdr3_1600(DensityGb::d32, milliseconds(32.0),
                                   64);
    SequentialPerBank sched(dev);
    EXPECT_TRUE(sched.rankParallel());
    EXPECT_EQ(sched.slotLength(),
              dev.timings.tREFW
                  / static_cast<Tick>(dev.org.banksPerRank));

    FakeView view;
    // Consecutive pops alternate ranks, so same-bank commands are a
    // full per-rank interval apart.
    const auto first = sched.pop(0, view);
    const auto second = sched.pop(0, view);
    EXPECT_EQ(first.rank, 0);
    EXPECT_EQ(second.rank, 1);
    EXPECT_EQ(first.bank, second.bank);

    // The analytic query names one bank per rank (same bank-id).
    const auto banks = sched.banksUnderRefreshAt(0, 0);
    ASSERT_EQ(banks.size(),
              static_cast<std::size_t>(dev.org.ranksPerChannel));
    EXPECT_EQ(banks[0] % dev.org.banksPerRank,
              banks[1] % dev.org.banksPerRank);
}

TEST(SequentialPerBankTest, RankParallelCoversAllRows)
{
    const auto dev = makeDdr3_1600(DensityGb::d32, milliseconds(32.0),
                                   64);
    SequentialPerBank sched(dev);
    FakeView view;
    const auto rows = runOneWindow(sched, dev, view);
    for (std::size_t b = 0; b < rows.size(); ++b)
        EXPECT_EQ(rows[b], dev.org.rowsPerBank) << "bank " << b;
}

TEST(OooPerBankTest, PrefersBankWithFewestQueuedRequests)
{
    const auto dev = cfg();
    OooPerBank sched(dev);
    FakeView view;
    // Load every bank except (rank 1, bank 5).
    for (int r = 0; r < dev.org.ranksPerChannel; ++r) {
        for (int b = 0; b < dev.org.banksPerRank; ++b)
            view.queued[{r, b}] = 10;
    }
    view.queued[{1, 5}] = 0;

    const auto cmd = sched.pop(0, view);
    EXPECT_EQ(cmd.rank, 1);
    EXPECT_EQ(cmd.bank, 5);
}

TEST(OooPerBankTest, ExhaustedBankNotChosenAgain)
{
    const auto dev = cfg();
    OooPerBank sched(dev);
    FakeView view;
    // Every other bank stays busy; bank (0,0) is always idle and
    // therefore always the most attractive refresh target.
    for (int r = 0; r < dev.org.ranksPerChannel; ++r) {
        for (int b = 0; b < dev.org.banksPerRank; ++b)
            view.queued[{r, b}] = 5;
    }
    view.queued[{0, 0}] = 0;
    const auto perBank = dev.timings.refreshCommandsPerWindow;

    std::uint64_t toBank0 = 0;
    for (std::uint64_t i = 0; i < perBank + 10; ++i) {
        const auto cmd = sched.pop(0, view);
        if (cmd.rank == 0 && cmd.bank == 0)
            ++toBank0;
    }
    // Bank 0 got exactly its quota, then the policy moved on.
    EXPECT_EQ(toBank0, perBank);
}

TEST(AdaptiveRefreshTest, SwitchesModeWithUtilization)
{
    const auto dev = cfg();
    AdaptiveRefresh sched(dev, 0.35);
    FakeView view;

    view.util = 0.9;  // saturated channel -> coarse 1x mode
    auto cmd = sched.pop(0, view);
    EXPECT_EQ(sched.currentMode(0), FgrMode::x1);
    EXPECT_EQ(cmd.tRFC, dev.timings.tRFCab);

    view.util = 0.05;  // idle channel -> fine 4x mode
    cmd = sched.pop(0, view);
    EXPECT_EQ(sched.currentMode(0), FgrMode::x4);
    EXPECT_EQ(cmd.tRFC,
              static_cast<Tick>(
                  static_cast<double>(dev.timings.tRFCab) / 1.63));
}

TEST(AdaptiveRefreshTest, FourXModeQuadruplesCadence)
{
    const auto dev = cfg();
    AdaptiveRefresh sched(dev, 0.35);
    FakeView view;
    view.util = 0.0;

    const Tick before = sched.nextDue(0);
    sched.pop(0, view);
    const Tick after = sched.nextDue(0);
    EXPECT_EQ(after - before,
              dev.timings.tREFIab / 4
                  / static_cast<Tick>(dev.org.ranksPerChannel));
}

TEST(FactoryTest, CreatesEveryPolicy)
{
    const auto dev = cfg();
    for (auto p : {RefreshPolicy::NoRefresh, RefreshPolicy::AllBank,
                   RefreshPolicy::PerBankRoundRobin,
                   RefreshPolicy::SequentialPerBank,
                   RefreshPolicy::OooPerBank, RefreshPolicy::Adaptive}) {
        auto sched = makeRefreshScheduler(p, dev);
        ASSERT_NE(sched, nullptr);
        EXPECT_EQ(sched->policy(), p);
        EXPECT_FALSE(sched->name().empty());
    }
}

/**
 * Long-horizon cadence exactness (>= 4 x tREFW): bucket every
 * command by the wall-clock window its DUE TICK falls in and demand
 * per-bank row totals be exact in every window.
 *
 * This is strictly stronger than cumulative coverage: the pre-fix
 * `cmdIndex * step` cadences drifted EARLY (truncation of
 * tREFI / N accumulates), so commands meant for window w+1 leaked
 * into window w while cumulative tallies still balanced.  The
 * coverage tests above cannot see that; wall-clock bucketing can.
 */
std::vector<std::vector<std::uint64_t>>
rowsPerWallClockWindow(RefreshScheduler &sched,
                       const DramDeviceConfig &dev,
                       const McRefreshView &view,
                       std::uint64_t numWindows)
{
    const int banksTotal = dev.org.banksTotal();
    std::vector<std::vector<std::uint64_t>> rows(
        numWindows,
        std::vector<std::uint64_t>(
            static_cast<std::size_t>(banksTotal), 0));
    const Tick horizon =
        static_cast<Tick>(numWindows) * dev.timings.tREFW;
    while (sched.nextDue(0) < horizon) {
        const auto window = static_cast<std::size_t>(
            sched.nextDue(0) / dev.timings.tREFW);
        const auto cmd = sched.pop(0, view);
        auto &bucket = rows[window];
        if (cmd.isAllBank()) {
            for (int b = 0; b < dev.org.banksPerRank; ++b)
                bucket[static_cast<std::size_t>(
                    cmd.rank * dev.org.banksPerRank + b)] += cmd.rows;
        } else {
            bucket[static_cast<std::size_t>(
                cmd.rank * dev.org.banksPerRank + cmd.bank)]
                += cmd.rows;
        }
    }
    return rows;
}

class LongHorizonCadenceTest
    : public ::testing::TestWithParam<RefreshPolicy>
{
};

TEST_P(LongHorizonCadenceTest, ExactRowsPerBankPerWindow)
{
    const auto dev = cfg(/*timeScale=*/1024);
    auto sched = makeRefreshScheduler(GetParam(), dev);
    FakeView view;

    constexpr std::uint64_t kWindows = 4;
    const auto rows =
        rowsPerWallClockWindow(*sched, dev, view, kWindows);
    const std::uint64_t expected =
        GetParam() == RefreshPolicy::NoRefresh ? 0
                                               : dev.org.rowsPerBank;
    for (std::uint64_t w = 0; w < kWindows; ++w)
        for (std::size_t b = 0; b < rows[w].size(); ++b)
            EXPECT_EQ(rows[w][b], expected)
                << toString(GetParam()) << " window " << w
                << " bank " << b;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, LongHorizonCadenceTest,
    ::testing::Values(RefreshPolicy::NoRefresh, RefreshPolicy::AllBank,
                      RefreshPolicy::PerBankRoundRobin,
                      RefreshPolicy::SequentialPerBank,
                      RefreshPolicy::OooPerBank,
                      RefreshPolicy::Adaptive));

TEST(LongHorizonCadenceRanks3Test, AllBankNonDividingStagger)
{
    // ranks=3 does not divide tREFI_ab: the truncated stagger loses
    // (tREFIab - 3 * stagger) ticks per interval, so the pre-fix
    // cadence pulled every window-boundary command into the previous
    // wall-clock window (rank 0 over-refreshed in window w, under-
    // refreshed in the last).  Only the policy layer is exercised:
    // full-System organizations require power-of-two ranks.
    auto dev = cfg(/*timeScale=*/1024);
    dev.org.ranksPerChannel = 3;
    ASSERT_NE(dev.timings.tREFIab % 3, 0u);

    AllBankRefresh sched(dev);
    FakeView view;
    constexpr std::uint64_t kWindows = 4;
    const auto rows =
        rowsPerWallClockWindow(sched, dev, view, kWindows);
    for (std::uint64_t w = 0; w < kWindows; ++w)
        for (std::size_t b = 0; b < rows[w].size(); ++b)
            EXPECT_EQ(rows[w][b], dev.org.rowsPerBank)
                << "window " << w << " bank " << b;
}

TEST(LongHorizonCadenceRanks3Test, PerBankNonDividingInterval)
{
    auto dev = cfg(/*timeScale=*/1024);
    dev.org.ranksPerChannel = 3;
    ASSERT_NE(dev.timings.tREFIab
                  % static_cast<Tick>(dev.org.banksTotal()),
              0u);

    PerBankRoundRobin sched(dev);
    FakeView view;
    constexpr std::uint64_t kWindows = 4;
    const auto rows =
        rowsPerWallClockWindow(sched, dev, view, kWindows);
    for (std::uint64_t w = 0; w < kWindows; ++w)
        for (std::size_t b = 0; b < rows[w].size(); ++b)
            EXPECT_EQ(rows[w][b], dev.org.rowsPerBank)
                << "window " << w << " bank " << b;
}

TEST(MultiChannelTest, ChannelsHaveIndependentCursors)
{
    auto dev = cfg();
    dev.org.channels = 2;
    SequentialPerBank sched(dev);
    FakeView view;

    sched.pop(0, view);
    sched.pop(0, view);
    // Channel 1 untouched: still due at 0.
    EXPECT_EQ(sched.nextDue(1), 0u);
    EXPECT_GT(sched.nextDue(0), 0u);
}

} // namespace
} // namespace refsched::dram
