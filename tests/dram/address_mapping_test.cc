/** @file Tests for the physical address <-> DRAM coordinate mapping. */

#include "dram/address_mapping.hh"

#include <gtest/gtest.h>

#include <set>

#include "simcore/rng.hh"

namespace refsched::dram
{
namespace
{

DramOrganization
tableOneOrg()
{
    const auto cfg = makeDdr3_1600(DensityGb::d32, milliseconds(64.0), 64);
    return cfg.org;
}

TEST(AddressMappingTest, RoundTripRandomAddresses)
{
    const AddressMapping map(tableOneOrg());
    Rng rng(11);
    const auto total = map.organization().totalBytes();
    for (int i = 0; i < 2000; ++i) {
        const Addr a = (rng.below(total / 64)) * 64;
        const auto coord = map.decompose(a);
        EXPECT_EQ(map.compose(coord), a & ~63ULL)
            << "address 0x" << std::hex << a;
    }
}

TEST(AddressMappingTest, CoordinatesStayInRange)
{
    const AddressMapping map(tableOneOrg());
    const auto &org = map.organization();
    Rng rng(12);
    for (int i = 0; i < 2000; ++i) {
        const Addr a = rng.below(org.totalBytes());
        const auto c = map.decompose(a);
        EXPECT_LT(c.channel, org.channels);
        EXPECT_LT(c.rank, org.ranksPerChannel);
        EXPECT_LT(c.bank, org.banksPerRank);
        EXPECT_LT(c.row, org.rowsPerBank);
        EXPECT_LT(c.column, org.columnsPerRow());
    }
}

TEST(AddressMappingTest, PageMapsToSingleBankAndRow)
{
    // The property Algorithm 2 relies on: a 4 KB OS page never
    // straddles banks or rows.
    const AddressMapping map(tableOneOrg());
    Rng rng(13);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t pfn = rng.below(map.totalFrames());
        const Addr base = pfn << map.pageShift();
        const auto first = map.decompose(base);
        for (Addr off = 64; off < map.pageBytes(); off += 64) {
            const auto c = map.decompose(base + off);
            ASSERT_EQ(c.channel, first.channel);
            ASSERT_EQ(c.rank, first.rank);
            ASSERT_EQ(c.bank, first.bank);
            ASSERT_EQ(c.row, first.row);
        }
        EXPECT_EQ(map.bankOfFrame(pfn), map.globalBank(base));
    }
}

TEST(AddressMappingTest, ConsecutivePagesRotateBanks)
{
    const AddressMapping map(tableOneOrg());
    const int banks = map.totalBanks();
    std::set<int> seen;
    for (int p = 0; p < banks; ++p)
        seen.insert(map.bankOfFrame(static_cast<std::uint64_t>(p)));
    // One full sweep of consecutive pages covers every global bank.
    EXPECT_EQ(static_cast<int>(seen.size()), banks);
}

TEST(AddressMappingTest, GlobalBankDecomposition)
{
    const AddressMapping map(tableOneOrg());
    for (int g = 0; g < map.totalBanks(); ++g) {
        const int ch = map.channelOf(g);
        const int rank = map.rankOf(g);
        const int bank = map.bankInRank(g);
        DramCoord c;
        c.channel = ch;
        c.rank = rank;
        c.bank = bank;
        EXPECT_EQ(map.globalBank(c), g);
    }
}

TEST(AddressMappingTest, MultiChannelRoundTrip)
{
    auto org = tableOneOrg();
    org.channels = 4;
    const AddressMapping map(org);
    Rng rng(14);
    for (int i = 0; i < 1000; ++i) {
        const Addr a = (rng.below(org.totalBytes() / 64)) * 64;
        EXPECT_EQ(map.compose(map.decompose(a)), a);
    }
    EXPECT_EQ(map.totalBanks(), 64);
}

TEST(AddressMappingTest, TotalFramesMatchesCapacity)
{
    const AddressMapping map(tableOneOrg());
    EXPECT_EQ(map.totalFrames(),
              map.organization().totalBytes() / map.pageBytes());
}

TEST(AddressMappingTest, NonPowerOfTwoRowCount)
{
    // 24 Gb devices have 384K rows/bank -- not a power of two.
    const auto cfg =
        makeDdr3_1600(DensityGb::d24, milliseconds(64.0), 64);
    const AddressMapping map(cfg.org);
    Rng rng(21);
    for (int i = 0; i < 1000; ++i) {
        const Addr a = (rng.below(cfg.org.totalBytes() / 64)) * 64;
        const auto c = map.decompose(a);
        EXPECT_LT(c.row, cfg.org.rowsPerBank);
        EXPECT_EQ(map.compose(c), a);
    }
}

TEST(AddressMappingTest, XorBankHashRoundTrips)
{
    auto org = tableOneOrg();
    org.xorBankHash = true;
    const AddressMapping map(org);
    Rng rng(22);
    for (int i = 0; i < 2000; ++i) {
        const Addr a = (rng.below(org.totalBytes() / 64)) * 64;
        const auto c = map.decompose(a);
        EXPECT_LT(c.bank, org.banksPerRank);
        EXPECT_EQ(map.compose(c), a);
    }
}

TEST(AddressMappingTest, XorBankHashDealiasesBankStride)
{
    // Addresses exactly one bank-interleave period apart land in the
    // SAME bank without hashing, but spread with it.
    auto org = tableOneOrg();
    const AddressMapping plain(org);
    org.xorBankHash = true;
    const AddressMapping hashed(org);

    // Stride of one full bank x channel x rank rotation of pages:
    // consecutive samples differ only in row.
    const Addr stride = static_cast<Addr>(plain.totalBanks())
        * plain.pageBytes();
    std::set<int> plainBanks, hashedBanks;
    for (int i = 0; i < 8; ++i) {
        plainBanks.insert(
            plain.globalBank(static_cast<Addr>(i) * stride));
        hashedBanks.insert(
            hashed.globalBank(static_cast<Addr>(i) * stride));
    }
    EXPECT_EQ(plainBanks.size(), 1u);
    EXPECT_EQ(hashedBanks.size(), 8u);
}

TEST(AddressMappingTest, XorBankHashKeepsPageInOneBank)
{
    auto org = tableOneOrg();
    org.xorBankHash = true;
    const AddressMapping map(org);
    Rng rng(23);
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t pfn = rng.below(map.totalFrames());
        const int bank = map.bankOfFrame(pfn);
        const Addr base = pfn << map.pageShift();
        for (Addr off = 0; off < map.pageBytes(); off += 64)
            ASSERT_EQ(map.globalBank(base + off), bank);
    }
}

} // namespace
} // namespace refsched::dram
