/** @file Tests for DRAM timing parameter derivation (Table 1). */

#include "dram/timings.hh"

#include <gtest/gtest.h>

#include "simcore/logging.hh"

namespace refsched::dram
{
namespace
{

TEST(TimingsTest, JedecValuesAtScaleOne)
{
    const auto cfg = makeDdr3_1600(DensityGb::d32, milliseconds(64.0), 1);
    const auto &t = cfg.timings;
    EXPECT_EQ(t.tCK, 1250u);
    EXPECT_EQ(t.tREFW, milliseconds(64.0));
    EXPECT_EQ(t.refreshCommandsPerWindow, 8192u);
    EXPECT_EQ(t.tREFIab, microseconds(7.8125));
    EXPECT_EQ(t.tRFCab, nanoseconds(890.0));
    EXPECT_EQ(t.tRFCpb, nanoseconds(890.0 / 2.3));
    EXPECT_EQ(cfg.org.rowsPerBank, 512u * 1024u);
    EXPECT_EQ(t.rowsPerRefresh, 64u);
}

class DensityTest : public ::testing::TestWithParam<DensityGb>
{
};

TEST_P(DensityTest, Table1RowsAndTrfc)
{
    const auto d = GetParam();
    const auto cfg = makeDdr3_1600(d, milliseconds(64.0), 1);
    switch (d) {
      case DensityGb::d8:
        EXPECT_EQ(cfg.org.rowsPerBank, 128u * 1024u);
        EXPECT_EQ(cfg.timings.tRFCab, nanoseconds(350.0));
        break;
      case DensityGb::d16:
        EXPECT_EQ(cfg.org.rowsPerBank, 256u * 1024u);
        EXPECT_EQ(cfg.timings.tRFCab, nanoseconds(530.0));
        break;
      case DensityGb::d24:
        EXPECT_EQ(cfg.org.rowsPerBank, 384u * 1024u);
        EXPECT_EQ(cfg.timings.tRFCab, nanoseconds(710.0));
        break;
      case DensityGb::d32:
        EXPECT_EQ(cfg.org.rowsPerBank, 512u * 1024u);
        EXPECT_EQ(cfg.timings.tRFCab, nanoseconds(890.0));
        break;
    }
}

INSTANTIATE_TEST_SUITE_P(AllDensities, DensityTest,
                         ::testing::Values(DensityGb::d8, DensityGb::d16,
                                           DensityGb::d24,
                                           DensityGb::d32));

class ScaleInvarianceTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ScaleInvarianceTest, RatiosPreserved)
{
    const unsigned scale = GetParam();
    const auto base = makeDdr3_1600(DensityGb::d32, milliseconds(64.0), 1);
    const auto scaled =
        makeDdr3_1600(DensityGb::d32, milliseconds(64.0), scale);

    // tREFI and tRFC are physical constants: unchanged.
    EXPECT_EQ(scaled.timings.tREFIab, base.timings.tREFIab);
    EXPECT_EQ(scaled.timings.tRFCab, base.timings.tRFCab);
    EXPECT_EQ(scaled.timings.rowsPerRefresh, base.timings.rowsPerRefresh);

    // Window, command count and rows shrink together.
    EXPECT_EQ(scaled.timings.tREFW, base.timings.tREFW / scale);
    EXPECT_EQ(scaled.timings.refreshCommandsPerWindow,
              base.timings.refreshCommandsPerWindow / scale);
    EXPECT_EQ(scaled.org.rowsPerBank, base.org.rowsPerBank / scale);

    // The refresh duty cycle -- the behaviour-determining ratio --
    // is identical.
    EXPECT_DOUBLE_EQ(scaled.timings.allBankDutyCycle(),
                     base.timings.allBankDutyCycle());

    // Full coverage: commands * rows/command == rows/bank.
    EXPECT_EQ(scaled.timings.refreshCommandsPerWindow
                  * scaled.timings.rowsPerRefresh,
              scaled.org.rowsPerBank);
}

INSTANTIATE_TEST_SUITE_P(Scales, ScaleInvarianceTest,
                         ::testing::Values(1u, 2u, 8u, 64u, 256u));

TEST(TimingsTest, PerBankIntervalDividesByTotalBanks)
{
    const auto cfg = makeDdr3_1600(DensityGb::d32, milliseconds(64.0), 1);
    EXPECT_EQ(cfg.timings.tREFIpb(16), cfg.timings.tREFIab / 16);
}

TEST(TimingsTest, LowRetentionHalvesWindow)
{
    const auto cfg = makeDdr3_1600(DensityGb::d32, milliseconds(32.0), 1);
    EXPECT_EQ(cfg.timings.tREFW, milliseconds(32.0));
    // Same 8192 commands in half the window: tREFI halves.
    EXPECT_EQ(cfg.timings.tREFIab, microseconds(7.8125) / 2);
}

TEST(TimingsTest, Ddr4FgrModes)
{
    const auto x1 = makeDdr3_1600(DensityGb::d32, milliseconds(64.0), 1,
                                  FgrMode::x1);
    const auto x2 = makeDdr3_1600(DensityGb::d32, milliseconds(64.0), 1,
                                  FgrMode::x2);
    const auto x4 = makeDdr3_1600(DensityGb::d32, milliseconds(64.0), 1,
                                  FgrMode::x4);

    EXPECT_EQ(x2.timings.tREFIab, x1.timings.tREFIab / 2);
    EXPECT_EQ(x4.timings.tREFIab, x1.timings.tREFIab / 4);

    // Section 6.3: tRFC shrinks by only 1.35x / 1.63x.
    EXPECT_EQ(x2.timings.tRFCab, nanoseconds(890.0 / 1.35));
    EXPECT_EQ(x4.timings.tRFCab, nanoseconds(890.0 / 1.63));

    // 2x/4x therefore spend MORE total time refreshing.
    const double duty1 = x1.timings.allBankDutyCycle();
    const double duty2 = x2.timings.allBankDutyCycle();
    const double duty4 = x4.timings.allBankDutyCycle();
    EXPECT_GT(duty2, duty1);
    EXPECT_GT(duty4, duty2);
}

TEST(TimingsTest, OrganizationCapacity)
{
    const auto cfg = makeDdr3_1600(DensityGb::d32, milliseconds(64.0), 1);
    // 512K rows * 4KB * 8 banks * 2 ranks = 32 GB per channel.
    EXPECT_EQ(cfg.org.bankBytes(), 2u * kGiB);
    EXPECT_EQ(cfg.org.channelBytes(), 32u * kGiB);
    EXPECT_EQ(cfg.org.columnsPerRow(), 64u);
    EXPECT_EQ(cfg.org.banksTotal(), 16);
}

TEST(TimingsTest, InvalidConfigsAreFatal)
{
    EXPECT_THROW(makeDdr3_1600(DensityGb::d32, milliseconds(64.0), 0),
                 FatalError);
    EXPECT_THROW(makeDdr3_1600(DensityGb::d32, milliseconds(64.0), 3),
                 FatalError);
    EXPECT_THROW(makeDdr3_1600(DensityGb::d32, milliseconds(64.0), 16384),
                 FatalError);

    // Non-power-of-two rows are legal (24 Gb devices), zero is not.
    DramOrganization org;
    org.rowsPerBank = 1000;
    EXPECT_NO_THROW(org.check());
    org.rowsPerBank = 0;
    EXPECT_THROW(org.check(), FatalError);

    DramOrganization bad;
    bad.channels = 3;
    EXPECT_THROW(bad.check(), FatalError);
}

TEST(TimingsTest, ConsistencyCheckCatchesBrokenRefresh)
{
    auto cfg = makeDdr3_1600(DensityGb::d32, milliseconds(64.0), 1);
    auto t = cfg.timings;
    t.tRFCab = t.tREFIab + 1;  // refresh longer than its interval
    EXPECT_THROW(t.check(cfg.org), FatalError);

    auto t2 = cfg.timings;
    t2.rowsPerRefresh = 63;  // no longer covers the bank exactly
    EXPECT_THROW(t2.check(cfg.org), FatalError);
}

TEST(TimingsTest, ToStringNames)
{
    EXPECT_EQ(toString(DensityGb::d8), "8Gb");
    EXPECT_EQ(toString(DensityGb::d32), "32Gb");
}

} // namespace
} // namespace refsched::dram
