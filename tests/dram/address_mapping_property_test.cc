/**
 * @file
 * Round-trip property test for the address mapping: for every
 * channel/rank/bank layout the repo configures (and both bank-hash
 * modes), decompose and compose must be exact inverses, and compose
 * must reject out-of-range coordinates instead of aliasing.
 */

#include <gtest/gtest.h>

#include "dram/address_mapping.hh"
#include "simcore/logging.hh"
#include "simcore/rng.hh"

namespace refsched::dram
{
namespace
{

DramOrganization
makeOrg(int channels, int ranks, int banks, bool xorHash)
{
    DramOrganization org;
    org.channels = channels;
    org.ranksPerChannel = ranks;
    org.banksPerRank = banks;
    org.rowsPerBank = 64;
    org.xorBankHash = xorHash;
    return org;
}

TEST(AddressMappingPropertyTest, RoundTripAcrossLayouts)
{
    Rng rng(0x5eed);
    for (int channels : {1, 2, 4}) {
        for (int ranks : {1, 2, 4}) {
            for (int banks : {4, 8, 16}) {
                for (bool xorHash : {false, true}) {
                    SCOPED_TRACE(testing::Message()
                                 << channels << "ch x " << ranks
                                 << "rk x " << banks
                                 << "b xor=" << xorHash);
                    const auto org =
                        makeOrg(channels, ranks, banks, xorHash);
                    AddressMapping m(org);

                    // coord -> addr -> coord is the identity.
                    for (int trial = 0; trial < 200; ++trial) {
                        DramCoord c;
                        c.channel =
                            static_cast<int>(rng.below(channels));
                        c.rank = static_cast<int>(rng.below(ranks));
                        c.bank = static_cast<int>(rng.below(banks));
                        c.row = rng.below(org.rowsPerBank);
                        c.column = rng.below(org.columnsPerRow());
                        EXPECT_EQ(m.decompose(m.compose(c)), c);
                    }

                    // addr -> coord -> addr recovers the address up
                    // to the line offset compose zeroes by contract.
                    for (int trial = 0; trial < 200; ++trial) {
                        const Addr a = rng.below(org.totalBytes());
                        EXPECT_EQ(m.compose(m.decompose(a)),
                                  a & ~(org.lineBytes - 1));
                    }
                }
            }
        }
    }
}

/** The frame -> bank view the OS allocator uses must agree with the
 *  coordinate view the controller uses, hash or no hash. */
TEST(AddressMappingPropertyTest, BankOfFrameMatchesDecompose)
{
    for (bool xorHash : {false, true}) {
        AddressMapping m(makeOrg(2, 2, 8, xorHash));
        for (std::uint64_t pfn = 0; pfn < m.totalFrames(); ++pfn) {
            const auto c = m.decompose(pfn << m.pageShift());
            EXPECT_EQ(m.bankOfFrame(pfn), m.globalBank(c));
            // One 4 KB page never straddles coordinates: the last
            // byte of the frame maps to the same (ch, rank, bank,
            // row).
            const auto last =
                m.decompose((pfn << m.pageShift()) + m.pageBytes()
                            - m.organization().lineBytes);
            EXPECT_EQ(last.channel, c.channel);
            EXPECT_EQ(last.rank, c.rank);
            EXPECT_EQ(last.bank, c.bank);
            EXPECT_EQ(last.row, c.row);
        }
    }
}

TEST(AddressMappingPropertyTest, ComposeRejectsOutOfRange)
{
    AddressMapping m(makeOrg(2, 2, 8, false));
    const DramCoord good{1, 1, 3, 10, 5};
    EXPECT_EQ(m.decompose(m.compose(good)), good);

    auto reject = [&](DramCoord c) {
        EXPECT_THROW(m.compose(c), PanicError);
    };
    reject({2, 1, 3, 10, 5});    // channel == channels
    reject({-1, 1, 3, 10, 5});   // negative channel
    reject({1, 2, 3, 10, 5});    // rank == ranksPerChannel
    reject({1, 1, 8, 10, 5});    // bank == banksPerRank
    reject({1, 1, -1, 10, 5});   // negative bank
    reject({1, 1, 3, 64, 5});    // row == rowsPerBank
    reject({1, 1, 3, 10, 64});   // column == columnsPerRow
}

} // namespace
} // namespace refsched::dram
