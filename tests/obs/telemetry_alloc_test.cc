/**
 * @file
 * Overhead guard for the telemetry layer: once the sample buffers
 * are reserved, the sampling hot path (boundary-hook passes in the
 * sharded kernel, samplePass in the legacy one) must not allocate --
 * it runs once per simulated microsecond on every configuration that
 * enables telemetry.  Enforced by the binary-wide counting operator
 * new replacement in alloc_watch.cc.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "alloc_watch.hh"
#include "obs/telemetry.hh"

namespace refsched::obs
{

using testutil::AllocWatch;
namespace
{

TelemetryConfig
enabledConfig(Tick period)
{
    TelemetryConfig cfg;
    cfg.enabled = true;
    cfg.periodTicks = period;
    return cfg;
}

TEST(TelemetryAllocTest, ReservedSamplingIsAllocationFree)
{
    TelemetryRecorder rec(enabledConfig(100));
    std::int64_t gauge = 0, counter = 0;
    rec.addGauge("ch0.readQ", 1, [&gauge] { return gauge; });
    rec.addDelta("ch0.reads", 1, [&counter] { return counter; });
    rec.addDelta("core0.instrs", 2, [&counter] { return counter; });
    rec.reserveSamples(1000);

    AllocWatch watch;
    for (int i = 1; i <= 1000; ++i) {
        gauge = i % 7;
        counter += 13;
        // Boundary windows of one period each: one pass per call.
        rec.onBoundary(static_cast<Tick>(i) * 100 + 1);
    }
    EXPECT_EQ(watch.count(), 0u)
        << "telemetry sampling allocated after reserveSamples";
    EXPECT_EQ(rec.passCount(), 1000u);
}

TEST(TelemetryAllocTest, RestartKeepsCapacity)
{
    TelemetryRecorder rec(enabledConfig(100));
    std::int64_t counter = 0;
    rec.addDelta("sched.quanta", 0, [&counter] { return counter; });
    rec.reserveSamples(500);
    for (int i = 1; i <= 500; ++i) {
        counter += 2;
        rec.samplePass(static_cast<Tick>(i) * 100);
    }

    // Measurement reset clears the buffers but must not shed their
    // capacity: the measured phase samples at the same cadence.
    rec.restart();
    AllocWatch watch;
    for (int i = 1; i <= 500; ++i) {
        counter += 2;
        rec.samplePass(static_cast<Tick>(i) * 100);
    }
    EXPECT_EQ(watch.count(), 0u)
        << "post-restart sampling re-allocated the buffers";
    EXPECT_EQ(rec.passCount(), 500u);
}

} // namespace
} // namespace refsched::obs
