#include "alloc_watch.hh"

#include <atomic>
#include <cstdlib>
#include <new>

namespace
{

std::atomic<bool> g_armed{false};
std::atomic<std::uint64_t> g_news{0};

void *
countedAlloc(std::size_t n)
{
    if (g_armed.load(std::memory_order_relaxed))
        g_news.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *
operator new(std::size_t n)
{
    return countedAlloc(n);
}

void *
operator new[](std::size_t n)
{
    return countedAlloc(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace refsched::testutil
{

AllocWatch::AllocWatch()
{
    g_news.store(0, std::memory_order_relaxed);
    g_armed.store(true, std::memory_order_relaxed);
}

AllocWatch::~AllocWatch()
{
    g_armed.store(false, std::memory_order_relaxed);
}

std::uint64_t
AllocWatch::count() const
{
    return g_news.load(std::memory_order_relaxed);
}

} // namespace refsched::testutil
