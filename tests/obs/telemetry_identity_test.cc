/**
 * @file
 * Telemetry partition-identity proof: the JSONL export is
 * byte-identical across every {jobs} x {shards >= 1} x {worker
 * count} combination WITHIN one timing mode, exactly like the stats
 * JSON (tests/validate/shard_identity_test.cc).  Sampling happens in
 * the sealed phase-C boundary hook, so the values are a pure
 * function of simulated time; the two timing modes (coreLanes == 0
 * vs >= 1) are never compared against each other, and the legacy
 * kernel (shards == 0) is checked for run-to-run determinism on its
 * own since its periodic-event driver shares no boundary grid with
 * the sharded one.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hh"
#include "core/parallel_runner.hh"
#include "core/system.hh"
#include "obs/telemetry.hh"
#include "workload/serving.hh"

namespace refsched::obs
{
namespace
{

core::SystemConfig
telemetryConfig(int shards, int coreLanes)
{
    core::SystemConfig cfg = core::makeConfig(
        "WL-1", core::Policy::CoDesign, dram::DensityGb::d32,
        milliseconds(64.0), /*numCores=*/2, /*tasksPerCore=*/4,
        /*timeScale=*/1024);
    cfg.channels = 2;
    cfg.shards = shards;
    cfg.coreLanes = coreLanes;
    // Serving on, so the serving.* lane-0 series are exercised too.
    cfg.serving = workload::ServingConfig::parse(
        "arrival=mmpp,load=0.3,pool=4,queue=16,lines=4");
    cfg.telemetry.enabled = true;
    return cfg;
}

std::string
runTelemetryJsonl(const core::SystemConfig &cfg)
{
    core::System sys(cfg);
    sys.run(/*warmupQuanta=*/1, /*measureQuanta=*/2);
    std::ostringstream os;
    sys.telemetry()->writeJsonl(os);
    return os.str();
}

/**
 * Run every (shards, coreLanes) cell under jobs workers and return
 * the telemetry JSONL per cell, in cell order.
 */
std::vector<std::string>
runMatrix(const std::vector<std::pair<int, int>> &cells, int jobs)
{
    std::vector<std::string> out(cells.size());
    std::vector<core::CellSpec> specs;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const core::SystemConfig cfg =
            telemetryConfig(cells[i].first, cells[i].second);
        std::string *slot = &out[i];
        core::CellSpec spec;
        spec.custom = [cfg, slot] {
            core::System sys(cfg);
            const auto m = sys.run(/*warmupQuanta=*/1,
                                   /*measureQuanta=*/2);
            std::ostringstream os;
            sys.telemetry()->writeJsonl(os);
            *slot = os.str();
            return m;
        };
        specs.push_back(std::move(spec));
    }
    core::ParallelRunner(jobs).runCells(specs);
    return out;
}

void
expectGroupIdentical(const std::vector<std::pair<int, int>> &cells,
                     const std::string &label)
{
    std::vector<std::string> seq, par;
    for (int jobs : {1, 8})
        (jobs == 1 ? seq : par) = runMatrix(cells, jobs);

    // The export must carry real samples from every lane family, or
    // identity proves nothing.
    ASSERT_FALSE(seq[0].empty());
    EXPECT_NE(seq[0].find("\"type\": \"schema\""),
              std::string::npos);
    EXPECT_NE(seq[0].find("ch1.readQ"), std::string::npos);
    EXPECT_NE(seq[0].find("core1.instrs"), std::string::npos);
    EXPECT_NE(seq[0].find("sched.quanta"), std::string::npos);
    EXPECT_NE(seq[0].find("serving.backlog"), std::string::npos);
    EXPECT_NE(seq[0].find("{\"t\": "), std::string::npos)
        << "no sample passes in the measured interval";

    for (std::size_t i = 0; i < cells.size(); ++i) {
        std::ostringstream what;
        what << label << " shards=" << cells[i].first
             << " lanes=" << cells[i].second;
        EXPECT_EQ(seq[0], seq[i]) << what.str() << " jobs=1";
        EXPECT_EQ(seq[0], par[i]) << what.str() << " jobs=8";
    }
}

TEST(TelemetryIdentityTest, ShardedNoLanesGroupIsByteIdentical)
{
    expectGroupIdentical({{1, 0}, {2, 0}}, "no-lanes");
}

TEST(TelemetryIdentityTest, LaneModeGroupIsByteIdentical)
{
    expectGroupIdentical({{1, 1}, {2, 1}, {1, 2}, {2, 2}},
                         "lane-mode");
}

TEST(TelemetryIdentityTest, LegacyKernelIsDeterministic)
{
    // shards == 0: the periodic StatDump event drives sampling.
    const core::SystemConfig cfg = telemetryConfig(0, 0);
    const std::string a = runTelemetryJsonl(cfg);
    const std::string b = runTelemetryJsonl(cfg);
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("{\"t\": "), std::string::npos);
}

TEST(TelemetryIdentityTest, CsvMatchesJsonlValues)
{
    // Same run exported both ways: the CSV must hold exactly the
    // JSONL passes (same count, same first stamp), proving the two
    // writers read one buffer rather than resampling.
    const core::SystemConfig cfg = telemetryConfig(2, 0);
    core::System sys(cfg);
    sys.run(/*warmupQuanta=*/1, /*measureQuanta=*/2);
    const auto *tel = sys.telemetry();
    ASSERT_NE(tel, nullptr);
    ASSERT_GT(tel->passCount(), 0u);

    std::ostringstream csv;
    tel->writeCsv(csv);
    // Header + one row per pass + trailing newline.
    std::size_t rows = 0;
    for (char c : csv.str())
        rows += c == '\n';
    EXPECT_EQ(rows, tel->passCount() + 1);
    EXPECT_NE(csv.str().find(std::to_string(tel->passTick(0))),
              std::string::npos);
}

} // namespace
} // namespace refsched::obs
