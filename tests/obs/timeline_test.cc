/**
 * @file
 * Timeline-recorder tests: observer/validator coexistence on the
 * probe fan-out, Chrome trace-event schema validity (monotonic,
 * non-overlapping per-track slices), trace-window filtering, and
 * byte-identical exports across --jobs parallelism.
 */

#include "obs/timeline.hh"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hh"
#include "core/parallel_runner.hh"
#include "core/system.hh"
#include "obs/json.hh"
#include "validate/golden_trace.hh"

namespace refsched::obs
{
namespace
{

core::SystemConfig
smallConfig(core::Policy policy)
{
    return core::makeConfig("WL-1", policy, dram::DensityGb::d32,
                            milliseconds(64.0), /*numCores=*/2,
                            /*tasksPerCore=*/4, /*timeScale=*/1024);
}

/** Counts every probe callback; the fan-out identity reference. */
struct CountingProbe final : validate::Probe
{
    std::uint64_t dram = 0, picks = 0, mcq = 0;
    Tick finalTick = 0;

    void onDramCommand(const validate::DramCmdEvent &) override
    {
        ++dram;
    }
    void onSchedPick(const validate::SchedPickEvent &) override
    {
        ++picks;
    }
    void onMcQueue(const validate::McQueueEvent &) override
    {
        ++mcq;
    }
    void finalize(Tick endTick) override { finalTick = endTick; }
};

TEST(TimelineFanOutTest, ObserversAndValidatorsSeeIdenticalStreams)
{
    auto cfg = smallConfig(core::Policy::CoDesign);
    cfg.validate = true;  // checkers + three externals coexist
    core::System sys(cfg);

    validate::TraceRecorder golden;
    CountingProbe counter;
    TimelineRecorder timeline(sys.controller().config().org,
                              cfg.numCores);
    sys.attachProbe(&golden);
    sys.attachProbe(&counter);
    sys.attachProbe(&timeline);

    sys.run(/*warmupQuanta=*/1, /*measureQuanta=*/2);

    EXPECT_GT(counter.dram, 0u);
    EXPECT_GT(counter.picks, 0u);
    EXPECT_GT(counter.mcq, 0u);
    EXPECT_GT(counter.finalTick, 0u);
    // Every fan-out consumer saw exactly the same stream.
    EXPECT_EQ(timeline.dramCommandsSeen(), counter.dram);
    EXPECT_EQ(timeline.schedPicksSeen(), counter.picks);
    EXPECT_EQ(timeline.mcQueueEventsSeen(), counter.mcq);
    // The golden recorder encodes dram + pick + page events; its
    // count can't exceed what the reference consumer observed but
    // must include every DRAM command and pick.
    EXPECT_GE(golden.eventCount(), counter.dram + counter.picks);
}

TEST(TimelineSchemaTest, ExportIsValidAndTracksAreWellFormed)
{
    auto cfg = smallConfig(core::Policy::AllBank);
    core::System sys(cfg);
    TimelineRecorder timeline(sys.controller().config().org,
                              cfg.numCores);
    sys.attachProbe(&timeline);
    sys.run(1, 2);

    std::ostringstream os;
    timeline.writeJson(os);
    const auto doc = parseJson(os.str());

    ASSERT_TRUE(doc.isObject());
    const auto *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    EXPECT_GT(events->array.size(), 0u);

    struct Track
    {
        double lastTs = -1.0;
        double sliceEnd = -1.0;
    };
    std::map<std::pair<double, double>, Track> tracks;
    std::size_t slices = 0, quanta = 0, refreshes = 0;

    for (const auto &ev : events->array) {
        ASSERT_TRUE(ev.isObject());
        const auto *ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->string == "M")
            continue;
        const auto *pid = ev.find("pid");
        const auto *tid = ev.find("tid");
        const auto *ts = ev.find("ts");
        ASSERT_NE(pid, nullptr);
        ASSERT_NE(tid, nullptr);
        ASSERT_NE(ts, nullptr);
        auto &track = tracks[{pid->number, tid->number}];
        EXPECT_GE(ts->number, track.lastTs)
            << "track timestamps must be monotonic";
        track.lastTs = ts->number;
        if (ph->string == "X") {
            const auto *dur = ev.find("dur");
            ASSERT_NE(dur, nullptr);
            EXPECT_GE(dur->number, 0.0);
            // 1 ps tolerance absorbs decimal rounding.
            EXPECT_GE(ts->number + 1e-6, track.sliceEnd)
                << "slices on one track must not overlap";
            track.sliceEnd = ts->number + dur->number;
            ++slices;
            const auto *name = ev.find("name");
            ASSERT_NE(name, nullptr);
            if (pid->number == 2.0)
                ++quanta;
            if (name->string == "refresh")
                ++refreshes;
        }
    }
    EXPECT_GT(slices, 0u);
    EXPECT_GT(quanta, 0u) << "per-core quantum slices missing";
    EXPECT_GT(refreshes, 0u) << "refresh-slot slices missing";
}

TEST(TimelineWindowTest, TraceWindowBoundsEveryTimestamp)
{
    auto cfg = smallConfig(core::Policy::PerBank);
    const Tick q = cfg.effectiveQuantum();
    TimelineOptions window;
    window.windowStart = q;
    window.windowEnd = 2 * q;

    core::System sys(cfg);
    TimelineRecorder timeline(sys.controller().config().org,
                              cfg.numCores, window);
    sys.attachProbe(&timeline);
    sys.run(1, 2);

    std::ostringstream os;
    timeline.writeJson(os);
    const auto doc = parseJson(os.str());
    const auto *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);

    const double loUs = static_cast<double>(q)
        / static_cast<double>(kPsPerUs);
    const double hiUs = 2.0 * loUs;
    std::size_t timed = 0;
    for (const auto &ev : events->array) {
        const auto *ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        if (ph->string == "M")
            continue;
        const auto *ts = ev.find("ts");
        ASSERT_NE(ts, nullptr);
        ++timed;
        EXPECT_GE(ts->number, loUs - 1e-6);
        EXPECT_LT(ts->number, hiUs + 1e-6);
        if (const auto *dur = ev.find("dur")) {
            EXPECT_LE(ts->number + dur->number, hiUs + 1e-6);
        }
    }
    EXPECT_GT(timed, 0u) << "window dropped the whole run";
}

TEST(TimelineJobsTest, TimelinesByteIdenticalAcrossJobCounts)
{
    const std::vector<core::Policy> policies = {
        core::Policy::AllBank, core::Policy::CoDesign};

    auto runGrid = [&](int jobs) {
        std::vector<TimelineRecorder> recs;
        std::vector<core::SystemConfig> cfgs;
        for (auto p : policies)
            cfgs.push_back(smallConfig(p));
        recs.reserve(cfgs.size());
        for (const auto &cfg : cfgs) {
            // Organization is config-derived; build the recorder
            // without constructing the System yet.
            recs.emplace_back(cfg.deviceConfig().org, cfg.numCores);
        }
        std::vector<core::CellSpec> specs;
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            auto cfg = cfgs[i];
            TimelineRecorder *rec = &recs[i];
            core::CellSpec spec;
            spec.custom = [cfg, rec] {
                core::System sys(cfg);
                sys.attachProbe(rec);
                return sys.run(1, 2);
            };
            specs.push_back(std::move(spec));
        }
        core::ParallelRunner(jobs).runCells(specs);
        std::vector<std::string> out;
        for (const auto &rec : recs) {
            std::ostringstream os;
            rec.writeJson(os);
            out.push_back(os.str());
        }
        return out;
    };

    const auto seq = runGrid(1);
    const auto par = runGrid(8);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_GT(seq[i].size(), 1000u);
        EXPECT_EQ(seq[i], par[i])
            << "jobs=1 vs jobs=8 timeline divergence in cell " << i;
    }
}

} // namespace
} // namespace refsched::obs
