/**
 * @file
 * Allocation counting for the observability overhead guards.
 *
 * alloc_watch.cc replaces global operator new/delete for the whole
 * test binary with a pass-through that counts allocations while an
 * AllocWatch is armed.  Tests that must prove a hot path is
 * allocation-free (probe emission, telemetry sampling) open a watch
 * around the path and assert count() == 0.
 */

#ifndef REFSCHED_TESTS_OBS_ALLOC_WATCH_HH
#define REFSCHED_TESTS_OBS_ALLOC_WATCH_HH

#include <cstdint>

namespace refsched::testutil
{

/** RAII window during which any operator new trips the counter. */
struct AllocWatch
{
    AllocWatch();
    ~AllocWatch();
    std::uint64_t count() const;
};

} // namespace refsched::testutil

#endif // REFSCHED_TESTS_OBS_ALLOC_WATCH_HH
