/**
 * @file
 * Overhead guard for the probe layer: with no observer attached, an
 * emission site must neither evaluate its event-construction
 * arguments nor allocate, and an empty CheckerSet dispatch must stay
 * allocation-free.  Enforced by the binary-wide counting operator
 * new replacement in alloc_watch.cc.
 */

#include <gtest/gtest.h>

#include <vector>

#include "alloc_watch.hh"
#include "simcore/probe.hh"
#include "validate/checker.hh"

namespace refsched::validate
{

using testutil::AllocWatch;
namespace
{

/** Would allocate if the emission macro evaluated its arguments. */
DramCmdEvent
expensiveEvent(int *evaluations)
{
    ++*evaluations;
    std::vector<int> scratch(64);
    return {static_cast<Tick>(scratch.size()), DramOp::Act, 0, 0, 0,
            42, 0};
}

TEST(ProbeAllocTest, NullProbeSkipsArgumentEvaluation)
{
    Probe *probe = nullptr;
    int evaluations = 0;
    AllocWatch watch;
    for (int i = 0; i < 1000; ++i)
        REFSCHED_PROBE(probe, onDramCommand(expensiveEvent(&evaluations)));
    EXPECT_EQ(evaluations, 0)
        << "emission site evaluated args with no probe attached";
    EXPECT_EQ(watch.count(), 0u);
}

TEST(ProbeAllocTest, EmptyCheckerSetDispatchIsAllocationFree)
{
    CheckerSet hub;
    const std::vector<int> refreshBanks = {3};
    const std::vector<SchedCandidate> candidates = {{7, 100, true, 0.0}};

    DramCmdEvent dram{100, DramOp::Read, 0, 1, 2, 77, 0};
    SchedPickEvent pick{200, 0, PickKind::Clean, 7, 64, true, 1000,
                        &refreshBanks, &candidates};
    RqEvent rq{300, 0, 7, 5};
    PageAllocEvent alloc{400, 7, 12, false, nullptr};
    PageFreeEvent pageFree{500, 12};
    McQueueEvent mcq{600, 0, true, true, 4, 2, 1};

    AllocWatch watch;
    for (int i = 0; i < 1000; ++i) {
        hub.onDramCommand(dram);
        hub.onSchedPick(pick);
        hub.onRqEnqueue(rq);
        hub.onRqDequeue(rq);
        hub.onPageAlloc(alloc);
        hub.onPageFree(pageFree);
        hub.onMcQueue(mcq);
    }
    hub.finalize(700);
    EXPECT_EQ(watch.count(), 0u)
        << "probe fan-out allocated with no observer attached";
}

TEST(ProbeAllocTest, NoOpExternalProbeCostsNoAllocations)
{
    CheckerSet hub;
    Probe noOp;  // all callbacks default to empty bodies
    hub.attachExternal(&noOp);

    DramCmdEvent dram{100, DramOp::Pre, 0, 0, 0, 1, 0};
    McQueueEvent mcq{100, 0, false, true, 0, 0, 0};
    AllocWatch watch;
    for (int i = 0; i < 1000; ++i) {
        hub.onDramCommand(dram);
        hub.onMcQueue(mcq);
    }
    EXPECT_EQ(watch.count(), 0u);
}

} // namespace
} // namespace refsched::validate
