/**
 * @file
 * Telemetry-recorder units: sampling window semantics for both
 * drivers (sharded boundary hook, legacy periodic event), gauge vs
 * delta accounting, measurement restart re-priming, byte-exact
 * JSONL/CSV export, and the series-name grammar consumed by
 * tools/timeline_check.
 */

#include "obs/telemetry.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "simcore/event_queue.hh"

namespace refsched::obs
{
namespace
{

TelemetryConfig
enabledConfig(Tick period)
{
    TelemetryConfig cfg;
    cfg.enabled = true;
    cfg.periodTicks = period;
    return cfg;
}

TEST(TelemetryConfigTest, DisabledConfigNeedsNoValidation)
{
    TelemetryConfig cfg;
    cfg.periodTicks = -5;  // nonsense, but disabled => ignored
    cfg.check();           // must not fatal()
}

TEST(TelemetryRecorderTest, GaugeSamplesValueAsIs)
{
    TelemetryRecorder rec(enabledConfig(100));
    std::int64_t v = 7;
    rec.addGauge("ch0.readQ", 1, [&v] { return v; });

    rec.samplePass(100);
    v = 42;
    rec.samplePass(200);

    ASSERT_EQ(rec.passCount(), 2u);
    EXPECT_EQ(rec.value(0, 0), 7);
    EXPECT_EQ(rec.value(1, 0), 42);
}

TEST(TelemetryRecorderTest, DeltaPrimesAtRegistration)
{
    TelemetryRecorder rec(enabledConfig(100));
    std::int64_t v = 50;  // non-zero before registration
    rec.addDelta("ch0.reads", 1, [&v] { return v; });

    v = 70;
    rec.samplePass(100);
    v = 70;  // no progress
    rec.samplePass(200);
    v = 100;
    rec.samplePass(300);

    // First delta is vs the registration-time value, not vs zero.
    EXPECT_EQ(rec.value(0, 0), 20);
    EXPECT_EQ(rec.value(1, 0), 0);
    EXPECT_EQ(rec.value(2, 0), 30);
}

TEST(TelemetryRecorderTest, BoundaryHookSamplesEveryCrossedMultiple)
{
    TelemetryRecorder rec(enabledConfig(100));
    std::int64_t v = 0;
    rec.addGauge("sched.quanta", 0, [&v] { return v; });

    // Window [0, 50): no multiple crossed (first sample is at 100,
    // and a boundary at exactly 100 means tick 100 has NOT run yet).
    rec.onBoundary(50);
    EXPECT_EQ(rec.passCount(), 0u);
    rec.onBoundary(100);
    EXPECT_EQ(rec.passCount(), 0u);

    // Window ending at 101 covers tick 100.
    v = 1;
    rec.onBoundary(101);
    ASSERT_EQ(rec.passCount(), 1u);
    EXPECT_EQ(rec.passTick(0), 100);
    EXPECT_EQ(rec.value(0, 0), 1);

    // A wide window takes one pass per crossed multiple, all stamped
    // on the period grid with the sealed end-of-window value.
    v = 9;
    rec.onBoundary(501);
    ASSERT_EQ(rec.passCount(), 5u);
    EXPECT_EQ(rec.passTick(1), 200);
    EXPECT_EQ(rec.passTick(4), 500);
    for (std::size_t p = 1; p < 5; ++p)
        EXPECT_EQ(rec.value(p, 0), 9);
    EXPECT_EQ(rec.nextSampleTick(), 600);
}

TEST(TelemetryRecorderTest, LegacyPeriodicEventSamplesOnTheGrid)
{
    TelemetryRecorder rec(enabledConfig(100));
    std::int64_t v = 0;
    rec.addDelta("core0.instrs", 2, [&v] { return v; });

    EventQueue eq;
    rec.armPeriodic(eq);
    // Counter advances by 3 per tick via a self-rescheduling event.
    struct Adv final : Callee
    {
        std::int64_t *v;
        EventQueue *eq;
        void
        fire(Tick now, std::uint64_t, std::uint64_t) override
        {
            *v += 3;
            if (now < 400)
                eq->schedule(now + 1, *this, 0, 0);
        }
    } adv;
    adv.v = &v;
    adv.eq = &eq;
    eq.schedule(1, adv, 0, 0);
    eq.runUntil(351);

    // Samples at 100, 200, 300; each period saw 100 ticks x 3.
    ASSERT_EQ(rec.passCount(), 3u);
    EXPECT_EQ(rec.passTick(0), 100);
    EXPECT_EQ(rec.passTick(2), 300);
    EXPECT_EQ(rec.value(0, 0), 300);
    EXPECT_EQ(rec.value(1, 0), 300);
    EXPECT_EQ(rec.value(2, 0), 300);
}

TEST(TelemetryRecorderTest, RestartDropsSamplesAndReprimesDeltas)
{
    TelemetryRecorder rec(enabledConfig(100));
    std::int64_t warm = 0;
    rec.addDelta("ch0.reads", 1, [&warm] { return warm; });

    warm = 500;  // warmup progress
    rec.samplePass(100);
    EXPECT_EQ(rec.value(0, 0), 500);

    rec.restart();  // measurement reset at tick 100
    EXPECT_EQ(rec.passCount(), 0u);

    warm = 530;
    rec.samplePass(200);
    // Re-primed at restart: the measured delta excludes warmup and
    // is never negative.
    ASSERT_EQ(rec.passCount(), 1u);
    EXPECT_EQ(rec.value(0, 0), 30);
}

TEST(TelemetryRecorderTest, JsonlExportIsByteExact)
{
    TelemetryRecorder rec(enabledConfig(250));
    std::int64_t a = 3, b = 10;
    rec.addGauge("ch0.readQ", 1, [&a] { return a; });
    rec.addDelta("ch0.reads", 1, [&b] { return b; });

    b = 14;
    rec.samplePass(250);
    a = 0;
    b = 14;
    rec.samplePass(500);

    std::ostringstream os;
    rec.writeJsonl(os);
    EXPECT_EQ(
        os.str(),
        "{\"type\": \"schema\", \"periodTicks\": 250, \"series\": "
        "[{\"id\": 0, \"lane\": 1, \"kind\": \"gauge\", \"name\": "
        "\"ch0.readQ\"}, {\"id\": 1, \"lane\": 1, \"kind\": "
        "\"delta\", \"name\": \"ch0.reads\"}]}\n"
        "{\"t\": 250, \"v\": [3, 4]}\n"
        "{\"t\": 500, \"v\": [0, 0]}\n");
}

TEST(TelemetryRecorderTest, CsvExportIsByteExact)
{
    TelemetryRecorder rec(enabledConfig(250));
    std::int64_t a = 3;
    rec.addGauge("ch0.readQ", 1, [&a] { return a; });
    rec.samplePass(250);
    a = 5;
    rec.samplePass(500);

    std::ostringstream os;
    rec.writeCsv(os);
    EXPECT_EQ(os.str(), "tick,ch0.readQ\n250,3\n500,5\n");
}

TEST(TelemetrySeriesGrammarTest, AcceptsEveryEmittedName)
{
    // One of each family, plus multi-digit indices.
    EXPECT_TRUE(isKnownTelemetrySeries("ch0.readQ"));
    EXPECT_TRUE(isKnownTelemetrySeries("ch3.writeQ"));
    EXPECT_TRUE(isKnownTelemetrySeries("ch12.refreshBacklog"));
    EXPECT_TRUE(isKnownTelemetrySeries("ch0.readQOccInt"));
    EXPECT_TRUE(isKnownTelemetrySeries("ch0.blockedReadsTotal"));
    EXPECT_TRUE(isKnownTelemetrySeries("core0.instrs"));
    EXPECT_TRUE(isKnownTelemetrySeries("core12.runq"));
    EXPECT_TRUE(isKnownTelemetrySeries("sched.quanta"));
    EXPECT_TRUE(isKnownTelemetrySeries("sched.cleanPicks"));
    EXPECT_TRUE(isKnownTelemetrySeries("serving.backlog"));
    EXPECT_TRUE(isKnownTelemetrySeries("serving.drops"));
}

TEST(TelemetrySeriesGrammarTest, RejectsEverythingElse)
{
    EXPECT_FALSE(isKnownTelemetrySeries(""));
    EXPECT_FALSE(isKnownTelemetrySeries("bogus"));
    EXPECT_FALSE(isKnownTelemetrySeries("ch0"));
    EXPECT_FALSE(isKnownTelemetrySeries("ch0."));
    EXPECT_FALSE(isKnownTelemetrySeries("ch.readQ"));
    EXPECT_FALSE(isKnownTelemetrySeries("chx0.readQ"));
    EXPECT_FALSE(isKnownTelemetrySeries("ch0.bogus"));
    EXPECT_FALSE(isKnownTelemetrySeries("core.instrs"));
    EXPECT_FALSE(isKnownTelemetrySeries("core1.readQ"));
    EXPECT_FALSE(isKnownTelemetrySeries("sched.backlog"));
    EXPECT_FALSE(isKnownTelemetrySeries("serving.quanta"));
    // Legacy pid-1 timeline counters are NOT telemetry series.
    EXPECT_FALSE(isKnownTelemetrySeries("ch0 queues"));
}

} // namespace
} // namespace refsched::obs
