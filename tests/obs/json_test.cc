/** @file Unit tests for the observability JSON helpers. */

#include "obs/json.hh"

#include <gtest/gtest.h>

#include "simcore/logging.hh"

namespace refsched::obs
{
namespace
{

TEST(JsonEscapeTest, EscapesSpecials)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(jsonEscape(std::string("a\x01z")), "a\\u0001z");
}

TEST(TicksToUsecTest, ExactIntegerRendering)
{
    EXPECT_EQ(ticksToUsecString(0), "0.000000");
    EXPECT_EQ(ticksToUsecString(1), "0.000001");
    EXPECT_EQ(ticksToUsecString(kPsPerUs), "1.000000");
    EXPECT_EQ(ticksToUsecString(1234567), "1.234567");
    // Beyond double's 53-bit mantissa: integer math stays exact.
    EXPECT_EQ(ticksToUsecString(9007199254740993ULL),
              "9007199254.740993");
}

TEST(JsonParserTest, ParsesScalars)
{
    EXPECT_TRUE(parseJson("null").isNull());
    EXPECT_TRUE(parseJson("true").boolean);
    EXPECT_FALSE(parseJson("false").boolean);
    EXPECT_DOUBLE_EQ(parseJson("42").number, 42.0);
    EXPECT_DOUBLE_EQ(parseJson("-1.5e2").number, -150.0);
    EXPECT_EQ(parseJson("\"hi\\n\"").string, "hi\n");
}

TEST(JsonParserTest, ParsesNested)
{
    const auto v = parseJson(
        R"({"a": [1, 2, {"b": "c"}], "d": {"e": true}})");
    ASSERT_TRUE(v.isObject());
    const auto *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->array.size(), 3u);
    EXPECT_DOUBLE_EQ(a->array[0].number, 1.0);
    const auto *b = a->array[2].find("b");
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->string, "c");
    const auto *d = v.find("d");
    ASSERT_NE(d, nullptr);
    const auto *e = d->find("e");
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->boolean);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParserTest, ParsesUnicodeEscapes)
{
    EXPECT_EQ(parseJson("\"\\u0041\"").string, "A");
    EXPECT_EQ(parseJson("\"\\u00e9\"").string, "\xC3\xA9");
}

TEST(JsonParserTest, RejectsMalformedInput)
{
    EXPECT_THROW(parseJson(""), FatalError);
    EXPECT_THROW(parseJson("{"), FatalError);
    EXPECT_THROW(parseJson("[1,]"), FatalError);
    EXPECT_THROW(parseJson("{\"a\": 1} trailing"), FatalError);
    EXPECT_THROW(parseJson("\"unterminated"), FatalError);
    EXPECT_THROW(parseJson("{1: 2}"), FatalError);
    EXPECT_THROW(parseJson("nul"), FatalError);
}

TEST(JsonParserTest, RoundTripsEscapedStrings)
{
    const std::string original = "line1\nline2\t\"quoted\" \\ done";
    const auto v =
        parseJson("\"" + jsonEscape(original) + "\"");
    EXPECT_EQ(v.string, original);
}

} // namespace
} // namespace refsched::obs
