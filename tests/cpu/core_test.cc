/** @file Tests for the trace-driven out-of-order core model. */

#include "cpu/core.hh"

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "memctrl/memory_controller.hh"
#include "simcore/logging.hh"

namespace refsched::cpu
{
namespace
{

/** An InstructionSource driven by a lambda. */
class ScriptedSource : public InstructionSource
{
  public:
    explicit ScriptedSource(std::function<TraceEntry()> fn,
                            double cpi = 0.5)
        : fn_(std::move(fn)), cpi_(cpi)
    {
    }

    TraceEntry next() override { return fn_(); }
    double baseCpi() const override { return cpi_; }

  private:
    std::function<TraceEntry()> fn_;
    double cpi_;
};

struct Fixture
{
    explicit Fixture(CoreParams params = {},
                     dram::RefreshPolicy policy =
                         dram::RefreshPolicy::NoRefresh)
        : dev(dram::makeDdr3_1600(dram::DensityGb::d32,
                                  milliseconds(64.0), 256)),
          mc(eq, dev, dram::makeRefreshScheduler(policy, dev)),
          buddy(mc.mapping()),
          vm(mc.mapping(), buddy),
          caches(1, smallCaches()),
          core(eq, 0, params, caches, mc, vm),
          task(1, "test", mc.mapping().totalBanks())
    {
    }

    static cache::HierarchyParams
    smallCaches()
    {
        cache::HierarchyParams p;
        p.l1 = cache::CacheParams{1 * kKiB, 2, 64, 2};
        p.l2 = cache::CacheParams{8 * kKiB, 4, 64, 20};
        return p;
    }

    /** Pre-fault [0, bytes) so page faults don't pollute timing. */
    void
    preTouch(std::uint64_t bytes)
    {
        for (Addr a = 0; a < bytes; a += mc.mapping().pageBytes())
            vm.translate(task, a);
    }

    void
    attachAndRun(InstructionSource *src, Tick duration)
    {
        task.source = src;
        core.setTask(&task, duration);
        eq.runUntil(duration);
    }

    EventQueue eq;
    dram::DramDeviceConfig dev;
    memctrl::MemoryController mc;
    os::BuddyAllocator buddy;
    os::VirtualMemory vm;
    cache::CacheHierarchy caches;
    cpu::Core core;
    os::Task task;
};

TEST(CoreTest, CacheResidentCodeRunsAtBaseCpi)
{
    Fixture f;
    f.preTouch(4 * kKiB);
    // gap 99 + 1 memory op to a single hot line = 100 instructions
    // per entry, all cache hits after the first.
    ScriptedSource src([] {
        TraceEntry e;
        e.gap = 99;
        e.vaddr = 0;
        return e;
    });
    const Tick duration = microseconds(20.0);
    f.attachAndRun(&src, duration);

    const double cpiTicks = 0.5 * 312.0;
    const double expected = static_cast<double>(duration) / cpiTicks;
    EXPECT_NEAR(static_cast<double>(f.task.instrsRetired), expected,
                expected * 0.05);
    // At most the single cold miss for the hot line itself.
    EXPECT_LE(f.core.dramReads.value(), 1.0);
}

TEST(CoreTest, IssueWidthBoundsCpi)
{
    CoreParams p;
    p.issueWidth = 2;
    Fixture f(p);
    f.preTouch(4 * kKiB);
    // baseCpi 0.1 would exceed the 2-wide issue limit of 0.5.
    ScriptedSource src(
        [] {
            TraceEntry e;
            e.gap = 99;
            e.vaddr = 0;
            return e;
        },
        0.1);
    const Tick duration = microseconds(10.0);
    f.attachAndRun(&src, duration);
    const double expected = static_cast<double>(duration) / (0.5 * 312.0);
    EXPECT_NEAR(static_cast<double>(f.task.instrsRetired), expected,
                expected * 0.05);
}

TEST(CoreTest, IndependentMissesOverlap)
{
    // Random independent misses: ROB-limited MLP makes throughput
    // much higher than serial latency would allow.
    Fixture fIndep;
    fIndep.preTouch(256 * kKiB);
    std::uint64_t n1 = 0;
    ScriptedSource indep([&n1] {
        TraceEntry e;
        e.gap = 4;
        e.vaddr = (n1++ * 64) % (256 * kKiB);
        return e;
    });
    fIndep.attachAndRun(&indep, microseconds(50.0));

    Fixture fDep;
    fDep.preTouch(256 * kKiB);
    std::uint64_t n2 = 0;
    ScriptedSource dep([&n2] {
        TraceEntry e;
        e.gap = 4;
        e.vaddr = (n2++ * 64) % (256 * kKiB);
        e.dependent = true;
        return e;
    });
    fDep.attachAndRun(&dep, microseconds(50.0));

    // Both make progress; the dependent chain is much slower.
    EXPECT_GT(fDep.task.instrsRetired, 0u);
    EXPECT_GT(fIndep.task.instrsRetired,
              fDep.task.instrsRetired * 3 / 2);
    EXPECT_GT(fDep.core.robStallTicks.value(), 0.0);
}

TEST(CoreTest, PrefetchCoveredStreamsDontStall)
{
    CoreParams blocking;
    CoreParams prefetching;
    prefetching.prefetchSequential = true;

    std::uint64_t instrs[2];
    int idx = 0;
    for (const auto &params : {blocking, prefetching}) {
        Fixture f(params);
        f.preTouch(512 * kKiB);
        std::uint64_t n = 0;
        ScriptedSource src([&n] {
            TraceEntry e;
            e.gap = 20;
            e.vaddr = (n++ * 64) % (512 * kKiB);
            e.sequential = true;
            return e;
        });
        f.attachAndRun(&src, microseconds(50.0));
        instrs[idx++] = f.task.instrsRetired;
    }
    EXPECT_GT(instrs[1], instrs[0]);
}

TEST(CoreTest, MshrLimitBoundsInFlightReads)
{
    CoreParams p;
    p.mshrCount = 2;
    p.prefetchSequential = true;
    Fixture f(p);
    f.preTouch(512 * kKiB);
    std::uint64_t n = 0;
    ScriptedSource src([&n] {
        TraceEntry e;
        e.gap = 0;
        e.vaddr = (n++ * 64) % (512 * kKiB);
        e.sequential = true;
        return e;
    });
    f.attachAndRun(&src, microseconds(20.0));
    // The MC queue never sees more than mshrCount reads from us.
    EXPECT_LE(f.mc.readQueueSize(0), 2u);
    EXPECT_GT(f.core.mshrStallTicks.value(), 0.0);
}

TEST(CoreTest, DirtyEvictionsReachDram)
{
    Fixture f;
    f.preTouch(128 * kKiB);
    std::uint64_t n = 0;
    ScriptedSource src([&n] {
        TraceEntry e;
        e.gap = 2;
        e.vaddr = (n++ * 64) % (128 * kKiB);
        e.isWrite = true;
        return e;
    });
    f.attachAndRun(&src, microseconds(100.0));
    EXPECT_GT(f.core.dramWrites.value(), 0.0);
    // Stores write-validate: no DRAM reads needed.
    EXPECT_EQ(f.core.dramReads.value(), 0.0);
}

TEST(CoreTest, StopsAtRunUntil)
{
    Fixture f;
    f.preTouch(4 * kKiB);
    ScriptedSource src([] {
        TraceEntry e;
        e.gap = 9;
        e.vaddr = 0;
        return e;
    });
    f.task.source = &src;
    f.core.setTask(&f.task, microseconds(5.0));
    f.eq.runUntil(microseconds(5.0));
    const auto atQuantum = f.task.instrsRetired;
    EXPECT_GT(atQuantum, 0u);
    // No more events: the core idles past its quantum.
    f.eq.runUntil(microseconds(50.0));
    EXPECT_EQ(f.task.instrsRetired, atQuantum);
}

TEST(CoreTest, ContextSwitchSwapsAccounting)
{
    Fixture f;
    f.preTouch(4 * kKiB);
    os::Task other(2, "other", f.mc.mapping().totalBanks());
    for (Addr a = 0; a < 4 * kKiB; a += f.mc.mapping().pageBytes())
        f.vm.translate(other, a);

    ScriptedSource src([] {
        TraceEntry e;
        e.gap = 9;
        e.vaddr = 0;
        return e;
    });
    f.task.source = &src;
    other.source = &src;

    f.core.setTask(&f.task, microseconds(5.0));
    f.eq.runUntil(microseconds(5.0));
    f.core.setTask(&other, microseconds(10.0));
    f.eq.runUntil(microseconds(10.0));

    EXPECT_GT(f.task.instrsRetired, 0u);
    EXPECT_GT(other.instrsRetired, 0u);
    EXPECT_EQ(f.core.contextSwitches.value(), 2.0);
    EXPECT_EQ(f.core.currentTask(), &other);
}

TEST(CoreTest, ResumingSameTaskKeepsState)
{
    Fixture f;
    f.preTouch(4 * kKiB);
    ScriptedSource src([] {
        TraceEntry e;
        e.gap = 9;
        e.vaddr = 0;
        return e;
    });
    f.task.source = &src;
    f.core.setTask(&f.task, microseconds(5.0));
    f.eq.runUntil(microseconds(5.0));
    f.core.setTask(&f.task, microseconds(10.0));  // same task again
    f.eq.runUntil(microseconds(10.0));
    // Only the initial switch counted.
    EXPECT_EQ(f.core.contextSwitches.value(), 1.0);
}

TEST(CoreTest, NullTaskIdles)
{
    Fixture f;
    f.core.setTask(nullptr, microseconds(5.0));
    f.eq.runUntil(microseconds(5.0));
    EXPECT_EQ(f.core.instrsIssued.value(), 0.0);
}

TEST(CoreTest, BadParamsAreFatal)
{
    Fixture f;  // reuse its components
    CoreParams p;
    p.issueWidth = 0;
    EXPECT_THROW(cpu::Core(f.eq, 1, p, f.caches, f.mc, f.vm),
                 FatalError);
}

} // namespace
} // namespace refsched::cpu
