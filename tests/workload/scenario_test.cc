/**
 * @file
 * Tests for the dynamic-workload scenario grammar: PhaseSchedule and
 * ScenarioScript parse/serialize round-trips, validation fatals, the
 * random scenario generator's structural guarantees, and the trace
 * generator's macro-phase switching.
 */

#include "workload/scenario.hh"

#include <gtest/gtest.h>

#include "simcore/logging.hh"
#include "simcore/rng.hh"
#include "workload/trace_generator.hh"

namespace refsched::workload
{
namespace
{

TEST(PhaseScheduleTest, ParsesAndSerializesRoundTrip)
{
    const auto sched =
        PhaseSchedule::parse("stream@2000@0.5|mcf@4000@1");
    ASSERT_EQ(sched.phases.size(), 2u);
    EXPECT_EQ(sched.phases[0].profile, "stream");
    EXPECT_EQ(sched.phases[0].instrs, 2000u);
    EXPECT_DOUBLE_EQ(sched.phases[0].footprintScale, 0.5);
    EXPECT_EQ(sched.phases[1].profile, "mcf");
    EXPECT_DOUBLE_EQ(sched.phases[1].footprintScale, 1.0);
    EXPECT_DOUBLE_EQ(sched.maxFootprintScale(), 1.0);

    const auto again = PhaseSchedule::parse(sched.serialize());
    EXPECT_EQ(again.serialize(), sched.serialize());
}

TEST(PhaseScheduleTest, RejectsNonsense)
{
    EXPECT_THROW(PhaseSchedule::parse("notabench@100@1"), FatalError);
    EXPECT_THROW(PhaseSchedule::parse("mcf@0@1"), FatalError);
    EXPECT_THROW(PhaseSchedule::parse("mcf@100@0"), FatalError);
    EXPECT_THROW(PhaseSchedule::parse("mcf@100"), FatalError);
}

TEST(ScenarioScriptTest, ParsesFullGrammar)
{
    const auto script = ScenarioScript::parse(
        "# comment\n"
        "migrate=1\n"
        "reassign=0\n"
        "phase=2:stream@2000@0.5|mcf@2000@1\n"
        "ev=5:kill:3\n"
        "ev=2:spawn:povray:fp=0.25:cpu=1:adv=1\n"
        "ev=4:spawn:mcf:phases=h264ref@1000@0.5|mcf@1000@1\n");
    EXPECT_TRUE(script.migrate);
    EXPECT_FALSE(script.reassignOnChurn);
    ASSERT_EQ(script.initialPhases.size(), 1u);
    EXPECT_EQ(script.initialPhases[0].first, 2);

    // Events are sorted by quantum regardless of file order.
    ASSERT_EQ(script.events.size(), 3u);
    EXPECT_EQ(script.events[0].quantum, 2u);
    EXPECT_EQ(script.events[0].kind, ScenarioEventKind::Spawn);
    EXPECT_EQ(script.events[0].benchmark, "povray");
    EXPECT_DOUBLE_EQ(script.events[0].footprintScale, 0.25);
    EXPECT_EQ(script.events[0].cpu, 1);
    EXPECT_TRUE(script.events[0].adversarial);
    EXPECT_EQ(script.events[1].quantum, 4u);
    EXPECT_EQ(script.events[1].phases.phases.size(), 2u);
    EXPECT_EQ(script.events[2].kind, ScenarioEventKind::Kill);
    EXPECT_EQ(script.events[2].pid, 3);

    EXPECT_TRUE(script.hasAdversarial());
    EXPECT_FALSE(script.empty());
}

TEST(ScenarioScriptTest, SerializeParseRoundTrip)
{
    const auto script = ScenarioScript::parse(
        "migrate=1\n"
        "reassign=1\n"
        "phase=0:stream@2000@0.5|mcf@2000@1\n"
        "ev=1:spawn:stream:fp=0.5\n"
        "ev=3:kill:2\n"
        "ev=4:spawn:povray:adv=1\n");
    const auto again = ScenarioScript::parse(script.serialize());
    EXPECT_EQ(again.serialize(), script.serialize());
}

TEST(ScenarioScriptTest, RejectsInvalidScripts)
{
    // Quantum 0 belongs to the initial placement.
    EXPECT_THROW(ScenarioScript::parse("ev=0:kill:1\n"), FatalError);
    EXPECT_THROW(ScenarioScript::parse("ev=1:spawn:nosuch\n"),
                 FatalError);
    EXPECT_THROW(ScenarioScript::parse("ev=1:kill:0\n"), FatalError);
    EXPECT_THROW(ScenarioScript::parse("ev=1:spawn:mcf:fp=0\n"),
                 FatalError);
    EXPECT_THROW(ScenarioScript::parse("migrate=2\n"), FatalError);
    EXPECT_THROW(ScenarioScript::parse("bogus=1\n"), FatalError);
}

TEST(ScenarioScriptTest, EmptyScriptIsEmpty)
{
    const ScenarioScript script;
    EXPECT_TRUE(script.empty());
    EXPECT_FALSE(script.hasAdversarial());
    const auto parsed = ScenarioScript::parse("# nothing here\n");
    EXPECT_TRUE(parsed.empty());
}

TEST(ScenarioScriptTest, RandomScenariosAreValidAndDeterministic)
{
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
        Rng a(seed), b(seed);
        const auto s1 = randomScenario(a, 8, 12);
        const auto s2 = randomScenario(b, 8, 12);
        EXPECT_EQ(s1.serialize(), s2.serialize())
            << "seed " << seed << " not deterministic";
        // check() already ran inside; re-assert the horizon bound
        // and the kill-target discipline the sampler promises.
        for (const auto &ev : s1.events) {
            EXPECT_GE(ev.quantum, 1u);
            EXPECT_LT(ev.quantum, 12u);
        }
        // Round-trips through the text form.
        EXPECT_EQ(ScenarioScript::parse(s1.serialize()).serialize(),
                  s1.serialize());
    }
}

TEST(ScenarioTraceGeneratorTest, MacroPhasesSwitchProfileAndFootprint)
{
    BenchmarkProfile prof = profileByName("mcf");
    prof.phases = PhaseSchedule::parse("stream@5000@0.5|mcf@5000@1");
    const std::uint64_t fp = 1 << 20;
    SyntheticTraceGenerator gen(prof, 42, fp);

    // Enters phase 0 immediately: half footprint.
    EXPECT_EQ(gen.phaseEpoch(), 0u);
    EXPECT_EQ(gen.footprintBytes(), fp / 2);

    std::uint64_t lastEpoch = 0;
    std::uint64_t instrs = 0;
    while (gen.phaseEpoch() < 4 && instrs < 1000000) {
        const auto e = gen.next();
        instrs += e.gap + 1;
        if (gen.phaseEpoch() != lastEpoch) {
            lastEpoch = gen.phaseEpoch();
            // Cyclic: odd epochs are the full-footprint mcf phase.
            EXPECT_EQ(gen.footprintBytes(),
                      lastEpoch % 2 ? fp : fp / 2);
        }
    }
    EXPECT_GE(gen.phaseEpoch(), 4u) << "phases never advanced";
    // ~5000 instructions per phase, 4 phases: the switch cadence is
    // tied to retired instructions, not call count.
    EXPECT_NEAR(static_cast<double>(instrs), 20000.0, 8000.0);
}

TEST(ScenarioTraceGeneratorTest, UnphasedProfileNeverSwitches)
{
    const BenchmarkProfile prof = profileByName("mcf");
    SyntheticTraceGenerator gen(prof, 42, 1 << 20);
    for (int i = 0; i < 20000; ++i)
        gen.next();
    EXPECT_EQ(gen.phaseEpoch(), 0u);
    EXPECT_EQ(gen.footprintBytes(), 1u << 20);
}

} // namespace
} // namespace refsched::workload
