/** @file Statistical and determinism tests for arrival processes. */

#include "workload/arrival.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "simcore/logging.hh"

namespace refsched::workload
{
namespace
{

/** Interarrival gaps of the first @p n arrivals. */
std::vector<double>
gapsOf(ArrivalProcess &p, int n)
{
    std::vector<double> gaps;
    Tick prev = 0;
    for (int i = 0; i < n; ++i) {
        const Tick t = p.next();
        gaps.push_back(static_cast<double>(t - prev));
        prev = t;
    }
    return gaps;
}

double
meanOf(const std::vector<double> &v)
{
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

/** Coefficient of variation (stddev / mean). */
double
cvOf(const std::vector<double> &v)
{
    const double m = meanOf(v);
    double var = 0.0;
    for (double x : v)
        var += (x - m) * (x - m);
    var /= static_cast<double>(v.size());
    return std::sqrt(var) / m;
}

TEST(ArrivalTest, KindRoundTrip)
{
    EXPECT_EQ(toString(ArrivalKind::Poisson), "poisson");
    EXPECT_EQ(toString(ArrivalKind::Mmpp), "mmpp");
    EXPECT_EQ(arrivalKindFromString("poisson"), ArrivalKind::Poisson);
    EXPECT_EQ(arrivalKindFromString("mmpp"), ArrivalKind::Mmpp);
    EXPECT_THROW(arrivalKindFromString("bursty"), FatalError);
}

TEST(ArrivalTest, ShapeCheckRejectsInfeasibleMmpp)
{
    ArrivalShape s;
    s.kind = ArrivalKind::Mmpp;
    s.burstRatio = 0.5;  // bursts must be faster than base
    EXPECT_THROW(s.check(), FatalError);
    s.burstRatio = 4.0;
    s.burstFraction = 0.3;  // 4 * 0.3 >= 1: quiet rate would go <= 0
    EXPECT_THROW(s.check(), FatalError);
    s.burstFraction = 0.1;
    s.burstDwellArrivals = 0.0;
    EXPECT_THROW(s.check(), FatalError);
    s.burstDwellArrivals = 64.0;
    EXPECT_NO_THROW(s.check());
}

TEST(ArrivalTest, DeterministicAndStrictlyIncreasing)
{
    ArrivalShape shape;
    ArrivalProcess a(shape, 1000.0, 42, 0);
    ArrivalProcess b(shape, 1000.0, 42, 0);
    Tick prev = 0;
    for (int i = 0; i < 5000; ++i) {
        const Tick t = a.next();
        ASSERT_EQ(t, b.next());
        ASSERT_GT(t, prev);
        prev = t;
    }
}

TEST(ArrivalTest, SeedsProduceDifferentSequences)
{
    ArrivalShape shape;
    ArrivalProcess a(shape, 1000.0, 1, 0);
    ArrivalProcess b(shape, 1000.0, 2, 0);
    int same = 0;
    for (int i = 0; i < 200; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(ArrivalTest, PoissonRateWithinTolerance)
{
    ArrivalShape shape;
    const double meanGap = 2000.0;
    ArrivalProcess p(shape, meanGap, 7, 0);
    const int n = 50000;
    const auto gaps = gapsOf(p, n);
    // Empirical mean interarrival within 3% of the offered one.
    EXPECT_NEAR(meanOf(gaps), meanGap, meanGap * 0.03);
}

TEST(ArrivalTest, PoissonInterarrivalCvNearOne)
{
    ArrivalShape shape;
    ArrivalProcess p(shape, 2000.0, 9, 0);
    const auto gaps = gapsOf(p, 50000);
    // Exponential interarrivals: CV = 1 (memoryless baseline).
    EXPECT_NEAR(cvOf(gaps), 1.0, 0.05);
}

TEST(ArrivalTest, MmppRateWithinTolerance)
{
    ArrivalShape shape;
    shape.kind = ArrivalKind::Mmpp;
    const double meanGap = 2000.0;
    ArrivalProcess p(shape, meanGap, 11, 0);
    // The modulating chain needs many burst/quiet cycles for the
    // long-run average to settle; 200k arrivals cover ~300 cycles
    // at the default dwell.
    const auto gaps = gapsOf(p, 200000);
    EXPECT_NEAR(meanOf(gaps), meanGap, meanGap * 0.10);
}

TEST(ArrivalTest, MmppIsBurstier)
{
    ArrivalShape shape;
    shape.kind = ArrivalKind::Mmpp;
    ArrivalProcess p(shape, 2000.0, 13, 0);
    const auto gaps = gapsOf(p, 100000);
    // Rate modulation adds variance on top of the exponential's:
    // the burstiness signature the tail benchmarks rely on.
    EXPECT_GT(cvOf(gaps), 1.15);
}

TEST(ArrivalTest, StartTickOffsetsTheSequence)
{
    ArrivalShape shape;
    ArrivalProcess a(shape, 1000.0, 5, 0);
    ArrivalProcess b(shape, 1000.0, 5, 1000000);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.next() + 1000000, b.next());
}

} // namespace
} // namespace refsched::workload
