/** @file Unit and integration tests for the open-loop serving layer. */

#include "workload/serving.hh"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/experiment.hh"
#include "core/system.hh"
#include "simcore/logging.hh"

namespace refsched::workload
{
namespace
{

TEST(ServingConfigTest, ParseSerializeRoundTrip)
{
    const auto cfg = ServingConfig::parse(
        "arrival=mmpp,load=0.75,pool=4,queue=16,lines=2,"
        "burst-ratio=3.0,burst-frac=0.2,burst-dwell=32");
    EXPECT_TRUE(cfg.enabled);
    EXPECT_EQ(cfg.shape.kind, ArrivalKind::Mmpp);
    EXPECT_DOUBLE_EQ(cfg.loadReqPerUs, 0.75);
    EXPECT_EQ(cfg.poolSize, 4);
    EXPECT_EQ(cfg.queueCapacity, 16);
    EXPECT_EQ(cfg.linesPerRequest, 2);
    EXPECT_DOUBLE_EQ(cfg.shape.burstRatio, 3.0);
    EXPECT_DOUBLE_EQ(cfg.shape.burstFraction, 0.2);
    EXPECT_DOUBLE_EQ(cfg.shape.burstDwellArrivals, 32.0);

    const auto again = ServingConfig::parse(cfg.serialize());
    EXPECT_EQ(again.serialize(), cfg.serialize());
}

TEST(ServingConfigTest, ParseRejectsUnknownKeyAndBadValues)
{
    EXPECT_THROW(ServingConfig::parse("arrival=poisson,rate=1"),
                 FatalError);
    EXPECT_THROW(ServingConfig::parse("load=0"), FatalError);
    EXPECT_THROW(ServingConfig::parse("pool=0"), FatalError);
    EXPECT_THROW(ServingConfig::parse("lines=0"), FatalError);
    EXPECT_THROW(ServingConfig::parse("queue=-1"), FatalError);
}

TEST(ServingConfigTest, MeanGapMatchesOfferedLoad)
{
    ServingConfig cfg;
    cfg.loadReqPerUs = 2.0; // 2 req/us -> 500k ticks (ps) apart
    EXPECT_DOUBLE_EQ(cfg.meanGapTicks(), 500000.0);
}

core::SystemConfig
servingSystemConfig(const std::string &spec, int channels = 1)
{
    core::SystemConfig cfg = core::makeConfig(
        "WL-1", core::Policy::AllBank, dram::DensityGb::d32,
        milliseconds(64.0), /*numCores=*/2, /*tasksPerCore=*/4,
        /*timeScale=*/1024);
    cfg.channels = channels;
    cfg.serving = ServingConfig::parse(spec);
    return cfg;
}

TEST(ServingInjectorTest, OpenLoopAccountingBalances)
{
    core::System sys(servingSystemConfig(
        "arrival=poisson,load=0.5,pool=4,queue=8,lines=4"));
    sys.run(/*warmupQuanta=*/0, /*measureQuanta=*/4);

    auto *inj = sys.servingInjector();
    ASSERT_NE(inj, nullptr);
    EXPECT_GT(inj->arrivals(), 0u);
    EXPECT_GT(inj->completed(), 0u);
    // Every arrival is completed, dropped, or still in flight /
    // queued at cut-off; in-flight is bounded by pool + queue.
    const std::uint64_t unresolved =
        inj->arrivals() - inj->completed() - inj->dropped();
    EXPECT_LE(unresolved, 4u + 8u);
    EXPECT_EQ(inj->latency().samples(), inj->completed());
    EXPECT_EQ(inj->latencyClean().samples()
                  + inj->latencyBlocked().samples(),
              inj->completed());
}

TEST(ServingInjectorTest, OverloadDropsWhenBacklogFull)
{
    // Offered load far above what pool=1 can drain, with a tiny
    // backlog: the open-loop model must shed, not self-throttle.
    core::System sys(servingSystemConfig(
        "arrival=poisson,load=50,pool=1,queue=2,lines=8"));
    sys.run(/*warmupQuanta=*/0, /*measureQuanta=*/2);

    auto *inj = sys.servingInjector();
    ASSERT_NE(inj, nullptr);
    EXPECT_GT(inj->dropped(), 0u);
    // Queueing delay is visible in the end-to-end latency: the mean
    // of all-latency must be at least the mean pure-service time
    // seen by the first (unqueued) request.
    EXPECT_GT(inj->queueDelay().samples(), 0u);
}

TEST(ServingInjectorTest, RunToRunDeterminism)
{
    const auto spec = "arrival=mmpp,load=0.4,pool=4,queue=16,lines=4";
    auto jsonOf = [&] {
        core::System sys(servingSystemConfig(spec));
        const auto m = sys.run(0, 3);
        std::ostringstream os;
        sys.writeStatsJson(os, m);
        std::string text = os.str();
        const auto at = text.find("\"selfProfile\"");
        if (at != std::string::npos)
            text.erase(at, text.find('\n', at) - at);
        return text;
    };
    const std::string a = jsonOf();
    const std::string b = jsonOf();
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("serving.reqLatency"), std::string::npos);
}

TEST(ServingInjectorTest, StatsJsonCarriesServingIdentity)
{
    core::System sys(servingSystemConfig(
        "arrival=poisson,load=0.2,pool=2,queue=4,lines=2"));
    const auto m = sys.run(0, 1);
    std::ostringstream os;
    sys.writeStatsJson(os, m);
    const std::string text = os.str();
    EXPECT_NE(text.find("\"serving\""), std::string::npos);
    EXPECT_NE(text.find("serving.arrivals"), std::string::npos);
    EXPECT_NE(text.find("serving.drops"), std::string::npos);
    EXPECT_NE(text.find("\"p999\""), std::string::npos);
}

} // namespace
} // namespace refsched::workload
