/** @file Tests for trace recording and replay. */

#include "workload/trace_file.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "simcore/logging.hh"
#include "workload/trace_generator.hh"

namespace refsched::workload
{
namespace
{

class TraceFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = (std::filesystem::temp_directory_path()
                 / ("refsched_trace_test_"
                    + std::to_string(::getpid()) + ".bin"))
                    .string();
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
};

BenchmarkProfile
profile()
{
    BenchmarkProfile p;
    p.name = "t";
    p.footprintBytes = 8 * kMiB;
    p.memOpFraction = 0.4;
    p.writeFraction = 0.3;
    p.seqFraction = 0.2;
    p.randomFraction = 0.1;
    p.dependentFraction = 0.5;
    p.hotsetBytes = 64 * kKiB;
    p.baseCpi = 0.8;
    return p;
}

TEST_F(TraceFileTest, RoundTripPreservesEveryField)
{
    SyntheticTraceGenerator gen(profile(), 5, 8 * kMiB);
    const auto recorded = recordTrace(gen, 4000);
    writeTraceFile(path_, recorded, 0.8);

    const auto loaded = readTraceFile(path_);
    EXPECT_DOUBLE_EQ(loaded.baseCpi, 0.8);
    ASSERT_EQ(loaded.entries.size(), recorded.size());
    for (std::size_t i = 0; i < recorded.size(); ++i) {
        ASSERT_EQ(loaded.entries[i].gap, recorded[i].gap) << i;
        ASSERT_EQ(loaded.entries[i].vaddr, recorded[i].vaddr) << i;
        ASSERT_EQ(loaded.entries[i].isWrite, recorded[i].isWrite) << i;
        ASSERT_EQ(loaded.entries[i].sequential,
                  recorded[i].sequential)
            << i;
        ASSERT_EQ(loaded.entries[i].dependent, recorded[i].dependent)
            << i;
    }
}

TEST_F(TraceFileTest, ReplayLoopsForever)
{
    std::vector<cpu::TraceEntry> entries(3);
    entries[0].vaddr = 100;
    entries[1].vaddr = 200;
    entries[2].vaddr = 300;
    ReplaySource src(entries);
    EXPECT_EQ(src.size(), 3u);
    for (int loop = 0; loop < 4; ++loop) {
        EXPECT_EQ(src.next().vaddr, 100u);
        EXPECT_EQ(src.next().vaddr, 200u);
        EXPECT_EQ(src.next().vaddr, 300u);
    }
    EXPECT_EQ(src.loops(), 4u);
}

TEST_F(TraceFileTest, ReplayFromFileMatchesRecording)
{
    SyntheticTraceGenerator gen(profile(), 11, 8 * kMiB);
    const auto recorded = recordTrace(gen, 500);
    writeTraceFile(path_, recorded, 0.8);

    ReplaySource src(path_);
    EXPECT_DOUBLE_EQ(src.baseCpi(), 0.8);
    for (const auto &want : recorded) {
        const auto got = src.next();
        ASSERT_EQ(got.vaddr, want.vaddr);
        ASSERT_EQ(got.gap, want.gap);
    }
}

TEST_F(TraceFileTest, EmptyTraceIsFatal)
{
    EXPECT_THROW(ReplaySource(std::vector<cpu::TraceEntry>{}),
                 FatalError);
}

TEST_F(TraceFileTest, MissingFileIsFatal)
{
    EXPECT_THROW(readTraceFile("/no/such/dir/trace.bin"), FatalError);
}

TEST_F(TraceFileTest, CorruptMagicIsFatal)
{
    std::FILE *f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[64] = "definitely not a trace";
    std::fwrite(junk, sizeof(junk), 1, f);
    std::fclose(f);
    EXPECT_THROW(readTraceFile(path_), FatalError);
}

TEST_F(TraceFileTest, TruncatedFileIsFatal)
{
    SyntheticTraceGenerator gen(profile(), 3, 8 * kMiB);
    writeTraceFile(path_, recordTrace(gen, 100), 0.5);
    // Chop the file short.
    std::filesystem::resize_file(path_, 16 + 50 * 16 + 7);
    EXPECT_THROW(readTraceFile(path_), FatalError);
}

} // namespace
} // namespace refsched::workload
