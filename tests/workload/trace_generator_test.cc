/** @file Tests for synthetic trace generation. */

#include "workload/trace_generator.hh"

#include <gtest/gtest.h>

#include "simcore/logging.hh"

namespace refsched::workload
{
namespace
{

BenchmarkProfile
testProfile()
{
    BenchmarkProfile p;
    p.name = "test";
    p.footprintBytes = 16 * kMiB;
    p.memOpFraction = 0.4;
    p.writeFraction = 0.3;
    p.seqFraction = 0.2;
    p.randomFraction = 0.1;
    p.dependentFraction = 0.5;
    p.hotsetBytes = 64 * kKiB;
    return p;
}

TEST(TraceGeneratorTest, DeterministicForSameSeed)
{
    SyntheticTraceGenerator a(testProfile(), 42, 16 * kMiB);
    SyntheticTraceGenerator b(testProfile(), 42, 16 * kMiB);
    for (int i = 0; i < 5000; ++i) {
        const auto ea = a.next();
        const auto eb = b.next();
        ASSERT_EQ(ea.vaddr, eb.vaddr);
        ASSERT_EQ(ea.gap, eb.gap);
        ASSERT_EQ(ea.isWrite, eb.isWrite);
        ASSERT_EQ(ea.sequential, eb.sequential);
        ASSERT_EQ(ea.dependent, eb.dependent);
    }
}

TEST(TraceGeneratorTest, DifferentSeedsDiffer)
{
    SyntheticTraceGenerator a(testProfile(), 1, 16 * kMiB);
    SyntheticTraceGenerator b(testProfile(), 2, 16 * kMiB);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += (a.next().vaddr == b.next().vaddr);
    EXPECT_LT(same, 900);  // hot-set overlap allows some collisions
}

TEST(TraceGeneratorTest, AddressesStayInFootprint)
{
    SyntheticTraceGenerator g(testProfile(), 7, 16 * kMiB);
    for (int i = 0; i < 20000; ++i)
        ASSERT_LT(g.next().vaddr, 16 * kMiB);
}

TEST(TraceGeneratorTest, MixtureFractionsRealised)
{
    SyntheticTraceGenerator g(testProfile(), 5, 16 * kMiB);
    const int n = 50000;
    int seq = 0, writes = 0, dependent = 0, hot = 0;
    double gapSum = 0.0;
    for (int i = 0; i < n; ++i) {
        const auto e = g.next();
        seq += e.sequential;
        writes += e.isWrite;
        dependent += e.dependent;
        hot += (e.vaddr < 64 * kKiB && !e.sequential);
        gapSum += e.gap;
    }
    EXPECT_NEAR(seq / static_cast<double>(n), 0.2, 0.02);
    EXPECT_NEAR(writes / static_cast<double>(n), 0.3, 0.02);
    // Dependent accesses only come from the random fraction.
    EXPECT_NEAR(dependent / static_cast<double>(n), 0.1 * 0.5, 0.01);
    // Hot accesses (0.7) plus random ones landing under 64 KiB.
    EXPECT_GT(hot / static_cast<double>(n), 0.65);
    // Mean gap = (1-f)/f for f = 0.4.
    EXPECT_NEAR(gapSum / n, 1.5, 0.1);
}

TEST(TraceGeneratorTest, SequentialAccessesAdvanceByStride)
{
    BenchmarkProfile p = testProfile();
    p.seqFraction = 1.0;
    p.randomFraction = 0.0;
    SyntheticTraceGenerator g(p, 3, 16 * kMiB);
    // Four interleaved streams, each advancing by accessBytes.
    Addr last[4];
    for (auto &l : last)
        l = 0;
    for (int i = 0; i < 4; ++i)
        last[i] = g.next().vaddr;
    for (int round = 0; round < 100; ++round) {
        for (int s = 0; s < 4; ++s) {
            const Addr v = g.next().vaddr;
            EXPECT_EQ(v, last[s] + p.accessBytes);
            last[s] = v;
        }
    }
}

TEST(TraceGeneratorTest, FootprintClampedToHotset)
{
    // A pathological footprint smaller than the hot set is clamped.
    SyntheticTraceGenerator g(testProfile(), 3, 1 * kKiB);
    EXPECT_EQ(g.footprintBytes(), 64 * kKiB);
}

TEST(TraceGeneratorTest, PhasedProfilesAlternateIntensity)
{
    BenchmarkProfile p = testProfile();
    p.memPhaseInstrs = 50000;
    p.computePhaseInstrs = 50000;
    SyntheticTraceGenerator g(p, 13, 16 * kMiB);

    // Consume entries phase by phase and classify each window.
    int memWindows = 0, computeWindows = 0;
    bool lastPhase = g.inMemPhase();
    std::uint64_t nonHot = 0, total = 0;
    for (int i = 0; i < 400000 / 3; ++i) {
        const auto e = g.next();
        ++total;
        nonHot += (e.sequential || e.vaddr >= p.hotsetBytes);
        if (g.inMemPhase() != lastPhase) {
            // Phase boundary: check the finished window's character.
            const double frac = static_cast<double>(nonHot)
                / static_cast<double>(total);
            if (lastPhase) {
                EXPECT_GT(frac, 0.1);  // mem phase: misses flow
                ++memWindows;
            } else {
                EXPECT_LT(frac, 0.02);  // compute phase: hot only
                ++computeWindows;
            }
            lastPhase = g.inMemPhase();
            nonHot = total = 0;
        }
    }
    EXPECT_GT(memWindows, 2);
    EXPECT_GT(computeWindows, 2);
}

TEST(TraceGeneratorTest, UnphasedProfileStaysInMemPhase)
{
    SyntheticTraceGenerator g(testProfile(), 13, 16 * kMiB);
    for (int i = 0; i < 1000; ++i)
        g.next();
    EXPECT_TRUE(g.inMemPhase());
}

TEST(TraceGeneratorTest, MismatchedPhaseConfigIsFatal)
{
    BenchmarkProfile p = testProfile();
    p.memPhaseInstrs = 1000;  // compute side left zero
    EXPECT_THROW((SyntheticTraceGenerator{p, 1, 16 * kMiB}),
                 FatalError);
}

TEST(TraceGeneratorTest, StreamCursorsWrapAround)
{
    BenchmarkProfile p = testProfile();
    p.seqFraction = 1.0;
    p.randomFraction = 0.0;
    p.hotsetBytes = 4 * kKiB;
    const std::uint64_t fp = 64 * kKiB;
    SyntheticTraceGenerator g(p, 9, fp);
    for (int i = 0; i < 100000; ++i)
        ASSERT_LT(g.next().vaddr, fp);
}

} // namespace
} // namespace refsched::workload
