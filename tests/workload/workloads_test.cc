/** @file Tests for the Table 2 workload definitions. */

#include "workload/workloads.hh"

#include <gtest/gtest.h>

#include <algorithm>

#include "simcore/logging.hh"

namespace refsched::workload
{
namespace
{

int
countOf(const std::vector<std::string> &tasks, const std::string &name)
{
    return static_cast<int>(
        std::count(tasks.begin(), tasks.end(), name));
}

TEST(WorkloadsTest, TenWorkloadsDefined)
{
    const auto &wls = table2Workloads();
    ASSERT_EQ(wls.size(), 10u);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(wls[static_cast<std::size_t>(i)].name,
                  "WL-" + std::to_string(i + 1));
    }
}

TEST(WorkloadsTest, EveryMixSumsToEightTasks)
{
    for (const auto &wl : table2Workloads())
        EXPECT_EQ(wl.baseTaskCount(), 8) << wl.name;
}

TEST(WorkloadsTest, Table2Composition)
{
    const auto wl1 = workloadByName("WL-1").taskList(8);
    EXPECT_EQ(countOf(wl1, "mcf"), 8);

    const auto wl7 = workloadByName("WL-7").taskList(8);
    EXPECT_EQ(countOf(wl7, "stream"), 4);
    EXPECT_EQ(countOf(wl7, "h264ref"), 4);

    const auto wl10 = workloadByName("WL-10").taskList(8);
    EXPECT_EQ(countOf(wl10, "mcf"), 4);
    EXPECT_EQ(countOf(wl10, "bwaves"), 2);
    EXPECT_EQ(countOf(wl10, "povray"), 2);
}

TEST(WorkloadsTest, EveryBenchmarkHasAProfile)
{
    for (const auto &wl : table2Workloads()) {
        for (const auto &[bench, count] : wl.mix) {
            EXPECT_NO_THROW(profileByName(bench))
                << wl.name << " references " << bench;
            EXPECT_GT(count, 0);
        }
    }
}

TEST(WorkloadsTest, ScalesToQuadCore)
{
    // Fig. 15: quad-core 1:4 runs 16 tasks with doubled counts.
    const auto wl10 = workloadByName("WL-10").taskList(16);
    EXPECT_EQ(wl10.size(), 16u);
    EXPECT_EQ(countOf(wl10, "mcf"), 8);
    EXPECT_EQ(countOf(wl10, "bwaves"), 4);
    EXPECT_EQ(countOf(wl10, "povray"), 4);
}

TEST(WorkloadsTest, ScalesDownProportionally)
{
    // Dual-core 1:2 runs 4 tasks.
    const auto wl6 = workloadByName("WL-6").taskList(4);
    EXPECT_EQ(wl6.size(), 4u);
    EXPECT_EQ(countOf(wl6, "mcf"), 2);
    EXPECT_EQ(countOf(wl6, "povray"), 2);

    const auto wl10 = workloadByName("WL-10").taskList(4);
    EXPECT_EQ(wl10.size(), 4u);
    EXPECT_GE(countOf(wl10, "mcf"), 2);
    EXPECT_GE(countOf(wl10, "bwaves"), 1);
}

TEST(WorkloadsTest, UnknownWorkloadIsFatal)
{
    EXPECT_THROW(workloadByName("WL-99"), FatalError);
}

TEST(WorkloadsTest, MpkiLabelsMatchTable2)
{
    EXPECT_EQ(workloadByName("WL-1").mpkiLabel, "H");
    EXPECT_EQ(workloadByName("WL-5").mpkiLabel, "M");
    EXPECT_EQ(workloadByName("WL-8").mpkiLabel, "H + L");
}

} // namespace
} // namespace refsched::workload
