/** @file Tests for benchmark profiles and MPKI classification. */

#include "workload/profile.hh"

#include <gtest/gtest.h>

#include "simcore/logging.hh"

namespace refsched::workload
{
namespace
{

TEST(ProfileTest, BuiltinsExistAndValidate)
{
    const auto names = builtinProfileNames();
    EXPECT_GE(names.size(), 7u);
    for (const auto &n : names) {
        const auto &p = profileByName(n);
        EXPECT_EQ(p.name, n);
        p.check();  // must not throw
    }
}

TEST(ProfileTest, UnknownNameIsFatal)
{
    EXPECT_THROW(profileByName("no-such-benchmark"), FatalError);
}

TEST(ProfileTest, ClassifyThresholds)
{
    EXPECT_EQ(BenchmarkProfile::classify(0.0), MpkiClass::Low);
    EXPECT_EQ(BenchmarkProfile::classify(0.99), MpkiClass::Low);
    EXPECT_EQ(BenchmarkProfile::classify(1.0), MpkiClass::Medium);
    EXPECT_EQ(BenchmarkProfile::classify(10.0), MpkiClass::Medium);
    EXPECT_EQ(BenchmarkProfile::classify(10.01), MpkiClass::High);
}

TEST(ProfileTest, ExpectedMpkiMatchesPaperClass)
{
    // The analytic MPKI of every built-in profile must land in the
    // class Table 2 assigns to that benchmark.
    for (const auto &n : builtinProfileNames()) {
        const auto &p = profileByName(n);
        EXPECT_EQ(BenchmarkProfile::classify(p.expectedMpki()),
                  p.paperClass)
            << n << " expectedMpki=" << p.expectedMpki();
    }
}

TEST(ProfileTest, PaperFootprints)
{
    // Section 5.4.1 gives these footprints explicitly.
    EXPECT_EQ(profileByName("mcf").footprintBytes,
              static_cast<std::uint64_t>(1.7 * 1024) * kMiB);
    EXPECT_EQ(profileByName("bwaves").footprintBytes, 920 * kMiB);
    EXPECT_EQ(profileByName("stream").footprintBytes, 800 * kMiB);
    EXPECT_EQ(profileByName("GemsFDTD").footprintBytes, 850 * kMiB);
}

TEST(ProfileTest, McfIsTheMostIntense)
{
    // Section 6.2: mcf has "a very high MPKI, compared to the other
    // benchmarks categorized as high".
    const double mcf = profileByName("mcf").expectedMpki();
    for (const auto &n : builtinProfileNames()) {
        if (n != "mcf") {
            EXPECT_GT(mcf, profileByName(n).expectedMpki()) << n;
        }
    }
}

TEST(ProfileTest, CheckRejectsNonsense)
{
    BenchmarkProfile p = profileByName("mcf");
    p.memOpFraction = 1.5;
    EXPECT_THROW(p.check(), FatalError);

    p = profileByName("mcf");
    p.seqFraction = 0.9;
    p.randomFraction = 0.2;
    EXPECT_THROW(p.check(), FatalError);

    p = profileByName("mcf");
    p.hotsetBytes = p.footprintBytes + 1;
    EXPECT_THROW(p.check(), FatalError);

    p = profileByName("mcf");
    p.accessBytes = 12;
    EXPECT_THROW(p.check(), FatalError);

    p = profileByName("mcf");
    p.baseCpi = 0.0;
    EXPECT_THROW(p.check(), FatalError);
}

TEST(ProfileTest, ToStringNames)
{
    EXPECT_EQ(toString(MpkiClass::Low), "L");
    EXPECT_EQ(toString(MpkiClass::Medium), "M");
    EXPECT_EQ(toString(MpkiClass::High), "H");
}

} // namespace
} // namespace refsched::workload
