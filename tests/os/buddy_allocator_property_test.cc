/**
 * @file
 * Property/fuzz test: the bank-aware buddy allocator against a
 * reference free-list model.  Random interleavings of page and block
 * allocation, bank-constrained and fallback, with frees mixed in,
 * must never lose a frame, hand out a frame twice, or violate a
 * task's possibleBanksVector confinement.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "dram/address_mapping.hh"
#include "os/buddy_allocator.hh"
#include "os/task.hh"
#include "simcore/event_queue.hh"
#include "simcore/rng.hh"
#include "validate/os_auditor.hh"

namespace refsched::os
{
namespace
{

dram::DramOrganization
smallOrg()
{
    dram::DramOrganization org;
    org.channels = 1;
    org.ranksPerChannel = 2;
    org.banksPerRank = 4;
    org.rowsPerBank = 32;  // 8 banks x 32 frames = 256 frames
    return org;
}

/**
 * Reference model: the exact set of allocated frames (pages and the
 * frames inside allocated blocks).  The allocator must agree with it
 * on conservation after every operation.
 */
class Fuzzer
{
  public:
    explicit Fuzzer(std::uint64_t seed)
        : mapping_(smallOrg()), buddy_(mapping_), rng_(seed)
    {
        const int numBanks = mapping_.totalBanks();
        for (int i = 0; i < 4; ++i) {
            tasks_.push_back(std::make_unique<Task>(
                static_cast<Pid>(i + 1), "fuzz", numBanks));
        }
        // Distinct overlapping masks: task i may use banks
        // [2i, 2i+4) mod numBanks.
        for (int i = 0; i < 4; ++i) {
            auto &t = *tasks_[static_cast<std::size_t>(i)];
            for (int g = 0; g < numBanks; ++g)
                t.allowBank(g, false);
            for (int k = 0; k < 4; ++k)
                t.allowBank((2 * i + k) % numBanks, true);
        }
    }

    void
    run(int ops)
    {
        for (int op = 0; op < ops; ++op) {
            mutate();
            checkConservation();
            if (op % 128 == 0)
                checkStructure();
        }
        teardown();
    }

  private:
    void
    mutate()
    {
        const auto roll = rng_.below(100);
        if (roll < 40)
            allocOnePage();
        else if (roll < 60)
            allocAnyBank();
        else if (roll < 80)
            freeOnePage();
        else if (roll < 90)
            allocOneBlock();
        else
            freeOneBlock();
    }

    void
    claimFrames(std::uint64_t pfn, std::uint64_t count)
    {
        for (std::uint64_t f = pfn; f < pfn + count; ++f) {
            ASSERT_LT(f, buddy_.totalFrames());
            ASSERT_TRUE(allocated_.insert(f).second)
                << "frame " << f << " handed out twice";
        }
    }

    void
    allocOnePage()
    {
        auto &t = *tasks_[rng_.below(tasks_.size())];
        const auto pfn = buddy_.allocPage(t);
        if (!pfn)
            return;  // permitted banks exhausted: legal
        claimFrames(*pfn, 1);
        EXPECT_TRUE(t.allowsBank(mapping_.bankOfFrame(*pfn)))
            << "bank-mask confinement violated: pfn " << *pfn
            << " lands in bank " << mapping_.bankOfFrame(*pfn);
        pages_.push_back(*pfn);
    }

    void
    allocAnyBank()
    {
        Task *t = rng_.below(4) == 0
            ? nullptr
            : tasks_[rng_.below(tasks_.size())].get();
        const auto pfn = buddy_.allocPageAnyBank(t);
        if (!pfn)
            return;  // memory genuinely full
        claimFrames(*pfn, 1);
        pages_.push_back(*pfn);
    }

    void
    freeOnePage()
    {
        if (pages_.empty())
            return;
        const auto pick = rng_.below(pages_.size());
        const auto pfn = pages_[pick];
        pages_.erase(pages_.begin() + static_cast<long>(pick));
        buddy_.freePage(pfn);
        ASSERT_EQ(allocated_.erase(pfn), 1u);
    }

    void
    allocOneBlock()
    {
        const int order = static_cast<int>(rng_.below(5));
        const auto pfn = buddy_.allocBlock(order);
        if (!pfn)
            return;  // no block of that order left
        EXPECT_EQ(*pfn % (1ULL << order), 0u) << "misaligned block";
        claimFrames(*pfn, 1ULL << order);
        blocks_.emplace_back(*pfn, order);
    }

    void
    freeOneBlock()
    {
        if (blocks_.empty())
            return;
        const auto pick = rng_.below(blocks_.size());
        const auto [pfn, order] = blocks_[pick];
        blocks_.erase(blocks_.begin() + static_cast<long>(pick));
        buddy_.freeBlock(pfn, order);
        for (std::uint64_t f = pfn; f < pfn + (1ULL << order); ++f)
            ASSERT_EQ(allocated_.erase(f), 1u);
    }

    void
    checkConservation()
    {
        ASSERT_EQ(allocated_.size() + buddy_.freeFrames(),
                  buddy_.totalFrames())
            << "frames lost or duplicated";
    }

    void
    checkStructure()
    {
        std::string why;
        ASSERT_TRUE(buddy_.checkInvariants(&why)) << why;
    }

    /** Free everything; the allocator must return to pristine. */
    void
    teardown()
    {
        for (const auto pfn : pages_)
            buddy_.freePage(pfn);
        for (const auto &[pfn, order] : blocks_)
            buddy_.freeBlock(pfn, order);
        pages_.clear();
        blocks_.clear();
        allocated_.clear();
        buddy_.drainBankCaches();
        EXPECT_EQ(buddy_.freeFrames(), buddy_.totalFrames());
        checkStructure();
    }

    dram::AddressMapping mapping_;
    BuddyAllocator buddy_;
    Rng rng_;
    std::vector<std::unique_ptr<Task>> tasks_;
    std::set<std::uint64_t> allocated_;
    std::vector<std::uint64_t> pages_;
    std::vector<std::pair<std::uint64_t, int>> blocks_;
};

TEST(BuddyAllocatorPropertyTest, RandomOpsAgainstReferenceModel)
{
    for (std::uint64_t seed : {3u, 77u, 0xbeefu}) {
        SCOPED_TRACE(seed);
        Fuzzer fuzzer(seed);
        fuzzer.run(/*ops=*/4000);
    }
}

/** Drive the allocator to exhaustion and back: every frame must be
 *  allocatable exactly once, and all reusable after a full free. */
TEST(BuddyAllocatorPropertyTest, ExhaustionRoundTrip)
{
    dram::AddressMapping mapping(smallOrg());
    BuddyAllocator buddy(mapping);
    Task task(1, "hog", mapping.totalBanks());

    std::set<std::uint64_t> got;
    while (auto pfn = buddy.allocPage(task))
        EXPECT_TRUE(got.insert(*pfn).second);
    EXPECT_EQ(got.size(), buddy.totalFrames());
    EXPECT_EQ(buddy.freeFrames(), 0u);
    EXPECT_FALSE(buddy.allocPageAnyBank(&task).has_value());

    for (const auto pfn : got)
        buddy.freePage(pfn);
    buddy.drainBankCaches();
    EXPECT_EQ(buddy.freeFrames(), buddy.totalFrames());
    std::string why;
    EXPECT_TRUE(buddy.checkInvariants(&why)) << why;
}

/**
 * Soft-partition audit: allocate a task's single permitted bank to
 * exhaustion, then spill.  The spill must be recorded on the task
 * (bank footprint + fallbackAllocs, maintained by the allocator at
 * the allocation site) and judged justified by the OsAuditor's
 * per-bank occupancy model -- a spill while the permitted bank still
 * had free frames would be flagged as a silent partition violation.
 */
TEST(BuddyAllocatorPropertyTest, SingleBankExhaustionSpillIsRecorded)
{
    dram::AddressMapping mapping(smallOrg());
    BuddyAllocator buddy(mapping);
    EventQueue eq;
    validate::OsAuditor aud(mapping, &buddy, false, 64, true);
    buddy.setProbe(&aud, &eq);

    constexpr int kBank = 2;
    Task task(1, "hog", mapping.totalBanks());
    for (int g = 0; g < mapping.totalBanks(); ++g)
        task.allowBank(g, g == kBank);

    std::uint64_t bankFrames = 0;
    for (std::uint64_t pfn = 0; pfn < mapping.totalFrames(); ++pfn)
        if (mapping.bankOfFrame(pfn) == kBank)
            ++bankFrames;
    ASSERT_GT(bankFrames, 0u);

    std::uint64_t allocated = 0;
    while (auto pfn = buddy.allocPage(task)) {
        EXPECT_EQ(mapping.bankOfFrame(*pfn), kBank);
        ++allocated;
        ASSERT_LE(allocated, buddy.totalFrames());
    }
    // Exhaustion means exactly the bank's capacity, no early nullopt.
    EXPECT_EQ(allocated, bankFrames);
    EXPECT_EQ(task.residentPagesPerBank[kBank], bankFrames);
    EXPECT_EQ(task.fallbackAllocs, 0u);

    const auto spill = buddy.allocPageAnyBank(&task);
    ASSERT_TRUE(spill.has_value());
    const int spillBank = mapping.bankOfFrame(*spill);
    EXPECT_NE(spillBank, kBank);
    EXPECT_EQ(task.fallbackAllocs, 1u);
    EXPECT_EQ(
        task.residentPagesPerBank[static_cast<std::size_t>(spillBank)],
        1u);
    EXPECT_EQ(buddy.fallbackAllocations(), 1u);

    aud.finalize(0);
    EXPECT_EQ(aud.violationCount(), 0u)
        << (aud.violationCount() ? aud.violations().front().message
                                 : "");
}

} // namespace
} // namespace refsched::os
