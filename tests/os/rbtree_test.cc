/** @file Property and unit tests for the red-black tree. */

#include "os/rbtree.hh"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "simcore/rng.hh"

namespace refsched::os
{
namespace
{

using Tree = RbTree<int, int>;

TEST(RbTreeTest, EmptyTree)
{
    Tree t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.leftmost(), nullptr);
    EXPECT_EQ(t.rightmost(), nullptr);
    EXPECT_EQ(t.find(5), nullptr);
    EXPECT_TRUE(t.validate());
}

TEST(RbTreeTest, SingleInsert)
{
    Tree t;
    auto *n = t.insert(10, 100);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.leftmost(), n);
    EXPECT_EQ(t.rightmost(), n);
    EXPECT_EQ(n->key, 10);
    EXPECT_EQ(n->value, 100);
    EXPECT_TRUE(t.validate());
    t.erase(n);
    EXPECT_TRUE(t.empty());
    EXPECT_TRUE(t.validate());
}

TEST(RbTreeTest, InOrderTraversal)
{
    Tree t;
    for (int k : {5, 3, 9, 1, 7, 11, 4})
        t.insert(k, k * 10);
    std::vector<int> keys;
    for (auto *n = t.leftmost(); n; n = t.next(n))
        keys.push_back(n->key);
    EXPECT_EQ(keys, (std::vector<int>{1, 3, 4, 5, 7, 9, 11}));
    EXPECT_TRUE(t.validate());
}

TEST(RbTreeTest, DuplicateKeysKeepInsertionOrder)
{
    Tree t;
    t.insert(5, 1);
    t.insert(5, 2);
    t.insert(5, 3);
    std::vector<int> values;
    for (auto *n = t.leftmost(); n; n = t.next(n))
        values.push_back(n->value);
    EXPECT_EQ(values, (std::vector<int>{1, 2, 3}));
}

TEST(RbTreeTest, FindReturnsLeftmostMatch)
{
    Tree t;
    t.insert(3, 30);
    auto *first = t.insert(5, 50);
    t.insert(5, 51);
    t.insert(8, 80);
    EXPECT_EQ(t.find(5), first);
    EXPECT_EQ(t.find(4), nullptr);
    EXPECT_EQ(t.find(8)->value, 80);
}

TEST(RbTreeTest, EraseMiddleNode)
{
    Tree t;
    std::vector<Tree::Node *> nodes;
    for (int k : {4, 2, 6, 1, 3, 5, 7})
        nodes.push_back(t.insert(k, 0));
    t.erase(nodes[0]);  // erase the root-ish key 4
    std::vector<int> keys;
    for (auto *n = t.leftmost(); n; n = t.next(n))
        keys.push_back(n->key);
    EXPECT_EQ(keys, (std::vector<int>{1, 2, 3, 5, 6, 7}));
    EXPECT_TRUE(t.validate());
}

TEST(RbTreeTest, ClearEmptiesTree)
{
    Tree t;
    for (int i = 0; i < 100; ++i)
        t.insert(i, i);
    t.clear();
    EXPECT_TRUE(t.empty());
    EXPECT_TRUE(t.validate());
    t.insert(1, 1);  // usable after clear
    EXPECT_EQ(t.size(), 1u);
}

TEST(RbTreeTest, AscendingInsertStaysBalanced)
{
    // The classic BST killer: monotone insertion.
    Tree t;
    for (int i = 0; i < 4096; ++i) {
        t.insert(i, i);
        if (i % 256 == 0) {
            std::string why;
            ASSERT_TRUE(t.validate(&why)) << why << " at " << i;
        }
    }
    std::string why;
    EXPECT_TRUE(t.validate(&why)) << why;
    EXPECT_EQ(t.leftmost()->key, 0);
    EXPECT_EQ(t.rightmost()->key, 4095);
}

TEST(RbTreeTest, CustomComparator)
{
    RbTree<int, int, std::greater<int>> t;
    for (int k : {1, 5, 3})
        t.insert(k, 0);
    EXPECT_EQ(t.leftmost()->key, 5);  // descending order
    EXPECT_EQ(t.rightmost()->key, 1);
}

/** Randomised differential test against std::multimap. */
class RbTreeOracleTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RbTreeOracleTest, MatchesMultimapUnderRandomOps)
{
    Rng rng(GetParam());
    Tree tree;
    // Oracle: key -> multiset of values, plus the node handles so we
    // can erase specific nodes.
    std::multimap<int, int> oracle;
    std::vector<Tree::Node *> live;

    for (int op = 0; op < 5000; ++op) {
        const bool doInsert =
            live.empty() || rng.bernoulli(0.6);
        if (doInsert) {
            const int key = static_cast<int>(rng.below(200));
            const int val = op;
            live.push_back(tree.insert(key, val));
            oracle.emplace(key, val);
        } else {
            const std::size_t pick =
                static_cast<std::size_t>(rng.below(live.size()));
            Tree::Node *victim = live[pick];
            // Remove the matching (key, value) pair from the oracle.
            auto range = oracle.equal_range(victim->key);
            for (auto it = range.first; it != range.second; ++it) {
                if (it->second == victim->value) {
                    oracle.erase(it);
                    break;
                }
            }
            tree.erase(victim);
            live[pick] = live.back();
            live.pop_back();
        }

        ASSERT_EQ(tree.size(), oracle.size());
        if (op % 97 == 0) {
            std::string why;
            ASSERT_TRUE(tree.validate(&why)) << why << " op " << op;
            // Full in-order comparison of keys.
            auto oit = oracle.begin();
            for (auto *n = tree.leftmost(); n; n = tree.next(n), ++oit) {
                ASSERT_NE(oit, oracle.end());
                ASSERT_EQ(n->key, oit->first);
            }
            ASSERT_EQ(oit, oracle.end());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RbTreeOracleTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 1337u));

} // namespace
} // namespace refsched::os
