/** @file Unit tests for the Task value type. */

#include "os/task.hh"

#include <gtest/gtest.h>

#include "simcore/logging.hh"

namespace refsched::os
{
namespace
{

TEST(TaskTest, ConstructionDefaults)
{
    Task t(7, "mcf", 16);
    EXPECT_EQ(t.pid(), 7);
    EXPECT_EQ(t.name(), "mcf");
    EXPECT_EQ(t.state, TaskState::Runnable);
    EXPECT_EQ(t.vruntime, 0u);
    EXPECT_EQ(t.weight, Task::kDefaultWeight);
    EXPECT_EQ(t.allowedBankCount(), 16);  // all banks by default
    EXPECT_EQ(t.lastAllocedBank, -1);
    EXPECT_EQ(t.residentPages(), 0u);
}

TEST(TaskTest, BankMaskHelpers)
{
    Task t(1, "t", 8);
    t.allowBank(3, false);
    t.allowBank(5, false);
    EXPECT_EQ(t.allowedBankCount(), 6);
    EXPECT_FALSE(t.allowsBank(3));
    EXPECT_TRUE(t.allowsBank(4));

    t.allowAllBanks();
    EXPECT_EQ(t.allowedBankCount(), 8);
    EXPECT_TRUE(t.allowsBank(3));
}

TEST(TaskTest, ResidentFractions)
{
    Task t(1, "t", 4);
    EXPECT_DOUBLE_EQ(t.residentFractionIn(0), 0.0);
    t.residentPagesPerBank[0] = 30;
    t.residentPagesPerBank[2] = 10;
    EXPECT_EQ(t.residentPages(), 40u);
    EXPECT_DOUBLE_EQ(t.residentFractionIn(0), 0.75);
    EXPECT_DOUBLE_EQ(t.residentFractionIn(2), 0.25);
    EXPECT_DOUBLE_EQ(t.residentFractionIn(1), 0.0);
}

TEST(TaskTest, IpcComputation)
{
    Task t(1, "t", 4);
    EXPECT_DOUBLE_EQ(t.ipc(312), 0.0);  // never scheduled
    t.instrsRetired = 1000;
    t.scheduledTicks = 312 * 2000;  // 2000 CPU cycles
    EXPECT_DOUBLE_EQ(t.ipc(312), 0.5);
}

TEST(TaskTest, ResetAccountingKeepsIdentityAndMemory)
{
    Task t(1, "t", 4);
    t.instrsRetired = 5;
    t.memOps = 3;
    t.scheduledTicks = 100;
    t.quantaRun = 2;
    t.pageFaults = 4;
    t.fallbackAllocs = 1;
    t.dramReads = 9;
    t.vruntime = 777;
    t.residentPagesPerBank[1] = 12;

    t.resetAccounting();
    EXPECT_EQ(t.instrsRetired, 0u);
    EXPECT_EQ(t.memOps, 0u);
    EXPECT_EQ(t.scheduledTicks, 0u);
    EXPECT_EQ(t.quantaRun, 0u);
    EXPECT_EQ(t.pageFaults, 0u);
    EXPECT_EQ(t.fallbackAllocs, 0u);
    EXPECT_EQ(t.dramReads, 0u);
    // Identity and memory state survive a stats reset.
    EXPECT_EQ(t.vruntime, 777u);
    EXPECT_EQ(t.residentPagesPerBank[1], 12u);
}

TEST(TaskTest, ZeroBanksIsABug)
{
    EXPECT_THROW(Task(1, "t", 0), PanicError);
}

} // namespace
} // namespace refsched::os
