/**
 * @file
 * Differential tests: CfsRunQueue against a sorted-vector reference
 * model, and the refresh-aware pick (Algorithm 3) against a direct
 * re-derivation of its contract, with eta_thresh driven through its
 * boundary values (1, queue size, beyond).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "os/cfs_runqueue.hh"
#include "os/scheduler.hh"
#include "os/task.hh"
#include "simcore/event_queue.hh"
#include "simcore/rng.hh"

namespace refsched::os
{
namespace
{

constexpr int kNumBanks = 4;

/** Reference ordering: (vruntime, pid), exactly VruntimeKey. */
bool
refBefore(const Task *a, const Task *b)
{
    if (a->vruntime != b->vruntime)
        return a->vruntime < b->vruntime;
    return a->pid() < b->pid();
}

TEST(CfsRunQueuePropertyTest, RandomChurnMatchesSortedVector)
{
    Rng rng(99);
    CfsRunQueue rq;
    std::vector<std::unique_ptr<Task>> owned;
    std::vector<Task *> ref;  // reference model, kept sorted
    Pid nextPid = 1;

    for (int op = 0; op < 4000; ++op) {
        if (rng.below(100) < 55 || ref.empty()) {
            auto t = std::make_unique<Task>(nextPid++, "t", kNumBanks);
            // Small vruntime range forces plenty of ties, which the
            // pid tie-break must resolve identically in both models.
            t->vruntime = rng.below(16);
            rq.enqueue(t.get());
            ref.insert(std::upper_bound(ref.begin(), ref.end(),
                                        t.get(), refBefore),
                       t.get());
            owned.push_back(std::move(t));
        } else {
            const auto pick = rng.below(ref.size());
            Task *victim = ref[pick];
            EXPECT_TRUE(rq.contains(victim));
            rq.dequeue(victim);
            EXPECT_FALSE(rq.contains(victim));
            ref.erase(ref.begin() + static_cast<long>(pick));
        }

        ASSERT_EQ(rq.size(), ref.size());
        ASSERT_EQ(rq.empty(), ref.empty());
        if (!ref.empty()) {
            ASSERT_EQ(rq.first(), ref.front());
            ASSERT_EQ(rq.minVruntime(),
                      std::optional<Tick>(ref.front()->vruntime));
        }

        // The bounded in-order walk must be an exact prefix of the
        // reference order, stopping exactly where asked.
        const std::size_t bound = rng.below(ref.size() + 2);
        std::vector<Task *> walked;
        rq.forEachInOrder([&](Task *t) {
            walked.push_back(t);
            return walked.size() < bound;
        });
        const std::size_t expect =
            ref.empty() ? 0 : std::min(std::max<std::size_t>(bound, 1),
                                       ref.size());
        ASSERT_EQ(walked.size(), expect);
        for (std::size_t i = 0; i < walked.size(); ++i)
            ASSERT_EQ(walked[i], ref[i]) << "walk position " << i;

        if (op % 256 == 0) {
            std::string why;
            ASSERT_TRUE(rq.validate(&why)) << why;
        }
    }
}

/** CpuContext stub; pickNextTask never reaches setTask. */
class NullCpu : public CpuContext
{
  public:
    void setTask(Task *, Tick) override {}
};

/**
 * Re-derivation of the Algorithm 3 contract (the documented
 * semantics, independently restated): walk the (vruntime, pid) order;
 * the first task with no pages in any refreshing bank wins; after
 * eta candidates without one, fall back to the min-resident walked
 * candidate (best-effort) or the leftmost.
 */
Task *
referencePick(std::vector<Task *> sorted, int eta, bool bestEffort,
              const std::vector<int> &refreshBanks)
{
    if (sorted.empty())
        return nullptr;
    std::sort(sorted.begin(), sorted.end(), refBefore);
    if (refreshBanks.empty())
        return sorted.front();
    const std::size_t limit =
        std::min<std::size_t>(static_cast<std::size_t>(eta),
                              sorted.size());
    auto clean = [&](const Task *t) {
        for (int b : refreshBanks) {
            if (t->residentPagesPerBank[static_cast<std::size_t>(b)])
                return false;
        }
        return true;
    };
    for (std::size_t i = 0; i < limit; ++i) {
        if (clean(sorted[i]))
            return sorted[i];
    }
    if (bestEffort) {
        Task *best = sorted[0];
        auto resident = [&](const Task *t) {
            double sum = 0.0;
            for (int b : refreshBanks)
                sum += t->residentFractionIn(b);
            return sum;
        };
        for (std::size_t i = 1; i < limit; ++i) {
            if (resident(sorted[i]) < resident(best))
                best = sorted[i];
        }
        return best;
    }
    return sorted.front();
}

TEST(CfsRunQueuePropertyTest, RefreshAwarePickMatchesReference)
{
    Rng rng(0xa11ce);
    for (int trial = 0; trial < 200; ++trial) {
        const int numTasks = 1 + static_cast<int>(rng.below(8));
        // Boundary-heavy eta choices: 1 (deviation disabled), the
        // exact queue size, one past it, and a huge value.
        const int etas[] = {1, numTasks, numTasks + 1, 64};
        const int eta = etas[rng.below(4)];
        const bool bestEffort = rng.below(2) == 0;

        EventQueue eq;
        SchedulerParams params;
        params.refreshAware = true;
        params.etaThresh = eta;
        params.bestEffort = bestEffort;
        Scheduler sched(eq, params);
        NullCpu cpu;
        sched.attachCpus({&cpu});

        std::vector<std::unique_ptr<Task>> owned;
        std::vector<Task *> all;
        for (int i = 0; i < numTasks; ++i) {
            auto t = std::make_unique<Task>(
                static_cast<Pid>(i + 1), "t", kNumBanks);
            t->vruntime = rng.below(4);  // force ties
            for (int b = 0; b < kNumBanks; ++b) {
                const auto pages =
                    static_cast<std::uint32_t>(rng.below(3));
                for (std::uint32_t k = 0; k < pages; ++k)
                    t->addResidentPage(b);
            }
            all.push_back(t.get());
            sched.addTask(t.get(), 0);
            owned.push_back(std::move(t));
        }

        std::vector<int> refreshBanks;
        for (int b = 0; b < kNumBanks; ++b) {
            if (rng.below(3) == 0)
                refreshBanks.push_back(b);
        }

        Task *got = sched.pickNextTask(0, refreshBanks);
        Task *want =
            referencePick(all, eta, bestEffort, refreshBanks);
        ASSERT_EQ(got, want)
            << "trial " << trial << " eta=" << eta << " bestEffort="
            << bestEffort << " tasks=" << numTasks << " got pid "
            << (got ? got->pid() : -1) << " want pid "
            << (want ? want->pid() : -1);
    }
}

/** eta = 1 must never deviate from the leftmost task, even when a
 *  clean task sits second in line. */
TEST(CfsRunQueuePropertyTest, EtaOneNeverDeviates)
{
    EventQueue eq;
    SchedulerParams params;
    params.refreshAware = true;
    params.etaThresh = 1;
    params.bestEffort = false;
    Scheduler sched(eq, params);
    NullCpu cpu;
    sched.attachCpus({&cpu});

    Task dirty(1, "dirty", kNumBanks), clean(2, "clean", kNumBanks);
    dirty.vruntime = 0;
    clean.vruntime = 100;
    for (int k = 0; k < 5; ++k)
        dirty.addResidentPage(0);
    sched.addTask(&dirty, 0);
    sched.addTask(&clean, 0);

    // Bank 0 refreshing: leftmost is dirty, but eta = 1 exhausts the
    // walk on it, so the leftmost fallback must win.
    EXPECT_EQ(sched.pickNextTask(0, {0}), &dirty);
}

} // namespace
} // namespace refsched::os
