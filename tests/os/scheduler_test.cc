/** @file Tests for the CFS scheduler and Algorithm 3. */

#include "os/scheduler.hh"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "simcore/logging.hh"

namespace refsched::os
{
namespace
{

/** Records the setTask calls a core would receive. */
class FakeCpu : public CpuContext
{
  public:
    void
    setTask(Task *task, Tick runUntil) override
    {
        current = task;
        lastRunUntil = runUntil;
        history.push_back(task ? task->pid() : -1);
    }

    Task *current = nullptr;
    Tick lastRunUntil = 0;
    std::vector<Pid> history;
};

constexpr int kBanks = 16;

struct Fixture
{
    explicit Fixture(int cpus = 1, SchedulerParams params = {})
        : sched(eq, params)
    {
        for (int i = 0; i < cpus; ++i)
            fakes.push_back(std::make_unique<FakeCpu>());
        std::vector<CpuContext *> ptrs;
        for (auto &f : fakes)
            ptrs.push_back(f.get());
        sched.attachCpus(std::move(ptrs));
    }

    Task *
    addTask(Pid pid, int cpu = -1)
    {
        tasks.push_back(std::make_unique<Task>(
            pid, "t" + std::to_string(pid), kBanks));
        sched.addTask(tasks.back().get(), cpu);
        return tasks.back().get();
    }

    EventQueue eq;
    std::vector<std::unique_ptr<FakeCpu>> fakes;
    Scheduler sched;
    std::vector<std::unique_ptr<Task>> tasks;
};

TEST(SchedulerTest, RoundRobinFairnessBaseline)
{
    SchedulerParams p;
    p.quantum = milliseconds(1.0);
    Fixture f(1, p);
    auto *a = f.addTask(1);
    auto *b = f.addTask(2);
    auto *c = f.addTask(3);
    f.sched.start();
    f.eq.runUntil(milliseconds(9.0));

    // 9 quanta picked (at t=0..8ms): 3 each.
    EXPECT_EQ(a->quantaRun + b->quantaRun + c->quantaRun, 9u);
    EXPECT_EQ(a->quantaRun, 3u);
    EXPECT_EQ(b->quantaRun, 3u);
    EXPECT_EQ(c->quantaRun, 3u);
    // vruntime spread stays within one quantum.
    EXPECT_LE(f.sched.vruntimeSpread(), p.quantum);
}

TEST(SchedulerTest, VruntimeAccumulatesPerQuantum)
{
    SchedulerParams p;
    p.quantum = milliseconds(2.0);
    Fixture f(1, p);
    auto *a = f.addTask(1);
    f.sched.start();
    f.eq.runUntil(milliseconds(10.0));
    EXPECT_EQ(a->vruntime, milliseconds(10.0));
    EXPECT_EQ(a->scheduledTicks, milliseconds(10.0));
}

TEST(SchedulerTest, TasksSpreadAcrossLeastLoadedCpus)
{
    Fixture f(2);
    f.addTask(1);
    f.addTask(2);
    f.addTask(3);
    f.addTask(4);
    EXPECT_EQ(f.sched.runQueue(0).size(), 2u);
    EXPECT_EQ(f.sched.runQueue(1).size(), 2u);
}

TEST(SchedulerTest, IdleCpuGetsNullTask)
{
    SchedulerParams p;
    p.quantum = milliseconds(1.0);
    Fixture f(2, p);
    f.addTask(1, 0);  // cpu 1 has nothing
    f.sched.start();
    f.eq.runUntil(milliseconds(0.5));
    EXPECT_NE(f.fakes[0]->current, nullptr);
    EXPECT_EQ(f.fakes[1]->current, nullptr);
    EXPECT_GE(f.sched.idleQuanta.value(), 1.0);
}

TEST(SchedulerTest, SleepingTaskIsNotScheduled)
{
    SchedulerParams p;
    p.quantum = milliseconds(1.0);
    Fixture f(1, p);
    auto *a = f.addTask(1);
    auto *b = f.addTask(2);
    f.sched.sleepTask(a);
    f.sched.start();
    f.eq.runUntil(milliseconds(4.0));
    EXPECT_EQ(a->quantaRun, 0u);
    EXPECT_EQ(b->quantaRun, 4u);  // charged at expiries 1..4 ms

    f.sched.wakeTask(a);
    f.eq.runUntil(milliseconds(8.0));
    EXPECT_GT(a->quantaRun, 0u);
}

TEST(SchedulerTest, WakeClampsVruntimeForward)
{
    SchedulerParams p;
    p.quantum = milliseconds(1.0);
    Fixture f(1, p);
    auto *a = f.addTask(1);
    auto *b = f.addTask(2);
    f.sched.sleepTask(a);
    f.sched.start();
    f.eq.runUntil(milliseconds(6.0));
    f.sched.wakeTask(a);
    // The sleeper must not be allowed to monopolise the CPU.
    EXPECT_GE(a->vruntime, b->vruntime);
}

TEST(SchedulerTest, WeightedTasksGetProportionalCpu)
{
    // Paper section 5.4 caveat: a high-priority task may demand more
    // quanta.  CFS weights realise that: a weight-2048 task's
    // vruntime advances at half speed, so it runs twice as often.
    SchedulerParams p;
    p.quantum = milliseconds(1.0);
    Fixture f(1, p);
    auto *heavy = f.addTask(1);
    heavy->weight = 2 * Task::kDefaultWeight;
    auto *light = f.addTask(2);
    f.sched.start();
    f.eq.runUntil(milliseconds(30.0));

    EXPECT_EQ(heavy->quantaRun + light->quantaRun, 30u);
    EXPECT_NEAR(static_cast<double>(heavy->quantaRun),
                2.0 * static_cast<double>(light->quantaRun), 1.0);
}

TEST(SchedulerTest, VruntimeDeltaScalesWithWeight)
{
    Task t(1, "t", 16);
    EXPECT_EQ(t.vruntimeDelta(1000), 1000u);
    t.weight = 2048;
    EXPECT_EQ(t.vruntimeDelta(1000), 500u);
    t.weight = 512;
    EXPECT_EQ(t.vruntimeDelta(1000), 2000u);
}

// ---------------------------------------------------------------------
// Algorithm 3: refresh-aware pick_next_task
// ---------------------------------------------------------------------

struct RefreshAwareFixture : Fixture
{
    static SchedulerParams
    params(int eta = 64, bool bestEffort = true)
    {
        SchedulerParams p;
        p.quantum = milliseconds(1.0);
        p.refreshAware = true;
        p.etaThresh = eta;
        p.bestEffort = bestEffort;
        return p;
    }

    explicit RefreshAwareFixture(int eta = 64, bool bestEffort = true)
        : Fixture(1, params(eta, bestEffort))
    {
    }

    /** Give @p task resident pages in @p bank. */
    static void
    putPages(Task *task, int bank, std::uint32_t pages)
    {
        for (std::uint32_t i = 0; i < pages; ++i)
            task->addResidentPage(bank);
    }
};

TEST(RefreshAwareSchedulerTest, PicksLeftmostWhenNoQueryInstalled)
{
    RefreshAwareFixture f;
    auto *a = f.addTask(1);
    f.addTask(2);
    EXPECT_EQ(f.sched.pickNextTask(0, {}), a);
}

TEST(RefreshAwareSchedulerTest, SkipsTaskWithDataInRefreshingBank)
{
    RefreshAwareFixture f;
    auto *a = f.addTask(1);  // leftmost (lowest pid on equal vruntime)
    auto *b = f.addTask(2);
    f.putPages(a, 3, 10);  // a has data in bank 3

    EXPECT_EQ(f.sched.pickNextTask(0, {3}), b);
    EXPECT_EQ(f.sched.deferredPicks.value(), 1.0);
    EXPECT_EQ(f.sched.cleanPicks.value(), 1.0);
}

TEST(RefreshAwareSchedulerTest, ChecksAllRefreshingBanks)
{
    // Multi-channel: one refreshing bank per channel.
    RefreshAwareFixture f;
    auto *a = f.addTask(1);
    auto *b = f.addTask(2);
    auto *c = f.addTask(3);
    f.putPages(a, 3, 10);
    f.putPages(b, 7, 10);
    EXPECT_EQ(f.sched.pickNextTask(0, {3, 7}), c);
}

TEST(RefreshAwareSchedulerTest, EtaThreshBoundsTheWalk)
{
    RefreshAwareFixture f(/*eta=*/2, /*bestEffort=*/false);
    auto *a = f.addTask(1);
    auto *b = f.addTask(2);
    auto *c = f.addTask(3);
    f.putPages(a, 0, 5);
    f.putPages(b, 0, 5);
    // c is clean but third in line: eta=2 stops before it
    // (Algorithm 3 line 31 falls back to the first entity).
    (void)c;
    EXPECT_EQ(f.sched.pickNextTask(0, {0}), a);
    EXPECT_EQ(f.sched.fallbackPicks.value(), 1.0);
}

TEST(RefreshAwareSchedulerTest, EtaThreshBoundaryIsInclusive)
{
    // Algorithm 3 examines AT MOST eta_thresh candidates and the
    // boundary is inclusive: a clean task sitting exactly at
    // position eta_thresh is still examined and picked.  Pins the
    // walk bound's `<` (an off-by-one `<=`/`<` slip either stops the
    // walk one candidate early, failing here, or walks one past the
    // budget, failing EtaThreshBoundsTheWalk and the OsAuditor's
    // strict n > eta_thresh check).
    RefreshAwareFixture f(/*eta=*/2, /*bestEffort=*/false);
    auto *a = f.addTask(1);
    auto *b = f.addTask(2);
    f.putPages(a, 0, 5);
    // b is clean and second in line: eta=2 must reach it.
    EXPECT_EQ(f.sched.pickNextTask(0, {0}), b);
    EXPECT_EQ(f.sched.cleanPicks.value(), 1.0);
    EXPECT_EQ(f.sched.fallbackPicks.value(), 0.0);
}

TEST(RefreshAwareSchedulerTest, BestEffortPicksMinimalResident)
{
    // Section 5.4.1: when nobody is clean, pick the task with the
    // smallest fraction of its data in the refreshing bank.
    RefreshAwareFixture f(/*eta=*/3, /*bestEffort=*/true);
    auto *a = f.addTask(1);
    auto *b = f.addTask(2);
    auto *c = f.addTask(3);
    f.putPages(a, 0, 50);
    f.putPages(a, 1, 50);   // a: 50% in bank 0
    f.putPages(b, 0, 10);
    f.putPages(b, 1, 90);   // b: 10% in bank 0  <- minimal
    f.putPages(c, 0, 100);  // c: 100% in bank 0
    EXPECT_EQ(f.sched.pickNextTask(0, {0}), b);
    EXPECT_EQ(f.sched.bestEffortPicks.value(), 1.0);
}

TEST(RefreshAwareSchedulerTest, EtaOneDisablesDeviation)
{
    RefreshAwareFixture f(/*eta=*/1, /*bestEffort=*/false);
    auto *a = f.addTask(1);
    auto *b = f.addTask(2);
    f.putPages(a, 0, 5);
    (void)b;
    // a is dirty but eta=1 forbids walking past it.
    EXPECT_EQ(f.sched.pickNextTask(0, {0}), a);
}

TEST(RefreshAwareSchedulerTest, EndToEndFairnessWithRotation)
{
    // Four tasks, each owning a distinct pair of banks; the refresh
    // query rotates one bank per quantum, like the sequential
    // schedule does.  Every quantum has exactly one clean task and
    // fairness must still hold over a full rotation.
    SchedulerParams p;
    p.quantum = milliseconds(1.0);
    p.refreshAware = true;
    p.etaThresh = 64;
    Fixture f(1, p);

    std::vector<Task *> ts;
    for (int i = 0; i < 4; ++i) {
        auto *t = f.addTask(static_cast<Pid>(i + 1));
        // Task i holds pages everywhere EXCEPT banks {2i, 2i+1}.
        for (int b = 0; b < 8; ++b) {
            if (b / 2 != i) {
                for (int k = 0; k < 10; ++k)
                    t->addResidentPage(b);
            }
        }
        ts.push_back(t);
    }

    f.sched.setRefreshQuery([&](Tick now) {
        const int slot = static_cast<int>(now / milliseconds(1.0)) % 8;
        return std::vector<int>{slot};
    });

    f.sched.start();
    // Charges happen at quantum expiries 1..16 ms: two full
    // eight-slot rotations.
    f.eq.runUntil(milliseconds(16.0));

    for (auto *t : ts)
        EXPECT_EQ(t->quantaRun, 4u) << "pid " << t->pid();
    EXPECT_GE(f.sched.cleanPicks.value(), 16.0);
    EXPECT_EQ(f.sched.bestEffortPicks.value(), 0.0);
    // Perfect alignment: the clean pick is always possible, and the
    // schedule stays fair within a quantum of spread.
    EXPECT_LE(f.sched.vruntimeSpread(), p.quantum);
}

TEST(SchedulerTest, ParamValidation)
{
    EventQueue eq;
    SchedulerParams p;
    p.quantum = 0;
    EXPECT_THROW(Scheduler(eq, p), FatalError);
    SchedulerParams p2;
    p2.etaThresh = 0;
    EXPECT_THROW(Scheduler(eq, p2), FatalError);
}

} // namespace
} // namespace refsched::os
