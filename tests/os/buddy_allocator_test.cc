/** @file Tests for the bank-aware buddy allocator (Algorithm 2). */

#include "os/buddy_allocator.hh"

#include <gtest/gtest.h>

#include <set>

#include "simcore/logging.hh"
#include "simcore/rng.hh"

namespace refsched::os
{
namespace
{

/** Small machine: 2 ranks x 8 banks, heavily time-scaled. */
struct Fixture
{
    Fixture()
        : dev(dram::makeDdr3_1600(dram::DensityGb::d32,
                                  milliseconds(64.0), 256)),
          mapping(dev.org),
          buddy(mapping)
    {
    }

    dram::DramDeviceConfig dev;
    dram::AddressMapping mapping;
    BuddyAllocator buddy;
};

TEST(BuddyAllocatorTest, StartsFullyFree)
{
    Fixture f;
    EXPECT_EQ(f.buddy.freeFrames(), f.mapping.totalFrames());
    EXPECT_EQ(f.buddy.totalFrames(), f.mapping.totalFrames());
    std::string why;
    EXPECT_TRUE(f.buddy.checkInvariants(&why)) << why;
}

TEST(BuddyAllocatorTest, AllocBlockSplitsAndFreeCoalesces)
{
    Fixture f;
    const auto before0 = f.buddy.freeListSize(0);
    auto block = f.buddy.allocBlock(0);
    ASSERT_TRUE(block.has_value());
    EXPECT_EQ(f.buddy.freeFrames(), f.mapping.totalFrames() - 1);
    // Splitting a max-order block populated every smaller order.
    EXPECT_GT(f.buddy.freeListSize(0), before0);

    f.buddy.freeBlock(*block, 0);
    EXPECT_EQ(f.buddy.freeFrames(), f.mapping.totalFrames());
    std::string why;
    EXPECT_TRUE(f.buddy.checkInvariants(&why)) << why;
    // Full coalescing: no order-0 fragments remain.
    EXPECT_EQ(f.buddy.freeListSize(0), 0u);
}

TEST(BuddyAllocatorTest, DistinctBlocksDoNotOverlap)
{
    Fixture f;
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        auto block = f.buddy.allocBlock(0);
        ASSERT_TRUE(block.has_value());
        EXPECT_TRUE(seen.insert(*block).second);
    }
}

TEST(BuddyAllocatorTest, HigherOrderBlocksAreAligned)
{
    Fixture f;
    for (int order = 1; order <= BuddyAllocator::kMaxOrder; ++order) {
        auto block = f.buddy.allocBlock(order);
        ASSERT_TRUE(block.has_value());
        EXPECT_EQ(*block & ((1ULL << order) - 1), 0u)
            << "order " << order;
        f.buddy.freeBlock(*block, order);
    }
    std::string why;
    EXPECT_TRUE(f.buddy.checkInvariants(&why)) << why;
}

TEST(BuddyAllocatorTest, MisalignedFreePanics)
{
    Fixture f;
    EXPECT_THROW(f.buddy.freeBlock(1, 3), PanicError);
}

TEST(BuddyAllocatorTest, RandomAllocFreeKeepsInvariants)
{
    Fixture f;
    Rng rng(99);
    std::vector<std::pair<std::uint64_t, int>> held;
    for (int op = 0; op < 2000; ++op) {
        if (held.empty() || rng.bernoulli(0.6)) {
            const int order = static_cast<int>(rng.below(6));
            auto block = f.buddy.allocBlock(order);
            if (block)
                held.emplace_back(*block, order);
        } else {
            const auto pick =
                static_cast<std::size_t>(rng.below(held.size()));
            f.buddy.freeBlock(held[pick].first, held[pick].second);
            held[pick] = held.back();
            held.pop_back();
        }
        if (op % 250 == 0) {
            std::string why;
            ASSERT_TRUE(f.buddy.checkInvariants(&why))
                << why << " op " << op;
        }
    }
    for (auto &[pfn, order] : held)
        f.buddy.freeBlock(pfn, order);
    EXPECT_EQ(f.buddy.freeFrames(), f.mapping.totalFrames());
    std::string why;
    EXPECT_TRUE(f.buddy.checkInvariants(&why)) << why;
}

// ---------------------------------------------------------------------
// Algorithm 2: bank-aware page allocation
// ---------------------------------------------------------------------

TEST(BankAwareAllocTest, PagesLandOnlyInPermittedBanks)
{
    Fixture f;
    Task task(1, "t", f.mapping.totalBanks());
    // Permit only banks 2, 3 and 10.
    std::fill(task.possibleBanksVector.begin(),
              task.possibleBanksVector.end(), false);
    for (int b : {2, 3, 10})
        task.allowBank(b);

    for (int i = 0; i < 300; ++i) {
        auto pfn = f.buddy.allocPage(task);
        ASSERT_TRUE(pfn.has_value());
        const int bank = f.mapping.bankOfFrame(*pfn);
        EXPECT_TRUE(bank == 2 || bank == 3 || bank == 10)
            << "page " << i << " landed in bank " << bank;
    }
}

TEST(BankAwareAllocTest, ConsecutiveAllocationsRotateBanks)
{
    // Algorithm 2 lines 10-11: BLP-preserving round-robin.
    Fixture f;
    Task task(1, "t", f.mapping.totalBanks());
    std::vector<int> banks;
    for (int i = 0; i < f.mapping.totalBanks() * 2; ++i) {
        auto pfn = f.buddy.allocPage(task);
        ASSERT_TRUE(pfn.has_value());
        banks.push_back(f.mapping.bankOfFrame(*pfn));
    }
    // With all banks permitted, consecutive pages hit consecutive
    // banks.
    for (std::size_t i = 1; i < banks.size(); ++i) {
        EXPECT_EQ(banks[i],
                  (banks[i - 1] + 1) % f.mapping.totalBanks());
    }
}

TEST(BankAwareAllocTest, StashedPagesServeLaterRequests)
{
    Fixture f;
    Task task(1, "t", f.mapping.totalBanks());
    std::fill(task.possibleBanksVector.begin(),
              task.possibleBanksVector.end(), false);
    task.allowBank(5);

    auto pfn = f.buddy.allocPage(task);
    ASSERT_TRUE(pfn.has_value());
    // Reaching bank 5 stashed pages of other banks in their caches.
    std::uint64_t cached = 0;
    for (int b = 0; b < f.mapping.totalBanks(); ++b)
        cached += f.buddy.bankCacheSize(b);
    EXPECT_GT(cached, 0u);

    // A task wanting one of the stashed banks hits the cache without
    // touching the buddy lists.
    Task other(2, "o", f.mapping.totalBanks());
    std::fill(other.possibleBanksVector.begin(),
              other.possibleBanksVector.end(), false);
    const int stashedBank =
        f.mapping.bankOfFrame(*pfn) == 0 ? 1 : 0;
    other.allowBank(stashedBank);
    const auto hitsBefore = f.buddy.bankCacheHits();
    auto pfn2 = f.buddy.allocPage(other);
    ASSERT_TRUE(pfn2.has_value());
    EXPECT_EQ(f.mapping.bankOfFrame(*pfn2), stashedBank);
    EXPECT_EQ(f.buddy.bankCacheHits(), hitsBefore + 1);
}

TEST(BankAwareAllocTest, ExhaustedPermittedBanksReturnsNull)
{
    Fixture f;
    Task task(1, "t", f.mapping.totalBanks());
    std::fill(task.possibleBanksVector.begin(),
              task.possibleBanksVector.end(), false);
    task.allowBank(0);

    const auto framesPerBank =
        f.mapping.totalFrames()
        / static_cast<std::uint64_t>(f.mapping.totalBanks());
    for (std::uint64_t i = 0; i < framesPerBank; ++i)
        ASSERT_TRUE(f.buddy.allocPage(task).has_value()) << i;
    // Bank 0 is now completely allocated.
    EXPECT_FALSE(f.buddy.allocPage(task).has_value());

    // Section 5.4.1 fallback still succeeds from other banks.
    auto fallback = f.buddy.allocPageAnyBank(&task);
    ASSERT_TRUE(fallback.has_value());
    EXPECT_NE(f.mapping.bankOfFrame(*fallback), 0);
    EXPECT_EQ(f.buddy.fallbackAllocations(), 1u);
}

TEST(BankAwareAllocTest, FreePageReturnsToBankCache)
{
    Fixture f;
    Task task(1, "t", f.mapping.totalBanks());
    auto pfn = f.buddy.allocPage(task);
    ASSERT_TRUE(pfn.has_value());
    const int bank = f.mapping.bankOfFrame(*pfn);
    const auto before = f.buddy.bankCacheSize(bank);
    f.buddy.freePage(*pfn);
    EXPECT_EQ(f.buddy.bankCacheSize(bank), before + 1);
}

TEST(BankAwareAllocTest, DrainBankCachesRestoresBuddyLists)
{
    Fixture f;
    Task task(1, "t", f.mapping.totalBanks());
    std::fill(task.possibleBanksVector.begin(),
              task.possibleBanksVector.end(), false);
    task.allowBank(3);
    std::vector<std::uint64_t> pages;
    for (int i = 0; i < 50; ++i)
        pages.push_back(f.buddy.allocPage(task).value());
    for (auto pfn : pages)
        f.buddy.freePage(pfn);

    f.buddy.drainBankCaches();
    for (int b = 0; b < f.mapping.totalBanks(); ++b)
        EXPECT_EQ(f.buddy.bankCacheSize(b), 0u);
    EXPECT_EQ(f.buddy.freeFrames(), f.mapping.totalFrames());
    std::string why;
    EXPECT_TRUE(f.buddy.checkInvariants(&why)) << why;
}

TEST(BankAwareAllocTest, TotalExhaustionReturnsNull)
{
    // Tiny memory so we can empty it quickly.
    auto dev = dram::makeDdr3_1600(dram::DensityGb::d32,
                                   milliseconds(64.0), 8192);
    dram::AddressMapping mapping(dev.org);
    BuddyAllocator buddy(mapping);
    Task task(1, "t", mapping.totalBanks());

    for (std::uint64_t i = 0; i < mapping.totalFrames(); ++i)
        ASSERT_TRUE(buddy.allocPage(task).has_value());
    EXPECT_FALSE(buddy.allocPage(task).has_value());
    EXPECT_FALSE(buddy.allocPageAnyBank(&task).has_value());
    EXPECT_EQ(buddy.freeFrames(), 0u);
}

} // namespace
} // namespace refsched::os
