/** @file Tests for per-task virtual memory / demand paging. */

#include "os/virtual_memory.hh"

#include <gtest/gtest.h>

#include "simcore/logging.hh"

namespace refsched::os
{
namespace
{

struct Fixture
{
    Fixture()
        : dev(dram::makeDdr3_1600(dram::DensityGb::d32,
                                  milliseconds(64.0), 256)),
          mapping(dev.org),
          buddy(mapping),
          vm(mapping, buddy)
    {
    }

    dram::DramDeviceConfig dev;
    dram::AddressMapping mapping;
    BuddyAllocator buddy;
    VirtualMemory vm;
};

TEST(VirtualMemoryTest, FirstTouchFaultsThenStable)
{
    Fixture f;
    Task t(1, "t", f.mapping.totalBanks());

    bool faulted = false;
    const Addr pa1 = f.vm.translate(t, 0x12345, &faulted);
    EXPECT_TRUE(faulted);
    EXPECT_EQ(t.pageFaults, 1u);

    const Addr pa2 = f.vm.translate(t, 0x12345, &faulted);
    EXPECT_FALSE(faulted);
    EXPECT_EQ(pa1, pa2);
    EXPECT_EQ(t.pageFaults, 1u);
}

TEST(VirtualMemoryTest, PageOffsetPreserved)
{
    Fixture f;
    Task t(1, "t", f.mapping.totalBanks());
    const Addr base = f.vm.translate(t, 0x4000);
    EXPECT_EQ(f.vm.translate(t, 0x4000 + 100), base + 100);
    EXPECT_EQ(base & (f.mapping.pageBytes() - 1), 0u);
}

TEST(VirtualMemoryTest, DistinctPagesGetDistinctFrames)
{
    Fixture f;
    Task t(1, "t", f.mapping.totalBanks());
    const Addr a = f.vm.translate(t, 0 * f.mapping.pageBytes());
    const Addr b = f.vm.translate(t, 1 * f.mapping.pageBytes());
    EXPECT_NE(a >> f.mapping.pageShift(), b >> f.mapping.pageShift());
}

TEST(VirtualMemoryTest, TasksHaveIndependentAddressSpaces)
{
    Fixture f;
    Task t1(1, "a", f.mapping.totalBanks());
    Task t2(2, "b", f.mapping.totalBanks());
    const Addr a = f.vm.translate(t1, 0x8000);
    const Addr b = f.vm.translate(t2, 0x8000);
    EXPECT_NE(a, b);
}

TEST(VirtualMemoryTest, ResidentCountersTrackBanks)
{
    Fixture f;
    Task t(1, "t", f.mapping.totalBanks());
    std::fill(t.possibleBanksVector.begin(),
              t.possibleBanksVector.end(), false);
    t.allowBank(4);
    t.allowBank(7);

    for (std::uint64_t p = 0; p < 20; ++p)
        f.vm.translate(t, p * f.mapping.pageBytes());

    EXPECT_EQ(t.residentPages(), 20u);
    EXPECT_EQ(t.residentPagesPerBank[4] + t.residentPagesPerBank[7],
              20u);
    EXPECT_NEAR(t.residentFractionIn(4), 0.5, 0.11);
    EXPECT_EQ(t.residentPagesPerBank[0], 0u);
}

TEST(VirtualMemoryTest, FallbackWhenPermittedBanksExhausted)
{
    Fixture f;
    Task t(1, "t", f.mapping.totalBanks());
    std::fill(t.possibleBanksVector.begin(),
              t.possibleBanksVector.end(), false);
    t.allowBank(0);

    const auto framesPerBank = f.mapping.totalFrames()
        / static_cast<std::uint64_t>(f.mapping.totalBanks());
    // Touch more pages than bank 0 can hold.
    for (std::uint64_t p = 0; p < framesPerBank + 10; ++p)
        f.vm.translate(t, p * f.mapping.pageBytes());

    EXPECT_EQ(t.fallbackAllocs, 10u);
    EXPECT_EQ(f.vm.fallbackAllocations(), 10u);
    EXPECT_EQ(t.residentPagesPerBank[0], framesPerBank);
    EXPECT_EQ(t.residentPages(), framesPerBank + 10);
}

TEST(VirtualMemoryTest, ReleaseTaskFreesEverything)
{
    Fixture f;
    Task t(1, "t", f.mapping.totalBanks());
    for (std::uint64_t p = 0; p < 50; ++p)
        f.vm.translate(t, p * f.mapping.pageBytes());
    const auto freeBefore = f.buddy.freeFrames();

    f.vm.releaseTask(t);
    EXPECT_EQ(f.buddy.freeFrames(), freeBefore + 50);
    EXPECT_TRUE(t.pageTable.empty());
    EXPECT_EQ(t.residentPages(), 0u);
}

TEST(VirtualMemoryTest, OutOfMemoryIsFatal)
{
    auto dev = dram::makeDdr3_1600(dram::DensityGb::d32,
                                   milliseconds(64.0), 8192);
    dram::AddressMapping mapping(dev.org);
    BuddyAllocator buddy(mapping);
    VirtualMemory vm(mapping, buddy);
    Task t(1, "t", mapping.totalBanks());

    for (std::uint64_t p = 0; p < mapping.totalFrames(); ++p)
        vm.translate(t, p * mapping.pageBytes());
    EXPECT_THROW(vm.translate(t, mapping.totalFrames()
                                     * mapping.pageBytes()),
                 FatalError);
}

} // namespace
} // namespace refsched::os
