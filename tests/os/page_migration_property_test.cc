/**
 * @file
 * Randomized churn property test over the OS memory layer.
 *
 * Many rounds of tenant arrival/departure, mask re-randomization,
 * stale-page migration and phase-style footprint trimming, checking
 * after every round that:
 *  - the virtual memory map is a bijection: across all live tasks no
 *    physical frame backs two virtual pages, and the TLB fast path
 *    agrees with the page table;
 *  - after a full migration sweep that never exhausted a mask, every
 *    resident page of every task lives in a bank its current
 *    possible_banks_vector permits;
 *  - the buddy allocator's free-frame count matches a naive recount
 *    (total frames minus pages mapped by live tasks), its per-bank
 *    residency counters match the page table, and its structural
 *    invariants hold.
 */

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "os/virtual_memory.hh"
#include "simcore/rng.hh"

namespace refsched::os
{
namespace
{

struct Fixture
{
    Fixture()
        : dev(dram::makeDdr3_1600(dram::DensityGb::d32,
                                  milliseconds(64.0), 1024)),
          mapping(dev.org),
          buddy(mapping),
          vm(mapping, buddy)
    {
    }

    dram::DramDeviceConfig dev;
    dram::AddressMapping mapping;
    BuddyAllocator buddy;
    VirtualMemory vm;
};

/** Random mask with at least two permitted banks. */
void
randomizeMask(Rng &rng, Task &t, int totalBanks)
{
    std::fill(t.possibleBanksVector.begin(),
              t.possibleBanksVector.end(), false);
    const int allowed =
        static_cast<int>(rng.inRange(2, static_cast<std::uint64_t>(
                                            totalBanks)));
    // Contiguous run from a random start: mirrors the partition
    // groups assignBankMasks builds, and guarantees `allowed` banks.
    const int start = static_cast<int>(
        rng.below(static_cast<std::uint64_t>(totalBanks)));
    for (int k = 0; k < allowed; ++k)
        t.allowBank((start + k) % totalBanks);
}

struct Model
{
    std::vector<std::unique_ptr<Task>> live;
    Pid nextPid = 1;
};

void
checkRound(const Fixture &f, const Model &m, bool masksGuaranteed,
           const char *when)
{
    SCOPED_TRACE(when);

    // Bijection + TLB coherence + per-bank residency recount.
    std::unordered_set<std::uint64_t> usedPfns;
    std::uint64_t mappedPages = 0;
    for (const auto &t : m.live) {
        std::vector<std::uint32_t> perBank(
            static_cast<std::size_t>(f.mapping.totalBanks()), 0);
        for (const auto &[vpn, pfn] : t->pageTable) {
            EXPECT_TRUE(usedPfns.insert(pfn).second)
                << "pfn " << pfn << " backs two virtual pages";
            ++mappedPages;
            const int bank = f.mapping.bankOfFrame(pfn);
            ++perBank[static_cast<std::size_t>(bank)];
            if (masksGuaranteed) {
                EXPECT_TRUE(t->allowsBank(bank))
                    << "pid " << t->pid() << " vpn " << vpn
                    << " resident in forbidden bank " << bank;
            }
            const std::size_t slot = vpn % Task::kTlbEntries;
            if (t->tlbTag[slot] == vpn + 1) {
                EXPECT_EQ(t->tlbPfn[slot], pfn)
                    << "TLB disagrees with the page table at vpn "
                    << vpn;
            }
        }
        for (int b = 0; b < f.mapping.totalBanks(); ++b) {
            EXPECT_EQ(t->residentPagesPerBank[static_cast<std::size_t>(
                          b)],
                      perBank[static_cast<std::size_t>(b)])
                << "pid " << t->pid() << " residency drifted in bank "
                << b;
        }
        EXPECT_EQ(t->residentPages(), t->pageTable.size());
    }

    // Naive allocator recount.
    EXPECT_EQ(f.buddy.freeFrames() + mappedPages,
              f.buddy.totalFrames())
        << "buddy free-frame count disagrees with the naive recount";
    std::string why;
    EXPECT_TRUE(f.buddy.checkInvariants(&why)) << why;
}

TEST(PageMigrationPropertyTest, RandomChurnKeepsMapSound)
{
    Fixture f;
    const int totalBanks = f.mapping.totalBanks();
    const auto pageBytes = f.mapping.pageBytes();
    // Bound the population so masks never run out of frames: with
    // <= 6 tenants of <= 96 pages each, even a 2-bank mask (>= 2 *
    // totalFrames/totalBanks frames) always has room to migrate into.
    constexpr std::size_t kMaxLive = 6;
    constexpr std::uint64_t kMaxPages = 96;

    Rng rng(20260809);
    Model m;
    bool masksGuaranteed = true;  // no fallback alloc has happened

    for (int round = 0; round < 120; ++round) {
        // Arrival (always when empty, else 40%).
        if (m.live.size() < kMaxLive
            && (m.live.empty() || rng.bernoulli(0.4))) {
            auto t = std::make_unique<Task>(
                m.nextPid++, "tenant", totalBanks);
            randomizeMask(rng, *t, totalBanks);
            m.live.push_back(std::move(t));
        }
        // Departure (30%).
        if (m.live.size() > 1 && rng.bernoulli(0.3)) {
            const std::size_t victim = rng.below(m.live.size());
            f.vm.releaseTask(*m.live[victim]);
            m.live.erase(m.live.begin()
                         + static_cast<std::ptrdiff_t>(victim));
        }

        // Demand paging: every tenant touches a random page span.
        for (auto &t : m.live) {
            const std::uint64_t pages = rng.inRange(1, kMaxPages);
            for (std::uint64_t p = 0; p < pages; ++p)
                f.vm.translate(*t, p * pageBytes);
        }

        // Phase change: one tenant shrinks its footprint (20%).
        if (!m.live.empty() && rng.bernoulli(0.2)) {
            Task &t = *m.live[rng.below(m.live.size())];
            const std::uint64_t bound = rng.inRange(1, kMaxPages / 2);
            f.vm.trimFootprint(t, bound);
            for (const auto &[vpn, pfn] : t.pageTable)
                EXPECT_LT(vpn, bound);
        }

        // Consolidation: re-randomize masks, then migrate every
        // stale page (mixing immediate and deferred source frees).
        for (auto &t : m.live) {
            if (rng.bernoulli(0.5))
                randomizeMask(rng, *t, totalBanks);
        }
        for (auto &t : m.live) {
            for (const std::uint64_t vpn :
                 f.vm.collectStalePages(*t)) {
                const bool freeOld = rng.bernoulli(0.5);
                const auto moved =
                    f.vm.migratePage(*t, vpn, freeOld);
                if (!moved) {
                    masksGuaranteed = false;
                    break;
                }
                EXPECT_TRUE(t->allowsBank(
                    f.mapping.bankOfFrame(moved->second)));
                if (!freeOld) {
                    // Caller contract: drop the transient double
                    // residency once the (modelled) copy is done.
                    t->removeResidentPage(
                        f.mapping.bankOfFrame(moved->first));
                    f.buddy.freePage(moved->first, t->pid());
                }
            }
            EXPECT_TRUE(f.vm.collectStalePages(*t).empty()
                        || !masksGuaranteed);
        }

        checkRound(f, m, masksGuaranteed, "after round");
    }
    // The population bound keeps every mask satisfiable: if this
    // fires the test lost its own guarantee, not the allocator.
    EXPECT_TRUE(masksGuaranteed);

    // Teardown: every departure returns everything.
    for (auto &t : m.live)
        f.vm.releaseTask(*t);
    m.live.clear();
    checkRound(f, m, true, "after teardown");
    EXPECT_EQ(f.buddy.freeFrames(), f.buddy.totalFrames());
}

} // namespace
} // namespace refsched::os
