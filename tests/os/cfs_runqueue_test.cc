/** @file Tests for the CFS runqueue. */

#include "os/cfs_runqueue.hh"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "simcore/logging.hh"

namespace refsched::os
{
namespace
{

std::unique_ptr<Task>
makeTask(Pid pid, Tick vruntime)
{
    auto t = std::make_unique<Task>(pid, "t" + std::to_string(pid), 16);
    t->vruntime = vruntime;
    return t;
}

TEST(CfsRunQueueTest, EmptyQueue)
{
    CfsRunQueue rq;
    EXPECT_TRUE(rq.empty());
    EXPECT_EQ(rq.first(), nullptr);
    // Regression: an empty queue must NOT report a sentinel vruntime
    // of 0 -- that is indistinguishable from a real vruntime 0 and
    // used to drag Scheduler::wakeTask's clamp floor to zero.
    EXPECT_EQ(rq.minVruntime(), std::nullopt);
}

TEST(CfsRunQueueTest, FirstIsMinimumVruntime)
{
    CfsRunQueue rq;
    auto a = makeTask(1, 300);
    auto b = makeTask(2, 100);
    auto c = makeTask(3, 200);
    rq.enqueue(a.get());
    rq.enqueue(b.get());
    rq.enqueue(c.get());
    EXPECT_EQ(rq.first(), b.get());
    EXPECT_EQ(rq.minVruntime(), std::optional<Tick>(100));
    EXPECT_EQ(rq.size(), 3u);
    EXPECT_TRUE(rq.validate());
}

TEST(CfsRunQueueTest, EqualVruntimeTieBrokenByPid)
{
    CfsRunQueue rq;
    auto a = makeTask(7, 100);
    auto b = makeTask(3, 100);
    rq.enqueue(a.get());
    rq.enqueue(b.get());
    EXPECT_EQ(rq.first()->pid(), 3);
}

TEST(CfsRunQueueTest, DequeueRemovesSpecificTask)
{
    CfsRunQueue rq;
    auto a = makeTask(1, 100);
    auto b = makeTask(2, 200);
    rq.enqueue(a.get());
    rq.enqueue(b.get());
    EXPECT_TRUE(rq.contains(a.get()));
    rq.dequeue(a.get());
    EXPECT_FALSE(rq.contains(a.get()));
    EXPECT_EQ(rq.first(), b.get());
}

TEST(CfsRunQueueTest, ReEnqueueWithNewVruntime)
{
    CfsRunQueue rq;
    auto a = makeTask(1, 100);
    auto b = makeTask(2, 200);
    rq.enqueue(a.get());
    rq.enqueue(b.get());
    rq.dequeue(a.get());
    a->vruntime = 500;
    rq.enqueue(a.get());
    EXPECT_EQ(rq.first(), b.get());
}

TEST(CfsRunQueueTest, DoubleEnqueuePanics)
{
    CfsRunQueue rq;
    auto a = makeTask(1, 100);
    rq.enqueue(a.get());
    EXPECT_THROW(rq.enqueue(a.get()), PanicError);
}

TEST(CfsRunQueueTest, DequeueAbsentPanics)
{
    CfsRunQueue rq;
    auto a = makeTask(1, 100);
    EXPECT_THROW(rq.dequeue(a.get()), PanicError);
}

TEST(CfsRunQueueTest, ForEachInOrderWalksByVruntime)
{
    CfsRunQueue rq;
    std::vector<std::unique_ptr<Task>> tasks;
    for (int i = 0; i < 8; ++i) {
        tasks.push_back(
            makeTask(static_cast<Pid>(i + 1),
                     static_cast<Tick>((7 - i) * 10)));
        rq.enqueue(tasks.back().get());
    }
    std::vector<Tick> seen;
    rq.forEachInOrder([&](Task *t) {
        seen.push_back(t->vruntime);
        return true;
    });
    for (std::size_t i = 1; i < seen.size(); ++i)
        EXPECT_LE(seen[i - 1], seen[i]);
    EXPECT_EQ(seen.size(), 8u);
}

TEST(CfsRunQueueTest, ForEachInOrderStopsEarly)
{
    CfsRunQueue rq;
    std::vector<std::unique_ptr<Task>> tasks;
    for (int i = 0; i < 8; ++i) {
        tasks.push_back(makeTask(static_cast<Pid>(i + 1),
                                 static_cast<Tick>(i * 10)));
        rq.enqueue(tasks.back().get());
    }
    int visited = 0;
    rq.forEachInOrder([&](Task *) { return ++visited < 3; });
    EXPECT_EQ(visited, 3);
}

TEST(CfsRunQueueTest, ManyTasksStayOrdered)
{
    CfsRunQueue rq;
    std::vector<std::unique_ptr<Task>> tasks;
    for (int i = 0; i < 200; ++i) {
        tasks.push_back(makeTask(static_cast<Pid>(i + 1),
                                 static_cast<Tick>((i * 37) % 101)));
        rq.enqueue(tasks.back().get());
    }
    EXPECT_TRUE(rq.validate());
    // Dequeue-all in order yields a sorted sequence.
    Tick last = 0;
    while (!rq.empty()) {
        Task *t = rq.first();
        EXPECT_GE(t->vruntime, last);
        last = t->vruntime;
        rq.dequeue(t);
    }
}

} // namespace
} // namespace refsched::os
