# Empty dependencies file for fig12_ddr4_fgr.
# This may be replaced when dependencies are built.
