file(REMOVE_RECURSE
  "CMakeFiles/fig12_ddr4_fgr.dir/fig12_ddr4_fgr.cc.o"
  "CMakeFiles/fig12_ddr4_fgr.dir/fig12_ddr4_fgr.cc.o.d"
  "fig12_ddr4_fgr"
  "fig12_ddr4_fgr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_ddr4_fgr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
