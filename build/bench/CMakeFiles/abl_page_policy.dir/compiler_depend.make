# Empty compiler generated dependencies file for abl_page_policy.
# This may be replaced when dependencies are built.
