file(REMOVE_RECURSE
  "CMakeFiles/abl_page_policy.dir/abl_page_policy.cc.o"
  "CMakeFiles/abl_page_policy.dir/abl_page_policy.cc.o.d"
  "abl_page_policy"
  "abl_page_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_page_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
