# Empty dependencies file for fig10_codesign_ipc.
# This may be replaced when dependencies are built.
