file(REMOVE_RECURSE
  "CMakeFiles/fig10_codesign_ipc.dir/fig10_codesign_ipc.cc.o"
  "CMakeFiles/fig10_codesign_ipc.dir/fig10_codesign_ipc.cc.o.d"
  "fig10_codesign_ipc"
  "fig10_codesign_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_codesign_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
