file(REMOVE_RECURSE
  "CMakeFiles/fig14_prior_work.dir/fig14_prior_work.cc.o"
  "CMakeFiles/fig14_prior_work.dir/fig14_prior_work.cc.o.d"
  "fig14_prior_work"
  "fig14_prior_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_prior_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
