# Empty compiler generated dependencies file for fig14_prior_work.
# This may be replaced when dependencies are built.
