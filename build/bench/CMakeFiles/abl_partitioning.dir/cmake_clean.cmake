file(REMOVE_RECURSE
  "CMakeFiles/abl_partitioning.dir/abl_partitioning.cc.o"
  "CMakeFiles/abl_partitioning.dir/abl_partitioning.cc.o.d"
  "abl_partitioning"
  "abl_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
