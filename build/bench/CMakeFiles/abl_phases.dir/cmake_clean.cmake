file(REMOVE_RECURSE
  "CMakeFiles/abl_phases.dir/abl_phases.cc.o"
  "CMakeFiles/abl_phases.dir/abl_phases.cc.o.d"
  "abl_phases"
  "abl_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
