# Empty compiler generated dependencies file for abl_phases.
# This may be replaced when dependencies are built.
