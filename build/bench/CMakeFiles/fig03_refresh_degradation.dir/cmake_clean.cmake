file(REMOVE_RECURSE
  "CMakeFiles/fig03_refresh_degradation.dir/fig03_refresh_degradation.cc.o"
  "CMakeFiles/fig03_refresh_degradation.dir/fig03_refresh_degradation.cc.o.d"
  "fig03_refresh_degradation"
  "fig03_refresh_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_refresh_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
