# Empty dependencies file for fig03_refresh_degradation.
# This may be replaced when dependencies are built.
