# Empty dependencies file for fig04_blp_partitioning.
# This may be replaced when dependencies are built.
