file(REMOVE_RECURSE
  "CMakeFiles/fig04_blp_partitioning.dir/fig04_blp_partitioning.cc.o"
  "CMakeFiles/fig04_blp_partitioning.dir/fig04_blp_partitioning.cc.o.d"
  "fig04_blp_partitioning"
  "fig04_blp_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_blp_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
