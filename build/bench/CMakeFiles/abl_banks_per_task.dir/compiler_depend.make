# Empty compiler generated dependencies file for abl_banks_per_task.
# This may be replaced when dependencies are built.
