file(REMOVE_RECURSE
  "CMakeFiles/abl_banks_per_task.dir/abl_banks_per_task.cc.o"
  "CMakeFiles/abl_banks_per_task.dir/abl_banks_per_task.cc.o.d"
  "abl_banks_per_task"
  "abl_banks_per_task.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_banks_per_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
