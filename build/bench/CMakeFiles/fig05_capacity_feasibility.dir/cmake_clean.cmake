file(REMOVE_RECURSE
  "CMakeFiles/fig05_capacity_feasibility.dir/fig05_capacity_feasibility.cc.o"
  "CMakeFiles/fig05_capacity_feasibility.dir/fig05_capacity_feasibility.cc.o.d"
  "fig05_capacity_feasibility"
  "fig05_capacity_feasibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_capacity_feasibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
