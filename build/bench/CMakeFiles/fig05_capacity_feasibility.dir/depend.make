# Empty dependencies file for fig05_capacity_feasibility.
# This may be replaced when dependencies are built.
