file(REMOVE_RECURSE
  "CMakeFiles/fig13_retention32.dir/fig13_retention32.cc.o"
  "CMakeFiles/fig13_retention32.dir/fig13_retention32.cc.o.d"
  "fig13_retention32"
  "fig13_retention32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_retention32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
