# Empty dependencies file for fig13_retention32.
# This may be replaced when dependencies are built.
