# Empty dependencies file for energy_refresh.
# This may be replaced when dependencies are built.
