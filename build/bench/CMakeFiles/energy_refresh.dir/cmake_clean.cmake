file(REMOVE_RECURSE
  "CMakeFiles/energy_refresh.dir/energy_refresh.cc.o"
  "CMakeFiles/energy_refresh.dir/energy_refresh.cc.o.d"
  "energy_refresh"
  "energy_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
