file(REMOVE_RECURSE
  "CMakeFiles/abl_eta_thresh.dir/abl_eta_thresh.cc.o"
  "CMakeFiles/abl_eta_thresh.dir/abl_eta_thresh.cc.o.d"
  "abl_eta_thresh"
  "abl_eta_thresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_eta_thresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
