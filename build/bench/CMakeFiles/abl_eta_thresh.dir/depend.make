# Empty dependencies file for abl_eta_thresh.
# This may be replaced when dependencies are built.
