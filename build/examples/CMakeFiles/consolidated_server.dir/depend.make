# Empty dependencies file for consolidated_server.
# This may be replaced when dependencies are built.
