file(REMOVE_RECURSE
  "CMakeFiles/consolidated_server.dir/consolidated_server.cpp.o"
  "CMakeFiles/consolidated_server.dir/consolidated_server.cpp.o.d"
  "consolidated_server"
  "consolidated_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consolidated_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
