
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cache/cache_hierarchy_test.cc" "tests/CMakeFiles/refsched_tests.dir/cache/cache_hierarchy_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/cache/cache_hierarchy_test.cc.o.d"
  "/root/repo/tests/cache/cache_test.cc" "tests/CMakeFiles/refsched_tests.dir/cache/cache_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/cache/cache_test.cc.o.d"
  "/root/repo/tests/core/metrics_test.cc" "tests/CMakeFiles/refsched_tests.dir/core/metrics_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/core/metrics_test.cc.o.d"
  "/root/repo/tests/core/report_test.cc" "tests/CMakeFiles/refsched_tests.dir/core/report_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/core/report_test.cc.o.d"
  "/root/repo/tests/core/system_config_test.cc" "tests/CMakeFiles/refsched_tests.dir/core/system_config_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/core/system_config_test.cc.o.d"
  "/root/repo/tests/cpu/core_test.cc" "tests/CMakeFiles/refsched_tests.dir/cpu/core_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/cpu/core_test.cc.o.d"
  "/root/repo/tests/dram/address_mapping_test.cc" "tests/CMakeFiles/refsched_tests.dir/dram/address_mapping_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/dram/address_mapping_test.cc.o.d"
  "/root/repo/tests/dram/bank_test.cc" "tests/CMakeFiles/refsched_tests.dir/dram/bank_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/dram/bank_test.cc.o.d"
  "/root/repo/tests/dram/energy_test.cc" "tests/CMakeFiles/refsched_tests.dir/dram/energy_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/dram/energy_test.cc.o.d"
  "/root/repo/tests/dram/refresh_scheduler_test.cc" "tests/CMakeFiles/refsched_tests.dir/dram/refresh_scheduler_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/dram/refresh_scheduler_test.cc.o.d"
  "/root/repo/tests/dram/timings_test.cc" "tests/CMakeFiles/refsched_tests.dir/dram/timings_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/dram/timings_test.cc.o.d"
  "/root/repo/tests/integration/codesign_test.cc" "tests/CMakeFiles/refsched_tests.dir/integration/codesign_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/integration/codesign_test.cc.o.d"
  "/root/repo/tests/integration/system_test.cc" "tests/CMakeFiles/refsched_tests.dir/integration/system_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/integration/system_test.cc.o.d"
  "/root/repo/tests/integration/variants_test.cc" "tests/CMakeFiles/refsched_tests.dir/integration/variants_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/integration/variants_test.cc.o.d"
  "/root/repo/tests/memctrl/controller_stress_test.cc" "tests/CMakeFiles/refsched_tests.dir/memctrl/controller_stress_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/memctrl/controller_stress_test.cc.o.d"
  "/root/repo/tests/memctrl/memory_controller_test.cc" "tests/CMakeFiles/refsched_tests.dir/memctrl/memory_controller_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/memctrl/memory_controller_test.cc.o.d"
  "/root/repo/tests/os/buddy_allocator_test.cc" "tests/CMakeFiles/refsched_tests.dir/os/buddy_allocator_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/os/buddy_allocator_test.cc.o.d"
  "/root/repo/tests/os/cfs_runqueue_test.cc" "tests/CMakeFiles/refsched_tests.dir/os/cfs_runqueue_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/os/cfs_runqueue_test.cc.o.d"
  "/root/repo/tests/os/rbtree_test.cc" "tests/CMakeFiles/refsched_tests.dir/os/rbtree_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/os/rbtree_test.cc.o.d"
  "/root/repo/tests/os/scheduler_test.cc" "tests/CMakeFiles/refsched_tests.dir/os/scheduler_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/os/scheduler_test.cc.o.d"
  "/root/repo/tests/os/task_test.cc" "tests/CMakeFiles/refsched_tests.dir/os/task_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/os/task_test.cc.o.d"
  "/root/repo/tests/os/virtual_memory_test.cc" "tests/CMakeFiles/refsched_tests.dir/os/virtual_memory_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/os/virtual_memory_test.cc.o.d"
  "/root/repo/tests/simcore/event_queue_test.cc" "tests/CMakeFiles/refsched_tests.dir/simcore/event_queue_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/simcore/event_queue_test.cc.o.d"
  "/root/repo/tests/simcore/logging_test.cc" "tests/CMakeFiles/refsched_tests.dir/simcore/logging_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/simcore/logging_test.cc.o.d"
  "/root/repo/tests/simcore/rng_test.cc" "tests/CMakeFiles/refsched_tests.dir/simcore/rng_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/simcore/rng_test.cc.o.d"
  "/root/repo/tests/simcore/stats_test.cc" "tests/CMakeFiles/refsched_tests.dir/simcore/stats_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/simcore/stats_test.cc.o.d"
  "/root/repo/tests/simcore/types_test.cc" "tests/CMakeFiles/refsched_tests.dir/simcore/types_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/simcore/types_test.cc.o.d"
  "/root/repo/tests/workload/profile_test.cc" "tests/CMakeFiles/refsched_tests.dir/workload/profile_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/workload/profile_test.cc.o.d"
  "/root/repo/tests/workload/trace_file_test.cc" "tests/CMakeFiles/refsched_tests.dir/workload/trace_file_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/workload/trace_file_test.cc.o.d"
  "/root/repo/tests/workload/trace_generator_test.cc" "tests/CMakeFiles/refsched_tests.dir/workload/trace_generator_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/workload/trace_generator_test.cc.o.d"
  "/root/repo/tests/workload/workloads_test.cc" "tests/CMakeFiles/refsched_tests.dir/workload/workloads_test.cc.o" "gcc" "tests/CMakeFiles/refsched_tests.dir/workload/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/refsched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
