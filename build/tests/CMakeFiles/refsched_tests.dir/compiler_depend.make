# Empty compiler generated dependencies file for refsched_tests.
# This may be replaced when dependencies are built.
