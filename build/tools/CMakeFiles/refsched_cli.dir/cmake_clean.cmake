file(REMOVE_RECURSE
  "CMakeFiles/refsched_cli.dir/refsched_cli.cc.o"
  "CMakeFiles/refsched_cli.dir/refsched_cli.cc.o.d"
  "refsched_cli"
  "refsched_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refsched_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
