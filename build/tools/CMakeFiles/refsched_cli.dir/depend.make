# Empty dependencies file for refsched_cli.
# This may be replaced when dependencies are built.
