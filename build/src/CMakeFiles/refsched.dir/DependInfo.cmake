
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/refsched.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/refsched.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/cache_hierarchy.cc" "src/CMakeFiles/refsched.dir/cache/cache_hierarchy.cc.o" "gcc" "src/CMakeFiles/refsched.dir/cache/cache_hierarchy.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/refsched.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/refsched.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/refsched.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/refsched.dir/core/metrics.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/refsched.dir/core/report.cc.o" "gcc" "src/CMakeFiles/refsched.dir/core/report.cc.o.d"
  "/root/repo/src/core/system.cc" "src/CMakeFiles/refsched.dir/core/system.cc.o" "gcc" "src/CMakeFiles/refsched.dir/core/system.cc.o.d"
  "/root/repo/src/core/system_config.cc" "src/CMakeFiles/refsched.dir/core/system_config.cc.o" "gcc" "src/CMakeFiles/refsched.dir/core/system_config.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/refsched.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/refsched.dir/cpu/core.cc.o.d"
  "/root/repo/src/dram/address_mapping.cc" "src/CMakeFiles/refsched.dir/dram/address_mapping.cc.o" "gcc" "src/CMakeFiles/refsched.dir/dram/address_mapping.cc.o.d"
  "/root/repo/src/dram/bank.cc" "src/CMakeFiles/refsched.dir/dram/bank.cc.o" "gcc" "src/CMakeFiles/refsched.dir/dram/bank.cc.o.d"
  "/root/repo/src/dram/energy.cc" "src/CMakeFiles/refsched.dir/dram/energy.cc.o" "gcc" "src/CMakeFiles/refsched.dir/dram/energy.cc.o.d"
  "/root/repo/src/dram/refresh_scheduler.cc" "src/CMakeFiles/refsched.dir/dram/refresh_scheduler.cc.o" "gcc" "src/CMakeFiles/refsched.dir/dram/refresh_scheduler.cc.o.d"
  "/root/repo/src/dram/timings.cc" "src/CMakeFiles/refsched.dir/dram/timings.cc.o" "gcc" "src/CMakeFiles/refsched.dir/dram/timings.cc.o.d"
  "/root/repo/src/memctrl/memory_controller.cc" "src/CMakeFiles/refsched.dir/memctrl/memory_controller.cc.o" "gcc" "src/CMakeFiles/refsched.dir/memctrl/memory_controller.cc.o.d"
  "/root/repo/src/memctrl/request.cc" "src/CMakeFiles/refsched.dir/memctrl/request.cc.o" "gcc" "src/CMakeFiles/refsched.dir/memctrl/request.cc.o.d"
  "/root/repo/src/os/buddy_allocator.cc" "src/CMakeFiles/refsched.dir/os/buddy_allocator.cc.o" "gcc" "src/CMakeFiles/refsched.dir/os/buddy_allocator.cc.o.d"
  "/root/repo/src/os/cfs_runqueue.cc" "src/CMakeFiles/refsched.dir/os/cfs_runqueue.cc.o" "gcc" "src/CMakeFiles/refsched.dir/os/cfs_runqueue.cc.o.d"
  "/root/repo/src/os/scheduler.cc" "src/CMakeFiles/refsched.dir/os/scheduler.cc.o" "gcc" "src/CMakeFiles/refsched.dir/os/scheduler.cc.o.d"
  "/root/repo/src/os/task.cc" "src/CMakeFiles/refsched.dir/os/task.cc.o" "gcc" "src/CMakeFiles/refsched.dir/os/task.cc.o.d"
  "/root/repo/src/os/virtual_memory.cc" "src/CMakeFiles/refsched.dir/os/virtual_memory.cc.o" "gcc" "src/CMakeFiles/refsched.dir/os/virtual_memory.cc.o.d"
  "/root/repo/src/simcore/event_queue.cc" "src/CMakeFiles/refsched.dir/simcore/event_queue.cc.o" "gcc" "src/CMakeFiles/refsched.dir/simcore/event_queue.cc.o.d"
  "/root/repo/src/simcore/logging.cc" "src/CMakeFiles/refsched.dir/simcore/logging.cc.o" "gcc" "src/CMakeFiles/refsched.dir/simcore/logging.cc.o.d"
  "/root/repo/src/simcore/rng.cc" "src/CMakeFiles/refsched.dir/simcore/rng.cc.o" "gcc" "src/CMakeFiles/refsched.dir/simcore/rng.cc.o.d"
  "/root/repo/src/simcore/stats.cc" "src/CMakeFiles/refsched.dir/simcore/stats.cc.o" "gcc" "src/CMakeFiles/refsched.dir/simcore/stats.cc.o.d"
  "/root/repo/src/workload/profile.cc" "src/CMakeFiles/refsched.dir/workload/profile.cc.o" "gcc" "src/CMakeFiles/refsched.dir/workload/profile.cc.o.d"
  "/root/repo/src/workload/trace_file.cc" "src/CMakeFiles/refsched.dir/workload/trace_file.cc.o" "gcc" "src/CMakeFiles/refsched.dir/workload/trace_file.cc.o.d"
  "/root/repo/src/workload/trace_generator.cc" "src/CMakeFiles/refsched.dir/workload/trace_generator.cc.o" "gcc" "src/CMakeFiles/refsched.dir/workload/trace_generator.cc.o.d"
  "/root/repo/src/workload/workloads.cc" "src/CMakeFiles/refsched.dir/workload/workloads.cc.o" "gcc" "src/CMakeFiles/refsched.dir/workload/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
