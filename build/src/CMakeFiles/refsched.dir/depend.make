# Empty dependencies file for refsched.
# This may be replaced when dependencies are built.
