file(REMOVE_RECURSE
  "librefsched.a"
)
