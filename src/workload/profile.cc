#include "workload/profile.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "simcore/logging.hh"

namespace refsched::workload
{

double
PhaseSchedule::maxFootprintScale() const
{
    double maxScale = 1.0;
    for (const auto &p : phases)
        maxScale = std::max(maxScale, p.footprintScale);
    return maxScale;
}

std::string
PhaseSchedule::serialize() const
{
    std::string out;
    for (const auto &p : phases) {
        if (!out.empty())
            out += '|';
        char scale[32];
        std::snprintf(scale, sizeof(scale), "%.6g", p.footprintScale);
        out += detail::format(p.profile, '@', p.instrs, '@', scale);
    }
    return out;
}

PhaseSchedule
PhaseSchedule::parse(const std::string &text)
{
    PhaseSchedule sched;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t end = text.find('|', pos);
        if (end == std::string::npos)
            end = text.size();
        const std::string item = text.substr(pos, end - pos);
        pos = end + 1;

        const std::size_t a = item.find('@');
        const std::size_t b =
            a == std::string::npos ? a : item.find('@', a + 1);
        if (a == std::string::npos || b == std::string::npos)
            fatal("bad phase spec '", item,
                  "' (want profile@instrs@scale)");
        PhaseSpec spec;
        spec.profile = item.substr(0, a);
        spec.instrs = std::strtoull(
            item.substr(a + 1, b - a - 1).c_str(), nullptr, 10);
        spec.footprintScale =
            std::strtod(item.substr(b + 1).c_str(), nullptr);
        sched.phases.push_back(std::move(spec));
    }
    sched.check();
    return sched;
}

void
PhaseSchedule::check() const
{
    for (const auto &p : phases) {
        profileByName(p.profile);  // fatal on unknown name
        if (p.instrs == 0)
            fatal("phase '", p.profile, "': zero instruction budget");
        if (p.footprintScale <= 0.0 || p.footprintScale > 16.0)
            fatal("phase '", p.profile, "': footprintScale ",
                  p.footprintScale, " out of (0,16]");
    }
}

std::string
toString(MpkiClass c)
{
    switch (c) {
      case MpkiClass::Low:
        return "L";
      case MpkiClass::Medium:
        return "M";
      case MpkiClass::High:
        return "H";
    }
    return "?";
}

double
BenchmarkProfile::expectedMpki(std::uint64_t lineBytes) const
{
    const double accessesPerLine =
        static_cast<double>(lineBytes) / accessBytes;
    return 1000.0 * memOpFraction
        * (randomFraction + seqFraction / accessesPerLine);
}

MpkiClass
BenchmarkProfile::classify(double mpki)
{
    if (mpki > 10.0)
        return MpkiClass::High;
    if (mpki >= 1.0)
        return MpkiClass::Medium;
    return MpkiClass::Low;
}

void
BenchmarkProfile::check() const
{
    if (memOpFraction <= 0.0 || memOpFraction >= 1.0)
        fatal(name, ": memOpFraction out of (0,1)");
    if (writeFraction < 0.0 || writeFraction > 1.0)
        fatal(name, ": writeFraction out of [0,1]");
    if (seqFraction < 0.0 || randomFraction < 0.0
        || seqFraction + randomFraction > 1.0) {
        fatal(name, ": pattern mixture fractions invalid");
    }
    if (hotsetBytes > footprintBytes)
        fatal(name, ": hot set larger than footprint");
    if (accessBytes == 0 || !isPowerOfTwo(accessBytes))
        fatal(name, ": accessBytes must be a power of two");
    if (baseCpi <= 0.0)
        fatal(name, ": baseCpi must be positive");
    if ((memPhaseInstrs == 0) != (computePhaseInstrs == 0))
        fatal(name, ": phase lengths must both be set or both zero");
}

namespace
{

/**
 * Built-in profiles.  Footprints follow section 5.4.1 where the
 * paper gives them; the rest are representative of the benchmark
 * (povray/h264ref are compute-bound with small live data, NAS UA is
 * an unstructured-mesh solver).  Mixture fractions are calibrated so
 * expectedMpki() lands in the paper's Table 2 class.
 */
std::map<std::string, BenchmarkProfile>
makeBuiltins()
{
    std::map<std::string, BenchmarkProfile> m;

    {
        // SPEC mcf: pointer-chasing network simplex; "very high
        // MPKI" (section 6.2).
        BenchmarkProfile p;
        p.name = "mcf";
        p.dependentFraction = 0.85;
        p.footprintBytes = static_cast<std::uint64_t>(1.7 * 1024) * kMiB;
        p.memOpFraction = 0.35;
        p.writeFraction = 0.25;
        p.baseCpi = 1.1;  // pointer chasing exposes little ILP
        p.randomFraction = 0.08;
        p.seqFraction = 0.04;
        p.hotsetBytes = 512 * kKiB;
        p.paperClass = MpkiClass::High;
        m[p.name] = p;
    }
    {
        // SPEC bwaves: blocked blast-wave solver, large strided
        // sweeps over big arrays.
        BenchmarkProfile p;
        p.name = "bwaves";
        p.dependentFraction = 0.1;
        p.footprintBytes = 920 * kMiB;
        p.memOpFraction = 0.40;
        p.writeFraction = 0.30;
        p.baseCpi = 0.55;
        p.randomFraction = 0.015;
        p.seqFraction = 0.22;
        p.hotsetBytes = 512 * kKiB;
        p.paperClass = MpkiClass::High;
        m[p.name] = p;
    }
    {
        // STREAM: bandwidth kernel; the paper classes it M.
        BenchmarkProfile p;
        p.name = "stream";
        p.footprintBytes = 800 * kMiB;
        p.memOpFraction = 0.45;
        p.writeFraction = 0.40;
        p.baseCpi = 0.5;
        p.randomFraction = 0.0;
        p.seqFraction = 0.14;
        p.hotsetBytes = 256 * kKiB;
        p.paperClass = MpkiClass::Medium;
        m[p.name] = p;
    }
    {
        // SPEC GemsFDTD: finite-difference time domain over a 3D
        // grid.
        BenchmarkProfile p;
        p.name = "GemsFDTD";
        p.dependentFraction = 0.15;
        p.footprintBytes = 850 * kMiB;
        p.memOpFraction = 0.40;
        p.writeFraction = 0.30;
        p.baseCpi = 0.6;
        p.randomFraction = 0.004;
        p.seqFraction = 0.10;
        p.hotsetBytes = 512 * kKiB;
        p.paperClass = MpkiClass::Medium;
        m[p.name] = p;
    }
    {
        // NAS UA: unstructured adaptive mesh.
        BenchmarkProfile p;
        p.name = "npb_ua";
        p.dependentFraction = 0.4;
        p.footprintBytes = 480 * kMiB;
        p.memOpFraction = 0.35;
        p.writeFraction = 0.28;
        p.baseCpi = 0.6;
        p.randomFraction = 0.003;
        p.seqFraction = 0.08;
        p.hotsetBytes = 512 * kKiB;
        p.paperClass = MpkiClass::Medium;
        m[p.name] = p;
    }
    {
        // SPEC povray: ray tracer, cache resident.
        BenchmarkProfile p;
        p.name = "povray";
        p.footprintBytes = 64 * kMiB;
        p.memOpFraction = 0.30;
        p.writeFraction = 0.20;
        p.baseCpi = 0.45;
        p.randomFraction = 0.0002;
        p.seqFraction = 0.004;
        p.hotsetBytes = 192 * kKiB;
        p.paperClass = MpkiClass::Low;
        m[p.name] = p;
    }
    {
        // SPEC h264ref: video encoder, small working set.
        BenchmarkProfile p;
        p.name = "h264ref";
        p.footprintBytes = 96 * kMiB;
        p.memOpFraction = 0.35;
        p.writeFraction = 0.25;
        p.baseCpi = 0.5;
        p.randomFraction = 0.0003;
        p.seqFraction = 0.006;
        p.hotsetBytes = 224 * kKiB;
        p.paperClass = MpkiClass::Low;
        m[p.name] = p;
    }

    for (auto &[name, p] : m)
        p.check();
    return m;
}

const std::map<std::string, BenchmarkProfile> &
builtins()
{
    static const std::map<std::string, BenchmarkProfile> m =
        makeBuiltins();
    return m;
}

} // namespace

const BenchmarkProfile &
profileByName(const std::string &name)
{
    const auto &m = builtins();
    auto it = m.find(name);
    if (it == m.end())
        fatal("unknown benchmark profile: ", name);
    return it->second;
}

std::vector<std::string>
builtinProfileNames()
{
    std::vector<std::string> names;
    for (const auto &[name, p] : builtins())
        names.push_back(name);
    return names;
}

} // namespace refsched::workload
