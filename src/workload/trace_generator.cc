#include "workload/trace_generator.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace refsched::workload
{

SyntheticTraceGenerator::SyntheticTraceGenerator(
    const BenchmarkProfile &profile, std::uint64_t seed,
    std::uint64_t footprintBytes)
    : base_(profile),
      baseFootprint_(std::max(footprintBytes, profile.hotsetBytes)),
      profile_(profile),
      footprint_(baseFootprint_),
      rng_(seed)
{
    profile_.check();
    base_.phases.check();
    // Spread the stream cursors across the footprint, like the
    // separate operand arrays of a streaming kernel.  Each cursor is
    // additionally staggered by one page: quarter-footprint offsets
    // are typically congruent modulo the bank-interleave period, and
    // without the stagger all streams would walk the same bank with
    // different rows, destroying row-buffer locality artificially.
    for (int s = 0; s < kNumStreams; ++s) {
        streamCursor_[s] = ((footprint_ / kNumStreams + 4 * kKiB)
                            * static_cast<std::uint64_t>(s))
            % footprint_;
    }
    if (profile_.phased())
        phaseInstrsLeft_ = profile_.memPhaseInstrs;
    if (!base_.phases.empty())
        applyPhase(0);
}

void
SyntheticTraceGenerator::applyPhase(std::size_t idx)
{
    const PhaseSpec &spec = base_.phases.phases[idx];
    phaseIdx_ = idx;
    macroInstrsLeft_ = spec.instrs;

    // The phase contributes its pattern mixture and intensity; the
    // task keeps its identity (hot set, access granularity).
    BenchmarkProfile eff = profileByName(spec.profile);
    eff.name = base_.name + ":" + spec.profile;
    eff.hotsetBytes = base_.hotsetBytes;
    eff.accessBytes = base_.accessBytes;
    eff.phases = {};

    footprint_ = std::max<std::uint64_t>(
        static_cast<std::uint64_t>(
            static_cast<double>(baseFootprint_) * spec.footprintScale),
        eff.hotsetBytes);
    eff.footprintBytes = footprint_;
    eff.check();
    profile_ = eff;

    // A shrink can leave cursors past the new footprint.
    for (auto &cur : streamCursor_)
        cur %= footprint_;

    inMemPhase_ = true;
    phaseInstrsLeft_ = profile_.phased() ? profile_.memPhaseInstrs : 0;
}

cpu::TraceEntry
SyntheticTraceGenerator::next()
{
    if (!base_.phases.empty() && macroInstrsLeft_ == 0) {
        ++phaseEpoch_;
        applyPhase((phaseIdx_ + 1) % base_.phases.phases.size());
    }

    cpu::TraceEntry e;
    // Gap between memory ops: geometric with mean (1-f)/f.
    e.gap = static_cast<std::uint32_t>(
        rng_.geometric(profile_.memOpFraction, 4096));
    e.isWrite = rng_.bernoulli(profile_.writeFraction);

    if (!base_.phases.empty()) {
        macroInstrsLeft_ -=
            std::min<std::uint64_t>(macroInstrsLeft_, e.gap + 1ULL);
    }

    if (profile_.phased()) {
        if (phaseInstrsLeft_ == 0) {
            inMemPhase_ = !inMemPhase_;
            phaseInstrsLeft_ = inMemPhase_
                ? profile_.memPhaseInstrs
                : profile_.computePhaseInstrs;
        }
        const std::uint64_t consumed = e.gap + 1ULL;
        phaseInstrsLeft_ -= std::min(phaseInstrsLeft_, consumed);
        if (!inMemPhase_) {
            // Compute phase: everything hits the hot set.
            e.vaddr = rng_.below(profile_.hotsetBytes
                                 / profile_.accessBytes)
                * profile_.accessBytes;
            return e;
        }
    }

    const double which = rng_.real();
    if (which < profile_.seqFraction) {
        auto &cur = streamCursor_[nextStream_];
        nextStream_ = (nextStream_ + 1) % kNumStreams;
        cur += profile_.accessBytes;
        if (cur >= footprint_)
            cur = 0;
        e.vaddr = cur;
        e.sequential = true;
    } else if (which < profile_.seqFraction + profile_.randomFraction) {
        e.vaddr = rng_.below(footprint_ / profile_.accessBytes)
            * profile_.accessBytes;
        e.dependent = rng_.bernoulli(profile_.dependentFraction);
    } else {
        e.vaddr = rng_.below(profile_.hotsetBytes / profile_.accessBytes)
            * profile_.accessBytes;
    }
    return e;
}

} // namespace refsched::workload
