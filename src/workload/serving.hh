/**
 * @file
 * Open-loop request-serving workload (memcached/search-leaf shaped).
 *
 * A ServingInjector models a fleet of clients that do NOT wait for
 * the system: request timestamps come from a deterministic
 * ArrivalProcess (Poisson or bursty MMPP) at a configured offered
 * load, independent of completions.  Requests are served by a fixed
 * pool of service slots; when every slot is busy, arrivals queue in
 * a bounded backlog, and when the backlog is full they are dropped
 * -- the queueing/drop accounting that makes "offered load vs p99"
 * an honest hockey-stick curve rather than a self-throttling one.
 *
 * Each request reads `linesPerRequest` cache lines drawn uniformly
 * from a live task's footprint (through demand-paged translation, so
 * placement policy applies) and completes when the last line's data
 * returns.  The end-to-end latency -- queueing delay included -- is
 * sampled into clean/refresh-blocked split histograms: a request
 * counts as refresh-blocked iff any of its lines observed its bank
 * busy refreshing, which is exactly the tail amplification the
 * co-design policy is supposed to remove.
 *
 * Determinism: all randomness comes from CounterRng streams
 * (rngstream::kServingTask / kServingAddr) and the ArrivalProcess's
 * own streams, so the injected traffic is a pure function of the
 * seed and the completion timeline -- bit-identical across
 * {jobs} x {shards} x {core-lanes} within a kernel mode.  The
 * injector lives on the main lane; in sharded mode its coreId = -1
 * requests stage through the ShardRouter onto the owning channel
 * lane at the next epoch boundary, the same path the scenario
 * engine's migration traffic already takes.
 */

#ifndef REFSCHED_WORKLOAD_SERVING_HH
#define REFSCHED_WORKLOAD_SERVING_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "memctrl/memory_port.hh"
#include "simcore/event_queue.hh"
#include "simcore/rng.hh"
#include "simcore/stats.hh"
#include "simcore/types.hh"
#include "workload/arrival.hh"

namespace refsched::os
{
class Task;
} // namespace refsched::os

namespace refsched::workload
{

/** Configuration of the open-loop serving workload. */
struct ServingConfig
{
    bool enabled = false;

    ArrivalShape shape;

    /** Offered load in requests per microsecond (ticks are ps). */
    double loadReqPerUs = 0.5;

    /** Service slots (concurrent in-flight requests). */
    int poolSize = 8;

    /** Backlog capacity; arrivals beyond it are dropped. */
    int queueCapacity = 64;

    /** Cache lines read per request. */
    int linesPerRequest = 4;

    /** Mean interarrival time in ticks at the offered load. */
    double
    meanGapTicks() const
    {
        return 1e6 / loadReqPerUs;
    }

    void check() const;

    /**
     * Parse the CLI/fuzzer spec form: comma-separated key=value of
     * arrival=poisson|mmpp, load=<req/us>, pool=<n>, queue=<n>,
     * lines=<n>, burst-ratio=<x>, burst-frac=<x>, burst-dwell=<x>.
     * Unknown keys are fatal; the result has enabled = true.
     */
    static ServingConfig parse(const std::string &spec);

    /** Inverse of parse() (canonical key order). */
    std::string serialize() const;
};

/**
 * The open-loop injector: one Callee on the main-lane event queue
 * that turns arrival timestamps into DRAM read traffic and collects
 * per-request latency split clean vs refresh-blocked.
 */
class ServingInjector final : public Callee
{
  public:
    struct Hooks
    {
        /** Currently live tasks, in deterministic order. */
        std::function<const std::vector<os::Task *> &()> liveTasks;

        /** Current footprint of @p task in bytes. */
        std::function<std::uint64_t(const os::Task &)> footprintBytes;

        /** Demand-paged virtual -> physical translation. */
        std::function<Addr(os::Task &, Addr)> translate;
    };

    ServingInjector(const ServingConfig &cfg, EventQueue &eq,
                    memctrl::MemoryPort &mem, Hooks hooks,
                    std::uint64_t seed);

    /** Register serving.* stats under @p prefix. */
    void registerStats(StatRegistry &reg, const std::string &prefix);

    /** Arrival events (cookie0 = kArrivalCookie) and per-line read
     *  completions (cookie0 = slot, cookie1 = line index). */
    void fire(Tick now, std::uint64_t a0, std::uint64_t a1) override;

    // --- Accounting access (benches, tests) ---
    const Histogram &latency() const { return latAll_; }
    const Histogram &latencyClean() const { return latClean_; }
    const Histogram &latencyBlocked() const { return latBlocked_; }
    const Histogram &queueDelay() const { return queueDelay_; }
    std::uint64_t arrivals() const
    {
        return static_cast<std::uint64_t>(arrivals_.value());
    }
    std::uint64_t dropped() const
    {
        return static_cast<std::uint64_t>(drops_.value());
    }
    std::uint64_t completed() const
    {
        return static_cast<std::uint64_t>(completed_.value());
    }

    /** Current backlog depth (telemetry gauge). */
    std::size_t backlogDepth() const { return backlog_.size(); }

  private:
    /** cookie0 marker distinguishing arrivals from completions. */
    static constexpr std::uint64_t kArrivalCookie = ~std::uint64_t{0};

    struct Slot
    {
        bool busy = false;
        Tick arrivalTick = 0;
        Tick startTick = 0;
        int linesDone = 0;
        int nextIssue = 0;
        Pid pid = -1;
        std::vector<Addr> paddrs;
    };

    void scheduleNextArrival();
    void onArrival(Tick now);
    void onLineDone(Tick now, std::size_t slot, std::size_t line);
    /** Admit the request that arrived at @p arrivalTick into @p slot
     *  (picks a task, translates addresses, issues the reads). */
    void startService(std::size_t slot, Tick arrivalTick, Tick now);
    void issueLines(std::size_t slot);
    void armRetry();
    int findFreeSlot() const;

    ServingConfig cfg_;
    EventQueue &eq_;
    memctrl::MemoryPort &mem_;
    Hooks hooks_;

    ArrivalProcess arrivalGen_;
    CounterRng taskPick_;
    CounterRng addrPick_;

    std::vector<Slot> slots_;
    /** Per (slot, line) refresh-blocked flags written by the
     *  controller through Request::blockedOut.  Flat bytes: a line
     *  is owned by exactly one channel, so concurrent channel lanes
     *  never touch the same element. */
    std::vector<std::uint8_t> lineBlocked_;
    std::deque<Tick> backlog_;
    bool retryArmed_ = false;

    // --- Stats ---
    Scalar arrivals_;
    Scalar drops_;
    Scalar completed_;
    Scalar backlogPeak_;
    Scalar retryWaits_;
    Histogram queueDelay_;
    Histogram latAll_;
    Histogram latClean_;
    Histogram latBlocked_;
};

} // namespace refsched::workload

#endif // REFSCHED_WORKLOAD_SERVING_HH
