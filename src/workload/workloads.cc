#include "workload/workloads.hh"

#include "simcore/logging.hh"

namespace refsched::workload
{

int
WorkloadSpec::baseTaskCount() const
{
    int n = 0;
    for (const auto &[bench, count] : mix)
        n += count;
    return n;
}

std::vector<std::string>
WorkloadSpec::taskList(int totalTasks) const
{
    const int base = baseTaskCount();
    REFSCHED_ASSERT(base > 0, "empty workload mix");

    std::vector<std::string> tasks;
    tasks.reserve(static_cast<std::size_t>(totalTasks));

    if (totalTasks % base == 0) {
        // Exact replication of the mix.
        const int times = totalTasks / base;
        for (const auto &[bench, count] : mix) {
            for (int i = 0; i < count * times; ++i)
                tasks.push_back(bench);
        }
        return tasks;
    }

    // Proportional down/up-scaling (e.g. 8-task mix onto 4 tasks):
    // round-robin over the mix until the target count is reached,
    // weighting by the original counts.
    while (static_cast<int>(tasks.size()) < totalTasks) {
        for (const auto &[bench, count] : mix) {
            const int want = (count * totalTasks + base - 1) / base;
            int have = 0;
            for (const auto &t : tasks)
                if (t == bench)
                    ++have;
            if (have < want
                && static_cast<int>(tasks.size()) < totalTasks) {
                tasks.push_back(bench);
            }
        }
    }
    return tasks;
}

const std::vector<WorkloadSpec> &
table2Workloads()
{
    static const std::vector<WorkloadSpec> workloads = {
        {"WL-1", {{"mcf", 8}}, "H"},
        {"WL-2", {{"povray", 8}}, "L"},
        {"WL-3", {{"h264ref", 8}}, "L"},
        {"WL-4", {{"povray", 4}, {"h264ref", 4}}, "L"},
        {"WL-5", {{"GemsFDTD", 8}}, "M"},
        {"WL-6", {{"mcf", 4}, {"povray", 4}}, "H + L"},
        {"WL-7", {{"stream", 4}, {"h264ref", 4}}, "M + L"},
        {"WL-8", {{"bwaves", 4}, {"h264ref", 4}}, "H + L"},
        {"WL-9", {{"npb_ua", 4}, {"povray", 4}}, "M + L"},
        {"WL-10", {{"mcf", 4}, {"bwaves", 2}, {"povray", 2}}, "H + L"},
    };
    return workloads;
}

const WorkloadSpec &
workloadByName(const std::string &name)
{
    for (const auto &wl : table2Workloads()) {
        if (wl.name == name)
            return wl;
    }
    fatal("unknown workload: ", name);
}

std::vector<std::string>
randomTaskList(Rng &rng, int totalTasks)
{
    REFSCHED_ASSERT(totalTasks > 0, "empty task list requested");
    const auto names = builtinProfileNames();
    std::vector<std::string> tasks;
    tasks.reserve(static_cast<std::size_t>(totalTasks));
    for (int i = 0; i < totalTasks; ++i)
        tasks.push_back(names[rng.below(names.size())]);
    return tasks;
}

} // namespace refsched::workload
