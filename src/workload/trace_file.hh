/**
 * @file
 * Trace recording and replay.
 *
 * Lets users capture a task's instruction stream (synthetic or
 * otherwise) to a compact binary file and replay it later --
 * e.g. to pin a workload across library versions, to share a
 * reproduction input, or to splice in externally generated traces
 * (the closest substitute for the paper's SPEC reference runs).
 *
 * File format (little-endian):
 *   16-byte header: magic "RSTR", u32 version, u64 entry count
 *   entries: u32 gap, u8 flags (bit0 write, bit1 sequential,
 *            bit2 dependent), u8[3] pad, u64 vaddr
 */

#ifndef REFSCHED_WORKLOAD_TRACE_FILE_HH
#define REFSCHED_WORKLOAD_TRACE_FILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/instruction_source.hh"

namespace refsched::workload
{

/** Capture entries from @p source into an in-memory trace. */
std::vector<cpu::TraceEntry> recordTrace(cpu::InstructionSource &source,
                                         std::uint64_t entries);

/** Write @p entries to @p path; fatal() on I/O errors. */
void writeTraceFile(const std::string &path,
                    const std::vector<cpu::TraceEntry> &entries,
                    double baseCpi = 0.5);

/** Result of loading a trace file. */
struct LoadedTrace
{
    std::vector<cpu::TraceEntry> entries;
    double baseCpi = 0.5;
};

/** Read a trace file; fatal() on corrupt or unreadable input. */
LoadedTrace readTraceFile(const std::string &path);

/**
 * An InstructionSource replaying a recorded trace, looping when the
 * recording is exhausted (simulations are time-bounded, so sources
 * must be infinite).
 */
class ReplaySource final : public cpu::InstructionSource
{
  public:
    explicit ReplaySource(std::vector<cpu::TraceEntry> entries,
                          double baseCpi = 0.5);

    /** Convenience: load from a trace file. */
    explicit ReplaySource(const std::string &path);

    cpu::TraceEntry next() override;
    double baseCpi() const override { return baseCpi_; }

    std::size_t size() const { return entries_.size(); }
    std::uint64_t loops() const { return loops_; }

  private:
    std::vector<cpu::TraceEntry> entries_;
    double baseCpi_;
    std::size_t pos_ = 0;
    std::uint64_t loops_ = 0;
};

} // namespace refsched::workload

#endif // REFSCHED_WORKLOAD_TRACE_FILE_HH
