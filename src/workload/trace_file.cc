#include "workload/trace_file.hh"

#include <cstdio>
#include <cstring>
#include <memory>

#include "simcore/logging.hh"

namespace refsched::workload
{

namespace
{

constexpr char kMagic[4] = {'R', 'S', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;

struct FileHeader
{
    char magic[4];
    std::uint32_t version;
    std::uint64_t count;
    double baseCpi;
};

struct FileEntry
{
    std::uint32_t gap;
    std::uint8_t flags;
    std::uint8_t pad[3];
    std::uint64_t vaddr;
};
static_assert(sizeof(FileEntry) == 16, "packed trace entry layout");

constexpr std::uint8_t kFlagWrite = 1u << 0;
constexpr std::uint8_t kFlagSequential = 1u << 1;
constexpr std::uint8_t kFlagDependent = 1u << 2;

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

std::vector<cpu::TraceEntry>
recordTrace(cpu::InstructionSource &source, std::uint64_t entries)
{
    std::vector<cpu::TraceEntry> out;
    out.reserve(entries);
    for (std::uint64_t i = 0; i < entries; ++i)
        out.push_back(source.next());
    return out;
}

void
writeTraceFile(const std::string &path,
               const std::vector<cpu::TraceEntry> &entries,
               double baseCpi)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        fatal("cannot open trace file for writing: ", path);

    FileHeader header{};
    std::memcpy(header.magic, kMagic, sizeof(kMagic));
    header.version = kVersion;
    header.count = entries.size();
    header.baseCpi = baseCpi;
    if (std::fwrite(&header, sizeof(header), 1, f.get()) != 1)
        fatal("short write on trace header: ", path);

    for (const auto &e : entries) {
        FileEntry fe{};
        fe.gap = e.gap;
        fe.flags = (e.isWrite ? kFlagWrite : 0)
            | (e.sequential ? kFlagSequential : 0)
            | (e.dependent ? kFlagDependent : 0);
        fe.vaddr = e.vaddr;
        if (std::fwrite(&fe, sizeof(fe), 1, f.get()) != 1)
            fatal("short write on trace entry: ", path);
    }
}

LoadedTrace
readTraceFile(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        fatal("cannot open trace file: ", path);

    FileHeader header{};
    if (std::fread(&header, sizeof(header), 1, f.get()) != 1)
        fatal("trace file too short: ", path);
    if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0)
        fatal("not a refsched trace file: ", path);
    if (header.version != kVersion)
        fatal("unsupported trace version ", header.version, ": ",
              path);

    LoadedTrace out;
    out.baseCpi = header.baseCpi;
    out.entries.reserve(header.count);
    for (std::uint64_t i = 0; i < header.count; ++i) {
        FileEntry fe{};
        if (std::fread(&fe, sizeof(fe), 1, f.get()) != 1)
            fatal("truncated trace file at entry ", i, ": ", path);
        cpu::TraceEntry e;
        e.gap = fe.gap;
        e.isWrite = fe.flags & kFlagWrite;
        e.sequential = fe.flags & kFlagSequential;
        e.dependent = fe.flags & kFlagDependent;
        e.vaddr = fe.vaddr;
        out.entries.push_back(e);
    }
    return out;
}

ReplaySource::ReplaySource(std::vector<cpu::TraceEntry> entries,
                           double baseCpi)
    : entries_(std::move(entries)), baseCpi_(baseCpi)
{
    if (entries_.empty())
        fatal("cannot replay an empty trace");
}

ReplaySource::ReplaySource(const std::string &path) : baseCpi_(0.5)
{
    auto loaded = readTraceFile(path);
    entries_ = std::move(loaded.entries);
    baseCpi_ = loaded.baseCpi;
    if (entries_.empty())
        fatal("cannot replay an empty trace: ", path);
}

cpu::TraceEntry
ReplaySource::next()
{
    const auto e = entries_[pos_];
    if (++pos_ == entries_.size()) {
        pos_ = 0;
        ++loops_;
    }
    return e;
}

} // namespace refsched::workload
