/**
 * @file
 * Adversarial colocation generator (scenario engine): a wrapper
 * around SyntheticTraceGenerator that redirects most accesses at the
 * task's pages living in banks *about to be refreshed*.  This is the
 * worst case for the co-design: a tenant whose traffic chases the
 * refresh schedule defeats the clean/dirty classification for every
 * task sharing those banks, and -- after churn strands its placement
 * -- makes stale pages maximally expensive until they are migrated.
 */

#ifndef REFSCHED_WORKLOAD_HOTSPOT_SOURCE_HH
#define REFSCHED_WORKLOAD_HOTSPOT_SOURCE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "cpu/instruction_source.hh"
#include "dram/address_mapping.hh"
#include "simcore/types.hh"
#include "workload/trace_generator.hh"

namespace refsched::os
{
class Task;
} // namespace refsched::os

namespace refsched::workload
{

class AdversarialHotspotSource final : public cpu::InstructionSource
{
  public:
    /** Global banks under (or imminently entering) refresh at a
     *  tick; empty under policies with no forecastable schedule. */
    using RefreshQuery = std::function<std::vector<int>(Tick)>;

    /**
     * @param task     the task this source drives (its page table
     *                 tells us which vpns live in the target banks)
     * @param clock    current simulation tick (the source has no
     *                 event-queue access of its own)
     * @param hotspotFraction  probability a memory access is
     *                 redirected at a refreshing bank
     */
    AdversarialHotspotSource(const BenchmarkProfile &profile,
                             std::uint64_t seed,
                             std::uint64_t footprintBytes,
                             const os::Task *task,
                             const dram::AddressMapping *mapping,
                             RefreshQuery refreshQuery,
                             std::function<Tick()> clock,
                             double hotspotFraction = 0.8);

    cpu::TraceEntry next() override;

    double baseCpi() const override { return base_.baseCpi(); }

    /** Underlying generator (phase state, effective footprint). */
    const SyntheticTraceGenerator &generator() const { return base_; }

  private:
    SyntheticTraceGenerator base_;
    const os::Task *task_;
    const dram::AddressMapping *mapping_;
    RefreshQuery refreshQuery_;
    std::function<Tick()> clock_;
    double hotspotFraction_;
    Rng rng_;

    /** Banks the candidate list was built for. */
    std::vector<int> cachedBanks_;
    /** vpns of the task's pages resident in cachedBanks_. */
    std::vector<std::uint64_t> candidates_;
};

} // namespace refsched::workload

#endif // REFSCHED_WORKLOAD_HOTSPOT_SOURCE_HH
