/**
 * @file
 * Dynamic-workload scenario scripts: tenant arrival/departure churn,
 * mid-run phase changes and the page-migration / mask-reassignment
 * knobs, all expressed in scheduler-quantum units so the same script
 * is meaningful under every refresh policy (the quantum depends only
 * on topology, not on the policy).
 *
 * Text form (one directive per line, '#' comments):
 *
 *   migrate=0|1             migrate stale pages after churn
 *   reassign=0|1            re-binpack bank masks after churn
 *   phase=<taskIdx>:<sched> PhaseSchedule for an initial task
 *   ev=<q>:spawn:<bench>[:fp=<scale>][:cpu=<n>][:adv=1][:phases=<sched>]
 *   ev=<q>:kill:<pid>
 *
 * where <sched> is PhaseSchedule's "profile@instrs@scale|..." form
 * (no ':' can occur inside it, so the ev-line split is unambiguous).
 * Spawned tasks receive sequential pids: totalTasks+1 for the first
 * spawn in quantum order, and so on -- kill events may target them.
 */

#ifndef REFSCHED_WORKLOAD_SCENARIO_HH
#define REFSCHED_WORKLOAD_SCENARIO_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "simcore/rng.hh"
#include "simcore/types.hh"
#include "workload/profile.hh"

namespace refsched::workload
{

enum class ScenarioEventKind { Spawn, Kill };

struct ScenarioEvent
{
    /** Quantum index (0 = the first scheduling boundary). */
    std::uint64_t quantum = 0;
    ScenarioEventKind kind = ScenarioEventKind::Spawn;

    // --- Spawn ---
    std::string benchmark;
    /** Footprint scale relative to the benchmark's (time-scaled)
     *  base footprint. */
    double footprintScale = 1.0;
    /** Home CPU; -1 = least loaded. */
    int cpu = -1;
    /** Drive the task with the adversarial colocation generator
     *  (hotspots the bank about to be refreshed). */
    bool adversarial = false;
    /** Macro-phase schedule (empty = static profile). */
    PhaseSchedule phases;

    // --- Kill ---
    Pid pid = -1;
};

struct ScenarioScript
{
    /** Churn events, sorted by quantum (stable on parse). */
    std::vector<ScenarioEvent> events;

    /** Migrate pages stranded outside a task's
     *  possible_banks_vector after churn. */
    bool migrate = false;

    /** Recompute every live task's bank mask after each churn event
     *  (the consolidation re-binpack that strands placements). */
    bool reassignOnChurn = true;

    /** PhaseSchedules for initial tasks, by task index. */
    std::vector<std::pair<int, PhaseSchedule>> initialPhases;

    bool
    empty() const
    {
        return events.empty() && initialPhases.empty();
    }

    /** True when any spawn event uses the adversarial generator. */
    bool hasAdversarial() const;

    std::string serialize() const;

    /** Parse the text form; fatal() on malformed input. */
    static ScenarioScript parse(const std::string &text);

    /** Parse a script file; fatal() on I/O errors. */
    static ScenarioScript parseFile(const std::string &path);

    /** Range-check all directives; fatal() on nonsense. */
    void check() const;
};

/**
 * Sample a random scenario for the differential fuzzer: a handful of
 * spawn/kill events inside [1, horizonQuanta), optional initial
 * phase schedules, and random migrate/reassign settings.  Kill
 * targets only pids guaranteed alive at the event's quantum, and at
 * least one task always survives.
 */
ScenarioScript randomScenario(Rng &rng, int initialTasks,
                              std::uint64_t horizonQuanta);

} // namespace refsched::workload

#endif // REFSCHED_WORKLOAD_SCENARIO_HH
