/**
 * @file
 * The multi-programmed workloads of Table 2 and their consolidation
 * variants.
 *
 * A workload is a multiset of benchmark names.  Table 2 defines the
 * dual-core 1:4 mixes (8 tasks); the sensitivity study (Fig. 15)
 * re-scales the same proportions to other core counts and
 * consolidation ratios.
 */

#ifndef REFSCHED_WORKLOAD_WORKLOADS_HH
#define REFSCHED_WORKLOAD_WORKLOADS_HH

#include <string>
#include <vector>

#include "simcore/rng.hh"
#include "workload/profile.hh"

namespace refsched::workload
{

struct WorkloadSpec
{
    std::string name;        ///< "WL-1" .. "WL-10"
    /** (benchmark, count) pairs, counts for the 8-task baseline. */
    std::vector<std::pair<std::string, int>> mix;
    std::string mpkiLabel;   ///< Table 2's class column ("H + L", ...)

    /** Expand to a task list with @p totalTasks entries, preserving
     *  the mix proportions (totalTasks must be a multiple of the
     *  distinct benchmark granularity; 4, 8 and 16 all work). */
    std::vector<std::string> taskList(int totalTasks = 8) const;

    int baseTaskCount() const;
};

/** The ten workloads of Table 2. */
const std::vector<WorkloadSpec> &table2Workloads();

/** Look up a workload by name ("WL-3"). */
const WorkloadSpec &workloadByName(const std::string &name);

/**
 * A random multiset of built-in benchmark names: uniform independent
 * draws over builtinProfileNames().  Unlike the curated Table 2
 * mixes this reaches arbitrary intensity combinations (all-high,
 * all-low, lopsided), which is what the differential fuzzer wants.
 * Deterministic in @p rng.
 */
std::vector<std::string> randomTaskList(Rng &rng, int totalTasks);

} // namespace refsched::workload

#endif // REFSCHED_WORKLOAD_WORKLOADS_HH
