#include "workload/hotspot_source.hh"

#include <utility>

#include "os/task.hh"

namespace refsched::workload
{

AdversarialHotspotSource::AdversarialHotspotSource(
    const BenchmarkProfile &profile, std::uint64_t seed,
    std::uint64_t footprintBytes, const os::Task *task,
    const dram::AddressMapping *mapping, RefreshQuery refreshQuery,
    std::function<Tick()> clock, double hotspotFraction)
    : base_(profile, seed, footprintBytes),
      task_(task),
      mapping_(mapping),
      refreshQuery_(std::move(refreshQuery)),
      clock_(std::move(clock)),
      hotspotFraction_(hotspotFraction),
      rng_(seed ^ 0xADBEEF5ULL)
{
}

cpu::TraceEntry
AdversarialHotspotSource::next()
{
    cpu::TraceEntry e = base_.next();
    if (!rng_.bernoulli(hotspotFraction_))
        return e;

    std::vector<int> banks = refreshQuery_(clock_());
    if (banks.empty())
        return e;  // nothing forecastable (AllBank, NoRefresh, ...)

    if (banks != cachedBanks_) {
        // Rebuild the target-page list by walking vpns in order (a
        // pageTable iteration would leak hash order into the trace).
        // Pages are touched lazily, so unmapped vpns simply skip.
        cachedBanks_ = banks;
        candidates_.clear();
        const std::uint64_t pageBytes = mapping_->pageBytes();
        const std::uint64_t vpns =
            (base_.footprintBytes() + pageBytes - 1) / pageBytes;
        for (std::uint64_t vpn = 0; vpn < vpns; ++vpn) {
            const auto it = task_->pageTable.find(vpn);
            if (it == task_->pageTable.end())
                continue;
            const int bank = mapping_->bankOfFrame(it->second);
            for (const int b : banks) {
                if (b == bank) {
                    candidates_.push_back(vpn);
                    break;
                }
            }
        }
    }
    if (candidates_.empty())
        return e;  // no pages in the victim banks yet

    const std::uint64_t pageBytes = mapping_->pageBytes();
    const std::uint64_t vpn = candidates_[rng_.below(candidates_.size())];
    const std::uint32_t access = base_.profile().accessBytes;
    e.vaddr = vpn * pageBytes + rng_.below(pageBytes / access) * access;
    e.sequential = false;
    e.dependent = false;
    return e;
}

} // namespace refsched::workload
