/**
 * @file
 * Deterministic arrival processes for open-loop serving workloads.
 *
 * An ArrivalProcess turns (seed, offered load) into a reproducible
 * sequence of request timestamps.  Two processes are provided:
 *
 *  - Poisson: i.i.d. exponential interarrivals at the offered rate;
 *    the memoryless baseline (interarrival CV = 1).
 *  - Mmpp: a 2-state Markov-modulated Poisson process -- a burst
 *    state running at burstRatio x the base rate and a quiet state
 *    running below it, with exponentially distributed dwell times
 *    chosen so the long-run average still meets the offered rate.
 *    Burstiness shows up as interarrival CV > 1 and is what makes
 *    p999 interesting at moderate utilization.
 *
 * All randomness comes from CounterRng streams (rngstream::kArrival
 * for interarrivals, rngstream::kArrivalPhase for MMPP dwells), so
 * the generated timestamp sequence is a pure function of the seed --
 * independent of jobs/shards/core-lane partitioning and of any other
 * generator's draw order.
 */

#ifndef REFSCHED_WORKLOAD_ARRIVAL_HH
#define REFSCHED_WORKLOAD_ARRIVAL_HH

#include <cstdint>
#include <string>

#include "simcore/rng.hh"
#include "simcore/types.hh"

namespace refsched::workload
{

enum class ArrivalKind
{
    Poisson,
    Mmpp,
};

std::string toString(ArrivalKind k);

/** Parse "poisson" / "mmpp"; fatal() on anything else. */
ArrivalKind arrivalKindFromString(const std::string &s);

/**
 * Shape parameters of an arrival process.  The offered load itself
 * (mean interarrival in ticks) is passed to the generator separately
 * so one shape can be swept across load levels.
 */
struct ArrivalShape
{
    ArrivalKind kind = ArrivalKind::Poisson;

    /** MMPP only: burst-state rate as a multiple of the base rate
     *  (> 1). */
    double burstRatio = 4.0;

    /** MMPP only: long-run fraction of time spent in the burst
     *  state (in (0, 1)). */
    double burstFraction = 0.1;

    /** MMPP only: mean dwell in the burst state, expressed in mean
     *  interarrivals of the *offered* rate (so bursts hold several
     *  requests regardless of load level). */
    double burstDwellArrivals = 64.0;

    void check() const;
};

/**
 * Generator of one deterministic arrival-timestamp sequence.
 *
 * next() returns strictly increasing ticks; each call advances the
 * process by one exponential interarrival (and, for MMPP, through
 * any state switches that fall inside it).
 */
class ArrivalProcess
{
  public:
    /**
     * @param shape     process shape (validated with check())
     * @param meanGapTicks  mean interarrival time in ticks at the
     *                  offered rate; must be >= 1
     * @param seed      workload seed; together with the fixed stream
     *                  keys this fully determines the sequence
     * @param startTick timestamp the sequence starts from
     */
    ArrivalProcess(const ArrivalShape &shape, double meanGapTicks,
                   std::uint64_t seed, Tick startTick);

    /** Timestamp of the next arrival (strictly increasing). */
    Tick next();

    /** Arrivals generated so far. */
    std::uint64_t generated() const { return generated_; }

  private:
    double expDraw(CounterRng &rng, double mean);

    /** Advance MMPP state machine to cover @p now; returns the
     *  current state's rate multiplier. */
    double currentRateMul(double now);

    ArrivalShape shape_;
    double meanGap_;
    CounterRng gaps_;
    CounterRng dwells_;
    double now_;
    Tick lastTick_ = 0;
    std::uint64_t generated_ = 0;

    // MMPP modulation: piecewise-constant rate; state switches are
    // drawn lazily as arrivals cross the next switch boundary.
    bool inBurst_ = false;
    double stateUntil_ = 0.0;
    double burstMul_ = 1.0;
    double quietMul_ = 1.0;
    double burstDwell_ = 0.0;
    double quietDwell_ = 0.0;
};

} // namespace refsched::workload

#endif // REFSCHED_WORKLOAD_ARRIVAL_HH
