/**
 * @file
 * Deterministic synthetic trace generation from a BenchmarkProfile.
 *
 * Virtual address space layout (per task, starting at 0):
 *   [0, hotsetBytes)        the cache-resident hot region
 *   [0, footprint)          sequential streams and random accesses
 *                           range over the whole footprint
 *
 * Sequential accesses advance a small set of stream cursors spread
 * across the footprint (wrapping), like the multiple array operands
 * of STREAM/bwaves; random accesses are uniform over the footprint
 * (pointer chasing); everything else hits the hot set.
 */

#ifndef REFSCHED_WORKLOAD_TRACE_GENERATOR_HH
#define REFSCHED_WORKLOAD_TRACE_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "cpu/instruction_source.hh"
#include "simcore/rng.hh"
#include "workload/profile.hh"

namespace refsched::workload
{

class SyntheticTraceGenerator final : public cpu::InstructionSource
{
  public:
    /**
     * @param profile        the benchmark model
     * @param seed           RNG seed (per task, for distinct streams)
     * @param footprintBytes effective footprint (callers scale the
     *                       profile footprint by the system
     *                       timeScale); clamped to >= hot set
     */
    SyntheticTraceGenerator(const BenchmarkProfile &profile,
                            std::uint64_t seed,
                            std::uint64_t footprintBytes);

    cpu::TraceEntry next() override;

    double baseCpi() const override { return profile_.baseCpi; }

    /** The effective profile of the current macro-phase. */
    const BenchmarkProfile &profile() const { return profile_; }

    /** Effective footprint of the current macro-phase. */
    std::uint64_t footprintBytes() const { return footprint_; }

    /** True while the generator is in a memory-intensive phase
     *  (always true for unphased profiles). */
    bool inMemPhase() const { return inMemPhase_; }

    /** Number of macro-phase switches taken so far (0 when the base
     *  profile has no PhaseSchedule). */
    std::uint64_t phaseEpoch() const { return phaseEpoch_; }

  private:
    static constexpr int kNumStreams = 4;

    /** Enter macro-phase @p idx of the base profile's schedule. */
    void applyPhase(std::size_t idx);

    /** Base profile (with the PhaseSchedule) and unscaled effective
     *  footprint, the reference phase scales apply to. */
    BenchmarkProfile base_;
    std::uint64_t baseFootprint_;

    BenchmarkProfile profile_;
    std::uint64_t footprint_;
    Rng rng_;
    std::uint64_t streamCursor_[kNumStreams];
    int nextStream_ = 0;

    // Micro-phase tracking (instruction budget of the current phase).
    bool inMemPhase_ = true;
    std::uint64_t phaseInstrsLeft_ = 0;

    // Macro-phase tracking (PhaseSchedule position).
    std::size_t phaseIdx_ = 0;
    std::uint64_t macroInstrsLeft_ = 0;
    std::uint64_t phaseEpoch_ = 0;
};

} // namespace refsched::workload

#endif // REFSCHED_WORKLOAD_TRACE_GENERATOR_HH
