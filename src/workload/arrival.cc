#include "workload/arrival.hh"

#include <cmath>

#include "simcore/logging.hh"

namespace refsched::workload
{

std::string
toString(ArrivalKind k)
{
    switch (k) {
      case ArrivalKind::Poisson:
        return "poisson";
      case ArrivalKind::Mmpp:
        return "mmpp";
    }
    return "?";
}

ArrivalKind
arrivalKindFromString(const std::string &s)
{
    if (s == "poisson")
        return ArrivalKind::Poisson;
    if (s == "mmpp")
        return ArrivalKind::Mmpp;
    fatal("unknown arrival kind: ", s, " (want poisson|mmpp)");
}

void
ArrivalShape::check() const
{
    if (kind == ArrivalKind::Poisson)
        return;
    if (burstRatio <= 1.0)
        fatal("mmpp burstRatio must be > 1, got ", burstRatio);
    if (burstFraction <= 0.0 || burstFraction >= 1.0)
        fatal("mmpp burstFraction must be in (0,1), got ",
              burstFraction);
    // The quiet-state rate solves f*burst + (1-f)*quiet = 1 so the
    // long-run average meets the offered rate; it must stay positive.
    if (burstRatio * burstFraction >= 1.0)
        fatal("mmpp burstRatio*burstFraction must be < 1, got ",
              burstRatio * burstFraction);
    if (burstDwellArrivals <= 0.0)
        fatal("mmpp burstDwellArrivals must be > 0, got ",
              burstDwellArrivals);
}

ArrivalProcess::ArrivalProcess(const ArrivalShape &shape,
                               double meanGapTicks,
                               std::uint64_t seed, Tick startTick)
    : shape_(shape), meanGap_(meanGapTicks),
      gaps_(seed, rngstream::kArrival),
      dwells_(seed, rngstream::kArrivalPhase),
      now_(static_cast<double>(startTick))
{
    shape_.check();
    REFSCHED_ASSERT(meanGap_ >= 1.0, "mean interarrival below 1 tick: ",
                    meanGap_);
    if (shape_.kind == ArrivalKind::Mmpp) {
        burstMul_ = shape_.burstRatio;
        quietMul_ = (1.0 - shape_.burstFraction * shape_.burstRatio)
            / (1.0 - shape_.burstFraction);
        burstDwell_ = shape_.burstDwellArrivals * meanGap_;
        quietDwell_ = burstDwell_
            * (1.0 - shape_.burstFraction) / shape_.burstFraction;
        // Deterministic initial state: quiet, one dwell drawn.
        inBurst_ = false;
        stateUntil_ = now_ + expDraw(dwells_, quietDwell_);
    }
}

double
ArrivalProcess::expDraw(CounterRng &rng, double mean)
{
    // Inverse-CDF: -mean * log(1 - U), U in [0, 1).
    return -mean * std::log1p(-rng.real());
}

double
ArrivalProcess::currentRateMul(double now)
{
    if (shape_.kind == ArrivalKind::Poisson)
        return 1.0;
    if (now >= stateUntil_) {
        inBurst_ = !inBurst_;
        stateUntil_ = now
            + expDraw(dwells_, inBurst_ ? burstDwell_ : quietDwell_);
    }
    return inBurst_ ? burstMul_ : quietMul_;
}

Tick
ArrivalProcess::next()
{
    // One Exp(1) unit of "work", consumed at the piecewise-constant
    // instantaneous rate; state switches falling inside the gap eat
    // their share of the work at their own rate.
    double work = expDraw(gaps_, 1.0);
    for (;;) {
        const double mul = currentRateMul(now_);
        const double rate = mul / meanGap_;
        if (shape_.kind == ArrivalKind::Poisson) {
            now_ += work / rate;
            break;
        }
        const double capacity = (stateUntil_ - now_) * rate;
        if (capacity >= work) {
            now_ += work / rate;
            break;
        }
        work -= capacity;
        now_ = stateUntil_;
    }
    ++generated_;
    // Strictly increasing integer ticks: two arrivals can round to
    // the same picosecond; nudge forward so event ordering is total.
    auto tick = static_cast<Tick>(now_);
    if (tick <= lastTick_ && generated_ > 1)
        tick = lastTick_ + 1;
    lastTick_ = tick;
    return tick;
}

} // namespace refsched::workload
