#include "workload/scenario.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "simcore/logging.hh"

namespace refsched::workload
{

namespace
{

std::vector<std::string>
splitOn(const std::string &s, char sep)
{
    std::vector<std::string> parts;
    std::size_t pos = 0;
    while (true) {
        const std::size_t end = s.find(sep, pos);
        if (end == std::string::npos) {
            parts.push_back(s.substr(pos));
            return parts;
        }
        parts.push_back(s.substr(pos, end - pos));
        pos = end + 1;
    }
}

bool
parseBool01(const std::string &v, const char *what)
{
    if (v == "0")
        return false;
    if (v == "1")
        return true;
    fatal("scenario: ", what, " must be 0 or 1, got '", v, "'");
}

ScenarioEvent
parseEvent(const std::string &body)
{
    const auto parts = splitOn(body, ':');
    if (parts.size() < 2)
        fatal("scenario: bad event '", body,
              "' (want <q>:spawn:... or <q>:kill:<pid>)");

    ScenarioEvent ev;
    ev.quantum = std::strtoull(parts[0].c_str(), nullptr, 10);

    if (parts[1] == "kill") {
        if (parts.size() != 3)
            fatal("scenario: bad kill event '", body,
                  "' (want <q>:kill:<pid>)");
        ev.kind = ScenarioEventKind::Kill;
        ev.pid = static_cast<Pid>(
            std::strtoll(parts[2].c_str(), nullptr, 10));
        return ev;
    }
    if (parts[1] != "spawn")
        fatal("scenario: unknown event kind '", parts[1], "' in '",
              body, "'");
    if (parts.size() < 3)
        fatal("scenario: spawn event '", body, "' names no benchmark");

    ev.kind = ScenarioEventKind::Spawn;
    ev.benchmark = parts[2];
    for (std::size_t i = 3; i < parts.size(); ++i) {
        const std::string &opt = parts[i];
        const std::size_t eq = opt.find('=');
        if (eq == std::string::npos)
            fatal("scenario: bad spawn option '", opt, "' in '", body,
                  "'");
        const std::string key = opt.substr(0, eq);
        const std::string val = opt.substr(eq + 1);
        if (key == "fp")
            ev.footprintScale = std::strtod(val.c_str(), nullptr);
        else if (key == "cpu")
            ev.cpu = static_cast<int>(
                std::strtol(val.c_str(), nullptr, 10));
        else if (key == "adv")
            ev.adversarial = parseBool01(val, "adv");
        else if (key == "phases")
            ev.phases = PhaseSchedule::parse(val);
        else
            fatal("scenario: unknown spawn option '", key, "' in '",
                  body, "'");
    }
    return ev;
}

} // namespace

bool
ScenarioScript::hasAdversarial() const
{
    for (const auto &ev : events)
        if (ev.kind == ScenarioEventKind::Spawn && ev.adversarial)
            return true;
    return false;
}

std::string
ScenarioScript::serialize() const
{
    std::string out;
    out += detail::format("migrate=", migrate ? 1 : 0, '\n');
    out += detail::format("reassign=", reassignOnChurn ? 1 : 0, '\n');
    for (const auto &[idx, sched] : initialPhases)
        out += detail::format("phase=", idx, ':', sched.serialize(),
                              '\n');
    for (const auto &ev : events) {
        if (ev.kind == ScenarioEventKind::Kill) {
            out += detail::format("ev=", ev.quantum, ":kill:", ev.pid,
                                  '\n');
            continue;
        }
        out += detail::format("ev=", ev.quantum,
                              ":spawn:", ev.benchmark);
        if (ev.footprintScale != 1.0) {
            char scale[32];
            std::snprintf(scale, sizeof(scale), "%.6g",
                          ev.footprintScale);
            out += detail::format(":fp=", scale);
        }
        if (ev.cpu >= 0)
            out += detail::format(":cpu=", ev.cpu);
        if (ev.adversarial)
            out += ":adv=1";
        if (!ev.phases.empty())
            out += detail::format(":phases=", ev.phases.serialize());
        out += '\n';
    }
    return out;
}

ScenarioScript
ScenarioScript::parse(const std::string &text)
{
    ScenarioScript script;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        // Trim trailing CR (files from other platforms) and skip
        // blanks/comments.
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        std::size_t first = line.find_first_not_of(" \t");
        if (first == std::string::npos || line[first] == '#')
            continue;
        line = line.substr(first);

        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            fatal("scenario: bad directive '", line, "'");
        const std::string key = line.substr(0, eq);
        const std::string val = line.substr(eq + 1);
        if (key == "migrate") {
            script.migrate = parseBool01(val, "migrate");
        } else if (key == "reassign") {
            script.reassignOnChurn = parseBool01(val, "reassign");
        } else if (key == "phase") {
            const std::size_t colon = val.find(':');
            if (colon == std::string::npos)
                fatal("scenario: bad phase directive '", line,
                      "' (want phase=<taskIdx>:<schedule>)");
            const int idx = static_cast<int>(std::strtol(
                val.substr(0, colon).c_str(), nullptr, 10));
            script.initialPhases.emplace_back(
                idx, PhaseSchedule::parse(val.substr(colon + 1)));
        } else if (key == "ev") {
            script.events.push_back(parseEvent(val));
        } else {
            fatal("scenario: unknown directive '", key, "'");
        }
    }
    std::stable_sort(script.events.begin(), script.events.end(),
                     [](const ScenarioEvent &a, const ScenarioEvent &b)
                     { return a.quantum < b.quantum; });
    script.check();
    return script;
}

ScenarioScript
ScenarioScript::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("scenario: cannot open '", path, "'");
    std::ostringstream text;
    text << in.rdbuf();
    return parse(text.str());
}

void
ScenarioScript::check() const
{
    for (const auto &[idx, sched] : initialPhases) {
        if (idx < 0)
            fatal("scenario: phase directive for negative task index ",
                  idx);
        if (sched.empty())
            fatal("scenario: empty phase schedule for task ", idx);
        sched.check();
    }
    for (const auto &ev : events) {
        if (ev.quantum < 1)
            fatal("scenario: events must use quantum >= 1 (the ",
                  "initial placement happens at quantum 0)");
        if (ev.kind == ScenarioEventKind::Kill) {
            if (ev.pid < 1)
                fatal("scenario: kill of invalid pid ", ev.pid);
            continue;
        }
        profileByName(ev.benchmark);  // fatal on unknown name
        if (ev.footprintScale <= 0.0 || ev.footprintScale > 16.0)
            fatal("scenario: spawn footprintScale ", ev.footprintScale,
                  " out of (0,16]");
        ev.phases.check();
    }
}

ScenarioScript
randomScenario(Rng &rng, int initialTasks, std::uint64_t horizonQuanta)
{
    // Small benchmarks keep random scenarios fast and make
    // fragmentation/realloc effects visible at fuzzing scale.
    static const char *kBenches[] = {"mcf", "stream", "povray",
                                     "h264ref"};

    ScenarioScript script;
    script.migrate = rng.bernoulli(0.5);
    script.reassignOnChurn = rng.bernoulli(0.75);

    if (initialTasks > 0 && rng.bernoulli(0.5)) {
        PhaseSchedule sched;
        const int nPhases = 2 + static_cast<int>(rng.below(2));
        for (int p = 0; p < nPhases; ++p) {
            PhaseSpec spec;
            spec.profile = kBenches[rng.below(4)];
            spec.instrs = 20000 + rng.below(5) * 20000;
            spec.footprintScale = 0.25 + 0.25 * rng.below(4);
            sched.phases.push_back(std::move(spec));
        }
        script.initialPhases.emplace_back(
            static_cast<int>(rng.below(
                static_cast<std::uint64_t>(initialTasks))),
            std::move(sched));
    }

    if (horizonQuanta < 2)
        return script;

    const int nEvents = 1 + static_cast<int>(rng.below(4));
    std::vector<std::uint64_t> times;
    for (int i = 0; i < nEvents; ++i)
        times.push_back(rng.inRange(1, horizonQuanta - 1));
    std::sort(times.begin(), times.end());

    // Walk event times in order tracking who is alive, so kills
    // always target a live pid and at least one task survives.
    std::vector<Pid> alive;
    for (int i = 0; i < initialTasks; ++i)
        alive.push_back(static_cast<Pid>(i + 1));
    Pid nextPid = static_cast<Pid>(initialTasks + 1);

    for (const std::uint64_t q : times) {
        ScenarioEvent ev;
        ev.quantum = q;
        const bool spawn = alive.size() <= 1 || rng.bernoulli(0.65);
        if (spawn) {
            ev.kind = ScenarioEventKind::Spawn;
            ev.benchmark = kBenches[rng.below(4)];
            static const double kScales[] = {0.25, 0.5, 1.0};
            ev.footprintScale = kScales[rng.below(3)];
            ev.adversarial = rng.bernoulli(0.25);
            if (rng.bernoulli(0.3)) {
                PhaseSpec a{kBenches[rng.below(4)],
                            20000 + rng.below(5) * 20000,
                            0.25 + 0.25 * rng.below(4)};
                PhaseSpec b{kBenches[rng.below(4)],
                            20000 + rng.below(5) * 20000,
                            0.25 + 0.25 * rng.below(4)};
                ev.phases.phases = {std::move(a), std::move(b)};
            }
            alive.push_back(nextPid);
            ev.pid = -1;
            ++nextPid;
        } else {
            ev.kind = ScenarioEventKind::Kill;
            const std::size_t victim = rng.below(alive.size());
            ev.pid = alive[victim];
            alive.erase(alive.begin()
                        + static_cast<std::ptrdiff_t>(victim));
        }
        script.events.push_back(std::move(ev));
    }
    script.check();
    return script;
}

} // namespace refsched::workload
