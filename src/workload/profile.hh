/**
 * @file
 * Synthetic benchmark profiles standing in for the paper's SPEC
 * CPU2006 / STREAM / NAS workloads.
 *
 * We do not have SPEC reference traces, so each benchmark is modelled
 * as a parameterised address-stream generator calibrated to the
 * properties the paper's evaluation actually depends on:
 *
 *   - memory footprint (section 5.4.1 gives mcf 1.7 GB, bwaves
 *     920 MB, stream 800 MB, GemsFDTD 850 MB);
 *   - MPKI class (Table 2: H > 10, M in 1..10, L < 1), realised as a
 *     mixture of cache-resident "hot set" accesses, sequential
 *     streaming, and uniform-random (pointer-chasing) accesses over
 *     the full footprint;
 *   - write intensity and non-memory ILP (baseCpi).
 *
 * The expected MPKI of a profile is analytically
 *   1000 * memOpFraction * (randomFraction + seqFraction/accessesPerLine)
 * since random accesses to a multi-MB footprint always miss a 2 MB
 * L2 and sequential streams miss once per line; tab02_workloads
 * verifies the measured values land in the intended class.
 */

#ifndef REFSCHED_WORKLOAD_PROFILE_HH
#define REFSCHED_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/types.hh"

namespace refsched::workload
{

/** MPKI intensity classes from Table 2. */
enum class MpkiClass { Low, Medium, High };

std::string toString(MpkiClass c);

/**
 * One macro-phase of a phased benchmark: run with the access pattern
 * of built-in profile @p profile for @p instrs instructions, with the
 * task's footprint scaled by @p footprintScale relative to its base
 * footprint.  A shrink releases pages through the buddy allocator; a
 * grow demand-pages back in.
 */
struct PhaseSpec
{
    std::string profile;
    std::uint64_t instrs = 0;
    double footprintScale = 1.0;
};

/**
 * A cyclic schedule of macro-phases (empty = the task keeps its base
 * profile forever).  Unlike the micro mem/compute alternation built
 * into BenchmarkProfile, a macro-phase switch changes the MPKI class
 * and footprint mid-run -- the "placement goes stale" regime the
 * scenario engine tests.
 *
 * Text form: "profile@instrs@scale|profile@instrs@scale|..."
 */
struct PhaseSchedule
{
    std::vector<PhaseSpec> phases;

    bool empty() const { return phases.empty(); }

    /** Largest footprintScale across phases (capacity planning). */
    double maxFootprintScale() const;

    std::string serialize() const;

    /** Parse the text form; fatal() on malformed input or unknown
     *  profile names. */
    static PhaseSchedule parse(const std::string &text);

    /** Range-check every phase; fatal() on nonsense. */
    void check() const;
};

struct BenchmarkProfile
{
    std::string name;

    /** Full (unscaled) footprint in bytes. */
    std::uint64_t footprintBytes = 64 * kMiB;

    /** Fraction of instructions that are loads/stores. */
    double memOpFraction = 0.3;

    /** Fraction of memory ops that are writes. */
    double writeFraction = 0.25;

    /** Non-memory CPI (ILP beyond issue width). */
    double baseCpi = 0.5;

    // Access-pattern mixture; fractions sum to <= 1, the remainder
    // going to the hot set.
    double seqFraction = 0.0;     ///< streaming walks of the footprint
    double randomFraction = 0.0;  ///< uniform over the footprint

    /** Fraction of random accesses that are pointer-chase dependent
     *  (serialised behind the previous miss, MLP = 1). */
    double dependentFraction = 0.0;

    /** Bytes of the cache-resident hot region. */
    std::uint64_t hotsetBytes = 256 * kKiB;

    /** Byte granularity of individual accesses. */
    std::uint32_t accessBytes = 8;

    /**
     * Phase behaviour: when both are non-zero the benchmark
     * alternates between a memory-intensive phase of memPhaseInstrs
     * instructions (full pattern mixture) and a compute phase of
     * computePhaseInstrs instructions (hot-set-only accesses).  Real
     * applications are phased, and refresh schedulers with slack
     * (elastic deferral, Adaptive Refresh) exploit the idle phases.
     */
    std::uint64_t memPhaseInstrs = 0;
    std::uint64_t computePhaseInstrs = 0;

    bool
    phased() const
    {
        return memPhaseInstrs > 0 && computePhaseInstrs > 0;
    }

    /** Paper's classification (what Table 2 says). */
    MpkiClass paperClass = MpkiClass::Low;

    /** Macro-phase schedule (empty for the built-in profiles; set by
     *  the scenario engine).  The generator swaps in each phase's
     *  pattern mixture while keeping this profile's hot set and
     *  access granularity. */
    PhaseSchedule phases;

    double hotFraction() const
    {
        return 1.0 - seqFraction - randomFraction;
    }

    /** Analytic MPKI estimate (see file header). */
    double expectedMpki(std::uint64_t lineBytes = 64) const;

    /** Classify an MPKI value per Table 2's thresholds. */
    static MpkiClass classify(double mpki);

    /** Sanity-check parameter ranges; fatal() on nonsense. */
    void check() const;
};

/** Look up a built-in profile by benchmark name ("mcf", ...). */
const BenchmarkProfile &profileByName(const std::string &name);

/** Names of all built-in profiles. */
std::vector<std::string> builtinProfileNames();

} // namespace refsched::workload

#endif // REFSCHED_WORKLOAD_PROFILE_HH
