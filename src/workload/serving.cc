#include "workload/serving.hh"

#include <algorithm>
#include <sstream>

#include "os/task.hh"
#include "simcore/logging.hh"

namespace refsched::workload
{

void
ServingConfig::check() const
{
    if (!enabled)
        return;
    if (loadReqPerUs <= 0.0)
        fatal("serving load must be > 0 req/us, got ", loadReqPerUs);
    if (meanGapTicks() < 1.0)
        fatal("serving load ", loadReqPerUs,
              " req/us exceeds one request per tick");
    if (poolSize < 1)
        fatal("serving pool must be >= 1, got ", poolSize);
    if (queueCapacity < 0)
        fatal("serving queue must be >= 0, got ", queueCapacity);
    if (linesPerRequest < 1)
        fatal("serving lines must be >= 1, got ", linesPerRequest);
    shape.check();
}

ServingConfig
ServingConfig::parse(const std::string &spec)
{
    ServingConfig cfg;
    cfg.enabled = true;
    std::istringstream is(spec);
    std::string kv;
    while (std::getline(is, kv, ',')) {
        if (kv.empty())
            continue;
        const auto eq = kv.find('=');
        if (eq == std::string::npos)
            fatal("serving spec entry has no '=': ", kv);
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        if (key == "arrival")
            cfg.shape.kind = arrivalKindFromString(val);
        else if (key == "load")
            cfg.loadReqPerUs = std::stod(val);
        else if (key == "pool")
            cfg.poolSize = std::stoi(val);
        else if (key == "queue")
            cfg.queueCapacity = std::stoi(val);
        else if (key == "lines")
            cfg.linesPerRequest = std::stoi(val);
        else if (key == "burst-ratio")
            cfg.shape.burstRatio = std::stod(val);
        else if (key == "burst-frac")
            cfg.shape.burstFraction = std::stod(val);
        else if (key == "burst-dwell")
            cfg.shape.burstDwellArrivals = std::stod(val);
        else
            fatal("unknown serving spec key: ", key);
    }
    cfg.check();
    return cfg;
}

std::string
ServingConfig::serialize() const
{
    std::ostringstream os;
    os << "arrival=" << toString(shape.kind) << ",load=" << loadReqPerUs
       << ",pool=" << poolSize << ",queue=" << queueCapacity
       << ",lines=" << linesPerRequest;
    if (shape.kind == ArrivalKind::Mmpp) {
        os << ",burst-ratio=" << shape.burstRatio
           << ",burst-frac=" << shape.burstFraction
           << ",burst-dwell=" << shape.burstDwellArrivals;
    }
    return os.str();
}

ServingInjector::ServingInjector(const ServingConfig &cfg,
                                 EventQueue &eq,
                                 memctrl::MemoryPort &mem, Hooks hooks,
                                 std::uint64_t seed)
    : cfg_(cfg), eq_(eq), mem_(mem), hooks_(std::move(hooks)),
      arrivalGen_(cfg.shape, cfg.meanGapTicks(), seed, eq.now()),
      taskPick_(seed, rngstream::kServingTask),
      addrPick_(seed, rngstream::kServingAddr)
{
    cfg_.check();
    REFSCHED_ASSERT(cfg_.enabled, "injector built from disabled config");
    REFSCHED_ASSERT(hooks_.liveTasks && hooks_.footprintBytes
                        && hooks_.translate,
                    "serving injector hooks incomplete");
    slots_.resize(static_cast<std::size_t>(cfg_.poolSize));
    for (auto &s : slots_)
        s.paddrs.resize(static_cast<std::size_t>(cfg_.linesPerRequest));
    lineBlocked_.assign(static_cast<std::size_t>(cfg_.poolSize)
                            * static_cast<std::size_t>(
                                cfg_.linesPerRequest),
                        0);
    scheduleNextArrival();
}

void
ServingInjector::registerStats(StatRegistry &reg,
                               const std::string &prefix)
{
    reg.add(prefix + ".arrivals", &arrivals_);
    reg.add(prefix + ".drops", &drops_);
    reg.add(prefix + ".completed", &completed_);
    reg.add(prefix + ".backlogPeak", &backlogPeak_);
    reg.add(prefix + ".retryWaits", &retryWaits_);
    reg.add(prefix + ".queueDelay", &queueDelay_);
    reg.add(prefix + ".reqLatency", &latAll_);
    reg.add(prefix + ".reqLatencyClean", &latClean_);
    reg.add(prefix + ".reqLatencyBlocked", &latBlocked_);
}

void
ServingInjector::scheduleNextArrival()
{
    // The arrival process is strictly increasing and next() is
    // called while handling the previous arrival (or at t=0 from the
    // constructor), so the timestamp is always in the future.
    eq_.schedule(arrivalGen_.next(), *this, kArrivalCookie, 0);
}

void
ServingInjector::fire(Tick now, std::uint64_t a0, std::uint64_t a1)
{
    if (a0 == kArrivalCookie) {
        onArrival(now);
        return;
    }
    onLineDone(now, static_cast<std::size_t>(a0),
               static_cast<std::size_t>(a1));
}

int
ServingInjector::findFreeSlot() const
{
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (!slots_[i].busy)
            return static_cast<int>(i);
    }
    return -1;
}

void
ServingInjector::onArrival(Tick now)
{
    ++arrivals_;
    const int slot = findFreeSlot();
    if (slot >= 0) {
        startService(static_cast<std::size_t>(slot), now, now);
    } else if (backlog_.size()
               < static_cast<std::size_t>(cfg_.queueCapacity)) {
        backlog_.push_back(now);
        backlogPeak_.set(std::max(backlogPeak_.value(),
                                  static_cast<double>(backlog_.size())));
    } else {
        // Open loop: the client gave up; the system never sees this
        // request.  Load beyond saturation shows up here, not as an
        // unbounded latency integral.
        ++drops_;
    }
    scheduleNextArrival();
}

void
ServingInjector::startService(std::size_t slot, Tick arrivalTick,
                              Tick now)
{
    const auto &live = hooks_.liveTasks();
    if (live.empty()) {
        // Nothing to serve against (all tenants churned away);
        // account the request as shed rather than wedge the slot.
        ++drops_;
        return;
    }
    Slot &s = slots_[slot];
    s.busy = true;
    s.arrivalTick = arrivalTick;
    s.startTick = now;
    s.linesDone = 0;
    s.nextIssue = 0;
    queueDelay_.sample(static_cast<double>(now - arrivalTick));

    // Pick the target task at service start (it is live right now,
    // so demand-paged translation below never allocates for a dead
    // task) and pre-translate every line: no translation happens
    // after this event, however late the reads issue or complete.
    os::Task &task = *live[taskPick_.below(live.size())];
    s.pid = task.pid();
    const std::uint64_t lines = std::max<std::uint64_t>(
        hooks_.footprintBytes(task) / 64, 1);
    for (int i = 0; i < cfg_.linesPerRequest; ++i) {
        const Addr vaddr = addrPick_.below(lines) * 64;
        s.paddrs[static_cast<std::size_t>(i)] =
            hooks_.translate(task, vaddr);
        lineBlocked_[slot * static_cast<std::size_t>(
                         cfg_.linesPerRequest)
                     + static_cast<std::size_t>(i)] = 0;
    }
    issueLines(slot);
}

void
ServingInjector::issueLines(std::size_t slot)
{
    Slot &s = slots_[slot];
    while (s.nextIssue < cfg_.linesPerRequest) {
        const auto line = static_cast<std::size_t>(s.nextIssue);
        memctrl::Request req;
        req.paddr = s.paddrs[line];
        req.type = memctrl::Request::Type::Read;
        req.coreId = -1;
        req.pid = s.pid;
        req.issueTick = eq_.now();
        req.completion = this;
        req.cookie0 = slot;
        req.cookie1 = line;
        req.blockedOut =
            &lineBlocked_[slot
                              * static_cast<std::size_t>(
                                  cfg_.linesPerRequest)
                          + line];
        if (!mem_.enqueue(req)) {
            armRetry();
            return;
        }
        ++s.nextIssue;
    }
}

void
ServingInjector::armRetry()
{
    if (retryArmed_)
        return;
    retryArmed_ = true;
    ++retryWaits_;
    mem_.requestRetryNotification([this] {
        retryArmed_ = false;
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            if (slots_[i].busy
                && slots_[i].nextIssue < cfg_.linesPerRequest)
                issueLines(i);
        }
    });
}

void
ServingInjector::onLineDone(Tick now, std::size_t slot,
                            std::size_t line)
{
    (void)line;
    Slot &s = slots_[slot];
    REFSCHED_ASSERT(s.busy, "serving completion for idle slot ", slot);
    if (++s.linesDone < cfg_.linesPerRequest)
        return;

    bool blocked = false;
    for (int i = 0; i < cfg_.linesPerRequest; ++i) {
        blocked |= lineBlocked_[slot
                                    * static_cast<std::size_t>(
                                        cfg_.linesPerRequest)
                                + static_cast<std::size_t>(i)]
            != 0;
    }
    const auto latency = static_cast<double>(now - s.arrivalTick);
    latAll_.sample(latency);
    (blocked ? latBlocked_ : latClean_).sample(latency);
    ++completed_;
    s.busy = false;

    // Pull queued arrivals into the freed slot (FIFO).  startService
    // can shed a request when no task is live, so keep pulling until
    // the slot is occupied or the backlog drains.
    while (!backlog_.empty() && !s.busy) {
        const Tick arrivedAt = backlog_.front();
        backlog_.pop_front();
        startService(slot, arrivedAt, now);
    }
}

} // namespace refsched::workload
