/**
 * @file
 * Per-task virtual memory with demand paging.
 *
 * Virtual pages are materialised on first touch through the
 * bank-aware buddy allocator (Algorithm 2).  When a task's permitted
 * banks are exhausted, allocation falls back to any bank, as the
 * generalised scheme in paper section 5.4.1 prescribes; the task's
 * residentPagesPerBank counters then let the best-effort scheduler
 * reason about where its data really lives.
 */

#ifndef REFSCHED_OS_VIRTUAL_MEMORY_HH
#define REFSCHED_OS_VIRTUAL_MEMORY_HH

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "dram/address_mapping.hh"
#include "os/buddy_allocator.hh"
#include "os/task.hh"
#include "simcore/stats.hh"

namespace refsched::os
{

class VirtualMemory
{
  public:
    VirtualMemory(const dram::AddressMapping &mapping,
                  BuddyAllocator &buddy);

    /**
     * Translate @p vaddr for @p task, allocating the backing frame
     * on first touch.  @p faulted (optional) reports whether this
     * access took a page fault.  fatal() when physical memory is
     * fully exhausted.
     */
    Addr translate(Task &task, Addr vaddr, bool *faulted = nullptr);

    /**
     * Fault-free half of translate() for the core-lane fast path:
     * resolve @p vaddr through the TLB or page table (filling the
     * TLB exactly as translate would), or return std::nullopt when
     * the page is unmapped.  The core then parks and the boundary
     * drain performs the allocating translate() serially.  Safe on a
     * cluster lane because only the owning task's TLB is written and
     * page-table mutations happen at boundary-aligned ticks.
     */
    std::optional<Addr> lookup(Task &task, Addr vaddr) const;

    /** Release every frame owned by @p task. */
    void releaseTask(Task &task);

    /**
     * Virtual pages of @p task whose backing frame lives in a bank
     * its current possibleBanksVector forbids -- the stale set after
     * a consolidation re-binpack.  Sorted by vpn (deterministic
     * regardless of pageTable iteration order).
     */
    std::vector<std::uint64_t> collectStalePages(const Task &task) const;

    /**
     * Move @p vpn's backing frame into a bank permitted by the
     * task's current possibleBanksVector (Algorithm 2 placement).
     * The mapping, TLB and bank residency are rewritten immediately;
     * the caller models the copy traffic.  When @p freeOld is false
     * the source frame is left allocated (transiently double-counted
     * against the task) and the caller must freePage it once the copy
     * completes.  Returns {fromPfn, toPfn}, or std::nullopt when no
     * permitted bank has a free frame (the page then stays put).
     */
    std::optional<std::pair<std::uint64_t, std::uint64_t>>
    migratePage(Task &task, std::uint64_t vpn, bool freeOld = true);

    /**
     * Shrink @p task's address space to the first @p vpnBound virtual
     * pages (phase change to a smaller footprint): every mapping at
     * vpn >= vpnBound is unmapped and its frame returned to the buddy
     * allocator.  Returns the number of pages released.
     */
    std::uint64_t trimFootprint(Task &task, std::uint64_t vpnBound);

    std::uint64_t pageFaults() const { return pageFaults_; }
    std::uint64_t fallbackAllocations() const { return fallbacks_; }

    const dram::AddressMapping &mapping() const { return mapping_; }

  private:
    const dram::AddressMapping &mapping_;
    BuddyAllocator &buddy_;
    std::uint64_t pageFaults_ = 0;
    std::uint64_t fallbacks_ = 0;
};

} // namespace refsched::os

#endif // REFSCHED_OS_VIRTUAL_MEMORY_HH
