/**
 * @file
 * Per-task virtual memory with demand paging.
 *
 * Virtual pages are materialised on first touch through the
 * bank-aware buddy allocator (Algorithm 2).  When a task's permitted
 * banks are exhausted, allocation falls back to any bank, as the
 * generalised scheme in paper section 5.4.1 prescribes; the task's
 * residentPagesPerBank counters then let the best-effort scheduler
 * reason about where its data really lives.
 */

#ifndef REFSCHED_OS_VIRTUAL_MEMORY_HH
#define REFSCHED_OS_VIRTUAL_MEMORY_HH

#include <cstdint>

#include "dram/address_mapping.hh"
#include "os/buddy_allocator.hh"
#include "os/task.hh"
#include "simcore/stats.hh"

namespace refsched::os
{

class VirtualMemory
{
  public:
    VirtualMemory(const dram::AddressMapping &mapping,
                  BuddyAllocator &buddy);

    /**
     * Translate @p vaddr for @p task, allocating the backing frame
     * on first touch.  @p faulted (optional) reports whether this
     * access took a page fault.  fatal() when physical memory is
     * fully exhausted.
     */
    Addr translate(Task &task, Addr vaddr, bool *faulted = nullptr);

    /** Release every frame owned by @p task. */
    void releaseTask(Task &task);

    std::uint64_t pageFaults() const { return pageFaults_; }
    std::uint64_t fallbackAllocations() const { return fallbacks_; }

  private:
    const dram::AddressMapping &mapping_;
    BuddyAllocator &buddy_;
    std::uint64_t pageFaults_ = 0;
    std::uint64_t fallbacks_ = 0;
};

} // namespace refsched::os

#endif // REFSCHED_OS_VIRTUAL_MEMORY_HH
