#include "os/buddy_allocator.hh"

#include <algorithm>
#include <set>

#include "simcore/logging.hh"

namespace refsched::os
{

BuddyAllocator::BuddyAllocator(const dram::AddressMapping &mapping)
    : mapping_(mapping),
      totalFrames_(mapping.totalFrames()),
      numBanks_(mapping.totalBanks()),
      freeLists_(static_cast<std::size_t>(kMaxOrder) + 1),
      perBankFree_(static_cast<std::size_t>(numBanks_))
{
    // Carve physical memory into maximal aligned blocks.
    std::uint64_t pfn = 0;
    while (pfn < totalFrames_) {
        int order = kMaxOrder;
        while (order > 0
               && ((pfn & ((1ULL << order) - 1)) != 0
                   || pfn + (1ULL << order) > totalFrames_)) {
            --order;
        }
        freeLists_[static_cast<std::size_t>(order)].push(pfn);
        pfn += 1ULL << order;
    }
    freeFrames_ = totalFrames_;
}

std::optional<std::uint64_t>
BuddyAllocator::allocBlock(int order)
{
    REFSCHED_ASSERT(order >= 0 && order <= kMaxOrder, "bad order ",
                    order);
    int cur = order;
    while (cur <= kMaxOrder
           && freeLists_[static_cast<std::size_t>(cur)].empty()) {
        ++cur;
    }
    if (cur > kMaxOrder)
        return std::nullopt;

    const std::uint64_t block =
        freeLists_[static_cast<std::size_t>(cur)].popMin();

    // Split down to the requested order, returning upper halves.
    while (cur > order) {
        --cur;
        const std::uint64_t buddy = block + (1ULL << cur);
        freeLists_[static_cast<std::size_t>(cur)].push(buddy);
    }

    freeFrames_ -= 1ULL << order;
    return block;
}

void
BuddyAllocator::freeBlock(std::uint64_t pfn, int order)
{
    REFSCHED_ASSERT(order >= 0 && order <= kMaxOrder, "bad order");
    REFSCHED_ASSERT((pfn & ((1ULL << order) - 1)) == 0,
                    "misaligned free: pfn=", pfn, " order=", order);
    REFSCHED_ASSERT(pfn + (1ULL << order) <= totalFrames_,
                    "free out of range");

    freeFrames_ += 1ULL << order;

    while (order < kMaxOrder) {
        const std::uint64_t buddy = pfn ^ (1ULL << order);
        auto &list = freeLists_[static_cast<std::size_t>(order)];
        if (buddy + (1ULL << order) > totalFrames_
            || !list.erase(buddy)) {
            break;
        }
        pfn = std::min(pfn, buddy);
        ++order;
    }
    freeLists_[static_cast<std::size_t>(order)].push(pfn);
}

std::optional<std::uint64_t>
BuddyAllocator::popBankCache(int bank)
{
    auto &cache = perBankFree_[static_cast<std::size_t>(bank)];
    if (cache.empty())
        return std::nullopt;
    const std::uint64_t pfn = cache.back();
    cache.pop_back();
    return pfn;
}

std::optional<std::uint64_t>
BuddyAllocator::allocPage(Task &task)
{
    REFSCHED_ASSERT(static_cast<int>(task.possibleBanksVector.size())
                        == numBanks_,
                    "task bank vector size mismatch");

    // Algorithm 2: rotate over permitted banks starting after the
    // task's last successful bank.
    for (int count = 0; count < numBanks_; ++count) {
        const int allocBank =
            (task.lastAllocedBank + 1 + count) % numBanks_;
        if (!task.allowsBank(allocBank))
            continue;

        // Hit from a per-bank free list (line 15).
        if (auto pfn = popBankCache(allocBank)) {
            ++bankCacheHits_;
            ++pagesAllocated_;
            freeFrames_ -= 1;  // cached pages count as free
            task.lastAllocedBank = allocBank;
            task.addResidentPage(allocBank);
            REFSCHED_PROBE(probe_,
                           onPageAlloc({clock_ ? clock_->now() : 0,
                                        task.pid(), *pfn, false,
                                        &task.possibleBanksVector}));
            return pfn;
        }

        // Fetch pages from the OS free list, stashing pages whose
        // bank does not match into their bank caches (lines 19-34).
        while (true) {
            auto page = allocBlock(0);
            if (!page)
                break;  // buddy lists exhausted
            ++osListFetches_;
            const int bank = mapping_.bankOfFrame(*page);
            if (bank == allocBank) {
                ++pagesAllocated_;
                task.lastAllocedBank = allocBank;
                task.addResidentPage(allocBank);
                REFSCHED_PROBE(
                    probe_,
                    onPageAlloc({clock_ ? clock_->now() : 0,
                                 task.pid(), *page, false,
                                 &task.possibleBanksVector}));
                return page;
            }
            // Maintaining a cache of per-bank free lists (line 33).
            perBankFree_[static_cast<std::size_t>(bank)].push_back(
                *page);
            freeFrames_ += 1;  // still free, just cached by bank
            ++stashes_;
        }
    }
    return std::nullopt;
}

std::optional<std::uint64_t>
BuddyAllocator::allocPageAnyBank(Task *task)
{
    // Prefer cached pages, rotating banks for BLP.
    const int start = task ? (task->lastAllocedBank + 1) : 0;
    for (int i = 0; i < numBanks_; ++i) {
        const int bank = (start + i) % numBanks_;
        if (auto pfn = popBankCache(bank)) {
            ++fallbacks_;
            ++pagesAllocated_;
            freeFrames_ -= 1;
            if (task) {
                task->lastAllocedBank = bank;
                task->addResidentPage(bank);
                ++task->fallbackAllocs;
            }
            REFSCHED_PROBE(
                probe_,
                onPageAlloc({clock_ ? clock_->now() : 0,
                             task ? task->pid() : -1, *pfn, true,
                             task ? &task->possibleBanksVector
                                  : nullptr}));
            return pfn;
        }
    }
    if (auto page = allocBlock(0)) {
        ++fallbacks_;
        ++pagesAllocated_;
        if (task) {
            const int bank = mapping_.bankOfFrame(*page);
            task->lastAllocedBank = bank;
            task->addResidentPage(bank);
            ++task->fallbackAllocs;
        }
        REFSCHED_PROBE(
            probe_,
            onPageAlloc({clock_ ? clock_->now() : 0,
                         task ? task->pid() : -1, *page, true,
                         task ? &task->possibleBanksVector
                              : nullptr}));
        return page;
    }
    return std::nullopt;
}

void
BuddyAllocator::freePage(std::uint64_t pfn, Pid owner)
{
    REFSCHED_ASSERT(pfn < totalFrames_, "freePage out of range");
    const int bank = mapping_.bankOfFrame(pfn);
    perBankFree_[static_cast<std::size_t>(bank)].push_back(pfn);
    freeFrames_ += 1;
    REFSCHED_PROBE(probe_,
                   onPageFree({clock_ ? clock_->now() : 0, pfn,
                               owner}));
}

void
BuddyAllocator::drainBankCaches()
{
    for (auto &cache : perBankFree_) {
        for (const auto pfn : cache) {
            freeFrames_ -= 1;   // freeBlock re-adds it
            freeBlock(pfn, 0);
        }
        cache.clear();
    }
}

bool
BuddyAllocator::checkInvariants(std::string *why) const
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    std::set<std::uint64_t> seen;
    std::uint64_t counted = 0;

    for (int order = 0; order <= kMaxOrder; ++order) {
        for (const auto pfn :
             freeLists_[static_cast<std::size_t>(order)].items()) {
            if ((pfn & ((1ULL << order) - 1)) != 0)
                return fail("misaligned free block");
            if (pfn + (1ULL << order) > totalFrames_)
                return fail("free block out of range");
            for (std::uint64_t f = pfn; f < pfn + (1ULL << order);
                 ++f) {
                if (!seen.insert(f).second)
                    return fail("overlapping free blocks");
            }
            counted += 1ULL << order;
            // No free buddy pair should remain uncoalesced.
            if (order < kMaxOrder) {
                const std::uint64_t buddy = pfn ^ (1ULL << order);
                if (buddy + (1ULL << order) <= totalFrames_
                    && freeLists_[static_cast<std::size_t>(order)]
                           .contains(buddy)
                    && buddy > pfn) {
                    return fail("uncoalesced buddy pair");
                }
            }
        }
    }

    for (const auto &cache : perBankFree_) {
        for (const auto pfn : cache) {
            if (pfn >= totalFrames_)
                return fail("cached page out of range");
            if (!seen.insert(pfn).second)
                return fail("cached page overlaps free block");
            counted += 1;
        }
    }

    if (counted != freeFrames_)
        return fail("free frame count mismatch");
    return true;
}

} // namespace refsched::os
