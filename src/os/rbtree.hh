/**
 * @file
 * A from-scratch red-black tree, the data structure behind Linux's
 * CFS runqueue (paper section 2.4).
 *
 * Multimap semantics: duplicate keys are allowed and are ordered by
 * insertion (later duplicates to the right), which gives the CFS
 * runqueue deterministic FIFO behaviour among equal vruntimes.
 *
 * The tree owns its nodes; callers hold Node* handles for O(1)
 * erase, exactly like the kernel's rb_node embedding.  Algorithms
 * follow CLRS chapter 13 with an explicit nil sentinel.
 *
 * validate() checks all red-black invariants and is used heavily by
 * the property tests.
 */

#ifndef REFSCHED_OS_RBTREE_HH
#define REFSCHED_OS_RBTREE_HH

#include <cstddef>
#include <functional>
#include <string>

#include "simcore/logging.hh"

namespace refsched::os
{

template <typename Key, typename Value, typename Compare = std::less<Key>>
class RbTree
{
  public:
    struct Node
    {
        Key key{};
        Value value{};

      private:
        friend class RbTree;
        Node *parent = nullptr;
        Node *left = nullptr;
        Node *right = nullptr;
        bool red = false;
    };

    explicit RbTree(Compare cmp = Compare()) : cmp_(std::move(cmp))
    {
        nil_ = new Node();
        nil_->red = false;
        nil_->parent = nil_->left = nil_->right = nil_;
        root_ = nil_;
    }

    ~RbTree()
    {
        clear();
        delete nil_;
    }

    RbTree(const RbTree &) = delete;
    RbTree &operator=(const RbTree &) = delete;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Insert a (key, value) pair; returns the owning node. */
    Node *
    insert(const Key &key, const Value &value)
    {
        Node *z = new Node();
        z->key = key;
        z->value = value;
        z->left = z->right = z->parent = nil_;

        Node *y = nil_;
        Node *x = root_;
        while (x != nil_) {
            y = x;
            // Duplicates go right: stable order among equal keys.
            x = cmp_(z->key, x->key) ? x->left : x->right;
        }
        z->parent = y;
        if (y == nil_)
            root_ = z;
        else if (cmp_(z->key, y->key))
            y->left = z;
        else
            y->right = z;
        z->red = true;
        insertFixup(z);
        ++size_;
        return z;
    }

    /** Remove @p z from the tree and delete it. */
    void
    erase(Node *z)
    {
        REFSCHED_ASSERT(z != nullptr && z != nil_, "erase of bad node");

        Node *y = z;
        bool yWasRed = y->red;
        Node *x = nil_;

        if (z->left == nil_) {
            x = z->right;
            transplant(z, z->right);
        } else if (z->right == nil_) {
            x = z->left;
            transplant(z, z->left);
        } else {
            y = minimum(z->right);
            yWasRed = y->red;
            x = y->right;
            if (y->parent == z) {
                x->parent = y;
            } else {
                transplant(y, y->right);
                y->right = z->right;
                y->right->parent = y;
            }
            transplant(z, y);
            y->left = z->left;
            y->left->parent = y;
            y->red = z->red;
        }
        if (!yWasRed)
            eraseFixup(x);
        delete z;
        --size_;
    }

    /** Leftmost (minimum-key) node, or nullptr when empty. */
    Node *
    leftmost() const
    {
        return root_ == nil_ ? nullptr : minimum(root_);
    }

    /** Rightmost (maximum-key) node, or nullptr when empty. */
    Node *
    rightmost() const
    {
        if (root_ == nil_)
            return nullptr;
        Node *x = root_;
        while (x->right != nil_)
            x = x->right;
        return x;
    }

    /** In-order successor of @p x, or nullptr at the end. */
    Node *
    next(Node *x) const
    {
        REFSCHED_ASSERT(x != nullptr && x != nil_, "next of bad node");
        if (x->right != nil_)
            return minimum(x->right);
        Node *y = x->parent;
        while (y != nil_ && x == y->right) {
            x = y;
            y = y->parent;
        }
        return y == nil_ ? nullptr : y;
    }

    /** First node whose key equals @p key (leftmost match). */
    Node *
    find(const Key &key) const
    {
        Node *x = root_;
        Node *best = nullptr;
        while (x != nil_) {
            if (cmp_(x->key, key)) {
                x = x->right;
            } else {
                if (!cmp_(key, x->key))
                    best = x;  // equal; keep searching left
                x = x->left;
            }
        }
        return best;
    }

    /** Delete all nodes. */
    void
    clear()
    {
        destroy(root_);
        root_ = nil_;
        size_ = 0;
    }

    /**
     * Verify every red-black invariant.  Returns true when valid;
     * otherwise false with an explanation in @p why (if non-null).
     */
    bool
    validate(std::string *why = nullptr) const
    {
        if (root_->red) {
            if (why)
                *why = "root is red";
            return false;
        }
        int expectedBlack = -1;
        std::size_t counted = 0;
        const bool ok =
            validateNode(root_, 0, expectedBlack, counted, why);
        if (ok && counted != size_) {
            if (why)
                *why = "size mismatch";
            return false;
        }
        return ok;
    }

  private:
    Node *
    minimum(Node *x) const
    {
        while (x->left != nil_)
            x = x->left;
        return x;
    }

    void
    leftRotate(Node *x)
    {
        Node *y = x->right;
        x->right = y->left;
        if (y->left != nil_)
            y->left->parent = x;
        y->parent = x->parent;
        if (x->parent == nil_)
            root_ = y;
        else if (x == x->parent->left)
            x->parent->left = y;
        else
            x->parent->right = y;
        y->left = x;
        x->parent = y;
    }

    void
    rightRotate(Node *x)
    {
        Node *y = x->left;
        x->left = y->right;
        if (y->right != nil_)
            y->right->parent = x;
        y->parent = x->parent;
        if (x->parent == nil_)
            root_ = y;
        else if (x == x->parent->right)
            x->parent->right = y;
        else
            x->parent->left = y;
        y->right = x;
        x->parent = y;
    }

    void
    insertFixup(Node *z)
    {
        while (z->parent->red) {
            Node *gp = z->parent->parent;
            if (z->parent == gp->left) {
                Node *uncle = gp->right;
                if (uncle->red) {
                    z->parent->red = false;
                    uncle->red = false;
                    gp->red = true;
                    z = gp;
                } else {
                    if (z == z->parent->right) {
                        z = z->parent;
                        leftRotate(z);
                    }
                    z->parent->red = false;
                    gp->red = true;
                    rightRotate(gp);
                }
            } else {
                Node *uncle = gp->left;
                if (uncle->red) {
                    z->parent->red = false;
                    uncle->red = false;
                    gp->red = true;
                    z = gp;
                } else {
                    if (z == z->parent->left) {
                        z = z->parent;
                        rightRotate(z);
                    }
                    z->parent->red = false;
                    gp->red = true;
                    leftRotate(gp);
                }
            }
        }
        root_->red = false;
    }

    void
    transplant(Node *u, Node *v)
    {
        if (u->parent == nil_)
            root_ = v;
        else if (u == u->parent->left)
            u->parent->left = v;
        else
            u->parent->right = v;
        v->parent = u->parent;
    }

    void
    eraseFixup(Node *x)
    {
        while (x != root_ && !x->red) {
            if (x == x->parent->left) {
                Node *w = x->parent->right;
                if (w->red) {
                    w->red = false;
                    x->parent->red = true;
                    leftRotate(x->parent);
                    w = x->parent->right;
                }
                if (!w->left->red && !w->right->red) {
                    w->red = true;
                    x = x->parent;
                } else {
                    if (!w->right->red) {
                        w->left->red = false;
                        w->red = true;
                        rightRotate(w);
                        w = x->parent->right;
                    }
                    w->red = x->parent->red;
                    x->parent->red = false;
                    w->right->red = false;
                    leftRotate(x->parent);
                    x = root_;
                }
            } else {
                Node *w = x->parent->left;
                if (w->red) {
                    w->red = false;
                    x->parent->red = true;
                    rightRotate(x->parent);
                    w = x->parent->left;
                }
                if (!w->right->red && !w->left->red) {
                    w->red = true;
                    x = x->parent;
                } else {
                    if (!w->left->red) {
                        w->right->red = false;
                        w->red = true;
                        leftRotate(w);
                        w = x->parent->left;
                    }
                    w->red = x->parent->red;
                    x->parent->red = false;
                    w->left->red = false;
                    rightRotate(x->parent);
                    x = root_;
                }
            }
        }
        x->red = false;
    }

    void
    destroy(Node *x)
    {
        if (x == nil_)
            return;
        destroy(x->left);
        destroy(x->right);
        delete x;
    }

    bool
    validateNode(Node *x, int blackDepth, int &expectedBlack,
                 std::size_t &counted, std::string *why) const
    {
        if (x == nil_) {
            if (expectedBlack < 0)
                expectedBlack = blackDepth;
            if (blackDepth != expectedBlack) {
                if (why)
                    *why = "unequal black heights";
                return false;
            }
            return true;
        }
        ++counted;
        if (x->red && (x->left->red || x->right->red)) {
            if (why)
                *why = "red node with red child";
            return false;
        }
        if (x->left != nil_ && cmp_(x->key, x->left->key)) {
            if (why)
                *why = "left child greater than parent";
            return false;
        }
        if (x->right != nil_ && cmp_(x->right->key, x->key)) {
            if (why)
                *why = "right child smaller than parent";
            return false;
        }
        const int nextDepth = blackDepth + (x->red ? 0 : 1);
        return validateNode(x->left, nextDepth, expectedBlack, counted,
                            why)
            && validateNode(x->right, nextDepth, expectedBlack, counted,
                            why);
    }

    Compare cmp_;
    Node *nil_;
    Node *root_;
    std::size_t size_ = 0;
};

} // namespace refsched::os

#endif // REFSCHED_OS_RBTREE_HH
