#include "os/virtual_memory.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace refsched::os
{

VirtualMemory::VirtualMemory(const dram::AddressMapping &mapping,
                             BuddyAllocator &buddy)
    : mapping_(mapping), buddy_(buddy)
{
}

Addr
VirtualMemory::translate(Task &task, Addr vaddr, bool *faulted)
{
    const unsigned shift = mapping_.pageShift();
    const std::uint64_t vpn = vaddr >> shift;
    const Addr offset = vaddr & ((1ULL << shift) - 1);

    const std::size_t slot = vpn & (Task::kTlbEntries - 1);
    if (task.tlbTag[slot] == vpn + 1) {
        if (faulted)
            *faulted = false;
        return (task.tlbPfn[slot] << shift) | offset;
    }

    auto it = task.pageTable.find(vpn);
    if (it != task.pageTable.end()) {
        task.tlbTag[slot] = vpn + 1;
        task.tlbPfn[slot] = it->second;
        if (faulted)
            *faulted = false;
        return (it->second << shift) | offset;
    }

    // Demand paging: Algorithm 2 first, any-bank fallback second.
    // The allocator records the task's bank footprint (and the
    // fallbackAllocs count on a spill) at the allocation site.
    auto pfn = buddy_.allocPage(task);
    if (!pfn) {
        pfn = buddy_.allocPageAnyBank(&task);
        if (pfn)
            ++fallbacks_;
    }
    if (!pfn)
        fatal("out of physical memory: task ", task.name(), " (pid ",
              task.pid(), ") touched vpn ", vpn, " with ",
              buddy_.freeFrames(), " free frames");

    task.pageTable.emplace(vpn, *pfn);
    task.tlbTag[slot] = vpn + 1;
    task.tlbPfn[slot] = *pfn;
    ++task.pageFaults;
    ++pageFaults_;
    if (faulted)
        *faulted = true;
    return (*pfn << shift) | offset;
}

std::optional<Addr>
VirtualMemory::lookup(Task &task, Addr vaddr) const
{
    const unsigned shift = mapping_.pageShift();
    const std::uint64_t vpn = vaddr >> shift;
    const Addr offset = vaddr & ((1ULL << shift) - 1);

    const std::size_t slot = vpn & (Task::kTlbEntries - 1);
    if (task.tlbTag[slot] == vpn + 1)
        return (task.tlbPfn[slot] << shift) | offset;

    auto it = task.pageTable.find(vpn);
    if (it == task.pageTable.end())
        return std::nullopt;
    task.tlbTag[slot] = vpn + 1;
    task.tlbPfn[slot] = it->second;
    return (it->second << shift) | offset;
}

void
VirtualMemory::releaseTask(Task &task)
{
    // Free in vpn order: pageTable iteration order is
    // implementation-defined and the frees are probe-visible, so an
    // unordered walk would leak hash-map layout into golden traces.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> pages(
        task.pageTable.begin(), task.pageTable.end());
    std::sort(pages.begin(), pages.end());
    for (const auto &[vpn, pfn] : pages)
        buddy_.freePage(pfn, task.pid());
    task.pageTable.clear();
    task.tlbTag.fill(0);
    task.clearResidentPages();
}

std::vector<std::uint64_t>
VirtualMemory::collectStalePages(const Task &task) const
{
    std::vector<std::uint64_t> stale;
    for (const auto &[vpn, pfn] : task.pageTable) {
        if (!task.allowsBank(mapping_.bankOfFrame(pfn)))
            stale.push_back(vpn);
    }
    std::sort(stale.begin(), stale.end());
    return stale;
}

std::optional<std::pair<std::uint64_t, std::uint64_t>>
VirtualMemory::migratePage(Task &task, std::uint64_t vpn, bool freeOld)
{
    auto it = task.pageTable.find(vpn);
    REFSCHED_ASSERT(it != task.pageTable.end(),
                    "migratePage: vpn ", vpn, " not mapped for pid ",
                    task.pid());
    const std::uint64_t fromPfn = it->second;

    // Algorithm 2 placement into the new mask; allocPage records the
    // destination in the task's residency footprint.
    const auto toPfn = buddy_.allocPage(task);
    if (!toPfn)
        return std::nullopt;  // permitted banks exhausted: stay put

    it->second = *toPfn;
    const std::size_t slot = vpn & (Task::kTlbEntries - 1);
    if (task.tlbTag[slot] == vpn + 1)
        task.tlbPfn[slot] = *toPfn;
    if (freeOld) {
        task.removeResidentPage(mapping_.bankOfFrame(fromPfn));
        buddy_.freePage(fromPfn, task.pid());
    }
    return std::make_pair(fromPfn, *toPfn);
}

std::uint64_t
VirtualMemory::trimFootprint(Task &task, std::uint64_t vpnBound)
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> doomed;
    for (const auto &[vpn, pfn] : task.pageTable) {
        if (vpn >= vpnBound)
            doomed.emplace_back(vpn, pfn);
    }
    std::sort(doomed.begin(), doomed.end());
    for (const auto &[vpn, pfn] : doomed) {
        task.pageTable.erase(vpn);
        const std::size_t slot = vpn & (Task::kTlbEntries - 1);
        if (task.tlbTag[slot] == vpn + 1)
            task.tlbTag[slot] = 0;
        task.removeResidentPage(mapping_.bankOfFrame(pfn));
        buddy_.freePage(pfn, task.pid());
    }
    return doomed.size();
}

} // namespace refsched::os
