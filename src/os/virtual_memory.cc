#include "os/virtual_memory.hh"

#include "simcore/logging.hh"

namespace refsched::os
{

VirtualMemory::VirtualMemory(const dram::AddressMapping &mapping,
                             BuddyAllocator &buddy)
    : mapping_(mapping), buddy_(buddy)
{
}

Addr
VirtualMemory::translate(Task &task, Addr vaddr, bool *faulted)
{
    const unsigned shift = mapping_.pageShift();
    const std::uint64_t vpn = vaddr >> shift;
    const Addr offset = vaddr & ((1ULL << shift) - 1);

    const std::size_t slot = vpn & (Task::kTlbEntries - 1);
    if (task.tlbTag[slot] == vpn + 1) {
        if (faulted)
            *faulted = false;
        return (task.tlbPfn[slot] << shift) | offset;
    }

    auto it = task.pageTable.find(vpn);
    if (it != task.pageTable.end()) {
        task.tlbTag[slot] = vpn + 1;
        task.tlbPfn[slot] = it->second;
        if (faulted)
            *faulted = false;
        return (it->second << shift) | offset;
    }

    // Demand paging: Algorithm 2 first, any-bank fallback second.
    // The allocator records the task's bank footprint (and the
    // fallbackAllocs count on a spill) at the allocation site.
    auto pfn = buddy_.allocPage(task);
    if (!pfn) {
        pfn = buddy_.allocPageAnyBank(&task);
        if (pfn)
            ++fallbacks_;
    }
    if (!pfn)
        fatal("out of physical memory: task ", task.name(), " (pid ",
              task.pid(), ") touched vpn ", vpn, " with ",
              buddy_.freeFrames(), " free frames");

    task.pageTable.emplace(vpn, *pfn);
    task.tlbTag[slot] = vpn + 1;
    task.tlbPfn[slot] = *pfn;
    ++task.pageFaults;
    ++pageFaults_;
    if (faulted)
        *faulted = true;
    return (*pfn << shift) | offset;
}

void
VirtualMemory::releaseTask(Task &task)
{
    for (const auto &[vpn, pfn] : task.pageTable)
        buddy_.freePage(pfn);
    task.pageTable.clear();
    task.tlbTag.fill(0);
    task.clearResidentPages();
}

} // namespace refsched::os
