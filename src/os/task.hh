/**
 * @file
 * A schedulable OS task (process) and its memory bookkeeping.
 *
 * Beyond the usual pid/vruntime/state, a Task carries the co-design
 * state from the paper:
 *  - possibleBanksVector: the bank bitmask set via cgroups/debugfs
 *    (Algorithm 2, line 12) limiting where its pages may land;
 *  - lastAllocedBank: round-robin cursor so consecutive allocations
 *    spread over the permitted banks (Algorithm 2, lines 10-11);
 *  - residentPagesPerBank: how many of its pages live in each global
 *    bank, consumed by the refresh-aware scheduler (Algorithm 3) and
 *    the best-effort variant (section 5.4.1).
 */

#ifndef REFSCHED_OS_TASK_HH
#define REFSCHED_OS_TASK_HH

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "simcore/types.hh"

namespace refsched::cpu
{
class InstructionSource;
} // namespace refsched::cpu

namespace refsched::os
{

enum class TaskState
{
    Runnable,
    Running,
    Sleeping,
    Finished,
};

class Task
{
  public:
    Task(Pid pid, std::string name, int numGlobalBanks);

    Pid pid() const { return pid_; }
    const std::string &name() const { return name_; }

    TaskState state = TaskState::Runnable;

    /** CFS virtual runtime, in ticks. */
    Tick vruntime = 0;

    /**
     * CFS load weight (Linux nice-0 = 1024).  vruntime advances at
     * rate quantum * 1024 / weight, so heavier tasks are scheduled
     * proportionally more often -- the "high priority task enters
     * the system" scenario of paper section 5.4.
     */
    std::uint32_t weight = kDefaultWeight;

    static constexpr std::uint32_t kDefaultWeight = 1024;

    /** vruntime charge for running @p wall ticks at this weight. */
    Tick
    vruntimeDelta(Tick wall) const
    {
        return wall * kDefaultWeight / weight;
    }

    /** Instruction stream driving this task (owned by the System). */
    cpu::InstructionSource *source = nullptr;

    // --- Bank partitioning (Algorithm 2 state) ---

    /** True entries mark global banks this task may allocate in. */
    std::vector<bool> possibleBanksVector;

    /** Round-robin cursor over permitted banks. */
    int lastAllocedBank = -1;

    bool
    allowsBank(int globalBank) const
    {
        return possibleBanksVector[static_cast<std::size_t>(globalBank)];
    }

    void
    allowBank(int globalBank, bool allowed = true)
    {
        possibleBanksVector[static_cast<std::size_t>(globalBank)] =
            allowed;
    }

    void allowAllBanks();

    int allowedBankCount() const;

    // --- Virtual memory ---

    /** vpn -> pfn demand-paged mappings. */
    std::unordered_map<std::uint64_t, std::uint64_t> pageTable;

    /**
     * Direct-mapped vpn -> pfn cache over pageTable (a simulator
     * fast path, not an architectural TLB: no hit/miss accounting,
     * no latency).  Tags store vpn + 1 so 0 means empty.  Contents
     * always mirror pageTable; mappings are only ever dropped
     * wholesale at address-space teardown, which flushes it.
     */
    static constexpr std::size_t kTlbEntries = 256;
    std::array<std::uint64_t, kTlbEntries> tlbTag{};
    std::array<std::uint64_t, kTlbEntries> tlbPfn{};

    /** Resident page count per global bank. */
    std::vector<std::uint32_t> residentPagesPerBank;

    /**
     * Bit b of word b/64 set iff residentPagesPerBank[b] != 0.
     * Algorithm 3's clean test intersects this with the refreshing-
     * bank mask, one word op instead of a per-bank count loop.
     * Mutations go through addResidentPage/clearResidentPages so the
     * two views cannot drift.
     */
    std::vector<std::uint64_t> residentBanksMask;

    /** Account one more resident page in @p globalBank. */
    void
    addResidentPage(int globalBank)
    {
        ++residentPagesPerBank[static_cast<std::size_t>(globalBank)];
        residentBanksMask[static_cast<std::size_t>(globalBank) / 64] |=
            1ULL << (globalBank % 64);
    }

    /** Drop one resident page from @p globalBank (page free or
     *  migration source), clearing the mask bit when the count hits
     *  zero so Algorithm 3's clean test stays exact. */
    void
    removeResidentPage(int globalBank)
    {
        auto &count =
            residentPagesPerBank[static_cast<std::size_t>(globalBank)];
        if (count > 0 && --count == 0) {
            residentBanksMask[static_cast<std::size_t>(globalBank)
                              / 64] &= ~(1ULL << (globalBank % 64));
        }
    }

    /** Drop the whole footprint (address-space teardown). */
    void
    clearResidentPages()
    {
        std::fill(residentPagesPerBank.begin(),
                  residentPagesPerBank.end(), 0);
        std::fill(residentBanksMask.begin(), residentBanksMask.end(),
                  0);
    }

    std::uint64_t
    residentPages() const
    {
        std::uint64_t total = 0;
        for (auto c : residentPagesPerBank)
            total += c;
        return total;
    }

    /** Fraction of this task's pages living in @p globalBank. */
    double residentFractionIn(int globalBank) const;

    // --- Accounting ---
    std::uint64_t instrsRetired = 0;
    std::uint64_t memOps = 0;
    Tick scheduledTicks = 0;
    std::uint64_t quantaRun = 0;
    std::uint64_t pageFaults = 0;
    std::uint64_t fallbackAllocs = 0;
    std::uint64_t dramReads = 0;

    /** Committed IPC over the measured interval. */
    double ipc(Tick cpuPeriod) const;

    /** Zero the measurement counters (end of warm-up). */
    void resetAccounting();

  private:
    Pid pid_;
    std::string name_;
};

} // namespace refsched::os

#endif // REFSCHED_OS_TASK_HH
