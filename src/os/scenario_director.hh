/**
 * @file
 * Dynamic-workload scenario engine: executes a ScenarioScript against
 * a running system from the event kernel.
 *
 * At every scheduler quantum boundary (after the scheduler's own
 * expiry handler -- the director runs at StatDump priority) the
 * director:
 *
 *   1. finishes pending kills whose victim is off-CPU and has no
 *      in-flight migration copies (releasing its address space
 *      through the buddy allocator and removing it from the
 *      scheduler);
 *   2. executes the script events due this quantum: spawns (a new
 *      Task + instruction source via the System hook, sequential
 *      pids) and kills (a Running victim is put to sleep and
 *      finished at a later boundary);
 *   3. trims footprints of tasks whose macro-phase changed to a
 *      smaller effective footprint (growth demand-pages back in);
 *   4. re-binpacks every live task's possible_banks_vector after
 *      churn (when the script asks for it), the consolidation step
 *      that strands placements;
 *   5. migrates pages stranded outside their task's new mask
 *      (when the script asks for it): the mapping is rewritten
 *      immediately and the copy is modelled as real cache-line
 *      read/write requests through the memory controller, with the
 *      source frame freed only when the last line has been read.
 *
 * All decisions derive from the script and the shared event queue, so
 * scenario runs are bit-identical across --jobs and --shards.
 */

#ifndef REFSCHED_OS_SCENARIO_DIRECTOR_HH
#define REFSCHED_OS_SCENARIO_DIRECTOR_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dram/address_mapping.hh"
#include "memctrl/memory_port.hh"
#include "os/buddy_allocator.hh"
#include "os/scheduler.hh"
#include "os/task.hh"
#include "os/virtual_memory.hh"
#include "simcore/event_queue.hh"
#include "simcore/probe.hh"
#include "simcore/stats.hh"
#include "workload/scenario.hh"

namespace refsched::os
{

class ScenarioDirector final : public Callee
{
  public:
    /** Seams into the owning System. */
    struct Hooks
    {
        /**
         * Create a Task (with @p pid) plus its instruction source for
         * a spawn event and register both with the System's ownership
         * lists.  Returns the task; the director enrolls it with the
         * scheduler.
         */
        std::function<Task *(const workload::ScenarioEvent &, Pid pid)>
            spawnTask;

        /** Recompute possible_banks_vector for @p live (in order). */
        std::function<void(const std::vector<Task *> &live)>
            reassignMasks;

        /** {phaseEpoch, effectiveFootprintBytes} of @p task's
         *  generator (macro-phase tracking). */
        std::function<std::pair<std::uint64_t, std::uint64_t>(
            const Task &)>
            phaseState;
    };

    ScenarioDirector(EventQueue &eq, Scheduler &sched,
                     VirtualMemory &vm, BuddyAllocator &buddy,
                     memctrl::MemoryPort &mem,
                     const dram::AddressMapping &mapping,
                     const workload::ScenarioScript &script,
                     Hooks hooks);

    /** Register the initial task set (pid order) and schedule the
     *  first boundary.  Call after Scheduler::start(). */
    void start(const std::vector<Task *> &initialTasks);

    /** Migration-copy read completions (cookie0 = job index,
     *  cookie1 = line index). */
    void fire(Tick now, std::uint64_t jobIdx,
              std::uint64_t lineIdx) override;

    void registerStats(StatRegistry &reg, const std::string &prefix);

    /** Live tasks, in pid order. */
    const std::vector<Task *> &liveTasks() const { return live_; }

    /** Migration copies still in flight (tests drain on this). */
    bool migrationsPending() const { return outstandingReads_ > 0; }

    // --- Statistics ---
    Scalar spawns;
    Scalar kills;
    Scalar phaseChanges;
    Scalar pagesMigrated;
    Scalar migrationReads;
    Scalar migrationWrites;
    Scalar pagesTrimmed;

  private:
    /** One page being copied: reads from the old frame, then posted
     *  writes to the new one; the source frame is freed when the
     *  last line completes. */
    struct MigrationJob
    {
        Task *task = nullptr;
        Pid pid = -1;
        std::uint64_t fromPfn = 0;
        std::uint64_t toPfn = 0;
        int linesIssued = 0;
        int linesDone = 0;
    };

    void onBoundary(std::uint64_t k);
    void finalizeKill(Task *task);
    void migrateStalePages(Task *task);
    void issueCopyReads();
    void flushPendingWrites();
    void armRetry();

    int linesPerPage() const
    {
        return static_cast<int>(mapping_.pageBytes() / 64);
    }

    EventQueue &eq_;
    Scheduler &sched_;
    VirtualMemory &vm_;
    BuddyAllocator &buddy_;
    memctrl::MemoryPort &mem_;
    const dram::AddressMapping &mapping_;
    workload::ScenarioScript script_;
    Hooks hooks_;
    validate::Probe *probe_ = nullptr;

  public:
    /** Attach an instrumentation probe (task lifecycle and page
     *  migration events are reported through it).  Null detaches. */
    void setProbe(validate::Probe *probe) { probe_ = probe; }

  private:
    std::vector<Task *> live_;
    std::vector<Task *> pendingKills_;
    std::size_t eventIdx_ = 0;
    Pid nextPid_ = 1;
    Tick base_ = 0;

    std::unordered_map<Pid, std::uint64_t> lastEpoch_;
    /** In-flight migration jobs per pid (kills wait on zero). */
    std::unordered_map<Pid, int> activeJobs_;

    /** Jobs are appended, never erased: cookie0 indexes here. */
    std::vector<MigrationJob> jobs_;
    /** Jobs with unissued read lines, in creation order. */
    std::deque<std::size_t> readQueue_;
    /** Copy writes bounced by a full write queue. */
    std::deque<std::pair<Addr, Pid>> pendingWrites_;
    int outstandingReads_ = 0;
    bool retryArmed_ = false;

    /** Cap on in-flight copy reads: one page's worth of lines, so a
     *  consolidation sweep drains within a few quanta without
     *  monopolising the read queue. */
    static constexpr int kMaxOutstandingReads = 64;
};

} // namespace refsched::os

#endif // REFSCHED_OS_SCENARIO_DIRECTOR_HH
