#include "os/scenario_director.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace refsched::os
{

ScenarioDirector::ScenarioDirector(
    EventQueue &eq, Scheduler &sched, VirtualMemory &vm,
    BuddyAllocator &buddy, memctrl::MemoryPort &mem,
    const dram::AddressMapping &mapping,
    const workload::ScenarioScript &script, Hooks hooks)
    : eq_(eq),
      sched_(sched),
      vm_(vm),
      buddy_(buddy),
      mem_(mem),
      mapping_(mapping),
      script_(script),
      hooks_(std::move(hooks))
{
    script_.check();
}

void
ScenarioDirector::start(const std::vector<Task *> &initialTasks)
{
    live_ = initialTasks;
    nextPid_ = 1;
    for (const Task *t : live_) {
        nextPid_ = std::max<Pid>(nextPid_, t->pid() + 1);
        lastEpoch_[t->pid()] = 0;
    }
    base_ = eq_.now();
    const Tick quantum = sched_.params().quantum;
    // StatDump priority: boundary k runs AFTER the scheduler's own
    // expiry handler at the same tick, so churn acts on settled
    // runqueues and the new masks/placements are visible to the very
    // next pick.
    eq_.schedule(
        base_ + quantum, [this] { onBoundary(1); },
        EventPriority::StatDump);
}

void
ScenarioDirector::finalizeKill(Task *task)
{
    vm_.releaseTask(*task);
    sched_.removeTask(task);
    live_.erase(std::remove(live_.begin(), live_.end(), task),
                live_.end());
    lastEpoch_.erase(task->pid());
    REFSCHED_PROBE(probe_,
                   onTaskExit({eq_.now(), task->pid(), false, -1}));
    ++kills;
}

void
ScenarioDirector::onBoundary(std::uint64_t k)
{
    const Tick quantum = sched_.params().quantum;
    bool churned = false;

    // 1. Finish kills whose victim has left its CPU and has no copy
    //    traffic still reading its frames.
    for (std::size_t i = 0; i < pendingKills_.size();) {
        Task *victim = pendingKills_[i];
        const int cpu = sched_.cpuOf(victim);
        const bool running = cpu >= 0
            && sched_.currentOn(cpu) == victim;
        auto jobs = activeJobs_.find(victim->pid());
        const bool copying =
            jobs != activeJobs_.end() && jobs->second > 0;
        if (running || copying) {
            ++i;
            continue;
        }
        finalizeKill(victim);
        churned = true;
        pendingKills_.erase(
            pendingKills_.begin() + static_cast<std::ptrdiff_t>(i));
    }

    // 2. Script events due this quantum.
    while (eventIdx_ < script_.events.size()
           && script_.events[eventIdx_].quantum <= k) {
        const workload::ScenarioEvent &ev = script_.events[eventIdx_];
        ++eventIdx_;
        if (ev.kind == workload::ScenarioEventKind::Spawn) {
            Task *task = hooks_.spawnTask(ev, nextPid_);
            ++nextPid_;
            // Enter at the pack's minimum vruntime (CFS places new
            // tasks at min_vruntime) so a late arrival neither
            // monopolises the CPU nor starves.
            Tick minV = kMaxTick;
            for (const Task *t : live_)
                minV = std::min(minV, t->vruntime);
            if (minV != kMaxTick)
                task->vruntime = minV;
            live_.push_back(task);
            lastEpoch_[task->pid()] = 0;
            sched_.addTask(task, ev.cpu);
            REFSCHED_PROBE(
                probe_, onTaskSpawn({eq_.now(), task->pid(), true,
                                     sched_.cpuOf(task)}));
            ++spawns;
            churned = true;
        } else {
            auto it = std::find_if(
                live_.begin(), live_.end(),
                [&](const Task *t) { return t->pid() == ev.pid; });
            if (it == live_.end()) {
                warn("scenario: kill of pid ", ev.pid,
                     " which is not alive at quantum ", k);
                continue;
            }
            Task *victim = *it;
            const int cpu = sched_.cpuOf(victim);
            sched_.sleepTask(victim);
            if (cpu >= 0 && sched_.currentOn(cpu) == victim) {
                // Running: it stops at the next boundary.
                pendingKills_.push_back(victim);
            } else {
                auto jobs = activeJobs_.find(victim->pid());
                if (jobs != activeJobs_.end() && jobs->second > 0)
                    pendingKills_.push_back(victim);
                else {
                    finalizeKill(victim);
                    churned = true;
                }
            }
        }
    }

    // 3. Macro-phase changes: shrink the address space down to the
    //    new effective footprint (a grow demand-pages lazily).
    if (hooks_.phaseState) {
        for (Task *t : live_) {
            const auto [epoch, fpBytes] = hooks_.phaseState(*t);
            auto &last = lastEpoch_[t->pid()];
            if (epoch == last)
                continue;
            last = epoch;
            ++phaseChanges;
            const std::uint64_t pageBytes = mapping_.pageBytes();
            const std::uint64_t bound =
                (fpBytes + pageBytes - 1) / pageBytes;
            pagesTrimmed += static_cast<double>(
                vm_.trimFootprint(*t, bound));
        }
    }

    // 4. Consolidation re-binpack after churn.
    if (churned && script_.reassignOnChurn && hooks_.reassignMasks)
        hooks_.reassignMasks(live_);

    // 5. Migrate pages stranded outside the (possibly new) masks.
    if (script_.migrate) {
        for (Task *t : live_)
            migrateStalePages(t);
        issueCopyReads();
    }

    eq_.schedule(
        base_ + (k + 1) * quantum, [this, k] { onBoundary(k + 1); },
        EventPriority::StatDump);
}

void
ScenarioDirector::migrateStalePages(Task *task)
{
    for (const std::uint64_t vpn : vm_.collectStalePages(*task)) {
        // freeOld=false: the source frame stays allocated (and the
        // task transiently counts resident in both banks) until the
        // copy's last line has been read out of it.
        const auto moved = vm_.migratePage(*task, vpn, false);
        if (!moved)
            return;  // permitted banks exhausted; stop trying
        REFSCHED_PROBE(
            probe_, onPageMigrate({eq_.now(), task->pid(), vpn,
                                   moved->first, moved->second,
                                   linesPerPage(),
                                   &task->possibleBanksVector}));
        ++pagesMigrated;
        jobs_.push_back({task, task->pid(), moved->first,
                         moved->second, 0, 0});
        readQueue_.push_back(jobs_.size() - 1);
        ++activeJobs_[task->pid()];
    }
}

void
ScenarioDirector::issueCopyReads()
{
    while (outstandingReads_ < kMaxOutstandingReads
           && !readQueue_.empty()) {
        const std::size_t jobIdx = readQueue_.front();
        MigrationJob &job = jobs_[jobIdx];
        const int line = job.linesIssued;

        memctrl::Request req;
        req.paddr = (job.fromPfn << mapping_.pageShift())
            + static_cast<Addr>(line) * 64;
        req.type = memctrl::Request::Type::Read;
        req.pid = job.pid;
        req.completion = this;
        req.cookie0 = jobIdx;
        req.cookie1 = static_cast<std::uint64_t>(line);
        if (!mem_.enqueue(req)) {
            armRetry();
            return;
        }
        ++migrationReads;
        ++outstandingReads_;
        if (++job.linesIssued == linesPerPage())
            readQueue_.pop_front();
    }
}

void
ScenarioDirector::flushPendingWrites()
{
    while (!pendingWrites_.empty()) {
        memctrl::Request req;
        req.paddr = pendingWrites_.front().first;
        req.type = memctrl::Request::Type::Write;
        req.pid = pendingWrites_.front().second;
        if (!mem_.enqueue(req)) {
            armRetry();
            return;
        }
        ++migrationWrites;
        pendingWrites_.pop_front();
    }
}

void
ScenarioDirector::armRetry()
{
    if (retryArmed_)
        return;
    retryArmed_ = true;
    mem_.requestRetryNotification([this] {
        retryArmed_ = false;
        flushPendingWrites();
        if (pendingWrites_.empty())
            issueCopyReads();
    });
}

void
ScenarioDirector::fire(Tick now, std::uint64_t jobIdx,
                       std::uint64_t lineIdx)
{
    MigrationJob &job = jobs_[jobIdx];

    // Write the line into the destination frame (posted).
    const Addr waddr = (job.toPfn << mapping_.pageShift())
        + static_cast<Addr>(lineIdx) * 64;
    if (pendingWrites_.empty()) {
        memctrl::Request req;
        req.paddr = waddr;
        req.type = memctrl::Request::Type::Write;
        req.pid = job.pid;
        if (mem_.enqueue(req))
            ++migrationWrites;
        else {
            pendingWrites_.emplace_back(waddr, job.pid);
            armRetry();
        }
    } else {
        // Keep writes in line order behind the ones already waiting.
        pendingWrites_.emplace_back(waddr, job.pid);
        armRetry();
    }

    --outstandingReads_;
    if (++job.linesDone == linesPerPage()) {
        // Last line read: the source frame's data is gone; drop the
        // transient double residency and return the frame.
        job.task->removeResidentPage(
            mapping_.bankOfFrame(job.fromPfn));
        buddy_.freePage(job.fromPfn, job.pid);
        auto it = activeJobs_.find(job.pid);
        if (it != activeJobs_.end() && --it->second == 0)
            activeJobs_.erase(it);
    }
    (void)now;
    issueCopyReads();
}

void
ScenarioDirector::registerStats(StatRegistry &reg,
                                const std::string &prefix)
{
    reg.add(prefix + ".spawns", &spawns);
    reg.add(prefix + ".kills", &kills);
    reg.add(prefix + ".phaseChanges", &phaseChanges);
    reg.add(prefix + ".pagesMigrated", &pagesMigrated);
    reg.add(prefix + ".migrationReads", &migrationReads);
    reg.add(prefix + ".migrationWrites", &migrationWrites);
    reg.add(prefix + ".pagesTrimmed", &pagesTrimmed);
}

} // namespace refsched::os
