/**
 * @file
 * Bank-aware buddy allocator (paper Algorithm 2).
 *
 * A classic binary-buddy physical frame allocator (orders 0..11, like
 * Linux's MAX_ORDER) extended with the paper's two mechanisms:
 *
 *  1. Per-bank free-list caches: order-0 pages popped from the buddy
 *     free lists whose bank does not match the requested bank are
 *     stashed in a per-bank cache rather than returned, so a free
 *     page of any bank is later found without traversing the OS
 *     free list (Algorithm 2, lines 15/33).
 *  2. Round-robin allocation over a task's possibleBanksVector, via
 *     the task's lastAllocedBank cursor, preserving bank-level
 *     parallelism within the permitted subset (lines 10-11).
 *
 * The allocator learns bank placement through the hardware
 * AddressMapping that the co-design exposes to the OS.
 */

#ifndef REFSCHED_OS_BUDDY_ALLOCATOR_HH
#define REFSCHED_OS_BUDDY_ALLOCATOR_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dram/address_mapping.hh"
#include "os/task.hh"
#include "simcore/event_queue.hh"
#include "simcore/probe.hh"
#include "simcore/stats.hh"

namespace refsched::os
{

/**
 * Free-block list for one buddy order: a binary min-heap over a flat
 * vector.  The allocator only ever pops the minimum (deterministic
 * lowest-address-first, same order a std::set yields) and pushes
 * split halves, both O(log n) with no node allocation -- the hot
 * demand-paging path used to spend ~10% of a co-design run inside
 * red-black-tree erase.  Arbitrary-element erase (coalescing) is
 * linear but only runs on teardown paths.
 */
class PfnMinHeap
{
  public:
    bool empty() const { return v_.empty(); }
    std::size_t size() const { return v_.size(); }

    void
    push(std::uint64_t pfn)
    {
        v_.push_back(pfn);
        std::push_heap(v_.begin(), v_.end(),
                       std::greater<std::uint64_t>{});
    }

    /** Remove and return the smallest pfn; heap must be non-empty. */
    std::uint64_t
    popMin()
    {
        std::pop_heap(v_.begin(), v_.end(),
                      std::greater<std::uint64_t>{});
        const std::uint64_t pfn = v_.back();
        v_.pop_back();
        return pfn;
    }

    /** Remove @p pfn if present; false when absent. */
    bool
    erase(std::uint64_t pfn)
    {
        auto it = std::find(v_.begin(), v_.end(), pfn);
        if (it == v_.end())
            return false;
        *it = v_.back();
        v_.pop_back();
        std::make_heap(v_.begin(), v_.end(),
                       std::greater<std::uint64_t>{});
        return true;
    }

    bool
    contains(std::uint64_t pfn) const
    {
        return std::find(v_.begin(), v_.end(), pfn) != v_.end();
    }

    /** Unordered view of the stored pfns (for invariant checks). */
    const std::vector<std::uint64_t> &items() const { return v_; }

  private:
    std::vector<std::uint64_t> v_;
};

class BuddyAllocator
{
  public:
    /** Largest block order (2^11 pages = 8 MB with 4 KB pages). */
    static constexpr int kMaxOrder = 11;

    explicit BuddyAllocator(const dram::AddressMapping &mapping);

    // ------------------------------------------------------------------
    // Algorithm 2: bank-aware page allocation
    // ------------------------------------------------------------------

    /**
     * Allocate one page for @p task honouring its
     * possibleBanksVector, rotating over permitted banks.  Returns
     * std::nullopt when no page in a permitted bank exists.  On
     * success the task's residentPagesPerBank footprint is updated
     * here, at the allocation site -- the refresh-aware scheduler
     * (Algorithm 3) reads that footprint, so every allocation path
     * must record it, not just the virtual-memory fault handler.
     */
    std::optional<std::uint64_t> allocPage(Task &task);

    /**
     * Fallback of section 5.4.1: allocate one page from any bank
     * (used when the soft-partitioned banks are exhausted).  A spill
     * outside the mask is never silent: the task's bank footprint
     * and fallbackAllocs counter are updated and the probe event is
     * emitted with fallback=true so the OsAuditor can check the
     * spill was justified (all permitted banks full).
     */
    std::optional<std::uint64_t> allocPageAnyBank(Task *task);

    /** Return one page; it lands in its bank's free-list cache.
     *  @p owner is the releasing task's pid (reported to the probe so
     *  auditors can keep per-task residency exact); -1 when the owner
     *  is unknown. */
    void freePage(std::uint64_t pfn, Pid owner = -1);

    // ------------------------------------------------------------------
    // Generic buddy interface
    // ------------------------------------------------------------------

    /** Allocate a 2^order-page block (lowest address first). */
    std::optional<std::uint64_t> allocBlock(int order);

    /** Free a block previously returned by allocBlock, coalescing
     *  with free buddies up to kMaxOrder. */
    void freeBlock(std::uint64_t pfn, int order);

    /** Push per-bank cached pages back into the buddy lists (with
     *  coalescing), e.g. when tearing a workload down. */
    void drainBankCaches();

    /**
     * Attach an instrumentation probe; page-granularity alloc/free
     * events are reported through it, timestamped from @p clock.
     * Block-granularity allocBlock/freeBlock calls are not reported
     * (the simulated OS only uses the page interface).
     */
    void
    setProbe(validate::Probe *probe, const EventQueue *clock)
    {
        probe_ = probe;
        clock_ = clock;
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /** Free frames in buddy lists + per-bank caches. */
    std::uint64_t freeFrames() const { return freeFrames_; }

    std::uint64_t totalFrames() const { return totalFrames_; }

    std::uint64_t bankCacheSize(int globalBank) const
    {
        return perBankFree_[static_cast<std::size_t>(globalBank)].size();
    }

    std::uint64_t freeListSize(int order) const
    {
        return freeLists_[static_cast<std::size_t>(order)].size();
    }

    /**
     * Check structural invariants: free blocks aligned to their
     * order, in range, non-overlapping, and the free-frame count
     * consistent.  O(free blocks log n); for tests.
     */
    bool checkInvariants(std::string *why = nullptr) const;

    // --- Statistics ---
    std::uint64_t pagesAllocated() const { return pagesAllocated_; }
    std::uint64_t bankCacheHits() const { return bankCacheHits_; }
    std::uint64_t osListFetches() const { return osListFetches_; }
    std::uint64_t stashes() const { return stashes_; }
    std::uint64_t fallbackAllocations() const { return fallbacks_; }

  private:
    /** Pop a page from @p bank's cache, if any. */
    std::optional<std::uint64_t> popBankCache(int bank);

    const dram::AddressMapping &mapping_;
    std::uint64_t totalFrames_;
    std::uint64_t freeFrames_ = 0;
    int numBanks_;

    /** Buddy free lists, one min-heap of block-start pfns per order
     *  (min-pop => deterministic lowest-address-first). */
    std::vector<PfnMinHeap> freeLists_;

    /** Per-bank caches of order-0 pages (Algorithm 2). */
    std::vector<std::vector<std::uint64_t>> perBankFree_;

    validate::Probe *probe_ = nullptr;
    const EventQueue *clock_ = nullptr;

    std::uint64_t pagesAllocated_ = 0;
    std::uint64_t bankCacheHits_ = 0;
    std::uint64_t osListFetches_ = 0;
    std::uint64_t stashes_ = 0;
    std::uint64_t fallbacks_ = 0;
};

} // namespace refsched::os

#endif // REFSCHED_OS_BUDDY_ALLOCATOR_HH
