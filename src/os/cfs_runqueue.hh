/**
 * @file
 * CFS-style per-CPU runqueue: tasks ordered by (vruntime, pid) in a
 * red-black tree, exactly like the Linux scheduler's cfs_rq (paper
 * section 2.4).  The leftmost node is the conventional pick; the
 * refresh-aware scheduler walks in-order from the left (Algorithm 3).
 */

#ifndef REFSCHED_OS_CFS_RUNQUEUE_HH
#define REFSCHED_OS_CFS_RUNQUEUE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "os/rbtree.hh"
#include "os/task.hh"
#include "simcore/types.hh"

namespace refsched::os
{

/** Tree key: vruntime ordered, pid tie-broken for determinism. */
struct VruntimeKey
{
    Tick vruntime = 0;
    Pid pid = 0;

    bool
    operator<(const VruntimeKey &o) const
    {
        if (vruntime != o.vruntime)
            return vruntime < o.vruntime;
        return pid < o.pid;
    }
};

class CfsRunQueue
{
  public:
    using Tree = RbTree<VruntimeKey, Task *>;

    CfsRunQueue() = default;

    /** Add a runnable task (keyed by its current vruntime). */
    void enqueue(Task *task);

    /** Remove @p task (it must be enqueued here). */
    void dequeue(Task *task);

    /** True if @p task is currently enqueued. */
    bool contains(const Task *task) const;

    /** Leftmost (minimum-vruntime) task, or nullptr. */
    Task *first() const;

    /**
     * Visit tasks in vruntime order until @p visit returns false.
     * Used by the refresh-aware pick (Algorithm 3's bounded walk).
     */
    void forEachInOrder(
        const std::function<bool(Task *)> &visit) const;

    /**
     * Smallest vruntime in the queue, or nullopt when empty.  An
     * empty queue deliberately has NO min vruntime: returning a
     * sentinel 0 would be indistinguishable from a real vruntime of
     * 0 and would drag the wake-clamp floor (Scheduler::wakeTask) to
     * zero whenever any sibling queue is momentarily empty.
     */
    std::optional<Tick> minVruntime() const;

    std::size_t size() const { return tree_.size(); }
    bool empty() const { return tree_.empty(); }

    /** Red-black invariants of the underlying tree (for tests). */
    bool validate(std::string *why = nullptr) const
    {
        return tree_.validate(why);
    }

  private:
    Tree tree_;
    std::unordered_map<const Task *, Tree::Node *> nodes_;
};

} // namespace refsched::os

#endif // REFSCHED_OS_CFS_RUNQUEUE_HH
