#include "os/scheduler.hh"

#include <algorithm>
#include <limits>

#include "simcore/logging.hh"

namespace refsched::os
{

Scheduler::Scheduler(EventQueue &eq, const SchedulerParams &params)
    : eq_(eq), params_(params)
{
    if (params_.quantum == 0)
        fatal("scheduler quantum must be non-zero");
    if (params_.etaThresh < 1)
        fatal("eta_thresh must be >= 1");
}

void
Scheduler::attachCpus(std::vector<CpuContext *> cpus)
{
    REFSCHED_ASSERT(!started_, "cannot attach CPUs after start");
    if (cpus.empty())
        fatal("scheduler needs at least one CPU");
    cpus_ = std::move(cpus);
    queues_ = std::vector<CfsRunQueue>(cpus_.size());
    current_.assign(cpus_.size(), nullptr);
}

void
Scheduler::setRefreshQuery(std::function<std::vector<int>(Tick)> query)
{
    refreshQuery_ = std::move(query);
}

void
Scheduler::emitRq(
    void (validate::Probe::*hook)(const validate::RqEvent &), int cpu,
    const Task *task)
{
#if REFSCHED_VALIDATE
    if (probe_)
        (probe_->*hook)(
            {eq_.now(), cpu, task->pid(), task->vruntime});
#else
    (void)hook;
    (void)cpu;
    (void)task;
#endif
}

void
Scheduler::addTask(Task *task, int cpu)
{
    REFSCHED_ASSERT(task != nullptr, "null task");
    REFSCHED_ASSERT(!cpus_.empty(), "attach CPUs before adding tasks");
    if (cpu < 0) {
        // Least-loaded CPU, lowest index on ties.
        std::size_t best = 0;
        for (std::size_t i = 1; i < queues_.size(); ++i) {
            if (queues_[i].size() < queues_[best].size())
                best = i;
        }
        cpu = static_cast<int>(best);
    }
    if (cpu >= static_cast<int>(cpus_.size()))
        fatal("task assigned to nonexistent cpu ", cpu);
    task->state = TaskState::Runnable;
    queues_[static_cast<std::size_t>(cpu)].enqueue(task);
    emitRq(&validate::Probe::onRqEnqueue, cpu, task);
    allTasks_.push_back(task);
    maskWords_ = std::max(maskWords_, task->residentBanksMask.size());
}

int
Scheduler::cpuOf(const Task *task) const
{
    for (std::size_t i = 0; i < queues_.size(); ++i) {
        if (queues_[i].contains(task)
            || current_[i] == task) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

void
Scheduler::sleepTask(Task *task)
{
    const int cpu = cpuOf(task);
    REFSCHED_ASSERT(cpu >= 0, "sleepTask of unknown task");
    auto &rq = queues_[static_cast<std::size_t>(cpu)];
    if (rq.contains(task)) {
        rq.dequeue(task);
        emitRq(&validate::Probe::onRqDequeue, cpu, task);
    }
    // A currently-running task sleeps at the next boundary; mark it.
    task->state = TaskState::Sleeping;
}

void
Scheduler::wakeTask(Task *task)
{
    REFSCHED_ASSERT(task->state == TaskState::Sleeping,
                    "wake of non-sleeping task");
    // Re-enter on the least loaded queue; clamp vruntime forward so
    // a long sleep does not let the task monopolise the CPU.
    Tick minV = kMaxTick;
    for (const auto &q : queues_) {
        if (const auto mv = q.minVruntime())
            minV = std::min(minV, *mv);
    }
    for (const Task *cur : current_) {
        if (cur)
            minV = std::min(minV, cur->vruntime);
    }
    if (minV != kMaxTick)
        task->vruntime = std::max(task->vruntime, minV);
    task->state = TaskState::Runnable;
    std::size_t best = 0;
    for (std::size_t i = 1; i < queues_.size(); ++i) {
        if (queues_[i].size() < queues_[best].size())
            best = i;
    }
    queues_[best].enqueue(task);
    emitRq(&validate::Probe::onRqEnqueue, static_cast<int>(best),
           task);
}

void
Scheduler::removeTask(Task *task)
{
    REFSCHED_ASSERT(task != nullptr, "null task");
    for (std::size_t i = 0; i < cpus_.size(); ++i) {
        REFSCHED_ASSERT(current_[i] != task,
                        "removeTask of task running on cpu ", i,
                        " (sleep it and retry at the next boundary)");
    }
    for (std::size_t i = 0; i < queues_.size(); ++i) {
        if (queues_[i].contains(task)) {
            queues_[i].dequeue(task);
            emitRq(&validate::Probe::onRqDequeue,
                   static_cast<int>(i), task);
            break;
        }
    }
    task->state = TaskState::Finished;
    allTasks_.erase(
        std::remove(allTasks_.begin(), allTasks_.end(), task),
        allTasks_.end());
}

void
Scheduler::start()
{
    REFSCHED_ASSERT(!started_, "scheduler already started");
    REFSCHED_ASSERT(!cpus_.empty(), "no CPUs attached");
    started_ = true;
    eq_.schedule(
        eq_.now(), [this] { onQuantumExpiry(); },
        EventPriority::Scheduler);
}

bool
Scheduler::cleanOf(const Task &t,
                   const std::vector<std::uint64_t> &mask)
{
    // Word intersection of the task's resident-bank bitmap with the
    // refreshing-bank mask: clean iff every word is disjoint.
    for (std::size_t w = 0; w < mask.size(); ++w) {
        if (t.residentBanksMask[w] & mask[w])
            return false;
    }
    return true;
}

double
Scheduler::residentIn(const Task &t, const std::vector<int> &banks)
{
    double sum = 0.0;
    for (const int b : banks)
        sum += t.residentFractionIn(b);
    return sum;
}

Task *
Scheduler::pickNextTask(int cpu, const std::vector<int> &refreshBanks)
{
    auto &rq = queues_[static_cast<std::size_t>(cpu)];

    // When a probe is attached, capture the walk so the auditor can
    // re-derive the decision; candidates are recorded during the
    // real walk (not a replay) so a walk bug cannot hide itself.
#if REFSCHED_VALIDATE
    const bool capture = probe_ != nullptr;
#else
    constexpr bool capture = false;
#endif
    std::vector<validate::SchedCandidate> cand;
    auto emitPick = [&](validate::PickKind kind, const Task *chosen) {
        if (!capture)
            return;
        validate::SchedPickEvent ev;
        ev.tick = eq_.now();
        ev.cpu = cpu;
        ev.kind = kind;
        ev.chosen = chosen ? chosen->pid() : -1;
        ev.etaThresh = params_.etaThresh;
        ev.bestEffort = params_.bestEffort;
        ev.quantum = params_.quantum;
        ev.refreshBanks = &refreshBanks;
        ev.candidates = &cand;
        probe_->onSchedPick(ev);
    };

    if (rq.empty()) {
        emitPick(validate::PickKind::Idle, nullptr);
        return nullptr;
    }

    if (!params_.refreshAware || refreshBanks.empty()) {
        Task *first = rq.first();
        emitPick(validate::PickKind::Baseline, first);
        return first;
    }

    // The refreshing banks as a word mask, built once per pick; each
    // candidate's clean test is then one intersection against its
    // resident-bank bitmap instead of a per-bank count loop.
    refreshMask_.assign(maskWords_, 0);
    for (const int b : refreshBanks) {
        refreshMask_[static_cast<std::size_t>(b) / 64] |=
            1ULL << (b % 64);
    }

    // Algorithm 3: walk the red-black tree from the left, looking
    // for a task with no data in the bank(s) to be refreshed,
    // examining at most eta_thresh candidates.
    Task *firstSchedEntity = nullptr;
    Task *found = nullptr;
    std::vector<Task *> walked;
    int count = 0;

    rq.forEachInOrder([&](Task *p) {
        ++count;
        if (count == 1)
            firstSchedEntity = p;
        const bool clean = cleanOf(*p, refreshMask_);
        if (capture)
            cand.push_back({p->pid(), p->vruntime, clean,
                            residentIn(*p, refreshBanks)});
        if (clean) {
            found = p;
            return false;
        }
        walked.push_back(p);
        return count < params_.etaThresh;
    });

    if (found) {
        ++cleanPicks;
        if (found != firstSchedEntity)
            ++deferredPicks;
        emitPick(validate::PickKind::Clean, found);
        return found;
    }

    // eta_thresh exhausted (Algorithm 3 line 31 falls back to the
    // leftmost entity; section 5.4.1 refines that to the candidate
    // with the least data in the refreshing banks).
    if (params_.bestEffort && !walked.empty()) {
        Task *best = walked.front();
        double bestFrac = residentIn(*best, refreshBanks);
        for (Task *p : walked) {
            const double f = residentIn(*p, refreshBanks);
            if (f < bestFrac) {
                best = p;
                bestFrac = f;
            }
        }
        ++bestEffortPicks;
        emitPick(validate::PickKind::BestEffort, best);
        return best;
    }

    ++fallbackPicks;
    emitPick(validate::PickKind::Fallback, firstSchedEntity);
    return firstSchedEntity;
}

void
Scheduler::onQuantumExpiry()
{
    const Tick now = eq_.now();

    // Charge and re-enqueue the outgoing tasks.
    for (std::size_t cpu = 0; cpu < cpus_.size(); ++cpu) {
        Task *cur = current_[cpu];
        if (!cur)
            continue;
        cur->vruntime += cur->vruntimeDelta(params_.quantum);
        cur->scheduledTicks += params_.quantum;
        ++cur->quantaRun;
        current_[cpu] = nullptr;
        if (cur->state == TaskState::Sleeping
            || cur->state == TaskState::Finished)
            continue;  // slept/exited while running; stays dequeued
        cur->state = TaskState::Runnable;
        queues_[cpu].enqueue(cur);
        emitRq(&validate::Probe::onRqEnqueue, static_cast<int>(cpu),
               cur);
    }

    // The banks the hardware will refresh during the coming quantum.
    std::vector<int> refreshBanks;
    if (params_.refreshAware && refreshQuery_)
        refreshBanks = refreshQuery_(now);

    for (std::size_t cpu = 0; cpu < cpus_.size(); ++cpu) {
        Task *next = pickNextTask(static_cast<int>(cpu), refreshBanks);
        if (next) {
            queues_[cpu].dequeue(next);
            emitRq(&validate::Probe::onRqDequeue,
                   static_cast<int>(cpu), next);
            next->state = TaskState::Running;
            current_[cpu] = next;
            ++quantaScheduled;
        } else {
            ++idleQuanta;
        }
        cpus_[cpu]->setTask(next, now + params_.quantum);
    }

    eq_.schedule(
        now + params_.quantum, [this] { onQuantumExpiry(); },
        EventPriority::Scheduler);
}

Tick
Scheduler::vruntimeSpread() const
{
    Tick lo = kMaxTick, hi = 0;
    for (const Task *t : allTasks_) {
        lo = std::min(lo, t->vruntime);
        hi = std::max(hi, t->vruntime);
    }
    return allTasks_.empty() ? 0 : hi - lo;
}

void
Scheduler::registerStats(StatRegistry &reg, const std::string &prefix)
{
    reg.add(prefix + ".quantaScheduled", &quantaScheduled);
    reg.add(prefix + ".cleanPicks", &cleanPicks);
    reg.add(prefix + ".deferredPicks", &deferredPicks);
    reg.add(prefix + ".fallbackPicks", &fallbackPicks);
    reg.add(prefix + ".bestEffortPicks", &bestEffortPicks);
    reg.add(prefix + ".idleQuanta", &idleQuanta);
}

} // namespace refsched::os
