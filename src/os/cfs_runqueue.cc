#include "os/cfs_runqueue.hh"

#include "simcore/logging.hh"

namespace refsched::os
{

void
CfsRunQueue::enqueue(Task *task)
{
    REFSCHED_ASSERT(task != nullptr, "enqueue null task");
    REFSCHED_ASSERT(!contains(task), "task already enqueued: pid ",
                    task->pid());
    auto *node =
        tree_.insert(VruntimeKey{task->vruntime, task->pid()}, task);
    nodes_.emplace(task, node);
}

void
CfsRunQueue::dequeue(Task *task)
{
    auto it = nodes_.find(task);
    REFSCHED_ASSERT(it != nodes_.end(), "dequeue of absent task: pid ",
                    task->pid());
    tree_.erase(it->second);
    nodes_.erase(it);
}

bool
CfsRunQueue::contains(const Task *task) const
{
    return nodes_.count(task) != 0;
}

Task *
CfsRunQueue::first() const
{
    auto *node = tree_.leftmost();
    return node ? node->value : nullptr;
}

void
CfsRunQueue::forEachInOrder(
    const std::function<bool(Task *)> &visit) const
{
    for (auto *node = tree_.leftmost(); node != nullptr;
         node = tree_.next(node)) {
        if (!visit(node->value))
            return;
    }
}

std::optional<Tick>
CfsRunQueue::minVruntime() const
{
    auto *node = tree_.leftmost();
    if (!node)
        return std::nullopt;
    return node->key.vruntime;
}

} // namespace refsched::os
