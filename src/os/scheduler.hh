/**
 * @file
 * The OS process scheduler: CFS baseline plus the paper's
 * refresh-aware pick_next_task (Algorithm 3).
 *
 * All CPUs share one quantum boundary (the baseline round-robin of
 * Table 1 behaves this way, and the co-design depends on quantum
 * boundaries coinciding with the hardware's per-bank refresh slots).
 * At each boundary the running tasks are charged one quantum of
 * vruntime and re-enqueued; then each CPU picks its next task:
 *
 *  - baseline: the leftmost (minimum-vruntime) task;
 *  - refresh-aware: the leftmost task with NO data in the bank(s)
 *    scheduled for refresh during the upcoming quantum, giving up
 *    after eta_thresh candidates (Algorithm 3's fairness valve);
 *  - best-effort (section 5.4.1): when no task is fully clean,
 *    the walked candidate with the smallest fraction of its pages
 *    in the refreshing bank(s).
 *
 * Tasks are statically assigned to CPUs (the paper consolidates a
 * fixed set of tasks per core); a least-loaded choice is made when
 * no CPU is given.
 */

#ifndef REFSCHED_OS_SCHEDULER_HH
#define REFSCHED_OS_SCHEDULER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "os/cfs_runqueue.hh"
#include "os/task.hh"
#include "simcore/event_queue.hh"
#include "simcore/probe.hh"
#include "simcore/stats.hh"
#include "simcore/types.hh"

namespace refsched::os
{

/** What the scheduler needs from a CPU core. */
class CpuContext
{
  public:
    virtual ~CpuContext() = default;

    /**
     * Context-switch to @p task (nullptr idles the core) and run it
     * until @p runUntil.
     */
    virtual void setTask(Task *task, Tick runUntil) = 0;
};

struct SchedulerParams
{
    Tick quantum = milliseconds(4.0);
    bool refreshAware = false;
    /** Algorithm 3's fairness threshold: max in-order candidates
     *  examined before falling back.  1 disables deviation. */
    int etaThresh = 3;
    /** Enable the section 5.4.1 best-effort fallback. */
    bool bestEffort = true;
};

class Scheduler
{
  public:
    Scheduler(EventQueue &eq, const SchedulerParams &params);

    /** Attach the CPUs (index = cpu id). */
    void attachCpus(std::vector<CpuContext *> cpus);

    /**
     * Provide the hardware refresh schedule exposure: given a tick,
     * return the global banks under refresh during the quantum that
     * starts then (one per channel), or an empty vector when the
     * refresh policy has no analytic schedule.
     */
    void setRefreshQuery(std::function<std::vector<int>(Tick)> query);

    /** Add a runnable task; @p cpu = -1 picks the least loaded. */
    void addTask(Task *task, int cpu = -1);

    /** Move @p task to the Sleeping state (dequeue). */
    void sleepTask(Task *task);

    /** Wake a sleeping task back onto its CPU's queue. */
    void wakeTask(Task *task);

    /**
     * Remove @p task from the scheduler for good (process exit).
     * The task must not be Running on a CPU -- a caller tearing down
     * a running task sleeps it first and completes the removal at the
     * next quantum boundary.  Dequeues if queued, marks the task
     * Finished and forgets it.
     */
    void removeTask(Task *task);

    /** Begin scheduling: the first pick happens immediately. */
    void start();

    // --- Introspection ---
    Task *currentOn(int cpu) const
    {
        return current_[static_cast<std::size_t>(cpu)];
    }
    const CfsRunQueue &runQueue(int cpu) const
    {
        return queues_[static_cast<std::size_t>(cpu)];
    }
    int cpuOf(const Task *task) const;
    const SchedulerParams &params() const { return params_; }

    /** max - min vruntime across all tasks (fairness measure). */
    Tick vruntimeSpread() const;

    /**
     * Algorithm 3.  Exposed for unit testing; normal operation calls
     * it from the quantum-expiry handler.
     * @param refreshBanks global banks refreshing next quantum.
     */
    Task *pickNextTask(int cpu, const std::vector<int> &refreshBanks);

    void registerStats(StatRegistry &reg, const std::string &prefix);

    /** Attach an instrumentation probe; runqueue churn and every
     *  pick decision are reported through it.  Null detaches. */
    void setProbe(validate::Probe *probe) { probe_ = probe; }

    // --- Statistics ---
    Scalar quantaScheduled;
    Scalar cleanPicks;      ///< eligible task found (Algorithm 3 hit)
    Scalar deferredPicks;   ///< eligible but not the leftmost task
    Scalar fallbackPicks;   ///< eta exhausted -> leftmost
    Scalar bestEffortPicks; ///< eta exhausted -> min-resident task
    Scalar idleQuanta;      ///< a CPU had no runnable task

  private:
    void onQuantumExpiry();

    void emitRq(void (validate::Probe::*hook)(const validate::RqEvent &),
                int cpu, const Task *task);

    /** True iff @p t's resident-bank bitmap is disjoint from the
     *  refreshing-bank word mask. */
    static bool cleanOf(const Task &t,
                        const std::vector<std::uint64_t> &mask);

    /** Sum of @p t's resident fractions over @p banks. */
    static double residentIn(const Task &t,
                             const std::vector<int> &banks);

    EventQueue &eq_;
    SchedulerParams params_;
    std::vector<CpuContext *> cpus_;
    std::vector<CfsRunQueue> queues_;
    std::vector<Task *> current_;
    std::vector<Task *> allTasks_;

    /** Scratch refreshing-bank word mask, rebuilt per pick (sized
     *  to the widest attached task's resident-bank bitmap). */
    std::vector<std::uint64_t> refreshMask_;
    std::size_t maskWords_ = 0;
    std::function<std::vector<int>(Tick)> refreshQuery_;
    bool started_ = false;
    validate::Probe *probe_ = nullptr;
};

} // namespace refsched::os

#endif // REFSCHED_OS_SCHEDULER_HH
