#include "os/task.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace refsched::os
{

Task::Task(Pid pid, std::string name, int numGlobalBanks)
    : possibleBanksVector(static_cast<std::size_t>(numGlobalBanks),
                          true),
      residentPagesPerBank(static_cast<std::size_t>(numGlobalBanks), 0),
      residentBanksMask(
          (static_cast<std::size_t>(numGlobalBanks) + 63) / 64, 0),
      pid_(pid),
      name_(std::move(name))
{
    REFSCHED_ASSERT(numGlobalBanks > 0, "task needs at least one bank");
}

void
Task::allowAllBanks()
{
    std::fill(possibleBanksVector.begin(), possibleBanksVector.end(),
              true);
}

int
Task::allowedBankCount() const
{
    return static_cast<int>(std::count(possibleBanksVector.begin(),
                                       possibleBanksVector.end(), true));
}

double
Task::residentFractionIn(int globalBank) const
{
    const std::uint64_t total = residentPages();
    if (total == 0)
        return 0.0;
    return static_cast<double>(
               residentPagesPerBank[static_cast<std::size_t>(globalBank)])
        / static_cast<double>(total);
}

double
Task::ipc(Tick cpuPeriod) const
{
    if (scheduledTicks == 0)
        return 0.0;
    const double cycles = static_cast<double>(scheduledTicks)
        / static_cast<double>(cpuPeriod);
    return static_cast<double>(instrsRetired) / cycles;
}

void
Task::resetAccounting()
{
    instrsRetired = 0;
    memOps = 0;
    scheduledTicks = 0;
    quantaRun = 0;
    pageFaults = 0;
    fallbackAllocs = 0;
    dramReads = 0;
}

} // namespace refsched::os
