/**
 * @file
 * Two-level cache hierarchy: per-core L1D caches in front of a
 * shared, physically-indexed L2 (Table 1: 32 KB 4-way L1, 2 cycles;
 * 2 MB 16-way shared L2, 20 cycles).
 *
 * An access either hits in some level (returning the accumulated hit
 * latency) or misses to DRAM.  Dirty victims percolate down: an L1
 * victim is written into L2; an L2 victim becomes a DRAM write-back.
 * Tasks share the physical hierarchy, so consolidated workloads
 * naturally thrash each other's lines across context switches.
 */

#ifndef REFSCHED_CACHE_CACHE_HIERARCHY_HH
#define REFSCHED_CACHE_CACHE_HIERARCHY_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "simcore/stats.hh"
#include "simcore/types.hh"

namespace refsched::cache
{

struct HierarchyParams
{
    CacheParams l1{32 * kKiB, 4, 64, 2};
    CacheParams l2{2 * kMiB, 16, 64, 20};
};

/** Outcome of one load/store walking the hierarchy. */
struct HierarchyResult
{
    /** Accumulated lookup latency in CPU cycles (excludes DRAM). */
    Cycles latency = 0;

    /** The access missed everywhere: a DRAM read is required to
     *  complete a load (stores allocate without fetching). */
    bool dramMiss = false;

    /** Dirty L2 victims that must be written to DRAM (0..2). */
    int writebackCount = 0;
    Addr writebacks[2] = {0, 0};
};

/**
 * Outcome of the lane-side L1 fast path (core-lane mode).  A hit is
 * complete; a miss hands its dirty-victim information to the parked
 * L2 lookup so the boundary drain can replay the exact legacy
 * victim-percolation order.
 */
struct L1AccessResult
{
    bool hit = false;
    /** L1 hit latency in CPU cycles (charged inline on a hit). */
    Cycles latency = 0;
    bool victimValid = false;
    bool victimDirty = false;
    Addr victimAddr = 0;
};

/**
 * One shared-L2 lookup parked by a core inside a window, applied
 * serially at the next boundary in (tick, coreId) order.
 */
struct L2Lookup
{
    Addr paddr = 0;
    Pid pid = -1;
    bool isWrite = false;
    /** The L1 victim displaced by this access, if dirty+valid. */
    bool victimValid = false;
    bool victimDirty = false;
    Addr victimAddr = 0;
};

class CacheHierarchy
{
  public:
    CacheHierarchy(int numCores, const HierarchyParams &params);

    /**
     * Perform a load/store by core @p coreId for task @p pid at
     * physical address @p paddr.
     */
    HierarchyResult access(int coreId, Pid pid, Addr paddr,
                           bool isWrite);

    // --- Core-lane mode: synchronous L1 / asynchronous L2 split ---
    //
    // Under core-cluster lanes each core owns its L1 exclusively, so
    // the L1 lookup stays a synchronous call on the core's lane
    // (l1Access).  The shared L2 is main-lane state: an L1 miss
    // parks an L2Lookup in the core and the cluster fabric applies
    // it at the single-threaded window boundary (applyL2), replaying
    // the same victim-percolation sequence access() performs inline.
    // Per-core counters keep the lane side write-local; the fabric
    // folds them into the registered Scalars each boundary.

    /** Size the per-core lane counters; required before l1Access. */
    void enableLaneMode();

    /** Lane-side L1 lookup by core @p coreId (exclusive owner). */
    L1AccessResult l1Access(int coreId, Addr paddr, bool isWrite);

    /**
     * Boundary-side shared-L2 half of a parked miss.  The returned
     * latency spans the full hierarchy walk (L1 + L2 hit latency),
     * exactly as access() reports it.
     */
    HierarchyResult applyL2(const L2Lookup &lookup);

    /** Fold per-core lane counters into the Scalars (coreId order). */
    void flushLaneStats();

    /** Demand L2 misses for @p pid (numerator of MPKI). */
    std::uint64_t l2MissesOf(Pid pid) const;

    /** Clear all cached state (tags + per-task counters). */
    void reset();

    /** Drop per-task miss counters only (end of warm-up). */
    void resetStats();

    Cache &l1(int coreId)
    {
        return l1s_[static_cast<std::size_t>(coreId)];
    }
    Cache &l2() { return l2_; }

    void registerStats(StatRegistry &reg, const std::string &prefix);

  private:
    /** Lane-local counters, one cache line per core. */
    struct alignas(64) LaneCounters
    {
        std::uint64_t accesses = 0;
        std::uint64_t l1Misses = 0;
    };

    HierarchyParams params_;
    std::vector<Cache> l1s_;
    Cache l2_;
    std::map<Pid, std::uint64_t> l2MissesPerPid_;
    std::vector<LaneCounters> laneCounters_;

    Scalar totalAccesses_;
    Scalar l1Misses_;
    Scalar l2Misses_;
    Scalar dramWritebacks_;
};

} // namespace refsched::cache

#endif // REFSCHED_CACHE_CACHE_HIERARCHY_HH
