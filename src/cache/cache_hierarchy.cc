#include "cache/cache_hierarchy.hh"

#include "simcore/logging.hh"

namespace refsched::cache
{

CacheHierarchy::CacheHierarchy(int numCores,
                               const HierarchyParams &params)
    : params_(params), l2_(params.l2)
{
    if (numCores < 1)
        fatal("need at least one core");
    if (params_.l1.lineBytes != params_.l2.lineBytes)
        fatal("L1/L2 line sizes must match");
    l1s_.reserve(static_cast<std::size_t>(numCores));
    for (int i = 0; i < numCores; ++i)
        l1s_.emplace_back(params_.l1);
}

HierarchyResult
CacheHierarchy::access(int coreId, Pid pid, Addr paddr, bool isWrite)
{
    HierarchyResult res;
    ++totalAccesses_;

    Cache &l1 = l1s_[static_cast<std::size_t>(coreId)];
    res.latency += l1.params().hitLatency;

    const auto l1Out = l1.access(paddr, isWrite);
    if (l1Out.hit)
        return res;

    ++l1Misses_;
    res.latency += l2_.params().hitLatency;

    // A dirty L1 victim is written down into L2.  If L2 must evict a
    // dirty line to take it, that victim goes to DRAM.
    if (l1Out.victimValid && l1Out.victimDirty) {
        const auto wbOut = l2_.insert(l1Out.victimAddr, true);
        if (wbOut.victimValid && wbOut.victimDirty) {
            REFSCHED_ASSERT(res.writebackCount < 2, "writeback overflow");
            res.writebacks[res.writebackCount++] = wbOut.victimAddr;
            ++dramWritebacks_;
        }
    }

    // The L1 fill itself starts clean: dirtiness lives in L1 until
    // that line is evicted (isWrite already marked the L1 line).
    const auto l2Out = l2_.access(paddr, false);
    if (l2Out.hit)
        return res;

    ++l2Misses_;
    ++l2MissesPerPid_[pid];
    if (l2Out.victimValid && l2Out.victimDirty) {
        REFSCHED_ASSERT(res.writebackCount < 2, "writeback overflow");
        res.writebacks[res.writebackCount++] = l2Out.victimAddr;
        ++dramWritebacks_;
    }

    // Loads must fetch the line from DRAM; stores write-validate the
    // freshly allocated line without a fetch.
    res.dramMiss = !isWrite;
    return res;
}

void
CacheHierarchy::enableLaneMode()
{
    laneCounters_.assign(l1s_.size(), LaneCounters{});
}

L1AccessResult
CacheHierarchy::l1Access(int coreId, Addr paddr, bool isWrite)
{
    L1AccessResult res;
    auto &lc = laneCounters_[static_cast<std::size_t>(coreId)];
    ++lc.accesses;

    Cache &l1 = l1s_[static_cast<std::size_t>(coreId)];
    res.latency = l1.params().hitLatency;

    const auto l1Out = l1.access(paddr, isWrite);
    if (l1Out.hit) {
        res.hit = true;
        return res;
    }
    ++lc.l1Misses;
    res.victimValid = l1Out.victimValid;
    res.victimDirty = l1Out.victimDirty;
    res.victimAddr = l1Out.victimAddr;
    return res;
}

HierarchyResult
CacheHierarchy::applyL2(const L2Lookup &lookup)
{
    // Mirrors access() from the L1 miss onward: the latency spans
    // the whole walk and the victim percolation order is identical.
    HierarchyResult res;
    res.latency = params_.l1.hitLatency + params_.l2.hitLatency;

    if (lookup.victimValid && lookup.victimDirty) {
        const auto wbOut = l2_.insert(lookup.victimAddr, true);
        if (wbOut.victimValid && wbOut.victimDirty) {
            REFSCHED_ASSERT(res.writebackCount < 2,
                            "writeback overflow");
            res.writebacks[res.writebackCount++] = wbOut.victimAddr;
            ++dramWritebacks_;
        }
    }

    const auto l2Out = l2_.access(lookup.paddr, false);
    if (l2Out.hit)
        return res;

    ++l2Misses_;
    ++l2MissesPerPid_[lookup.pid];
    if (l2Out.victimValid && l2Out.victimDirty) {
        REFSCHED_ASSERT(res.writebackCount < 2, "writeback overflow");
        res.writebacks[res.writebackCount++] = l2Out.victimAddr;
        ++dramWritebacks_;
    }

    res.dramMiss = !lookup.isWrite;
    return res;
}

void
CacheHierarchy::flushLaneStats()
{
    for (auto &lc : laneCounters_) {
        totalAccesses_ += static_cast<double>(lc.accesses);
        l1Misses_ += static_cast<double>(lc.l1Misses);
        lc = LaneCounters{};
    }
}

std::uint64_t
CacheHierarchy::l2MissesOf(Pid pid) const
{
    auto it = l2MissesPerPid_.find(pid);
    return it == l2MissesPerPid_.end() ? 0 : it->second;
}

void
CacheHierarchy::reset()
{
    for (auto &l1 : l1s_) {
        l1.reset();
        l1.resetStats();
    }
    l2_.reset();
    l2_.resetStats();
    l2MissesPerPid_.clear();
    for (auto &lc : laneCounters_)
        lc = LaneCounters{};
}

void
CacheHierarchy::resetStats()
{
    for (auto &l1 : l1s_)
        l1.resetStats();
    l2_.resetStats();
    l2MissesPerPid_.clear();
    totalAccesses_.reset();
    l1Misses_.reset();
    l2Misses_.reset();
    dramWritebacks_.reset();
    for (auto &lc : laneCounters_)
        lc = LaneCounters{};
}

void
CacheHierarchy::registerStats(StatRegistry &reg,
                              const std::string &prefix)
{
    reg.add(prefix + ".accesses", &totalAccesses_);
    reg.add(prefix + ".l1Misses", &l1Misses_);
    reg.add(prefix + ".l2Misses", &l2Misses_);
    reg.add(prefix + ".dramWritebacks", &dramWritebacks_);
}

} // namespace refsched::cache
