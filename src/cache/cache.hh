/**
 * @file
 * Set-associative write-back cache with true-LRU replacement.
 *
 * The cache is a tag store only: it tracks presence and dirtiness of
 * physical lines, reporting hits, misses and evicted victims.  Data
 * values are never simulated.  Misses allocate immediately
 * (write-validate for stores); the caller charges latency and issues
 * DRAM traffic.
 */

#ifndef REFSCHED_CACHE_CACHE_HH
#define REFSCHED_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/stats.hh"
#include "simcore/types.hh"

namespace refsched::cache
{

struct CacheParams
{
    std::uint64_t sizeBytes = 32 * kKiB;
    int associativity = 4;
    std::uint64_t lineBytes = 64;
    Cycles hitLatency = 2;  ///< in CPU cycles

    std::uint64_t
    numSets() const
    {
        return sizeBytes
            / (static_cast<std::uint64_t>(associativity) * lineBytes);
    }
};

/** Outcome of a single cache access. */
struct CacheAccessOutcome
{
    bool hit = false;
    /** A valid line was evicted to make room. */
    bool victimValid = false;
    /** The evicted line was dirty (needs write-back). */
    bool victimDirty = false;
    /** Line-aligned address of the evicted line. */
    Addr victimAddr = 0;
};

class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Look up @p paddr; on miss, allocate the line (evicting LRU).
     * @p isWrite marks the line dirty.
     */
    CacheAccessOutcome access(Addr paddr, bool isWrite);

    /** Probe without allocating or updating LRU. */
    bool contains(Addr paddr) const;

    /**
     * Insert a line without a demand access (e.g., a write-back
     * arriving from an upper level).  Returns the victim outcome.
     */
    CacheAccessOutcome insert(Addr paddr, bool dirty);

    /** Drop a line if present; returns true if it was dirty. */
    bool invalidate(Addr paddr);

    /** Drop everything (e.g., between experiments). */
    void reset();

    const CacheParams &params() const { return params_; }

    // --- Statistics ---
    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t writebacks() const { return writebacks_; }
    double
    missRate() const
    {
        return accesses_ ? static_cast<double>(misses_)
                / static_cast<double>(accesses_)
                         : 0.0;
    }
    void
    resetStats()
    {
        accesses_ = misses_ = writebacks_ = 0;
    }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t setIndex(Addr paddr) const;
    Addr tagOf(Addr paddr) const;
    Addr lineAddr(Addr tag, std::uint64_t set) const;

    /** Find the line holding @p paddr, or nullptr. */
    Line *find(Addr paddr);
    const Line *find(Addr paddr) const;

    CacheParams params_;
    std::uint64_t numSets_;
    unsigned lineShift_;
    unsigned setBits_;
    std::vector<Line> lines_;  ///< numSets * assoc, set-major
    std::uint64_t useCounter_ = 0;

    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
};

} // namespace refsched::cache

#endif // REFSCHED_CACHE_CACHE_HH
