#include "cache/cache.hh"

#include "simcore/logging.hh"

namespace refsched::cache
{

Cache::Cache(const CacheParams &params) : params_(params)
{
    if (!isPowerOfTwo(params_.lineBytes))
        fatal("cache line size must be a power of two");
    if (params_.associativity < 1)
        fatal("cache associativity must be >= 1");
    numSets_ = params_.numSets();
    if (numSets_ == 0 || !isPowerOfTwo(numSets_))
        fatal("cache set count must be a non-zero power of two; size=",
              params_.sizeBytes, " assoc=", params_.associativity,
              " line=", params_.lineBytes);
    lineShift_ = log2Exact(params_.lineBytes);
    setBits_ = log2Exact(numSets_);
    lines_.assign(numSets_ * static_cast<std::uint64_t>(
                                 params_.associativity),
                  Line{});
}

std::uint64_t
Cache::setIndex(Addr paddr) const
{
    return (paddr >> lineShift_) & (numSets_ - 1);
}

Addr
Cache::tagOf(Addr paddr) const
{
    return paddr >> (lineShift_ + setBits_);
}

Addr
Cache::lineAddr(Addr tag, std::uint64_t set) const
{
    return ((tag << setBits_) | set) << lineShift_;
}

Cache::Line *
Cache::find(Addr paddr)
{
    const std::uint64_t set = setIndex(paddr);
    const Addr tag = tagOf(paddr);
    Line *base =
        &lines_[set * static_cast<std::uint64_t>(params_.associativity)];
    for (int w = 0; w < params_.associativity; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::find(Addr paddr) const
{
    return const_cast<Cache *>(this)->find(paddr);
}

bool
Cache::contains(Addr paddr) const
{
    return find(paddr) != nullptr;
}

CacheAccessOutcome
Cache::access(Addr paddr, bool isWrite)
{
    ++accesses_;
    if (Line *line = find(paddr)) {
        line->lastUse = ++useCounter_;
        line->dirty |= isWrite;
        return CacheAccessOutcome{true, false, false, 0};
    }
    ++misses_;
    CacheAccessOutcome out = insert(paddr, isWrite);
    out.hit = false;
    return out;
}

CacheAccessOutcome
Cache::insert(Addr paddr, bool dirty)
{
    CacheAccessOutcome out;
    out.hit = false;

    if (Line *line = find(paddr)) {
        // Already present (write-back landing on a cached line).
        line->dirty |= dirty;
        line->lastUse = ++useCounter_;
        return out;
    }

    const std::uint64_t set = setIndex(paddr);
    Line *base =
        &lines_[set * static_cast<std::uint64_t>(params_.associativity)];

    Line *victim = nullptr;
    for (int w = 0; w < params_.associativity; ++w) {
        Line &l = base[w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (!victim || l.lastUse < victim->lastUse)
            victim = &l;
    }

    if (victim->valid) {
        out.victimValid = true;
        out.victimDirty = victim->dirty;
        out.victimAddr = lineAddr(victim->tag, set);
        if (victim->dirty)
            ++writebacks_;
    }

    victim->valid = true;
    victim->dirty = dirty;
    victim->tag = tagOf(paddr);
    victim->lastUse = ++useCounter_;
    return out;
}

bool
Cache::invalidate(Addr paddr)
{
    if (Line *line = find(paddr)) {
        const bool wasDirty = line->dirty;
        line->valid = false;
        line->dirty = false;
        return wasDirty;
    }
    return false;
}

void
Cache::reset()
{
    for (auto &l : lines_)
        l = Line{};
    useCounter_ = 0;
}

} // namespace refsched::cache
