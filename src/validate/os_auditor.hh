/**
 * @file
 * OS-layer auditor: buddy-allocator conservation + bank-mask
 * confinement (Algorithm 2) and the refresh-avoidance pick contract
 * of CFS pick_next_task (Algorithm 3), each checked against a simple
 * reference model rebuilt from the probe event stream.
 *
 * Reference models:
 *  - an allocated-frame bitmap: every alloc/free keeps
 *    allocated + buddy.freeFrames == totalFrames, no frame is handed
 *    out twice or freed twice, and every non-fallback allocation
 *    lands inside the task's possible_banks_vector;
 *  - per-bank allocated-frame counts: a fallback allocation (a spill
 *    outside the mask) is only legal when every permitted bank is
 *    completely full -- Algorithm 2 drains the whole buddy free list
 *    into the per-bank caches while searching, so allocPage fails iff
 *    no free frame exists in any permitted bank.  An unjustified
 *    spill means the rotation skipped a bank with free pages and
 *    silently violated the soft partition;
 *  - per-task per-bank residency counts rebuilt from allocations,
 *    cross-checking the scheduler's "clean" classification;
 *  - per-CPU sorted runqueue mirrors rebuilt from enqueue/dequeue
 *    events: each pick's walked candidates must be exactly the
 *    in-order runqueue prefix, bounded by eta_thresh, and the chosen
 *    task must follow Algorithm 3 (first clean candidate, else
 *    best-effort minimum-residency, else the leftmost).
 */

#ifndef REFSCHED_VALIDATE_OS_AUDITOR_HH
#define REFSCHED_VALIDATE_OS_AUDITOR_HH

#include <cstdint>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dram/address_mapping.hh"
#include "os/buddy_allocator.hh"
#include "validate/checker.hh"

namespace refsched::validate
{

class OsAuditor final : public Checker
{
  public:
    /**
     * @param buddy  live allocator for conservation cross-checks and
     *               the structural sweep at finalize; may be null
     *               when auditing a bare event stream.
     */
    OsAuditor(const dram::AddressMapping &mapping,
              const os::BuddyAllocator *buddy, bool refreshAware,
              int etaThresh, bool bestEffort);

    void onPageAlloc(const PageAllocEvent &ev) override;
    void onPageFree(const PageFreeEvent &ev) override;
    void onRqEnqueue(const RqEvent &ev) override;
    void onRqDequeue(const RqEvent &ev) override;
    void onSchedPick(const SchedPickEvent &ev) override;
    void finalize(Tick endTick) override;

  private:
    using RqMirror = std::set<std::pair<Tick, Pid>>;

    RqMirror &rq(int cpu);
    void checkConservation(Tick tick, const char *what);
    void checkPickDecision(const SchedPickEvent &ev);

    const dram::AddressMapping &mapping_;
    const os::BuddyAllocator *buddy_;
    bool refreshAware_;
    int etaThresh_;
    bool bestEffort_;

    std::vector<char> allocated_;
    std::uint64_t allocatedCount_ = 0;
    /** Allocated frames per global bank (spill justification). */
    std::vector<std::uint64_t> perBankAllocated_;
    /** Total frames per global bank (XOR hashing permutes banks
     *  within a row, so capacities are derived by enumeration). */
    std::vector<std::uint64_t> perBankCapacity_;
    /** Pid-carrying frees keep the per-task residency model exact
     *  (scenario churn frees with the owner's pid); an anonymous
     *  free (pid -1) loses track of one task's footprint, so the
     *  residency cross-checks stop at the first one. */
    bool anonymousFreesSeen_ = false;
    std::unordered_map<Pid, std::vector<std::uint32_t>> residency_;
    std::vector<RqMirror> rqs_;
};

} // namespace refsched::validate

#endif // REFSCHED_VALIDATE_OS_AUDITOR_HH
