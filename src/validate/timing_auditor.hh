/**
 * @file
 * JEDEC protocol/timing auditor.
 *
 * Rebuilds an independent model of every bank's protocol state from
 * the issued-command stream and flags commands that violate DDR3
 * timing constraints (tRCD/tRP/tRAS/tRC/tCCD/tWTR/tRRD/tFAW/data-bus
 * spacing), bank open/close discipline, or refresh occupancy
 * (tRFC_pb/tRFC_ab): no command may address a bank while a refresh is
 * in flight, and refreshes require a closed, idle bank.
 *
 * Deliberately unchecked: PRE -> REF spacing.  The controller's
 * refresh engine issues the REF as soon as the bank reports closed,
 * without waiting tRP -- refresh entry latency is modelled inside
 * tRFC -- so auditing tRP there would flag the simulator's documented
 * behaviour, not a bug.
 */

#ifndef REFSCHED_VALIDATE_TIMING_AUDITOR_HH
#define REFSCHED_VALIDATE_TIMING_AUDITOR_HH

#include <vector>

#include "dram/timings.hh"
#include "validate/checker.hh"

namespace refsched::validate
{

class TimingAuditor final : public Checker
{
  public:
    explicit TimingAuditor(const dram::DramDeviceConfig &dev);

    void onDramCommand(const DramCmdEvent &ev) override;

  private:
    /** Shadow protocol state of one bank. */
    struct BankModel
    {
        bool open = false;
        bool hasAct = false;
        bool hasPre = false;
        bool hasCas = false;
        bool hasWrite = false;
        Tick lastAct = 0;
        Tick lastPre = 0;
        Tick lastCas = 0;
        /** End of the last write burst (for tWTR / tWR). */
        Tick writeBurstEnd = 0;
        bool hasRead = false;
        Tick lastReadCas = 0;
        /** Bank busy with refresh until this tick. */
        Tick refreshUntil = 0;
    };

    /** Shadow state shared by all banks of one rank. */
    struct RankModel
    {
        bool hasAct = false;
        Tick lastAct = 0;              ///< tRRD
        Tick acts[4] = {};             ///< tFAW sliding window
        int actMod = 0;
        bool fawPrimed = false;
        Tick refreshUntil = 0;         ///< all-bank refresh occupancy
    };

    /** Shadow data-bus state of one channel. */
    struct ChannelModel
    {
        bool hasCas = false;
        Tick lastCas = 0;
    };

    BankModel &bank(int ch, int rank, int bank);
    RankModel &rank(int ch, int rank);

    void checkAct(const DramCmdEvent &ev);
    void checkCas(const DramCmdEvent &ev);
    void checkPre(const DramCmdEvent &ev);
    void checkRefPerBank(const DramCmdEvent &ev);
    void checkRefAllBank(const DramCmdEvent &ev);
    void checkRefPause(const DramCmdEvent &ev);

    dram::DramTimings t_;
    int ranksPerChannel_;
    int banksPerRank_;
    std::vector<BankModel> banks_;
    std::vector<RankModel> ranks_;
    std::vector<ChannelModel> channels_;
};

} // namespace refsched::validate

#endif // REFSCHED_VALIDATE_TIMING_AUDITOR_HH
