#include "validate/refresh_window_monitor.hh"

#include <algorithm>

namespace refsched::validate
{

RefreshWindowMonitor::RefreshWindowMonitor(
    const dram::DramDeviceConfig &dev, dram::RefreshPolicy policy,
    std::size_t maxPostponed, bool pausing)
    : Checker("RefreshWindowMonitor"),
      policy_(policy),
      rowsPerBank_(dev.org.rowsPerBank),
      tREFW_(dev.timings.tREFW),
      channels_(dev.org.channels),
      ranksPerChannel_(dev.org.ranksPerChannel),
      banksPerRank_(dev.org.banksPerRank),
      banks_(static_cast<std::size_t>(dev.org.channels)
             * dev.org.ranksPerChannel * dev.org.banksPerRank)
{
    // Elastic postponement may defer up to maxPostponed commands by
    // up to one interval each, and a deferred command still occupies
    // tRFC; pausing can split one more.  Anything later than that is
    // a genuine coverage hole, not sloppiness the controller is
    // entitled to.
    slack_ = (static_cast<Tick>(maxPostponed) + 2)
        * dev.timings.tREFIab + 4 * dev.timings.tRFCab;
    if (pausing)
        slack_ += dev.timings.tRFCab;

    if (policy_ == dram::RefreshPolicy::SequentialPerBank) {
        rankParallel_ =
            dev.timings.tREFIpb(dev.org.banksTotal())
            <= dev.timings.tRFCpb;
        engines_.resize(static_cast<std::size_t>(channels_)
                        * (rankParallel_ ? ranksPerChannel_ : 1));
    }
}

int
RefreshWindowMonitor::globalBank(int ch, int rank, int bank) const
{
    return (ch * ranksPerChannel_ + rank) * banksPerRank_ + bank;
}

RefreshWindowMonitor::Engine &
RefreshWindowMonitor::engineFor(int ch, int rank)
{
    const int idx = rankParallel_
        ? ch * ranksPerChannel_ + rank
        : ch;
    return engines_[static_cast<std::size_t>(idx)];
}

std::uint64_t
RefreshWindowMonitor::passes(int gb) const
{
    return banks_[static_cast<std::size_t>(gb)].passes;
}

void
RefreshWindowMonitor::onDramCommand(const DramCmdEvent &ev)
{
    if (policy_ == dram::RefreshPolicy::NoRefresh)
        return;

    switch (ev.op) {
    case DramOp::RefPerBank: {
        const int gb = globalBank(ev.channel, ev.rank, ev.bank);
        if (policy_ == dram::RefreshPolicy::SequentialPerBank)
            checkSequentialStructure(ev, gb);
        auto &w = banks_[static_cast<std::size_t>(gb)];
        w.pauseDebt -= std::min(w.pauseDebt, ev.row);
        addRows(gb, ev.row, ev.tick);
        sweepOverdue(ev.tick);
        break;
    }
    case DramOp::RefAllBank: {
        for (int bi = 0; bi < banksPerRank_; ++bi)
            addRows(globalBank(ev.channel, ev.rank, bi), ev.row,
                    ev.tick);
        sweepOverdue(ev.tick);
        break;
    }
    case DramOp::RefPause: {
        const int gb = globalBank(ev.channel, ev.rank, ev.bank);
        auto &w = banks_[static_cast<std::size_t>(gb)];
        w.rowsDone -= std::min(w.rowsDone, ev.row);
        w.pauseDebt += ev.row;
        if (policy_ == dram::RefreshPolicy::SequentialPerBank) {
            auto &e = engineFor(ev.channel, ev.rank);
            if (e.curBank == gb)
                e.rowsInRun -= std::min(e.rowsInRun, ev.row);
        }
        break;
    }
    default:
        break;
    }
}

void
RefreshWindowMonitor::addRows(int gb, std::uint64_t rows, Tick tick)
{
    auto &w = banks_[static_cast<std::size_t>(gb)];
    w.rowsDone += rows;
    while (w.rowsDone >= rowsPerBank_) {
        if (w.passAnchor + tREFW_ + slack_ < tick)
            flag(tick, "late refresh pass: ch",
                 gb / (ranksPerChannel_ * banksPerRank_), "/r",
                 (gb / banksPerRank_) % ranksPerChannel_, "/b",
                 gb % banksPerRank_, " finished ", rowsPerBank_,
                 " rows at ", tick, " for the window starting ",
                 w.passAnchor, " (tREFW=", tREFW_, ", slack=", slack_,
                 ")");
        w.rowsDone -= rowsPerBank_;
        w.passAnchor = tick;
        ++w.passes;
    }
}

void
RefreshWindowMonitor::checkSequentialStructure(const DramCmdEvent &ev,
                                               int gb)
{
    auto &e = engineFor(ev.channel, ev.rank);
    auto &w = banks_[static_cast<std::size_t>(gb)];

    if (e.curBank == -1) {
        e.curBank = gb;
        e.rowsInRun = ev.row;
        return;
    }
    if (gb == e.curBank) {
        // A completed run wraps into a fresh pass of the same bank
        // (only possible when the engine covers a single bank).
        if (e.rowsInRun >= rowsPerBank_)
            e.rowsInRun = 0;
        e.rowsInRun += ev.row;
        return;
    }
    if (w.pauseDebt > 0) {
        // Out-of-band resume of a paused refresh on a bank the
        // engine has already advanced past; does not reset the run.
        return;
    }

    // The engine advanced: the previous bank's run must have covered
    // its full row set (paused tail rows are owed by resumes).
    const auto &cur =
        banks_[static_cast<std::size_t>(e.curBank)];
    if (e.rowsInRun + cur.pauseDebt < rowsPerBank_)
        flag(ev.tick, "sequential refresh advanced to ch", ev.channel,
             "/r", ev.rank, "/b", ev.bank, " at ", ev.tick,
             " with the previous bank (global ", e.curBank,
             ") only ", e.rowsInRun, " of ", rowsPerBank_,
             " rows into its slot");
    e.curBank = gb;
    e.rowsInRun = ev.row;
}

void
RefreshWindowMonitor::sweepOverdue(Tick tick)
{
    for (std::size_t gb = 0; gb < banks_.size(); ++gb) {
        auto &w = banks_[gb];
        if (tick <= w.passAnchor + tREFW_ + slack_)
            continue;
        const int igb = static_cast<int>(gb);
        flag(tick, "refresh window expired: ch",
             igb / (ranksPerChannel_ * banksPerRank_), "/r",
             (igb / banksPerRank_) % ranksPerChannel_, "/b",
             igb % banksPerRank_, " covered only ", w.rowsDone,
             " of ", rowsPerBank_, " rows in the window starting ",
             w.passAnchor, " (now ", tick, ", tREFW=", tREFW_,
             ", slack=", slack_, "); rows ", w.rowsDone, "..",
             rowsPerBank_ - 1, " are stale");
        // Re-anchor so one hole is reported once, not per event.
        w.passAnchor = tick;
    }
}

void
RefreshWindowMonitor::finalize(Tick endTick)
{
    if (policy_ == dram::RefreshPolicy::NoRefresh)
        return;
    sweepOverdue(endTick);
}

} // namespace refsched::validate
