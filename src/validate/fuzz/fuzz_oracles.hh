/**
 * @file
 * Differential oracles of the cross-policy fuzzer.
 *
 * Each oracle states a property that must hold for EVERY sampled
 * configuration, not just the curated test points:
 *
 *  - cadence: every refresh policy delivers exactly rowsPerBank row
 *    refreshes to every bank inside every wall-clock tREFW window
 *    (bucketed by command due-time, the form that catches cumulative
 *    cadence drift), schedules monotonically, and -- for the
 *    co-design policy -- pops only banks it had announced via
 *    banksUnderRefreshAt (the Algorithm 1 + 3 contract).
 *  - checkers: a full System run of every policy bundle with all
 *    invariant probes armed (JEDEC timing auditor, refresh-window
 *    monitor, OS auditor) reports zero violations.
 *  - dominance: the ideal NoRefresh machine is at least as fast
 *    (harmonic-mean IPC) as every refreshing policy that shares its
 *    bank-oblivious allocation; CoDesign is excluded because soft
 *    partitioning changes data placement, not just refresh.
 *  - stall-free: with the paper's partitioning rule and an eta
 *    threshold that can reach every runqueue slot, the co-design
 *    scheduler never issues a fallback or best-effort pick.
 *  - jobs: the whole policy sweep, re-run with a single worker,
 *    produces byte-identical golden traces per cell.
 *  - shards / lanes: for samples running a partitioned kernel, the
 *    sweep re-run at a different nonzero shard (worker) count or
 *    core-lane (cluster) count produces byte-identical traces per
 *    cell -- partitioning is an identity knob within its mode.
 */

#ifndef REFSCHED_VALIDATE_FUZZ_FUZZ_ORACLES_HH
#define REFSCHED_VALIDATE_FUZZ_FUZZ_ORACLES_HH

#include <string>
#include <vector>

#include "validate/fuzz/fuzz_sample.hh"

namespace refsched::validate::fuzz
{

/** One violated oracle, with enough detail to debug from the log. */
struct OracleFailure
{
    std::string oracle;  ///< "cadence", "checkers", "dominance", ...
    std::string detail;
};

using FailureList = std::vector<OracleFailure>;

/** Run the policy-level cadence oracle over @p s (Cadence kind). */
FailureList checkCadence(const FuzzSample &s);

/**
 * Run the full-system differential oracles over @p s (System kind):
 * every applicable policy is simulated through a ParallelRunner with
 * @p jobs workers, then once more inline, and the checker /
 * dominance / stall-free / jobs-identity oracles are evaluated.
 */
FailureList checkSystem(const FuzzSample &s, int jobs);

/** Dispatch on s.kind. */
FailureList checkSample(const FuzzSample &s, int jobs);

} // namespace refsched::validate::fuzz

#endif // REFSCHED_VALIDATE_FUZZ_FUZZ_ORACLES_HH
