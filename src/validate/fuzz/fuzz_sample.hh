/**
 * @file
 * Randomized input domain of the cross-policy differential fuzzer.
 *
 * A FuzzSample is one fully-specified fuzz input: a DRAM/system
 * topology, refresh-timing parameters, policy knobs, and a seeded
 * synthetic workload.  Samples come in two kinds:
 *
 *  - Cadence: exercises the RefreshScheduler policies in isolation
 *    (no System), so it may use organizations the full machine
 *    rejects -- notably non-power-of-two rank counts, where the
 *    truncated tREFI staggers historically drifted.
 *  - System: a complete multi-policy machine comparison; every
 *    applicable Policy bundle is simulated on the same topology and
 *    workload with all invariant checkers armed.
 *
 * Samples serialize to a line-oriented `key=value` text form that is
 * checked into tests/fuzz/corpus/ as regression repros; parse() is
 * the exact inverse, so a printed failure is always replayable with
 * `fuzz_policies --replay <file>`.
 */

#ifndef REFSCHED_VALIDATE_FUZZ_FUZZ_SAMPLE_HH
#define REFSCHED_VALIDATE_FUZZ_FUZZ_SAMPLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/system_config.hh"
#include "dram/timings.hh"
#include "simcore/rng.hh"
#include "workload/scenario.hh"

namespace refsched::validate::fuzz
{

enum class SampleKind
{
    Cadence,
    System,
};

std::string toString(SampleKind k);

struct FuzzSample
{
    SampleKind kind = SampleKind::Cadence;

    /** Seeds the workload trace streams (System kind). */
    std::uint64_t seed = 1;

    // --- Topology ---
    int channels = 1;
    int ranksPerChannel = 2;  ///< Cadence kind permits non-pow2
    int banksPerRank = 8;

    // --- Refresh timing ---
    int densityGb = 32;
    double tREFWms = 64.0;
    unsigned timeScale = 1024;
    bool xorBankHash = false;

    // --- Cadence kind only ---
    int windows = 4;  ///< tREFW windows the oracle buckets over

    // --- System kind only ---
    int cores = 2;
    int tasksPerCore = 4;
    int etaThresh = 64;
    bool bestEffort = true;
    int banksPerTaskPerRank = -1;  ///< -1 = paper rule
    int warmupQuanta = 1;
    int measureQuanta = 2;

    /**
     * Event-kernel partitioning (System kind).  shards > 0 runs the
     * channel-sharded kernel, coreLanes > 0 the core-cluster lanes;
     * both are bit-identity knobs within their mode, so the lanes/
     * shards oracle re-runs the grid at a different partitioning and
     * demands byte-equal traces.  Absent keys parse as 0 (legacy
     * kernel), keeping old corpus entries valid.
     */
    int shards = 0;
    int coreLanes = 0;
    /** One benchmark name per task (cores * tasksPerCore). */
    std::vector<std::string> benchmarks;

    /**
     * Dynamic-workload scenario (System kind): churn, phase changes
     * and migration run identically in every policy cell, with the
     * ScenarioAuditor armed.  Serialized as scenario_-prefixed
     * ScenarioScript lines; absent keys mean a static run, so old
     * corpus entries parse unchanged.
     */
    workload::ScenarioScript scenario;

    /**
     * Open-loop serving spec (System kind), in the exact
     * ServingConfig::parse key=value form, or empty for no serving
     * traffic.  Absent keys parse as empty, keeping old corpus
     * entries valid.
     */
    std::string serving;

    int totalTasks() const { return cores * tasksPerCore; }

    /** Line-oriented key=value form (includes a trailing newline). */
    std::string serialize() const;

    /** One-line human summary for failure reports. */
    std::string describe() const;

    /**
     * Device config for the Cadence kind.  Deliberately skips
     * DramOrganization::check() so non-power-of-two rank counts are
     * reachable; the refresh schedulers themselves must stay exact
     * on such organizations.
     */
    dram::DramDeviceConfig toDeviceConfig() const;

    /**
     * SystemConfig for one policy cell of a System sample.  The
     * caller owns validity: check()/deviceConfig() may still fatal()
     * for infeasible parameter combinations (the sampler rejection-
     * samples those away; replays surface them as oracle failures).
     */
    core::SystemConfig toConfig(core::Policy policy) const;

    /** Inverse of serialize(); fatal() on malformed input. */
    static FuzzSample parse(const std::string &text);

    /** parse() of a corpus file on disk; fatal() on I/O error. */
    static FuzzSample parseFile(const std::string &path);
};

/**
 * Draw one random sample of @p kind.  System samples are rejection-
 * sampled until the derived SystemConfig and DRAM timings validate,
 * so every returned sample is runnable by construction.
 */
FuzzSample sampleOne(Rng &rng, SampleKind kind);

} // namespace refsched::validate::fuzz

#endif // REFSCHED_VALIDATE_FUZZ_FUZZ_SAMPLE_HH
