#include "validate/fuzz/fuzz_sample.hh"

#include <fstream>
#include <sstream>

#include "simcore/logging.hh"
#include "workload/workloads.hh"

namespace refsched::validate::fuzz
{
namespace
{

dram::DensityGb
densityFromGb(int gb)
{
    switch (gb) {
      case 8:
        return dram::DensityGb::d8;
      case 16:
        return dram::DensityGb::d16;
      case 24:
        return dram::DensityGb::d24;
      case 32:
        return dram::DensityGb::d32;
      default:
        fatal("unsupported density_gb: ", gb);
    }
}

std::string
joinBenchmarks(const std::vector<std::string> &names)
{
    std::string out;
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (i)
            out += ',';
        out += names[i];
    }
    return out;
}

std::vector<std::string>
splitBenchmarks(const std::string &csv)
{
    std::vector<std::string> names;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            names.push_back(item);
    }
    return names;
}

} // namespace

std::string
toString(SampleKind k)
{
    return k == SampleKind::Cadence ? "cadence" : "system";
}

std::string
FuzzSample::serialize() const
{
    std::ostringstream os;
    os << "kind=" << toString(kind) << "\n"
       << "seed=" << seed << "\n"
       << "channels=" << channels << "\n"
       << "ranks=" << ranksPerChannel << "\n"
       << "banks_per_rank=" << banksPerRank << "\n"
       << "density_gb=" << densityGb << "\n"
       << "trefw_ms=" << tREFWms << "\n"
       << "time_scale=" << timeScale << "\n"
       << "xor_bank_hash=" << (xorBankHash ? 1 : 0) << "\n";
    if (kind == SampleKind::Cadence) {
        os << "windows=" << windows << "\n";
    } else {
        os << "cores=" << cores << "\n"
           << "tasks_per_core=" << tasksPerCore << "\n"
           << "eta_thresh=" << etaThresh << "\n"
           << "best_effort=" << (bestEffort ? 1 : 0) << "\n"
           << "banks_per_task=" << banksPerTaskPerRank << "\n"
           << "warmup_quanta=" << warmupQuanta << "\n"
           << "measure_quanta=" << measureQuanta << "\n"
           << "shards=" << shards << "\n"
           << "core_lanes=" << coreLanes << "\n"
           << "benchmarks=" << joinBenchmarks(benchmarks) << "\n";
        if (!serving.empty())
            os << "serving=" << serving << "\n";
        if (!scenario.empty()) {
            // Embed the ScenarioScript line-form, each line prefixed
            // so the sample keyspace stays flat and unambiguous.
            std::stringstream lines(scenario.serialize());
            std::string line;
            while (std::getline(lines, line))
                if (!line.empty())
                    os << "scenario_" << line << "\n";
        }
    }
    return os.str();
}

std::string
FuzzSample::describe() const
{
    std::ostringstream os;
    os << toString(kind) << " " << channels << "ch x "
       << ranksPerChannel << "r x " << banksPerRank << "b, "
       << densityGb << "Gb, tREFW " << tREFWms << "ms, ts "
       << timeScale;
    if (kind == SampleKind::System) {
        os << ", " << cores << "core 1:" << tasksPerCore << ", eta "
           << etaThresh << (bestEffort ? "" : " (no best-effort)")
           << ", bpt " << banksPerTaskPerRank
           << (xorBankHash ? ", xor-hash" : "") << ", seed " << seed
           << ", [" << joinBenchmarks(benchmarks) << "]";
        if (shards > 0)
            os << ", shards " << shards;
        if (coreLanes > 0)
            os << ", core-lanes " << coreLanes;
        if (!scenario.empty()) {
            os << ", scenario(" << scenario.events.size() << " ev"
               << (scenario.migrate ? ", migrate" : "")
               << (scenario.hasAdversarial() ? ", adversarial" : "")
               << ")";
        }
        if (!serving.empty())
            os << ", serving(" << serving << ")";
    } else {
        os << ", " << windows << " windows";
    }
    return os.str();
}

dram::DramDeviceConfig
FuzzSample::toDeviceConfig() const
{
    auto dev = dram::makeDdr3_1600(densityFromGb(densityGb),
                                   milliseconds(tREFWms), timeScale);
    dev.org.channels = channels;
    dev.org.ranksPerChannel = ranksPerChannel;
    dev.org.banksPerRank = banksPerRank;
    dev.org.xorBankHash = xorBankHash;
    return dev;
}

core::SystemConfig
FuzzSample::toConfig(core::Policy policy) const
{
    core::SystemConfig cfg;
    cfg.numCores = cores;
    cfg.tasksPerCore = tasksPerCore;
    cfg.channels = channels;
    cfg.ranksPerChannel = ranksPerChannel;
    cfg.banksPerRank = banksPerRank;
    cfg.density = densityFromGb(densityGb);
    cfg.tREFW = milliseconds(tREFWms);
    cfg.timeScale = timeScale;
    cfg.xorBankHash = xorBankHash;
    cfg.applyPolicy(policy);
    cfg.etaThresh = etaThresh;
    cfg.bestEffort = bestEffort;
    cfg.banksPerTaskPerRank = banksPerTaskPerRank;
    cfg.shards = shards;
    cfg.coreLanes = coreLanes;
    cfg.benchmarks = benchmarks;
    cfg.scenario = scenario;
    if (!serving.empty())
        cfg.serving = workload::ServingConfig::parse(serving);
    cfg.seed = seed;
    cfg.validate = true;
    return cfg;
}

FuzzSample
FuzzSample::parse(const std::string &text)
{
    FuzzSample s;
    bool sawKind = false;
    std::string scenarioText;
    std::stringstream ss(text);
    std::string line;
    while (std::getline(ss, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            fatal("malformed fuzz sample line: ", line);
        const std::string key = line.substr(0, eq);
        const std::string val = line.substr(eq + 1);
        if (key.rfind("scenario_", 0) == 0) {
            scenarioText += key.substr(9) + "=" + val + "\n";
        } else if (key == "kind") {
            if (val == "cadence")
                s.kind = SampleKind::Cadence;
            else if (val == "system")
                s.kind = SampleKind::System;
            else
                fatal("unknown sample kind: ", val);
            sawKind = true;
        } else if (key == "seed") {
            s.seed = std::stoull(val);
        } else if (key == "channels") {
            s.channels = std::stoi(val);
        } else if (key == "ranks") {
            s.ranksPerChannel = std::stoi(val);
        } else if (key == "banks_per_rank") {
            s.banksPerRank = std::stoi(val);
        } else if (key == "density_gb") {
            s.densityGb = std::stoi(val);
        } else if (key == "trefw_ms") {
            s.tREFWms = std::stod(val);
        } else if (key == "time_scale") {
            s.timeScale = static_cast<unsigned>(std::stoul(val));
        } else if (key == "xor_bank_hash") {
            s.xorBankHash = std::stoi(val) != 0;
        } else if (key == "windows") {
            s.windows = std::stoi(val);
        } else if (key == "cores") {
            s.cores = std::stoi(val);
        } else if (key == "tasks_per_core") {
            s.tasksPerCore = std::stoi(val);
        } else if (key == "eta_thresh") {
            s.etaThresh = std::stoi(val);
        } else if (key == "best_effort") {
            s.bestEffort = std::stoi(val) != 0;
        } else if (key == "banks_per_task") {
            s.banksPerTaskPerRank = std::stoi(val);
        } else if (key == "warmup_quanta") {
            s.warmupQuanta = std::stoi(val);
        } else if (key == "measure_quanta") {
            s.measureQuanta = std::stoi(val);
        } else if (key == "shards") {
            s.shards = std::stoi(val);
        } else if (key == "core_lanes") {
            s.coreLanes = std::stoi(val);
        } else if (key == "benchmarks") {
            s.benchmarks = splitBenchmarks(val);
        } else if (key == "serving") {
            s.serving = val;
        } else {
            fatal("unknown fuzz sample key: ", key);
        }
    }
    if (!sawKind)
        fatal("fuzz sample is missing the kind= line");
    if (!scenarioText.empty())
        s.scenario = workload::ScenarioScript::parse(scenarioText);
    if (s.kind == SampleKind::System
        && static_cast<int>(s.benchmarks.size()) != s.totalTasks()) {
        fatal("fuzz sample has ", s.benchmarks.size(),
              " benchmarks for ", s.totalTasks(), " tasks");
    }
    return s;
}

FuzzSample
FuzzSample::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open fuzz sample file: ", path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str());
}

namespace
{

template <typename T, std::size_t N>
T
pick(Rng &rng, const T (&options)[N])
{
    return options[rng.below(N)];
}

FuzzSample
sampleCadence(Rng &rng)
{
    FuzzSample s;
    s.kind = SampleKind::Cadence;
    s.seed = rng.next();
    s.channels = static_cast<int>(rng.inRange(1, 2));
    // Non-power-of-two rank counts are the interesting corner: the
    // per-rank stagger tREFI/N then truncates, which is where the
    // cadence-drift bug lived.  The full System rejects them, so the
    // policy-level oracle is the only coverage.
    static constexpr int kRanks[] = {1, 2, 3, 4, 5, 6, 8};
    s.ranksPerChannel = pick(rng, kRanks);
    static constexpr int kBanks[] = {4, 8, 16};
    s.banksPerRank = pick(rng, kBanks);
    static constexpr int kDensity[] = {8, 16, 24, 32};
    s.densityGb = pick(rng, kDensity);
    s.tREFWms = rng.bernoulli(0.5) ? 64.0 : 32.0;
    static constexpr unsigned kScale[] = {64, 128, 256, 512, 1024};
    s.timeScale = pick(rng, kScale);
    s.windows = static_cast<int>(rng.inRange(2, 4));
    return s;
}

FuzzSample
sampleSystemOnce(Rng &rng)
{
    FuzzSample s;
    s.kind = SampleKind::System;
    s.seed = rng.next();
    s.channels = static_cast<int>(rng.inRange(1, 2));
    static constexpr int kRanks[] = {1, 2, 4};
    s.ranksPerChannel = pick(rng, kRanks);
    static constexpr int kBanks[] = {4, 8, 16};
    s.banksPerRank = pick(rng, kBanks);
    static constexpr int kDensity[] = {8, 16, 24, 32};
    s.densityGb = pick(rng, kDensity);
    s.tREFWms = rng.bernoulli(0.5) ? 64.0 : 32.0;
    // Large scale factors keep a full policy sweep per sample cheap
    // while preserving every behaviour-determining timing ratio.
    static constexpr unsigned kScale[] = {512, 1024};
    s.timeScale = pick(rng, kScale);
    s.xorBankHash = rng.bernoulli(0.25);
    s.cores = static_cast<int>(rng.inRange(1, 2));
    s.tasksPerCore = rng.bernoulli(0.5) ? 2 : 4;
    static constexpr int kEta[] = {1, 2, 3, 64};
    s.etaThresh = pick(rng, kEta);
    s.bestEffort = rng.bernoulli(0.75);
    s.banksPerTaskPerRank = rng.bernoulli(0.5)
        ? -1
        : static_cast<int>(rng.inRange(
              1, static_cast<std::uint64_t>(s.banksPerRank)));
    s.warmupQuanta = static_cast<int>(rng.inRange(0, 2));
    // Half the samples run a partitioned kernel: channel shards,
    // core-cluster lanes, or both, including oversubscribed counts
    // (the kernel clamps).  The lanes/shards identity oracle then
    // polices the partition invariants continuously.
    if (rng.bernoulli(0.5)) {
        static constexpr int kShards[] = {0, 1, 2, 4};
        static constexpr int kLanes[] = {0, 1, 2, 4};
        s.shards = pick(rng, kShards);
        s.coreLanes = pick(rng, kLanes);
    }
    // Measure at least one full runqueue rotation so every task gets
    // scheduled and contributes a non-zero IPC to the harmonic mean
    // (a starved task would zero the dominance oracle's comparison).
    s.measureQuanta = s.tasksPerCore
        * static_cast<int>(rng.inRange(2, 4));
    s.benchmarks = workload::randomTaskList(rng, s.totalTasks());
    // Half the samples run a dynamic scenario: churn/phase/migration
    // events confined to the simulated horizon so every scripted
    // quantum actually executes.
    if (rng.bernoulli(0.5)) {
        const auto horizon = static_cast<std::uint64_t>(
            s.warmupQuanta + s.measureQuanta);
        s.scenario =
            workload::randomScenario(rng, s.totalTasks(), horizon);
    }
    // A third of the samples add open-loop serving traffic on top,
    // spanning quiet-to-overload offered loads and both arrival
    // kinds; tiny pools/queues make the drop path reachable.
    if (rng.bernoulli(0.35)) {
        static constexpr const char *kArrivals[] = {"poisson",
                                                    "mmpp"};
        static constexpr const char *kLoads[] = {"0.1", "0.4", "1.6",
                                                 "6.4"};
        static constexpr int kPools[] = {1, 2, 8};
        static constexpr int kQueues[] = {0, 2, 16};
        static constexpr int kLines[] = {1, 4, 8};
        s.serving = std::string("arrival=") + pick(rng, kArrivals)
            + ",load=" + pick(rng, kLoads)
            + ",pool=" + std::to_string(pick(rng, kPools))
            + ",queue=" + std::to_string(pick(rng, kQueues))
            + ",lines=" + std::to_string(pick(rng, kLines));
    }
    return s;
}

/** True when every policy cell of @p s constructs a valid config. */
bool
systemSampleFeasible(const FuzzSample &s)
{
    try {
        // CoDesign exercises the partitioning checks, AllBank the
        // common path; deviceConfig() + timings.check() covers the
        // density/tREFW/banksPerRank feasibility rules (e.g. 32 ms
        // retention with 16 banks/rank under-runs tRFC_pb).
        for (const auto p :
             {core::Policy::CoDesign, core::Policy::AllBank}) {
            const auto cfg = s.toConfig(p);
            cfg.check();
            const auto dev = cfg.deviceConfig();
            dev.timings.check(dev.org);
        }
    } catch (const FatalError &) {
        return false;
    }
    return true;
}

} // namespace

FuzzSample
sampleOne(Rng &rng, SampleKind kind)
{
    if (kind == SampleKind::Cadence)
        return sampleCadence(rng);
    for (int attempt = 0; attempt < 256; ++attempt) {
        FuzzSample s = sampleSystemOnce(rng);
        if (systemSampleFeasible(s))
            return s;
    }
    fatal("system sampler failed to find a feasible config in 256 "
          "attempts; the parameter domain is broken");
}

} // namespace refsched::validate::fuzz
