#include "validate/fuzz/fuzz_runner.hh"

#include <chrono>
#include <fstream>
#include <ostream>
#include <sstream>

#include "simcore/logging.hh"

namespace refsched::validate::fuzz
{
namespace
{

std::string
formatFailures(const FailureList &failures)
{
    std::ostringstream os;
    for (const auto &f : failures)
        os << "  [" << f.oracle << "] " << f.detail << "\n";
    return os.str();
}

/**
 * One-field simplifications of @p s, simplest-first.  Only variants
 * that differ from @p s are emitted; the shrinker adopts the first
 * one that still fails.
 */
std::vector<FuzzSample>
shrinkCandidates(const FuzzSample &s)
{
    std::vector<FuzzSample> out;
    const auto add = [&](FuzzSample v) { out.push_back(std::move(v)); };

    if (s.channels > 1) {
        auto v = s;
        v.channels = 1;
        add(v);
    }
    for (const int r : {1, 2, 3}) {
        if (r < s.ranksPerChannel) {
            auto v = s;
            v.ranksPerChannel = r;
            add(v);
        }
    }
    for (const int b : {4, 8}) {
        if (b < s.banksPerRank) {
            auto v = s;
            v.banksPerRank = b;
            if (v.banksPerTaskPerRank > b)
                v.banksPerTaskPerRank = -1;
            add(v);
        }
    }
    if (s.densityGb != 8) {
        auto v = s;
        v.densityGb = 8;
        add(v);
    }
    if (s.tREFWms != 64.0) {
        auto v = s;
        v.tREFWms = 64.0;
        add(v);
    }
    // Coarser time scales mean fewer commands/instructions, i.e. a
    // cheaper and smaller repro.
    if (s.timeScale < 1024) {
        auto v = s;
        v.timeScale = 1024;
        add(v);
    }
    if (s.xorBankHash) {
        auto v = s;
        v.xorBankHash = false;
        add(v);
    }

    if (s.kind == SampleKind::Cadence) {
        if (s.windows > 2) {
            auto v = s;
            v.windows = s.windows - 1;
            add(v);
        }
        return out;
    }

    if (s.cores > 1) {
        auto v = s;
        v.cores = 1;
        add(v);
    }
    if (s.tasksPerCore > 2) {
        auto v = s;
        v.tasksPerCore = 2;
        v.benchmarks.resize(
            static_cast<std::size_t>(v.totalTasks()),
            s.benchmarks.front());
        add(v);
    }
    if (s.etaThresh != 64) {
        auto v = s;
        v.etaThresh = 64;
        add(v);
    }
    if (!s.bestEffort) {
        auto v = s;
        v.bestEffort = true;
        add(v);
    }
    if (s.banksPerTaskPerRank != -1) {
        auto v = s;
        v.banksPerTaskPerRank = -1;
        add(v);
    }
    if (s.warmupQuanta > 0) {
        auto v = s;
        v.warmupQuanta = 0;
        add(v);
    }
    // Kernel partitioning off is the simpler machine; a defect that
    // survives shards=0 / core_lanes=0 is not a partitioning bug.
    if (s.coreLanes != 0) {
        auto v = s;
        v.coreLanes = 0;
        add(v);
    }
    if (s.shards != 0) {
        auto v = s;
        v.shards = 0;
        add(v);
    }
    if (s.measureQuanta > 2) {
        auto v = s;
        v.measureQuanta = 2;
        add(v);
    }
    // Uniform workload: every task running the first benchmark.
    bool uniform = true;
    for (const auto &b : s.benchmarks)
        uniform = uniform && b == s.benchmarks.front();
    if (!uniform) {
        auto v = s;
        for (auto &b : v.benchmarks)
            b = s.benchmarks.front();
        add(v);
    }

    // Scenario simplifications, most drastic first: a static run is
    // the simplest repro, then peel events from the back (kills of
    // pids whose spawn was dropped are skipped with a warning, so
    // partial scripts stay runnable), then drop the side features.
    if (!s.scenario.empty()) {
        {
            auto v = s;
            v.scenario = {};
            add(v);
        }
        if (!s.scenario.events.empty()) {
            auto v = s;
            v.scenario.events.pop_back();
            add(v);
        }
        if (!s.scenario.initialPhases.empty()) {
            auto v = s;
            v.scenario.initialPhases.clear();
            add(v);
        }
        if (s.scenario.migrate) {
            auto v = s;
            v.scenario.migrate = false;
            add(v);
        }
        if (s.scenario.hasAdversarial()) {
            auto v = s;
            for (auto &ev : v.scenario.events)
                ev.adversarial = false;
            add(v);
        }
    }
    return out;
}

/** FNV-1a over the serialized sample, for stable corpus names. */
std::uint64_t
contentHash(const std::string &text)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

FuzzSample
shrinkSample(const FuzzSample &failing, int jobs, double budgetSec,
             std::ostream &log)
{
    using Clock = std::chrono::steady_clock;
    const auto deadline = Clock::now()
        + std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(budgetSec));

    // A shrink step must preserve the ORIGINAL defect: a candidate
    // that fails a different oracle (typically "config", from a
    // simplification that made the sample infeasible) is a new
    // input, not a smaller witness of the same bug.
    std::vector<std::string> wanted;
    for (const auto &f : checkSample(failing, jobs))
        wanted.push_back(f.oracle);
    const auto sameDefect = [&](const FailureList &failures) {
        for (const auto &f : failures)
            for (const auto &w : wanted)
                if (f.oracle == w)
                    return true;
        return false;
    };

    FuzzSample best = failing;
    bool progress = true;
    while (progress && Clock::now() < deadline) {
        progress = false;
        for (const auto &cand : shrinkCandidates(best)) {
            if (Clock::now() >= deadline)
                break;
            if (sameDefect(checkSample(cand, jobs))) {
                best = cand;
                progress = true;
                log << "  shrink: " << best.describe() << "\n";
                break;  // restart the scan from the new base
            }
        }
    }
    return best;
}

std::string
writeCorpusEntry(const std::string &dir, const FuzzSample &s,
                 const FailureList &failures)
{
    const std::string body = s.serialize();
    std::ostringstream name;
    name << (failures.empty() ? "sample" : failures.front().oracle)
         << "-" << toString(s.kind) << "-" << std::hex
         << (contentHash(body) & 0xffffffffULL) << ".txt";
    const std::string path = dir + "/" + name.str();

    std::ofstream out(path);
    if (!out)
        fatal("cannot write corpus entry: ", path);
    out << "# " << s.describe() << "\n";
    for (const auto &f : failures)
        out << "# violated oracle [" << f.oracle << "]: " << f.detail
            << "\n";
    out << "# repro: fuzz_policies --replay " << path << "\n";
    out << body;
    return path;
}

FailureList
replayFile(const std::string &path, int jobs, std::ostream &log)
{
    const auto s = FuzzSample::parseFile(path);
    log << "replay " << path << ": " << s.describe() << "\n";
    const auto failures = checkSample(s, jobs);
    if (failures.empty())
        log << "  ok\n";
    else
        log << formatFailures(failures);
    return failures;
}

FuzzReport
runFuzz(const FuzzOptions &opts, std::ostream &log)
{
    Rng rng(opts.seed);
    FuzzReport report;
    for (int i = 0; i < opts.samples; ++i) {
        SampleKind kind = i % 2 == 0 ? SampleKind::Cadence
                                     : SampleKind::System;
        if (opts.onlyKind == "cadence")
            kind = SampleKind::Cadence;
        else if (opts.onlyKind == "system")
            kind = SampleKind::System;

        const FuzzSample s = sampleOne(rng, kind);
        const auto failures = checkSample(s, opts.jobs);
        ++report.samplesRun;
        if ((i + 1) % 25 == 0) {
            log << "... " << (i + 1) << "/" << opts.samples
                << " samples, " << report.failedSamples
                << " failing\n";
        }
        if (failures.empty())
            continue;

        ++report.failedSamples;
        log << "FAIL sample " << i << " (seed " << opts.seed
            << "): " << s.describe() << "\n"
            << formatFailures(failures);

        FuzzSample minimized = s;
        if (opts.shrinkBudgetSec > 0.0) {
            minimized =
                shrinkSample(s, opts.jobs, opts.shrinkBudgetSec, log);
        }
        const auto minFailures = checkSample(minimized, opts.jobs);
        if (!opts.corpusDir.empty()) {
            const auto path = writeCorpusEntry(
                opts.corpusDir, minimized,
                minFailures.empty() ? failures : minFailures);
            report.corpusPaths.push_back(path);
            log << "  corpus entry: " << path << "\n"
                << "  repro: fuzz_policies --replay " << path << "\n";
        } else {
            log << "  minimized sample:\n" << minimized.serialize();
            log << "  repro: save the above as s.txt and run "
                   "fuzz_policies --replay s.txt\n";
        }
    }
    log << "fuzz: " << report.samplesRun << " samples, "
        << report.failedSamples << " failing\n";
    return report;
}

} // namespace refsched::validate::fuzz
