#include "validate/fuzz/fuzz_oracles.hh"

#include <algorithm>
#include <memory>
#include <sstream>

#include "core/parallel_runner.hh"
#include "core/system.hh"
#include "dram/refresh_scheduler.hh"
#include "simcore/logging.hh"
#include "validate/golden_trace.hh"

namespace refsched::validate::fuzz
{
namespace
{

/**
 * Relative slack of the NoRefresh dominance oracle.  Removing
 * refresh cannot slow a machine down systemically, but it perturbs
 * command interleaving (an all-bank REF precharges open rows, which
 * occasionally pre-pays a precharge a row-conflict would have
 * needed), so per-sample harmonic-mean IPC wobbles.  The row-close
 * side effect is real and worth ~1.5% for row-conflict-heavy mixes
 * at low density (8 Gb has the smallest tRFC, so refresh overhead
 * can dip below the precharge benefit); short-horizon alignment
 * noise adds a few percent more on top.  The oracle flags beyond
 * this slack and then CONFIRMS by re-running the sample at a
 * longer horizon (>= kDominanceConfirmQuanta) -- alignment noise
 * flips sign across horizons, a systematic inversion does not.
 */
constexpr double kDominanceSlack = 0.02;
constexpr int kDominanceConfirmQuanta = 32;

/** Refresh-idle view: no queued requests, idle bus. */
class IdleView final : public dram::McRefreshView
{
  public:
    int queuedToBank(int, int, int) const override { return 0; }
    double channelUtilization(int) const override { return 0.0; }
};

void
fail(FailureList &out, std::string oracle, std::string detail)
{
    out.push_back({std::move(oracle), std::move(detail)});
}

/** The scheduler-level policies the cadence oracle sweeps. */
constexpr dram::RefreshPolicy kCadencePolicies[] = {
    dram::RefreshPolicy::NoRefresh,
    dram::RefreshPolicy::AllBank,
    dram::RefreshPolicy::PerBankRoundRobin,
    dram::RefreshPolicy::SequentialPerBank,
    dram::RefreshPolicy::OooPerBank,
    dram::RefreshPolicy::Adaptive,
};

/** The full policy bundles the system oracle sweeps. */
constexpr core::Policy kSystemPolicies[] = {
    core::Policy::NoRefresh,  core::Policy::AllBank,
    core::Policy::PerBank,    core::Policy::PerBankOoo,
    core::Policy::Ddr4x2,     core::Policy::Ddr4x4,
    core::Policy::Adaptive,   core::Policy::CoDesign,
};

void
checkCadencePolicy(const FuzzSample &s, dram::RefreshPolicy policy,
                   FailureList &out)
{
    const auto dev = s.toDeviceConfig();
    auto sched = dram::makeRefreshScheduler(policy, dev);
    IdleView view;

    const auto numWindows = static_cast<std::uint64_t>(s.windows);
    const Tick window = dev.timings.tREFW;
    const Tick horizon = static_cast<Tick>(numWindows) * window;
    const int banksTotal = dev.org.banksTotal();
    const bool isCoDesign =
        policy == dram::RefreshPolicy::SequentialPerBank;

    // Generous runaway bound: the densest schedule issues one
    // command per bank per tREFI_pb, i.e. refreshCommandsPerWindow
    // commands per bank per window.
    const std::uint64_t maxPops = 4
        * numWindows * dev.timings.refreshCommandsPerWindow
        * static_cast<std::uint64_t>(banksTotal);

    for (int ch = 0; ch < dev.org.channels; ++ch) {
        std::vector<std::vector<std::uint64_t>> rows(
            numWindows,
            std::vector<std::uint64_t>(
                static_cast<std::size_t>(banksTotal), 0));
        Tick prevDue = 0;
        std::uint64_t pops = 0;
        while (sched->nextDue(ch) < horizon) {
            const Tick due = sched->nextDue(ch);
            if (due < prevDue) {
                fail(out, "cadence",
                     toString(policy) + ": nextDue went backwards ("
                         + std::to_string(due) + " after "
                         + std::to_string(prevDue) + ")");
                return;
            }
            prevDue = due;
            if (++pops > maxPops) {
                fail(out, "cadence",
                     toString(policy)
                         + ": runaway schedule, more than "
                         + std::to_string(maxPops)
                         + " commands before the horizon");
                return;
            }
            const auto cmd = sched->pop(ch, view);
            auto &bucket = rows[static_cast<std::size_t>(
                due / window)];
            if (cmd.isAllBank()) {
                for (int b = 0; b < dev.org.banksPerRank; ++b)
                    bucket[static_cast<std::size_t>(
                        cmd.rank * dev.org.banksPerRank + b)]
                        += cmd.rows;
            } else {
                const int global =
                    cmd.rank * dev.org.banksPerRank + cmd.bank;
                bucket[static_cast<std::size_t>(global)] += cmd.rows;
                // Algorithm 1 + 3 contract: the co-design scheduler
                // must only refresh banks it announced to the OS.
                // banksUnderRefreshAt speaks OS-global bank indices
                // (offset by the channel's bank base).
                if (isCoDesign && cmd.rows > 0) {
                    const int osGlobal = ch * banksTotal + global;
                    const auto announced =
                        sched->banksUnderRefreshAt(ch, due);
                    if (std::find(announced.begin(), announced.end(),
                                  osGlobal)
                        == announced.end()) {
                        fail(out, "cadence",
                             toString(policy) + ": bank "
                                 + std::to_string(global)
                                 + " refreshed at tick "
                                 + std::to_string(due)
                                 + " but banksUnderRefreshAt did "
                                   "not announce it");
                    }
                }
            }
        }

        const std::uint64_t expected =
            policy == dram::RefreshPolicy::NoRefresh
                ? 0
                : dev.org.rowsPerBank;
        for (std::uint64_t w = 0; w < numWindows; ++w) {
            for (int b = 0; b < banksTotal; ++b) {
                const auto got =
                    rows[w][static_cast<std::size_t>(b)];
                if (got != expected) {
                    fail(out, "cadence",
                         toString(policy) + ": channel "
                             + std::to_string(ch) + " bank "
                             + std::to_string(b) + " got "
                             + std::to_string(got) + " rows in "
                             + "wall-clock window "
                             + std::to_string(w) + ", expected "
                             + std::to_string(expected));
                }
            }
        }
    }
}

/**
 * Oracle: the counter-based streams behind open-loop serving are
 * pairwise independent and none of them aliases the stateful
 * Rng(seed) sequence the workload samplers and trace generators
 * consume.  Two generators silently sharing a stream would correlate
 * arrivals with workload randomness -- runs would still be
 * deterministic, so no other oracle can catch it; only a direct
 * sequence comparison does.  A 16-draw window has a ~2^-60 chance of
 * a single honest collision, so more than one matching position is
 * an alias, not luck.
 */
void
checkRngStreamSeparation(const FuzzSample &s, FailureList &out)
{
    constexpr int kProbe = 16;
    constexpr std::uint64_t kKeys[] = {
        rngstream::kArrival, rngstream::kArrivalPhase,
        rngstream::kServingTask, rngstream::kServingAddr};
    constexpr const char *kNames[] = {
        "arrival", "arrivalPhase", "servingTask", "servingAddr",
        "statefulRng(seed)", "statefulRng(task0)"};

    std::vector<std::vector<std::uint64_t>> seqs;
    for (const auto key : kKeys) {
        CounterRng rng(s.seed, key);
        std::vector<std::uint64_t> v;
        for (int i = 0; i < kProbe; ++i)
            v.push_back(rng.next());
        seqs.push_back(std::move(v));
    }
    // The stateful streams the rest of the simulator draws from:
    // the raw seed (scenario/fuzz samplers) and the first derived
    // per-task trace seed (seed*1000003 + coreIdx, coreIdx = 0).
    const std::uint64_t statefulSeeds[] = {s.seed,
                                           s.seed * 1000003ULL};
    for (const std::uint64_t seed : statefulSeeds) {
        Rng st(seed);
        std::vector<std::uint64_t> v;
        for (int i = 0; i < kProbe; ++i)
            v.push_back(st.next());
        seqs.push_back(std::move(v));
    }

    for (std::size_t a = 0; a < seqs.size(); ++a) {
        for (std::size_t b = a + 1; b < seqs.size(); ++b) {
            int matches = 0;
            for (int i = 0; i < kProbe; ++i)
                matches += seqs[a][static_cast<std::size_t>(i)]
                    == seqs[b][static_cast<std::size_t>(i)];
            if (matches > 1) {
                fail(out, "rng-streams",
                     std::string(kNames[a]) + " aliases "
                         + kNames[b] + ": " + std::to_string(matches)
                         + "/" + std::to_string(kProbe)
                         + " identical draws at seed "
                         + std::to_string(s.seed));
            }
        }
    }
}

/**
 * Run every policy cell of @p s through a ParallelRunner, recording
 * golden traces.  Throws FatalError for infeasible configs (hand-
 * written corpus entries); the caller converts that to a failure.
 */
std::vector<core::Metrics>
runPolicyGrid(const FuzzSample &s, int jobs,
              std::vector<TraceRecorder> &recs)
{
    const std::size_t n = std::size(kSystemPolicies);
    recs.assign(n, TraceRecorder{});
    std::vector<core::CellSpec> specs;
    for (std::size_t i = 0; i < n; ++i) {
        const auto cfg = s.toConfig(kSystemPolicies[i]);
        cfg.check();
        TraceRecorder *rec = &recs[i];
        const int warmup = s.warmupQuanta;
        const int measure = s.measureQuanta;
        core::CellSpec spec;
        spec.custom = [cfg, rec, warmup, measure] {
            core::System sys(cfg);
            sys.attachProbe(rec);
            return sys.run(warmup, measure);
        };
        specs.push_back(std::move(spec));
    }
    return core::ParallelRunner(jobs).runCells(specs);
}

} // namespace

FailureList
checkCadence(const FuzzSample &s)
{
    FailureList out;
    for (const auto policy : kCadencePolicies)
        checkCadencePolicy(s, policy, out);
    return out;
}

FailureList
checkSystem(const FuzzSample &s, int jobs)
{
    FailureList out;
    checkRngStreamSeparation(s, out);
    std::vector<TraceRecorder> par, seq;
    std::vector<core::Metrics> results;
    try {
        results = runPolicyGrid(s, jobs, par);
    } catch (const FatalError &e) {
        fail(out, "config",
             std::string("sample rejected by the system: ")
                 + e.what());
        return out;
    }

    // Oracle: armed invariant checkers stayed silent everywhere.
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &m = results[i];
        if (m.validationViolations != 0) {
            fail(out, "checkers",
                 core::toString(kSystemPolicies[i]) + ": "
                     + std::to_string(m.validationViolations)
                     + " violations, first: " + m.firstViolation);
        }
    }

    // Oracle: the refresh-free ideal dominates every refreshing
    // policy with the same (bank-oblivious) allocation.  Tasks with
    // zero measured IPC are excluded from the harmonic mean, so the
    // comparison is only meaningful when both runs counted every
    // task; short-interval starvation otherwise shrinks one side's
    // task set and the means are no longer comparable.
    const auto allCounted = [](const core::Metrics &m) {
        for (const auto &t : m.tasks)
            if (t.ipc <= 0.0)
                return false;
        return true;
    };
    const auto dominanceSuspects =
        [&](const std::vector<core::Metrics> &res) {
            std::vector<std::size_t> suspects;
            const auto &nr = res[0];
            for (std::size_t i = 1; i < res.size(); ++i) {
                if (kSystemPolicies[i] == core::Policy::CoDesign)
                    continue;  // soft partitioning changes placement
                if (!allCounted(nr) || !allCounted(res[i]))
                    continue;
                if (res[i].harmonicMeanIpc
                    > nr.harmonicMeanIpc * (1.0 + kDominanceSlack)) {
                    suspects.push_back(i);
                }
            }
            return suspects;
        };
    // The adversarial hotspot source consumes the refresh schedule,
    // so each policy cell sees a DIFFERENT access stream -- cross-
    // policy IPC ordering is no longer an invariant there.  Open-
    // loop serving is gated for the same reason as scenarios'
    // adversarial mode: injected reads contend with task traffic at
    // policy-dependent times (slower policies queue more injected
    // work into the same interval), so per-task IPC ordering is not
    // an invariant either.
    if (!s.scenario.hasAdversarial() && s.serving.empty()
        && !dominanceSuspects(results).empty()) {
        // Confirmation pass at a longer horizon: alignment noise
        // decays, a genuine inversion persists.
        FuzzSample longer = s;
        longer.measureQuanta =
            std::max(4 * s.measureQuanta, kDominanceConfirmQuanta);
        std::vector<TraceRecorder> ignored;
        try {
            const auto confirm = runPolicyGrid(longer, jobs, ignored);
            for (const auto i : dominanceSuspects(confirm)) {
                std::ostringstream os;
                os << core::toString(kSystemPolicies[i])
                   << " harmonic-mean IPC "
                   << confirm[i].harmonicMeanIpc
                   << " exceeds no-refresh "
                   << confirm[0].harmonicMeanIpc
                   << " (confirmed at the "
                   << longer.measureQuanta << "-quanta horizon)";
                fail(out, "dominance", os.str());
            }
        } catch (const FatalError &e) {
            fail(out, "dominance",
                 std::string("confirmation re-run rejected: ")
                     + e.what());
        }
    }

    // Oracle: with the paper's partitioning rule and an eta wide
    // enough to reach every runqueue slot, Algorithms 1 + 3
    // guarantee a clean pick every quantum (section 5.3).
    // Churn breaks the guarantee transiently: an arriving tenant
    // holds the default all-banks mask until the post-churn
    // re-binpack, and departures thin the mask cover, so the oracle
    // only applies to static runs.
    if (s.scenario.empty() && s.banksPerTaskPerRank == -1
        && s.etaThresh >= s.tasksPerCore && s.tasksPerCore >= 2) {
        const auto &cd = results[std::size(kSystemPolicies) - 1];
        if (cd.fallbackPicks != 0 || cd.bestEffortPicks != 0) {
            fail(out, "stall-free",
                 "co-design made " + std::to_string(cd.fallbackPicks)
                     + " fallback and "
                     + std::to_string(cd.bestEffortPicks)
                     + " best-effort picks under a mask cover that "
                       "guarantees a clean task");
        }
    }

    // Oracle: the sweep is deterministic in the worker count.
    try {
        runPolicyGrid(s, /*jobs=*/1, seq);
    } catch (const FatalError &e) {
        fail(out, "jobs",
             std::string("inline re-run rejected: ") + e.what());
        return out;
    }
    for (std::size_t i = 0; i < par.size(); ++i) {
        if (par[i].data() == seq[i].data())
            continue;
        const auto d = diffTraces(decodeTrace(par[i].data()),
                                  decodeTrace(seq[i].data()));
        fail(out, "jobs",
             core::toString(kSystemPolicies[i])
                 + ": jobs=N vs jobs=1 trace divergence: "
                 + d.describe());
    }

    // Oracle: kernel partitioning is a bit-identity knob.  Within
    // the sharded mode (shards >= 1) any worker count produces the
    // same trace; within lane mode (coreLanes >= 1) any cluster
    // count does.  The re-run flips the knob to a different nonzero
    // value -- crossing into 0 would change timing mode (legacy),
    // which is a contract boundary, not an identity.
    const auto identityRerun = [&](const FuzzSample &alt,
                                   const char *oracle,
                                   const std::string &what) {
        std::vector<TraceRecorder> again;
        try {
            runPolicyGrid(alt, jobs, again);
        } catch (const FatalError &e) {
            fail(out, oracle,
                 what + " re-run rejected: " + e.what());
            return;
        }
        for (std::size_t i = 0; i < par.size(); ++i) {
            if (par[i].data() == again[i].data())
                continue;
            const auto d = diffTraces(decodeTrace(par[i].data()),
                                      decodeTrace(again[i].data()));
            fail(out, oracle,
                 core::toString(kSystemPolicies[i]) + ": " + what
                     + " trace divergence: " + d.describe());
        }
    };
    if (s.shards >= 1) {
        FuzzSample alt = s;
        alt.shards = s.shards == 1 ? s.channels + 1 : 1;
        identityRerun(alt, "shards",
                      "shards=" + std::to_string(s.shards)
                          + " vs shards=" + std::to_string(alt.shards));
    }
    if (s.coreLanes >= 1) {
        FuzzSample alt = s;
        alt.coreLanes = s.coreLanes == 1 ? s.cores + 1 : 1;
        identityRerun(alt, "lanes",
                      "core-lanes=" + std::to_string(s.coreLanes)
                          + " vs core-lanes="
                          + std::to_string(alt.coreLanes));
    }
    return out;
}

FailureList
checkSample(const FuzzSample &s, int jobs)
{
    return s.kind == SampleKind::Cadence ? checkCadence(s)
                                         : checkSystem(s, jobs);
}

} // namespace refsched::validate::fuzz
