/**
 * @file
 * Driver of the differential fuzzer: sample -> oracle -> (on
 * failure) greedy shrink -> corpus entry.
 *
 * The driver is a library so the CLI (tools/fuzz_policies) and the
 * test suite share one implementation.  Everything is deterministic
 * in (--seed, --samples): the sampler consumes one Rng stream, and
 * each System cell reseeds from its own sample, so a failure report
 * can always be reproduced bit-for-bit from the printed command.
 *
 * Shrinking is greedy field-by-field: from a failing sample, try
 * one-field simplifications in a fixed priority order (fewer
 * channels/ranks/banks, coarser time scale, defaulted scheduler
 * knobs, uniform workload) and adopt any variant that still fails,
 * restarting the scan, until a fixed point or the time budget is
 * reached.  The result is written as a self-contained key=value
 * repro file plus the command line that replays it.
 */

#ifndef REFSCHED_VALIDATE_FUZZ_FUZZ_RUNNER_HH
#define REFSCHED_VALIDATE_FUZZ_FUZZ_RUNNER_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "validate/fuzz/fuzz_oracles.hh"
#include "validate/fuzz/fuzz_sample.hh"

namespace refsched::validate::fuzz
{

struct FuzzOptions
{
    int samples = 100;
    std::uint64_t seed = 1;
    /** Worker threads for each sample's policy sweep (0 = auto). */
    int jobs = 0;
    /** Seconds to spend shrinking each failing sample (0 = off). */
    double shrinkBudgetSec = 20.0;
    /** Where failing samples are written ("" = don't write). */
    std::string corpusDir;
    /** Restrict the sample stream to one kind ("" = both). */
    std::string onlyKind;
};

struct FuzzReport
{
    int samplesRun = 0;
    int failedSamples = 0;
    std::vector<std::string> corpusPaths;

    bool clean() const { return failedSamples == 0; }
};

/** Fuzz per @p opts, reporting progress and failures to @p log. */
FuzzReport runFuzz(const FuzzOptions &opts, std::ostream &log);

/**
 * Greedy structure-preserving minimization of a failing sample;
 * returns the simplest variant found that still fails some oracle.
 */
FuzzSample shrinkSample(const FuzzSample &failing, int jobs,
                        double budgetSec, std::ostream &log);

/**
 * Serialize @p s (annotated with its failures and replay command)
 * into @p dir under a content-derived file name; returns the path.
 */
std::string writeCorpusEntry(const std::string &dir,
                             const FuzzSample &s,
                             const FailureList &failures);

/** Re-check one corpus file; prints a verdict, returns failures. */
FailureList replayFile(const std::string &path, int jobs,
                       std::ostream &log);

} // namespace refsched::validate::fuzz

#endif // REFSCHED_VALIDATE_FUZZ_FUZZ_RUNNER_HH
