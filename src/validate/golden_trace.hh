/**
 * @file
 * Golden-trace differential harness: a compact binary encoding of
 * the probe event stream, a recorder, a decoder, and an event-wise
 * differ with first-divergence reporting.
 *
 * Format: an 8-byte magic ("refsched"), a LEB128 version, a LEB128
 * event count, then one record per event:
 *
 *   u8 kind | varint tick-delta | varint field[0..n)
 *
 * where n is fixed per kind (see traceFieldCount) and the tick delta
 * is relative to the previous record, so a steady-state stream costs
 * a few bytes per event.  Signed quantities that can be -1 (bank,
 * pid) are stored biased by +1.
 *
 * Two runs of the same configuration must produce byte-identical
 * traces; diffTraces pinpoints the first event where they do not.
 */

#ifndef REFSCHED_VALIDATE_GOLDEN_TRACE_HH
#define REFSCHED_VALIDATE_GOLDEN_TRACE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "simcore/probe.hh"
#include "simcore/types.hh"

namespace refsched::validate
{

/** Record kinds; values are stable on-disk format. */
enum class TraceKind : std::uint8_t {
    DramAct = 1,
    DramRead = 2,
    DramWrite = 3,
    DramPre = 4,
    DramRefPb = 5,
    DramRefAb = 6,
    DramRefPause = 7,
    SchedPick = 8,
    PageAlloc = 9,
    PageFree = 10,
    PageMigrate = 11,
    TaskLife = 12,
};

/** Payload fields per kind (beyond kind + tick). */
std::size_t traceFieldCount(TraceKind kind);

/** One decoded trace record. */
struct TraceEvent
{
    TraceKind kind = TraceKind::DramAct;
    Tick tick = 0;
    /** Payload, semantics per kind:
     *  Dram*:       ch, rank, bank+1, row/rows [, busyUntil-tick]
     *  SchedPick:   cpu, pick kind, chosen pid+1
     *  PageAlloc:   pid+1, pfn, fallback
     *  PageFree:    pfn
     *  PageMigrate: pid+1, vpn, fromPfn, toPfn
     *  TaskLife:    pid+1, spawn */
    std::array<std::uint64_t, 5> f{};

    bool operator==(const TraceEvent &o) const;
    bool operator!=(const TraceEvent &o) const { return !(*this == o); }
};

/** Human-readable one-liner for divergence reports. */
std::string describe(const TraceEvent &ev);

/**
 * A probe that records every event for an in-memory encoded trace.
 * Scheduler runqueue churn is deliberately not recorded: picks,
 * allocations, and DRAM commands already pin down the observable
 * behaviour, and rq events would triple the trace size.
 *
 * Events are buffered raw and encoded on first data() access, after
 * a stable sort by tick.  The legacy kernel already emits events in
 * tick order, so the sort is the identity there and the encoding is
 * unchanged; the sharded kernel emits each epoch window's main-lane
 * events before the channel-lane events that precede them in
 * simulated time, and the sort restores the canonical global order
 * (within a tick, arrival order -- which is phase-deterministic and
 * therefore identical for every worker count).
 */
class TraceRecorder final : public Probe
{
  public:
    void onDramCommand(const DramCmdEvent &ev) override;
    void onSchedPick(const SchedPickEvent &ev) override;
    void onPageAlloc(const PageAllocEvent &ev) override;
    void onPageFree(const PageFreeEvent &ev) override;
    void onPageMigrate(const PageMigrateEvent &ev) override;
    void onTaskSpawn(const TaskLifeEvent &ev) override;
    void onTaskExit(const TaskLifeEvent &ev) override;

    /** Encoded records only (no file header). */
    const std::vector<std::uint8_t> &data() const;
    std::uint64_t eventCount() const { return pending_.size(); }

  private:
    struct Raw
    {
        TraceKind kind;
        Tick tick;
        std::array<std::uint64_t, 5> f;
    };

    void put(TraceKind kind, Tick tick,
             std::initializer_list<std::uint64_t> fields);

    /** Raw event stream in arrival order; sorted at encode time. */
    mutable std::vector<Raw> pending_;
    mutable std::vector<std::uint8_t> buf_;
    mutable bool encoded_ = false;
};

/** Decode an encoded record stream; fatal() on malformed input. */
std::vector<TraceEvent> decodeTrace(
    const std::vector<std::uint8_t> &data);

/** Write/read a trace with header; fatal() on I/O or format error. */
void writeTraceFile(const std::string &path,
                    const TraceRecorder &recorder);
std::vector<TraceEvent> readTraceFile(const std::string &path);

/** Result of comparing two decoded traces. */
struct TraceDiff
{
    bool identical = true;
    /** Index of the first divergent event. */
    std::size_t index = 0;
    bool lhsEnded = false;
    bool rhsEnded = false;
    TraceEvent lhs{};
    TraceEvent rhs{};

    std::string describe() const;
};

TraceDiff diffTraces(const std::vector<TraceEvent> &a,
                     const std::vector<TraceEvent> &b);

} // namespace refsched::validate

#endif // REFSCHED_VALIDATE_GOLDEN_TRACE_HH
