/**
 * @file
 * Invariant-checker base classes and the fan-out hub that a System
 * wires into its components' probe pointers.
 *
 * A Checker is a Probe that records Violations instead of asserting,
 * so a full run can be audited and every breakage reported with its
 * simulated tick; the CheckerSet owns the checkers, forwards every
 * event to each of them, and additionally mirrors the stream to
 * non-owned external probes (e.g. a golden-trace recorder).
 */

#ifndef REFSCHED_VALIDATE_CHECKER_HH
#define REFSCHED_VALIDATE_CHECKER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "simcore/logging.hh"
#include "simcore/probe.hh"
#include "simcore/types.hh"

namespace refsched::validate
{

/** One detected invariant violation. */
struct Violation
{
    /** Name of the checker that flagged it. */
    std::string checker;
    /** Simulated tick of the offending event. */
    Tick tick = 0;
    std::string message;
};

/**
 * A probe that audits the event stream and accumulates violations.
 * Only the first kMaxStored violations keep their full message (a
 * broken invariant tends to fire on every subsequent event); the
 * total count is always exact.
 */
class Checker : public Probe
{
  public:
    explicit Checker(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    std::uint64_t violationCount() const { return count_; }
    const std::vector<Violation> &violations() const { return stored_; }

  protected:
    static constexpr std::size_t kMaxStored = 64;

    template <typename... Args>
    void
    flag(Tick tick, Args &&...args)
    {
        ++count_;
        if (stored_.size() < kMaxStored)
            stored_.push_back(
                {name_, tick,
                 detail::format(std::forward<Args>(args)...)});
    }

  private:
    std::string name_;
    std::uint64_t count_ = 0;
    std::vector<Violation> stored_;
};

/**
 * Owns a set of checkers and fans every probe callback out to all of
 * them, plus any attached external (non-owned) probes.  External
 * probes receive events after the checkers.
 */
class CheckerSet final : public Probe
{
  public:
    /** Takes ownership; returns the added checker for test access. */
    Checker &
    add(std::unique_ptr<Checker> checker)
    {
        checkers_.push_back(std::move(checker));
        return *checkers_.back();
    }

    /** Attach a non-owned probe (e.g. TraceRecorder); must outlive
     *  the CheckerSet's event stream. */
    void attachExternal(Probe *probe) { external_.push_back(probe); }

    const std::vector<std::unique_ptr<Checker>> &
    checkers() const
    {
        return checkers_;
    }

    std::uint64_t
    violationCount() const
    {
        std::uint64_t n = 0;
        for (const auto &c : checkers_)
            n += c->violationCount();
        return n;
    }

    /** Earliest-tick stored violation, or null when clean. */
    const Violation *
    firstViolation() const
    {
        const Violation *first = nullptr;
        for (const auto &c : checkers_)
            for (const auto &v : c->violations())
                if (!first || v.tick < first->tick)
                    first = &v;
        return first;
    }

    void
    onDramCommand(const DramCmdEvent &ev) override
    {
        dispatch([&](Probe &p) { p.onDramCommand(ev); });
    }

    void
    onSchedPick(const SchedPickEvent &ev) override
    {
        dispatch([&](Probe &p) { p.onSchedPick(ev); });
    }

    void
    onRqEnqueue(const RqEvent &ev) override
    {
        dispatch([&](Probe &p) { p.onRqEnqueue(ev); });
    }

    void
    onRqDequeue(const RqEvent &ev) override
    {
        dispatch([&](Probe &p) { p.onRqDequeue(ev); });
    }

    void
    onPageAlloc(const PageAllocEvent &ev) override
    {
        dispatch([&](Probe &p) { p.onPageAlloc(ev); });
    }

    void
    onPageFree(const PageFreeEvent &ev) override
    {
        dispatch([&](Probe &p) { p.onPageFree(ev); });
    }

    void
    onMcQueue(const McQueueEvent &ev) override
    {
        dispatch([&](Probe &p) { p.onMcQueue(ev); });
    }

    void
    onTaskSpawn(const TaskLifeEvent &ev) override
    {
        dispatch([&](Probe &p) { p.onTaskSpawn(ev); });
    }

    void
    onTaskExit(const TaskLifeEvent &ev) override
    {
        dispatch([&](Probe &p) { p.onTaskExit(ev); });
    }

    void
    onPageMigrate(const PageMigrateEvent &ev) override
    {
        dispatch([&](Probe &p) { p.onPageMigrate(ev); });
    }

    void
    finalize(Tick endTick) override
    {
        dispatch([&](Probe &p) { p.finalize(endTick); });
    }

  private:
    template <typename Fn>
    void
    dispatch(Fn &&fn)
    {
        for (auto &c : checkers_)
            fn(*c);
        for (auto *p : external_)
            fn(*p);
    }

    std::vector<std::unique_ptr<Checker>> checkers_;
    std::vector<Probe *> external_;
};

} // namespace refsched::validate

#endif // REFSCHED_VALIDATE_CHECKER_HH
