#include "validate/scenario_auditor.hh"

namespace refsched::validate
{

ScenarioAuditor::ScenarioAuditor(const dram::AddressMapping &mapping)
    : Checker("ScenarioAuditor"), mapping_(mapping)
{
}

void
ScenarioAuditor::onTaskSpawn(const TaskLifeEvent &ev)
{
    sawLifeEvents_ = true;
    if (!live_.insert(ev.pid).second)
        flag(ev.tick, "pid ", ev.pid, " spawned while already alive");
    everLive_.insert(ev.pid);
}

void
ScenarioAuditor::onTaskExit(const TaskLifeEvent &ev)
{
    sawLifeEvents_ = true;
    if (live_.erase(ev.pid) == 0) {
        flag(ev.tick, "pid ", ev.pid, " exited while not alive (",
             everLive_.count(ev.pid) ? "already exited"
                                     : "never spawned",
             ")");
        return;
    }
    const auto it = ownedCount_.find(ev.pid);
    if (it != ownedCount_.end() && it->second != 0)
        flag(ev.tick, "pid ", ev.pid, " exited still owning ",
             it->second, " frame(s) -- churned allocation leaked");
}

void
ScenarioAuditor::onSchedPick(const SchedPickEvent &ev)
{
    if (!tracking() || ev.chosen < 0)
        return;
    if (!live_.count(ev.chosen))
        flag(ev.tick, "cpu ", ev.cpu, " scheduled pid ", ev.chosen,
             " which is ",
             everLive_.count(ev.chosen) ? "already exited"
                                        : "not spawned");
}

void
ScenarioAuditor::onPageAlloc(const PageAllocEvent &ev)
{
    const auto it = owner_.find(ev.pfn);
    if (it != owner_.end()) {
        flag(ev.tick, "pfn ", ev.pfn, " allocated to pid ", ev.pid,
             " while still owned by pid ", it->second,
             " -- allocations alias");
        return;
    }
    if (ev.pid < 0)
        return;
    if (tracking() && !live_.count(ev.pid))
        flag(ev.tick, "pfn ", ev.pfn, " allocated to pid ", ev.pid,
             " which is ",
             everLive_.count(ev.pid) ? "already exited"
                                     : "not spawned");
    owner_.emplace(ev.pfn, ev.pid);
    ++ownedCount_[ev.pid];
}

void
ScenarioAuditor::onPageFree(const PageFreeEvent &ev)
{
    const auto it = owner_.find(ev.pfn);
    if (it == owner_.end()) {
        if (ev.pid >= 0 && tracking())
            flag(ev.tick, "pid ", ev.pid, " freed pfn ", ev.pfn,
                 " which no task owns");
        return;
    }
    if (ev.pid >= 0 && ev.pid != it->second)
        flag(ev.tick, "pid ", ev.pid, " freed pfn ", ev.pfn,
             " owned by pid ", it->second);
    auto owned = ownedCount_.find(it->second);
    if (owned != ownedCount_.end() && owned->second > 0)
        --owned->second;
    owner_.erase(it);
}

void
ScenarioAuditor::onPageMigrate(const PageMigrateEvent &ev)
{
    const auto from = owner_.find(ev.fromPfn);
    if (from == owner_.end() || from->second != ev.pid)
        flag(ev.tick, "pid ", ev.pid, " migrated vpn ", ev.vpn,
             " out of pfn ", ev.fromPfn, " it does not own");
    const auto to = owner_.find(ev.toPfn);
    if (to == owner_.end() || to->second != ev.pid)
        flag(ev.tick, "pid ", ev.pid, " migrated vpn ", ev.vpn,
             " into pfn ", ev.toPfn, " it does not own");

    const int bank = mapping_.bankOfFrame(ev.toPfn);
    if (ev.allowedBanks
        && (static_cast<std::size_t>(bank) >= ev.allowedBanks->size()
            || !(*ev.allowedBanks)[static_cast<std::size_t>(bank)]))
        flag(ev.tick, "pid ", ev.pid, " migrated vpn ", ev.vpn,
             " into pfn ", ev.toPfn, " (global bank ", bank,
             ") outside its possible_banks_vector");

    const int expectLines =
        static_cast<int>(mapping_.pageBytes() / 64);
    if (ev.linesCopied != expectLines)
        flag(ev.tick, "migration of vpn ", ev.vpn, " (pid ", ev.pid,
             ") copied ", ev.linesCopied, " line(s), a page is ",
             expectLines);
}

void
ScenarioAuditor::finalize(Tick endTick)
{
    std::uint64_t counted = 0;
    for (const auto &[pid, n] : ownedCount_)
        counted += n;
    if (counted != owner_.size())
        flag(endTick, "ownership accounting drifted: per-pid counts "
             "sum to ", counted, ", ", owner_.size(),
             " frames are owned");
}

} // namespace refsched::validate
