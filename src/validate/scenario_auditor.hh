/**
 * @file
 * Scenario invariant layer: audits the dynamic-workload engine
 * (tenant churn, phase changes, page migration) from the probe event
 * stream.
 *
 * Invariants:
 *  - no task is ever scheduled (SchedPick) unless it is alive
 *    (spawned and not yet exited);
 *  - page ownership is a bijection: a frame is owned by at most one
 *    pid, allocations go to live tasks, a pid-carrying free must
 *    come from the frame's recorded owner;
 *  - a migration moves a frame the task owns to a frame the task
 *    owns (the destination was allocated to it), the destination
 *    bank is inside the task's possible_banks_vector at migration
 *    time, and the copy is a whole page (pageBytes/64 lines);
 *  - an exiting task leaks nothing: its owned-frame count is zero
 *    once the exit event fires (the director frees the address space
 *    before announcing the exit).
 *
 * Life events are only emitted when a scenario runs; all ownership
 * checks that depend on liveness are gated on having seen at least
 * one TaskLife event, so the auditor stays silent on static runs.
 */

#ifndef REFSCHED_VALIDATE_SCENARIO_AUDITOR_HH
#define REFSCHED_VALIDATE_SCENARIO_AUDITOR_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "dram/address_mapping.hh"
#include "validate/checker.hh"

namespace refsched::validate
{

class ScenarioAuditor final : public Checker
{
  public:
    explicit ScenarioAuditor(const dram::AddressMapping &mapping);

    void onTaskSpawn(const TaskLifeEvent &ev) override;
    void onTaskExit(const TaskLifeEvent &ev) override;
    void onSchedPick(const SchedPickEvent &ev) override;
    void onPageAlloc(const PageAllocEvent &ev) override;
    void onPageFree(const PageFreeEvent &ev) override;
    void onPageMigrate(const PageMigrateEvent &ev) override;
    void finalize(Tick endTick) override;

  private:
    bool tracking() const { return sawLifeEvents_; }

    const dram::AddressMapping &mapping_;
    bool sawLifeEvents_ = false;

    /** pfn -> owning pid (only pid-attributed allocations). */
    std::unordered_map<std::uint64_t, Pid> owner_;
    /** Frames currently owned per pid (exit leak check). */
    std::unordered_map<Pid, std::uint64_t> ownedCount_;
    std::unordered_set<Pid> live_;
    /** Every pid ever spawned (distinguishes "exited" from "never
     *  existed" in diagnostics). */
    std::unordered_set<Pid> everLive_;
};

} // namespace refsched::validate

#endif // REFSCHED_VALIDATE_SCENARIO_AUDITOR_HH
