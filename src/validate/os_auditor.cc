#include "validate/os_auditor.hh"

#include <algorithm>

namespace refsched::validate
{

OsAuditor::OsAuditor(const dram::AddressMapping &mapping,
                     const os::BuddyAllocator *buddy,
                     bool refreshAware, int etaThresh, bool bestEffort)
    : Checker("OsAuditor"),
      mapping_(mapping),
      buddy_(buddy),
      refreshAware_(refreshAware),
      etaThresh_(etaThresh),
      bestEffort_(bestEffort),
      allocated_(mapping.totalFrames(), 0),
      perBankAllocated_(static_cast<std::size_t>(mapping.totalBanks()),
                        0),
      perBankCapacity_(static_cast<std::size_t>(mapping.totalBanks()),
                       0)
{
    for (std::uint64_t pfn = 0; pfn < mapping.totalFrames(); ++pfn)
        ++perBankCapacity_[static_cast<std::size_t>(
            mapping.bankOfFrame(pfn))];
}

OsAuditor::RqMirror &
OsAuditor::rq(int cpu)
{
    if (static_cast<std::size_t>(cpu) >= rqs_.size())
        rqs_.resize(static_cast<std::size_t>(cpu) + 1);
    return rqs_[static_cast<std::size_t>(cpu)];
}

void
OsAuditor::checkConservation(Tick tick, const char *what)
{
    if (!buddy_)
        return;
    const std::uint64_t free = buddy_->freeFrames();
    if (allocatedCount_ + free != buddy_->totalFrames())
        flag(tick, "frame conservation broken after ", what, ": ",
             allocatedCount_, " allocated + ", free, " free != ",
             buddy_->totalFrames(), " total");
}

void
OsAuditor::onPageAlloc(const PageAllocEvent &ev)
{
    if (ev.pfn >= allocated_.size()) {
        flag(ev.tick, "allocated pfn ", ev.pfn, " out of range (",
             allocated_.size(), " frames)");
        return;
    }
    if (allocated_[ev.pfn])
        flag(ev.tick, "pfn ", ev.pfn, " allocated twice");
    allocated_[ev.pfn] = 1;
    ++allocatedCount_;
    checkConservation(ev.tick, "alloc");

    const int bank = mapping_.bankOfFrame(ev.pfn);
    if (!ev.fallback && ev.allowedBanks
        && (static_cast<std::size_t>(bank) >= ev.allowedBanks->size()
            || !(*ev.allowedBanks)[static_cast<std::size_t>(bank)]))
        flag(ev.tick, "bank-mask confinement broken: pfn ", ev.pfn,
             " (global bank ", bank, ") allocated to pid ", ev.pid,
             " outside its possible_banks_vector");

    // Spill justification: a fallback allocation is only legal when
    // every permitted bank was already full at this point (the
    // counts below exclude the page being allocated right now).
    if (ev.fallback && ev.allowedBanks) {
        for (std::size_t b = 0;
             b < ev.allowedBanks->size()
             && b < perBankCapacity_.size();
             ++b) {
            if ((*ev.allowedBanks)[b]
                && perBankAllocated_[b] < perBankCapacity_[b]) {
                flag(ev.tick, "unjustified spill: pid ", ev.pid,
                     " fell back to bank ", bank, " (pfn ", ev.pfn,
                     ") while permitted bank ", b, " still has ",
                     perBankCapacity_[b] - perBankAllocated_[b],
                     " free frame(s)");
                break;
            }
        }
    }
    ++perBankAllocated_[static_cast<std::size_t>(bank)];

    if (ev.pid >= 0) {
        auto &counts = residency_[ev.pid];
        if (counts.empty())
            counts.resize(
                static_cast<std::size_t>(mapping_.totalBanks()), 0);
        ++counts[static_cast<std::size_t>(bank)];
    }
}

void
OsAuditor::onPageFree(const PageFreeEvent &ev)
{
    if (ev.pfn >= allocated_.size()) {
        flag(ev.tick, "freed pfn ", ev.pfn, " out of range");
        return;
    }
    if (!allocated_[ev.pfn]) {
        flag(ev.tick, "pfn ", ev.pfn, " freed while not allocated");
        return;
    }
    allocated_[ev.pfn] = 0;
    --allocatedCount_;
    const int bank = mapping_.bankOfFrame(ev.pfn);
    --perBankAllocated_[static_cast<std::size_t>(bank)];
    if (ev.pid >= 0) {
        auto it = residency_.find(ev.pid);
        if (it == residency_.end()
            || it->second[static_cast<std::size_t>(bank)] == 0) {
            flag(ev.tick, "pid ", ev.pid, " freed pfn ", ev.pfn,
                 " (global bank ", bank,
                 ") but owns no page there by the rebuilt residency");
        } else {
            --it->second[static_cast<std::size_t>(bank)];
        }
    } else {
        anonymousFreesSeen_ = true;
    }
    checkConservation(ev.tick, "free");
}

void
OsAuditor::onRqEnqueue(const RqEvent &ev)
{
    if (!rq(ev.cpu).insert({ev.vruntime, ev.pid}).second)
        flag(ev.tick, "pid ", ev.pid, " enqueued twice on cpu ",
             ev.cpu, " (vruntime ", ev.vruntime, ")");
}

void
OsAuditor::onRqDequeue(const RqEvent &ev)
{
    if (rq(ev.cpu).erase({ev.vruntime, ev.pid}) == 0)
        flag(ev.tick, "pid ", ev.pid, " dequeued from cpu ", ev.cpu,
             " but not enqueued there (vruntime ", ev.vruntime, ")");
}

void
OsAuditor::onSchedPick(const SchedPickEvent &ev)
{
    const auto &mirror = rq(ev.cpu);

    switch (ev.kind) {
    case PickKind::Idle:
        if (!mirror.empty())
            flag(ev.tick, "cpu ", ev.cpu, " idled with ",
                 mirror.size(), " runnable task(s)");
        return;
    case PickKind::Baseline:
        if (mirror.empty()) {
            flag(ev.tick, "baseline pick on cpu ", ev.cpu,
                 " from an empty runqueue");
        } else if (ev.chosen != mirror.begin()->second) {
            flag(ev.tick, "baseline pick on cpu ", ev.cpu, " chose ",
                 ev.chosen, ", leftmost is ",
                 mirror.begin()->second);
        }
        return;
    default:
        break;
    }

    // Refresh-aware kinds (Clean / BestEffort / Fallback).
    if (!refreshAware_)
        flag(ev.tick, "refresh-aware pick on cpu ", ev.cpu,
             " but refresh-aware scheduling is off");
    if (!ev.candidates || ev.candidates->empty()) {
        flag(ev.tick, "refresh-aware pick on cpu ", ev.cpu,
             " with no candidate walk recorded");
        return;
    }
    checkPickDecision(ev);
}

void
OsAuditor::checkPickDecision(const SchedPickEvent &ev)
{
    const auto &cands = *ev.candidates;
    const auto &mirror = rq(ev.cpu);
    const std::size_t n = cands.size();

    // Algorithm 3 examines AT MOST eta_thresh candidates: the
    // eta_thresh-th candidate is still examined (and eligible to be
    // picked clean), the eta_thresh+1-th is not.  Strict `>` here --
    // a `>=` would reject legal walks that use their full budget.
    // eta_thresh < 1 is rejected by the scheduler's constructor, so
    // an event carrying one is itself evidence of a malformed stream
    // and must not silently widen the bound.
    if (ev.etaThresh < 1)
        flag(ev.tick, "refresh-aware pick on cpu ", ev.cpu,
             " carries eta_thresh ", ev.etaThresh, " < 1");
    else if (n > static_cast<std::size_t>(ev.etaThresh))
        flag(ev.tick, "pick walk on cpu ", ev.cpu, " examined ", n,
             " candidates, eta_thresh is ", ev.etaThresh);

    // The walk must be exactly the in-order runqueue prefix.
    std::size_t i = 0;
    for (auto it = mirror.begin(); it != mirror.end() && i < n;
         ++it, ++i) {
        if (cands[i].pid != it->second
            || cands[i].vruntime != it->first) {
            flag(ev.tick, "pick walk on cpu ", ev.cpu, " position ",
                 i, " saw pid ", cands[i].pid, " (vruntime ",
                 cands[i].vruntime, "), runqueue has pid ",
                 it->second, " (vruntime ", it->first, ")");
            return;
        }
    }
    if (i < n) {
        flag(ev.tick, "pick walk on cpu ", ev.cpu, " examined ", n,
             " candidates but only ", mirror.size(),
             " tasks are enqueued");
        return;
    }

    // Residency cross-check of the emitter's clean classification.
    if (!anonymousFreesSeen_ && ev.refreshBanks) {
        for (const auto &c : cands) {
            bool myClean = true;
            const auto it = residency_.find(c.pid);
            if (it != residency_.end())
                for (int b : *ev.refreshBanks)
                    if (it->second[static_cast<std::size_t>(b)] > 0)
                        myClean = false;
            if (myClean != c.clean)
                flag(ev.tick, "clean bit mismatch for pid ", c.pid,
                     " on cpu ", ev.cpu, ": scheduler says ",
                     c.clean ? "clean" : "dirty",
                     ", rebuilt residency says ",
                     myClean ? "clean" : "dirty");
        }
    }

    // Re-derive Algorithm 3's decision from the walked candidates.
    const SchedCandidate *clean = nullptr;
    for (const auto &c : cands)
        if (c.clean) {
            clean = &c;
            break;
        }

    if (clean) {
        if (clean != &cands.back())
            flag(ev.tick, "pick walk on cpu ", ev.cpu,
                 " continued past clean pid ", clean->pid);
        if (ev.kind != PickKind::Clean || ev.chosen != clean->pid)
            flag(ev.tick, "cpu ", ev.cpu, " should pick clean pid ",
                 clean->pid, ", picked ", ev.chosen);
        return;
    }

    // No clean candidate: the walk must have been exhausted, either
    // by eta_thresh or by running out of tasks.
    if (n != static_cast<std::size_t>(ev.etaThresh)
        && n != mirror.size())
        flag(ev.tick, "pick walk on cpu ", ev.cpu, " gave up after ",
             n, " candidates (eta_thresh ", ev.etaThresh, ", ",
             mirror.size(), " enqueued)");

    if (ev.bestEffort) {
        const SchedCandidate *best = &cands.front();
        for (const auto &c : cands)
            if (c.resident < best->resident)
                best = &c;
        if (ev.kind != PickKind::BestEffort
            || ev.chosen != best->pid)
            flag(ev.tick, "cpu ", ev.cpu,
                 " should pick best-effort pid ", best->pid,
                 " (resident ", best->resident, "), picked ",
                 ev.chosen);
    } else {
        if (ev.kind != PickKind::Fallback
            || ev.chosen != cands.front().pid)
            flag(ev.tick, "cpu ", ev.cpu,
                 " should fall back to leftmost pid ",
                 cands.front().pid, ", picked ", ev.chosen);
    }
}

void
OsAuditor::finalize(Tick endTick)
{
    checkConservation(endTick, "run");
    if (buddy_) {
        std::string why;
        if (!buddy_->checkInvariants(&why))
            flag(endTick, "buddy structural invariants broken: ",
                 why);
    }
}

} // namespace refsched::validate
