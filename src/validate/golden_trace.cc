#include "validate/golden_trace.hh"

#include <algorithm>
#include <fstream>
#include <iterator>

#include "simcore/logging.hh"

namespace refsched::validate
{

namespace
{

constexpr char kMagic[8] = {'r', 'e', 'f', 's', 'c', 'h', 'e', 'd'};
constexpr std::uint64_t kVersion = 1;

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
getVarint(const std::vector<std::uint8_t> &in, std::size_t &pos)
{
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
        if (pos >= in.size())
            fatal("truncated varint in trace at byte ", pos);
        const std::uint8_t byte = in[pos++];
        v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return v;
        shift += 7;
        if (shift >= 64)
            fatal("overlong varint in trace at byte ", pos);
    }
}

TraceKind
dramKind(DramOp op)
{
    switch (op) {
    case DramOp::Act:
        return TraceKind::DramAct;
    case DramOp::Read:
        return TraceKind::DramRead;
    case DramOp::Write:
        return TraceKind::DramWrite;
    case DramOp::Pre:
        return TraceKind::DramPre;
    case DramOp::RefPerBank:
        return TraceKind::DramRefPb;
    case DramOp::RefAllBank:
        return TraceKind::DramRefAb;
    case DramOp::RefPause:
        return TraceKind::DramRefPause;
    }
    panic("unreachable DramOp");
}

const char *
kindName(TraceKind kind)
{
    switch (kind) {
    case TraceKind::DramAct:
        return "ACT";
    case TraceKind::DramRead:
        return "READ";
    case TraceKind::DramWrite:
        return "WRITE";
    case TraceKind::DramPre:
        return "PRE";
    case TraceKind::DramRefPb:
        return "REFpb";
    case TraceKind::DramRefAb:
        return "REFab";
    case TraceKind::DramRefPause:
        return "REFpause";
    case TraceKind::SchedPick:
        return "PICK";
    case TraceKind::PageAlloc:
        return "ALLOC";
    case TraceKind::PageFree:
        return "FREE";
    case TraceKind::PageMigrate:
        return "MIGRATE";
    case TraceKind::TaskLife:
        return "TASK";
    }
    return "?";
}

} // namespace

std::size_t
traceFieldCount(TraceKind kind)
{
    switch (kind) {
    case TraceKind::DramAct:
    case TraceKind::DramRead:
    case TraceKind::DramWrite:
    case TraceKind::DramPre:
        return 4;  // ch, rank, bank+1, row
    case TraceKind::DramRefPb:
    case TraceKind::DramRefAb:
    case TraceKind::DramRefPause:
        return 5;  // ch, rank, bank+1, rows, busyUntil-tick
    case TraceKind::SchedPick:
        return 3;  // cpu, kind, chosen+1
    case TraceKind::PageAlloc:
        return 3;  // pid+1, pfn, fallback
    case TraceKind::PageFree:
        return 1;  // pfn
    case TraceKind::PageMigrate:
        return 4;  // pid+1, vpn, fromPfn, toPfn
    case TraceKind::TaskLife:
        return 2;  // pid+1, spawn
    }
    fatal("unknown trace kind ", static_cast<int>(kind));
}

bool
TraceEvent::operator==(const TraceEvent &o) const
{
    if (kind != o.kind || tick != o.tick)
        return false;
    const std::size_t n = traceFieldCount(kind);
    for (std::size_t i = 0; i < n; ++i)
        if (f[i] != o.f[i])
            return false;
    return true;
}

std::string
describe(const TraceEvent &ev)
{
    std::string s = detail::format("tick ", ev.tick, " ",
                                   kindName(ev.kind));
    switch (ev.kind) {
    case TraceKind::DramAct:
    case TraceKind::DramRead:
    case TraceKind::DramWrite:
    case TraceKind::DramPre:
        s += detail::format(" ch", ev.f[0], "/r", ev.f[1], "/b",
                            static_cast<std::int64_t>(ev.f[2]) - 1,
                            " row ", ev.f[3]);
        break;
    case TraceKind::DramRefPb:
    case TraceKind::DramRefAb:
    case TraceKind::DramRefPause:
        s += detail::format(" ch", ev.f[0], "/r", ev.f[1], "/b",
                            static_cast<std::int64_t>(ev.f[2]) - 1,
                            " rows ", ev.f[3], " busy +", ev.f[4]);
        break;
    case TraceKind::SchedPick:
        s += detail::format(" cpu", ev.f[0], " kind ", ev.f[1],
                            " pid ",
                            static_cast<std::int64_t>(ev.f[2]) - 1);
        break;
    case TraceKind::PageAlloc:
        s += detail::format(" pid ",
                            static_cast<std::int64_t>(ev.f[0]) - 1,
                            " pfn ", ev.f[1],
                            ev.f[2] ? " (fallback)" : "");
        break;
    case TraceKind::PageFree:
        s += detail::format(" pfn ", ev.f[0]);
        break;
    case TraceKind::PageMigrate:
        s += detail::format(" pid ",
                            static_cast<std::int64_t>(ev.f[0]) - 1,
                            " vpn ", ev.f[1], " pfn ", ev.f[2],
                            " -> ", ev.f[3]);
        break;
    case TraceKind::TaskLife:
        s += detail::format(ev.f[1] ? " spawn pid " : " exit pid ",
                            static_cast<std::int64_t>(ev.f[0]) - 1);
        break;
    }
    return s;
}

void
TraceRecorder::put(TraceKind kind, Tick tick,
                   std::initializer_list<std::uint64_t> fields)
{
    REFSCHED_ASSERT(fields.size() == traceFieldCount(kind),
                    "trace field count mismatch");
    Raw r;
    r.kind = kind;
    r.tick = tick;
    std::copy(fields.begin(), fields.end(), r.f.begin());
    pending_.push_back(r);
    encoded_ = false;
}

const std::vector<std::uint8_t> &
TraceRecorder::data() const
{
    if (!encoded_) {
        // The sharded kernel reports each epoch window's channel-lane
        // events after the main-lane events that follow them in
        // simulated time; sorting stably by tick restores the
        // canonical order without disturbing same-tick arrival order.
        std::stable_sort(pending_.begin(), pending_.end(),
                         [](const Raw &a, const Raw &b) {
                             return a.tick < b.tick;
                         });
        buf_.clear();
        Tick lastTick = 0;
        for (const Raw &r : pending_) {
            buf_.push_back(static_cast<std::uint8_t>(r.kind));
            putVarint(buf_, r.tick - lastTick);
            lastTick = r.tick;
            const std::size_t n = traceFieldCount(r.kind);
            for (std::size_t i = 0; i < n; ++i)
                putVarint(buf_, r.f[i]);
        }
        encoded_ = true;
    }
    return buf_;
}

void
TraceRecorder::onDramCommand(const DramCmdEvent &ev)
{
    const TraceKind kind = dramKind(ev.op);
    const auto bank =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(ev.bank)
                                   + 1);
    if (traceFieldCount(kind) == 5)
        put(kind, ev.tick,
            {static_cast<std::uint64_t>(ev.channel),
             static_cast<std::uint64_t>(ev.rank), bank, ev.row,
             ev.busyUntil - ev.tick});
    else
        put(kind, ev.tick,
            {static_cast<std::uint64_t>(ev.channel),
             static_cast<std::uint64_t>(ev.rank), bank, ev.row});
}

void
TraceRecorder::onSchedPick(const SchedPickEvent &ev)
{
    put(TraceKind::SchedPick, ev.tick,
        {static_cast<std::uint64_t>(ev.cpu),
         static_cast<std::uint64_t>(ev.kind),
         static_cast<std::uint64_t>(
             static_cast<std::int64_t>(ev.chosen) + 1)});
}

void
TraceRecorder::onPageAlloc(const PageAllocEvent &ev)
{
    put(TraceKind::PageAlloc, ev.tick,
        {static_cast<std::uint64_t>(
             static_cast<std::int64_t>(ev.pid) + 1),
         ev.pfn, ev.fallback ? 1u : 0u});
}

void
TraceRecorder::onPageFree(const PageFreeEvent &ev)
{
    // The owning pid is deliberately not encoded: PageFree predates
    // pid-carrying frees and old fixtures must keep decoding.
    put(TraceKind::PageFree, ev.tick, {ev.pfn});
}

void
TraceRecorder::onPageMigrate(const PageMigrateEvent &ev)
{
    put(TraceKind::PageMigrate, ev.tick,
        {static_cast<std::uint64_t>(
             static_cast<std::int64_t>(ev.pid) + 1),
         ev.vpn, ev.fromPfn, ev.toPfn});
}

void
TraceRecorder::onTaskSpawn(const TaskLifeEvent &ev)
{
    put(TraceKind::TaskLife, ev.tick,
        {static_cast<std::uint64_t>(
             static_cast<std::int64_t>(ev.pid) + 1),
         1u});
}

void
TraceRecorder::onTaskExit(const TaskLifeEvent &ev)
{
    put(TraceKind::TaskLife, ev.tick,
        {static_cast<std::uint64_t>(
             static_cast<std::int64_t>(ev.pid) + 1),
         0u});
}

std::vector<TraceEvent>
decodeTrace(const std::vector<std::uint8_t> &data)
{
    std::vector<TraceEvent> events;
    std::size_t pos = 0;
    Tick tick = 0;
    while (pos < data.size()) {
        TraceEvent ev;
        const std::uint8_t kind = data[pos++];
        if (kind < 1
            || kind > static_cast<std::uint8_t>(TraceKind::TaskLife))
            fatal("bad trace record kind ", int(kind), " at byte ",
                  pos - 1);
        ev.kind = static_cast<TraceKind>(kind);
        tick += getVarint(data, pos);
        ev.tick = tick;
        const std::size_t n = traceFieldCount(ev.kind);
        for (std::size_t i = 0; i < n; ++i)
            ev.f[i] = getVarint(data, pos);
        events.push_back(ev);
    }
    return events;
}

void
writeTraceFile(const std::string &path, const TraceRecorder &recorder)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot write trace file ", path);
    os.write(kMagic, sizeof(kMagic));
    std::vector<std::uint8_t> head;
    putVarint(head, kVersion);
    putVarint(head, recorder.eventCount());
    os.write(reinterpret_cast<const char *>(head.data()),
             static_cast<std::streamsize>(head.size()));
    os.write(reinterpret_cast<const char *>(recorder.data().data()),
             static_cast<std::streamsize>(recorder.data().size()));
    if (!os)
        fatal("short write to trace file ", path);
}

std::vector<TraceEvent>
readTraceFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot read trace file ", path);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());
    if (bytes.size() < sizeof(kMagic)
        || !std::equal(kMagic, kMagic + sizeof(kMagic), bytes.begin()))
        fatal(path, " is not a refsched trace file");
    std::size_t pos = sizeof(kMagic);
    const std::uint64_t version = getVarint(bytes, pos);
    if (version != kVersion)
        fatal(path, ": unsupported trace version ", version);
    const std::uint64_t count = getVarint(bytes, pos);
    auto events = decodeTrace(std::vector<std::uint8_t>(
        bytes.begin() + static_cast<std::ptrdiff_t>(pos),
        bytes.end()));
    if (events.size() != count)
        fatal(path, ": header promises ", count, " events, decoded ",
              events.size());
    return events;
}

std::string
TraceDiff::describe() const
{
    if (identical)
        return "traces identical";
    if (lhsEnded)
        return detail::format("trace A ends at event ", index,
                              "; trace B continues with ",
                              validate::describe(rhs));
    if (rhsEnded)
        return detail::format("trace B ends at event ", index,
                              "; trace A continues with ",
                              validate::describe(lhs));
    return detail::format("first divergence at event ", index,
                          ":\n  A: ", validate::describe(lhs),
                          "\n  B: ", validate::describe(rhs));
}

TraceDiff
diffTraces(const std::vector<TraceEvent> &a,
           const std::vector<TraceEvent> &b)
{
    TraceDiff d;
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (a[i] != b[i]) {
            d.identical = false;
            d.index = i;
            d.lhs = a[i];
            d.rhs = b[i];
            return d;
        }
    }
    if (a.size() != b.size()) {
        d.identical = false;
        d.index = n;
        d.lhsEnded = a.size() == n;
        d.rhsEnded = b.size() == n;
        if (!d.lhsEnded)
            d.lhs = a[n];
        if (!d.rhsEnded)
            d.rhs = b[n];
    }
    return d;
}

} // namespace refsched::validate
