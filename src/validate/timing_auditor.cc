#include "validate/timing_auditor.hh"

namespace refsched::validate
{

namespace
{

/** "ch0/r1/b3" coordinate tag for violation messages. */
std::string
at(const DramCmdEvent &ev)
{
    return detail::format("ch", ev.channel, "/r", ev.rank, "/b",
                          ev.bank);
}

} // namespace

TimingAuditor::TimingAuditor(const dram::DramDeviceConfig &dev)
    : Checker("TimingAuditor"),
      t_(dev.timings),
      ranksPerChannel_(dev.org.ranksPerChannel),
      banksPerRank_(dev.org.banksPerRank),
      banks_(static_cast<std::size_t>(dev.org.channels)
             * ranksPerChannel_ * banksPerRank_),
      ranks_(static_cast<std::size_t>(dev.org.channels)
             * ranksPerChannel_),
      channels_(static_cast<std::size_t>(dev.org.channels))
{
}

TimingAuditor::BankModel &
TimingAuditor::bank(int ch, int rank, int bank)
{
    return banks_[(static_cast<std::size_t>(ch) * ranksPerChannel_
                   + rank) * banksPerRank_ + bank];
}

TimingAuditor::RankModel &
TimingAuditor::rank(int ch, int rank)
{
    return ranks_[static_cast<std::size_t>(ch) * ranksPerChannel_
                  + rank];
}

void
TimingAuditor::onDramCommand(const DramCmdEvent &ev)
{
    switch (ev.op) {
    case DramOp::Act:
        checkAct(ev);
        break;
    case DramOp::Read:
    case DramOp::Write:
        checkCas(ev);
        break;
    case DramOp::Pre:
        checkPre(ev);
        break;
    case DramOp::RefPerBank:
        checkRefPerBank(ev);
        break;
    case DramOp::RefAllBank:
        checkRefAllBank(ev);
        break;
    case DramOp::RefPause:
        checkRefPause(ev);
        break;
    }
}

void
TimingAuditor::checkAct(const DramCmdEvent &ev)
{
    auto &b = bank(ev.channel, ev.rank, ev.bank);
    auto &r = rank(ev.channel, ev.rank);

    if (b.open)
        flag(ev.tick, "ACT ", at(ev), " row ", ev.row,
             " while the bank is already open");
    if (ev.tick < b.refreshUntil)
        flag(ev.tick, "ACT ", at(ev), " during per-bank refresh"
             " (busy until ", b.refreshUntil, ")");
    if (ev.tick < r.refreshUntil)
        flag(ev.tick, "ACT ", at(ev), " during all-bank refresh"
             " (busy until ", r.refreshUntil, ")");
    if (b.hasAct && ev.tick < b.lastAct + t_.tRC)
        flag(ev.tick, "tRC violation: ACT ", at(ev), " at ", ev.tick,
             ", previous ACT at ", b.lastAct, ", tRC=", t_.tRC);
    if (b.hasPre && ev.tick < b.lastPre + t_.tRP)
        flag(ev.tick, "tRP violation: ACT ", at(ev), " at ", ev.tick,
             ", PRE at ", b.lastPre, ", tRP=", t_.tRP);
    if (r.hasAct && ev.tick < r.lastAct + t_.tRRD)
        flag(ev.tick, "tRRD violation: ACT ", at(ev), " at ", ev.tick,
             ", previous rank ACT at ", r.lastAct, ", tRRD=", t_.tRRD);
    if (r.fawPrimed && ev.tick < r.acts[r.actMod] + t_.tFAW)
        flag(ev.tick, "tFAW violation: ACT ", at(ev), " at ", ev.tick,
             " is the 5th ACT within tFAW=", t_.tFAW,
             " (4-back ACT at ", r.acts[r.actMod], ")");

    b.open = true;
    b.hasAct = true;
    b.lastAct = ev.tick;
    r.hasAct = true;
    r.lastAct = ev.tick;
    r.acts[r.actMod] = ev.tick;
    r.actMod = (r.actMod + 1) % 4;
    if (r.actMod == 0)
        r.fawPrimed = true;
}

void
TimingAuditor::checkCas(const DramCmdEvent &ev)
{
    const bool isRead = ev.op == DramOp::Read;
    const char *name = isRead ? "READ " : "WRITE ";
    auto &b = bank(ev.channel, ev.rank, ev.bank);
    auto &r = rank(ev.channel, ev.rank);
    auto &c = channels_[static_cast<std::size_t>(ev.channel)];

    if (!b.open)
        flag(ev.tick, name, at(ev), " row ", ev.row,
             " to a closed bank");
    if (ev.tick < b.refreshUntil || ev.tick < r.refreshUntil)
        flag(ev.tick, name, at(ev), " during refresh");
    if (b.hasAct && ev.tick < b.lastAct + t_.tRCD)
        flag(ev.tick, "tRCD violation: ", name, at(ev), " at ",
             ev.tick, ", ACT at ", b.lastAct, ", tRCD=", t_.tRCD);
    if (b.hasCas && ev.tick < b.lastCas + t_.tCCD)
        flag(ev.tick, "tCCD violation: ", name, at(ev), " at ",
             ev.tick, ", previous CAS at ", b.lastCas, ", tCCD=",
             t_.tCCD);
    if (isRead && b.hasWrite && ev.tick < b.writeBurstEnd + t_.tWTR)
        flag(ev.tick, "tWTR violation: READ ", at(ev), " at ",
             ev.tick, ", write burst ends ", b.writeBurstEnd,
             ", tWTR=", t_.tWTR);
    if (c.hasCas && ev.tick < c.lastCas + t_.tBURST)
        flag(ev.tick, "data-bus violation: ", name, at(ev), " at ",
             ev.tick, " within tBURST=", t_.tBURST,
             " of previous channel CAS at ", c.lastCas);

    b.hasCas = true;
    b.lastCas = ev.tick;
    if (isRead) {
        b.hasRead = true;
        b.lastReadCas = ev.tick;
    } else {
        b.hasWrite = true;
        b.writeBurstEnd = ev.tick + t_.tCWL + t_.tBURST;
    }
    c.hasCas = true;
    c.lastCas = ev.tick;
}

void
TimingAuditor::checkPre(const DramCmdEvent &ev)
{
    auto &b = bank(ev.channel, ev.rank, ev.bank);
    auto &r = rank(ev.channel, ev.rank);

    if (!b.open)
        flag(ev.tick, "PRE ", at(ev), " to a closed bank");
    if (ev.tick < b.refreshUntil || ev.tick < r.refreshUntil)
        flag(ev.tick, "PRE ", at(ev), " during refresh");
    if (b.hasAct && ev.tick < b.lastAct + t_.tRAS)
        flag(ev.tick, "tRAS violation: PRE ", at(ev), " at ", ev.tick,
             ", ACT at ", b.lastAct, ", tRAS=", t_.tRAS);
    if (b.hasRead && ev.tick < b.lastReadCas + t_.tRTP)
        flag(ev.tick, "tRTP violation: PRE ", at(ev), " at ", ev.tick,
             ", READ at ", b.lastReadCas, ", tRTP=", t_.tRTP);
    if (b.hasWrite && ev.tick < b.writeBurstEnd + t_.tWR)
        flag(ev.tick, "tWR violation: PRE ", at(ev), " at ", ev.tick,
             ", write burst ends ", b.writeBurstEnd, ", tWR=", t_.tWR);

    b.open = false;
    b.hasPre = true;
    b.lastPre = ev.tick;
}

void
TimingAuditor::checkRefPerBank(const DramCmdEvent &ev)
{
    auto &b = bank(ev.channel, ev.rank, ev.bank);
    auto &r = rank(ev.channel, ev.rank);

    if (b.open)
        flag(ev.tick, "REF ", at(ev), " while the bank is open");
    if (ev.tick < b.refreshUntil)
        flag(ev.tick, "tRFC_pb violation: REF ", at(ev), " at ",
             ev.tick, " overlaps refresh busy until ", b.refreshUntil);
    if (ev.tick < r.refreshUntil)
        flag(ev.tick, "REF ", at(ev), " during all-bank refresh"
             " (busy until ", r.refreshUntil, ")");
    if (ev.busyUntil < ev.tick)
        flag(ev.tick, "REF ", at(ev), " with busy-until ",
             ev.busyUntil, " before issue tick");

    b.refreshUntil = ev.busyUntil;
}

void
TimingAuditor::checkRefAllBank(const DramCmdEvent &ev)
{
    auto &r = rank(ev.channel, ev.rank);

    if (ev.tick < r.refreshUntil)
        flag(ev.tick, "tRFC_ab violation: REFab ch", ev.channel, "/r",
             ev.rank, " at ", ev.tick, " overlaps refresh busy until ",
             r.refreshUntil);
    for (int bi = 0; bi < banksPerRank_; ++bi) {
        auto &b = bank(ev.channel, ev.rank, bi);
        if (b.open)
            flag(ev.tick, "REFab ch", ev.channel, "/r", ev.rank,
                 " while bank ", bi, " is open");
        if (ev.tick < b.refreshUntil)
            flag(ev.tick, "REFab ch", ev.channel, "/r", ev.rank,
                 " while bank ", bi, " is under per-bank refresh");
        b.refreshUntil = ev.busyUntil;
    }
    r.refreshUntil = ev.busyUntil;
}

void
TimingAuditor::checkRefPause(const DramCmdEvent &ev)
{
    auto &b = bank(ev.channel, ev.rank, ev.bank);

    if (ev.tick >= b.refreshUntil)
        flag(ev.tick, "refresh pause ", at(ev), " at ", ev.tick,
             " but no refresh is in flight");
    if (ev.busyUntil > b.refreshUntil)
        flag(ev.tick, "refresh pause ", at(ev),
             " extends the refresh (", ev.busyUntil, " > ",
             b.refreshUntil, ")");

    b.refreshUntil = ev.busyUntil;
}

} // namespace refsched::validate
