/**
 * @file
 * Refresh-window coverage monitor.
 *
 * Accumulates the rows refreshed per bank from the REF command stream
 * and proves two properties of the refresh schedule:
 *
 *  1. Coverage: every bank's full row set (org.rowsPerBank rows) is
 *     refreshed within each tREFW window, modulo a bounded slack for
 *     elastic postponement (maxPostponed * tREFI_ab) and command
 *     occupancy.  A bank whose window expires short of full coverage
 *     is reported with its channel/rank/bank, the rows covered, and
 *     the tick the window expired.
 *
 *  2. Sequential structure (SequentialPerBank only): each refresh
 *     engine keeps refreshing the SAME bank until its full row set is
 *     done before advancing (Algorithm 1's "one bank in refresh per
 *     tREFI_pb slot").  Refresh Pausing may defer a command's tail
 *     rows past the engine's advance; the monitor tracks that pause
 *     debt and exempts the matching resume commands.
 *
 * Refresh pausing subtracts the rolled-back rows again, so a pause
 * followed by a lost resume command shows up as missing coverage.
 */

#ifndef REFSCHED_VALIDATE_REFRESH_WINDOW_MONITOR_HH
#define REFSCHED_VALIDATE_REFRESH_WINDOW_MONITOR_HH

#include <cstddef>
#include <vector>

#include "dram/refresh_scheduler.hh"
#include "dram/timings.hh"
#include "validate/checker.hh"

namespace refsched::validate
{

class RefreshWindowMonitor final : public Checker
{
  public:
    RefreshWindowMonitor(const dram::DramDeviceConfig &dev,
                         dram::RefreshPolicy policy,
                         std::size_t maxPostponed, bool pausing);

    void onDramCommand(const DramCmdEvent &ev) override;
    void finalize(Tick endTick) override;

    /** Completed full-coverage passes of a global bank (tests). */
    std::uint64_t passes(int globalBank) const;

  private:
    /** Coverage state of one global bank. */
    struct BankWindow
    {
        std::uint64_t rowsDone = 0;
        /** Start of the pass currently being accumulated. */
        Tick passAnchor = 0;
        std::uint64_t passes = 0;
        /** Rows rolled back by pausing, owed by resume commands. */
        std::uint64_t pauseDebt = 0;
    };

    /** Structure state of one sequential refresh engine. */
    struct Engine
    {
        int curBank = -1;  ///< global bank id, -1 before first REF
        std::uint64_t rowsInRun = 0;
    };

    int globalBank(int ch, int rank, int bank) const;
    Engine &engineFor(int ch, int rank);
    void addRows(int gb, std::uint64_t rows, Tick tick);
    void checkSequentialStructure(const DramCmdEvent &ev, int gb);
    void sweepOverdue(Tick tick);

    dram::RefreshPolicy policy_;
    std::uint64_t rowsPerBank_;
    Tick tREFW_;
    /** Allowed lateness beyond tREFW before coverage is flagged. */
    Tick slack_;
    int channels_;
    int ranksPerChannel_;
    int banksPerRank_;
    /** SequentialPerBank: one engine per rank (rank-parallel mode)
     *  or per channel. */
    bool rankParallel_ = false;
    std::vector<BankWindow> banks_;
    std::vector<Engine> engines_;
};

} // namespace refsched::validate

#endif // REFSCHED_VALIDATE_REFRESH_WINDOW_MONITOR_HH
