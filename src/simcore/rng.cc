#include "simcore/rng.hh"

#include <cmath>

namespace refsched
{

namespace
{

/** splitmix64: expands one 64-bit seed into a stream of state words. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/** The splitmix64 output finalizer (full-avalanche bijection). */
std::uint64_t
finalize(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

} // namespace

std::uint64_t
CounterRng::mix(std::uint64_t seed, std::uint64_t stream,
                std::uint64_t counter)
{
    // Weyl-style increments keep (seed, stream, counter) in distinct
    // linear subspaces before each avalanche round, so adjacent
    // counters, adjacent seeds and adjacent stream keys all map to
    // unrelated outputs.
    std::uint64_t z = seed;
    z = finalize(z + 0x9E3779B97F4A7C15ULL * stream);
    z = finalize(z + 0xD1B54A32D192ED03ULL * counter);
    return finalize(z + 0x8CB92BA72F3D8DD7ULL);
}

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s)
        word = splitmix64(x);
    // Guard against the (astronomically unlikely) all-zero state,
    // which is the one fixed point of xoshiro256**.
    if ((s[0] | s[1] | s[2] | s[3]) == 0)
        s[0] = 1;
}

std::uint64_t
Rng::geometric(double p, std::uint64_t maxGap)
{
    if (p >= 1.0)
        return 0;
    if (p <= 0.0)
        return maxGap;
    // Inverse-CDF sampling: floor(log(U) / log(1-p)).
    if (p != geomP_) {
        geomP_ = p;
        geomLogQ_ = std::log1p(-p);
    }
    const double u = real();
    const double g = std::floor(std::log1p(-u) / geomLogQ_);
    if (g >= static_cast<double>(maxGap))
        return maxGap;
    return static_cast<std::uint64_t>(g);
}

} // namespace refsched
