/**
 * @file
 * Lightweight statistics framework, modelled on gem5's stats package.
 *
 * Components own stat objects and register them with a StatRegistry
 * under hierarchical dotted names ("mc0.readReqs").  The registry
 * supports a global reset, which the experiment runner uses to drop
 * warm-up activity before measurement, and a text dump.
 */

#ifndef REFSCHED_SIMCORE_STATS_HH
#define REFSCHED_SIMCORE_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace refsched
{

/** Base class for all statistics. */
class StatBase
{
  public:
    virtual ~StatBase() = default;

    /** Discard accumulated data (used at end of warm-up). */
    virtual void reset() = 0;

    /** One-line textual rendering of the value. */
    virtual std::string render() const = 0;

    /** JSON rendering of the value (a number or an object). */
    virtual std::string renderJson() const = 0;
};

/** Monotonic counter / gauge. */
class Scalar : public StatBase
{
  public:
    void operator+=(double v) { val += v; }
    void operator-=(double v) { val -= v; }
    void operator++() { val += 1.0; }
    void operator++(int) { val += 1.0; }
    void set(double v) { val = v; }

    double value() const { return val; }

    void reset() override { val = 0.0; }
    std::string render() const override;
    std::string renderJson() const override;

  private:
    double val = 0.0;
};

/** Running mean with count (e.g., average memory latency). */
class Average : public StatBase
{
  public:
    void
    sample(double v)
    {
        sum += v;
        ++count;
    }

    double mean() const { return count ? sum / count : 0.0; }
    std::uint64_t samples() const { return count; }
    double total() const { return sum; }

    void
    reset() override
    {
        sum = 0.0;
        count = 0;
    }

    std::string render() const override;
    std::string renderJson() const override;

  private:
    double sum = 0.0;
    std::uint64_t count = 0;
};

/**
 * Fixed-bucket histogram with running min/max/mean.  Buckets are
 * linear between [lo, hi); out-of-range samples land in underflow /
 * overflow counters, so no sample is lost.
 */
class Distribution : public StatBase
{
  public:
    Distribution() : Distribution(0.0, 1.0, 1) {}
    Distribution(double lo, double hi, std::size_t numBuckets);

    void init(double lo, double hi, std::size_t numBuckets);
    void sample(double v);

    std::uint64_t samples() const { return count; }
    double mean() const { return count ? sum / count : 0.0; }
    double minValue() const { return count ? minV : 0.0; }
    double maxValue() const { return count ? maxV : 0.0; }
    const std::vector<std::uint64_t> &bucketCounts() const
    {
        return buckets;
    }
    std::uint64_t underflowCount() const { return underflow; }
    std::uint64_t overflowCount() const { return overflow; }

    /** Approximate p-quantile (0..1) from bucket boundaries. */
    double quantile(double q) const;

    void reset() override;
    std::string render() const override;
    std::string renderJson() const override;

  private:
    double lo = 0.0, hi = 1.0, width = 1.0;
    std::vector<std::uint64_t> buckets;
    std::uint64_t underflow = 0, overflow = 0;
    std::uint64_t count = 0;
    double sum = 0.0, minV = 0.0, maxV = 0.0;
};

/**
 * Log2-bucketed histogram for long-tailed quantities (latencies,
 * queue residencies): bucket b counts samples v with
 * floor(v) in [2^(b-1), 2^b), bucket 0 counts v < 1.  Needs no
 * a-priori range, never loses a sample, and covers the full uint64
 * dynamic range in 65 counters.  Running count/sum/min/max are exact;
 * quantiles interpolate within the covering bucket.
 */
class Histogram : public StatBase
{
  public:
    static constexpr std::size_t kNumBuckets = 65;

    void sample(double v);

    std::uint64_t samples() const { return count; }
    double mean() const { return count ? sum / count : 0.0; }
    double minValue() const { return count ? minV : 0.0; }
    double maxValue() const { return count ? maxV : 0.0; }
    const std::vector<std::uint64_t> &bucketCounts() const
    {
        return buckets;
    }

    /** Inclusive lower edge of bucket @p b (0, 1, 2, 4, 8, ...). */
    static double bucketLo(std::size_t b);
    /** Exclusive upper edge of bucket @p b (1, 2, 4, 8, 16, ...). */
    static double bucketHi(std::size_t b);

    /** Approximate p-quantile (0..1), linearly interpolated inside
     *  the covering bucket. */
    double quantile(double q) const;

    void reset() override;
    std::string render() const override;
    std::string renderJson() const override;

  private:
    std::vector<std::uint64_t> buckets =
        std::vector<std::uint64_t>(kNumBuckets, 0);
    std::uint64_t count = 0;
    double sum = 0.0, minV = 0.0, maxV = 0.0;
};

/**
 * Name -> stat registry.  Does not own the stats; components keep
 * their stat members and register pointers, matching gem5's model.
 */
class StatRegistry
{
  public:
    /** Register @p stat under @p name; duplicate names are fatal. */
    void add(const std::string &name, StatBase *stat);

    /** Look up a stat (nullptr if absent). */
    StatBase *find(const std::string &name) const;

    /** Reset every registered stat. */
    void resetAll();

    /** Dump "name value" lines, sorted by name. */
    void dump(std::ostream &os) const;

    /** Dump a JSON object {"name": value, ...}, sorted by name. */
    void dumpJson(std::ostream &os, int indent = 0) const;

    std::size_t size() const { return stats.size(); }

  private:
    std::map<std::string, StatBase *> stats;
};

} // namespace refsched

#endif // REFSCHED_SIMCORE_STATS_HH
