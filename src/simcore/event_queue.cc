#include "simcore/event_queue.hh"

#include "simcore/logging.hh"

namespace refsched
{

std::uint32_t
EventQueue::allocSlot()
{
    if (freeHead != kNoSlot) {
        const std::uint32_t idx = freeHead;
        freeHead = slotAt(idx).nextFree;
        return idx;
    }
    if (slotCount % kSlabSize == 0)
        slabs.push_back(std::make_unique<Slot[]>(kSlabSize));
    return slotCount++;
}

EventHandle
EventQueue::schedule(Tick when, Callback cb, EventPriority prio)
{
    REFSCHED_ASSERT(when >= curTick, "event scheduled in the past: ",
                    when, " < ", curTick);
    const std::uint32_t idx = allocSlot();
    Slot &s = slotAt(idx);
    s.cb = std::move(cb);
    heapPush(Entry{when,
                   (static_cast<std::uint64_t>(prio) << kPrioShift)
                       | nextSeq++,
                   idx, s.gen});
    ++live;
    return EventHandle(this, idx, s.gen);
}

EventHandle
EventQueue::schedule(Tick when, Callee &callee, std::uint64_t arg0,
                     std::uint64_t arg1, EventPriority prio)
{
    REFSCHED_ASSERT(when >= curTick, "event scheduled in the past: ",
                    when, " < ", curTick);
    const std::uint32_t idx = allocSlot();
    Slot &s = slotAt(idx);
    s.callee = &callee;
    s.arg0 = arg0;
    s.arg1 = arg1;
    heapPush(Entry{when,
                   (static_cast<std::uint64_t>(prio) << kPrioShift)
                       | nextSeq++,
                   idx, s.gen});
    ++live;
    return EventHandle(this, idx, s.gen);
}

void
EventQueue::cancelSlot(std::uint32_t slot, std::uint32_t gen)
{
    if (slotAt(slot).gen != gen)
        return;  // already fired or cancelled
    retireSlot(slot);
    --live;
}

void
EventQueue::skipDead() const
{
    while (!heap_.empty() && !entryLive(heap_.front()))
        heapPopTop();
}

bool
EventQueue::empty() const
{
    return live == 0;
}

Tick
EventQueue::nextEventTick() const
{
    skipDead();
    return heap_.empty() ? kMaxTick : heap_.front().when;
}

void
EventQueue::execEntry(const Entry &e)
{
    curTick = e.when;
    // Move the payload out and retire the slot before invoking: the
    // callback may schedule new events (possibly reusing this very
    // slot) or cancel its own, already-dead handle harmlessly.
    Slot &s = slotAt(e.slot);
    if (Callee *callee = s.callee) {
        const std::uint64_t a0 = s.arg0;
        const std::uint64_t a1 = s.arg1;
        retireSlot(e.slot);
        --live;
        ++executed;
        callee->fire(curTick, a0, a1);
        return;
    }
    Callback cb = std::move(s.cb);
    retireSlot(e.slot);
    --live;
    ++executed;
    cb();
}

bool
EventQueue::runOne()
{
    skipDead();
    if (heap_.empty())
        return false;
    const Entry e = heap_.front();
    heapPopTop();
    execEntry(e);
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t count = 0;
    while (true) {
        skipDead();
        if (heap_.empty() || heap_.front().when > limit)
            break;
        const Entry e = heap_.front();
        heapPopTop();
        execEntry(e);
        ++count;
    }
    if (curTick < limit)
        curTick = limit;
    return count;
}

} // namespace refsched
