#include "simcore/event_queue.hh"

#include "simcore/logging.hh"

namespace refsched
{

EventHandle
EventQueue::schedule(Tick when, Callback cb, EventPriority prio)
{
    REFSCHED_ASSERT(when >= curTick, "event scheduled in the past: ",
                    when, " < ", curTick);
    auto alive = std::make_shared<bool>(true);
    EventHandle handle;
    handle.alive = alive;
    pq.push(Record{when, static_cast<int>(prio), nextSeq++,
                   std::move(cb), std::move(alive)});
    return handle;
}

void
EventQueue::skipDead() const
{
    while (!pq.empty() && !*pq.top().alive)
        pq.pop();
}

bool
EventQueue::empty() const
{
    skipDead();
    return pq.empty();
}

Tick
EventQueue::nextEventTick() const
{
    skipDead();
    return pq.empty() ? kMaxTick : pq.top().when;
}

bool
EventQueue::runOne()
{
    skipDead();
    if (pq.empty())
        return false;
    // Copy out and pop before invoking: the callback may schedule
    // new events (mutating pq) or even cancel itself harmlessly.
    Record rec = pq.top();
    pq.pop();
    curTick = rec.when;
    *rec.alive = false;
    ++executed;
    rec.cb();
    return true;
}

std::uint64_t
EventQueue::runUntil(Tick limit)
{
    std::uint64_t count = 0;
    while (true) {
        skipDead();
        if (pq.empty() || pq.top().when > limit)
            break;
        runOne();
        ++count;
    }
    if (curTick < limit)
        curTick = limit;
    return count;
}

} // namespace refsched
