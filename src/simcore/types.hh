/**
 * @file
 * Fundamental simulation types shared by every refsched module.
 *
 * The simulator measures time in integer picoseconds ("ticks"), which
 * is fine-grained enough to express both the 3.2 GHz CPU clock
 * (312.5 ps -> we round the CPU period to an integral number of ticks
 * by doubling: see SimClock) and the DDR3-1600 memory clock (1250 ps)
 * without accumulating rounding error over a 64 ms refresh window.
 */

#ifndef REFSCHED_SIMCORE_TYPES_HH
#define REFSCHED_SIMCORE_TYPES_HH

#include <cstdint>
#include <limits>

namespace refsched
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A count of clock cycles of some domain (CPU or DRAM). */
using Cycles = std::uint64_t;

/** Physical or virtual byte address in the simulated machine. */
using Addr = std::uint64_t;

/** OS process identifier. */
using Pid = std::int32_t;

/** Sentinel for "no tick scheduled". */
constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

/** Unit helpers, all expressed in ticks (picoseconds). */
constexpr Tick kPsPerNs = 1000ULL;
constexpr Tick kPsPerUs = 1000ULL * kPsPerNs;
constexpr Tick kPsPerMs = 1000ULL * kPsPerUs;
constexpr Tick kPsPerSec = 1000ULL * kPsPerMs;

constexpr Tick
nanoseconds(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(kPsPerNs));
}

constexpr Tick
microseconds(double us)
{
    return static_cast<Tick>(us * static_cast<double>(kPsPerUs));
}

constexpr Tick
milliseconds(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(kPsPerMs));
}

/** Size helpers. */
constexpr std::uint64_t kKiB = 1024ULL;
constexpr std::uint64_t kMiB = 1024ULL * kKiB;
constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/** Returns true iff @p v is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power-of-two value. */
constexpr unsigned
log2Exact(std::uint64_t v)
{
    unsigned n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

/** Integer ceiling division. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/**
 * A fixed-frequency clock domain: converts between cycles and ticks.
 */
class ClockDomain
{
  public:
    explicit ClockDomain(Tick period_ps) : period(period_ps) {}

    Tick periodTicks() const { return period; }

    Tick cyclesToTicks(Cycles c) const { return c * period; }

    Cycles ticksToCycles(Tick t) const { return t / period; }

    /** The first edge at or after @p t. */
    Tick
    nextEdgeAtOrAfter(Tick t) const
    {
        return divCeil(t, period) * period;
    }

    double frequencyGHz() const
    {
        return 1000.0 / static_cast<double>(period);
    }

  private:
    Tick period;
};

} // namespace refsched

#endif // REFSCHED_SIMCORE_TYPES_HH
