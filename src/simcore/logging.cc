#include "simcore/logging.hh"

#include <cstdio>

namespace refsched
{

namespace
{
LogLevel gLevel = LogLevel::Warn;
} // namespace

LogLevel
logLevel()
{
    return gLevel;
}

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

namespace detail
{

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

} // namespace detail

} // namespace refsched
