#include "simcore/shard_kernel.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace refsched
{

namespace
{

using ProfClock = std::chrono::steady_clock;

double
profMs(ProfClock::time_point from, ProfClock::time_point to)
{
    return std::chrono::duration<double, std::milli>(to - from)
        .count();
}

} // namespace

ShardKernel::ShardKernel(EventQueue &main, int lanes, Tick epoch,
                         int clusterLanes, Tick alignQuantum)
    : main_(main), epoch_(epoch), align_(alignQuantum)
{
    REFSCHED_ASSERT(lanes >= 0, "negative channel lane count");
    REFSCHED_ASSERT(clusterLanes >= 0, "negative cluster lane count");
    REFSCHED_ASSERT(lanes + clusterLanes > 0,
                    "sharded kernel needs >= 1 lane");
    REFSCHED_ASSERT(epoch > 0, "shard epoch must be positive");
    REFSCHED_ASSERT(align_ >= 0, "negative alignment quantum");
    for (int i = 0; i < lanes; ++i)
        lanes_.push_back(std::make_unique<EventQueue>());
    for (int i = 0; i < clusterLanes; ++i)
        clusterLanes_.push_back(std::make_unique<EventQueue>());
    for (auto &l : lanes_)
        allLanes_.push_back(l.get());
    for (auto &l : clusterLanes_)
        allLanes_.push_back(l.get());
}

ShardKernel::~ShardKernel()
{
    stopWorkers();
}

void
ShardKernel::setWorkers(int n)
{
    REFSCHED_ASSERT(threads_.empty(),
                    "setWorkers must precede the first runUntil");
    workers_ = std::clamp(n, 1, totalLaneCount());
}

void
ShardKernel::enableProfile()
{
    REFSCHED_ASSERT(threads_.empty(),
                    "enableProfile must precede the first runUntil");
    profile_ = true;
    prof_.laneBusyMs.assign(
        static_cast<std::size_t>(totalLaneCount()), 0.0);
}

void
ShardKernel::startWorkers()
{
    if (workers_ <= 1 || !threads_.empty())
        return;
    if (profile_) {
        prof_.workerBusyMs.assign(
            static_cast<std::size_t>(workers_), 0.0);
        prof_.workerWaitMs.assign(
            static_cast<std::size_t>(workers_), 0.0);
        workerFinish_.assign(static_cast<std::size_t>(workers_),
                             ProfClock::time_point{});
    }
    threads_.reserve(static_cast<std::size_t>(workers_));
    for (int w = 0; w < workers_; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

void
ShardKernel::stopWorkers()
{
    if (threads_.empty())
        return;
    {
        std::lock_guard<std::mutex> lk(mu_);
        quit_ = true;
    }
    cvStart_.notify_all();
    for (auto &t : threads_)
        t.join();
    threads_.clear();
}

void
ShardKernel::runLaneRange(int first, int last)
{
    for (int i = first; i < last; ++i)
        allLanes_[static_cast<std::size_t>(i)]->runUntil(target_);
}

void
ShardKernel::workerLoop(int workerId)
{
    // Static block partition of the lanes over the workers: lane
    // ownership never changes, so a lane's events always run on the
    // same thread and successive windows of one lane are ordered by
    // the barrier alone.
    const int lanes = totalLaneCount();
    const int per = (lanes + workers_ - 1) / workers_;
    const int first = std::min(workerId * per, lanes);
    const int last = std::min(first + per, lanes);

    std::uint64_t seen = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lk(mu_);
            cvStart_.wait(lk,
                          [&] { return quit_ || gen_ != seen; });
            if (quit_)
                return;
            seen = gen_;
        }
        if (profile_) {
            const auto b0 = ProfClock::now();
            runLaneRange(first, last);
            const auto b1 = ProfClock::now();
            prof_.workerBusyMs[static_cast<std::size_t>(workerId)] +=
                profMs(b0, b1);
            workerFinish_[static_cast<std::size_t>(workerId)] = b1;
        } else {
            runLaneRange(first, last);
        }
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (--pending_ == 0)
                cvDone_.notify_one();
        }
    }
}

std::uint64_t
ShardKernel::runUntil(Tick limit)
{
    startWorkers();

    const std::uint64_t before = executedTotal();
    do {
        // Window [t, end); `end - 1` is inclusive for runUntil.  The
        // final window absorbs the ragged remainder so every lane
        // finishes exactly at `limit` (events AT limit included,
        // matching EventQueue::runUntil's contract).
        const Tick t = main_.now();
        Tick end = std::min(t + epoch_, limit + 1);
        if (align_ > 0) {
            // Clamp to the smallest multiple of align_ that still
            // yields a non-empty window (end >= t + 2, since the
            // previous window already ran events at tick t): OS
            // quantum expiries at n*align_ then run in phase A with
            // every lane caught up through n*align_ - 1.
            const Tick m = ((t + 1) / align_ + 1) * align_;
            end = std::min(end, std::min(m, limit + 1));
        }
        target_ = end - 1;

        ProfClock::time_point t0;
        if (profile_)
            t0 = ProfClock::now();

        // Phase A: the main lane, alone.
        main_.runUntil(target_);

        ProfClock::time_point t1;
        if (profile_)
            t1 = ProfClock::now();

        // Phase A'/B: cluster and channel lanes, mutually
        // independent.
        if (threads_.empty()) {
            if (profile_) {
                for (int i = 0; i < totalLaneCount(); ++i) {
                    const auto l0 = ProfClock::now();
                    allLanes_[static_cast<std::size_t>(i)]->runUntil(
                        target_);
                    prof_.laneBusyMs[static_cast<std::size_t>(i)] +=
                        profMs(l0, ProfClock::now());
                }
            } else {
                runLaneRange(0, totalLaneCount());
            }
        } else {
            {
                std::lock_guard<std::mutex> lk(mu_);
                pending_ = workers_;
                ++gen_;
            }
            cvStart_.notify_all();
            std::unique_lock<std::mutex> lk(mu_);
            cvDone_.wait(lk, [&] { return pending_ == 0; });
            if (profile_) {
                // pending_ == 0 under mu_ happens-after every
                // worker's finish-timestamp write; the gap from a
                // worker's finish to now is its barrier wait.
                const auto tb = ProfClock::now();
                for (int w = 0; w < workers_; ++w) {
                    const double wait = profMs(
                        workerFinish_[static_cast<std::size_t>(w)],
                        tb);
                    prof_.workerWaitMs[static_cast<std::size_t>(w)] +=
                        std::max(wait, 0.0);
                }
                ++prof_.barriers;
            }
        }

        ProfClock::time_point t2;
        if (profile_)
            t2 = ProfClock::now();

        // Phase C: seal the window; cross-lane deliveries land at
        // >= end, i.e. inside the next window.
        for (const auto &hook : boundaryHooks_)
            hook(end);

        if (profile_) {
            const auto t3 = ProfClock::now();
            prof_.mainMs += profMs(t0, t1);
            prof_.parallelMs += profMs(t1, t2);
            prof_.boundaryMs += profMs(t2, t3);
            ++prof_.windows;
        }
    } while (main_.now() < limit);
    return executedTotal() - before;
}

std::uint64_t
ShardKernel::executedTotal() const
{
    std::uint64_t total = main_.executedCount();
    for (const auto &l : allLanes_)
        total += l->executedCount();
    return total;
}

namespace
{

void
jsonDoubleArray(std::ostream &os, const std::vector<double> &xs)
{
    os << '[';
    for (std::size_t i = 0; i < xs.size(); ++i)
        os << (i ? ", " : "") << xs[i];
    os << ']';
}

/** max/mean over @p xs; 1 for empty or all-zero partitions. */
double
imbalanceRatio(const std::vector<double> &xs)
{
    if (xs.empty())
        return 1.0;
    double sum = 0.0;
    double mx = 0.0;
    for (double x : xs) {
        sum += x;
        mx = std::max(mx, x);
    }
    if (sum <= 0.0)
        return 1.0;
    return mx / (sum / static_cast<double>(xs.size()));
}

} // namespace

void
ShardKernel::renderProfileJson(std::ostream &os) const
{
    // Threaded mode times worker ranges, sequential mode times
    // individual lanes; the imbalance ratio is over whichever
    // partition actually ran the lanes.
    const bool threaded = !prof_.workerBusyMs.empty();
    os << "{\"windows\": " << prof_.windows
       << ", \"barriers\": " << prof_.barriers
       << ", \"mainMs\": " << prof_.mainMs
       << ", \"parallelMs\": " << prof_.parallelMs
       << ", \"boundaryMs\": " << prof_.boundaryMs;
    os << ", \"laneEvents\": [";
    for (int i = 0; i < totalLaneCount(); ++i)
        os << (i ? ", " : "") << laneExecuted(i);
    os << ']';
    os << ", \"laneBusyMs\": ";
    jsonDoubleArray(os, prof_.laneBusyMs);
    os << ", \"workerBusyMs\": ";
    jsonDoubleArray(os, prof_.workerBusyMs);
    os << ", \"workerWaitMs\": ";
    jsonDoubleArray(os, prof_.workerWaitMs);
    os << ", \"imbalance\": "
       << imbalanceRatio(threaded ? prof_.workerBusyMs
                                  : prof_.laneBusyMs)
       << '}';
}

} // namespace refsched
