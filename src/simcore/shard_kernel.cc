#include "simcore/shard_kernel.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace refsched
{

ShardKernel::ShardKernel(EventQueue &main, int lanes, Tick epoch,
                         int clusterLanes, Tick alignQuantum)
    : main_(main), epoch_(epoch), align_(alignQuantum)
{
    REFSCHED_ASSERT(lanes >= 0, "negative channel lane count");
    REFSCHED_ASSERT(clusterLanes >= 0, "negative cluster lane count");
    REFSCHED_ASSERT(lanes + clusterLanes > 0,
                    "sharded kernel needs >= 1 lane");
    REFSCHED_ASSERT(epoch > 0, "shard epoch must be positive");
    REFSCHED_ASSERT(align_ >= 0, "negative alignment quantum");
    for (int i = 0; i < lanes; ++i)
        lanes_.push_back(std::make_unique<EventQueue>());
    for (int i = 0; i < clusterLanes; ++i)
        clusterLanes_.push_back(std::make_unique<EventQueue>());
    for (auto &l : lanes_)
        allLanes_.push_back(l.get());
    for (auto &l : clusterLanes_)
        allLanes_.push_back(l.get());
}

ShardKernel::~ShardKernel()
{
    stopWorkers();
}

void
ShardKernel::setWorkers(int n)
{
    REFSCHED_ASSERT(threads_.empty(),
                    "setWorkers must precede the first runUntil");
    workers_ = std::clamp(n, 1, totalLaneCount());
}

void
ShardKernel::startWorkers()
{
    if (workers_ <= 1 || !threads_.empty())
        return;
    threads_.reserve(static_cast<std::size_t>(workers_));
    for (int w = 0; w < workers_; ++w)
        threads_.emplace_back([this, w] { workerLoop(w); });
}

void
ShardKernel::stopWorkers()
{
    if (threads_.empty())
        return;
    {
        std::lock_guard<std::mutex> lk(mu_);
        quit_ = true;
    }
    cvStart_.notify_all();
    for (auto &t : threads_)
        t.join();
    threads_.clear();
}

void
ShardKernel::runLaneRange(int first, int last)
{
    for (int i = first; i < last; ++i)
        allLanes_[static_cast<std::size_t>(i)]->runUntil(target_);
}

void
ShardKernel::workerLoop(int workerId)
{
    // Static block partition of the lanes over the workers: lane
    // ownership never changes, so a lane's events always run on the
    // same thread and successive windows of one lane are ordered by
    // the barrier alone.
    const int lanes = totalLaneCount();
    const int per = (lanes + workers_ - 1) / workers_;
    const int first = std::min(workerId * per, lanes);
    const int last = std::min(first + per, lanes);

    std::uint64_t seen = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lk(mu_);
            cvStart_.wait(lk,
                          [&] { return quit_ || gen_ != seen; });
            if (quit_)
                return;
            seen = gen_;
        }
        runLaneRange(first, last);
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (--pending_ == 0)
                cvDone_.notify_one();
        }
    }
}

std::uint64_t
ShardKernel::runUntil(Tick limit)
{
    startWorkers();

    const std::uint64_t before = executedTotal();
    do {
        // Window [t, end); `end - 1` is inclusive for runUntil.  The
        // final window absorbs the ragged remainder so every lane
        // finishes exactly at `limit` (events AT limit included,
        // matching EventQueue::runUntil's contract).
        const Tick t = main_.now();
        Tick end = std::min(t + epoch_, limit + 1);
        if (align_ > 0) {
            // Clamp to the smallest multiple of align_ that still
            // yields a non-empty window (end >= t + 2, since the
            // previous window already ran events at tick t): OS
            // quantum expiries at n*align_ then run in phase A with
            // every lane caught up through n*align_ - 1.
            const Tick m = ((t + 1) / align_ + 1) * align_;
            end = std::min(end, std::min(m, limit + 1));
        }
        target_ = end - 1;

        // Phase A: the main lane, alone.
        main_.runUntil(target_);

        // Phase A'/B: cluster and channel lanes, mutually
        // independent.
        if (threads_.empty()) {
            runLaneRange(0, totalLaneCount());
        } else {
            {
                std::lock_guard<std::mutex> lk(mu_);
                pending_ = workers_;
                ++gen_;
            }
            cvStart_.notify_all();
            std::unique_lock<std::mutex> lk(mu_);
            cvDone_.wait(lk, [&] { return pending_ == 0; });
        }

        // Phase C: seal the window; cross-lane deliveries land at
        // >= end, i.e. inside the next window.
        for (const auto &hook : boundaryHooks_)
            hook(end);
    } while (main_.now() < limit);
    return executedTotal() - before;
}

std::uint64_t
ShardKernel::executedTotal() const
{
    std::uint64_t total = main_.executedCount();
    for (const auto &l : allLanes_)
        total += l->executedCount();
    return total;
}

} // namespace refsched
