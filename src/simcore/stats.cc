#include "simcore/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "simcore/logging.hh"

namespace refsched
{

namespace
{

/** Shortest round-trip double rendering (matches operator<<). */
std::string
jsonNumber(double v)
{
    std::ostringstream os;
    os << v;
    const std::string s = os.str();
    // JSON has no inf/nan literals; they only arise from broken
    // inputs, but emit null rather than corrupt the document.
    if (s.find("inf") != std::string::npos
        || s.find("nan") != std::string::npos)
        return "null";
    return s;
}

} // namespace

std::string
Scalar::render() const
{
    std::ostringstream os;
    os << val;
    return os.str();
}

std::string
Scalar::renderJson() const
{
    return jsonNumber(val);
}

std::string
Average::render() const
{
    std::ostringstream os;
    os << mean() << " (" << count << " samples)";
    return os.str();
}

std::string
Average::renderJson() const
{
    std::ostringstream os;
    os << "{\"mean\": " << jsonNumber(mean()) << ", \"count\": "
       << count << ", \"sum\": " << jsonNumber(sum) << "}";
    return os.str();
}

Distribution::Distribution(double lo_, double hi_, std::size_t n)
{
    init(lo_, hi_, n);
}

void
Distribution::init(double lo_, double hi_, std::size_t n)
{
    REFSCHED_ASSERT(hi_ > lo_ && n > 0, "bad distribution bounds");
    lo = lo_;
    hi = hi_;
    width = (hi - lo) / static_cast<double>(n);
    buckets.assign(n, 0);
    reset();
}

void
Distribution::sample(double v)
{
    if (count == 0) {
        minV = maxV = v;
    } else {
        minV = std::min(minV, v);
        maxV = std::max(maxV, v);
    }
    sum += v;
    ++count;

    if (v < lo) {
        ++underflow;
    } else if (v >= hi) {
        ++overflow;
    } else {
        auto idx = static_cast<std::size_t>((v - lo) / width);
        if (idx >= buckets.size())
            idx = buckets.size() - 1;
        ++buckets[idx];
    }
}

double
Distribution::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(count));
    std::uint64_t seen = underflow;
    if (seen >= target)
        return lo;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen >= target)
            return lo + (static_cast<double>(i) + 0.5) * width;
    }
    return hi;
}

void
Distribution::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    underflow = overflow = 0;
    count = 0;
    sum = 0.0;
    minV = maxV = 0.0;
}

std::string
Distribution::render() const
{
    std::ostringstream os;
    os << "mean=" << mean() << " min=" << minValue()
       << " max=" << maxValue() << " n=" << count;
    return os.str();
}

std::string
Distribution::renderJson() const
{
    std::ostringstream os;
    os << "{\"mean\": " << jsonNumber(mean())
       << ", \"min\": " << jsonNumber(minValue())
       << ", \"max\": " << jsonNumber(maxValue())
       << ", \"count\": " << count
       << ", \"lo\": " << jsonNumber(lo)
       << ", \"hi\": " << jsonNumber(hi)
       << ", \"underflow\": " << underflow
       << ", \"overflow\": " << overflow << ", \"buckets\": [";
    for (std::size_t i = 0; i < buckets.size(); ++i)
        os << (i ? ", " : "") << buckets[i];
    os << "]}";
    return os.str();
}

void
Histogram::sample(double v)
{
    if (count == 0) {
        minV = maxV = v;
    } else {
        minV = std::min(minV, v);
        maxV = std::max(maxV, v);
    }
    sum += v;
    ++count;

    std::size_t b = 0;
    if (v >= 1.0) {
        const auto iv = v >= 1.8446744073709552e19
            ? ~std::uint64_t{0}
            : static_cast<std::uint64_t>(v);
        while ((std::uint64_t{1} << b) <= iv && b < kNumBuckets - 1)
            ++b;
    }
    ++buckets[b];
}

double
Histogram::bucketLo(std::size_t b)
{
    if (b == 0)
        return 0.0;
    return std::ldexp(1.0, static_cast<int>(b) - 1);
}

double
Histogram::bucketHi(std::size_t b)
{
    if (b == 0)
        return 1.0;
    return std::ldexp(1.0, static_cast<int>(b));
}

double
Histogram::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // 1-based rank of the sample the quantile falls on.  ceil() so
    // q=1 selects the last sample exactly and a tail quantile of a
    // tiny population (q=0.999, count=1) still selects a sample
    // instead of truncating to rank 0.
    const auto target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               std::ceil(q * static_cast<double>(count))));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        if (buckets[b] == 0)
            continue;
        if (seen + buckets[b] >= target) {
            const double frac = static_cast<double>(target - seen)
                / static_cast<double>(buckets[b]);
            // Interpolate inside the covering bucket, but never
            // outside the observed extrema: the log2 edges can sit a
            // factor of two away from any real sample, and the top
            // (overflow) bucket has no meaningful upper edge at all
            // -- without the clamp a p999 landing there would report
            // a latency above the maximum sample ever recorded.
            const bool overflowBucket = b == kNumBuckets - 1;
            const double lo = std::max(bucketLo(b), minV);
            const double hi = overflowBucket
                ? maxV
                : std::min(bucketHi(b), maxV);
            const double v = lo + frac * (hi - lo);
            return std::clamp(v, minV, maxV);
        }
        seen += buckets[b];
    }
    return maxV;
}

void
Histogram::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    count = 0;
    sum = 0.0;
    minV = maxV = 0.0;
}

std::string
Histogram::render() const
{
    std::ostringstream os;
    os << "mean=" << mean() << " p50=" << quantile(0.5)
       << " p99=" << quantile(0.99) << " min=" << minValue()
       << " max=" << maxValue() << " n=" << count;
    return os.str();
}

std::string
Histogram::renderJson() const
{
    std::ostringstream os;
    os << "{\"mean\": " << jsonNumber(mean())
       << ", \"min\": " << jsonNumber(minValue())
       << ", \"max\": " << jsonNumber(maxValue())
       << ", \"count\": " << count
       << ", \"p50\": " << jsonNumber(quantile(0.5))
       << ", \"p95\": " << jsonNumber(quantile(0.95))
       << ", \"p99\": " << jsonNumber(quantile(0.99))
       << ", \"p999\": " << jsonNumber(quantile(0.999))
       << ", \"log2Buckets\": [";
    // Sparse rendering: [bucketIndex, count] pairs for occupied
    // buckets only (65 mostly-zero counters would dominate a dump).
    bool first = true;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        if (buckets[b] == 0)
            continue;
        os << (first ? "" : ", ") << "[" << b << ", " << buckets[b]
           << "]";
        first = false;
    }
    os << "]}";
    return os.str();
}

void
StatRegistry::add(const std::string &name, StatBase *stat)
{
    REFSCHED_ASSERT(stat != nullptr, "null stat: ", name);
    auto [it, inserted] = stats.emplace(name, stat);
    (void)it;
    if (!inserted)
        fatal("duplicate stat name: ", name);
}

StatBase *
StatRegistry::find(const std::string &name) const
{
    auto it = stats.find(name);
    return it == stats.end() ? nullptr : it->second;
}

void
StatRegistry::resetAll()
{
    for (auto &[name, stat] : stats)
        stat->reset();
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, stat] : stats)
        os << name << " " << stat->render() << "\n";
}

void
StatRegistry::dumpJson(std::ostream &os, int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    os << "{";
    bool first = true;
    for (const auto &[name, stat] : stats) {
        os << (first ? "" : ",") << "\n" << pad << "  \"" << name
           << "\": " << stat->renderJson();
        first = false;
    }
    if (!first)
        os << "\n" << pad;
    os << "}";
}

} // namespace refsched
