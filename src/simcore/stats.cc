#include "simcore/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "simcore/logging.hh"

namespace refsched
{

std::string
Scalar::render() const
{
    std::ostringstream os;
    os << val;
    return os.str();
}

std::string
Average::render() const
{
    std::ostringstream os;
    os << mean() << " (" << count << " samples)";
    return os.str();
}

Distribution::Distribution(double lo_, double hi_, std::size_t n)
{
    init(lo_, hi_, n);
}

void
Distribution::init(double lo_, double hi_, std::size_t n)
{
    REFSCHED_ASSERT(hi_ > lo_ && n > 0, "bad distribution bounds");
    lo = lo_;
    hi = hi_;
    width = (hi - lo) / static_cast<double>(n);
    buckets.assign(n, 0);
    reset();
}

void
Distribution::sample(double v)
{
    if (count == 0) {
        minV = maxV = v;
    } else {
        minV = std::min(minV, v);
        maxV = std::max(maxV, v);
    }
    sum += v;
    ++count;

    if (v < lo) {
        ++underflow;
    } else if (v >= hi) {
        ++overflow;
    } else {
        auto idx = static_cast<std::size_t>((v - lo) / width);
        if (idx >= buckets.size())
            idx = buckets.size() - 1;
        ++buckets[idx];
    }
}

double
Distribution::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(count));
    std::uint64_t seen = underflow;
    if (seen >= target)
        return lo;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen >= target)
            return lo + (static_cast<double>(i) + 0.5) * width;
    }
    return hi;
}

void
Distribution::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    underflow = overflow = 0;
    count = 0;
    sum = 0.0;
    minV = maxV = 0.0;
}

std::string
Distribution::render() const
{
    std::ostringstream os;
    os << "mean=" << mean() << " min=" << minValue()
       << " max=" << maxValue() << " n=" << count;
    return os.str();
}

void
StatRegistry::add(const std::string &name, StatBase *stat)
{
    REFSCHED_ASSERT(stat != nullptr, "null stat: ", name);
    auto [it, inserted] = stats.emplace(name, stat);
    (void)it;
    if (!inserted)
        fatal("duplicate stat name: ", name);
}

StatBase *
StatRegistry::find(const std::string &name) const
{
    auto it = stats.find(name);
    return it == stats.end() ? nullptr : it->second;
}

void
StatRegistry::resetAll()
{
    for (auto &[name, stat] : stats)
        stat->reset();
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, stat] : stats)
        os << name << " " << stat->render() << "\n";
}

} // namespace refsched
