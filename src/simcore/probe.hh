/**
 * @file
 * Zero-cost-when-disabled instrumentation hooks.
 *
 * Simulation components (memory controller, scheduler, buddy
 * allocator) publish their externally-observable decisions through a
 * Probe pointer.  When REFSCHED_VALIDATE is compiled out (cmake
 * -DREFSCHED_VALIDATE=OFF), every emission site collapses to nothing
 * and the components carry only an unused pointer; when compiled in
 * but no probe is attached, each site costs one null check.
 *
 * Consumers live in src/validate/: invariant checkers (JEDEC timing
 * auditor, refresh-window monitor, OS auditor) and the golden-trace
 * recorder used by the differential harness.
 */

#ifndef REFSCHED_SIMCORE_PROBE_HH
#define REFSCHED_SIMCORE_PROBE_HH

#include <cstdint>
#include <vector>

#include "simcore/types.hh"

#ifndef REFSCHED_VALIDATE
#define REFSCHED_VALIDATE 1
#endif

namespace refsched::validate
{

/** True when the hook layer is compiled into this build. */
constexpr bool kValidateCompiledIn = REFSCHED_VALIDATE != 0;

/** DRAM command classes as seen on the simulated command bus. */
enum class DramOp : std::uint8_t {
    Act,
    Read,
    Write,
    Pre,
    RefPerBank,
    RefAllBank,
    /** A per-bank refresh interrupted by Refresh Pausing. */
    RefPause,
};

/**
 * One issued DRAM command.  Events are emitted in issue order; the
 * struct describes the command as the controller issued it, before
 * its side effects are applied to the bank model.
 */
struct DramCmdEvent
{
    Tick tick = 0;
    DramOp op = DramOp::Act;
    int channel = 0;
    int rank = 0;
    /** Bank within the rank; -1 for all-bank refresh. */
    int bank = 0;
    /** Act/Read/Write/Pre: the row involved.  RefPerBank/RefAllBank:
     *  rows refreshed by this command.  RefPause: rows rolled back
     *  (still owed by a later resume command). */
    std::uint64_t row = 0;
    /** RefPerBank/RefAllBank/RefPause: the tick until which the
     *  refreshed bank(s) stay busy. */
    Tick busyUntil = 0;
};

/** How pickNextTask arrived at its choice (Algorithm 3). */
enum class PickKind : std::uint8_t {
    /** Refresh-aware scheduling off, or no bank under refresh:
     *  leftmost (minimum-vruntime) task. */
    Baseline,
    /** A clean task was found within the eta_thresh walk. */
    Clean,
    /** No clean task; best-effort minimum-residency fallback. */
    BestEffort,
    /** No clean task and best-effort disabled: leftmost task. */
    Fallback,
    /** Empty runqueue. */
    Idle,
};

/** One runqueue entry examined during the bounded pick walk. */
struct SchedCandidate
{
    Pid pid = -1;
    Tick vruntime = 0;
    /** No resident pages in any bank currently under refresh. */
    bool clean = false;
    /** Fraction of the task's resident pages in refreshing banks. */
    double resident = 0.0;
};

/**
 * One pick_next_task decision.  The pointer members reference
 * caller-owned storage valid only for the duration of the callback.
 */
struct SchedPickEvent
{
    Tick tick = 0;
    int cpu = 0;
    PickKind kind = PickKind::Baseline;
    /** Chosen task, or -1 when idle. */
    Pid chosen = -1;
    int etaThresh = 0;
    bool bestEffort = false;
    /** Scheduler quantum length (ticks); the picked task runs until
     *  tick + quantum unless it blocks.  0 when unknown. */
    Tick quantum = 0;
    /** Global bank ids under refresh at pick time (may be null for
     *  Baseline/Idle picks). */
    const std::vector<int> *refreshBanks = nullptr;
    /** Entries examined, in tree order, including the chosen clean
     *  task when one was found (null for Baseline/Idle picks). */
    const std::vector<SchedCandidate> *candidates = nullptr;
};

/** A task entering or leaving a per-CPU runqueue. */
struct RqEvent
{
    Tick tick = 0;
    int cpu = 0;
    Pid pid = -1;
    /** The key vruntime at enqueue/dequeue time. */
    Tick vruntime = 0;
};

/** A page frame handed out by the buddy allocator. */
struct PageAllocEvent
{
    Tick tick = 0;
    /** Owning task, or -1 for anonymous allocations. */
    Pid pid = -1;
    std::uint64_t pfn = 0;
    /** True when Algorithm 2 fell back outside the bank mask. */
    bool fallback = false;
    /** The task's possible_banks_vector (indexed by global bank id);
     *  null for anonymous allocations.  Caller-owned, valid only for
     *  the duration of the callback. */
    const std::vector<bool> *allowedBanks = nullptr;
};

/** A page frame returned to the buddy allocator. */
struct PageFreeEvent
{
    Tick tick = 0;
    std::uint64_t pfn = 0;
    /** Releasing task, or -1 when the owner is unknown (legacy
     *  anonymous frees). */
    Pid pid = -1;
};

/** A task entering (spawn) or leaving (exit) the system; emitted by
 *  the scenario engine for churned tasks and by System for the
 *  initial task set. */
struct TaskLifeEvent
{
    Tick tick = 0;
    Pid pid = -1;
    /** True for a spawn, false for an exit. */
    bool spawn = false;
    /** Home CPU at spawn time; -1 for exits. */
    int cpu = -1;
};

/**
 * One page migrated by the OS after a task's possible_banks_vector
 * changed (consolidation re-binpack).  Emitted after the mapping has
 * been rewritten; the copy traffic follows as real read/write
 * requests through the memory controller.
 */
struct PageMigrateEvent
{
    Tick tick = 0;
    Pid pid = -1;
    std::uint64_t vpn = 0;
    std::uint64_t fromPfn = 0;
    std::uint64_t toPfn = 0;
    /** Cache lines copied through the controller for this page. */
    int linesCopied = 0;
    /** The task's possible_banks_vector at migration time (indexed by
     *  global bank id).  Caller-owned, valid only for the duration of
     *  the callback. */
    const std::vector<bool> *allowedBanks = nullptr;
};

/**
 * Memory-controller queue occupancy change: a request entering the
 * read/write queue or a CAS issuing (leaving the queue).  Emitted
 * after the depth change is applied, so @p readDepth / @p writeDepth
 * are the post-event occupancies.
 */
struct McQueueEvent
{
    Tick tick = 0;
    int channel = 0;
    /** True for an enqueue, false for a CAS issue (dequeue). */
    bool enqueue = false;
    /** True when the affected request is a read. */
    bool isRead = false;
    /** Read-queue depth after this event. */
    int readDepth = 0;
    /** Write-queue depth after this event. */
    int writeDepth = 0;
    /** Reads currently waiting whose target bank was observed under
     *  refresh (refresh-blocked reads). */
    int blockedReads = 0;
};

/**
 * Instrumentation sink.  All callbacks default to no-ops so a probe
 * implements only what it needs; emission sites fire in simulated
 * time order within each component.
 */
class Probe
{
  public:
    virtual ~Probe() = default;

    virtual void onDramCommand(const DramCmdEvent &) {}
    virtual void onSchedPick(const SchedPickEvent &) {}
    virtual void onRqEnqueue(const RqEvent &) {}
    virtual void onRqDequeue(const RqEvent &) {}
    virtual void onPageAlloc(const PageAllocEvent &) {}
    virtual void onPageFree(const PageFreeEvent &) {}
    virtual void onMcQueue(const McQueueEvent &) {}
    virtual void onTaskSpawn(const TaskLifeEvent &) {}
    virtual void onTaskExit(const TaskLifeEvent &) {}
    virtual void onPageMigrate(const PageMigrateEvent &) {}

    /** End of simulation: whole-run invariants (refresh-window
     *  coverage, allocator conservation) are settled here. */
    virtual void finalize(Tick /*endTick*/) {}
};

} // namespace refsched::validate

/**
 * Emission macro: REFSCHED_PROBE(probe_, onDramCommand({...})).
 * Argument expressions are not evaluated when validation is compiled
 * out, so emission sites may build event structs inline for free.
 */
#if REFSCHED_VALIDATE
#define REFSCHED_PROBE(probe, call)                                       \
    do {                                                                  \
        if (probe)                                                        \
            (probe)->call;                                                \
    } while (0)
#else
#define REFSCHED_PROBE(probe, call)                                       \
    do {                                                                  \
    } while (0)
#endif

#endif // REFSCHED_SIMCORE_PROBE_HH
