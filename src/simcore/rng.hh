/**
 * @file
 * Deterministic pseudo-random number generation for workload traces.
 *
 * We implement xoshiro256** (Blackman & Vigna) rather than using
 * std::mt19937 so that trace streams are bit-identical across
 * standard-library implementations; every experiment in the paper
 * reproduction is seeded and therefore exactly repeatable.
 */

#ifndef REFSCHED_SIMCORE_RNG_HH
#define REFSCHED_SIMCORE_RNG_HH

#include <cstdint>

namespace refsched
{

/** xoshiro256** PRNG with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
    {
        reseed(seed);
    }

    /** Re-initialise the full state from a single 64-bit seed. */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;

        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);

        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded generation; the tiny
        // modulo bias of the simple 128-bit multiply-shift is
        // irrelevant for workload synthesis, so we keep it simple.
        const unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    inRange(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability @p p. */
    bool bernoulli(double p) { return real() < p; }

    /**
     * Geometric "gap" sample: number of failures before the first
     * success with success probability @p p, clamped to @p maxGap.
     * Used for instruction gaps between memory operations.
     */
    std::uint64_t geometric(double p, std::uint64_t maxGap = 100000);

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];

    /** geometric() is called with the same p for a whole trace
     *  stream; cache log1p(-p) instead of recomputing per sample. */
    double geomP_ = -1.0;
    double geomLogQ_ = 0.0;
};

} // namespace refsched

#endif // REFSCHED_SIMCORE_RNG_HH
