/**
 * @file
 * Deterministic pseudo-random number generation for workload traces.
 *
 * We implement xoshiro256** (Blackman & Vigna) rather than using
 * std::mt19937 so that trace streams are bit-identical across
 * standard-library implementations; every experiment in the paper
 * reproduction is seeded and therefore exactly repeatable.
 */

#ifndef REFSCHED_SIMCORE_RNG_HH
#define REFSCHED_SIMCORE_RNG_HH

#include <cstdint>

namespace refsched
{

/**
 * Named stream-domain keys for CounterRng.
 *
 * Every counter-based generator in the simulator draws from
 * mix(seed, streamKey, counter); two generators sharing a key (and
 * seed) would silently consume the *same* sequence, which breaks the
 * jobs=1-vs-N and shards/lanes bit-identity the moment their draw
 * orders diverge.  Keys live here, in one place, so collisions are
 * a code-review diff rather than a debugging session.
 *
 * The stateful Rng consumers predating this scheme key themselves
 * by seed derivation instead and stay disjoint by construction:
 * initial task traces use seed*1000003 + coreIdx and scenario
 * spawns use seed*1000003 + 7919*pid with spawn pids strictly above
 * every initial task index, while the randomScenario sampler runs
 * before the simulation on its own Rng instance.  The serving layer
 * must not piggyback on any of those streams.
 */
namespace rngstream
{
/** Interarrival draws of the open-loop arrival process. */
inline constexpr std::uint64_t kArrival = 0x41525249564C5331ULL;
/** MMPP modulating-state dwell-time draws. */
inline constexpr std::uint64_t kArrivalPhase = 0x41525249564C5332ULL;
/** Serving-request target-task selection. */
inline constexpr std::uint64_t kServingTask = 0x53455256544B5331ULL;
/** Serving-request line-address selection within a footprint. */
inline constexpr std::uint64_t kServingAddr = 0x5345525641445231ULL;
} // namespace rngstream

/**
 * Counter-based (stateless) PRNG: output i is a pure function
 * mix(seed, stream, i) built from splitmix64 finalizer rounds.
 *
 * Unlike the stateful Rng, interleaving draws from two CounterRngs
 * cannot entangle their sequences -- each owns an independent
 * counter -- which is exactly the property the open-loop serving
 * layer needs to stay bit-identical across {jobs}x{shards}x{lanes}
 * partitionings regardless of who draws first.
 */
class CounterRng
{
  public:
    CounterRng(std::uint64_t seed, std::uint64_t streamKey)
        : seed_(seed), stream_(streamKey)
    {
    }

    /** Pure mixing function; the whole generator in one place. */
    static std::uint64_t mix(std::uint64_t seed, std::uint64_t stream,
                             std::uint64_t counter);

    /** Next raw 64-bit value (advances the counter). */
    std::uint64_t next() { return mix(seed_, stream_, counter_++); }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        const unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    std::uint64_t counter() const { return counter_; }
    std::uint64_t streamKey() const { return stream_; }

  private:
    std::uint64_t seed_;
    std::uint64_t stream_;
    std::uint64_t counter_ = 0;
};

/** xoshiro256** PRNG with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL)
    {
        reseed(seed);
    }

    /** Re-initialise the full state from a single 64-bit seed. */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;

        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);

        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's nearly-divisionless bounded generation; the tiny
        // modulo bias of the simple 128-bit multiply-shift is
        // irrelevant for workload synthesis, so we keep it simple.
        const unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    inRange(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability @p p. */
    bool bernoulli(double p) { return real() < p; }

    /**
     * Geometric "gap" sample: number of failures before the first
     * success with success probability @p p, clamped to @p maxGap.
     * Used for instruction gaps between memory operations.
     */
    std::uint64_t geometric(double p, std::uint64_t maxGap = 100000);

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];

    /** geometric() is called with the same p for a whole trace
     *  stream; cache log1p(-p) instead of recomputing per sample. */
    double geomP_ = -1.0;
    double geomLogQ_ = 0.0;
};

} // namespace refsched

#endif // REFSCHED_SIMCORE_RNG_HH
