/**
 * @file
 * The sharded discrete-event kernel: one event-queue lane per DRAM
 * channel beside the main lane, synchronized at epoch boundaries.
 *
 * The legacy kernel interleaves every component on one EventQueue.
 * The sharded kernel splits the event population by owner:
 *
 *   lane 0 (the "main" lane, the caller's EventQueue) -- cores, OS
 *     scheduler, caches, virtual memory: everything that shares
 *     state with the software side.
 *   lane 1..C (owned by the kernel) -- one per DRAM channel: the
 *     memory controller's per-channel clock ticks.
 *
 * Time advances in epoch windows [T, T+E).  Within a window every
 * lane runs its own events independently; anything that crosses a
 * lane boundary (a core's request entering a channel, a channel's
 * read completion returning to a core) is staged in a mailbox and
 * delivered at the next window boundary, never mid-window.  That
 * makes the window execution order unobservable: lanes may run
 * sequentially in any order or concurrently on worker threads and
 * the simulation is bit-for-bit identical, because no lane can read
 * another lane's state until the single-threaded boundary phase has
 * sealed the window.
 *
 * Window phasing (runUntil):
 *
 *   phase A  main lane runs [T, T+E) on the caller's thread, alone.
 *            Cross-lane READS that the software side performs (the
 *            refresh-aware scheduler's analytic schedule query) are
 *            safe here because channel lanes are quiescent.
 *   phase B  channel lanes run [T, T+E), mutually independent --
 *            sequentially, or in parallel when workers > 1.
 *   phase C  barrier; the boundary hook runs single-threaded and
 *            drains the mailboxes, scheduling deliveries at >= T+E.
 *
 * Exactness: a read CAS issued inside a window completes tCL+tBURST
 * later, so with E <= tCL+tBURST every staged completion already
 * lies at or beyond the next boundary and delivery never distorts
 * its tick.  Requests travelling main->channel are delivered at the
 * boundary, adding up to E of queueing latency -- the documented
 * approximation of sharded mode (shard counts never change results;
 * the epoch length is the accuracy knob).
 */

#ifndef REFSCHED_SIMCORE_SHARD_KERNEL_HH
#define REFSCHED_SIMCORE_SHARD_KERNEL_HH

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "simcore/event_queue.hh"
#include "simcore/types.hh"

namespace refsched
{

class ShardKernel
{
  public:
    /**
     * @p main   the system's main event queue (lane 0, not owned).
     * @p lanes  number of channel lanes to create.
     * @p epoch  window length E in ticks.
     */
    ShardKernel(EventQueue &main, int lanes, Tick epoch);
    ~ShardKernel();

    ShardKernel(const ShardKernel &) = delete;
    ShardKernel &operator=(const ShardKernel &) = delete;

    /** Channel lane @p i in [0, lanes). */
    EventQueue &lane(int i)
    {
        return *lanes_[static_cast<std::size_t>(i)];
    }

    /** Lane 0: the caller's main event queue. */
    EventQueue &mainLane() { return main_; }

    int laneCount() const { return static_cast<int>(lanes_.size()); }
    Tick epoch() const { return epoch_; }

    /**
     * Worker threads for phase B.  1 (default) runs channel lanes
     * sequentially on the caller's thread; n > 1 spreads them over
     * min(n, lanes) persistent workers.  The thread count never
     * affects results.  Must be set before the first runUntil.
     */
    void setWorkers(int n);
    int workers() const { return workers_; }

    /**
     * Invoked single-threaded at every window boundary with the
     * boundary tick (the start of the next window).  The router
     * drains its mailboxes here; deliveries must be scheduled at or
     * after the boundary tick.
     */
    void setBoundaryHook(std::function<void(Tick boundary)> hook)
    {
        boundaryHook_ = std::move(hook);
    }

    /**
     * Run every lane up to and including @p limit (same contract as
     * EventQueue::runUntil), in epoch windows.  All lanes end with
     * now() == limit.  @return events executed across all lanes.
     */
    std::uint64_t runUntil(Tick limit);

    /** Lifetime events executed across the main and channel lanes. */
    std::uint64_t executedTotal() const;

  private:
    void startWorkers();
    void stopWorkers();
    void workerLoop(int workerId);
    /** Run channel lanes [first, last) up to target_. */
    void runLaneRange(int first, int last);

    EventQueue &main_;
    std::vector<std::unique_ptr<EventQueue>> lanes_;
    Tick epoch_;
    int workers_ = 1;
    std::function<void(Tick)> boundaryHook_;

    // Phase-B thread pool: a generation barrier.  The coordinator
    // bumps gen_ to release the workers on target_, then waits for
    // pending_ to drain; both transitions synchronize through mu_,
    // which is what orders mailbox writes against phase C.
    std::vector<std::thread> threads_;
    std::mutex mu_;
    std::condition_variable cvStart_;
    std::condition_variable cvDone_;
    std::uint64_t gen_ = 0;
    int pending_ = 0;
    Tick target_ = 0;
    bool quit_ = false;
};

} // namespace refsched

#endif // REFSCHED_SIMCORE_SHARD_KERNEL_HH
