/**
 * @file
 * The sharded discrete-event kernel: one event-queue lane per DRAM
 * channel beside the main lane, synchronized at epoch boundaries,
 * plus optional core-cluster lanes that peel the CPU side off the
 * main lane.
 *
 * The legacy kernel interleaves every component on one EventQueue.
 * The sharded kernel splits the event population by owner:
 *
 *   lane 0 (the "main" lane, the caller's EventQueue) -- the OS
 *     scheduler, scenario director, shared L2 and virtual memory:
 *     everything that shares state with the software side.
 *   channel lanes (owned by the kernel) -- one per DRAM channel:
 *     the memory controller's per-channel clock ticks.
 *   cluster lanes (owned by the kernel) -- one per core cluster:
 *     the cores and their private L1s, when core lanes are enabled.
 *
 * Time advances in epoch windows [T, T+E).  Within a window every
 * lane runs its own events independently; anything that crosses a
 * lane boundary (a core's request entering a channel, a channel's
 * read completion returning to a core, a shared-L2 lookup) is staged
 * in a mailbox and delivered at the next window boundary, never
 * mid-window.  That makes the window execution order unobservable:
 * lanes may run sequentially in any order or concurrently on worker
 * threads and the simulation is bit-for-bit identical, because no
 * lane can read another lane's state until the single-threaded
 * boundary phase has sealed the window.
 *
 * Window phasing (runUntil):
 *
 *   phase A   main lane runs [T, T+E) on the caller's thread, alone.
 *             Cross-lane READS that the software side performs (the
 *             refresh-aware scheduler's analytic schedule query) are
 *             safe here because the other lanes are quiescent.
 *   phase A'/B  cluster lanes and channel lanes run [T, T+E),
 *             mutually independent -- sequentially, or in parallel
 *             when workers > 1.  Cluster lanes may READ main-lane
 *             state that phase A only mutates at boundary-aligned
 *             ticks (the analytic refresh schedule, their own task's
 *             page table) -- ordered by the pool barrier.
 *   phase C   barrier; the boundary hooks run single-threaded in
 *             registration order and drain the mailboxes, scheduling
 *             deliveries at >= T+E.
 *
 * Exactness: a read CAS issued inside a window completes tCL+tBURST
 * later, so with E <= tCL+tBURST every staged completion already
 * lies at or beyond the next boundary and delivery never distorts
 * its tick.  The same argument covers the shared L2: a hit costs 20
 * CPU cycles, so with E <= that latency a lookup issued inside a
 * window cannot observably complete before the boundary.  Requests
 * travelling main->channel (and L1 misses parking for the boundary
 * L2 drain) are delivered at the boundary, adding up to E of
 * latency -- the documented approximation of sharded mode (lane and
 * worker counts never change results; the epoch length is the
 * accuracy knob).
 *
 * Alignment: when core lanes are on, OS quantum expiries and
 * scenario-director actions must observe cores that have fully
 * caught up with the previous quantum.  The kernel therefore clamps
 * every window so that each multiple of `alignQuantum` is some
 * window's boundary; the expiry event then runs in phase A right
 * after that boundary, with every lane quiescent at Q-1 -- the
 * "mailbox" for scheduler/director actions is the window structure
 * itself.  With core lanes off no clamp is applied and the phasing
 * is byte-for-byte the PR 6 kernel.
 */

#ifndef REFSCHED_SIMCORE_SHARD_KERNEL_HH
#define REFSCHED_SIMCORE_SHARD_KERNEL_HH

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

#include "simcore/event_queue.hh"
#include "simcore/types.hh"

namespace refsched
{

class ShardKernel
{
  public:
    /**
     * @p main          the system's main event queue (not owned).
     * @p lanes         number of channel lanes to create (may be 0
     *                  when only cluster lanes are wanted).
     * @p epoch         window length E in ticks.
     * @p clusterLanes  number of core-cluster lanes (0 = none).
     * @p alignQuantum  when > 0, clamp windows so every multiple of
     *                  this tick count is a window boundary (the OS
     *                  quantum; only used with cluster lanes).
     */
    ShardKernel(EventQueue &main, int lanes, Tick epoch,
                int clusterLanes = 0, Tick alignQuantum = 0);
    ~ShardKernel();

    ShardKernel(const ShardKernel &) = delete;
    ShardKernel &operator=(const ShardKernel &) = delete;

    /** Channel lane @p i in [0, lanes). */
    EventQueue &lane(int i)
    {
        return *lanes_[static_cast<std::size_t>(i)];
    }

    /** Core-cluster lane @p i in [0, clusterLaneCount). */
    EventQueue &clusterLane(int i)
    {
        return *clusterLanes_[static_cast<std::size_t>(i)];
    }

    /** Lane 0: the caller's main event queue. */
    EventQueue &mainLane() { return main_; }

    int laneCount() const { return static_cast<int>(lanes_.size()); }
    int clusterLaneCount() const
    {
        return static_cast<int>(clusterLanes_.size());
    }
    /** All kernel-owned lanes: channel + cluster. */
    int totalLaneCount() const
    {
        return laneCount() + clusterLaneCount();
    }
    Tick epoch() const { return epoch_; }

    /**
     * Worker threads for phase A'/B.  1 (default) runs the lanes
     * sequentially on the caller's thread; n > 1 spreads them over
     * min(n, totalLaneCount) persistent workers.  The thread count
     * never affects results.  Must be set before the first runUntil.
     */
    void setWorkers(int n);
    int workers() const { return workers_; }

    /**
     * Register a hook invoked single-threaded at every window
     * boundary with the boundary tick (the start of the next
     * window).  Hooks run in registration order; the router and the
     * cluster fabric drain their mailboxes here.  Deliveries must be
     * scheduled at or after the boundary tick.
     */
    void setBoundaryHook(std::function<void(Tick boundary)> hook)
    {
        boundaryHooks_.push_back(std::move(hook));
    }

    /**
     * Run every lane up to and including @p limit (same contract as
     * EventQueue::runUntil), in epoch windows.  All lanes end with
     * now() == limit.  @return events executed across all lanes.
     */
    std::uint64_t runUntil(Tick limit);

    /** Lifetime events executed across all lanes. */
    std::uint64_t executedTotal() const;

    /** Lifetime events executed on kernel-owned lane @p i. */
    std::uint64_t
    laneExecuted(int i) const
    {
        return allLanes_[static_cast<std::size_t>(i)]
            ->executedCount();
    }

    /**
     * Wall-clock self-profile of the window phases.  Host-dependent
     * measurements; they must never feed back into simulated
     * behaviour.  All times are milliseconds of std::chrono
     * steady_clock.
     */
    struct KernelProfile
    {
        std::uint64_t windows = 0;   ///< windows run
        std::uint64_t barriers = 0;  ///< windows run on worker threads
        double mainMs = 0.0;      ///< phase A (main lane, alone)
        double parallelMs = 0.0;  ///< phase A'/B span (incl. barrier)
        double boundaryMs = 0.0;  ///< phase C (boundary hooks)
        /** Per-lane run time, sequential mode only (empty when
         *  workers ran the lanes). */
        std::vector<double> laneBusyMs;
        /** Per-worker lane-range run time, threaded mode only. */
        std::vector<double> workerBusyMs;
        /** Per-worker per-barrier wait: from a worker finishing its
         *  range to the barrier completing, summed over windows. */
        std::vector<double> workerWaitMs;
    };

    /**
     * Start collecting the self-profile.  Adds a couple of clock
     * reads per window (and two per worker per window), so it is
     * opt-in: System enables it with telemetry.  Call before the
     * first runUntil.
     */
    void enableProfile();
    bool profileEnabled() const { return profile_; }
    const KernelProfile &profileData() const { return prof_; }

    /**
     * Render the self-profile as a single-line JSON object: window
     * and phase totals, per-lane events, the busy/wait arrays and
     * the busy-imbalance ratio (max/mean over the active lane or
     * worker partition).
     */
    void renderProfileJson(std::ostream &os) const;

  private:
    void startWorkers();
    void stopWorkers();
    void workerLoop(int workerId);
    /** Run kernel-owned lanes [first, last) up to target_. */
    void runLaneRange(int first, int last);

    EventQueue &main_;
    std::vector<std::unique_ptr<EventQueue>> lanes_;
    std::vector<std::unique_ptr<EventQueue>> clusterLanes_;
    /** Channel lanes then cluster lanes, for worker partitioning. */
    std::vector<EventQueue *> allLanes_;
    Tick epoch_;
    Tick align_ = 0;
    int workers_ = 1;
    std::vector<std::function<void(Tick)>> boundaryHooks_;

    // Phase-A'/B thread pool: a generation barrier.  The coordinator
    // bumps gen_ to release the workers on target_, then waits for
    // pending_ to drain; both transitions synchronize through mu_,
    // which is what orders mailbox writes against phase C.
    std::vector<std::thread> threads_;
    std::mutex mu_;
    std::condition_variable cvStart_;
    std::condition_variable cvDone_;
    std::uint64_t gen_ = 0;
    int pending_ = 0;
    Tick target_ = 0;
    bool quit_ = false;

    /** Self-profiling; set before worker threads start (read-only
     *  afterwards, so workers may read it unlocked). */
    bool profile_ = false;
    KernelProfile prof_;
    /** Per-worker range-finish timestamps for the barrier-wait
     *  accounting; written by workers before they decrement
     *  pending_ under mu_, read by the coordinator after the
     *  barrier drains (same lock orders the accesses). */
    std::vector<std::chrono::steady_clock::time_point> workerFinish_;
};

} // namespace refsched

#endif // REFSCHED_SIMCORE_SHARD_KERNEL_HH
