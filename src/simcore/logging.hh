/**
 * @file
 * gem5-style status/error reporting: inform/warn for user-visible
 * status, fatal for user errors (throws FatalError so library users
 * and tests can catch it), panic for internal invariant violations.
 */

#ifndef REFSCHED_SIMCORE_LOGGING_HH
#define REFSCHED_SIMCORE_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace refsched
{

/** Thrown by fatal(): the simulation cannot continue due to a
 *  configuration or usage error (the user's fault, not a bug). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Thrown by panic(): an internal invariant was violated (a bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg) {}
};

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet, Warn, Inform, Debug };

/** Global verbosity; defaults to Warn so tests and benches stay
 *  quiet unless something is wrong. */
LogLevel logLevel();
void setLogLevel(LogLevel level);

namespace detail
{

void emit(const char *tag, const std::string &msg);

template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream os;
    static_cast<void>((os << ... << args));
    return os.str();
}

} // namespace detail

/** Informative message users should know but not worry about. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() >= LogLevel::Inform)
        detail::emit("info", detail::format(std::forward<Args>(args)...));
}

/** Something might be wrong but the simulation can continue. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::emit("warn", detail::format(std::forward<Args>(args)...));
}

/** Unrecoverable user error: bad configuration or arguments. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::format(std::forward<Args>(args)...));
}

/** Unrecoverable internal error: a simulator bug. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(detail::format(std::forward<Args>(args)...));
}

/**
 * panic() unless @p cond holds.
 *
 * Compiled to nothing when REFSCHED_DISABLE_ASSERTS is defined (the
 * release-bench preset does this): the condition is not evaluated,
 * so it must be side-effect free.  kAssertsCompiledIn lets tests
 * assert the elision actually happened.
 */
#ifdef REFSCHED_DISABLE_ASSERTS
inline constexpr bool kAssertsCompiledIn = false;
// sizeof keeps the condition syntactically checked (and its
// variables "used") without generating any code or evaluation.
#define REFSCHED_ASSERT(cond, ...)                                        \
    do {                                                                  \
        (void)sizeof(!(cond));                                            \
    } while (0)
#else
inline constexpr bool kAssertsCompiledIn = true;
#define REFSCHED_ASSERT(cond, ...)                                        \
    do {                                                                  \
        if (!(cond))                                                      \
            ::refsched::panic("assertion failed: ", #cond, " ",           \
                              ##__VA_ARGS__);                             \
    } while (0)
#endif

} // namespace refsched

#endif // REFSCHED_SIMCORE_LOGGING_HH
