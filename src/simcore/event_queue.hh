/**
 * @file
 * The discrete-event simulation kernel.
 *
 * A single EventQueue orders callbacks by (tick, priority, sequence).
 * Sequence numbers make scheduling deterministic: two events at the
 * same tick and priority fire in the order they were scheduled.
 * Events may be cancelled through the EventHandle returned at
 * scheduling time; cancellation is O(1) (the slot is tombstoned and
 * skipped when it reaches the head of the queue).
 */

#ifndef REFSCHED_SIMCORE_EVENT_QUEUE_HH
#define REFSCHED_SIMCORE_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "simcore/types.hh"

namespace refsched
{

/**
 * Relative ordering of events scheduled for the same tick.  Lower
 * values fire first.  The defaults mirror gem5: clocked-component
 * work happens before generic callbacks, the OS scheduler sees
 * completed hardware state, stat dumps run last.
 */
enum class EventPriority : int
{
    ClockEdge = 0,   ///< Clocked-component ticks (MC, cores).
    Default = 10,    ///< Generic callbacks.
    Scheduler = 20,  ///< OS quantum expiry.
    StatDump = 30,   ///< Statistics snapshots.
};

/** Cancellation token for a scheduled event. */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Prevent the event from firing; idempotent. */
    void
    cancel()
    {
        if (auto p = alive.lock())
            *p = false;
    }

    /** True if the event is still pending (not fired, not cancelled). */
    bool
    pending() const
    {
        auto p = alive.lock();
        return p && *p;
    }

  private:
    friend class EventQueue;
    std::weak_ptr<bool> alive;
};

/**
 * A deterministic discrete-event queue.
 *
 * The queue owns simulated time: now() advances only while run
 * methods execute, and only to ticks of scheduled events.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /**
     * Schedule @p cb to fire at absolute tick @p when.
     * Scheduling in the past is a panic (simulator bug).
     */
    EventHandle schedule(Tick when, Callback cb,
                         EventPriority prio = EventPriority::Default);

    /** Schedule @p cb to fire @p delta ticks from now. */
    EventHandle
    scheduleIn(Tick delta, Callback cb,
               EventPriority prio = EventPriority::Default)
    {
        return schedule(curTick + delta, std::move(cb), prio);
    }

    /** True if no live events remain. */
    bool empty() const;

    /** Tick of the next live event, or kMaxTick when empty. */
    Tick nextEventTick() const;

    /**
     * Run events until the queue is empty or the next event lies
     * beyond @p limit.  Events scheduled exactly at @p limit ARE
     * executed.  now() is advanced to @p limit when the queue runs
     * dry earlier, so subsequent scheduling is relative to the limit.
     * @return number of events executed.
     */
    std::uint64_t runUntil(Tick limit);

    /** Run a single event; returns false if the queue was empty. */
    bool runOne();

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executedCount() const { return executed; }

  private:
    struct Record
    {
        Tick when;
        int prio;
        std::uint64_t seq;
        Callback cb;
        std::shared_ptr<bool> alive;
    };

    struct Later
    {
        bool
        operator()(const Record &a, const Record &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.prio != b.prio)
                return a.prio > b.prio;
            return a.seq > b.seq;
        }
    };

    /** Pop tombstoned (cancelled) entries off the top. */
    void skipDead() const;

    mutable std::priority_queue<Record, std::vector<Record>, Later> pq;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
};

} // namespace refsched

#endif // REFSCHED_SIMCORE_EVENT_QUEUE_HH
