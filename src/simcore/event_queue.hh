/**
 * @file
 * The discrete-event simulation kernel.
 *
 * A single EventQueue orders callbacks by (tick, priority, sequence).
 * Sequence numbers make scheduling deterministic: two events at the
 * same tick and priority fire in the order they were scheduled.
 * Events may be cancelled through the EventHandle returned at
 * scheduling time; cancellation is O(1).
 *
 * Storage: event callbacks live in slab-allocated slots that are
 * recycled through a free list, so steady-state schedule/cancel/fire
 * cycles perform no heap allocation (small callbacks reuse the
 * std::function small-buffer storage of their recycled slot).  A
 * per-slot generation counter makes EventHandle validity checks O(1)
 * without per-event shared_ptr control blocks: a handle is pending
 * iff its remembered generation still matches the slot's.  Cancelled
 * slots are recycled immediately; their stale heap entries are
 * skipped when they surface at the top of the priority queue.
 *
 * Handles must not outlive their EventQueue (they hold a plain
 * back-pointer); in practice handles are owned by components that
 * the queue outlives.
 */

#ifndef REFSCHED_SIMCORE_EVENT_QUEUE_HH
#define REFSCHED_SIMCORE_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "simcore/types.hh"

namespace refsched
{

class EventQueue;

/**
 * Relative ordering of events scheduled for the same tick.  Lower
 * values fire first.  The defaults mirror gem5: clocked-component
 * work happens before generic callbacks, the OS scheduler sees
 * completed hardware state, stat dumps run last.
 */
enum class EventPriority : int
{
    ClockEdge = 0,   ///< Clocked-component ticks (MC, cores).
    Default = 10,    ///< Generic callbacks.
    Scheduler = 20,  ///< OS quantum expiry.
    StatDump = 30,   ///< Statistics snapshots.
};

/**
 * Intrusive event receiver: the allocation-free alternative to a
 * std::function callback.  A scheduled (callee, arg0, arg1) triple is
 * stored as plain data inside the event slot, so scheduling one never
 * heap-allocates no matter how much context the receiver needs -- the
 * receiver IS the context, and the two 64-bit cookies carry the
 * per-event payload (an epoch, an index, a pointer...).  The hot
 * request-completion path (memctrl -> cpu::Core) runs on this.
 *
 * The callee must outlive the scheduled event (or cancel it); callees
 * are long-lived components the queue's owner also owns.
 */
class Callee
{
  public:
    /** @p now is the firing tick (== EventQueue::now()). */
    virtual void fire(Tick now, std::uint64_t arg0,
                      std::uint64_t arg1) = 0;

  protected:
    ~Callee() = default;
};

/** Cancellation token for a scheduled event. */
class EventHandle
{
  public:
    EventHandle() = default;

    /** Prevent the event from firing; idempotent. */
    void cancel();

    /** True if the event is still pending (not fired, not cancelled). */
    bool pending() const;

  private:
    friend class EventQueue;
    EventHandle(EventQueue *q, std::uint32_t s, std::uint32_t g)
        : queue_(q), slot_(s), gen_(g)
    {
    }

    EventQueue *queue_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t gen_ = 0;
};

/**
 * A deterministic discrete-event queue.
 *
 * The queue owns simulated time: now() advances only while run
 * methods execute, and only to ticks of scheduled events.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return curTick; }

    /**
     * Schedule @p cb to fire at absolute tick @p when.
     * Scheduling in the past is a panic (simulator bug).
     */
    EventHandle schedule(Tick when, Callback cb,
                         EventPriority prio = EventPriority::Default);

    /**
     * Schedule an intrusive event: at @p when, invoke
     * `callee.fire(when, arg0, arg1)`.  Never allocates beyond the
     * slot pool (the triple is stored as POD in the slot), unlike the
     * Callback overload whose captures can spill past std::function's
     * small-buffer optimisation.
     */
    EventHandle schedule(Tick when, Callee &callee,
                         std::uint64_t arg0, std::uint64_t arg1,
                         EventPriority prio = EventPriority::Default);

    /** Schedule @p cb to fire @p delta ticks from now. */
    EventHandle
    scheduleIn(Tick delta, Callback cb,
               EventPriority prio = EventPriority::Default)
    {
        return schedule(curTick + delta, std::move(cb), prio);
    }

    /** True if no live events remain. */
    bool empty() const;

    /** Tick of the next live event, or kMaxTick when empty. */
    Tick nextEventTick() const;

    /**
     * Run events until the queue is empty or the next event lies
     * beyond @p limit.  Events scheduled exactly at @p limit ARE
     * executed.  now() is advanced to @p limit when the queue runs
     * dry earlier, so subsequent scheduling is relative to the limit.
     * @return number of events executed.
     */
    std::uint64_t runUntil(Tick limit);

    /** Run a single event; returns false if the queue was empty. */
    bool runOne();

    /** Total events executed over the queue's lifetime. */
    std::uint64_t executedCount() const { return executed; }

    /** Live (scheduled, not cancelled) events; O(1). */
    std::size_t liveCount() const { return live; }

  private:
    friend class EventHandle;

    static constexpr std::uint32_t kNoSlot = 0xffffffffu;
    static constexpr std::size_t kSlabSize = 256;

    /**
     * Pooled event storage.  The callback object is reused across
     * recycles: assigning a new small callable into a moved-from
     * std::function reuses its inline buffer, so no allocation.
     */
    struct Slot
    {
        Callback cb;
        Callee *callee = nullptr;
        std::uint64_t arg0 = 0;
        std::uint64_t arg1 = 0;
        std::uint32_t gen = 0;
        std::uint32_t nextFree = kNoSlot;
    };

    /**
     * Heap entry; points into the slot pool, no owned resources.
     * Priority and sequence are packed into one key word (priority in
     * the top byte, sequence below), so the (tick, priority, seq)
     * order reduces to two integer compares and the entry to 24
     * bytes -- the heap is the kernel's hottest data structure.
     */
    struct Entry
    {
        Tick when;
        std::uint64_t key;  ///< (prio << kPrioShift) | seq
        std::uint32_t slot;
        std::uint32_t gen;
    };

    static constexpr unsigned kPrioShift = 56;

    /** True iff @p a fires after @p b.  (when, key) is a strict
     *  total order -- sequence numbers are unique -- so ANY correct
     *  heap pops entries in one global order and the heap layout is
     *  not observable: determinism does not depend on the arity. */
    static bool
    laterThan(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when > b.when;
        return a.key > b.key;
    }

    Slot &
    slotAt(std::uint32_t idx) const
    {
        return slabs[idx / kSlabSize][idx % kSlabSize];
    }

    std::uint32_t allocSlot();

    /** An entry is live iff its generation still matches its slot. */
    bool
    entryLive(const Entry &e) const
    {
        return slotAt(e.slot).gen == e.gen;
    }

    void cancelSlot(std::uint32_t slot, std::uint32_t gen);

    bool
    slotPending(std::uint32_t slot, std::uint32_t gen) const
    {
        return slotAt(slot).gen == gen;
    }

    /** Retire @p slot: invalidate handles/entries and recycle. */
    void
    retireSlot(std::uint32_t idx)
    {
        Slot &s = slotAt(idx);
        ++s.gen;
        s.cb = nullptr;
        s.callee = nullptr;
        s.nextFree = freeHead;
        freeHead = idx;
    }

    /** Pop stale (cancelled) entries off the top. */
    void skipDead() const;

    /** Fire the already-popped live entry @p e. */
    void execEntry(const Entry &e);

    /**
     * Implicit 4-ary min-heap (earliest entry at heap_[0]).  Versus
     * the binary std::priority_queue this halves the sift depth and
     * keeps each child scan inside one or two cache lines -- the
     * heap is the kernel's hottest data structure and most pushed
     * entries are later cancelled, so cheap sifts matter more than
     * minimal comparisons.  Hole-based sifting avoids swaps.
     */
    void
    heapPush(const Entry &e) const
    {
        std::size_t i = heap_.size();
        heap_.push_back(e);
        while (i > 0) {
            const std::size_t p = (i - 1) >> 2;
            if (!laterThan(heap_[p], e))
                break;
            heap_[i] = heap_[p];
            i = p;
        }
        heap_[i] = e;
    }

    /** Remove heap_[0]. */
    void
    heapPopTop() const
    {
        const Entry e = heap_.back();
        heap_.pop_back();
        const std::size_t n = heap_.size();
        if (n == 0)
            return;
        std::size_t i = 0;
        while (true) {
            const std::size_t c = 4 * i + 1;
            if (c >= n)
                break;
            std::size_t m = c;
            const std::size_t end = c + 4 < n ? c + 4 : n;
            for (std::size_t k = c + 1; k < end; ++k) {
                if (laterThan(heap_[m], heap_[k]))
                    m = k;
            }
            if (!laterThan(e, heap_[m]))
                break;
            heap_[i] = heap_[m];
            i = m;
        }
        heap_[i] = e;
    }

    mutable std::vector<Entry> heap_;
    std::vector<std::unique_ptr<Slot[]>> slabs;
    std::uint32_t freeHead = kNoSlot;
    std::uint32_t slotCount = 0;
    std::size_t live = 0;
    Tick curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
};

inline void
EventHandle::cancel()
{
    if (queue_)
        queue_->cancelSlot(slot_, gen_);
}

inline bool
EventHandle::pending() const
{
    return queue_ && queue_->slotPending(slot_, gen_);
}

} // namespace refsched

#endif // REFSCHED_SIMCORE_EVENT_QUEUE_HH
