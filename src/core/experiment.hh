/**
 * @file
 * Convenience layer the figure benches are built on: construct a
 * SystemConfig for (workload, policy, density, ...), run it with
 * standard warm-up/measurement lengths, and cache nothing --
 * every run is an independent deterministic simulation.
 */

#ifndef REFSCHED_CORE_EXPERIMENT_HH
#define REFSCHED_CORE_EXPERIMENT_HH

#include <string>

#include "core/metrics.hh"
#include "core/system_config.hh"

namespace refsched::core
{

struct RunOptions
{
    /** Quanta simulated before statistics reset. */
    int warmupQuanta = 8;
    /** Measured quanta; 16 covers one full refresh-slot rotation of
     *  a 2-rank x 8-bank channel. */
    int measureQuanta = 16;
};

/**
 * Build the standard Table 1 configuration for one experiment cell.
 *
 * @param workloadName  Table 2 name ("WL-1" .. "WL-10")
 * @param policy        refresh/OS policy bundle
 * @param density       DRAM chip density
 * @param tREFW         retention window (64 ms or 32 ms)
 * @param numCores      cores (2 default, 4 in Fig. 15)
 * @param tasksPerCore  consolidation ratio (4 default, 2 in Fig. 15)
 * @param timeScale     ratio-preserving shrink factor
 */
SystemConfig makeConfig(const std::string &workloadName, Policy policy,
                        dram::DensityGb density,
                        Tick tREFW = milliseconds(64.0),
                        int numCores = 2, int tasksPerCore = 4,
                        unsigned timeScale = 64);

/** Construct a System from @p cfg and run it once. */
Metrics runOnce(const SystemConfig &cfg, const RunOptions &opts = {});

} // namespace refsched::core

#endif // REFSCHED_CORE_EXPERIMENT_HH
