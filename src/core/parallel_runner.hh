/**
 * @file
 * Work-stealing fan-out of independent experiment cells.
 *
 * Every figure/ablation bench evaluates a grid of fully independent,
 * deterministic simulation cells (workload x policy x density x ...).
 * ParallelRunner runs such a grid across worker threads while
 * preserving deterministic, submission-ordered results: each cell is
 * an isolated System (own EventQueue, own RNG seeded from its
 * config), workers never share mutable state, and results are
 * written to the slot reserved at submission time.  The output is
 * therefore byte-identical for any thread count; jobs == 1 executes
 * inline on the calling thread, reproducing the historical
 * sequential behaviour exactly.
 *
 * Scheduling: cells are dealt round-robin into per-worker deques;
 * a worker consumes its own deque front-to-back and steals from the
 * back of its siblings when it runs dry.  Cell runtimes vary by an
 * order of magnitude across workloads, so stealing keeps all cores
 * busy until the grid drains.
 */

#ifndef REFSCHED_CORE_PARALLEL_RUNNER_HH
#define REFSCHED_CORE_PARALLEL_RUNNER_HH

#include <functional>
#include <vector>

#include "core/experiment.hh"
#include "core/metrics.hh"
#include "core/system_config.hh"

namespace refsched::core
{

/**
 * One independent experiment cell: a system configuration plus run
 * lengths.  Cells that need setup beyond SystemConfig (e.g. swapping
 * in custom trace sources) may instead supply a thunk, which must be
 * self-contained and touch no shared mutable state.
 */
struct CellSpec
{
    SystemConfig cfg;
    RunOptions opts;

    /** When set, overrides cfg/opts entirely. */
    std::function<Metrics()> custom;
};

class ParallelRunner
{
  public:
    /** @p jobs worker threads; <= 0 selects hardware_concurrency. */
    explicit ParallelRunner(int jobs = 0);

    /** Effective worker count. */
    int jobs() const { return jobs_; }

    /**
     * Run every cell and return their Metrics in submission order.
     * Deterministic: the result is byte-identical for any jobs().
     * The first exception thrown by a cell is rethrown after all
     * workers finish.
     */
    std::vector<Metrics> runCells(const std::vector<CellSpec> &cells) const;

    /**
     * Work-stealing fan-out of @p fn over indices [0, n): the
     * primitive runCells is built on, exposed for grids whose cells
     * are not SystemConfig-shaped (e.g. allocator feasibility
     * sweeps).  @p fn must be safe to invoke concurrently for
     * distinct indices.
     */
    void runIndexed(std::size_t n,
                    const std::function<void(std::size_t)> &fn) const;

    /** Run a single cell inline. */
    static Metrics runCell(const CellSpec &cell);

  private:
    int jobs_;
};

} // namespace refsched::core

#endif // REFSCHED_CORE_PARALLEL_RUNNER_HH
