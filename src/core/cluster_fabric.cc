#include "core/cluster_fabric.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace refsched::core
{

void
ClusterFabric::onBoundary(Tick boundary)
{
    parked_.clear();
    for (cpu::Core *c : cores_) {
        if (c->laneWait() != cpu::Core::LaneWait::None)
            parked_.push_back(c);
    }
    // cores_ is in coreId order, so a stable sort on the park tick
    // realises the (parkTick, coreId) drain key.
    std::stable_sort(parked_.begin(), parked_.end(),
                     [](const cpu::Core *a, const cpu::Core *b) {
                         return a->laneWaitTick() < b->laneWaitTick();
                     });

    for (cpu::Core *c : parked_) {
        switch (c->laneWait()) {
        case cpu::Core::LaneWait::Fault: {
            os::Task *task = c->currentTask();
            REFSCHED_ASSERT(task, "parked fault without a task");
            vm_.translate(*task, c->parkedFaultVaddr());
            c->completeFault(boundary);
            break;
        }
        case cpu::Core::LaneWait::L2: {
            const auto res = caches_.applyL2(c->parkedL2());
            c->completeL2(res, boundary);
            break;
        }
        case cpu::Core::LaneWait::None:
            break;
        }
    }

    caches_.flushLaneStats();
}

} // namespace refsched::core
