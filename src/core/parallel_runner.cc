#include "core/parallel_runner.hh"

#include <deque>
#include <mutex>
#include <thread>

namespace refsched::core
{

ParallelRunner::ParallelRunner(int jobs)
{
    if (jobs <= 0)
        jobs = static_cast<int>(std::thread::hardware_concurrency());
    jobs_ = jobs > 0 ? jobs : 1;
}

Metrics
ParallelRunner::runCell(const CellSpec &cell)
{
    if (cell.custom)
        return cell.custom();
    return runOnce(cell.cfg, cell.opts);
}

void
ParallelRunner::runIndexed(
    std::size_t n, const std::function<void(std::size_t)> &fn) const
{
    if (n == 0)
        return;

    const int workers = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(jobs_), n));
    if (workers == 1) {
        // Inline sequential execution: no threads, bit-for-bit the
        // historical single-core behaviour.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    struct WorkerDeque
    {
        std::mutex m;
        std::deque<std::size_t> d;
    };
    std::vector<WorkerDeque> queues(
        static_cast<std::size_t>(workers));
    // Deal cells round-robin so every worker starts with a spread of
    // the grid; imbalance is fixed up by stealing.
    for (std::size_t i = 0; i < n; ++i)
        queues[i % static_cast<std::size_t>(workers)].d.push_back(i);

    std::mutex errMutex;
    std::exception_ptr firstError;

    auto work = [&](int self) {
        for (;;) {
            std::size_t idx = 0;
            bool got = false;
            {
                auto &q = queues[static_cast<std::size_t>(self)];
                std::lock_guard<std::mutex> lock(q.m);
                if (!q.d.empty()) {
                    idx = q.d.front();
                    q.d.pop_front();
                    got = true;
                }
            }
            // Steal from the back of a sibling.  All work is dealt
            // up front, so a full idle sweep means the grid is done.
            for (int off = 1; !got && off < workers; ++off) {
                auto &q = queues[static_cast<std::size_t>(
                    (self + off) % workers)];
                std::lock_guard<std::mutex> lock(q.m);
                if (!q.d.empty()) {
                    idx = q.d.back();
                    q.d.pop_back();
                    got = true;
                }
            }
            if (!got)
                return;
            try {
                fn(idx);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers - 1));
    for (int w = 1; w < workers; ++w)
        threads.emplace_back(work, w);
    work(0);
    for (auto &th : threads)
        th.join();

    if (firstError)
        std::rethrow_exception(firstError);
}

std::vector<Metrics>
ParallelRunner::runCells(const std::vector<CellSpec> &cells) const
{
    std::vector<Metrics> results(cells.size());
    runIndexed(cells.size(), [&](std::size_t i) {
        results[i] = runCell(cells[i]);
    });
    return results;
}

} // namespace refsched::core
