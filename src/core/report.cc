#include "core/report.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "simcore/logging.hh"

namespace refsched::core
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    REFSCHED_ASSERT(cells.size() == headers_.size(),
                    "row width mismatch: ", cells.size(), " vs ",
                    headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto printRow = [&](const std::vector<std::string> &row) {
        os << "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << " " << std::left
               << std::setw(static_cast<int>(widths[c])) << row[c]
               << " |";
        }
        os << "\n";
    };

    printRow(headers_);
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : rows_)
        printRow(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto printRow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    printRow(headers_);
    for (const auto &row : rows_)
        printRow(row);
}

std::string
pctImprovement(double ratio)
{
    std::ostringstream os;
    const double pct = (ratio - 1.0) * 100.0;
    os << (pct >= 0 ? "+" : "") << std::fixed << std::setprecision(1)
       << pct << "%";
    return os.str();
}

std::string
fmt(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

} // namespace refsched::core
