/**
 * @file
 * Measured results of one experiment run.
 *
 * The headline metric matches the paper: harmonic mean of per-task
 * IPC over the measured interval, reported as a speedup relative to
 * a baseline run (all-bank refresh in most figures).  Memory
 * latency is reported in DRAM clock cycles like Fig. 11.
 */

#ifndef REFSCHED_CORE_METRICS_HH
#define REFSCHED_CORE_METRICS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "dram/energy.hh"
#include "simcore/types.hh"

namespace refsched::core
{

struct TaskMetrics
{
    Pid pid = -1;
    std::string benchmark;
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;      ///< CPU cycles while scheduled
    double ipc = 0.0;
    double mpki = 0.0;             ///< L2 demand misses / kilo-instr
    std::uint64_t dramReads = 0;
    std::uint64_t pageFaults = 0;
    std::uint64_t fallbackAllocs = 0;
    std::uint64_t residentPages = 0;
    std::uint64_t quantaRun = 0;
};

struct Metrics
{
    std::vector<TaskMetrics> tasks;

    double harmonicMeanIpc = 0.0;
    double weightedIpcSum = 0.0;   ///< plain sum of per-task IPCs

    /** Average DRAM read latency in memory-clock cycles (Fig. 11). */
    double avgReadLatencyMemCycles = 0.0;

    double rowHitRate = 0.0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t refreshCommands = 0;
    std::uint64_t readsBlockedByRefresh = 0;
    double blockedReadFraction = 0.0;

    // Scheduler behaviour (co-design diagnostics).
    std::uint64_t quantaScheduled = 0;
    std::uint64_t cleanPicks = 0;
    std::uint64_t deferredPicks = 0;
    std::uint64_t fallbackPicks = 0;
    std::uint64_t bestEffortPicks = 0;

    /** Fairness: (max - min vruntime) in quanta at run end. */
    double vruntimeSpreadQuanta = 0.0;

    /** DRAM energy over the measured interval (all channels). */
    dram::EnergyBreakdown energy;

    /** DRAM energy per committed instruction (pJ/instr). */
    double energyPerInstructionPj = 0.0;

    Tick measuredTicks = 0;

    /** Invariant-checker violations (cfg.validate runs only). */
    std::uint64_t validationViolations = 0;
    /** First (earliest-tick) violation report, empty when clean. */
    std::string firstViolation;

    /** Relative performance vs a baseline (harmonic-mean IPC). */
    double
    speedupOver(const Metrics &base) const
    {
        return base.harmonicMeanIpc > 0.0
            ? harmonicMeanIpc / base.harmonicMeanIpc
            : 0.0;
    }

    /** Average MPKI across tasks. */
    double avgMpki() const;

    /** One-line summary for logs. */
    std::string summary() const;

    /** Machine-readable JSON rendering (headline numbers, energy,
     *  scheduler behaviour, per-task table).  @p indent is the
     *  leading indentation of the emitted object. */
    void toJson(std::ostream &os, int indent = 0) const;
};

} // namespace refsched::core

#endif // REFSCHED_CORE_METRICS_HH
