/**
 * @file
 * Top-level configuration of a simulated system, and the named
 * policy bundles the paper evaluates.
 *
 * A Policy selects the refresh scheduler AND the matching OS
 * behaviour:
 *
 *   AllBank      DDRx rank-level refresh, bank-oblivious OS (baseline)
 *   PerBank      LPDDR3 per-bank round-robin refresh, bank-oblivious OS
 *   PerBankOoo   Chang et al. out-of-order per-bank refresh
 *   Ddr4x2/x4    DDR4 fine-granularity refresh modes (all-bank)
 *   Adaptive     Mukundan et al. adaptive 1x/4x refresh
 *   CoDesign     the paper: sequential per-bank refresh + soft bank
 *                partitioning + refresh-aware scheduling
 *   NoRefresh    ideal refresh-free upper bound
 */

#ifndef REFSCHED_CORE_SYSTEM_CONFIG_HH
#define REFSCHED_CORE_SYSTEM_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_hierarchy.hh"
#include "cpu/core.hh"
#include "dram/refresh_scheduler.hh"
#include "dram/timings.hh"
#include "memctrl/memory_controller.hh"
#include "obs/telemetry.hh"
#include "simcore/types.hh"
#include "workload/scenario.hh"
#include "workload/serving.hh"

namespace refsched::core
{

enum class Policy
{
    AllBank,
    PerBank,
    PerBankOoo,
    Ddr4x2,
    Ddr4x4,
    Adaptive,
    CoDesign,
    NoRefresh,
};

std::string toString(Policy p);

/** How task data is confined to banks. */
enum class Partitioning
{
    None,  ///< bank-oblivious allocation (baseline Linux)
    Soft,  ///< groups of tasks share bank subsets (section 5.2.1)
    Hard,  ///< exclusive bank ownership (Liu et al., for ablation)
};

struct SystemConfig
{
    // --- Topology (Table 1) ---
    int numCores = 2;
    int tasksPerCore = 4;  ///< consolidation ratio 1:tasksPerCore
    int channels = 1;
    int ranksPerChannel = 2;
    int banksPerRank = 8;

    // --- DRAM ---
    dram::DensityGb density = dram::DensityGb::d32;
    Tick tREFW = milliseconds(64.0);
    unsigned timeScale = 64;

    /** Bank-address hashing (see DramOrganization::xorBankHash). */
    bool xorBankHash = false;

    // --- Policy bundle ---
    Policy policy = Policy::AllBank;
    Partitioning partitioning = Partitioning::None;  ///< set by policy
    bool refreshAwareScheduling = false;             ///< set by policy

    /**
     * Banks per rank a task may allocate in under partitioning.
     * -1 selects the paper's rule: 8 - banksPerRank/tasksPerCore
     * (6 banks at 1:4, 4 banks at 1:2 -- sections 6.2 and 6.6).
     */
    int banksPerTaskPerRank = -1;

    // --- OS ---
    /** 0 = auto: tREFW / total banks, aligning quanta with the
     *  sequential refresh slots (4 ms for 64 ms/16 banks). */
    Tick quantum = 0;

    /**
     * Algorithm 3's fairness threshold: how many in-order runqueue
     * candidates the refresh-aware pick may examine.  The default
     * covers any realistic runqueue (normal co-design operation);
     * small values (1..3) are the paper's way of overriding the
     * refresh-aware schedule for fairness (section 5.4).
     */
    int etaThresh = 64;
    bool bestEffort = true;

    /** Touch every task page at setup (the paper's tasks have
     *  allocated their footprint before the region of interest). */
    bool preTouchPages = true;

    /**
     * Attach the invariant checkers (JEDEC timing auditor, refresh
     * window monitor, OS auditor) for this run.  Requires the build
     * to have REFSCHED_VALIDATE=1 (the default); with validation
     * compiled out this flag warns and has no effect.
     */
    bool validate = false;

    // --- Sharded event kernel ---
    /**
     * 0 (default): the legacy exact kernel -- every component on
     * one event queue, results bit-identical to prior releases.
     * >= 1: the sharded kernel -- each channel's controller runs on
     * its own event-queue lane, synchronized with the cores at
     * shardEpoch boundaries; `shards` is the phase-B worker-thread
     * count (clamped to the channel count; 1 = sequential lanes).
     * Results are identical for every shards >= 1 value and differ
     * slightly from the legacy kernel (requests cross into their
     * channel at the next epoch boundary instead of immediately;
     * see simcore/shard_kernel.hh).
     */
    int shards = 0;

    /**
     * Epoch window length E of the sharded kernel, in ticks.  Read
     * completions cross back exactly when E <= tCL + tBURST; the
     * default 15 ns sits under that bound for DDR3-1600 (~18.75 ns)
     * while keeping the barrier overhead amortized over ~12 memory
     * clocks per window.
     */
    Tick shardEpoch = 15000;

    /**
     * Core-cluster lanes of the sharded kernel.  0 (default): cores
     * run on the main lane exactly as before -- with shards == 0 too
     * this is the legacy kernel, bit-identical to prior releases.
     * >= 1: cores and their private L1s are partitioned into this
     * many clusters (clamped to numCores), each running on its own
     * event-queue lane concurrently with the channel lanes; shared-L2
     * lookups drain at the single-threaded window boundary in
     * deterministic (tick, coreId) order and complete next window.
     * Results are identical for every coreLanes >= 1 value (and any
     * worker-thread count) and differ slightly from coreLanes == 0
     * (an L1 miss resolves at the next window boundary instead of
     * inline; see simcore/shard_kernel.hh and DESIGN.md section 12).
     */
    int coreLanes = 0;

    /**
     * Core-lane epoch window length E_core in ticks.  The shared-L2
     * hit latency is 20 CPU cycles (~6.6 ns at 3.2 GHz), so with
     * E_core <= 5 ns an L1 miss issued inside a window cannot
     * observably complete before the boundary -- deferring the L2
     * lookup to the boundary never distorts which window the
     * completion lands in.  When core lanes are enabled the kernel
     * runs at min(shardEpoch, coreLaneEpoch).
     */
    Tick coreLaneEpoch = 5000;

    // --- Components ---
    cpu::CoreParams coreParams;
    cache::HierarchyParams cacheParams;
    memctrl::ControllerParams mcParams;

    // --- Workload ---
    /** One benchmark name per task (numCores * tasksPerCore). */
    std::vector<std::string> benchmarks;

    /**
     * Dynamic-workload scenario: tenant churn, macro-phase changes
     * and page migration, executed by a ScenarioDirector at quantum
     * boundaries.  Empty (the default) runs the static task set.
     */
    workload::ScenarioScript scenario;

    /**
     * Open-loop serving workload: a deterministic arrival process
     * (Poisson/MMPP) injecting read requests at an offered load over
     * the live tasks' footprints, with bounded-queue drop semantics.
     * Disabled by default; composes with both the static task set
     * and scenario churn (requests always target currently-live
     * tasks).  See workload/serving.hh.
     */
    workload::ServingConfig serving;

    /**
     * Epoch-sampled telemetry time-series: per-channel queue depths
     * and row-buffer/refresh rates, per-core progress, scheduler and
     * serving counters, snapshotted every periodTicks of simulated
     * time.  Disabled by default (zero cost); see obs/telemetry.hh.
     */
    obs::TelemetryConfig telemetry;

    std::uint64_t seed = 1;

    /** Apply the OS/hardware bundle implied by @p policy. */
    void applyPolicy(Policy p);

    /** Derived: refresh scheduler type for the active policy. */
    dram::RefreshPolicy refreshPolicy() const;

    /** Derived: DDR4 FGR mode for the active policy. */
    dram::FgrMode fgrMode() const;

    /** Derived: DRAM device config (timings, organization). */
    dram::DramDeviceConfig deviceConfig() const;

    /** Derived: effective quantum (auto rule applied). */
    Tick effectiveQuantum() const;

    /** Derived: effective banks-per-task-per-rank. */
    int effectiveBanksPerTask() const;

    int totalTasks() const { return numCores * tasksPerCore; }
    int
    totalBanks() const
    {
        return channels * ranksPerChannel * banksPerRank;
    }

    /** Validate; fatal() on inconsistencies. */
    void check() const;
};

} // namespace refsched::core

#endif // REFSCHED_CORE_SYSTEM_CONFIG_HH
