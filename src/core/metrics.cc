#include "core/metrics.hh"

#include <sstream>

namespace refsched::core
{

double
Metrics::avgMpki() const
{
    if (tasks.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &t : tasks)
        sum += t.mpki;
    return sum / static_cast<double>(tasks.size());
}

std::string
Metrics::summary() const
{
    std::ostringstream os;
    os << "hmeanIPC=" << harmonicMeanIpc << " avgLat="
       << avgReadLatencyMemCycles << "cy rowHit=" << rowHitRate
       << " refreshes=" << refreshCommands << " blocked="
       << blockedReadFraction;
    return os.str();
}

void
Metrics::toJson(std::ostream &os, int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    const std::string in = pad + "  ";
    os << "{\n"
       << in << "\"harmonicMeanIpc\": " << harmonicMeanIpc << ",\n"
       << in << "\"weightedIpcSum\": " << weightedIpcSum << ",\n"
       << in << "\"avgReadLatencyMemCycles\": "
       << avgReadLatencyMemCycles << ",\n"
       << in << "\"rowHitRate\": " << rowHitRate << ",\n"
       << in << "\"dramReads\": " << dramReads << ",\n"
       << in << "\"dramWrites\": " << dramWrites << ",\n"
       << in << "\"refreshCommands\": " << refreshCommands << ",\n"
       << in << "\"readsBlockedByRefresh\": " << readsBlockedByRefresh
       << ",\n"
       << in << "\"blockedReadFraction\": " << blockedReadFraction
       << ",\n"
       << in << "\"scheduler\": {\"quanta\": " << quantaScheduled
       << ", \"clean\": " << cleanPicks
       << ", \"deferred\": " << deferredPicks
       << ", \"bestEffort\": " << bestEffortPicks
       << ", \"fallback\": " << fallbackPicks << "},\n"
       << in << "\"vruntimeSpreadQuanta\": " << vruntimeSpreadQuanta
       << ",\n"
       << in << "\"energy\": {\"totalPj\": " << energy.totalPj()
       << ", \"activatePj\": " << energy.activatePj
       << ", \"readWritePj\": " << energy.readWritePj
       << ", \"refreshPj\": " << energy.refreshPj
       << ", \"backgroundPj\": " << energy.backgroundPj
       << ", \"refreshShare\": " << energy.refreshShare() << "},\n"
       << in << "\"energyPerInstructionPj\": "
       << energyPerInstructionPj << ",\n"
       << in << "\"measuredTicks\": " << measuredTicks << ",\n"
       << in << "\"validationViolations\": " << validationViolations
       << ",\n"
       << in << "\"tasks\": [";
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const auto &t = tasks[i];
        os << (i ? "," : "") << "\n" << in
           << "  {\"pid\": " << t.pid << ", \"benchmark\": \""
           << t.benchmark << "\", \"ipc\": " << t.ipc
           << ", \"mpki\": " << t.mpki
           << ", \"instructions\": " << t.instructions
           << ", \"quanta\": " << t.quantaRun
           << ", \"dramReads\": " << t.dramReads
           << ", \"pageFaults\": " << t.pageFaults
           << ", \"residentPages\": " << t.residentPages
           << ", \"fallbackPages\": " << t.fallbackAllocs << "}";
    }
    if (!tasks.empty())
        os << "\n" << in;
    os << "]\n" << pad << "}";
}

} // namespace refsched::core
