#include "core/metrics.hh"

#include <sstream>

namespace refsched::core
{

double
Metrics::avgMpki() const
{
    if (tasks.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &t : tasks)
        sum += t.mpki;
    return sum / static_cast<double>(tasks.size());
}

std::string
Metrics::summary() const
{
    std::ostringstream os;
    os << "hmeanIPC=" << harmonicMeanIpc << " avgLat="
       << avgReadLatencyMemCycles << "cy rowHit=" << rowHitRate
       << " refreshes=" << refreshCommands << " blocked="
       << blockedReadFraction;
    return os.str();
}

} // namespace refsched::core
