/**
 * @file
 * Boundary drain for core-cluster lanes: the single-threaded half of
 * every parked core's shared-resource access.
 *
 * During the parallel phase a core may only touch its private state
 * (its L1, its task's TLB, its staging boxes).  An L1 miss or an
 * unmapped page parks the core; at the window boundary (phase C,
 * single-threaded) the fabric drains every parked core in
 * (parkTick, coreId) order -- a deterministic, partition-invariant
 * key -- and performs the shared half serially:
 *
 *   Fault  -> VirtualMemory::translate (the allocating path, hitting
 *             the buddy allocator and page table), then
 *             Core::completeFault schedules the epoch-guarded resume
 *             at the boundary tick on the core's cluster lane.
 *
 *   L2     -> CacheHierarchy::applyL2 (shared L2 state + stats),
 *             then Core::completeL2 hands the result over for the
 *             core to replay the exact legacy post-access
 *             arithmetic on resume.
 *
 * The drain order makes shared-state mutation order independent of
 * how cores are grouped into clusters and how many workers execute
 * them, which is what gives bit-identical results for every
 * core-lane count >= 1.  After the drain the per-core L1 stat
 * counters are folded into the shared Scalars (coreId order).
 */

#ifndef REFSCHED_CORE_CLUSTER_FABRIC_HH
#define REFSCHED_CORE_CLUSTER_FABRIC_HH

#include <vector>

#include "cache/cache_hierarchy.hh"
#include "cpu/core.hh"
#include "os/virtual_memory.hh"
#include "simcore/types.hh"

namespace refsched::core
{

class ClusterFabric
{
  public:
    ClusterFabric(std::vector<cpu::Core *> cores,
                  cache::CacheHierarchy &caches,
                  os::VirtualMemory &vm)
        : cores_(std::move(cores)), caches_(caches), vm_(vm)
    {
    }

    /** Window boundary (phase C); register after the router's hook
     *  so completions are already staged when cores resume. */
    void onBoundary(Tick boundary);

  private:
    std::vector<cpu::Core *> cores_;
    cache::CacheHierarchy &caches_;
    os::VirtualMemory &vm_;
    std::vector<cpu::Core *> parked_;  ///< scratch, reused
};

} // namespace refsched::core

#endif // REFSCHED_CORE_CLUSTER_FABRIC_HH
