#include "core/system_config.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace refsched::core
{

std::string
toString(Policy p)
{
    switch (p) {
      case Policy::AllBank:
        return "all-bank";
      case Policy::PerBank:
        return "per-bank";
      case Policy::PerBankOoo:
        return "per-bank-ooo";
      case Policy::Ddr4x2:
        return "ddr4-2x";
      case Policy::Ddr4x4:
        return "ddr4-4x";
      case Policy::Adaptive:
        return "adaptive";
      case Policy::CoDesign:
        return "co-design";
      case Policy::NoRefresh:
        return "no-refresh";
    }
    return "unknown";
}

void
SystemConfig::applyPolicy(Policy p)
{
    policy = p;
    if (p == Policy::CoDesign) {
        partitioning = Partitioning::Soft;
        refreshAwareScheduling = true;
    } else {
        partitioning = Partitioning::None;
        refreshAwareScheduling = false;
    }
}

dram::RefreshPolicy
SystemConfig::refreshPolicy() const
{
    switch (policy) {
      case Policy::AllBank:
      case Policy::Ddr4x2:
      case Policy::Ddr4x4:
        return dram::RefreshPolicy::AllBank;
      case Policy::PerBank:
        return dram::RefreshPolicy::PerBankRoundRobin;
      case Policy::PerBankOoo:
        return dram::RefreshPolicy::OooPerBank;
      case Policy::Adaptive:
        return dram::RefreshPolicy::Adaptive;
      case Policy::CoDesign:
        return dram::RefreshPolicy::SequentialPerBank;
      case Policy::NoRefresh:
        return dram::RefreshPolicy::NoRefresh;
    }
    fatal("unknown policy");
}

dram::FgrMode
SystemConfig::fgrMode() const
{
    switch (policy) {
      case Policy::Ddr4x2:
        return dram::FgrMode::x2;
      case Policy::Ddr4x4:
        return dram::FgrMode::x4;
      default:
        return dram::FgrMode::x1;
    }
}

dram::DramDeviceConfig
SystemConfig::deviceConfig() const
{
    auto cfg = dram::makeDdr3_1600(density, tREFW, timeScale, fgrMode());
    cfg.org.channels = channels;
    cfg.org.ranksPerChannel = ranksPerChannel;
    cfg.org.banksPerRank = banksPerRank;
    cfg.org.xorBankHash = xorBankHash;
    cfg.org.check();
    return cfg;
}

Tick
SystemConfig::effectiveQuantum() const
{
    if (quantum != 0)
        return quantum;
    // The paper's alignment: one quantum per per-bank refresh slot
    // (64 ms / 16 banks = 4 ms; 32 ms / 16 banks = 2 ms).  Channels
    // refresh in lock-step, so only banks-per-channel matters.
    const Tick scaledWindow = tREFW / timeScale;
    return scaledWindow
        / static_cast<Tick>(ranksPerChannel * banksPerRank);
}

int
SystemConfig::effectiveBanksPerTask() const
{
    if (banksPerTaskPerRank > 0)
        return banksPerTaskPerRank;
    // Paper rule (sections 6.2/6.6): leave each task out of exactly
    // the share of banks its siblings can cover, i.e. 6 of 8 at 1:4
    // and 4 of 8 at 1:2.
    const int excluded = banksPerRank / tasksPerCore;
    return std::max(1, banksPerRank - std::max(1, excluded));
}

void
SystemConfig::check() const
{
    if (numCores < 1 || tasksPerCore < 1)
        fatal("need at least one core and one task per core");
    if (!benchmarks.empty()
        && static_cast<int>(benchmarks.size()) != totalTasks()) {
        fatal("benchmark list size ", benchmarks.size(),
              " does not match task count ", totalTasks());
    }
    if (partitioning != Partitioning::None
        && effectiveBanksPerTask() > banksPerRank) {
        fatal("banksPerTaskPerRank exceeds banks per rank");
    }
    if (refreshAwareScheduling
        && policy != Policy::CoDesign) {
        fatal("refresh-aware scheduling requires the co-design "
              "refresh schedule");
    }
    if (etaThresh < 1)
        fatal("etaThresh must be >= 1");
    if (shards < 0)
        fatal("shards must be >= 0 (0 = legacy kernel)");
    if (shards > 0 && shardEpoch <= 0)
        fatal("sharded kernel needs a positive epoch");
    if (coreLanes < 0)
        fatal("coreLanes must be >= 0 (0 = cores on the main lane)");
    if (coreLanes > 0 && coreLaneEpoch <= 0)
        fatal("core-cluster lanes need a positive epoch");
    serving.check();
    telemetry.check();
}

} // namespace refsched::core
