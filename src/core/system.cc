#include "core/system.hh"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "simcore/logging.hh"
#include "validate/checker.hh"
#include "validate/os_auditor.hh"
#include "validate/refresh_window_monitor.hh"
#include "validate/scenario_auditor.hh"
#include "validate/timing_auditor.hh"
#include "workload/hotspot_source.hh"
#include "workload/profile.hh"

namespace refsched::core
{

namespace
{

using ProfileClock = std::chrono::steady_clock;

double
msSince(ProfileClock::time_point start)
{
    return std::chrono::duration<double, std::milli>(
               ProfileClock::now() - start)
        .count();
}

/** The SyntheticTraceGenerator behind a task's source (direct, or
 *  wrapped by the adversarial hotspot source). */
const workload::SyntheticTraceGenerator &
generatorOf(const os::Task &t)
{
    if (const auto *adv =
            dynamic_cast<const workload::AdversarialHotspotSource *>(
                t.source))
        return adv->generator();
    return *static_cast<const workload::SyntheticTraceGenerator *>(
        t.source);
}

} // namespace

System::System(const SystemConfig &cfg)
    : cfg_(cfg), dev_(cfg.deviceConfig())
{
    const auto t0 = ProfileClock::now();
    cfg_.check();

    // Default workload when none given: mcf on every task.
    if (cfg_.benchmarks.empty())
        cfg_.benchmarks.assign(
            static_cast<std::size_t>(cfg_.totalTasks()), "mcf");

    auto refresh =
        dram::makeRefreshScheduler(cfg_.refreshPolicy(), dev_);
    mc_ = std::make_unique<memctrl::MemoryController>(
        eq_, dev_, std::move(refresh), cfg_.mcParams);
    mc_->registerStats(registry_, "mc");

    // Sharded kernel: one controller lane per channel (shards > 0)
    // and/or one lane per core cluster (coreLanes > 0), plus the
    // cross-shard router; cores then talk to the router, not the
    // controller.  The worker count is fixed at run() time (probes
    // force sequential lanes).  Core lanes shrink the window to
    // coreLaneEpoch and align every window boundary to the OS
    // quantum so setTask and director actions always run with the
    // lanes caught up.
    effCoreLanes_ = std::min(cfg_.coreLanes, cfg_.numCores);
    const bool laneMode = effCoreLanes_ > 0;
    if (cfg_.shards > 0 || laneMode) {
        const Tick epoch = laneMode
            ? std::min(cfg_.shardEpoch, cfg_.coreLaneEpoch)
            : cfg_.shardEpoch;
        shardKernel_ = std::make_unique<ShardKernel>(
            eq_, cfg_.shards > 0 ? cfg_.channels : 0, epoch,
            effCoreLanes_, laneMode ? cfg_.effectiveQuantum() : 0);
        shardRouter_ = std::make_unique<memctrl::ShardRouter>(
            *shardKernel_, *mc_, cfg_.shards > 0);
    }
    memPort_ = shardRouter_
        ? static_cast<memctrl::MemoryPort *>(shardRouter_.get())
        : static_cast<memctrl::MemoryPort *>(mc_.get());
    memctrl::MemoryPort &memPort = *memPort_;

    buddy_ = std::make_unique<os::BuddyAllocator>(mc_->mapping());
    vm_ = std::make_unique<os::VirtualMemory>(mc_->mapping(), *buddy_);
    caches_ = std::make_unique<cache::CacheHierarchy>(
        cfg_.numCores, cfg_.cacheParams);
    caches_->registerStats(registry_, "caches");

    for (int i = 0; i < cfg_.numCores; ++i) {
        cores_.push_back(std::make_unique<cpu::Core>(
            eq_, i, cfg_.coreParams, *caches_, memPort, *vm_));
        cores_.back()->registerStats(registry_,
                                     "core" + std::to_string(i));
    }

    // Core-cluster lanes: contiguous blocks -- core i lives on
    // cluster i * lanes / numCores.  The assignment only decides
    // which thread runs the core; results are identical for every
    // lane count >= 1 (see shard_kernel.hh).  The fabric's boundary
    // hook runs after the router's (registration order), so a
    // resumed core observes this window's completions already
    // staged.
    if (laneMode) {
        caches_->enableLaneMode();
        std::vector<EventQueue *> laneOfCore;
        std::vector<cpu::Core *> corePtrs;
        for (int i = 0; i < cfg_.numCores; ++i) {
            const int cluster = i * effCoreLanes_ / cfg_.numCores;
            EventQueue &lane = shardKernel_->clusterLane(cluster);
            cores_[static_cast<std::size_t>(i)]->attachCoreLane(lane);
            laneOfCore.push_back(&lane);
            corePtrs.push_back(
                cores_[static_cast<std::size_t>(i)].get());
        }
        shardRouter_->setCoreLanes(std::move(laneOfCore));
        fabric_ = std::make_unique<ClusterFabric>(
            std::move(corePtrs), *caches_, *vm_);
        shardKernel_->setBoundaryHook(
            [this](Tick b) { fabric_->onBoundary(b); });
    }

    os::SchedulerParams sp;
    sp.quantum = cfg_.effectiveQuantum();
    sp.refreshAware = cfg_.refreshAwareScheduling;
    sp.etaThresh = cfg_.etaThresh;
    sp.bestEffort = cfg_.bestEffort;
    sched_ = std::make_unique<os::Scheduler>(eq_, sp);

    std::vector<os::CpuContext *> cpuPtrs;
    for (auto &c : cores_)
        cpuPtrs.push_back(c.get());
    sched_->attachCpus(std::move(cpuPtrs));
    sched_->registerStats(registry_, "sched");

    // The co-design's hardware/software contract: the MC exposes
    // which bank each channel refreshes during a quantum.  Built
    // unconditionally (it returns empty under non-analytic policies)
    // because the adversarial scenario generator consumes it even
    // when refresh-aware scheduling is off.
    {
        auto &rs = mc_->refreshScheduler();
        const int channels = cfg_.channels;
        refreshQuery_ = [&rs, channels](Tick from) {
            std::vector<int> banks;
            for (int ch = 0; ch < channels; ++ch) {
                const auto chBanks = rs.banksUnderRefreshAt(ch, from);
                banks.insert(banks.end(), chBanks.begin(),
                             chBanks.end());
            }
            return banks;
        };
    }
    if (cfg_.refreshAwareScheduling)
        sched_->setRefreshQuery(refreshQuery_);

    // Install the invariant checkers BEFORE the tasks build so the
    // OS auditor observes the pre-touch page allocations too.
    if (cfg_.validate) {
        if (!validate::kValidateCompiledIn) {
            warn("cfg.validate requested but the build has "
                 "REFSCHED_VALIDATE=0; checkers are inert");
        } else {
            enableProbeHub();
            probeHub_->add(
                std::make_unique<validate::TimingAuditor>(dev_));
            probeHub_->add(
                std::make_unique<validate::RefreshWindowMonitor>(
                    dev_, cfg_.refreshPolicy(),
                    cfg_.mcParams.maxPostponedRefreshes,
                    cfg_.mcParams.refreshPausing));
            probeHub_->add(std::make_unique<validate::OsAuditor>(
                mc_->mapping(), buddy_.get(),
                cfg_.refreshAwareScheduling, cfg_.etaThresh,
                cfg_.bestEffort));
            probeHub_->add(
                std::make_unique<validate::ScenarioAuditor>(
                    mc_->mapping()));
        }
    }

    buildTasks();
    assignBankMasks();
    if (cfg_.preTouchPages)
        preTouchFootprints();

    if (!cfg_.scenario.empty()) {
        os::ScenarioDirector::Hooks hooks;
        hooks.spawnTask = [this](const workload::ScenarioEvent &ev,
                                 Pid pid) {
            return spawnScenarioTask(ev, pid);
        };
        hooks.reassignMasks =
            [this](const std::vector<os::Task *> &live) {
                assignBankMasks(live);
            };
        hooks.phaseState = [](const os::Task &t) {
            const auto &gen = generatorOf(t);
            return std::make_pair(gen.phaseEpoch(),
                                  gen.footprintBytes());
        };
        director_ = std::make_unique<os::ScenarioDirector>(
            eq_, *sched_, *vm_, *buddy_, *memPort_, mc_->mapping(),
            cfg_.scenario, std::move(hooks));
        director_->registerStats(registry_, "scenario");
        director_->setProbe(probeHub_.get());
    }

    // Open-loop serving: the injector lives on the main lane (like
    // the scenario director); its coreId = -1 reads stage through
    // the router onto their owning channel lane at epoch boundaries
    // in sharded mode, so enabling it never perturbs the
    // {jobs}x{shards}x{core-lanes} identity matrix.
    if (cfg_.serving.enabled) {
        workload::ServingInjector::Hooks hooks;
        if (director_) {
            hooks.liveTasks =
                [this]() -> const std::vector<os::Task *> & {
                return director_->liveTasks();
            };
        } else {
            for (auto &t : tasks_)
                servingTasks_.push_back(t.get());
            hooks.liveTasks =
                [this]() -> const std::vector<os::Task *> & {
                return servingTasks_;
            };
        }
        hooks.footprintBytes = [](const os::Task &t) {
            return generatorOf(t).footprintBytes();
        };
        hooks.translate = [this](os::Task &t, Addr vaddr) {
            return vm_->translate(t, vaddr);
        };
        servingInjector_ = std::make_unique<workload::ServingInjector>(
            cfg_.serving, eq_, *memPort_, std::move(hooks),
            cfg_.seed);
        servingInjector_->registerStats(registry_, "serving");
    }

    // Sampled telemetry: constructed and hooked AFTER every other
    // component so that in sharded mode its boundary hook is the
    // LAST phase-C hook -- the router and fabric have drained their
    // mailboxes and the window is sealed when the samplers read the
    // component counters.  Telemetry never routes through the probe
    // hub, so enabling it keeps the kernel's worker threads (probes
    // force sequential lanes; telemetry must not).  The kernel
    // self-profiler rides along: it is opt-in for the same runs.
    if (cfg_.telemetry.enabled) {
        telemetry_ =
            std::make_unique<obs::TelemetryRecorder>(cfg_.telemetry);
        wireTelemetry();
        if (shardKernel_) {
            shardKernel_->setBoundaryHook(
                [this](Tick b) { telemetry_->onBoundary(b); });
            shardKernel_->enableProfile();
        } else {
            telemetry_->armPeriodic(eq_);
        }
    }
    profile_.constructMs = msSince(t0);
}

System::~System() = default;

void
System::enableProbeHub()
{
    if (probeHub_)
        return;
    probeHub_ = std::make_unique<validate::CheckerSet>();
    mc_->setProbe(probeHub_.get());
    sched_->setProbe(probeHub_.get());
    buddy_->setProbe(probeHub_.get(), &eq_);
    if (director_)
        director_->setProbe(probeHub_.get());
}

void
System::attachProbe(validate::Probe *probe)
{
    enableProbeHub();
    probeHub_->attachExternal(probe);
}

std::vector<os::Task *>
System::tasks()
{
    std::vector<os::Task *> out;
    for (auto &t : tasks_)
        out.push_back(t.get());
    return out;
}

void
System::buildTasks()
{
    const int totalBanks = cfg_.totalBanks();
    const auto pageBytes = mc_->mapping().pageBytes();

    // Per-task macro-phase schedules from the scenario script.
    std::vector<workload::PhaseSchedule> phases(
        static_cast<std::size_t>(cfg_.totalTasks()));
    for (const auto &[idx, sched] : cfg_.scenario.initialPhases) {
        if (idx < cfg_.totalTasks())
            phases[static_cast<std::size_t>(idx)] = sched;
        else
            warn("scenario phase= names task ", idx, " but only ",
                 cfg_.totalTasks(), " task(s) exist; ignored");
    }

    // Capacity guard: scaled footprints must fit physical memory
    // (the paper's region-of-interest working sets fit its DIMM; at
    // low densities we shrink proportionally, mirroring how a real
    // run would be memory-capacity limited).  Phase schedules can
    // grow a footprint mid-run, so reserve each task's peak.
    std::uint64_t wanted = 0;
    std::vector<std::uint64_t> footprints;
    for (std::size_t i = 0; i < cfg_.benchmarks.size(); ++i) {
        const auto &prof =
            workload::profileByName(cfg_.benchmarks[i]);
        std::uint64_t fp = std::max<std::uint64_t>(
            prof.footprintBytes / cfg_.timeScale, prof.hotsetBytes);
        fp = divCeil(fp, pageBytes) * pageBytes;
        footprints.push_back(fp);
        const double peak =
            i < phases.size() ? phases[i].maxFootprintScale() : 1.0;
        wanted += static_cast<std::uint64_t>(
            static_cast<double>(fp) * std::max(peak, 1.0));
    }
    const std::uint64_t budget =
        mc_->mapping().totalFrames() * pageBytes * 9 / 10;
    if (wanted > budget) {
        const double scale = static_cast<double>(budget)
            / static_cast<double>(wanted);
        warn("footprints exceed physical memory; scaling by ", scale);
        for (auto &fp : footprints) {
            fp = static_cast<std::uint64_t>(
                static_cast<double>(fp) * scale);
            fp = std::max<std::uint64_t>(fp / pageBytes, 1) * pageBytes;
        }
    }

    for (int i = 0; i < cfg_.totalTasks(); ++i) {
        const auto &name =
            cfg_.benchmarks[static_cast<std::size_t>(i)];
        // The time-scaled simulation shrinks the instructions
        // executed per quantum by timeScale, so cache-residency is
        // only preserved if the hot working set shrinks by the same
        // factor (keeping instructions-per-quantum : hot-set-size
        // constant).  Footprints were scaled above for the same
        // reason.
        workload::BenchmarkProfile prof = workload::profileByName(name);
        prof.hotsetBytes = std::max<std::uint64_t>(
            prof.hotsetBytes / cfg_.timeScale, 4 * kKiB);
        prof.phases = phases[static_cast<std::size_t>(i)];
        auto task = std::make_unique<os::Task>(
            static_cast<Pid>(i + 1), name, totalBanks);
        auto src = std::make_unique<workload::SyntheticTraceGenerator>(
            prof, cfg_.seed * 1000003ULL + static_cast<std::uint64_t>(i),
            footprints[static_cast<std::size_t>(i)]);
        task->source = src.get();
        // Interleave tasks across cores so mixed workloads land
        // evenly (task i runs on core i % numCores and belongs to
        // per-core partition group i / numCores).
        sched_->addTask(task.get(), i % cfg_.numCores);
        REFSCHED_PROBE(probeHub_.get(),
                       onTaskSpawn({eq_.now(), task->pid(), true,
                                    i % cfg_.numCores}));
        sources_.push_back(std::move(src));
        tasks_.push_back(std::move(task));
    }
}

void
System::assignBankMasks()
{
    std::vector<os::Task *> all;
    for (auto &t : tasks_)
        all.push_back(t.get());
    assignBankMasks(all);
}

void
System::assignBankMasks(const std::vector<os::Task *> &live)
{
    if (cfg_.partitioning == Partitioning::None)
        return;  // bank-oblivious: all banks allowed (default)

    const int bpr = cfg_.banksPerRank;
    const int allowedPerRank = cfg_.effectiveBanksPerTask();
    const int excluded = bpr - allowedPerRank;

    for (int i = 0; i < static_cast<int>(live.size()); ++i) {
        os::Task &t = *live[static_cast<std::size_t>(i)];
        const int group = i / cfg_.numCores;  // slot within its core

        std::vector<bool> allowedInRank(
            static_cast<std::size_t>(bpr), true);
        if (cfg_.partitioning == Partitioning::Soft) {
            // Group g is excluded from `excluded` consecutive
            // bank-ids starting at g*excluded (mod bpr): every
            // bank-id is excluded by some group when the groups
            // cover the rank, which is what lets the refresh-aware
            // scheduler always find a clean task (section 5.3).
            // The start is additionally staggered per core so that
            // tasks co-scheduled on different cores have different
            // (overlapping) allowed sets, preserving more combined
            // bank-level parallelism than identical masks would.
            const int coreStagger = i % cfg_.numCores;
            for (int k = 0; k < excluded; ++k) {
                allowedInRank[static_cast<std::size_t>(
                    (group * excluded + coreStagger + k) % bpr)] =
                    false;
            }
        } else {  // Hard partitioning (Liu et al.): exclusive slices.
            std::fill(allowedInRank.begin(), allowedInRank.end(),
                      false);
            const int per = std::max(1, bpr / cfg_.tasksPerCore);
            for (int k = 0; k < per; ++k) {
                allowedInRank[static_cast<std::size_t>(
                    (group * per + k) % bpr)] = true;
            }
        }

        // Mirror the per-rank pattern across all ranks and channels.
        for (int g = 0; g < cfg_.totalBanks(); ++g)
            t.allowBank(g, allowedInRank[static_cast<std::size_t>(
                               g % bpr)]);
    }
}

void
System::preTouchFootprints()
{
    const auto pageBytes = mc_->mapping().pageBytes();

    // Allocate in interleaved rounds so no task monopolises the
    // shared free lists (soft partitioning shares banks by design).
    std::vector<std::uint64_t> nextPage(tasks_.size(), 0);
    std::vector<std::uint64_t> numPages;
    for (auto &t : tasks_)
        numPages.push_back(
            divCeil(generatorOf(*t).footprintBytes(), pageBytes));

    constexpr std::uint64_t kChunk = 64;
    bool progress = true;
    while (progress) {
        progress = false;
        for (std::size_t i = 0; i < tasks_.size(); ++i) {
            const std::uint64_t end =
                std::min(numPages[i], nextPage[i] + kChunk);
            for (; nextPage[i] < end; ++nextPage[i]) {
                vm_->translate(*tasks_[i], nextPage[i] * pageBytes);
                progress = true;
            }
        }
    }
}

os::Task *
System::spawnScenarioTask(const workload::ScenarioEvent &ev, Pid pid)
{
    const auto pageBytes = mc_->mapping().pageBytes();
    workload::BenchmarkProfile prof =
        workload::profileByName(ev.benchmark);
    prof.hotsetBytes = std::max<std::uint64_t>(
        prof.hotsetBytes / cfg_.timeScale, 4 * kKiB);
    prof.phases = ev.phases;

    std::uint64_t fp = std::max<std::uint64_t>(
        prof.footprintBytes / cfg_.timeScale,
        workload::profileByName(ev.benchmark).hotsetBytes);
    fp = static_cast<std::uint64_t>(static_cast<double>(fp)
                                    * ev.footprintScale);
    fp = std::max<std::uint64_t>(fp, prof.hotsetBytes);
    fp = divCeil(fp, pageBytes) * pageBytes;

    auto task = std::make_unique<os::Task>(pid, ev.benchmark,
                                           cfg_.totalBanks());
    const std::uint64_t seed = cfg_.seed * 1000003ULL
        + 7919ULL * static_cast<std::uint64_t>(pid);
    std::unique_ptr<cpu::InstructionSource> src;
    if (ev.adversarial) {
        src = std::make_unique<workload::AdversarialHotspotSource>(
            prof, seed, fp, task.get(), &mc_->mapping(),
            refreshQuery_, [this] { return eq_.now(); });
    } else {
        src = std::make_unique<workload::SyntheticTraceGenerator>(
            prof, seed, fp);
    }
    task->source = src.get();
    // No pre-touch: an arriving tenant demand-pages its footprint,
    // which is exactly the fragmentation regime churn should test.
    sources_.push_back(std::move(src));
    tasks_.push_back(std::move(task));
    return tasks_.back().get();
}

void
System::wireTelemetry()
{
    auto &tel = *telemetry_;
    const auto count = [](const Scalar &s) {
        return static_cast<std::int64_t>(std::llround(s.value()));
    };

    // Lane 0: main-lane software components (scheduler, serving).
    tel.addDelta("sched.quanta", 0, [this, count] {
        return count(sched_->quantaScheduled);
    });
    tel.addDelta("sched.cleanPicks", 0, [this, count] {
        return count(sched_->cleanPicks);
    });
    if (servingInjector_) {
        auto *srv = servingInjector_.get();
        tel.addGauge("serving.backlog", 0, [srv] {
            return static_cast<std::int64_t>(srv->backlogDepth());
        });
        tel.addDelta("serving.arrivals", 0, [srv] {
            return static_cast<std::int64_t>(srv->arrivals());
        });
        tel.addDelta("serving.drops", 0, [srv] {
            return static_cast<std::int64_t>(srv->dropped());
        });
        tel.addDelta("serving.completed", 0, [srv] {
            return static_cast<std::int64_t>(srv->completed());
        });
    }

    // Lane 1+ch: per-channel controller state.  Gauges read the
    // instantaneous queue/refresh state; deltas difference the
    // registered Scalars.  The occupancy integrals are integer-exact
    // (sums of depth x dt products), so llround is lossless.
    for (int ch = 0; ch < cfg_.channels; ++ch) {
        const int lane = 1 + ch;
        const std::string p = "ch" + std::to_string(ch) + ".";
        auto *mc = mc_.get();
        tel.addGauge(p + "readQ", lane, [mc, ch] {
            return static_cast<std::int64_t>(mc->readQueueSize(ch));
        });
        tel.addGauge(p + "writeQ", lane, [mc, ch] {
            return static_cast<std::int64_t>(mc->writeQueueSize(ch));
        });
        tel.addGauge(p + "blockedReads", lane, [mc, ch] {
            return static_cast<std::int64_t>(mc->blockedReadsNow(ch));
        });
        tel.addGauge(p + "refreshBacklog", lane, [mc, ch] {
            return static_cast<std::int64_t>(mc->refreshBacklog(ch));
        });
        tel.addGauge(p + "refreshEngaged", lane, [mc, ch] {
            return static_cast<std::int64_t>(
                mc->refreshEngagedNow(ch) ? 1 : 0);
        });
        const auto &s = mc->channelStats(ch);
        tel.addDelta(p + "reads", lane,
                     [&s, count] { return count(s.reads); });
        tel.addDelta(p + "writes", lane,
                     [&s, count] { return count(s.writes); });
        tel.addDelta(p + "rowHits", lane,
                     [&s, count] { return count(s.rowHits); });
        tel.addDelta(p + "rowMisses", lane,
                     [&s, count] { return count(s.rowMisses); });
        tel.addDelta(p + "refreshCommands", lane, [&s, count] {
            return count(s.refreshCommands);
        });
        tel.addDelta(p + "blockedReadsTotal", lane, [&s, count] {
            return count(s.readsBlockedByRefresh);
        });
        tel.addGauge(p + "readQOccInt", lane, [mc, ch] {
            return static_cast<std::int64_t>(
                std::llround(mc->readQueueOccupancyIntegral(ch)));
        });
        tel.addGauge(p + "writeQOccInt", lane, [mc, ch] {
            return static_cast<std::int64_t>(
                std::llround(mc->writeQueueOccupancyIntegral(ch)));
        });
    }

    // Lane 1+channels+i: per-core progress.  IPC is derivable from
    // the instrs delta and the fixed period; emitting the raw count
    // keeps every series integer (byte-stable formatting).
    for (int i = 0; i < cfg_.numCores; ++i) {
        const int lane = 1 + cfg_.channels + i;
        const std::string p = "core" + std::to_string(i) + ".";
        auto *core = cores_[static_cast<std::size_t>(i)].get();
        tel.addDelta(p + "instrs", lane, [core, count] {
            return count(core->instrsIssued);
        });
        tel.addDelta(p + "dramReads", lane, [core, count] {
            return count(core->dramReads);
        });
        tel.addDelta(p + "robStallTicks", lane, [core, count] {
            return count(core->robStallTicks);
        });
        tel.addGauge(p + "runq", lane, [this, i] {
            return static_cast<std::int64_t>(
                sched_->runQueue(i).size());
        });
    }
}

void
System::resetMeasurement()
{
    registry_.resetAll();
    caches_->resetStats();
    // Re-seed the queue-occupancy accrual marks (and peaks) so the
    // integrals cover the measured interval only.
    mc_->resetOccupancyMarks();
    for (auto &t : tasks_)
        t->resetAccounting();
    if (telemetry_)
        telemetry_->restart();
}

Metrics
System::run(int warmupQuanta, int measureQuanta)
{
    REFSCHED_ASSERT(!ran_, "System::run may only be called once");
    REFSCHED_ASSERT(measureQuanta > 0, "need a measurement interval");
    ran_ = true;

    const Tick q = cfg_.effectiveQuantum();
    sched_->start();
    if (director_) {
        std::vector<os::Task *> initial;
        for (auto &t : tasks_)
            initial.push_back(t.get());
        director_->start(initial);
    }

    // Worker threads only pay off without instrumentation: probes
    // fan into one shared hub, so any attached probe (or checker
    // set) forces sequential lane execution.  Results are identical
    // either way -- the sharded kernel's phase order is fixed.
    if (shardKernel_) {
        shardKernel_->setWorkers(
            probeHub_ ? 1 : cfg_.shards + effCoreLanes_);
    }
    const auto runKernel = [this](Tick limit) {
        return shardKernel_ ? shardKernel_->runUntil(limit)
                            : eq_.runUntil(limit);
    };

    // Pre-size the sample buffers for the whole run so the sampling
    // hot path never allocates (warmup passes are dropped at the
    // measurement reset; the capacity survives).
    if (telemetry_) {
        const Tick total =
            static_cast<Tick>(warmupQuanta + measureQuanta) * q;
        telemetry_->reserveSamples(static_cast<std::size_t>(
            total / cfg_.telemetry.periodTicks + 2));
    }

    const auto w0 = ProfileClock::now();
    profile_.warmupEvents =
        runKernel(static_cast<Tick>(warmupQuanta) * q);
    profile_.warmupMs = msSince(w0);
    resetMeasurement();

    const Tick start = eq_.now();
    const auto m0 = ProfileClock::now();
    profile_.measureEvents = runKernel(
        static_cast<Tick>(warmupQuanta + measureQuanta) * q);
    profile_.measureMs = msSince(m0);
    if (probeHub_)
        probeHub_->finalize(eq_.now());
    return collectMetrics(eq_.now() - start);
}

void
System::writeStatsJson(std::ostream &os, const Metrics &m) const
{
    os << "{\n"
       << "  \"policy\": \"" << toString(cfg_.policy) << "\",\n"
       << "  \"density\": \"" << dram::toString(cfg_.density)
       << "\",\n"
       << "  \"timeScale\": " << cfg_.timeScale << ",\n"
       << "  \"seed\": " << cfg_.seed << ",\n"
       << "  \"serving\": \""
       << (cfg_.serving.enabled ? cfg_.serving.serialize() : "")
       << "\",\n"
       << "  \"cores\": " << cfg_.numCores << ",\n"
       << "  \"tasksPerCore\": " << cfg_.tasksPerCore << ",\n"
       << "  \"metrics\": ";
    m.toJson(os, 2);
    os << ",\n"
       << "  \"selfProfile\": {\"constructMs\": "
       << profile_.constructMs
       << ", \"warmupMs\": " << profile_.warmupMs
       << ", \"measureMs\": " << profile_.measureMs
       << ", \"warmupEvents\": " << profile_.warmupEvents
       << ", \"measureEvents\": " << profile_.measureEvents
       << ", \"measureEventsPerSec\": "
       << profile_.measureEventsPerSec();
    if (shardKernel_ && shardKernel_->profileEnabled()) {
        os << ", \"kernel\": ";
        shardKernel_->renderProfileJson(os);
    }
    os << "},\n"
       << "  \"stats\": ";
    registry_.dumpJson(os, 2);
    os << "\n}\n";
}

Metrics
System::collectMetrics(Tick measuredTicks) const
{
    Metrics m;
    m.measuredTicks = measuredTicks;

    const Tick cpuPeriod = cfg_.coreParams.cpuPeriod;

    double invIpcSum = 0.0;
    int counted = 0;
    for (const auto &t : tasks_) {
        TaskMetrics tm;
        tm.pid = t->pid();
        tm.benchmark = t->name();
        tm.instructions = t->instrsRetired;
        tm.cycles = t->scheduledTicks / cpuPeriod;
        tm.ipc = t->ipc(cpuPeriod);
        const auto misses = caches_->l2MissesOf(t->pid());
        tm.mpki = tm.instructions
            ? 1000.0 * static_cast<double>(misses)
                / static_cast<double>(tm.instructions)
            : 0.0;
        tm.dramReads = t->dramReads;
        tm.pageFaults = t->pageFaults;
        tm.fallbackAllocs = t->fallbackAllocs;
        tm.residentPages = t->residentPages();
        tm.quantaRun = t->quantaRun;
        m.tasks.push_back(tm);

        if (tm.ipc > 0.0) {
            invIpcSum += 1.0 / tm.ipc;
            m.weightedIpcSum += tm.ipc;
            ++counted;
        } else if (cfg_.scenario.empty()) {
            // Under churn a task may legitimately exit before the
            // measured interval (or spawn after it) -- zero IPC is
            // expected, not a configuration bug.
            warn("task ", t->name(), " (pid ", t->pid(),
                 ") has zero IPC in the measured interval");
        }
    }
    m.harmonicMeanIpc =
        counted ? static_cast<double>(counted) / invIpcSum : 0.0;

    double latSum = 0.0;
    std::uint64_t latSamples = 0;
    double rowHits = 0.0, rowMisses = 0.0;
    for (int ch = 0; ch < cfg_.channels; ++ch) {
        const auto &s = mc_->channelStats(ch);
        m.dramReads += static_cast<std::uint64_t>(s.reads.value());
        m.dramWrites += static_cast<std::uint64_t>(s.writes.value());
        m.refreshCommands +=
            static_cast<std::uint64_t>(s.refreshCommands.value());
        m.readsBlockedByRefresh += static_cast<std::uint64_t>(
            s.readsBlockedByRefresh.value());
        latSum += s.readLatency.total();
        latSamples += s.readLatency.samples();
        rowHits += s.rowHits.value();
        rowMisses += s.rowMisses.value();
    }
    if (latSamples > 0) {
        m.avgReadLatencyMemCycles = latSum
            / static_cast<double>(latSamples)
            / static_cast<double>(dev_.timings.tCK);
    }
    if (rowHits + rowMisses > 0.0)
        m.rowHitRate = rowHits / (rowHits + rowMisses);
    if (m.dramReads > 0) {
        m.blockedReadFraction =
            static_cast<double>(m.readsBlockedByRefresh)
            / static_cast<double>(m.dramReads);
    }

    std::uint64_t totalInstrs = 0;
    for (const auto &t : m.tasks)
        totalInstrs += t.instructions;
    for (int ch = 0; ch < cfg_.channels; ++ch) {
        const auto e = mc_->energyBreakdown(ch, measuredTicks);
        m.energy.activatePj += e.activatePj;
        m.energy.readWritePj += e.readWritePj;
        m.energy.refreshPj += e.refreshPj;
        m.energy.backgroundPj += e.backgroundPj;
    }
    if (totalInstrs > 0)
        m.energyPerInstructionPj =
            m.energy.totalPj() / static_cast<double>(totalInstrs);

    m.quantaScheduled =
        static_cast<std::uint64_t>(sched_->quantaScheduled.value());
    m.cleanPicks =
        static_cast<std::uint64_t>(sched_->cleanPicks.value());
    m.deferredPicks =
        static_cast<std::uint64_t>(sched_->deferredPicks.value());
    m.fallbackPicks =
        static_cast<std::uint64_t>(sched_->fallbackPicks.value());
    m.bestEffortPicks =
        static_cast<std::uint64_t>(sched_->bestEffortPicks.value());
    m.vruntimeSpreadQuanta =
        static_cast<double>(sched_->vruntimeSpread())
        / static_cast<double>(cfg_.effectiveQuantum());

    if (probeHub_) {
        m.validationViolations = probeHub_->violationCount();
        if (const auto *v = probeHub_->firstViolation()) {
            m.firstViolation = v->checker + " @" +
                std::to_string(v->tick) + "ps: " + v->message;
        }
    }

    return m;
}

} // namespace refsched::core
