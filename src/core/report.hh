/**
 * @file
 * Plain-text table rendering for the figure benches: aligned
 * columns, optional CSV, and helpers for the paper's "% improvement
 * over baseline" formatting.
 */

#ifndef REFSCHED_CORE_REPORT_HH
#define REFSCHED_CORE_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

namespace refsched::core
{

class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Aligned fixed-width text rendering. */
    void print(std::ostream &os) const;

    /** Comma-separated rendering. */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

    /** Column headers (for structured emitters, e.g. JSON). */
    const std::vector<std::string> &headers() const { return headers_; }

    /** Row cells (for structured emitters, e.g. JSON). */
    const std::vector<std::vector<std::string>> &
    rowData() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a ratio as a percentage improvement: 1.162 -> "+16.2%". */
std::string pctImprovement(double ratio);

/** Fixed-precision double formatting. */
std::string fmt(double v, int precision = 3);

} // namespace refsched::core

#endif // REFSCHED_CORE_REPORT_HH
