#include "core/experiment.hh"

#include "core/system.hh"
#include "workload/workloads.hh"

namespace refsched::core
{

SystemConfig
makeConfig(const std::string &workloadName, Policy policy,
           dram::DensityGb density, Tick tREFW, int numCores,
           int tasksPerCore, unsigned timeScale)
{
    SystemConfig cfg;
    cfg.numCores = numCores;
    cfg.tasksPerCore = tasksPerCore;
    cfg.density = density;
    cfg.tREFW = tREFW;
    cfg.timeScale = timeScale;
    cfg.applyPolicy(policy);
    cfg.benchmarks = workload::workloadByName(workloadName)
                         .taskList(cfg.totalTasks());
    return cfg;
}

Metrics
runOnce(const SystemConfig &cfg, const RunOptions &opts)
{
    System system(cfg);
    return system.run(opts.warmupQuanta, opts.measureQuanta);
}

} // namespace refsched::core
