/**
 * @file
 * The fully-wired simulated machine: cores + caches + memory
 * controller + DRAM + OS (allocator, VM, scheduler) + workload.
 *
 * Construction performs the co-design setup the paper describes:
 * the DRAM address mapping is exposed to the OS, tasks receive
 * possible_banks_vector masks per the partitioning mode, footprints
 * are pre-allocated through the bank-aware buddy allocator, and the
 * refresh schedule is exposed to the process scheduler when the
 * policy is CoDesign.
 *
 * run() executes warm-up quanta, resets all statistics, then runs
 * the measured quanta and returns Metrics.
 */

#ifndef REFSCHED_CORE_SYSTEM_HH
#define REFSCHED_CORE_SYSTEM_HH

#include <memory>
#include <ostream>
#include <vector>

#include "cache/cache_hierarchy.hh"
#include "core/cluster_fabric.hh"
#include "core/metrics.hh"
#include "core/system_config.hh"
#include "cpu/core.hh"
#include "memctrl/memory_controller.hh"
#include "os/buddy_allocator.hh"
#include "os/scenario_director.hh"
#include "os/scheduler.hh"
#include "os/task.hh"
#include "memctrl/shard_router.hh"
#include "os/virtual_memory.hh"
#include "obs/telemetry.hh"
#include "simcore/event_queue.hh"
#include "simcore/probe.hh"
#include "simcore/shard_kernel.hh"
#include "simcore/stats.hh"
#include "workload/serving.hh"
#include "workload/trace_generator.hh"

namespace refsched::validate
{
class CheckerSet;
} // namespace refsched::validate

namespace refsched::core
{

class System
{
  public:
    explicit System(const SystemConfig &cfg);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /**
     * Run @p warmupQuanta scheduling quanta, reset statistics, run
     * @p measureQuanta more, and return the measured metrics.  May
     * be called once per System.
     */
    Metrics run(int warmupQuanta, int measureQuanta);

    // --- Component access (examples, tests, custom experiments) ---
    EventQueue &eventQueue() { return eq_; }

    /** The sharded kernel, or null under the legacy kernel. */
    ShardKernel *shardKernel() { return shardKernel_.get(); }

    /** Core-cluster lane count after clamping to numCores (0 when
     *  core lanes are off). */
    int effectiveCoreLanes() const { return effCoreLanes_; }

    /** Events executed across every lane (legacy: the one queue). */
    std::uint64_t
    executedEvents() const
    {
        return shardKernel_ ? shardKernel_->executedTotal()
                            : eq_.executedCount();
    }
    memctrl::MemoryController &controller() { return *mc_; }
    os::BuddyAllocator &buddy() { return *buddy_; }
    os::VirtualMemory &vm() { return *vm_; }
    cache::CacheHierarchy &caches() { return *caches_; }
    os::Scheduler &scheduler() { return *sched_; }
    cpu::Core &core(int i) { return *cores_[static_cast<std::size_t>(i)]; }
    std::vector<os::Task *> tasks();

    /** The scenario engine, or null when cfg.scenario is empty. */
    os::ScenarioDirector *scenarioDirector() { return director_.get(); }

    /** The open-loop serving injector, or null when cfg.serving is
     *  disabled. */
    workload::ServingInjector *servingInjector()
    {
        return servingInjector_.get();
    }
    /** The telemetry recorder, or null when cfg.telemetry is
     *  disabled.  Sampling never perturbs simulated behaviour: in
     *  sharded mode it reads sealed window state from a boundary
     *  hook; in legacy mode it is a StatDump-priority event.
     *  Series values are byte-identical across {jobs} x {shards} x
     *  {workers} within a kernel timing mode (core lanes on/off are
     *  distinct modes, like the rest of the identity contract). */
    obs::TelemetryRecorder *telemetry() { return telemetry_.get(); }

    const SystemConfig &config() const { return cfg_; }
    StatRegistry &stats() { return registry_; }

    /** Dump every registered statistic. */
    void dumpStats(std::ostream &os) const { registry_.dump(os); }

    /**
     * Simulator self-profiling: host wall-clock and event-kernel
     * throughput per run phase.  Populated by the constructor and
     * run(); values are host-dependent and must never feed back into
     * simulated behaviour.
     */
    struct SelfProfile
    {
        double constructMs = 0.0;
        double warmupMs = 0.0;
        double measureMs = 0.0;
        std::uint64_t warmupEvents = 0;
        std::uint64_t measureEvents = 0;

        /** Measured-phase event throughput (events/s of host time). */
        double
        measureEventsPerSec() const
        {
            return measureMs > 0.0
                ? static_cast<double>(measureEvents)
                    / (measureMs / 1000.0)
                : 0.0;
        }
    };

    const SelfProfile &profile() const { return profile_; }

    /**
     * Machine-readable run artifact: configuration identity, the
     * measured Metrics, the simulator self-profile, and every
     * registered statistic (StatRegistry::dumpJson), as one JSON
     * document.
     */
    void writeStatsJson(std::ostream &os, const Metrics &m) const;

    /** Collect metrics for the interval since the last stat reset. */
    Metrics collectMetrics(Tick measuredTicks) const;

    /**
     * Route all component instrumentation events (DRAM commands,
     * scheduler picks, runqueue churn, page alloc/free) to @p probe
     * in addition to any checkers cfg.validate installed.  The probe
     * must outlive the System.  Call before run().
     */
    void attachProbe(validate::Probe *probe);

    /** The checkers installed by cfg.validate (null otherwise). */
    const validate::CheckerSet *checkers() const
    {
        return probeHub_.get();
    }

  private:
    void enableProbeHub();
    void buildTasks();
    void assignBankMasks();
    /** Re-binpack possible_banks_vector over @p live (list order
     *  decides partition groups -- the consolidation semantics). */
    void assignBankMasks(const std::vector<os::Task *> &live);
    void preTouchFootprints();
    void resetMeasurement();
    /** Register every telemetry series (channel, core, scheduler,
     *  serving) in (laneId, seriesId) order and hook the recorder
     *  into the active kernel. */
    void wireTelemetry();

    /** ScenarioDirector spawn hook: create the Task + source for a
     *  scenario spawn event and take ownership of both. */
    os::Task *spawnScenarioTask(const workload::ScenarioEvent &ev,
                                Pid pid);

    SystemConfig cfg_;
    dram::DramDeviceConfig dev_;
    EventQueue eq_;
    StatRegistry registry_;

    std::unique_ptr<memctrl::MemoryController> mc_;
    std::unique_ptr<ShardKernel> shardKernel_;
    std::unique_ptr<memctrl::ShardRouter> shardRouter_;
    std::unique_ptr<ClusterFabric> fabric_;
    int effCoreLanes_ = 0;
    std::unique_ptr<os::BuddyAllocator> buddy_;
    std::unique_ptr<os::VirtualMemory> vm_;
    std::unique_ptr<cache::CacheHierarchy> caches_;
    std::vector<std::unique_ptr<cpu::Core>> cores_;
    std::unique_ptr<os::Scheduler> sched_;
    std::vector<std::unique_ptr<cpu::InstructionSource>> sources_;
    std::vector<std::unique_ptr<os::Task>> tasks_;
    std::unique_ptr<os::ScenarioDirector> director_;
    std::unique_ptr<workload::ServingInjector> servingInjector_;
    /** Stable live-task list for serving without a scenario. */
    std::vector<os::Task *> servingTasks_;
    std::unique_ptr<obs::TelemetryRecorder> telemetry_;

    /** The port cores (and the scenario engine's migration traffic)
     *  enqueue into: the router in sharded mode, else the MC. */
    memctrl::MemoryPort *memPort_ = nullptr;

    /** Refresh-schedule exposure (empty result under non-analytic
     *  policies); feeds Algorithm 3 and the adversarial generator. */
    std::function<std::vector<int>(Tick)> refreshQuery_;

    /** Fan-out hub for checkers + externally attached probes. */
    std::unique_ptr<validate::CheckerSet> probeHub_;

    SelfProfile profile_;
    bool ran_ = false;
};

} // namespace refsched::core

#endif // REFSCHED_CORE_SYSTEM_HH
