/**
 * @file
 * Timeline recorder: a probe consumer that turns the instrumentation
 * event stream into a Chrome trace-event JSON file loadable in
 * Perfetto / chrome://tracing.
 *
 * Track layout:
 *   pid 1 "DRAM"  - one thread per global bank.  Complete ("X")
 *                   slices for refresh-slot occupancy and open-row
 *                   intervals; instant ("i") events for RD/WR CAS
 *                   and precharges (including idle-close expiries).
 *   pid 2 "OS"    - one thread per core.  One slice per scheduling
 *                   quantum, named by the picked pid and the
 *                   Algorithm 3 pick kind (clean / best-effort /
 *                   fallback / baseline / idle), with the banks
 *                   under refresh and the chosen task's resident
 *                   fraction in those banks as args.
 *   pid 1 counters - per-channel read/write queue depth and
 *                   refresh-blocked read count ("C" events).
 *   pid 3 "telemetry" - one counter track per sampled telemetry
 *                   series (obs/telemetry.hh), merged in through
 *                   addCounter() after the run.
 *
 * All timestamps are simulated time rendered by exact integer
 * arithmetic (obs/json.hh), so for a fixed seed the exported file is
 * byte-identical across hosts and across --jobs parallelism.
 *
 * The recorder buffers events in memory and writes on writeJson();
 * a [windowStart, windowEnd) trace window bounds memory for long
 * runs by dropping events that start outside the window (slices
 * still open at windowEnd are clipped to it).
 */

#ifndef REFSCHED_OBS_TIMELINE_HH
#define REFSCHED_OBS_TIMELINE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "dram/timings.hh"
#include "simcore/probe.hh"
#include "simcore/types.hh"

namespace refsched::obs
{

/** Trace-window bounds for a TimelineRecorder. */
struct TimelineOptions
{
    Tick windowStart = 0;
    Tick windowEnd = kMaxTick;
};

class TimelineRecorder final : public validate::Probe
{
  public:
    TimelineRecorder(const dram::DramOrganization &org, int numCpus,
                     const TimelineOptions &opt = {});

    // --- Probe interface ---
    void onDramCommand(const validate::DramCmdEvent &ev) override;
    void onSchedPick(const validate::SchedPickEvent &ev) override;
    void onMcQueue(const validate::McQueueEvent &ev) override;
    void finalize(Tick endTick) override;

    /**
     * Write the buffered timeline as a Chrome trace-event JSON
     * document (one event per line, keys in fixed order).  Call
     * after the run; finalize() must have closed open slices first
     * (System::run does this through the probe hub).
     */
    void writeJson(std::ostream &os) const;

    /** Convenience: writeJson to @p path; fatal() on I/O error. */
    void writeFile(const std::string &path) const;

    /**
     * Add one sampled-telemetry counter value as a "C" event on the
     * pid-3 track named @p track.  Called by
     * TelemetryRecorder::exportCounters after the run; the trace
     * window applies as for probe events.
     */
    void addCounter(Tick ts, const std::string &track,
                    std::int64_t value);

    // --- Introspection (fan-out identity tests) ---
    std::uint64_t dramCommandsSeen() const { return dramSeen_; }
    std::uint64_t schedPicksSeen() const { return picksSeen_; }
    std::uint64_t mcQueueEventsSeen() const { return mcqSeen_; }
    std::size_t eventCount() const { return entries_.size(); }

  private:
    /** One emitted trace event (slice, instant, or counter). */
    struct Entry
    {
        Tick ts = 0;
        /** Slice duration; ignored for 'i'/'C' phases. */
        Tick dur = 0;
        char phase = 'X';
        int pid = 1;
        int tid = 0;
        std::string name;
        /** Pre-rendered JSON object ("{...}"), or empty. */
        std::string args;
        /** Arrival order tiebreak for the stable sort. */
        std::uint64_t seq = 0;
    };

    /** Open-interval state for one global bank track. */
    struct BankState
    {
        bool rowOpen = false;
        std::uint64_t row = 0;
        Tick rowSince = 0;
        bool refreshing = false;
        Tick refreshSince = 0;
        Tick refreshUntil = 0;
    };

    /** Open quantum slice for one core track. */
    struct CpuState
    {
        bool open = false;
        Tick since = 0;
        Tick until = 0;
        std::string name;
        std::string args;
    };

    int globalBank(int ch, int rank, int bank) const;
    bool inWindow(Tick tick) const;
    void record(Entry e);
    void closeRow(BankState &b, int gb, Tick end, const char *how);
    void closeRefresh(BankState &b, int gb, Tick end);
    void closeQuantum(CpuState &s, int cpu, Tick end);

    dram::DramOrganization org_;
    int numCpus_;
    TimelineOptions opt_;

    std::vector<BankState> banks_;
    std::vector<CpuState> cpus_;
    std::vector<Entry> entries_;
    std::uint64_t nextSeq_ = 0;

    std::uint64_t dramSeen_ = 0;
    std::uint64_t picksSeen_ = 0;
    std::uint64_t mcqSeen_ = 0;
};

} // namespace refsched::obs

#endif // REFSCHED_OBS_TIMELINE_HH
