#include "obs/telemetry.hh"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>

#include "obs/timeline.hh"
#include "simcore/logging.hh"

namespace refsched::obs
{

void
TelemetryConfig::check() const
{
    if (!enabled)
        return;
    if (periodTicks <= 0)
        fatal("telemetry.periodTicks must be positive, got ",
              periodTicks);
}

TelemetryRecorder::TelemetryRecorder(const TelemetryConfig &cfg)
    : cfg_(cfg)
{
    cfg_.check();
    REFSCHED_ASSERT(cfg_.enabled,
                    "TelemetryRecorder built from a disabled config");
    nextSample_ = cfg_.periodTicks;
}

int
TelemetryRecorder::addSeries(std::string name, int laneId, Kind kind,
                             Sampler s)
{
    REFSCHED_ASSERT(!sealed_,
                    "addSeries after the first sample pass");
    REFSCHED_ASSERT(s != nullptr, "null telemetry sampler");
    REFSCHED_ASSERT(series_.empty()
                        || laneId >= series_.back().laneId,
                    "telemetry series must register in laneId order");
    Series ser;
    ser.name = std::move(name);
    ser.laneId = laneId;
    ser.kind = kind;
    ser.sampler = std::move(s);
    if (kind == Kind::Delta)
        ser.last = ser.sampler();
    series_.push_back(std::move(ser));
    return static_cast<int>(series_.size()) - 1;
}

void
TelemetryRecorder::reserveSamples(std::size_t passes)
{
    passTicks_.reserve(passTicks_.size() + passes);
    values_.reserve(values_.size() + passes * series_.size());
}

void
TelemetryRecorder::samplePass(Tick stamp)
{
    sealed_ = true;
    passTicks_.push_back(stamp);
    for (auto &ser : series_) {
        const std::int64_t raw = ser.sampler();
        if (ser.kind == Kind::Delta) {
            values_.push_back(raw - ser.last);
            ser.last = raw;
        } else {
            values_.push_back(raw);
        }
    }
}

void
TelemetryRecorder::onBoundary(Tick boundary)
{
    // A window ending at `boundary` has executed every event at
    // ticks < boundary, so each period multiple m < boundary is
    // fully covered; stamp the pass with m (the period grid), the
    // values reflect the sealed window state.
    while (nextSample_ < boundary) {
        samplePass(nextSample_);
        nextSample_ += cfg_.periodTicks;
    }
}

void
TelemetryRecorder::armPeriodic(EventQueue &eq)
{
    REFSCHED_ASSERT(periodicEq_ == nullptr,
                    "armPeriodic called twice");
    periodicEq_ = &eq;
    eq.schedule(nextSample_, *this, 0, 0, EventPriority::StatDump);
}

void
TelemetryRecorder::fire(Tick now, std::uint64_t, std::uint64_t)
{
    samplePass(now);
    nextSample_ = now + cfg_.periodTicks;
    periodicEq_->schedule(nextSample_, *this, 0, 0,
                          EventPriority::StatDump);
}

void
TelemetryRecorder::restart()
{
    passTicks_.clear();
    values_.clear();
    for (auto &ser : series_)
        if (ser.kind == Kind::Delta)
            ser.last = ser.sampler();
}

void
TelemetryRecorder::writeJsonl(std::ostream &os) const
{
    os << "{\"type\": \"schema\", \"periodTicks\": "
       << cfg_.periodTicks << ", \"series\": [";
    for (std::size_t i = 0; i < series_.size(); ++i) {
        const auto &ser = series_[i];
        os << (i ? ", " : "") << "{\"id\": " << i << ", \"lane\": "
           << ser.laneId << ", \"kind\": \""
           << (ser.kind == Kind::Delta ? "delta" : "gauge")
           << "\", \"name\": \"" << ser.name << "\"}";
    }
    os << "]}\n";
    for (std::size_t p = 0; p < passTicks_.size(); ++p) {
        os << "{\"t\": " << passTicks_[p] << ", \"v\": [";
        for (std::size_t s = 0; s < series_.size(); ++s)
            os << (s ? ", " : "") << value(p, s);
        os << "]}\n";
    }
}

void
TelemetryRecorder::writeCsv(std::ostream &os) const
{
    os << "tick";
    for (const auto &ser : series_)
        os << "," << ser.name;
    os << "\n";
    for (std::size_t p = 0; p < passTicks_.size(); ++p) {
        os << passTicks_[p];
        for (std::size_t s = 0; s < series_.size(); ++s)
            os << "," << value(p, s);
        os << "\n";
    }
}

void
TelemetryRecorder::writeFile(const std::string &path) const
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        fatal("cannot open telemetry file for writing: ", path);
    const bool csv = path.size() >= 4
        && path.compare(path.size() - 4, 4, ".csv") == 0;
    if (csv)
        writeCsv(f);
    else
        writeJsonl(f);
    f.flush();
    if (!f)
        fatal("error writing telemetry file: ", path);
}

void
TelemetryRecorder::exportCounters(TimelineRecorder &tl) const
{
    for (std::size_t p = 0; p < passTicks_.size(); ++p)
        for (std::size_t s = 0; s < series_.size(); ++s)
            tl.addCounter(passTicks_[p], series_[s].name,
                          value(p, s));
}

bool
isKnownTelemetrySeries(const std::string &name)
{
    static constexpr std::array<const char *, 13> kChannelMetrics = {
        "readQ",          "writeQ",        "blockedReads",
        "refreshBacklog", "refreshEngaged", "reads",
        "writes",         "rowHits",       "rowMisses",
        "refreshCommands", "blockedReadsTotal",
        "readQOccInt",    "writeQOccInt",
    };
    static constexpr std::array<const char *, 4> kCoreMetrics = {
        "instrs", "dramReads", "robStallTicks", "runq",
    };
    static constexpr std::array<const char *, 2> kSchedMetrics = {
        "quanta", "cleanPicks",
    };
    static constexpr std::array<const char *, 4> kServingMetrics = {
        "backlog", "arrivals", "drops", "completed",
    };

    const auto dot = name.find('.');
    if (dot == std::string::npos || dot + 1 >= name.size())
        return false;
    const std::string head = name.substr(0, dot);
    const std::string metric = name.substr(dot + 1);

    const auto among = [&metric](const auto &list) {
        return std::any_of(list.begin(), list.end(),
                           [&metric](const char *m) {
                               return metric == m;
                           });
    };
    const auto indexed = [&head](const char *prefix) {
        const std::size_t n = std::char_traits<char>::length(prefix);
        if (head.size() <= n || head.compare(0, n, prefix) != 0)
            return false;
        return std::all_of(head.begin()
                               + static_cast<std::ptrdiff_t>(n),
                           head.end(), [](unsigned char c) {
                               return std::isdigit(c) != 0;
                           });
    };

    if (head == "sched")
        return among(kSchedMetrics);
    if (head == "serving")
        return among(kServingMetrics);
    if (indexed("ch"))
        return among(kChannelMetrics);
    if (indexed("core"))
        return among(kCoreMetrics);
    return false;
}

} // namespace refsched::obs
