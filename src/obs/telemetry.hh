/**
 * @file
 * Epoch-sampled telemetry: a deterministic time-series layer beside
 * the per-event timeline.
 *
 * A TelemetryRecorder holds an ordered set of registered series --
 * integer-valued gauges (sampled as-is) and deltas (difference since
 * the previous sample) -- and takes one sample pass per crossed
 * multiple of cfg.telemetry.periodTicks.  Two drivers exist:
 *
 *   sharded kernel  System registers onBoundary() as the LAST phase-C
 *                   boundary hook.  Every lane is quiescent there and
 *                   all mailboxes have been drained, so direct reads
 *                   of component counters observe the sealed window
 *                   state -- which is a pure function of simulated
 *                   time, independent of the lane partition and
 *                   worker count.  Samples therefore never route
 *                   through the probe hub (a probe forces sequential
 *                   lanes; telemetry must not).
 *   legacy kernel   armPeriodic() schedules an intrusive event at
 *                   each period multiple at EventPriority::StatDump,
 *                   i.e. after all same-tick simulation work.
 *
 * Sample stamps are the period multiples themselves in both modes; in
 * sharded mode the values reflect the first window boundary at or
 * after the stamp (the boundary grid is a fixed function of the
 * kernel mode, so output stays byte-identical across every
 * {jobs} x {shards >= 1} x {workers} combination within one timing
 * mode -- the same identity groups the stats JSON already obeys; see
 * DESIGN.md section 14).
 *
 * All series values are integers, rendered by exact integer
 * formatting, so the JSONL/CSV exports are byte-stable across hosts.
 * The sampling hot path performs no heap allocation once the sample
 * buffer is reserved (TelemetryAllocTest), and a disabled telemetry
 * config costs nothing: no recorder is constructed, no hook is
 * registered, no event is scheduled.
 */

#ifndef REFSCHED_OBS_TELEMETRY_HH
#define REFSCHED_OBS_TELEMETRY_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "simcore/event_queue.hh"
#include "simcore/types.hh"

namespace refsched::obs
{

class TimelineRecorder;

/** Configuration of the sampled-telemetry subsystem. */
struct TelemetryConfig
{
    bool enabled = false;

    /** Sim-time sampling cadence (ticks are ps; default 1 us). */
    Tick periodTicks = 1'000'000;

    /** Validate; fatal() on inconsistencies. */
    void check() const;
};

class TelemetryRecorder final : public Callee
{
  public:
    enum class Kind
    {
        Gauge,  ///< emit the sampled value as-is
        Delta,  ///< emit the difference since the previous sample
    };

    /** Direct counter read; must be cheap and side-effect free. */
    using Sampler = std::function<std::int64_t()>;

    explicit TelemetryRecorder(const TelemetryConfig &cfg);

    /**
     * Register a series.  @p laneId is the merge-order label (0 =
     * main/system, 1+ch for channel ch, 1+channels+i for core i);
     * registration must be in non-decreasing laneId order so the
     * per-pass emission order is (tick, laneId, seriesId).  Returns
     * the seriesId.  Call before the first sample.
     */
    int addSeries(std::string name, int laneId, Kind kind, Sampler s);
    int
    addGauge(std::string name, int laneId, Sampler s)
    {
        return addSeries(std::move(name), laneId, Kind::Gauge,
                         std::move(s));
    }
    int
    addDelta(std::string name, int laneId, Sampler s)
    {
        return addSeries(std::move(name), laneId, Kind::Delta,
                         std::move(s));
    }

    /** Pre-size the buffers for @p passes sample passes. */
    void reserveSamples(std::size_t passes);

    /**
     * Sharded driver: phase-C boundary hook.  Takes one pass per
     * period multiple crossed by the window ending at @p boundary
     * (multiples m with m < boundary are fully executed there).
     */
    void onBoundary(Tick boundary);

    /**
     * Legacy driver: schedule an intrusive sampling event on @p eq
     * at each period multiple, at StatDump priority (after all
     * same-tick simulation work).
     */
    void armPeriodic(EventQueue &eq);

    /** Callee: the legacy periodic sampling event. */
    void fire(Tick now, std::uint64_t, std::uint64_t) override;

    /** Take one sample pass stamped @p stamp (values read now). */
    void samplePass(Tick stamp);

    /**
     * Measurement restart: drop buffered samples and re-prime every
     * delta series from its current counter value.  Call with all
     * lanes quiescent (System::resetMeasurement does).
     */
    void restart();

    // --- Introspection (tests) ---
    Tick periodTicks() const { return cfg_.periodTicks; }
    Tick nextSampleTick() const { return nextSample_; }
    std::size_t seriesCount() const { return series_.size(); }
    std::size_t passCount() const { return passTicks_.size(); }
    Tick
    passTick(std::size_t pass) const
    {
        return passTicks_[pass];
    }
    std::int64_t
    value(std::size_t pass, std::size_t series) const
    {
        return values_[pass * series_.size() + series];
    }
    const std::string &
    seriesName(std::size_t series) const
    {
        return series_[series].name;
    }
    int
    seriesLane(std::size_t series) const
    {
        return series_[series].laneId;
    }

    /**
     * JSONL export: one schema line (series ids, lanes, kinds,
     * names, period), then one line per sample pass with the values
     * in (laneId, seriesId) order.  Byte-deterministic.
     */
    void writeJsonl(std::ostream &os) const;

    /** CSV export: a header row, then one row per sample pass. */
    void writeCsv(std::ostream &os) const;

    /** Write to @p path: CSV when it ends in ".csv", else JSONL;
     *  fatal() on I/O error. */
    void writeFile(const std::string &path) const;

    /** Merge every sample as a Perfetto counter-track event into
     *  @p tl (one track per series, pid 3).  Call after the run. */
    void exportCounters(TimelineRecorder &tl) const;

  private:
    struct Series
    {
        std::string name;
        int laneId = 0;
        Kind kind = Kind::Gauge;
        Sampler sampler;
        std::int64_t last = 0;  ///< previous raw value (Delta)
    };

    TelemetryConfig cfg_;
    std::vector<Series> series_;
    std::vector<Tick> passTicks_;
    /** passCount x seriesCount values, row-major. */
    std::vector<std::int64_t> values_;
    Tick nextSample_ = 0;
    EventQueue *periodicEq_ = nullptr;
    bool sealed_ = false;
};

/**
 * True iff @p name is a series name this subsystem emits:
 * "ch<N>.<metric>", "core<N>.<metric>", "sched.<metric>" or
 * "serving.<metric>" with a known metric suffix.  The source of
 * truth for tools/timeline_check's counter-track validation.
 */
bool isKnownTelemetrySeries(const std::string &name);

} // namespace refsched::obs

#endif // REFSCHED_OBS_TELEMETRY_HH
