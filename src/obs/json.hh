/**
 * @file
 * Minimal JSON support for the observability layer: a string escaper
 * and exact-decimal tick formatting for the writers, and a small
 * recursive-descent parser for the validators (tools/timeline_check,
 * tests).  No external dependencies; the parser handles the JSON the
 * repo's own exporters emit (objects, arrays, strings, numbers,
 * booleans, null) plus arbitrary nesting and escapes.
 */

#ifndef REFSCHED_OBS_JSON_HH
#define REFSCHED_OBS_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "simcore/types.hh"

namespace refsched::obs
{

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/**
 * Render @p ticks (picoseconds) as microseconds with six decimal
 * places, using pure integer arithmetic so the rendering is exact
 * and bit-identical across platforms and thread counts (Chrome
 * trace-event timestamps are microseconds).
 */
std::string ticksToUsecString(Tick ticks);

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

/** One parsed JSON value (tree-owned children). */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /** Insertion order is not preserved; exporters sort keys. */
    std::map<std::string, JsonValue> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;
};

/**
 * Parse @p text as a single JSON document.  fatal() (FatalError) on
 * malformed input, with a byte offset in the message.
 */
JsonValue parseJson(const std::string &text);

} // namespace refsched::obs

#endif // REFSCHED_OBS_JSON_HH
