#include "obs/timeline.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "obs/json.hh"
#include "simcore/logging.hh"

namespace refsched::obs
{

using validate::DramOp;

TimelineRecorder::TimelineRecorder(const dram::DramOrganization &org,
                                   int numCpus,
                                   const TimelineOptions &opt)
    : org_(org), numCpus_(numCpus), opt_(opt)
{
    REFSCHED_ASSERT(opt_.windowStart < opt_.windowEnd,
                    "empty trace window");
    banks_.resize(static_cast<std::size_t>(org_.channels)
                  * static_cast<std::size_t>(org_.banksTotal()));
    cpus_.resize(static_cast<std::size_t>(numCpus_));
}

int
TimelineRecorder::globalBank(int ch, int rank, int bank) const
{
    return (ch * org_.ranksPerChannel + rank) * org_.banksPerRank
        + bank;
}

bool
TimelineRecorder::inWindow(Tick tick) const
{
    return tick >= opt_.windowStart && tick < opt_.windowEnd;
}

void
TimelineRecorder::record(Entry e)
{
    if (!inWindow(e.ts))
        return;
    if (e.phase == 'X' && e.ts + e.dur > opt_.windowEnd)
        e.dur = opt_.windowEnd - e.ts;
    e.seq = nextSeq_++;
    entries_.push_back(std::move(e));
}

void
TimelineRecorder::closeRow(BankState &b, int gb, Tick end,
                           const char *how)
{
    if (!b.rowOpen)
        return;
    b.rowOpen = false;
    if (end < b.rowSince)
        end = b.rowSince;
    std::ostringstream args;
    args << "{\"row\": " << b.row << ", \"closedBy\": \"" << how
         << "\"}";
    record({b.rowSince, end - b.rowSince, 'X', 1, gb,
            "row " + std::to_string(b.row), args.str(), 0});
}

void
TimelineRecorder::closeRefresh(BankState &b, int gb, Tick end)
{
    if (!b.refreshing)
        return;
    b.refreshing = false;
    if (end < b.refreshSince)
        end = b.refreshSince;
    record({b.refreshSince, end - b.refreshSince, 'X', 1, gb,
            "refresh", "", 0});
}

void
TimelineRecorder::closeQuantum(CpuState &s, int cpu, Tick end)
{
    if (!s.open)
        return;
    s.open = false;
    if (end > s.until)
        end = s.until;
    if (end < s.since)
        end = s.since;
    record({s.since, end - s.since, 'X', 2, cpu, s.name, s.args, 0});
}

void
TimelineRecorder::onDramCommand(const validate::DramCmdEvent &ev)
{
    ++dramSeen_;

    // All-bank refresh occupies every bank of the rank; expand it
    // into per-bank refresh slices so each track stays self-complete.
    const bool allBank = ev.op == DramOp::RefAllBank || ev.bank < 0;
    const int bankLo = allBank ? 0 : ev.bank;
    const int bankHi = allBank ? org_.banksPerRank - 1 : ev.bank;

    for (int bk = bankLo; bk <= bankHi; ++bk) {
        const int gb = globalBank(ev.channel, ev.rank, bk);
        BankState &b = banks_[static_cast<std::size_t>(gb)];

        // A refresh slice is held open until pause/expiry so that
        // Refresh Pausing can truncate it; settle an expired one
        // before recording anything newer on this track.
        if (b.refreshing && ev.tick >= b.refreshUntil)
            closeRefresh(b, gb, b.refreshUntil);

        switch (ev.op) {
        case DramOp::Act:
            closeRow(b, gb, ev.tick, "conflict");
            b.rowOpen = true;
            b.row = ev.row;
            b.rowSince = ev.tick;
            break;
        case DramOp::Read:
        case DramOp::Write:
            record({ev.tick, 0, 'i', 1, gb,
                    ev.op == DramOp::Read ? "RD" : "WR",
                    "{\"row\": " + std::to_string(ev.row) + "}", 0});
            break;
        case DramOp::Pre:
            // Covers demand precharges, refresh-priority precharges,
            // and idle-close expiries alike: the row slice ends here.
            closeRow(b, gb, ev.tick, "pre");
            break;
        case DramOp::RefPerBank:
        case DramOp::RefAllBank:
            closeRefresh(b, gb, ev.tick);
            closeRow(b, gb, ev.tick, "refresh");
            b.refreshing = true;
            b.refreshSince = ev.tick;
            b.refreshUntil = ev.busyUntil;
            break;
        case DramOp::RefPause:
            closeRefresh(b, gb, ev.tick);
            record({ev.tick, 0, 'i', 1, gb, "REF pause",
                    "{\"rowsRolledBack\": " + std::to_string(ev.row)
                        + "}",
                    0});
            break;
        }
    }
}

void
TimelineRecorder::onSchedPick(const validate::SchedPickEvent &ev)
{
    ++picksSeen_;
    if (ev.cpu < 0 || ev.cpu >= numCpus_)
        return;
    CpuState &s = cpus_[static_cast<std::size_t>(ev.cpu)];
    closeQuantum(s, ev.cpu, ev.tick);

    const char *kind = "baseline";
    switch (ev.kind) {
    case validate::PickKind::Baseline:
        kind = "baseline";
        break;
    case validate::PickKind::Clean:
        kind = "clean";
        break;
    case validate::PickKind::BestEffort:
        kind = "best-effort";
        break;
    case validate::PickKind::Fallback:
        kind = "fallback";
        break;
    case validate::PickKind::Idle:
        kind = "idle";
        break;
    }

    std::ostringstream args;
    args << "{\"kind\": \"" << kind << "\", \"pid\": " << ev.chosen;
    if (ev.refreshBanks) {
        args << ", \"refreshBanks\": [";
        for (std::size_t i = 0; i < ev.refreshBanks->size(); ++i)
            args << (i ? ", " : "") << (*ev.refreshBanks)[i];
        args << "]";
    }
    if (ev.candidates) {
        for (const auto &c : *ev.candidates) {
            if (c.pid != ev.chosen)
                continue;
            args << ", \"clean\": " << (c.clean ? "true" : "false")
                 << ", \"residentInRefreshBanks\": " << c.resident;
            break;
        }
    }
    args << "}";

    s.open = true;
    s.since = ev.tick;
    s.until = ev.quantum ? ev.tick + ev.quantum : kMaxTick;
    s.name = ev.kind == validate::PickKind::Idle
        ? std::string("idle")
        : "pid " + std::to_string(ev.chosen) + " [" + kind + "]";
    s.args = args.str();
}

void
TimelineRecorder::onMcQueue(const validate::McQueueEvent &ev)
{
    ++mcqSeen_;
    const std::string ch = "ch" + std::to_string(ev.channel);
    record({ev.tick, 0, 'C', 1, 0, ch + " queues",
            "{\"read\": " + std::to_string(ev.readDepth)
                + ", \"write\": " + std::to_string(ev.writeDepth)
                + "}",
            0});
    record({ev.tick, 0, 'C', 1, 0, ch + " blockedReads",
            "{\"blocked\": " + std::to_string(ev.blockedReads) + "}",
            0});
}

void
TimelineRecorder::addCounter(Tick ts, const std::string &track,
                             std::int64_t value)
{
    record({ts, 0, 'C', 3, 0, track,
            "{\"value\": " + std::to_string(value) + "}", 0});
}

void
TimelineRecorder::finalize(Tick endTick)
{
    for (std::size_t gb = 0; gb < banks_.size(); ++gb) {
        BankState &b = banks_[gb];
        closeRefresh(b, static_cast<int>(gb),
                     std::min(b.refreshUntil, endTick));
        closeRow(b, static_cast<int>(gb), endTick, "end");
    }
    for (int cpu = 0; cpu < numCpus_; ++cpu)
        closeQuantum(cpus_[static_cast<std::size_t>(cpu)], cpu,
                     endTick);
}

void
TimelineRecorder::writeJson(std::ostream &os) const
{
    std::vector<const Entry *> sorted;
    sorted.reserve(entries_.size());
    for (const auto &e : entries_)
        sorted.push_back(&e);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Entry *a, const Entry *b) {
                         if (a->ts != b->ts)
                             return a->ts < b->ts;
                         return a->seq < b->seq;
                     });

    os << "{\n\"displayTimeUnit\": \"ns\",\n\"traceEvents\": [\n";

    auto meta = [&](int pid, int tid, const char *what,
                    const std::string &name, bool first) {
        os << (first ? "" : ",\n") << "{\"ph\": \"M\", \"pid\": "
           << pid;
        if (tid >= 0)
            os << ", \"tid\": " << tid;
        os << ", \"name\": \"" << what << "\", \"args\": {\"name\": \""
           << jsonEscape(name) << "\"}}";
    };

    meta(1, -1, "process_name", "DRAM", true);
    meta(2, -1, "process_name", "OS", false);
    // The telemetry process only exists when counters were merged
    // in, so timelines without telemetry stay byte-identical to
    // earlier releases.
    if (std::any_of(entries_.begin(), entries_.end(),
                    [](const Entry &e) { return e.pid == 3; }))
        meta(3, -1, "process_name", "telemetry", false);
    for (int ch = 0; ch < org_.channels; ++ch)
        for (int rk = 0; rk < org_.ranksPerChannel; ++rk)
            for (int bk = 0; bk < org_.banksPerRank; ++bk) {
                const int gb = globalBank(ch, rk, bk);
                meta(1, gb, "thread_name",
                     "bank " + std::to_string(gb) + " (ch"
                         + std::to_string(ch) + "/rk"
                         + std::to_string(rk) + "/bk"
                         + std::to_string(bk) + ")",
                     false);
            }
    for (int cpu = 0; cpu < numCpus_; ++cpu)
        meta(2, cpu, "thread_name", "cpu" + std::to_string(cpu),
             false);

    for (const Entry *e : sorted) {
        os << ",\n{\"ph\": \"" << e->phase << "\", \"pid\": " << e->pid
           << ", \"tid\": " << e->tid << ", \"ts\": "
           << ticksToUsecString(e->ts);
        if (e->phase == 'X')
            os << ", \"dur\": " << ticksToUsecString(e->dur);
        os << ", \"name\": \"" << jsonEscape(e->name) << "\"";
        if (e->phase == 'i')
            os << ", \"s\": \"t\"";
        if (!e->args.empty())
            os << ", \"args\": " << e->args;
        os << "}";
    }

    os << "\n]\n}\n";
}

void
TimelineRecorder::writeFile(const std::string &path) const
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        fatal("cannot open timeline file for writing: ", path);
    writeJson(f);
    f.flush();
    if (!f)
        fatal("error writing timeline file: ", path);
}

} // namespace refsched::obs
