#include "obs/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "simcore/logging.hh"

namespace refsched::obs
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        switch (ch) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

std::string
ticksToUsecString(Tick ticks)
{
    const Tick whole = ticks / kPsPerUs;
    const Tick frac = ticks % kPsPerUs;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                  static_cast<unsigned long long>(whole),
                  static_cast<unsigned long long>(frac));
    return buf;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
}

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        fatal("JSON parse error at byte ", pos_, ": ", what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()
               && std::isspace(
                   static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char ch)
    {
        if (peek() != ch)
            fail(std::string("expected '") + ch + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        const std::size_t n = std::string(lit).size();
        if (text_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        const char ch = peek();
        switch (ch) {
        case '{':
            return objectValue();
        case '[':
            return arrayValue();
        case '"': {
            JsonValue v;
            v.kind = JsonValue::Kind::String;
            v.string = stringLiteral();
            return v;
        }
        case 't':
        case 'f': {
            JsonValue v;
            v.kind = JsonValue::Kind::Bool;
            if (consumeLiteral("true"))
                v.boolean = true;
            else if (consumeLiteral("false"))
                v.boolean = false;
            else
                fail("bad literal");
            return v;
        }
        case 'n': {
            if (!consumeLiteral("null"))
                fail("bad literal");
            return JsonValue{};
        }
        default:
            return numberValue();
        }
    }

    JsonValue
    objectValue()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            if (peek() != '"')
                fail("object key must be a string");
            std::string key = stringLiteral();
            expect(':');
            v.object.emplace(std::move(key), value());
            const char ch = peek();
            if (ch == ',') {
                ++pos_;
                continue;
            }
            if (ch == '}') {
                ++pos_;
                return v;
            }
            fail("expected ',' or '}' in object");
        }
    }

    JsonValue
    arrayValue()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array.push_back(value());
            const char ch = peek();
            if (ch == ',') {
                ++pos_;
                continue;
            }
            if (ch == ']') {
                ++pos_;
                return v;
            }
            fail("expected ',' or ']' in array");
        }
    }

    std::string
    stringLiteral()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char ch = text_[pos_++];
            if (ch == '"')
                return out;
            if (ch != '\\') {
                out += ch;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
            case '"':
            case '\\':
            case '/':
                out += esc;
                break;
            case 'n':
                out += '\n';
                break;
            case 't':
                out += '\t';
                break;
            case 'r':
                out += '\r';
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                const std::string hex = text_.substr(pos_, 4);
                pos_ += 4;
                const auto code = static_cast<unsigned>(
                    std::strtoul(hex.c_str(), nullptr, 16));
                // Exporters only emit \u00xx control escapes; encode
                // the BMP code point as UTF-8 without surrogate
                // handling (sufficient for validation).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    numberValue()
    {
        skipWs();
        const std::size_t start = pos_;
        if (pos_ < text_.size()
            && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool any = false;
        auto digits = [&] {
            while (pos_ < text_.size()
                   && std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
                any = true;
            }
        };
        digits();
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            digits();
        }
        if (pos_ < text_.size()
            && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size()
                && (text_[pos_] == '-' || text_[pos_] == '+'))
                ++pos_;
            digits();
        }
        if (!any)
            fail("malformed number");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.number =
            std::strtod(text_.substr(start, pos_ - start).c_str(),
                        nullptr);
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace refsched::obs
