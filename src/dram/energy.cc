#include "dram/energy.hh"

#include <sstream>

namespace refsched::dram
{

std::string
EnergyBreakdown::summary() const
{
    std::ostringstream os;
    os << "total=" << totalPj() / 1e9 << "mJ act="
       << activatePj / 1e9 << " rdwr=" << readWritePj / 1e9
       << " refresh=" << refreshPj / 1e9 << " bg="
       << backgroundPj / 1e9;
    return os.str();
}

} // namespace refsched::dram
