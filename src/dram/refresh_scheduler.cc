#include "dram/refresh_scheduler.hh"

#include <algorithm>
#include <limits>

#include "simcore/logging.hh"

namespace refsched::dram
{

namespace
{

/**
 * Due tick of the @p idx-th command of a cadence that issues
 * @p perPeriod evenly spaced commands every @p period ticks, with
 * @p step = period / perPeriod rounded down to integer picoseconds.
 *
 * Rational accumulation: the truncation error of @p step must be
 * re-anchored at every period boundary.  The naive `idx * step`
 * cadence loses (period - perPeriod * step) ticks per period, which
 * compounds across refresh windows and eventually shifts commands a
 * whole interval early relative to the wall-clock window they are
 * meant to cover (per-bank refresh counts per tREFW window stop
 * being exact).
 */
Tick
cadenceDue(std::uint64_t idx, Tick period, std::uint64_t perPeriod,
           Tick step)
{
    return static_cast<Tick>(idx / perPeriod) * period
        + static_cast<Tick>(idx % perPeriod) * step;
}

/**
 * Inverse of cadenceDue: the largest command index whose due tick is
 * <= @p at.  Clamps the intra-period position to perPeriod - 1 so
 * the truncation slack at the end of a period (ticks past the last
 * command but before the period boundary) maps to the last command.
 */
std::uint64_t
cadenceIndexAt(Tick at, Tick period, std::uint64_t perPeriod,
               Tick step)
{
    const std::uint64_t full = static_cast<std::uint64_t>(at / period);
    const Tick rem = at % period;
    const std::uint64_t in = std::min<std::uint64_t>(
        perPeriod - 1, static_cast<std::uint64_t>(rem / step));
    return full * perPeriod + in;
}

} // namespace

std::string
toString(RefreshPolicy p)
{
    switch (p) {
      case RefreshPolicy::NoRefresh:
        return "no-refresh";
      case RefreshPolicy::AllBank:
        return "all-bank";
      case RefreshPolicy::PerBankRoundRobin:
        return "per-bank";
      case RefreshPolicy::SequentialPerBank:
        return "sequential-per-bank";
      case RefreshPolicy::OooPerBank:
        return "ooo-per-bank";
      case RefreshPolicy::Adaptive:
        return "adaptive-refresh";
    }
    return "unknown";
}

RefreshScheduler::RefreshScheduler(const DramDeviceConfig &cfg)
    : cfg_(cfg),
      banksPerRank_(cfg.org.banksPerRank),
      ranks_(cfg.org.ranksPerChannel),
      banksPerChannel_(cfg.org.banksTotal())
{
}

std::unique_ptr<RefreshScheduler>
makeRefreshScheduler(RefreshPolicy policy, const DramDeviceConfig &cfg)
{
    switch (policy) {
      case RefreshPolicy::NoRefresh:
        return std::make_unique<NoRefresh>(cfg);
      case RefreshPolicy::AllBank:
        return std::make_unique<AllBankRefresh>(cfg);
      case RefreshPolicy::PerBankRoundRobin:
        return std::make_unique<PerBankRoundRobin>(cfg);
      case RefreshPolicy::SequentialPerBank:
        return std::make_unique<SequentialPerBank>(cfg);
      case RefreshPolicy::OooPerBank:
        return std::make_unique<OooPerBank>(cfg);
      case RefreshPolicy::Adaptive:
        return std::make_unique<AdaptiveRefresh>(cfg);
    }
    fatal("unknown refresh policy");
}

// ---------------------------------------------------------------------
// NoRefresh
// ---------------------------------------------------------------------

RefreshCommand
NoRefresh::pop(int, const McRefreshView &)
{
    panic("NoRefresh::pop called; nextDue is never reached");
}

// ---------------------------------------------------------------------
// AllBankRefresh
// ---------------------------------------------------------------------

AllBankRefresh::AllBankRefresh(const DramDeviceConfig &cfg)
    : RefreshScheduler(cfg),
      stagger_(cfg.timings.tREFIab / static_cast<Tick>(ranks_)),
      cmdIndex_(static_cast<std::size_t>(cfg.org.channels), 0)
{
}

Tick
AllBankRefresh::nextDue(int channel) const
{
    return cadenceDue(cmdIndex_[static_cast<std::size_t>(channel)],
                      cfg_.timings.tREFIab,
                      static_cast<std::uint64_t>(ranks_), stagger_);
}

RefreshCommand
AllBankRefresh::pop(int channel, const McRefreshView &)
{
    auto &idx = cmdIndex_[static_cast<std::size_t>(channel)];
    RefreshCommand cmd;
    cmd.rank = static_cast<int>(idx % static_cast<std::uint64_t>(ranks_));
    cmd.bank = RefreshCommand::kAllBanksInRank;
    cmd.rows = cfg_.timings.rowsPerRefresh;
    cmd.tRFC = cfg_.timings.tRFCab;
    ++idx;
    return cmd;
}

// ---------------------------------------------------------------------
// PerBankRoundRobin
// ---------------------------------------------------------------------

PerBankRoundRobin::PerBankRoundRobin(const DramDeviceConfig &cfg)
    : RefreshScheduler(cfg),
      tREFIpb_(cfg.timings.tREFIpb(banksPerChannel_)),
      cmdIndex_(static_cast<std::size_t>(cfg.org.channels), 0)
{
}

Tick
PerBankRoundRobin::nextDue(int channel) const
{
    return cadenceDue(cmdIndex_[static_cast<std::size_t>(channel)],
                      cfg_.timings.tREFIab,
                      static_cast<std::uint64_t>(banksPerChannel_),
                      tREFIpb_);
}

RefreshCommand
PerBankRoundRobin::pop(int channel, const McRefreshView &)
{
    auto &idx = cmdIndex_[static_cast<std::size_t>(channel)];
    const auto inChannel =
        static_cast<int>(idx % static_cast<std::uint64_t>(banksPerChannel_));
    RefreshCommand cmd;
    cmd.rank = inChannel / banksPerRank_;
    cmd.bank = inChannel % banksPerRank_;
    cmd.rows = cfg_.timings.rowsPerRefresh;
    cmd.tRFC = cfg_.timings.tRFCpb;
    ++idx;
    return cmd;
}

// ---------------------------------------------------------------------
// SequentialPerBank (Algorithm 1)
// ---------------------------------------------------------------------

SequentialPerBank::SequentialPerBank(const DramDeviceConfig &cfg)
    : RefreshScheduler(cfg),
      tREFIpb_(cfg.timings.tREFIpb(banksPerChannel_)),
      rankParallel_(tREFIpb_ <= cfg.timings.tRFCpb),
      cmdsPerBank_(cfg.org.rowsPerBank / cfg.timings.rowsPerRefresh),
      cursors_(static_cast<std::size_t>(cfg.org.channels))
{
    const std::size_t engines =
        rankParallel_ ? static_cast<std::size_t>(ranks_) : 1;
    for (auto &cur : cursors_) {
        cur.nextRefreshBank.assign(engines, 0);
        cur.nextRefreshRank.assign(engines, 0);
        if (rankParallel_) {
            for (std::size_t r = 0; r < engines; ++r)
                cur.nextRefreshRank[r] = static_cast<int>(r);
        }
        cur.numRowsRefreshed.assign(
            static_cast<std::size_t>(banksPerChannel_), 0);
    }
}

Tick
SequentialPerBank::nextDue(int channel) const
{
    return cadenceDue(cursors_[static_cast<std::size_t>(channel)].cmdIndex,
                      cfg_.timings.tREFIab,
                      static_cast<std::uint64_t>(banksPerChannel_),
                      tREFIpb_);
}

Tick
SequentialPerBank::slotLength() const
{
    return cfg_.timings.tREFW
        / static_cast<Tick>(rankParallel_ ? banksPerRank_
                                          : banksPerChannel_);
}

RefreshCommand
SequentialPerBank::pop(int channel, const McRefreshView &)
{
    auto &cur = cursors_[static_cast<std::size_t>(channel)];

    // In rank-parallel mode, consecutive pops alternate ranks so a
    // single bank never sees back-to-back commands faster than the
    // per-rank interval.
    const std::size_t engine =
        rankParallel_ ? static_cast<std::size_t>(
            cur.cmdIndex % static_cast<std::uint64_t>(ranks_))
                      : 0;
    int &nextRefreshBank = cur.nextRefreshBank[engine];
    int &nextRefreshRank = cur.nextRefreshRank[engine];

    // Algorithm 1, line 2.
    const auto refreshBankIdx = static_cast<std::size_t>(
        nextRefreshRank * banksPerRank_ + nextRefreshBank);

    RefreshCommand cmd;
    cmd.rank = nextRefreshRank;
    cmd.bank = nextRefreshBank;
    cmd.rows = cfg_.timings.rowsPerRefresh;
    cmd.tRFC = cfg_.timings.tRFCpb;

    // Algorithm 1, lines 4-15.
    cur.numRowsRefreshed[refreshBankIdx] += cfg_.timings.rowsPerRefresh;
    if (cur.numRowsRefreshed[refreshBankIdx] < cfg_.org.rowsPerBank) {
        // Keep refreshing the same bank next interval.
    } else {
        // Done refreshing the entire bank; advance to the next bank.
        cur.numRowsRefreshed[refreshBankIdx] = 0;
        nextRefreshBank += 1;
        if (nextRefreshBank >= banksPerRank_) {
            nextRefreshBank = 0;
            if (!rankParallel_)
                nextRefreshRank = (nextRefreshRank + 1) % ranks_;
        }
    }

    ++cur.cmdIndex;
    return cmd;
}

std::vector<int>
SequentialPerBank::banksUnderRefreshAt(int channel, Tick from) const
{
    // Derive the slot from the command cadence, not from wall-clock
    // window division: tREFI_pb is rounded to integer picoseconds and
    // the cadence re-anchors at every tREFI_ab boundary, so inverting
    // the exact cadenceDue mapping keeps the analytic schedule
    // consistent with pop() at any horizon.
    const std::uint64_t cmdIdx = cadenceIndexAt(
        from, cfg_.timings.tREFIab,
        static_cast<std::uint64_t>(banksPerChannel_), tREFIpb_);
    const int base = channel * banksPerChannel_;

    if (!rankParallel_) {
        const std::uint64_t windowCmds = cmdsPerBank_
            * static_cast<std::uint64_t>(banksPerChannel_);
        const auto bank = (cmdIdx % windowCmds) / cmdsPerBank_;
        return {base + static_cast<int>(bank)};
    }

    // Rank-parallel: each rank consumes every ranks_-th command.
    const auto perRank = cmdIdx / static_cast<std::uint64_t>(ranks_);
    const std::uint64_t rankWindowCmds = cmdsPerBank_
        * static_cast<std::uint64_t>(banksPerRank_);
    const auto bankId = (perRank % rankWindowCmds) / cmdsPerBank_;
    std::vector<int> banks;
    for (int r = 0; r < ranks_; ++r)
        banks.push_back(base + r * banksPerRank_
                        + static_cast<int>(bankId));
    return banks;
}

// ---------------------------------------------------------------------
// OooPerBank
// ---------------------------------------------------------------------

OooPerBank::OooPerBank(const DramDeviceConfig &cfg)
    : RefreshScheduler(cfg),
      tREFIpb_(cfg.timings.tREFIpb(banksPerChannel_)),
      cmdsPerBankPerWindow_(cfg.timings.refreshCommandsPerWindow),
      cursors_(static_cast<std::size_t>(cfg.org.channels))
{
    for (auto &cur : cursors_)
        cur.debt.assign(static_cast<std::size_t>(banksPerChannel_),
                        cmdsPerBankPerWindow_);
}

Tick
OooPerBank::nextDue(int channel) const
{
    return cadenceDue(cursors_[static_cast<std::size_t>(channel)].cmdIndex,
                      cfg_.timings.tREFIab,
                      static_cast<std::uint64_t>(banksPerChannel_),
                      tREFIpb_);
}

RefreshCommand
OooPerBank::pop(int channel, const McRefreshView &view)
{
    auto &cur = cursors_[static_cast<std::size_t>(channel)];
    const std::uint64_t totalPerWindow = cmdsPerBankPerWindow_
        * static_cast<std::uint64_t>(banksPerChannel_);

    const std::uint64_t posInWindow = cur.cmdIndex % totalPerWindow;
    if (posInWindow == 0) {
        std::fill(cur.debt.begin(), cur.debt.end(),
                  cmdsPerBankPerWindow_);
    }
    const std::uint64_t remainingSlots = totalPerWindow - posInWindow;

    // A bank whose remaining debt equals the remaining command slots
    // must be refreshed NOW and in every remaining slot, or the
    // window's coverage guarantee breaks.
    int chosen = -1;
    std::uint64_t maxDebt = 0;
    for (int b = 0; b < banksPerChannel_; ++b) {
        const auto d = cur.debt[static_cast<std::size_t>(b)];
        maxDebt = std::max(maxDebt, d);
        if (d >= remainingSlots) {
            chosen = b;
            break;
        }
    }

    if (chosen < 0) {
        // Out-of-order choice: among banks that still owe refreshes,
        // pick the one with the fewest queued requests (Chang et al.).
        int best = std::numeric_limits<int>::max();
        for (int i = 0; i < banksPerChannel_; ++i) {
            const int b = (cur.rrHint + i) % banksPerChannel_;
            if (cur.debt[static_cast<std::size_t>(b)] == 0)
                continue;
            const int q = view.queuedToBank(
                channel, b / banksPerRank_, b % banksPerRank_);
            if (q < best) {
                best = q;
                chosen = b;
            }
        }
        REFSCHED_ASSERT(chosen >= 0, "no bank owes refreshes mid-window");
        cur.rrHint = (chosen + 1) % banksPerChannel_;
    }

    --cur.debt[static_cast<std::size_t>(chosen)];
    ++cur.cmdIndex;

    RefreshCommand cmd;
    cmd.rank = chosen / banksPerRank_;
    cmd.bank = chosen % banksPerRank_;
    cmd.rows = cfg_.timings.rowsPerRefresh;
    cmd.tRFC = cfg_.timings.tRFCpb;
    return cmd;
}

// ---------------------------------------------------------------------
// AdaptiveRefresh
// ---------------------------------------------------------------------

AdaptiveRefresh::AdaptiveRefresh(const DramDeviceConfig &cfg,
                                 double utilThreshold)
    : RefreshScheduler(cfg),
      utilThreshold_(utilThreshold),
      tRfc4x_(static_cast<Tick>(
          static_cast<double>(cfg.timings.tRFCab) / 1.63)),
      rowsPerCmd1x_(cfg.timings.rowsPerRefresh),
      cursors_(static_cast<std::size_t>(cfg.org.channels))
{
    for (auto &cur : cursors_)
        cur.rowsDebt.assign(static_cast<std::size_t>(ranks_),
                            cfg.org.rowsPerBank);
}

Tick
AdaptiveRefresh::nextDue(int channel) const
{
    return cursors_[static_cast<std::size_t>(channel)].nextDue;
}

void
AdaptiveRefresh::rollWindow(ChannelCursor &cur, Tick now) const
{
    const std::uint64_t window = now / cfg_.timings.tREFW;
    if (window > cur.windowIndex) {
        cur.windowIndex = window;
        std::fill(cur.rowsDebt.begin(), cur.rowsDebt.end(),
                  cfg_.org.rowsPerBank);
    }
}

RefreshCommand
AdaptiveRefresh::pop(int channel, const McRefreshView &view)
{
    auto &cur = cursors_[static_cast<std::size_t>(channel)];
    const Tick now = cur.nextDue;
    rollWindow(cur, now);

    // Mode decision (Mukundan et al.): when the channel has idle
    // bandwidth, 4x mode's short tRFC blocks hide inside idle gaps;
    // when the channel is saturated, 1x minimises total refresh time
    // (4x pays the 1.63x tRFC-scaling tax four times per tREFI).
    const double util = view.channelUtilization(channel);
    cur.mode = (util < utilThreshold_) ? FgrMode::x4 : FgrMode::x1;

    const bool fine = (cur.mode == FgrMode::x4);
    const std::uint64_t rows =
        fine ? std::max<std::uint64_t>(1, rowsPerCmd1x_ / 4)
             : rowsPerCmd1x_;
    const Tick interval =
        fine ? cfg_.timings.tREFIab / 4 : cfg_.timings.tREFIab;

    RefreshCommand cmd;
    cmd.rank = cur.nextRank;
    cmd.bank = RefreshCommand::kAllBanksInRank;
    cmd.tRFC = fine ? tRfc4x_ : cfg_.timings.tRFCab;

    auto &debt = cur.rowsDebt[static_cast<std::size_t>(cur.nextRank)];
    cmd.rows = std::min<std::uint64_t>(rows, debt);
    debt -= cmd.rows;
    if (cmd.rows == 0) {
        // Rank already fully refreshed this window (mode switches can
        // retire the debt early); make the command a no-op.
        cmd.tRFC = 0;
    }

    cur.nextRank = (cur.nextRank + 1) % ranks_;
    cur.nextDue = now + interval / static_cast<Tick>(ranks_);
    return cmd;
}

} // namespace refsched::dram
