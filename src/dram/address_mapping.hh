/**
 * @file
 * Physical-address <-> DRAM-coordinate mapping.
 *
 * The co-design requires the hardware address mapping to be *exposed
 * to the OS* (paper section 5.2.1): the buddy allocator must know
 * which bank a physical frame lives in.  This class is that shared
 * contract -- both the memory controller and the OS hold a reference
 * to the same AddressMapping.
 *
 * Bit layout (LSB first):
 *
 *   | line offset | column | channel | bank | rank | row |
 *
 * The column + line-offset bits together cover exactly one DRAM row
 * (4 KB), which equals the OS page size; therefore every 4 KB page
 * maps to a single (channel, rank, bank, row) -- the property the
 * paper's per-bank free lists rely on.
 */

#ifndef REFSCHED_DRAM_ADDRESS_MAPPING_HH
#define REFSCHED_DRAM_ADDRESS_MAPPING_HH

#include <cstdint>

#include "dram/timings.hh"
#include "simcore/types.hh"

namespace refsched::dram
{

/** Decomposed DRAM coordinates of a physical address. */
struct DramCoord
{
    int channel = 0;
    int rank = 0;
    int bank = 0;           ///< bank index within the rank
    std::uint64_t row = 0;
    std::uint64_t column = 0;

    bool
    operator==(const DramCoord &o) const
    {
        return channel == o.channel && rank == o.rank && bank == o.bank
            && row == o.row && column == o.column;
    }
};

class AddressMapping
{
  public:
    explicit AddressMapping(const DramOrganization &org);

    /** Split a physical address into DRAM coordinates. */
    DramCoord decompose(Addr paddr) const;

    /** Inverse of decompose (line offset zero). */
    Addr compose(const DramCoord &coord) const;

    /**
     * Global bank index of @p paddr:
     * ((channel * ranks) + rank) * banksPerRank + bankInRank.
     */
    int globalBank(Addr paddr) const;

    /** Global bank index from coordinates. */
    int
    globalBank(const DramCoord &c) const
    {
        return (c.channel * org_.ranksPerChannel + c.rank)
            * org_.banksPerRank + c.bank;
    }

    /** Bank-in-rank index from a global bank index. */
    int
    bankInRank(int globalBank) const
    {
        return globalBank % org_.banksPerRank;
    }

    /** Rank (within its channel) of a global bank index. */
    int
    rankOf(int globalBank) const
    {
        return (globalBank / org_.banksPerRank) % org_.ranksPerChannel;
    }

    /** Channel of a global bank index. */
    int
    channelOf(int globalBank) const
    {
        return globalBank / (org_.banksPerRank * org_.ranksPerChannel);
    }

    /** Global bank that holds page frame number @p pfn. */
    int
    bankOfFrame(std::uint64_t pfn) const
    {
        return globalBank(pfn << pageShift_);
    }

    /** Total global banks across all channels. */
    int
    totalBanks() const
    {
        return org_.channels * org_.ranksPerChannel * org_.banksPerRank;
    }

    std::uint64_t pageBytes() const { return org_.rowBytes; }
    unsigned pageShift() const { return pageShift_; }
    std::uint64_t totalFrames() const
    {
        return org_.totalBytes() >> pageShift_;
    }

    const DramOrganization &organization() const { return org_; }

  private:
    DramOrganization org_;
    unsigned offsetBits_;
    unsigned columnBits_;
    unsigned channelBits_;
    unsigned bankBits_;
    unsigned rankBits_;
    unsigned pageShift_;
};

} // namespace refsched::dram

#endif // REFSCHED_DRAM_ADDRESS_MAPPING_HH
