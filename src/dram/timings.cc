#include "dram/timings.hh"

#include "simcore/logging.hh"

namespace refsched::dram
{

std::string
toString(DensityGb d)
{
    return std::to_string(static_cast<int>(d)) + "Gb";
}

void
DramOrganization::check() const
{
    if (channels < 1 || ranksPerChannel < 1 || banksPerRank < 1)
        fatal("DRAM organization fields must be positive");
    if (!isPowerOfTwo(static_cast<std::uint64_t>(channels)))
        fatal("channel count must be a power of two");
    if (!isPowerOfTwo(static_cast<std::uint64_t>(ranksPerChannel)))
        fatal("rank count must be a power of two");
    if (!isPowerOfTwo(static_cast<std::uint64_t>(banksPerRank)))
        fatal("bank count must be a power of two");
    // rowsPerBank may be non-power-of-two (24 Gb devices have 384K
    // rows); the row is the top address field, so no bit mask is
    // needed for it.
    if (rowsPerBank == 0)
        fatal("rows per bank must be non-zero");
    if (!isPowerOfTwo(rowBytes) || !isPowerOfTwo(lineBytes))
        fatal("row and line sizes must be powers of two");
    if (lineBytes > rowBytes)
        fatal("line larger than row");
}

void
DramTimings::check(const DramOrganization &org) const
{
    if (tCK == 0)
        fatal("tCK must be non-zero");
    if (tRC < tRAS)
        fatal("tRC must cover tRAS");
    if (tREFIab == 0 || tREFW == 0)
        fatal("refresh intervals must be non-zero");
    if (tRFCab >= tREFIab)
        fatal("tRFC_ab (", tRFCab, ") must be smaller than tREFI_ab (",
              tREFIab, "): refresh would consume the whole interval");
    // Per-bank feasibility: consecutive same-bank refreshes occur at
    // least one per-rank interval apart (the sequential scheduler
    // falls back to rank-parallel slots when the global cadence is
    // tighter than tRFC_pb, e.g. 32 ms retention at 32 Gb).
    if (tRFCpb >= tREFIpb(org.banksPerRank))
        fatal("tRFC_pb must be smaller than the per-rank per-bank "
              "refresh interval");
    if (refreshCommandsPerWindow == 0)
        fatal("refreshCommandsPerWindow must be non-zero");
    if (rowsPerRefresh * refreshCommandsPerWindow != org.rowsPerBank)
        fatal("refresh schedule does not cover the bank exactly: ",
              rowsPerRefresh, " rows/REF * ", refreshCommandsPerWindow,
              " REFs != ", org.rowsPerBank, " rows");
}

double
tRfcAbNs(DensityGb density)
{
    switch (density) {
      case DensityGb::d8:
        return 350.0;
      case DensityGb::d16:
        return 530.0;
      case DensityGb::d24:
        return 710.0;
      case DensityGb::d32:
        return 890.0;
    }
    fatal("unknown density");
}

std::uint64_t
rowsPerBankFor(DensityGb density)
{
    switch (density) {
      case DensityGb::d8:
        return 128 * 1024;
      case DensityGb::d16:
        return 256 * 1024;
      case DensityGb::d24:
        return 384 * 1024;
      case DensityGb::d32:
        return 512 * 1024;
    }
    fatal("unknown density");
}

DramDeviceConfig
makeDdr3_1600(DensityGb density, Tick tREFW, unsigned timeScale,
              FgrMode fgr)
{
    if (timeScale == 0)
        fatal("timeScale must be >= 1");
    if (!isPowerOfTwo(timeScale))
        fatal("timeScale must be a power of two to keep rows/bank a "
              "power of two, got ", timeScale);
    constexpr std::uint64_t kJedecRefreshCommands = 8192;
    if (timeScale > kJedecRefreshCommands)
        fatal("timeScale too large: fewer than one refresh command "
              "per window");

    DramDeviceConfig cfg;
    cfg.density = density;
    cfg.fgr = fgr;
    cfg.timeScale = timeScale;

    const std::uint64_t rows = rowsPerBankFor(density);
    if (rows % timeScale != 0)
        fatal("timeScale does not divide rows per bank");
    cfg.org.rowsPerBank = rows / timeScale;

    DramTimings &t = cfg.timings;
    t.tREFW = tREFW / timeScale;
    t.refreshCommandsPerWindow = kJedecRefreshCommands / timeScale;
    t.tREFIab = t.tREFW / t.refreshCommandsPerWindow;
    t.rowsPerRefresh = cfg.org.rowsPerBank / t.refreshCommandsPerWindow;

    const double rfcAbNs = tRfcAbNs(density);
    double rfcScale = 1.0;
    switch (fgr) {
      case FgrMode::x1:
        rfcScale = 1.0;
        break;
      case FgrMode::x2:
        // Paper section 6.3: tREFI halves but tRFC shrinks only by
        // 1.35x, so 2x mode issues more refresh time overall.
        rfcScale = 1.35;
        t.tREFIab /= 2;
        t.refreshCommandsPerWindow *= 2;
        t.rowsPerRefresh = divCeil(t.rowsPerRefresh, 2);
        break;
      case FgrMode::x4:
        rfcScale = 1.63;
        t.tREFIab /= 4;
        t.refreshCommandsPerWindow *= 4;
        t.rowsPerRefresh = divCeil(t.rowsPerRefresh, 4);
        break;
    }
    t.tRFCab = nanoseconds(rfcAbNs / rfcScale);
    // tRFC_ab-to-tRFC_pb ratio = 2.3 (Table 1, from Chang et al.).
    t.tRFCpb = nanoseconds(rfcAbNs / rfcScale / 2.3);

    cfg.org.check();
    // FGR modes round rowsPerRefresh up, so skip the exact-coverage
    // check for them; x1 must match exactly.
    if (fgr == FgrMode::x1)
        t.check(cfg.org);

    return cfg;
}

} // namespace refsched::dram
