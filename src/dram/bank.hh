/**
 * @file
 * DRAM bank and rank state machines.
 *
 * A Bank tracks its open row and the earliest ticks at which each
 * command type may be issued to it; issuing a command updates those
 * constraints per the JEDEC-style timing rules.  A Rank adds
 * rank-level constraints (tRRD, tFAW) and all-bank refresh state.
 * The memory controller drives these objects; they contain no
 * scheduling policy of their own.
 */

#ifndef REFSCHED_DRAM_BANK_HH
#define REFSCHED_DRAM_BANK_HH

#include <cstdint>
#include <vector>

#include "dram/timings.hh"
#include "simcore/stats.hh"
#include "simcore/types.hh"

namespace refsched::dram
{

/** Sentinel row id for a closed (precharged) bank. */
constexpr std::int64_t kNoRow = -1;

class Bank
{
  public:
    /** Row currently latched in the row buffer, or kNoRow. */
    std::int64_t openRow = kNoRow;

    /** Earliest tick each command may be issued to this bank. */
    Tick actAllowedAt = 0;
    Tick rdAllowedAt = 0;
    Tick wrAllowedAt = 0;
    Tick preAllowedAt = 0;

    /** Bank unavailable (under refresh) until this tick. */
    Tick refreshingUntil = 0;

    /** Tick of the last ACT or CAS; feeds the controller's idle-row
     *  auto-close timeout (adaptive open-page management). */
    Tick lastAccessAt = 0;

    /** Start tick and row count of the in-flight refresh (refresh
     *  pausing needs to know how far it has progressed). */
    Tick refreshStart = 0;
    std::uint64_t refreshRows = 0;

    /** In-flight refresh may be paused at a row boundary. */
    bool refreshPausable = false;

    /** actAllowedAt as it was before the refresh extended it, so a
     *  pause can roll the constraint back. */
    Tick actAllowedBeforeRefresh = 0;

    /** Rows refreshed since this bank's current refresh pass began
     *  (Algorithm 1 bookkeeping lives in the refresh scheduler; this
     *  per-bank counter feeds stats/invariant checks). */
    std::uint64_t rowsRefreshedInWindow = 0;

    // --- Statistics ---
    std::uint64_t activations = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t refreshes = 0;

    bool isOpen() const { return openRow != kNoRow; }

    bool
    underRefresh(Tick now) const
    {
        return now < refreshingUntil;
    }

    /** Apply an ACT of @p row at tick @p now. */
    void activate(Tick now, std::int64_t row, const DramTimings &t);

    /** Apply a PRE at tick @p now. */
    void precharge(Tick now, const DramTimings &t);

    /** Apply a read CAS at @p now; returns the data-ready tick. */
    Tick read(Tick now, const DramTimings &t);

    /** Apply a write CAS at @p now; returns burst-complete tick. */
    Tick write(Tick now, const DramTimings &t);

    /** Begin a refresh occupying the bank for @p tRFC.
     *  @p rows and @p pausable feed the refresh-pausing bookkeeping. */
    void startRefresh(Tick now, Tick tRFC, std::uint64_t rows = 0,
                      bool pausable = false);

    /**
     * Pause the in-flight refresh at the next row boundary (Nair et
     * al., HPCA'13): the current row completes, the remainder is the
     * caller's to re-issue.  Returns the number of rows NOT yet
     * refreshed (0 when the refresh is finished or unpausable).
     */
    std::uint64_t pauseRefresh(Tick now);
};

/**
 * Rank-level constraints and all-bank refresh state.  Banks are held
 * by value; the memory controller indexes them directly.
 */
class Rank
{
  public:
    explicit Rank(const DramOrganization &org)
        : banks(static_cast<std::size_t>(org.banksPerRank)) {}

    std::vector<Bank> banks;

    /** Earliest tick any ACT may be issued in this rank (tRRD). */
    Tick actAllowedAt = 0;

    /** Whole rank blocked by all-bank refresh until this tick. */
    Tick refreshingUntil = 0;

    std::uint64_t allBankRefreshes = 0;

    bool
    underRefresh(Tick now) const
    {
        return now < refreshingUntil;
    }

    /** True iff a 4th ACT inside tFAW would be violated at @p now. */
    bool fawBlocked(Tick now, const DramTimings &t) const;

    /** Earliest tick a fifth ACT clears the tFAW window (equals 0
     *  when the window is not yet primed).  fawBlocked(now) is
     *  exactly `now < fawClearAt(t)`. */
    Tick fawClearAt(const DramTimings &t) const;

    /** Record an ACT for tRRD / tFAW accounting. */
    void noteActivate(Tick now, const DramTimings &t);

    /** True iff all banks are precharged and quiescent at @p now
     *  (required before an all-bank REF). */
    bool allBanksIdle(Tick now) const;

    /** Begin an all-bank refresh occupying every bank for @p tRFC. */
    void startAllBankRefresh(Tick now, Tick tRFC);

  private:
    /** Ticks of the last four ACTs, oldest first. */
    Tick lastActs[4] = {0, 0, 0, 0};
    int actCountMod = 0;
    bool fawPrimed = false;
};

} // namespace refsched::dram

#endif // REFSCHED_DRAM_BANK_HH
