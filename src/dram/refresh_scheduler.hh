/**
 * @file
 * Refresh scheduling policies.
 *
 * The memory controller asks its RefreshScheduler when the next
 * refresh command is due on a channel and which rank/bank it targets.
 * Concrete policies:
 *
 *  - AllBankRefresh:      JEDEC DDRx rank-level REF, ranks staggered
 *                         by tREFI/numRanks (paper section 2.2.1).
 *  - PerBankRoundRobin:   LPDDR3-style per-bank REF rotating over all
 *                         banks of all ranks, tREFI_pb = tREFI_ab /
 *                         banksTotal (paper section 2.2.2).
 *  - SequentialPerBank:   the paper's proposed schedule (Algorithm 1):
 *                         keep refreshing the SAME bank in successive
 *                         intervals until all its rows are done, then
 *                         advance; each bank is under refresh for one
 *                         contiguous tREFW/banksTotal slot per window.
 *  - OooPerBank:          out-of-order per-bank refresh (Chang et al.
 *                         HPCA'14 baseline): each interval, refresh
 *                         the not-yet-exhausted bank with the fewest
 *                         queued requests.
 *  - AdaptiveRefresh:     Mukundan et al. ISCA'13: all-bank refresh
 *                         that switches between DDR4 1x and 4x modes
 *                         based on observed channel utilization.
 *  - NoRefresh:           ideal upper bound; never issues refresh.
 *
 * All policies guarantee full row coverage: every bank receives
 * rowsPerBank row-refreshes per tREFW window (verified by tests and
 * by the controller's window-boundary check).
 */

#ifndef REFSCHED_DRAM_REFRESH_SCHEDULER_HH
#define REFSCHED_DRAM_REFRESH_SCHEDULER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dram/timings.hh"
#include "simcore/types.hh"

namespace refsched::dram
{

/** Identifies which policy to instantiate. */
enum class RefreshPolicy
{
    NoRefresh,
    AllBank,
    PerBankRoundRobin,
    SequentialPerBank,
    OooPerBank,
    Adaptive,
};

std::string toString(RefreshPolicy p);

/** Target of one refresh command (channel implied by the call). */
struct RefreshCommand
{
    int rank = 0;
    int bank = kAllBanksInRank;  ///< bank in rank, or all banks
    std::uint64_t rows = 0;      ///< rows refreshed in each bank
    Tick tRFC = 0;               ///< occupancy of the command

    static constexpr int kAllBanksInRank = -1;

    bool isAllBank() const { return bank == kAllBanksInRank; }
};

/**
 * The controller state a refresh policy may observe when choosing a
 * target (needed by OooPerBank and AdaptiveRefresh).
 */
class McRefreshView
{
  public:
    virtual ~McRefreshView() = default;

    /** Read+write queue entries destined for (rank, bank). */
    virtual int queuedToBank(int channel, int rank, int bank) const = 0;

    /** Fraction of recent ticks the channel data bus was busy. */
    virtual double channelUtilization(int channel) const = 0;
};

/**
 * Base class.  Policies keep independent per-channel cursors; a
 * multi-channel system refreshes its channels independently, exactly
 * like independent DIMMs.
 */
class RefreshScheduler
{
  public:
    explicit RefreshScheduler(const DramDeviceConfig &cfg);
    virtual ~RefreshScheduler() = default;

    RefreshScheduler(const RefreshScheduler &) = delete;
    RefreshScheduler &operator=(const RefreshScheduler &) = delete;

    virtual RefreshPolicy policy() const = 0;
    std::string name() const { return toString(policy()); }

    /** Tick at which the next command on @p channel is due. */
    virtual Tick nextDue(int channel) const = 0;

    /**
     * Consume the due command on @p channel, advancing the internal
     * schedule.  Only call when nextDue(channel) has been reached.
     */
    virtual RefreshCommand pop(int channel, const McRefreshView &view)
        = 0;

    /**
     * Co-design hook (paper section 5.3): the global bank indices
     * scheduled to be under refresh during the quantum beginning at
     * @p from on @p channel (empty when the policy has no analytic
     * schedule).  Only SequentialPerBank implements this -- it is
     * the property that makes refresh-aware scheduling work.  The
     * result has one entry in the paper's global schedule and one
     * per rank in the rank-parallel fallback (see SequentialPerBank).
     */
    virtual std::vector<int>
    banksUnderRefreshAt(int channel, Tick from) const
    {
        (void)channel;
        (void)from;
        return {};
    }

    const DramDeviceConfig &config() const { return cfg_; }

  protected:
    DramDeviceConfig cfg_;
    int banksPerRank_;
    int ranks_;
    int banksPerChannel_;
};

/** Factory. */
std::unique_ptr<RefreshScheduler>
makeRefreshScheduler(RefreshPolicy policy, const DramDeviceConfig &cfg);

// ---------------------------------------------------------------------
// Concrete policies
// ---------------------------------------------------------------------

/** Never refreshes (ideal bound for Fig. 3 / Fig. 4). */
class NoRefresh final : public RefreshScheduler
{
  public:
    using RefreshScheduler::RefreshScheduler;

    RefreshPolicy policy() const override
    {
        return RefreshPolicy::NoRefresh;
    }

    Tick nextDue(int) const override { return kMaxTick; }

    RefreshCommand pop(int, const McRefreshView &) override;
};

/** JEDEC rank-level refresh, ranks staggered. */
class AllBankRefresh final : public RefreshScheduler
{
  public:
    explicit AllBankRefresh(const DramDeviceConfig &cfg);

    RefreshPolicy policy() const override
    {
        return RefreshPolicy::AllBank;
    }

    Tick nextDue(int channel) const override;
    RefreshCommand pop(int channel, const McRefreshView &view) override;

  private:
    Tick stagger_;  ///< tREFI_ab / numRanks
    std::vector<std::uint64_t> cmdIndex_;  ///< per channel
};

/** LPDDR3 per-bank refresh, banks rotated round-robin. */
class PerBankRoundRobin final : public RefreshScheduler
{
  public:
    explicit PerBankRoundRobin(const DramDeviceConfig &cfg);

    RefreshPolicy policy() const override
    {
        return RefreshPolicy::PerBankRoundRobin;
    }

    Tick nextDue(int channel) const override;
    RefreshCommand pop(int channel, const McRefreshView &view) override;

  private:
    Tick tREFIpb_;
    std::vector<std::uint64_t> cmdIndex_;
};

/**
 * The paper's Algorithm 1: keep refreshing the same bank until all
 * its rows are done, then advance (banks within a rank first, then
 * the next rank).  Each bank is contiguously under refresh for one
 * tREFW/banksTotal slot per window.
 *
 * Rank-parallel fallback: when tREFI_pb <= tRFC_pb (e.g. 32 ms
 * retention with 32 Gb chips), back-to-back refreshes to a single
 * bank cannot keep up, so the sequential schedule runs per rank
 * instead: every rank walks its banks concurrently and a slot lasts
 * tREFW/banksPerRank, with one bank per rank under refresh.  Quanta
 * still divide slots, so the refresh-aware scheduler works the same
 * way (it just avoids one bank-id across all ranks).
 */
class SequentialPerBank final : public RefreshScheduler
{
  public:
    explicit SequentialPerBank(const DramDeviceConfig &cfg);

    RefreshPolicy policy() const override
    {
        return RefreshPolicy::SequentialPerBank;
    }

    Tick nextDue(int channel) const override;
    RefreshCommand pop(int channel, const McRefreshView &view) override;
    std::vector<int> banksUnderRefreshAt(int channel,
                                         Tick from) const override;

    /** Length of one bank's contiguous refresh slot. */
    Tick slotLength() const;

    /** True when the rank-parallel fallback is active. */
    bool rankParallel() const { return rankParallel_; }

  private:
    struct ChannelCursor
    {
        /** Algorithm 1 state, one cursor per rank when running
         *  rank-parallel (only index 0 used in global mode). */
        std::vector<int> nextRefreshBank;
        std::vector<int> nextRefreshRank;
        std::vector<std::uint64_t> numRowsRefreshed;
        std::uint64_t cmdIndex = 0;
    };

    Tick tREFIpb_;
    bool rankParallel_;
    std::uint64_t cmdsPerBank_;
    std::vector<ChannelCursor> cursors_;
};

/** Out-of-order per-bank refresh (Chang et al. baseline). */
class OooPerBank final : public RefreshScheduler
{
  public:
    explicit OooPerBank(const DramDeviceConfig &cfg);

    RefreshPolicy policy() const override
    {
        return RefreshPolicy::OooPerBank;
    }

    Tick nextDue(int channel) const override;
    RefreshCommand pop(int channel, const McRefreshView &view) override;

  private:
    struct ChannelCursor
    {
        /** Remaining REF commands each bank needs this window. */
        std::vector<std::uint64_t> debt;
        std::uint64_t cmdIndex = 0;
        int rrHint = 0;  ///< tie-break rotation
    };

    Tick tREFIpb_;
    std::uint64_t cmdsPerBankPerWindow_;
    std::vector<ChannelCursor> cursors_;
};

/** Adaptive Refresh (Mukundan et al.): 1x/4x mode switching. */
class AdaptiveRefresh final : public RefreshScheduler
{
  public:
    /**
     * @param utilThreshold switch to 4x mode only when channel
     * utilization is below this value.  4x pays the sub-linear
     * tRFC-scaling tax (1.63x) four times per tREFI, so it only wins
     * in near-idle epochs where its short blocks dodge the rare
     * request; any substantial traffic wants 1x (Mukundan et al.'s
     * high-density observation).
     */
    explicit AdaptiveRefresh(const DramDeviceConfig &cfg,
                             double utilThreshold = 0.02);

    RefreshPolicy policy() const override
    {
        return RefreshPolicy::Adaptive;
    }

    Tick nextDue(int channel) const override;
    RefreshCommand pop(int channel, const McRefreshView &view) override;

    FgrMode currentMode(int channel) const
    {
        return cursors_[static_cast<std::size_t>(channel)].mode;
    }

  private:
    struct ChannelCursor
    {
        FgrMode mode = FgrMode::x1;
        Tick nextDue = 0;
        int nextRank = 0;
        /** Rows still owed to each rank's banks this window. */
        std::vector<std::uint64_t> rowsDebt;
        std::uint64_t windowIndex = 0;
    };

    void rollWindow(ChannelCursor &cur, Tick now) const;

    double utilThreshold_;
    Tick tRfc4x_;
    std::uint64_t rowsPerCmd1x_;
    std::vector<ChannelCursor> cursors_;
};

} // namespace refsched::dram

#endif // REFSCHED_DRAM_REFRESH_SCHEDULER_HH
