#include "dram/address_mapping.hh"

#include "simcore/logging.hh"

namespace refsched::dram
{

AddressMapping::AddressMapping(const DramOrganization &org) : org_(org)
{
    org_.check();
    offsetBits_ = log2Exact(org_.lineBytes);
    columnBits_ = log2Exact(org_.columnsPerRow());
    channelBits_ = log2Exact(static_cast<std::uint64_t>(org_.channels));
    bankBits_ = log2Exact(static_cast<std::uint64_t>(org_.banksPerRank));
    rankBits_ =
        log2Exact(static_cast<std::uint64_t>(org_.ranksPerChannel));
    pageShift_ = log2Exact(org_.rowBytes);
    REFSCHED_ASSERT(offsetBits_ + columnBits_ == pageShift_,
                    "column+offset bits must cover one page");
}

DramCoord
AddressMapping::decompose(Addr paddr) const
{
    DramCoord c;
    Addr a = paddr >> offsetBits_;
    c.column = a & ((1ULL << columnBits_) - 1);
    a >>= columnBits_;
    c.channel = static_cast<int>(a & ((1ULL << channelBits_) - 1));
    a >>= channelBits_;
    c.bank = static_cast<int>(a & ((1ULL << bankBits_) - 1));
    a >>= bankBits_;
    c.rank = static_cast<int>(a & ((1ULL << rankBits_) - 1));
    a >>= rankBits_;
    // The row is the (unmasked) top field: this keeps the mapping
    // exact for non-power-of-two row counts (24 Gb -> 384K rows).
    c.row = a;
    if (org_.xorBankHash) {
        // Self-inverse bank hash: bank XOR low-row-bits.
        c.bank = static_cast<int>(
            static_cast<std::uint64_t>(c.bank)
            ^ (c.row & ((1ULL << bankBits_) - 1)));
    }
    return c;
}

Addr
AddressMapping::compose(const DramCoord &c) const
{
    // Cold path (tests, debugging): reject coordinates outside the
    // organization rather than silently aliasing another address.
    REFSCHED_ASSERT(c.channel >= 0 && c.channel < org_.channels,
                    "compose: channel ", c.channel, " out of range");
    REFSCHED_ASSERT(c.rank >= 0 && c.rank < org_.ranksPerChannel,
                    "compose: rank ", c.rank, " out of range");
    REFSCHED_ASSERT(c.bank >= 0 && c.bank < org_.banksPerRank,
                    "compose: bank ", c.bank, " out of range");
    REFSCHED_ASSERT(c.row < org_.rowsPerBank, "compose: row ", c.row,
                    " out of range");
    REFSCHED_ASSERT(c.column < org_.columnsPerRow(),
                    "compose: column ", c.column, " out of range");

    Addr bankField = static_cast<Addr>(c.bank);
    if (org_.xorBankHash)
        bankField ^= c.row & ((1ULL << bankBits_) - 1);
    Addr a = c.row;
    a = (a << rankBits_) | static_cast<Addr>(c.rank);
    a = (a << bankBits_) | bankField;
    a = (a << channelBits_) | static_cast<Addr>(c.channel);
    a = (a << columnBits_) | c.column;
    a <<= offsetBits_;
    return a;
}

int
AddressMapping::globalBank(Addr paddr) const
{
    return globalBank(decompose(paddr));
}

} // namespace refsched::dram
