/**
 * @file
 * DRAM energy accounting, in the style of the Micron DDR3 power
 * model: per-event energies for row activations (ACT+PRE pair),
 * read/write bursts and refresh (charged per row refreshed, since a
 * REF internally activates and precharges every affected row), plus
 * rank background power integrated over time.
 *
 * Absolute joules are approximate (datasheet-class constants for a
 * DDR3-1600 x8 rank); the model's purpose is comparing refresh
 * policies: refresh energy itself is invariant across policies (the
 * same rows are refreshed either way), so the interesting outputs
 * are the background share and energy-per-instruction, which improve
 * when a policy finishes more work in the same wall-clock time.
 */

#ifndef REFSCHED_DRAM_ENERGY_HH
#define REFSCHED_DRAM_ENERGY_HH

#include <cstdint>
#include <string>

#include "dram/timings.hh"
#include "simcore/stats.hh"
#include "simcore/types.hh"

namespace refsched::dram
{

/** Per-event energies (picojoules) and background power. */
struct EnergyParams
{
    double actPrePj = 2300.0;   ///< one ACT + its eventual PRE
    double readPj = 1400.0;     ///< one 64 B read burst incl. I/O
    double writePj = 1500.0;    ///< one 64 B write burst incl. I/O
    double refreshRowPj = 110.0;///< per row internally refreshed
    double backgroundMwPerRank = 75.0;  ///< standby power per rank
};

/** Accumulates energy for one channel. */
class EnergyModel
{
  public:
    EnergyModel(const EnergyParams &params, int ranks)
        : params_(params), ranks_(ranks)
    {
    }

    void noteActivate() { actPj_ += params_.actPrePj; }
    void noteRead() { rdwrPj_ += params_.readPj; }
    void noteWrite() { rdwrPj_ += params_.writePj; }

    void
    noteRefresh(std::uint64_t rows)
    {
        refreshPj_ +=
            params_.refreshRowPj * static_cast<double>(rows);
    }

    /** Background energy for @p elapsed simulated ticks. */
    double
    backgroundPj(Tick elapsed) const
    {
        // mW * ps = 1e-3 J/s * 1e-12 s = 1e-15 J = 1e-3 pJ.
        return params_.backgroundMwPerRank
            * static_cast<double>(ranks_)
            * static_cast<double>(elapsed) * 1e-3;
    }

    double activatePj() const { return actPj_; }
    double readWritePj() const { return rdwrPj_; }
    double refreshPj() const { return refreshPj_; }

    double
    totalPj(Tick elapsed) const
    {
        return actPj_ + rdwrPj_ + refreshPj_ + backgroundPj(elapsed);
    }

    void
    reset()
    {
        actPj_ = rdwrPj_ = refreshPj_ = 0.0;
    }

    const EnergyParams &params() const { return params_; }

  private:
    EnergyParams params_;
    int ranks_;
    double actPj_ = 0.0;
    double rdwrPj_ = 0.0;
    double refreshPj_ = 0.0;
};

/** Channel-energy breakdown reported through Metrics. */
struct EnergyBreakdown
{
    double activatePj = 0.0;
    double readWritePj = 0.0;
    double refreshPj = 0.0;
    double backgroundPj = 0.0;

    double
    totalPj() const
    {
        return activatePj + readWritePj + refreshPj + backgroundPj;
    }

    double
    refreshShare() const
    {
        const double t = totalPj();
        return t > 0.0 ? refreshPj / t : 0.0;
    }

    std::string summary() const;
};

} // namespace refsched::dram

#endif // REFSCHED_DRAM_ENERGY_HH
