/**
 * @file
 * DRAM device organization and timing parameters.
 *
 * Values follow Table 1 of the paper: DDR3-1600, 1 channel,
 * 2 ranks/DIMM, 8 banks/rank, 4 KB rows, open-row policy, with
 * density-dependent refresh parameters (tRFC_ab = 350/530/710/890 ns
 * and 128K/256K/384K/512K rows per bank for 8/16/24/32 Gb devices)
 * and tRFC_ab : tRFC_pb = 2.3 (Chang et al., HPCA'14).
 *
 * A `timeScale` divisor shrinks the refresh window, the number of
 * refresh commands per window, and the number of rows per bank by
 * the same factor.  This keeps every behaviour-determining ratio
 * invariant -- tRFC/tREFI (refresh duty cycle), refresh-slot length /
 * OS quantum alignment, rows refreshed per command -- while letting a
 * full refresh window simulate quickly.  timeScale=1 reproduces the
 * exact JEDEC wall-clock values.
 */

#ifndef REFSCHED_DRAM_TIMINGS_HH
#define REFSCHED_DRAM_TIMINGS_HH

#include <cstdint>
#include <string>

#include "simcore/types.hh"

namespace refsched::dram
{

/** DRAM device density. Determines tRFC and rows per bank. */
enum class DensityGb : int
{
    d8 = 8,
    d16 = 16,
    d24 = 24,
    d32 = 32,
};

std::string toString(DensityGb d);

/** DDR4 fine-granularity-refresh mode (paper section 6.3). */
enum class FgrMode : int
{
    x1 = 1,  ///< Baseline tREFI, full tRFC.
    x2 = 2,  ///< tREFI/2, tRFC/1.35.
    x4 = 4,  ///< tREFI/4, tRFC/1.63.
};

/** Physical structure of the memory system. */
struct DramOrganization
{
    int channels = 1;
    int ranksPerChannel = 2;
    int banksPerRank = 8;
    std::uint64_t rowsPerBank = 512 * 1024;  ///< density-dependent
    std::uint64_t rowBytes = 4 * kKiB;       ///< 4 KB DRAM page
    std::uint64_t lineBytes = 64;            ///< cache-line burst

    /**
     * XOR the bank index with the low row bits (bank-address
     * hashing, as real controllers do): strided access patterns
     * whose period aliases the bank-interleave then spread over all
     * banks instead of camping on one.  The OS still sees the true
     * bank through AddressMapping, so the co-design is unaffected.
     */
    bool xorBankHash = false;

    int banksTotal() const { return ranksPerChannel * banksPerRank; }

    std::uint64_t
    bankBytes() const
    {
        return rowsPerBank * rowBytes;
    }

    std::uint64_t
    channelBytes() const
    {
        return static_cast<std::uint64_t>(banksTotal()) * bankBytes();
    }

    std::uint64_t
    totalBytes() const
    {
        return static_cast<std::uint64_t>(channels) * channelBytes();
    }

    std::uint64_t
    columnsPerRow() const
    {
        return rowBytes / lineBytes;
    }

    /** Validate power-of-two fields etc.; fatal() on error. */
    void check() const;
};

/** All timing parameters, in ticks (picoseconds). */
struct DramTimings
{
    Tick tCK = 1250;                    ///< DDR3-1600 clock period
    Tick tRCD = nanoseconds(13.75);     ///< ACT -> CAS
    Tick tCL = nanoseconds(13.75);      ///< CAS -> first data (read)
    Tick tCWL = nanoseconds(10.0);      ///< CAS -> first data (write)
    Tick tRP = nanoseconds(13.75);      ///< PRE -> ACT
    Tick tRAS = nanoseconds(35.0);      ///< ACT -> PRE
    Tick tRC = nanoseconds(48.75);      ///< ACT -> ACT (same bank)
    Tick tBURST = nanoseconds(5.0);     ///< BL8 data burst
    Tick tCCD = nanoseconds(5.0);       ///< CAS -> CAS
    Tick tWR = nanoseconds(15.0);       ///< write recovery
    Tick tWTR = nanoseconds(7.5);       ///< write -> read turnaround
    Tick tRTP = nanoseconds(7.5);       ///< read -> PRE
    Tick tRRD = nanoseconds(6.0);       ///< ACT -> ACT (same rank)
    Tick tFAW = nanoseconds(30.0);      ///< four-activate window
    Tick tRTRS = nanoseconds(2.5);      ///< rank-to-rank bus switch
    Tick tBusTurn = nanoseconds(7.5);   ///< read<->write bus turnaround

    // --- Refresh ---
    Tick tREFW = milliseconds(64.0);    ///< retention / refresh window
    Tick tREFIab = microseconds(7.8125);///< all-bank refresh interval
    Tick tRFCab = nanoseconds(890.0);   ///< all-bank refresh cycle
    Tick tRFCpb = nanoseconds(890.0 / 2.3);  ///< per-bank refresh cycle

    /** All-bank REF commands per tREFW (8192 / timeScale). */
    std::uint64_t refreshCommandsPerWindow = 8192;

    /** Rows refreshed in a bank by one REF command. */
    std::uint64_t rowsPerRefresh = 64;

    /** Per-bank refresh interval given total bank count. */
    Tick
    tREFIpb(int banksTotal) const
    {
        return tREFIab / static_cast<Tick>(banksTotal);
    }

    /** Fraction of time a rank is blocked by all-bank refresh. */
    double
    allBankDutyCycle() const
    {
        return static_cast<double>(tRFCab)
            / static_cast<double>(tREFIab);
    }

    /** Validate internal consistency; fatal() on error. */
    void check(const DramOrganization &org) const;
};

/** Bundle used by factory functions below. */
struct DramDeviceConfig
{
    DramOrganization org;
    DramTimings timings;
    DensityGb density = DensityGb::d32;
    FgrMode fgr = FgrMode::x1;
    unsigned timeScale = 1;
};

/** tRFC_ab in nanoseconds for a given density (Table 1 / Fig. 3). */
double tRfcAbNs(DensityGb density);

/** Unscaled rows per bank for a given density (Table 1). */
std::uint64_t rowsPerBankFor(DensityGb density);

/**
 * Build a DDR3-1600-style configuration per Table 1.
 *
 * @param density     device density (sets tRFC and rows/bank)
 * @param tREFW       retention window (64 ms below 85C, 32 ms above)
 * @param timeScale   ratio-preserving shrink factor (see file header)
 * @param fgr         DDR4 fine-granularity mode (x1 = DDR3 behaviour)
 */
DramDeviceConfig makeDdr3_1600(DensityGb density,
                               Tick tREFW = milliseconds(64.0),
                               unsigned timeScale = 1,
                               FgrMode fgr = FgrMode::x1);

} // namespace refsched::dram

#endif // REFSCHED_DRAM_TIMINGS_HH
