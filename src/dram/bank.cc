#include "dram/bank.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace refsched::dram
{

void
Bank::activate(Tick now, std::int64_t row, const DramTimings &t)
{
    REFSCHED_ASSERT(!isOpen(), "ACT to an open bank");
    REFSCHED_ASSERT(now >= actAllowedAt, "ACT violates tRC/tRP");
    REFSCHED_ASSERT(!underRefresh(now), "ACT to a refreshing bank");

    openRow = row;
    lastAccessAt = now;
    rdAllowedAt = std::max(rdAllowedAt, now + t.tRCD);
    wrAllowedAt = std::max(wrAllowedAt, now + t.tRCD);
    preAllowedAt = std::max(preAllowedAt, now + t.tRAS);
    actAllowedAt = std::max(actAllowedAt, now + t.tRC);
    ++activations;
}

void
Bank::precharge(Tick now, const DramTimings &t)
{
    REFSCHED_ASSERT(isOpen(), "PRE to a closed bank");
    REFSCHED_ASSERT(now >= preAllowedAt, "PRE violates tRAS/tWR/tRTP");

    openRow = kNoRow;
    actAllowedAt = std::max(actAllowedAt, now + t.tRP);
}

Tick
Bank::read(Tick now, const DramTimings &t)
{
    REFSCHED_ASSERT(isOpen(), "READ to a closed bank");
    REFSCHED_ASSERT(now >= rdAllowedAt, "READ violates tRCD/tCCD");

    lastAccessAt = now;
    rdAllowedAt = std::max(rdAllowedAt, now + t.tCCD);
    wrAllowedAt = std::max(wrAllowedAt, now + t.tCCD);
    // Read-to-precharge: tRTP after the CAS.
    preAllowedAt = std::max(preAllowedAt, now + t.tRTP);
    return now + t.tCL + t.tBURST;
}

Tick
Bank::write(Tick now, const DramTimings &t)
{
    REFSCHED_ASSERT(isOpen(), "WRITE to a closed bank");
    REFSCHED_ASSERT(now >= wrAllowedAt, "WRITE violates tRCD/tCCD");

    lastAccessAt = now;
    const Tick burstDone = now + t.tCWL + t.tBURST;
    rdAllowedAt = std::max(rdAllowedAt, burstDone + t.tWTR);
    wrAllowedAt = std::max(wrAllowedAt, now + t.tCCD);
    // Write recovery before precharge.
    preAllowedAt = std::max(preAllowedAt, burstDone + t.tWR);
    return burstDone;
}

void
Bank::startRefresh(Tick now, Tick tRFC, std::uint64_t rows,
                   bool pausable)
{
    REFSCHED_ASSERT(!isOpen(), "REF to an open bank");
    REFSCHED_ASSERT(!underRefresh(now), "overlapping bank refresh");

    actAllowedBeforeRefresh = actAllowedAt;
    refreshStart = now;
    refreshRows = rows;
    refreshPausable = pausable && rows > 0;
    refreshingUntil = now + tRFC;
    actAllowedAt = std::max(actAllowedAt, refreshingUntil);
    ++refreshes;
}

std::uint64_t
Bank::pauseRefresh(Tick now)
{
    if (!refreshPausable || !underRefresh(now))
        return 0;

    // Refresh Pausing points are coarse: hardware exposes a handful
    // of interruption boundaries per tRFC, not per-row control
    // (Nair et al. use a small fixed number of pausing points).
    constexpr std::uint64_t kPausePoints = 4;
    const std::uint64_t segments =
        std::min<std::uint64_t>(kPausePoints, refreshRows);
    const Tick perSeg = (refreshingUntil - refreshStart) / segments;
    REFSCHED_ASSERT(perSeg > 0, "degenerate refresh segment time");
    const std::uint64_t segsDone =
        (now - refreshStart) / perSeg + 1;  // current segment finishes
    if (segsDone >= segments)
        return 0;  // nothing left worth pausing

    const std::uint64_t rowsPerSeg =
        divCeil(refreshRows, segments);
    const std::uint64_t rowsDone =
        std::min(refreshRows, segsDone * rowsPerSeg);
    const std::uint64_t remaining = refreshRows - rowsDone;
    if (remaining == 0)
        return 0;

    refreshingUntil = refreshStart + perSeg * segsDone;
    refreshRows = rowsDone;
    refreshPausable = false;
    // Roll the ACT constraint back to the shortened refresh end.
    actAllowedAt =
        std::max(actAllowedBeforeRefresh, refreshingUntil);
    return remaining;
}

bool
Rank::fawBlocked(Tick now, const DramTimings &t) const
{
    if (!fawPrimed)
        return false;
    // The oldest of the last four ACTs must be at least tFAW old
    // before a fifth may be issued.
    const Tick oldest = lastActs[actCountMod];
    return now < oldest + t.tFAW;
}

Tick
Rank::fawClearAt(const DramTimings &t) const
{
    if (!fawPrimed)
        return 0;
    return lastActs[actCountMod] + t.tFAW;
}

void
Rank::noteActivate(Tick now, const DramTimings &t)
{
    actAllowedAt = std::max(actAllowedAt, now + t.tRRD);
    lastActs[actCountMod] = now;
    actCountMod = (actCountMod + 1) % 4;
    if (actCountMod == 0)
        fawPrimed = true;
}

bool
Rank::allBanksIdle(Tick now) const
{
    for (const auto &b : banks) {
        if (b.isOpen() || b.underRefresh(now))
            return false;
    }
    return true;
}

void
Rank::startAllBankRefresh(Tick now, Tick tRFC)
{
    REFSCHED_ASSERT(allBanksIdle(now), "all-bank REF with open banks");
    refreshingUntil = now + tRFC;
    for (auto &b : banks) {
        b.refreshingUntil = refreshingUntil;
        b.actAllowedAt = std::max(b.actAllowedAt, refreshingUntil);
        ++b.refreshes;
    }
    actAllowedAt = std::max(actAllowedAt, refreshingUntil);
    ++allBankRefreshes;
}

} // namespace refsched::dram
