/**
 * @file
 * Fixed-capacity request container for the memory controller,
 * indexed two ways at once:
 *
 *   - a global arrival (FCFS) order over all queued requests, and
 *   - a per-bank arrival order, one intrusive list per bank, plus a
 *     ready-bank bitmask of banks with at least one queued request.
 *
 * The FR-FCFS scheduler only ever needs (a) the globally oldest
 * request and (b) per-bank candidates, so the controller's pick
 * loops iterate over occupied banks (popcount-style, via the
 * bitmask) instead of rescanning the whole queue: candidate scan
 * cost drops from O(queue length) to O(occupied banks) for the
 * activate pass and to O(requests in one bank) for the row-hit and
 * precharge passes.
 *
 * Nodes live in a fixed array sized at construction (queue capacity
 * is a hard controller parameter), linked through indices; push and
 * erase are O(1) and allocation-free.
 */

#ifndef REFSCHED_MEMCTRL_BANKED_REQUEST_QUEUE_HH
#define REFSCHED_MEMCTRL_BANKED_REQUEST_QUEUE_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "memctrl/request.hh"
#include "simcore/logging.hh"
#include "simcore/types.hh"

namespace refsched::memctrl
{

class BankedRequestQueue
{
  public:
    static constexpr std::uint32_t kNone = 0xffffffffu;

    BankedRequestQueue(std::size_t capacity, int banks)
        : nodes_(capacity),
          bankHead_(static_cast<std::size_t>(banks), kNone),
          bankTail_(static_cast<std::size_t>(banks), kNone),
          bankCount_(static_cast<std::size_t>(banks), 0),
          occupied_((static_cast<std::size_t>(banks) + 63) / 64, 0)
    {
        for (std::size_t i = 0; i < capacity; ++i) {
            nodes_[i].nextFree = i + 1 < capacity
                ? static_cast<std::uint32_t>(i + 1)
                : kNone;
        }
        freeHead_ = capacity > 0 ? 0 : kNone;
    }

    bool empty() const { return size_ == 0; }
    bool full() const { return freeHead_ == kNone; }
    std::size_t size() const { return size_; }

    /** Queued requests targeting @p bank. */
    int
    bankCount(int bank) const
    {
        return bankCount_[static_cast<std::size_t>(bank)];
    }

    /** Append @p r, which targets @p bank; queue must not be full. */
    std::uint32_t
    push(Request &&r, int bank)
    {
        REFSCHED_ASSERT(freeHead_ != kNone, "push on full queue");
        const std::uint32_t idx = freeHead_;
        Node &n = nodes_[idx];
        freeHead_ = n.nextFree;

        n.req = std::move(r);
        n.bank = bank;

        n.agePrev = ageTail_;
        n.ageNext = kNone;
        if (ageTail_ != kNone)
            nodes_[ageTail_].ageNext = idx;
        else
            ageHead_ = idx;
        ageTail_ = idx;

        auto &head = bankHead_[static_cast<std::size_t>(bank)];
        auto &tail = bankTail_[static_cast<std::size_t>(bank)];
        n.bankPrev = tail;
        n.bankNext = kNone;
        if (tail != kNone)
            nodes_[tail].bankNext = idx;
        else
            head = idx;
        tail = idx;

        if (bankCount_[static_cast<std::size_t>(bank)]++ == 0) {
            occupied_[static_cast<std::size_t>(bank) / 64] |=
                1ULL << (static_cast<std::size_t>(bank) % 64);
        }
        ++size_;
        return idx;
    }

    /** Unlink and recycle @p slot. */
    void
    erase(std::uint32_t slot)
    {
        Node &n = nodes_[slot];

        if (n.agePrev != kNone)
            nodes_[n.agePrev].ageNext = n.ageNext;
        else
            ageHead_ = n.ageNext;
        if (n.ageNext != kNone)
            nodes_[n.ageNext].agePrev = n.agePrev;
        else
            ageTail_ = n.agePrev;

        const int bank = n.bank;
        if (n.bankPrev != kNone)
            nodes_[n.bankPrev].bankNext = n.bankNext;
        else
            bankHead_[static_cast<std::size_t>(bank)] = n.bankNext;
        if (n.bankNext != kNone)
            nodes_[n.bankNext].bankPrev = n.bankPrev;
        else
            bankTail_[static_cast<std::size_t>(bank)] = n.bankPrev;

        if (--bankCount_[static_cast<std::size_t>(bank)] == 0) {
            occupied_[static_cast<std::size_t>(bank) / 64] &=
                ~(1ULL << (static_cast<std::size_t>(bank) % 64));
        }

        n.req = Request{};  // clear the completion record
        n.nextFree = freeHead_;
        freeHead_ = slot;
        --size_;
    }

    Request &request(std::uint32_t slot) { return nodes_[slot].req; }
    const Request &
    request(std::uint32_t slot) const
    {
        return nodes_[slot].req;
    }

    /** Oldest queued request, or kNone. */
    std::uint32_t front() const { return ageHead_; }
    std::uint32_t
    nextInAge(std::uint32_t slot) const
    {
        return nodes_[slot].ageNext;
    }

    /** Oldest request for @p bank, or kNone. */
    std::uint32_t
    bankFront(int bank) const
    {
        return bankHead_[static_cast<std::size_t>(bank)];
    }
    std::uint32_t
    nextInBank(std::uint32_t slot) const
    {
        return nodes_[slot].bankNext;
    }

    /**
     * True iff any of the @p count banks starting at @p first has a
     * queued request.  Tests the ready-bank bitmask words directly,
     * so a rank-wide probe (e.g. all-bank refresh arbitration over
     * 16 banks) is one or two word operations instead of a per-bank
     * count loop.
     */
    bool
    anyOccupiedInRange(int first, int count) const
    {
        const std::size_t lo = static_cast<std::size_t>(first);
        const std::size_t hi = lo + static_cast<std::size_t>(count);
        REFSCHED_ASSERT(count >= 0 && hi <= bankCount_.size(),
                        "bank range out of bounds");
        for (std::size_t w = lo / 64; w * 64 < hi; ++w) {
            std::uint64_t mask = ~0ULL;
            if (w == lo / 64)
                mask &= ~0ULL << (lo % 64);
            if (hi < (w + 1) * 64)
                mask &= (1ULL << (hi % 64)) - 1;
            if (occupied_[w] & mask)
                return true;
        }
        return false;
    }

    /**
     * First word of the ready-bank bitmask (banks 0..63).  The
     * word-scan issue passes intersect this with the controller's
     * open-row and row-hit masks; the controller asserts at
     * construction that a channel has at most 64 banks.
     */
    std::uint64_t occupiedWord() const { return occupied_[0]; }

    /** Invoke @p fn(bank) for every bank with queued requests, in
     *  ascending bank order. */
    template <typename Fn>
    void
    forEachOccupiedBank(Fn &&fn) const
    {
        for (std::size_t w = 0; w < occupied_.size(); ++w) {
            std::uint64_t word = occupied_[w];
            while (word != 0) {
                const int bit = std::countr_zero(word);
                word &= word - 1;
                fn(static_cast<int>(w * 64) + bit);
            }
        }
    }

  private:
    struct Node
    {
        Request req;
        int bank = 0;
        std::uint32_t agePrev = kNone;
        std::uint32_t ageNext = kNone;
        std::uint32_t bankPrev = kNone;
        std::uint32_t bankNext = kNone;
        std::uint32_t nextFree = kNone;
    };

    std::vector<Node> nodes_;
    std::uint32_t freeHead_ = kNone;
    std::uint32_t ageHead_ = kNone;
    std::uint32_t ageTail_ = kNone;
    std::vector<std::uint32_t> bankHead_;
    std::vector<std::uint32_t> bankTail_;
    std::vector<int> bankCount_;
    std::vector<std::uint64_t> occupied_;  ///< ready-bank bitmask
    std::size_t size_ = 0;
};

} // namespace refsched::memctrl

#endif // REFSCHED_MEMCTRL_BANKED_REQUEST_QUEUE_HH
