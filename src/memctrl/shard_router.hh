/**
 * @file
 * Cross-shard mailboxes between the cores (main lane) and the
 * per-channel controller lanes of the sharded kernel.
 *
 * The router is the MemoryPort the cores see in sharded mode and
 * the CompletionSink the controller reports into.  Both directions
 * are staged, never delivered mid-window:
 *
 *   main -> channel   enqueue() stages the request in the target
 *     channel's inbox (phase A, main lane only).  At the window
 *     boundary the inbox moves onto the channel's pending list and
 *     a delivery event is armed on the channel lane at the boundary
 *     tick; the delivery calls MemoryController::enqueue on the
 *     channel's own lane.  A full controller queue bounces the
 *     request back onto the pending list -- the router retries at
 *     the next boundary and the core never sees a NACK (sharded
 *     mode has no core-side retry protocol).
 *
 *   channel -> main   complete() stages the controller's read
 *     completion in the channel's outbox (phase B, that channel's
 *     worker only).  The boundary drains every outbox in channel
 *     order and schedules each completion on the main lane at
 *     max(when, boundary); with epoch <= tCL + tBURST the max never
 *     clamps a CAS completion (see shard_kernel.hh).
 *
 * Each mailbox has exactly one writer phase and one reader phase,
 * separated by the kernel's barrier, so no locks are needed even
 * when phase B runs on worker threads.
 */

#ifndef REFSCHED_MEMCTRL_SHARD_ROUTER_HH
#define REFSCHED_MEMCTRL_SHARD_ROUTER_HH

#include <cstdint>
#include <vector>

#include "memctrl/memory_controller.hh"
#include "memctrl/memory_port.hh"
#include "simcore/shard_kernel.hh"

namespace refsched::memctrl
{

class ShardRouter final : public MemoryPort,
                          public MemoryController::CompletionSink,
                          public Callee
{
  public:
    /** Wires itself up: installs the boundary hook on @p kernel and
     *  the completion sink on @p mc. */
    ShardRouter(ShardKernel &kernel, MemoryController &mc);

    // --- MemoryPort (main lane, phase A) ---
    bool enqueue(Request req) override;
    void requestRetryNotification(std::function<void()> cb) override;

    // --- CompletionSink (channel lane, phase B) ---
    void complete(int channel, Tick when, Callee &callee,
                  std::uint64_t cookie0,
                  std::uint64_t cookie1) override;

    // --- Callee: per-channel delivery event (channel lane) ---
    void fire(Tick now, std::uint64_t channel, std::uint64_t) override;

    /** Window boundary (phase C, single-threaded). */
    void onBoundary(Tick boundary);

    /** Requests staged or bounced, not yet in a controller queue. */
    std::size_t inFlight(int channel) const;

  private:
    struct Completion
    {
        Tick when;
        Callee *callee;
        std::uint64_t cookie0;
        std::uint64_t cookie1;
    };

    struct LaneBox
    {
        std::vector<Request> inbox;       ///< staged by phase A
        std::vector<Request> pending;     ///< awaiting delivery
        std::vector<Completion> outbox;   ///< staged by phase B
        bool deliveryArmed = false;
    };

    ShardKernel &kernel_;
    MemoryController &mc_;
    std::vector<LaneBox> boxes_;
    std::vector<std::function<void()>> retryWaiters_;
};

} // namespace refsched::memctrl

#endif // REFSCHED_MEMCTRL_SHARD_ROUTER_HH
