/**
 * @file
 * Cross-shard mailboxes between the cores and the per-channel
 * controller lanes of the sharded kernel.
 *
 * The router is the MemoryPort the cores see in sharded mode and
 * the CompletionSink the controller reports into.  Both directions
 * are staged, never delivered mid-window:
 *
 *   core -> channel   enqueue() stages the request.  With the cores
 *     on the main lane (coreLanes == 0) the request goes straight
 *     into the target channel's inbox in arrival order (phase A,
 *     main lane only).  With core-cluster lanes each core stages
 *     into its PRIVATE box (its own lane in phase A', or the main
 *     thread in phase A for scheduler-driven issue; the two phases
 *     never overlap); the boundary merges all boxes by (issueTick,
 *     coreId, staging order) -- a partition-invariant key -- before
 *     bucketing per channel.  Either way the boundary moves the
 *     requests onto the channel's pending list and arms a delivery
 *     event at the boundary tick on the lane the controller channel
 *     lives on (its channel lane when channels are sharded, the
 *     main lane otherwise); the delivery calls
 *     MemoryController::enqueue there.  A full controller queue
 *     bounces the request back onto the pending list -- the router
 *     retries at the next boundary and the core never sees a NACK
 *     (sharded mode has no core-side retry protocol).
 *
 *   channel -> core   complete() stages the controller's read
 *     completion in the channel's outbox (the channel's own lane,
 *     or the main lane when channels are not sharded).  The
 *     boundary drains every outbox in channel order and schedules
 *     each completion at max(when, boundary) on the requesting
 *     core's lane (cluster lane in core-lane mode, main lane for
 *     coreId == -1 traffic and when core lanes are off); with epoch
 *     <= tCL + tBURST the max never clamps a CAS completion (see
 *     shard_kernel.hh).
 *
 * Each mailbox has exactly one writer phase and one reader phase,
 * separated by the kernel's barrier, so no locks are needed even
 * when the parallel phase runs on worker threads.
 */

#ifndef REFSCHED_MEMCTRL_SHARD_ROUTER_HH
#define REFSCHED_MEMCTRL_SHARD_ROUTER_HH

#include <cstdint>
#include <vector>

#include "memctrl/memory_controller.hh"
#include "memctrl/memory_port.hh"
#include "simcore/shard_kernel.hh"

namespace refsched::memctrl
{

class ShardRouter final : public MemoryPort,
                          public MemoryController::CompletionSink,
                          public Callee
{
  public:
    /**
     * Wires itself up: installs the boundary hook on @p kernel and
     * the completion sink on @p mc.  @p shardChannels moves each
     * controller channel onto its own kernel lane (requires
     * laneCount >= channels); false keeps the controller on the
     * main lane (core-lane-only mode).
     */
    ShardRouter(ShardKernel &kernel, MemoryController &mc,
                bool shardChannels = true);

    /**
     * Enable core-lane routing: requests stage per-core and read
     * completions for core i are delivered on @p laneOfCore[i].
     * Call before running.
     */
    void setCoreLanes(std::vector<EventQueue *> laneOfCore);

    // --- MemoryPort (issuing core's lane / main lane) ---
    bool enqueue(Request req) override;
    void requestRetryNotification(std::function<void()> cb) override;

    // --- CompletionSink (controller's lane) ---
    void complete(int channel, int coreId, Tick when, Callee &callee,
                  std::uint64_t cookie0,
                  std::uint64_t cookie1) override;

    // --- Callee: per-channel delivery event (controller's lane) ---
    void fire(Tick now, std::uint64_t channel, std::uint64_t) override;

    /** Window boundary (phase C, single-threaded). */
    void onBoundary(Tick boundary);

    /** Requests staged or bounced, not yet in a controller queue. */
    std::size_t inFlight(int channel) const;

  private:
    struct Completion
    {
        Tick when;
        int coreId;
        Callee *callee;
        std::uint64_t cookie0;
        std::uint64_t cookie1;
    };

    struct LaneBox
    {
        std::vector<Request> inbox;       ///< staged pre-boundary
        std::vector<Request> pending;     ///< awaiting delivery
        std::vector<Completion> outbox;   ///< staged by controller
        bool deliveryArmed = false;
    };

    /** Lane the controller channel @p ch events on. */
    EventQueue &channelLane(int ch);
    /** Lane completions for @p coreId deliver on. */
    EventQueue &deliveryLane(int coreId);

    ShardKernel &kernel_;
    MemoryController &mc_;
    bool shardChannels_;
    std::vector<LaneBox> boxes_;
    /** Core-lane mode: slot 0 is coreId -1 (director/OS traffic),
     *  slot i+1 is core i.  Empty when core lanes are off. */
    std::vector<std::vector<Request>> coreBoxes_;
    std::vector<EventQueue *> coreLanes_;
    std::vector<Request> mergeScratch_;
    std::vector<std::function<void()>> retryWaiters_;
};

} // namespace refsched::memctrl

#endif // REFSCHED_MEMCTRL_SHARD_ROUTER_HH
