/**
 * @file
 * The request-side interface cores see of the memory system.
 *
 * Cores issue requests against this narrow port rather than against
 * the MemoryController directly so the sharded kernel can interpose
 * a ShardRouter: in the legacy single-queue kernel the port IS the
 * controller, in sharded mode it is a staging router that defers the
 * cross-shard hand-off to the next epoch boundary.
 */

#ifndef REFSCHED_MEMCTRL_MEMORY_PORT_HH
#define REFSCHED_MEMCTRL_MEMORY_PORT_HH

#include <functional>

#include "memctrl/request.hh"

namespace refsched::memctrl
{

class MemoryPort
{
  public:
    virtual ~MemoryPort() = default;

    /**
     * Try to enqueue @p req.  Returns false when the target queue is
     * full; the caller should wait for a retry notification.  Writes
     * are posted (no completion); reads fire req.completion at
     * data-burst-done time.
     */
    virtual bool enqueue(Request req) = 0;

    /** One-shot callback fired when queue space frees up. */
    virtual void requestRetryNotification(std::function<void()> cb) = 0;
};

} // namespace refsched::memctrl

#endif // REFSCHED_MEMCTRL_MEMORY_PORT_HH
