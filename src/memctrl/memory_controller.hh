/**
 * @file
 * The DRAM memory controller (Table 1 configuration).
 *
 * Per channel: FR-FCFS command scheduling with an open-row policy,
 * 64-entry read and write queues, batch write draining between
 * low/high watermarks (32/54), and a pluggable refresh scheduler.
 *
 * Refresh arbitration: when a refresh command falls due, its target
 * bank(s) are frozen (no new ACT/CAS); open target rows are
 * precharged with priority, then the REF is issued, occupying the
 * bank(s) for tRFC.  Non-target banks keep serving requests -- the
 * property that makes per-bank refresh (and the co-design) win.
 *
 * The controller is a clocked component on the shared EventQueue: it
 * issues at most one command per memory-clock edge per channel.  It
 * is wake-precise: a tick that issues a command re-arms for the next
 * edge, but a tick that issues nothing computes the earliest tick at
 * which anything can change -- bank/rank timing-gate expiries and
 * refresh completions for banks with queued work, shared-bus
 * readiness (tBURST spacing plus rank-switch/turnaround penalties),
 * refresh-engine progress, and the refresh scheduler's next due time
 * -- and sleeps until then.  The wake aggregate is collected as a
 * byproduct of the very same per-occupied-bank passes that tried
 * (and failed) to issue, so no extra scan is paid; enqueues and
 * retries still wake the channel immediately.  Between two
 * controller ticks every gate value is constant (they change only
 * when commands issue, which only happens inside ticks), so sleeping
 * to the earliest gate crossing provably never delays an issuable
 * command: the resulting command trace is byte-identical to the
 * every-edge-polling schedule (tools/golden_diff proves it).
 */

#ifndef REFSCHED_MEMCTRL_MEMORY_CONTROLLER_HH
#define REFSCHED_MEMCTRL_MEMORY_CONTROLLER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dram/address_mapping.hh"
#include "dram/bank.hh"
#include "dram/energy.hh"
#include "dram/refresh_scheduler.hh"
#include "dram/timings.hh"
#include "memctrl/banked_request_queue.hh"
#include "memctrl/memory_port.hh"
#include "memctrl/request.hh"
#include "simcore/event_queue.hh"
#include "simcore/probe.hh"
#include "simcore/stats.hh"
#include "simcore/types.hh"

namespace refsched::memctrl
{

/** Row-buffer management policy. */
enum class PagePolicy
{
    Open,    ///< keep rows open until a conflict (Table 1 default)
    Closed,  ///< precharge as soon as no queued request wants the row
};

/** Queue sizing / drain policy (Table 1). */
struct ControllerParams
{
    PagePolicy pagePolicy = PagePolicy::Open;

    std::size_t readQueueCapacity = 64;
    std::size_t writeQueueCapacity = 64;
    std::size_t writeLowWatermark = 32;
    std::size_t writeHighWatermark = 54;

    /**
     * Elastic refresh postponement (JEDEC allows up to 8 postponed
     * REF commands): a due refresh is deferred while demand reads
     * are queued for its target bank(s), until the backlog reaches
     * this limit and issue is forced.  Set to 1 for rigid,
     * schedule-exact refresh.
     */
    std::size_t maxPostponedRefreshes = 8;

    /** DRAM energy accounting constants. */
    dram::EnergyParams energy;

    /**
     * Refresh Pausing (Nair et al., HPCA'13): abort an in-progress
     * per-bank refresh at the next row boundary when a demand read
     * is waiting on that bank; the remaining rows are re-queued as a
     * fresh refresh command.
     */
    bool refreshPausing = false;

    /**
     * FR-FCFS starvation cap for reads (ticks; 0 disables).  The CPU
     * retires in order, so a read bypassed indefinitely by younger
     * row hits blocks its core no matter how much bandwidth the
     * channel sustains.  Once the oldest queued read has waited this
     * long, its next command (CAS, ACT, or even a precharge of a row
     * younger requests still want) issues ahead of any younger hit.
     * 256 DDR3-1600 clocks, ~8x the mean loaded read latency:
     * healthy FR-FCFS reordering never reaches it, a pathological
     * hit streak is bounded by it.
     */
    Tick readStarvationThreshold = 320000;

    /**
     * Idle-row auto-close timeout for the Open page policy (ticks;
     * 0 keeps rows open forever).  A strictly-open policy taxes
     * irregular access streams: every revisit of a bank whose stale
     * row nobody wants pays PRE+ACT on the critical path.  Real
     * controllers close rows left idle this long (adaptive page
     * management), off the critical path, in otherwise-idle command
     * slots.  The differential fuzzer's dominance oracle exposed the
     * strict policy: per-bank refresh BEAT the no-refresh ideal on
     * mcf-heavy samples because each REF closed stale rows as a side
     * effect -- refresh was acting as the missing idle-row closer.
     * 200 DDR3-1600 clocks: past any realistic row-reuse burst, well
     * under typical same-bank revisit distances of irregular
     * workloads.
     */
    Tick openRowIdleTimeout = 250000;
};

class MemoryController : public MemoryPort,
                         public dram::McRefreshView,
                         public Callee
{
  public:
    /**
     * Receiver for read-completion events in sharded mode: instead
     * of scheduling req.completion on its own event queue, the
     * controller hands the (when, callee, cookies) quadruple to the
     * sink, which stages it for cross-shard delivery to the lane the
     * requesting core lives on.  Null (the default) schedules
     * directly -- the legacy single-queue path.
     */
    class CompletionSink
    {
      public:
        /** @p coreId is the requester (Request::coreId; -1 for
         *  non-core traffic such as migration reads), letting the
         *  sink route the delivery to that core's lane. */
        virtual void complete(int channel, int coreId, Tick when,
                              Callee &callee, std::uint64_t cookie0,
                              std::uint64_t cookie1) = 0;

      protected:
        ~CompletionSink() = default;
    };

    MemoryController(EventQueue &eq, const dram::DramDeviceConfig &cfg,
                     std::unique_ptr<dram::RefreshScheduler> refresh,
                     const ControllerParams &params = {});

    MemoryController(const MemoryController &) = delete;
    MemoryController &operator=(const MemoryController &) = delete;

    /**
     * Try to enqueue @p req.  Returns false when the target queue is
     * full; the caller should wait for a retry notification.  Writes
     * are posted (no completion); reads fire req.completion at
     * data-burst-done time.  Reads that hit a queued write are
     * forwarded and complete on the next cycle.
     */
    bool enqueue(Request req) override;

    /** One-shot callback fired when queue space frees up. */
    void requestRetryNotification(std::function<void()> cb) override;

    /**
     * Move @p channel onto its own event-queue lane (sharded
     * kernel).  All of the channel's controller state -- its clock
     * ticks, its notion of now() -- migrates to @p lane; a pending
     * tick event is re-armed there.  Call only while all queues
     * agree on the current tick (i.e. before running).
     */
    void setChannelLane(int channel, EventQueue *lane);

    /** Redirect read completions through @p sink (null = direct). */
    void setCompletionSink(CompletionSink *sink)
    {
        completionSink_ = sink;
    }

    /** Register this controller's stats under @p prefix. */
    void registerStats(StatRegistry &reg, const std::string &prefix);

    /** Attach an instrumentation probe; every issued DRAM command is
     *  reported through it (see simcore/probe.hh).  Null detaches. */
    void setProbe(validate::Probe *probe) { probe_ = probe; }

    const dram::AddressMapping &mapping() const { return mapping_; }
    const dram::DramDeviceConfig &config() const { return cfg_; }
    dram::RefreshScheduler &refreshScheduler() { return *refresh_; }
    const dram::RefreshScheduler &refreshScheduler() const
    {
        return *refresh_;
    }

    // --- McRefreshView ---
    int queuedToBank(int channel, int rank, int bank) const override;
    double channelUtilization(int channel) const override;

    // --- Introspection for tests ---
    std::size_t readQueueSize(int channel) const;
    std::size_t writeQueueSize(int channel) const;
    const dram::Bank &bank(int channel, int rank, int bank) const;
    bool draining(int channel) const;

    /** Callee: per-channel tick events carry the channel index, so
     *  arming the controller clock never heap-allocates. */
    void
    fire(Tick, std::uint64_t ch, std::uint64_t) override
    {
        tick(static_cast<int>(ch));
    }

    /**
     * Verify the incrementally-maintained row-hit bitmaps and
     * open-bank mask of @p channel against a naive recompute from
     * queue and bank state.  For the property tests; O(banks +
     * queued requests).
     */
    bool checkHitBitmapInvariant(int channel,
                                 std::string *why = nullptr) const;

    /** Aggregate statistics (exposed for metrics collection). */
    struct ChannelStats
    {
        Scalar reads;
        Scalar writes;
        Scalar rowHits;
        Scalar rowMisses;
        Scalar refreshCommands;
        Scalar refreshNoops;
        Scalar refreshPauses;
        Scalar rowsRefreshed;
        Scalar readsBlockedByRefresh;
        Scalar refreshBlockedTicks;
        Scalar promotedReads;
        Scalar idleRowCloses;
        Scalar writeDrainBatches;
        Scalar forwardedReads;
        Average readLatency;   ///< enqueue -> data (ticks)
        Average readQueueWait; ///< enqueue -> CAS issue (ticks)
        Distribution readLatencyDist;
        /** Read latency split by refresh interference: a read that
         *  ever waited on a refreshing/frozen bank lands in the
         *  blocked histogram, every other read in the clean one. */
        Histogram readLatencyClean;
        Histogram readLatencyBlocked;
        Histogram readQueueWaitHist;

        // DRAM energy (picojoules; background added at collection).
        Scalar energyActivatePj;
        Scalar energyReadWritePj;
        Scalar energyRefreshPj;

        /**
         * Queue-occupancy integrals (sum of depth x dt, entry-ticks)
         * and peak depths, maintained inline at the depth-change
         * points.  Exact mean depth over an interval is
         * integral / elapsed; feeds the telemetry series and the
         * serving_sweep queue-depth columns.  Depths and tick deltas
         * are integers, so these Scalars stay integer-exact.
         */
        Scalar readQOccIntegral;
        Scalar writeQOccIntegral;
        Scalar readQPeakDepth;
        Scalar writeQPeakDepth;
    };

    const ChannelStats &channelStats(int channel) const
    {
        return channels_[static_cast<std::size_t>(channel)].stats;
    }

    // --- Telemetry gauges (direct reads; see obs/telemetry.hh) ---

    /** Queued reads whose blockedByRefresh flag is currently set. */
    int blockedReadsNow(int channel) const;

    /** Refresh commands harvested but not yet completed. */
    std::size_t refreshBacklog(int channel) const;

    /** The front pending refresh is committed (banks frozen). */
    bool refreshEngagedNow(int channel) const;

    /** Read/write queue-occupancy integral accrued up to the
     *  channel's current tick (non-mutating). */
    double readQueueOccupancyIntegral(int channel) const;
    double writeQueueOccupancyIntegral(int channel) const;

    /** Peak queue depths since the last stat reset. */
    std::size_t readQueuePeakDepth(int channel) const;
    std::size_t writeQueuePeakDepth(int channel) const;

    /**
     * Re-seed the occupancy accrual marks and peak depths from the
     * current queue state.  Call right after a stat reset (the
     * integrals reset to zero; accrual must restart at the reset
     * tick, not at the last pre-reset depth change).
     */
    void resetOccupancyMarks();

    /**
     * Energy consumed on @p channel, with background power
     * integrated over @p elapsed ticks (the measurement interval).
     */
    dram::EnergyBreakdown energyBreakdown(int channel,
                                          Tick elapsed) const;

  private:
    struct Channel
    {
        Channel(const dram::DramDeviceConfig &cfg,
                const ControllerParams &params);

        std::vector<dram::Rank> ranks;
        BankedRequestQueue readQ;
        BankedRequestQueue writeQ;

        /**
         * The event queue this channel's controller clock lives on.
         * The legacy kernel points every channel at the system
         * queue; the sharded kernel gives each channel its own lane
         * so channels tick concurrently between epoch barriers.
         * All channel-scoped code derives now() from here.
         */
        EventQueue *eq = nullptr;

        /** Request age stamp.  Per channel (not global) so lanes
         *  never share a counter: FR-FCFS only ever compares ages
         *  within one channel's queues, where a per-channel counter
         *  yields the same relative order as a global one. */
        std::uint64_t nextSeq = 0;
        std::deque<dram::RefreshCommand> pendingRefreshes;

        /** The front pending refresh is committed to issue: its
         *  target banks are frozen and being precharged. */
        bool refreshEngaged = false;

        /** The engaged refresh was force-issued (backlog full); it
         *  must not be paused. */
        bool refreshForced = false;

        /** Earliest tick the shared data bus accepts another CAS. */
        Tick nextCasAt = 0;

        /** Last CAS target, for rank-switch / turnaround penalties. */
        int lastCasRank = -1;
        bool lastCasWasWrite = false;

        bool draining = false;

        // Utilization epoch accounting (feeds AdaptiveRefresh).
        Tick epochStart = 0;
        Tick busyTicks = 0;
        double lastUtil = 0.0;

        // Sleep/wake management.
        EventHandle tickEvent;
        Tick tickScheduledAt = kMaxTick;

        /** Open refresh-blocked interval on the served queue's front
         *  request: refreshBlockedTicks accrues `now - blockedMark`
         *  at the next tick instead of tCK per polled edge. */
        Tick blockedMark = 0;
        bool blockedMarkValid = false;

        /** Queued reads whose blockedByRefresh flag is set (feeds
         *  the McQueueEvent blocked-reads counter track). */
        int blockedReadsNow = 0;

        /** Last tick the occupancy integrals were accrued to. */
        Tick occMark = 0;

        // --- Flattened per-bank hot state (global bank id order) ---

        /** Flat pointer array over ranks[r].banks[b]: bank[idx]
         *  replaces a divide/modulo pair per bank access on every
         *  scheduler pass.  Pointers stay valid across Channel moves
         *  (the ranks vector keeps its heap buffer). */
        std::vector<dram::Bank *> bank;

        /** Bit b set iff bank b has an open row. */
        std::uint64_t openMask = 0;

        /**
         * Row-hit tracking, maintained incrementally at enqueue,
         * serve, activate and precharge: hit counts are the number
         * of queued requests targeting the bank's open row, and the
         * masks mirror count != 0.  The FR pass and both precharge
         * scans become single-word scans over them.
         */
        std::vector<std::uint16_t> readHitCnt;
        std::vector<std::uint16_t> writeHitCnt;
        std::uint64_t readHitMask = 0;
        std::uint64_t writeHitMask = 0;

        /** Cached target of the engaged front refresh (avoids
         *  re-deriving from the pending deque per bank per pass):
         *  frozenRank < 0 means no bank is frozen.  frozenMask is
         *  the same target as a global-bank-id bitmask, so the scan
         *  passes test or exclude frozen banks in one word op. */
        int frozenRank = -1;
        int frozenBank = -2;
        std::uint64_t frozenMask = 0;

        ChannelStats stats;
    };

    /** One scheduling step for @p ch at the current clock edge. */
    void tick(int ch);

    /** Arrange for tick(ch) to run at clock edge >= @p when. */
    void scheduleTick(int ch, Tick when);

    /** Pop refresh commands that have come due into the pending Q. */
    void harvestDueRefreshes(Channel &c, int ch);

    /**
     * Try to advance the refresh engine; true if a command slot was
     * consumed (PRE toward refresh, or REF itself).  When the engine
     * is engaged but waiting, the earliest tick it can make progress
     * is folded into @p wake.
     */
    bool refreshEngineStep(Channel &c, int ch, Tick &wake);

    /**
     * Try to issue one request command from @p q; true on issue.
     * Every pass that rejects a bank on a *time* gate (now < X)
     * folds X into @p wake, so a no-issue tick knows the earliest
     * tick the decision can flip.
     */
    bool serveQueue(Channel &c, int ch, BankedRequestQueue &q,
                    bool isWriteQueue, Tick &wake);

    /** Closed-page policy: precharge one idle open row, if any;
     *  time-gated skips fold into @p wake. */
    bool closedPagePrecharge(Channel &c, int ch, Tick &wake);

    /** Open-page idle timeout: precharge one open row that has been
     *  idle past openRowIdleTimeout and that no queued request still
     *  wants; pending expiries fold into @p wake. */
    bool idleRowPrecharge(Channel &c, int ch, Tick &wake);

    /** True if the bank is frozen by an in-flight/pending refresh. */
    bool frozenByRefresh(const Channel &c, int rank, int bank) const;

    /** Activate @p row on the bank, maintaining the open-bank mask
     *  and recomputing that bank's row-hit counts. */
    void mcActivate(Channel &c, int bankIdx, std::uint64_t row,
                    const dram::DramTimings &t);

    /** Precharge the bank, clearing its mask/hit-count state. */
    void mcPrecharge(Channel &c, int bankIdx,
                     const dram::DramTimings &t);

    /** Adjust hit tracking when a request enters or leaves a
     *  queue. @p isRead selects the read- or write-queue counters. */
    void noteQueuedRequest(Channel &c, int bankIdx,
                           std::uint64_t row, bool isRead, int delta);

    /** Accrue the queue-occupancy integrals up to @p now.  Called
     *  before every queue depth change. */
    static void accrueOccupancy(Channel &c, Tick now);

    /** Demand reads queued for the command's target bank(s)? */
    bool demandQueuedForRefresh(const Channel &c,
                                const dram::RefreshCommand &cmd) const;

    void completeRead(Channel &c, Request &req, Tick dataAt);
    void rollUtilizationEpoch(Channel &c);
    void notifyRetry();

    int bankIndex(int rank, int bank) const
    {
        return rank * cfg_.org.banksPerRank + bank;
    }

    EventQueue &eq_;
    dram::DramDeviceConfig cfg_;
    dram::AddressMapping mapping_;
    std::unique_ptr<dram::RefreshScheduler> refresh_;
    ControllerParams params_;
    ClockDomain clock_;
    std::vector<Channel> channels_;
    std::vector<std::function<void()>> retryWaiters_;
    Tick epochLength_;
    validate::Probe *probe_ = nullptr;
    CompletionSink *completionSink_ = nullptr;
};

} // namespace refsched::memctrl

#endif // REFSCHED_MEMCTRL_MEMORY_CONTROLLER_HH
