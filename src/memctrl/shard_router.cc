#include "memctrl/shard_router.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace refsched::memctrl
{

ShardRouter::ShardRouter(ShardKernel &kernel, MemoryController &mc,
                         bool shardChannels)
    : kernel_(kernel), mc_(mc), shardChannels_(shardChannels)
{
    const int channels = mc_.config().org.channels;
    boxes_.resize(static_cast<std::size_t>(channels));

    if (shardChannels_) {
        REFSCHED_ASSERT(kernel_.laneCount() >= channels,
                        "kernel has fewer lanes than channels");
        for (int ch = 0; ch < channels; ++ch)
            mc_.setChannelLane(ch, &kernel_.lane(ch));
    }
    mc_.setCompletionSink(this);
    kernel_.setBoundaryHook([this](Tick b) { onBoundary(b); });
}

void
ShardRouter::setCoreLanes(std::vector<EventQueue *> laneOfCore)
{
    coreLanes_ = std::move(laneOfCore);
    // Slot 0 holds coreId == -1 traffic (director / OS page copies),
    // slot i + 1 holds core i.
    coreBoxes_.assign(coreLanes_.size() + 1, {});
}

EventQueue &
ShardRouter::channelLane(int ch)
{
    return shardChannels_ ? kernel_.lane(ch) : kernel_.mainLane();
}

EventQueue &
ShardRouter::deliveryLane(int coreId)
{
    if (coreId >= 0 && !coreLanes_.empty())
        return *coreLanes_[static_cast<std::size_t>(coreId)];
    return kernel_.mainLane();
}

bool
ShardRouter::enqueue(Request req)
{
    if (coreBoxes_.empty()) {
        // Legacy channel-sharded path: main lane is the only writer,
        // stage straight into the target channel's inbox.
        const int ch = mc_.mapping().decompose(req.paddr).channel;
        boxes_[static_cast<std::size_t>(ch)].inbox.push_back(
            std::move(req));
        return true;
    }
    // Core-lane path: each issuer writes only its own box (core i on
    // its cluster lane, coreId -1 traffic on the main thread), so the
    // parallel phase needs no locks.  Channel decomposition waits for
    // the boundary merge.
    const std::size_t slot = static_cast<std::size_t>(req.coreId + 1);
    REFSCHED_ASSERT(slot < coreBoxes_.size(),
                    "request from unknown core");
    coreBoxes_[slot].push_back(std::move(req));
    return true;
}

void
ShardRouter::requestRetryNotification(std::function<void()> cb)
{
    // Unreachable through the cores (enqueue never refuses), kept
    // functional for robustness: fire at the next boundary.
    retryWaiters_.push_back(std::move(cb));
}

void
ShardRouter::complete(int channel, int coreId, Tick when,
                      Callee &callee, std::uint64_t cookie0,
                      std::uint64_t cookie1)
{
    boxes_[static_cast<std::size_t>(channel)].outbox.push_back(
        Completion{when, coreId, &callee, cookie0, cookie1});
}

void
ShardRouter::fire(Tick, std::uint64_t channel, std::uint64_t)
{
    auto &box = boxes_[static_cast<std::size_t>(channel)];
    box.deliveryArmed = false;

    // Deliver in arrival order; the first refusal preserves FIFO by
    // bouncing the whole tail to the next boundary.
    std::size_t i = 0;
    while (i < box.pending.size()) {
        if (!mc_.enqueue(box.pending[i]))
            break;
        ++i;
    }
    box.pending.erase(box.pending.begin(),
                      box.pending.begin()
                          + static_cast<std::ptrdiff_t>(i));
}

void
ShardRouter::onBoundary(Tick boundary)
{
    // Core-lane mode: merge the per-core staging boxes into the
    // channel inboxes by the partition-invariant key (issueTick,
    // coreId, staging order).  Concatenating in box (coreId) order
    // and stable-sorting on issueTick realises exactly that key.
    if (!coreBoxes_.empty()) {
        mergeScratch_.clear();
        for (auto &cb : coreBoxes_) {
            mergeScratch_.insert(mergeScratch_.end(),
                                 std::make_move_iterator(cb.begin()),
                                 std::make_move_iterator(cb.end()));
            cb.clear();
        }
        std::stable_sort(mergeScratch_.begin(), mergeScratch_.end(),
                         [](const Request &a, const Request &b) {
                             return a.issueTick < b.issueTick;
                         });
        for (auto &req : mergeScratch_) {
            const int ch =
                mc_.mapping().decompose(req.paddr).channel;
            boxes_[static_cast<std::size_t>(ch)].inbox.push_back(
                std::move(req));
        }
        mergeScratch_.clear();
    }

    for (std::size_t ch = 0; ch < boxes_.size(); ++ch) {
        auto &box = boxes_[ch];

        // channel -> core: read completions, in staged order, on the
        // requesting core's lane (main lane for coreId -1 and when
        // core lanes are off).
        for (const auto &comp : box.outbox) {
            deliveryLane(comp.coreId)
                .schedule(std::max(comp.when, boundary),
                          *comp.callee, comp.cookie0, comp.cookie1);
        }
        box.outbox.clear();

        // core -> channel: bounced requests first, then this
        // window's arrivals.
        if (!box.inbox.empty()) {
            box.pending.insert(
                box.pending.end(),
                std::make_move_iterator(box.inbox.begin()),
                std::make_move_iterator(box.inbox.end()));
            box.inbox.clear();
        }
        if (!box.pending.empty() && !box.deliveryArmed) {
            channelLane(static_cast<int>(ch))
                .schedule(boundary, *this,
                          static_cast<std::uint64_t>(ch), 0);
            box.deliveryArmed = true;
        }
    }

    if (!retryWaiters_.empty()) {
        std::vector<std::function<void()>> waiters;
        waiters.swap(retryWaiters_);
        for (auto &w : waiters)
            w();
    }
}

std::size_t
ShardRouter::inFlight(int channel) const
{
    const auto &box = boxes_[static_cast<std::size_t>(channel)];
    std::size_t n = box.inbox.size() + box.pending.size();
    return n;
}

} // namespace refsched::memctrl
