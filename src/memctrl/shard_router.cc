#include "memctrl/shard_router.hh"

#include <algorithm>

#include "simcore/logging.hh"

namespace refsched::memctrl
{

ShardRouter::ShardRouter(ShardKernel &kernel, MemoryController &mc)
    : kernel_(kernel), mc_(mc)
{
    const int channels = mc_.config().org.channels;
    REFSCHED_ASSERT(kernel_.laneCount() >= channels,
                    "kernel has fewer lanes than channels");
    boxes_.resize(static_cast<std::size_t>(channels));

    for (int ch = 0; ch < channels; ++ch)
        mc_.setChannelLane(ch, &kernel_.lane(ch));
    mc_.setCompletionSink(this);
    kernel_.setBoundaryHook([this](Tick b) { onBoundary(b); });
}

bool
ShardRouter::enqueue(Request req)
{
    const int ch = mc_.mapping().decompose(req.paddr).channel;
    boxes_[static_cast<std::size_t>(ch)].inbox.push_back(
        std::move(req));
    return true;
}

void
ShardRouter::requestRetryNotification(std::function<void()> cb)
{
    // Unreachable through the cores (enqueue never refuses), kept
    // functional for robustness: fire at the next boundary.
    retryWaiters_.push_back(std::move(cb));
}

void
ShardRouter::complete(int channel, Tick when, Callee &callee,
                      std::uint64_t cookie0, std::uint64_t cookie1)
{
    boxes_[static_cast<std::size_t>(channel)].outbox.push_back(
        Completion{when, &callee, cookie0, cookie1});
}

void
ShardRouter::fire(Tick, std::uint64_t channel, std::uint64_t)
{
    auto &box = boxes_[static_cast<std::size_t>(channel)];
    box.deliveryArmed = false;

    // Deliver in arrival order; the first refusal preserves FIFO by
    // bouncing the whole tail to the next boundary.
    std::size_t i = 0;
    while (i < box.pending.size()) {
        if (!mc_.enqueue(box.pending[i]))
            break;
        ++i;
    }
    box.pending.erase(box.pending.begin(),
                      box.pending.begin()
                          + static_cast<std::ptrdiff_t>(i));
}

void
ShardRouter::onBoundary(Tick boundary)
{
    EventQueue &main = kernel_.mainLane();

    for (std::size_t ch = 0; ch < boxes_.size(); ++ch) {
        auto &box = boxes_[ch];

        // channel -> main: read completions, in staged order.
        for (const auto &comp : box.outbox) {
            main.schedule(std::max(comp.when, boundary),
                          *comp.callee, comp.cookie0, comp.cookie1);
        }
        box.outbox.clear();

        // main -> channel: bounced requests first, then this
        // window's arrivals.
        if (!box.inbox.empty()) {
            box.pending.insert(
                box.pending.end(),
                std::make_move_iterator(box.inbox.begin()),
                std::make_move_iterator(box.inbox.end()));
            box.inbox.clear();
        }
        if (!box.pending.empty() && !box.deliveryArmed) {
            kernel_.lane(static_cast<int>(ch))
                .schedule(boundary, *this,
                          static_cast<std::uint64_t>(ch), 0);
            box.deliveryArmed = true;
        }
    }

    if (!retryWaiters_.empty()) {
        std::vector<std::function<void()>> waiters;
        waiters.swap(retryWaiters_);
        for (auto &w : waiters)
            w();
    }
}

std::size_t
ShardRouter::inFlight(int channel) const
{
    const auto &box = boxes_[static_cast<std::size_t>(channel)];
    return box.inbox.size() + box.pending.size();
}

} // namespace refsched::memctrl
